(* The benchmark harness has two layers:

   1. bechamel micro-benchmarks: one [Test.make] per component that the
      experiments exercise (smin gradients, couplings, MTS solver steps,
      offline DPs, slicing/clustering/scheduling steps, whole-algorithm
      request handling).  These document the per-request cost of every
      moving part and catch performance regressions.

   2. the experiment tables E1-E10 (the reproduction's stand-in for the
      paper's evaluation section), regenerated in quick mode so that a
      single `dune exec bench/main.exe` reproduces every reported table.
      Run `rbgp exp <id>` (without --quick) for the full-size versions.

   Besides the human-readable tables the run writes BENCH_3.json next to
   the current directory: the BENCH_2 sections (component ns/run + r^2,
   wall-clock seconds per quick-mode experiment, parallel-vs-sequential
   comparisons for E8 and E10 with cold/warm speedups and byte-identity
   checks) plus a "serve" section measuring the streaming engine this
   change set added — end-to-end ingest throughput (req/s) and p50/p99
   ingest latency through [Rbgp_serve.Engine] for the journal
   ([`Incremental]) and full-scan ([`Diff]) accounting paths, each with a
   mid-stream checkpoint/resume identity bit (resume must reproduce the
   uninterrupted run's costs and assignment exactly).  The numeric suffix
   is the bench-trajectory slot for this change set; BENCH_1.json and
   BENCH_2.json are earlier snapshots and later change sets append
   BENCH_4.json, ... so the files form a machine-readable performance
   history of the repository. *)

open Bechamel
open Toolkit

let rng = Rbgp_util.Rng.create 20230717

(* --- component fixtures -------------------------------------------- *)

let k = 256
let smin_x = Array.init k (fun i -> float_of_int ((i * 7919) mod 97))

let bench_smin_grad =
  Test.make ~name:"smin: grad_c k=256"
    (Staged.stage (fun () -> Rbgp_util.Smin.grad_c ~c:(float_of_int k) smin_x))

let dist_a = Rbgp_util.Dist.of_weights (Array.init k (fun i -> float_of_int (1 + (i mod 7))))
let dist_b = Rbgp_util.Dist.of_weights (Array.init k (fun i -> float_of_int (1 + ((i + 3) mod 11))))

let bench_coupling =
  Test.make ~name:"dist: coupled resample k=256"
    (Staged.stage (fun () ->
         Rbgp_util.Dist.resample_coupled rng ~current:17 ~old_dist:dist_a
           ~new_dist:dist_b))

let metric = Rbgp_mts.Metric.Line k

let wfa_solver = Rbgp_mts.Work_function.solver metric ~start:(k / 2) ~rng
let smin_solver = Rbgp_mts.Smin_mw.solver metric ~start:(k / 2) ~rng:(Rbgp_util.Rng.split rng)
let hst_solver = Rbgp_mts.Hst_mts.solver metric ~start:(k / 2) ~rng:(Rbgp_util.Rng.split rng)

let mts_bench name solver =
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr i;
         Rbgp_mts.Mts.serve solver (Rbgp_mts.Mts.indicator (!i * 31 mod k) ~n:k)))

let bench_wfa = mts_bench "mts: wfa step k=256" wfa_solver
let bench_smin_mts = mts_bench "mts: smin-mw step k=256" smin_solver
let bench_hst = mts_bench "mts: hst-mw step k=256" hst_solver

let offline_reqs = Array.init 512 (fun i -> (i * 131) mod k)

let bench_offline_mts =
  Test.make ~name:"mts: offline DP 512 reqs k=256"
    (Staged.stage (fun () ->
         Rbgp_mts.Offline.opt_cost_indicators_free metric offline_reqs))

let inst = Rbgp_ring.Instance.blocks ~n:512 ~ell:8
let trace512 = Array.init 4096 (fun i -> (i * 73) mod 512)

let bench_static_opt =
  Test.make ~name:"offline: segmented static OPT n=512"
    (Staged.stage (fun () -> Rbgp_offline.Static_opt.segmented inst trace512))

let bench_dynamic_lb =
  Test.make ~name:"offline: dynamic LB n=512 T=4096"
    (Staged.stage (fun () -> Rbgp_offline.Lower_bound.dynamic_lb inst trace512 ()))

(* the E10 comparator shape: exact dynamic OPT on the largest instance the
   experiment uses, pruned vs the retained exhaustive reference *)
let dopt_inst = Rbgp_ring.Instance.blocks ~n:9 ~ell:3
let dopt_table = Rbgp_offline.Dynamic_opt.shared dopt_inst ()
let dopt_trace = Array.init 50 (fun i -> (i * 5) mod 9)

let bench_dopt_pruned =
  Test.make ~name:"offline: exact dyn OPT pruned n=9 ell=3 T=50"
    (Staged.stage (fun () -> Rbgp_offline.Dynamic_opt.solve dopt_table dopt_trace))

let bench_dopt_reference =
  Test.make ~name:"offline: exact dyn OPT reference n=9 ell=3 T=50"
    (Staged.stage (fun () ->
         Rbgp_offline.Dynamic_opt.solve ~reference:true dopt_table dopt_trace))

let bench_interval_opt =
  Test.make ~name:"offline: interval OPT_R n=512 T=4096"
    (Staged.stage (fun () ->
         Rbgp_offline.Lower_bound.interval_opt inst trace512 ~shift:0
           ~epsilon:0.5))

let dyn_alg =
  Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst (Rbgp_util.Rng.split rng)

let dyn_online = Rbgp_core.Dynamic_alg.online dyn_alg

let bench_dyn_serve =
  let i = ref 0 in
  Test.make ~name:"core: onl-dynamic serve n=512"
    (Staged.stage (fun () ->
         incr i;
         dyn_online.Rbgp_ring.Online.serve (!i * 37 mod 512)))

let st_alg = Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rbgp_util.Rng.split rng)
let st_online = Rbgp_core.Static_alg.online st_alg

let bench_static_serve =
  let i = ref 0 in
  Test.make ~name:"core: onl-static serve n=512"
    (Staged.stage (fun () ->
         incr i;
         st_online.Rbgp_ring.Online.serve (!i * 37 mod 512)))

let ig = Rbgp_hitting.Interval_growing.create ~k (Rbgp_util.Rng.split rng)

let bench_interval_growing =
  let i = ref 0 in
  Test.make ~name:"hitting: interval-growing serve k=256"
    (Staged.stage (fun () ->
         incr i;
         Rbgp_hitting.Interval_growing.serve ig (!i * 97 mod k)))

let tests =
  Test.make_grouped ~name:"rbgp"
    [
      bench_smin_grad;
      bench_coupling;
      bench_wfa;
      bench_smin_mts;
      bench_hst;
      bench_offline_mts;
      bench_static_opt;
      bench_dynamic_lb;
      bench_dopt_pruned;
      bench_dopt_reference;
      bench_interval_opt;
      bench_dyn_serve;
      bench_static_serve;
      bench_interval_growing;
    ]

let run_benchmarks () =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let tbl = Rbgp_util.Tbl.create ~headers:[ "benchmark"; "time/run"; "r2" ] in
  let components =
    List.map
      (fun (name, ols) ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        let r2 = Analyze.OLS.r_square ols in
        let human t =
          if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
          else Printf.sprintf "%.0f ns" t
        in
        Rbgp_util.Tbl.add_row tbl
          [
            name;
            human est;
            (match r2 with Some r -> Printf.sprintf "%.3f" r | None -> "-");
          ];
        (name, est, r2))
      rows
  in
  print_endline "component micro-benchmarks (bechamel, OLS estimates):";
  Rbgp_util.Tbl.print tbl;
  components

(* --- machine-readable trajectory ----------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers must be finite; bechamel occasionally reports nan r^2 *)
let json_num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

(* redirect stdout to [path] while [f] runs (the experiment tables print
   directly); used both to time table generation quietly and to compare
   sequential vs parallel output byte for byte *)
let with_stdout_to path f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type parallel_result = {
  experiment : string;
  domains : int;
  seq_seconds : float;
  cold_seconds : float;  (* pool shut down first: domain spawn in the timing *)
  warm_seconds : float;  (* pool pre-warmed before the timing *)
  identical : bool;  (* seq, cold and warm outputs byte-identical *)
}

(* Sequential vs RBGP_DOMAINS-style fan-out for one experiment.  The cold
   measurement shuts the persistent pool down first, so it pays domain
   spawn inside the timed region (what PR-1 measured, and the number that
   made the old pool look like an algorithmic regression); the warm
   measurement pre-warms the pool, isolating the steady-state speedup the
   harness actually sees after the first table.  All three outputs must be
   byte-identical — the pool's key guarantee.  On a single-core box both
   speedups hover around 1.0. *)
let parallel_check id =
  let domains = 4 in
  let run_with d path =
    Rbgp_util.Pool.set_domains (Some d);
    let (), dt =
      timed (fun () ->
          with_stdout_to path (fun () ->
              Rbgp_harness.Report.run ~quick:true ~seed:42 id))
    in
    Rbgp_util.Pool.set_domains None;
    (read_file path, dt)
  in
  let tmp tag = Filename.temp_file (Printf.sprintf "rbgp_%s_%s" id tag) ".txt" in
  let seq_out, seq_dt = run_with 1 (tmp "seq") in
  Rbgp_util.Pool.shutdown ();
  let cold_out, cold_dt = run_with domains (tmp "cold") in
  Rbgp_util.Pool.warmup ~domains ();
  let warm_out, warm_dt = run_with domains (tmp "warm") in
  let identical =
    String.equal seq_out cold_out && String.equal seq_out warm_out
  in
  Printf.printf
    "parallel check (%s quick): sequential %.2fs, %d domains cold %.2fs \
     (%.2fx) / warm %.2fs (%.2fx), outputs %s\n"
    (String.uppercase_ascii id)
    seq_dt domains cold_dt (seq_dt /. cold_dt) warm_dt (seq_dt /. warm_dt)
    (if identical then "identical" else "DIFFERENT");
  {
    experiment = id;
    domains;
    seq_seconds = seq_dt;
    cold_seconds = cold_dt;
    warm_seconds = warm_dt;
    identical;
  }

(* --- serving engine throughput -------------------------------------- *)

type serve_result = {
  accounting : string;
  requests : int;
  rps : float;
  p50_ns : int;
  p99_ns : int;
  serve_comm : int;
  serve_mig : int;
  resume_identical : bool;
}

(* End-to-end ingest throughput through the streaming engine — the number
   `rbgp serve` reports as req/s — for the journal (O(moves+1)/request)
   and full-scan (O(n+ell)/request) accounting paths, plus a mid-stream
   checkpoint/resume identity check: the resumed engine must finish with
   exactly the costs and assignment of the uninterrupted run.  The
   checkpoint round-trips through its binary encoding so the measurement
   covers the real serialization path. *)
let serve_bench () =
  let n = 512 and ell = 8 and steps = 100_000 and seed = 42 in
  let sinst = Rbgp_ring.Instance.blocks ~n ~ell in
  let trace =
    match Rbgp_workloads.Workloads.rotating ~n ~steps (Rbgp_util.Rng.create 7) with
    | Rbgp_ring.Trace.Fixed a -> a
    | Rbgp_ring.Trace.Adaptive _ -> assert false
  in
  let one accounting label =
    let engine = Rbgp_serve.Engine.create ~accounting ~alg:"onl-dynamic" ~seed sinst in
    Array.iter (fun e -> ignore (Rbgp_serve.Engine.ingest engine e)) trace;
    let m = Rbgp_serve.Engine.metrics engine in
    let r = Rbgp_serve.Engine.result engine in
    let resume_identical =
      let cut = steps / 2 in
      let first = Rbgp_serve.Engine.create ~accounting ~alg:"onl-dynamic" ~seed sinst in
      Array.iter
        (fun e -> ignore (Rbgp_serve.Engine.ingest first e))
        (Array.sub trace 0 cut);
      let ckpt =
        Rbgp_serve.Checkpoint.of_string
          (Rbgp_serve.Checkpoint.to_string (Rbgp_serve.Engine.checkpoint first))
      in
      match Rbgp_serve.Engine.resume ~accounting ckpt with
      | resumed ->
          Array.iter
            (fun e -> ignore (Rbgp_serve.Engine.ingest resumed e))
            (Array.sub trace cut (steps - cut));
          let rr = Rbgp_serve.Engine.result resumed in
          rr.Rbgp_ring.Simulator.cost = r.Rbgp_ring.Simulator.cost
          && rr.Rbgp_ring.Simulator.max_load = r.Rbgp_ring.Simulator.max_load
          && Rbgp_serve.Engine.assignment resumed
             = Rbgp_serve.Engine.assignment engine
      | exception Failure _ -> false
    in
    let sr =
      {
        accounting = label;
        requests = Rbgp_serve.Metrics.requests m;
        rps = Rbgp_serve.Metrics.rps m;
        p50_ns = Rbgp_serve.Metrics.quantile m 0.5;
        p99_ns = Rbgp_serve.Metrics.quantile m 0.99;
        serve_comm = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.comm;
        serve_mig = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.mig;
        resume_identical;
      }
    in
    Printf.printf
      "serve (%s accounting): %d reqs, %.0f req/s, p50 %d ns, p99 %d ns, \
       resume %s\n"
      label sr.requests sr.rps sr.p50_ns sr.p99_ns
      (if resume_identical then "identical" else "DIVERGED");
    sr
  in
  [ one `Incremental "journal"; one `Diff "diff" ]

let write_bench_json ~components ~experiments ~parallel ~serve =
  let oc = open_out "BENCH_3.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"rbgp-bench/3\",\n";
  out "  \"components\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r2\": %s}%s\n"
        (json_escape name) (json_num ns)
        (match r2 with Some r -> json_num r | None -> "null")
        (if i < List.length components - 1 then "," else ""))
    components;
  out "  ],\n  \"experiments\": [\n";
  List.iteri
    (fun i (id, dt) ->
      out "    {\"id\": \"%s\", \"quick_seconds\": %s}%s\n" (json_escape id)
        (json_num dt)
        (if i < List.length experiments - 1 then "," else ""))
    experiments;
  out "  ],\n  \"parallel\": [\n";
  List.iteri
    (fun i p ->
      out
        "    {\"experiment\": \"%s\", \"domains\": %d, \"seq_seconds\": %s, \
         \"cold_par_seconds\": %s, \"warm_par_seconds\": %s, \
         \"cold_speedup\": %s, \"warm_speedup\": %s, \"identical\": %b}%s\n"
        (json_escape p.experiment) p.domains
        (json_num p.seq_seconds) (json_num p.cold_seconds)
        (json_num p.warm_seconds)
        (json_num (p.seq_seconds /. p.cold_seconds))
        (json_num (p.seq_seconds /. p.warm_seconds))
        p.identical
        (if i < List.length parallel - 1 then "," else ""))
    parallel;
  out "  ],\n  \"serve\": [\n";
  List.iteri
    (fun i s ->
      out
        "    {\"accounting\": \"%s\", \"alg\": \"onl-dynamic\", \
         \"requests\": %d, \"rps\": %s, \"p50_ns\": %d, \"p99_ns\": %d, \
         \"comm\": %d, \"mig\": %d, \"resume_identical\": %b}%s\n"
        (json_escape s.accounting) s.requests (json_num s.rps) s.p50_ns
        s.p99_ns s.serve_comm s.serve_mig s.resume_identical
        (if i < List.length serve - 1 then "," else ""))
    serve;
  out "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_3.json"

let () =
  let components = run_benchmarks () in
  print_endline "\nexperiment tables (quick mode; run `rbgp exp <id>` for full size):";
  (* warm the pool first so the per-experiment wall clocks measure steady
     state rather than charging domain spawn to whichever table runs first *)
  Rbgp_util.Pool.warmup ();
  let experiments =
    List.map
      (fun ((id, _desc, _f) :
             string * string * (?quick:bool -> ?seed:int -> unit -> unit)) ->
        let (), dt =
          timed (fun () -> Rbgp_harness.Report.run ~quick:true ~seed:42 id)
        in
        (id, dt))
      Rbgp_harness.Report.all
  in
  print_newline ();
  let parallel = [ parallel_check "e8"; parallel_check "e10" ] in
  print_newline ();
  let serve = serve_bench () in
  write_bench_json ~components ~experiments ~parallel ~serve
