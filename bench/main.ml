(* The benchmark harness has four layers:

   1. component micro-benchmarks: one closure per component that the
      experiments exercise (smin gradients, couplings, MTS solver steps,
      offline DPs, slicing/clustering/scheduling steps, whole-algorithm
      request handling).  Measurement is a small in-repo harness (warmup,
      linearly growing iteration counts, least-squares through the origin,
      residual-based outlier trimming) — see [measure] below; the earlier
      bechamel-based harness pinned slow functions to a near-constant
      iteration count, which degenerated the regression and produced the
      r^2 collapse recorded in BENCH_3.json.  A component whose fit still
      comes out with r^2 < 0.5 fails the run (exit 1, after the JSON is
      written).

   2. the experiment tables E1-E10 (the reproduction's stand-in for the
      paper's evaluation section), regenerated in quick mode so that a
      single `dune exec bench/main.exe` reproduces every reported table.
      Run `rbgp exp <id>` (without --quick) for the full-size versions.

   3. the domains sweep for the interval-sharded request path: for each
      serve config (large: parallel-worthy batches; quick: batches small
      enough that the pool's auto-grain must keep them sequential) and
      each domain count, per-request vs batched ingest throughput, the
      speedup, and a byte-identity bit (decisions sans latency, final
      result, final assignment).  CI gates on speedup > 1 at 4 domains
      for the large config; on a single-core box the honest local number
      hovers around 1.0 and only the identity bits are load-bearing.

   4. the zero-copy ingest bench: block-decode throughput of the mmap'ed
      region reader vs the buffered channel reader over the same framed
      binary trace, the pull-to-solve pipeline (Source.next_batch feeding
      Engine.ingest_batch_quiet) for a free solver (never-move, the
      pipeline ceiling) and the real one (onl-dynamic, where the solve
      dominates), and mmap-vs-channel identity bits down to byte-equal
      checkpoints.  CI gates on decode_speedup >= 5, the never-move
      pipeline >= 1M req/s, and both identity bits.

   5. the fault-layer overhead bench: the quiet mmap pipeline timed three
      ways — a hook-free hot loop (block decode feeding the engine
      directly, no Source, no fault checks), the Source pipeline with the
      fault layer disabled, and the same pipeline with an armed plan that
      never fires (crash@2e9).  CI gates the disabled-vs-baseline
      overhead below 2%: the crash-safety hooks must be free when off.

   Besides the human-readable tables the run writes BENCH_7.json next to
   the current directory: the BENCH_6 sections (component ns/run + r^2,
   wall-clock seconds per quick-mode experiment, parallel-vs-sequential
   comparisons for E8 and E10 with cold/warm speedups and byte-identity
   checks, streaming-engine throughput with checkpoint/resume identity,
   the "domains_sweep", "ingest" and "faults" sections) plus the new
   "net" section: the socket transport versus the in-process pipe on
   the same quiet batches, 1 and 4 tenants multiplexed over one
   connection, with client-observed RPC latency quantiles and
   per-tenant checkpoint identity.  CI gates the socket throughput
   overhead below 30% of pipe throughput.  The numeric suffix is the
   bench-trajectory slot for this change set; BENCH_1..6.json are
   earlier snapshots and later change sets append BENCH_8.json, ... so
   the files form a machine-readable performance history of the
   repository. *)

let rng = Rbgp_util.Rng.create 20230717

(* --- measurement harness ------------------------------------------- *)

let now_ns () = Unix.gettimeofday () *. 1e9

let time_iters f iters =
  let t0 = now_ns () in
  for _ = 1 to iters do
    f ()
  done;
  now_ns () -. t0

(* least squares through the origin on (iterations, elapsed ns) points;
   r^2 against the mean-of-y null model, so it is only meaningful when
   the x values actually vary — which the sampling below guarantees *)
let ols_origin pts =
  let sxy = ref 0.0 and sxx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sxy := !sxy +. (x *. y);
      sxx := !sxx +. (x *. x);
      sy := !sy +. y)
    pts;
  let slope = !sxy /. !sxx in
  let ybar = !sy /. float_of_int (Array.length pts) in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dt = y -. ybar and dr = y -. (slope *. x) in
      ss_tot := !ss_tot +. (dt *. dt);
      ss_res := !ss_res +. (dr *. dr))
    pts;
  let r2 = if !ss_tot <= 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  (slope, r2)

(* per-test budget: enough samples for a stable fit without dragging the
   whole bench run past CI patience *)
let sample_budget_ns = 0.4 *. 1e9

let measure f =
  for _ = 1 to 3 do
    f ()
  done;
  (* calibrate the per-call cost on a short doubling run *)
  let rec calibrate iters =
    let dt = time_iters f iters in
    if dt > 1e6 || iters >= 1 lsl 20 then dt /. float_of_int iters
    else calibrate (iters * 4)
  in
  let per_call = Float.max 1.0 (calibrate 1) in
  (* sample points at linearly growing iteration counts [step, 2*step, ...,
     s*step]: distinct x values keep the through-origin regression
     well-conditioned even for very slow functions (where s bottoms out at
     5 and step at 1, i.e. x = 1..5) *)
  let tri s = float_of_int (s * (s + 1) / 2) in
  let s =
    let rec shrink s =
      if s <= 5 then 5
      else if tri s *. per_call <= sample_budget_ns then s
      else shrink (s - 1)
    in
    shrink 40
  in
  let step =
    max 1 (int_of_float (sample_budget_ns /. (per_call *. tri s)))
  in
  let pts =
    Array.init s (fun i ->
        let iters = (i + 1) * step in
        (float_of_int iters, time_iters f iters))
  in
  (* trim the fifth of the points that sit farthest (relative residual)
     from a first fit — scheduler blips land in a handful of samples —
     then refit on the survivors *)
  let slope0, _ = ols_origin pts in
  let scored =
    Array.map
      (fun (x, y) -> (Float.abs (y -. (slope0 *. x)) /. x, (x, y)))
      pts
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) scored;
  let keep = min (Array.length scored) (max 5 (s * 4 / 5)) in
  let kept = Array.map snd (Array.sub scored 0 keep) in
  ols_origin kept

(* --- component fixtures -------------------------------------------- *)

let k = 256
let smin_x = Array.init k (fun i -> float_of_int ((i * 7919) mod 97))

let dist_a =
  Rbgp_util.Dist.of_weights (Array.init k (fun i -> float_of_int (1 + (i mod 7))))

let dist_b =
  Rbgp_util.Dist.of_weights
    (Array.init k (fun i -> float_of_int (1 + ((i + 3) mod 11))))

let metric = Rbgp_mts.Metric.Line k
let wfa_solver = Rbgp_mts.Work_function.solver metric ~start:(k / 2) ~rng

let smin_solver =
  Rbgp_mts.Smin_mw.solver metric ~start:(k / 2) ~rng:(Rbgp_util.Rng.split rng)

let hst_solver =
  Rbgp_mts.Hst_mts.solver metric ~start:(k / 2) ~rng:(Rbgp_util.Rng.split rng)

let mts_step solver =
  let i = ref 0 in
  fun () ->
    incr i;
    ignore
      (Rbgp_mts.Mts.serve solver (Rbgp_mts.Mts.indicator (!i * 31 mod k) ~n:k))

let offline_reqs = Array.init 512 (fun i -> (i * 131) mod k)
let inst = Rbgp_ring.Instance.blocks ~n:512 ~ell:8
let trace512 = Array.init 4096 (fun i -> (i * 73) mod 512)

(* the E10 comparator shape: exact dynamic OPT on the largest instance the
   experiment uses, pruned vs the retained exhaustive reference *)
let dopt_inst = Rbgp_ring.Instance.blocks ~n:9 ~ell:3
let dopt_table = Rbgp_offline.Dynamic_opt.shared dopt_inst ()
let dopt_trace = Array.init 50 (fun i -> (i * 5) mod 9)

let dyn_alg =
  Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst (Rbgp_util.Rng.split rng)

let dyn_online = Rbgp_core.Dynamic_alg.online dyn_alg

let st_alg =
  Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rbgp_util.Rng.split rng)

let st_online = Rbgp_core.Static_alg.online st_alg
let ig = Rbgp_hitting.Interval_growing.create ~k (Rbgp_util.Rng.split rng)

let online_step (online : Rbgp_ring.Online.t) =
  let i = ref 0 in
  fun () ->
    incr i;
    online.Rbgp_ring.Online.serve (!i * 37 mod 512)

let components_spec : (string * (unit -> unit)) list =
  [
    ( "smin: grad_c k=256",
      fun () ->
        ignore (Rbgp_util.Smin.grad_c ~c:(float_of_int k) smin_x) );
    ( "dist: coupled resample k=256",
      fun () ->
        ignore
          (Rbgp_util.Dist.resample_coupled rng ~current:17 ~old_dist:dist_a
             ~new_dist:dist_b) );
    ("mts: wfa step k=256", mts_step wfa_solver);
    ("mts: smin-mw step k=256", mts_step smin_solver);
    ("mts: hst-mw step k=256", mts_step hst_solver);
    ( "mts: offline DP 512 reqs k=256",
      fun () ->
        ignore (Rbgp_mts.Offline.opt_cost_indicators_free metric offline_reqs)
    );
    ( "offline: segmented static OPT n=512",
      fun () -> ignore (Rbgp_offline.Static_opt.segmented inst trace512) );
    ( "offline: dynamic LB n=512 T=4096",
      fun () -> ignore (Rbgp_offline.Lower_bound.dynamic_lb inst trace512 ())
    );
    ( "offline: exact dyn OPT pruned n=9 ell=3 T=50",
      fun () -> ignore (Rbgp_offline.Dynamic_opt.solve dopt_table dopt_trace)
    );
    ( "offline: exact dyn OPT reference n=9 ell=3 T=50",
      fun () ->
        ignore
          (Rbgp_offline.Dynamic_opt.solve ~reference:true dopt_table dopt_trace)
    );
    ( "offline: interval OPT_R n=512 T=4096",
      fun () ->
        ignore
          (Rbgp_offline.Lower_bound.interval_opt inst trace512 ~shift:0
             ~epsilon:0.5) );
    ("core: onl-dynamic serve n=512", online_step dyn_online);
    ("core: onl-static serve n=512", online_step st_online);
    ( "hitting: interval-growing serve k=256",
      let i = ref 0 in
      fun () ->
        incr i;
        ignore (Rbgp_hitting.Interval_growing.serve ig (!i * 97 mod k)) );
  ]

let run_benchmarks () =
  let tbl = Rbgp_util.Tbl.create ~headers:[ "benchmark"; "time/run"; "r2" ] in
  let components =
    List.map
      (fun (name, f) ->
        let est, r2 = measure f in
        let human t =
          if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
          else Printf.sprintf "%.0f ns" t
        in
        Rbgp_util.Tbl.add_row tbl
          [ name; human est; Printf.sprintf "%.3f" r2 ];
        (name, est, r2))
      components_spec
  in
  print_endline
    "component micro-benchmarks (growing-iteration OLS through origin):";
  Rbgp_util.Tbl.print tbl;
  components

(* --- machine-readable trajectory ----------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

(* redirect stdout to [path] while [f] runs (the experiment tables print
   directly); used both to time table generation quietly and to compare
   sequential vs parallel output byte for byte *)
let with_stdout_to path f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    (fun () -> really_input_string ic (in_channel_length ic))
    ~finally:(fun () -> close_in ic)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type parallel_result = {
  experiment : string;
  domains : int;
  seq_seconds : float;
  cold_seconds : float;  (* pool shut down first: domain spawn in the timing *)
  warm_seconds : float;  (* pool pre-warmed before the timing *)
  identical : bool;  (* seq, cold and warm outputs byte-identical *)
}

(* Sequential vs RBGP_DOMAINS-style fan-out for one experiment.  The cold
   measurement shuts the persistent pool down first, so it pays domain
   spawn inside the timed region (what PR-1 measured, and the number that
   made the old pool look like an algorithmic regression); the warm
   measurement pre-warms the pool, isolating the steady-state speedup the
   harness actually sees after the first table.  All three outputs must be
   byte-identical — the pool's key guarantee.  On a single-core box both
   speedups hover around 1.0. *)
let parallel_check id =
  let domains = 4 in
  let run_with d path =
    Rbgp_util.Pool.set_domains (Some d);
    let (), dt =
      timed (fun () ->
          with_stdout_to path (fun () ->
              Rbgp_harness.Report.run ~quick:true ~seed:42 id))
    in
    Rbgp_util.Pool.set_domains None;
    (read_file path, dt)
  in
  let tmp tag = Filename.temp_file (Printf.sprintf "rbgp_%s_%s" id tag) ".txt" in
  let seq_out, seq_dt = run_with 1 (tmp "seq") in
  Rbgp_util.Pool.shutdown ();
  let cold_out, cold_dt = run_with domains (tmp "cold") in
  Rbgp_util.Pool.warmup ~domains ();
  let warm_out, warm_dt = run_with domains (tmp "warm") in
  let identical =
    String.equal seq_out cold_out && String.equal seq_out warm_out
  in
  Printf.printf
    "parallel check (%s quick): sequential %.2fs, %d domains cold %.2fs \
     (%.2fx) / warm %.2fs (%.2fx), outputs %s\n"
    (String.uppercase_ascii id)
    seq_dt domains cold_dt (seq_dt /. cold_dt) warm_dt (seq_dt /. warm_dt)
    (if identical then "identical" else "DIFFERENT");
  {
    experiment = id;
    domains;
    seq_seconds = seq_dt;
    cold_seconds = cold_dt;
    warm_seconds = warm_dt;
    identical;
  }

(* --- serving engine throughput -------------------------------------- *)

type serve_result = {
  accounting : string;
  requests : int;
  rps : float;
  p50_ns : int;
  p99_ns : int;
  serve_comm : int;
  serve_mig : int;
  resume_identical : bool;
}

(* End-to-end ingest throughput through the streaming engine — the number
   `rbgp serve` reports as req/s — for the journal (O(moves+1)/request)
   and full-scan (O(n+ell)/request) accounting paths, plus a mid-stream
   checkpoint/resume identity check: the resumed engine must finish with
   exactly the costs and assignment of the uninterrupted run.  The
   checkpoint round-trips through its binary encoding so the measurement
   covers the real serialization path. *)
let serve_bench () =
  let n = 512 and ell = 8 and steps = 100_000 and seed = 42 in
  let sinst = Rbgp_ring.Instance.blocks ~n ~ell in
  let trace =
    match Rbgp_workloads.Workloads.rotating ~n ~steps (Rbgp_util.Rng.create 7) with
    | Rbgp_ring.Trace.Fixed a -> a
    | Rbgp_ring.Trace.Adaptive _ -> assert false
  in
  let one accounting label =
    let engine = Rbgp_serve.Engine.create ~accounting ~alg:"onl-dynamic" ~seed sinst in
    Array.iter (fun e -> ignore (Rbgp_serve.Engine.ingest engine e)) trace;
    let m = Rbgp_serve.Engine.metrics engine in
    let r = Rbgp_serve.Engine.result engine in
    let resume_identical =
      let cut = steps / 2 in
      let first = Rbgp_serve.Engine.create ~accounting ~alg:"onl-dynamic" ~seed sinst in
      Array.iter
        (fun e -> ignore (Rbgp_serve.Engine.ingest first e))
        (Array.sub trace 0 cut);
      let ckpt =
        Rbgp_serve.Checkpoint.of_string
          (Rbgp_serve.Checkpoint.to_string (Rbgp_serve.Engine.checkpoint first))
      in
      match Rbgp_serve.Engine.resume ~accounting ckpt with
      | resumed ->
          Array.iter
            (fun e -> ignore (Rbgp_serve.Engine.ingest resumed e))
            (Array.sub trace cut (steps - cut));
          let rr = Rbgp_serve.Engine.result resumed in
          rr.Rbgp_ring.Simulator.cost = r.Rbgp_ring.Simulator.cost
          && rr.Rbgp_ring.Simulator.max_load = r.Rbgp_ring.Simulator.max_load
          && Rbgp_serve.Engine.assignment resumed
             = Rbgp_serve.Engine.assignment engine
      | exception Failure _ -> false
    in
    let sr =
      {
        accounting = label;
        requests = Rbgp_serve.Metrics.requests m;
        rps = Rbgp_serve.Metrics.rps m;
        p50_ns = Rbgp_serve.Metrics.quantile m 0.5;
        p99_ns = Rbgp_serve.Metrics.quantile m 0.99;
        serve_comm = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.comm;
        serve_mig = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.mig;
        resume_identical;
      }
    in
    Printf.printf
      "serve (%s accounting): %d reqs, %.0f req/s, p50 %d ns, p99 %d ns, \
       resume %s\n"
      label sr.requests sr.rps sr.p50_ns sr.p99_ns
      (if resume_identical then "identical" else "DIVERGED");
    sr
  in
  [ one `Incremental "journal"; one `Diff "diff" ]

(* --- domains sweep: interval-sharded batched ingest ------------------ *)

type sweep_config = {
  cfg_name : string;
  cfg_n : int;
  cfg_ell : int;
  cfg_steps : int;
  cfg_batch : int;
  (* small enough that the pool's measured auto-grain must refuse to
     dispatch: the sweep records the observed path for these configs *)
  cfg_expect_sequential : bool;
}

type sweep_point = {
  sp_config : string;
  sp_n : int;
  sp_ell : int;
  sp_requests : int;
  sp_batch : int;
  sp_domains : int;
  sp_seq_rps : float;
  sp_batched_rps : float;
  sp_speedup : float;
  sp_identical : bool;
  sp_sequential_path : bool option;
}

(* everything a decision carries except the wall-clock latency — the
   fields the byte-identity contract covers *)
let decision_sig (d : Rbgp_serve.Engine.decision) =
  Printf.sprintf "%d|%d|%d|%d|%d|%d|%d\n" d.Rbgp_serve.Engine.step
    d.Rbgp_serve.Engine.edge d.Rbgp_serve.Engine.comm
    d.Rbgp_serve.Engine.moved d.Rbgp_serve.Engine.cum_comm
    d.Rbgp_serve.Engine.cum_mig d.Rbgp_serve.Engine.max_load

let decisions_sig ds =
  let buf = Buffer.create (Array.length ds * 16) in
  Array.iter (fun d -> Buffer.add_string buf (decision_sig d)) ds;
  Buffer.contents buf

(* Per-request vs batched ingest for one config across domain counts.
   The per-request baseline is measured once per config — that path never
   dispatches to the pool, so its throughput is domain-independent — and
   every batched run must reproduce its decision stream (sans latency),
   final result and final assignment exactly, at every domain count and
   batch decomposition.  Cost estimates are reset before each point so
   the auto-grain heuristic relearns from scratch (what a fresh process
   would see). *)
let domains_sweep () =
  let cores = Domain.recommended_domain_count () in
  let sweep_domains =
    List.sort_uniq Int.compare [ 1; 2; 4; min cores 8 ]
  in
  let configs =
    [
      {
        cfg_name = "serve-large";
        cfg_n = 4096;
        cfg_ell = 32;
        cfg_steps = 120_000;
        cfg_batch = 1024;
        cfg_expect_sequential = false;
      };
      {
        cfg_name = "serve-quick";
        cfg_n = 256;
        cfg_ell = 8;
        cfg_steps = 30_000;
        cfg_batch = 64;
        cfg_expect_sequential = true;
      };
    ]
  in
  let sweep_config c =
    let inst = Rbgp_ring.Instance.blocks ~n:c.cfg_n ~ell:c.cfg_ell in
    let trace =
      match
        Rbgp_workloads.Workloads.rotating ~n:c.cfg_n ~steps:c.cfg_steps
          (Rbgp_util.Rng.create 7)
      with
      | Rbgp_ring.Trace.Fixed a -> a
      | Rbgp_ring.Trace.Adaptive _ -> assert false
    in
    let seq_eng = Rbgp_serve.Engine.create ~alg:"onl-dynamic" ~seed:42 inst in
    let seq_ds, seq_dt =
      timed (fun () ->
          Array.map (fun e -> Rbgp_serve.Engine.ingest seq_eng e) trace)
    in
    let seq_sig = decisions_sig seq_ds in
    let seq_res = Rbgp_serve.Engine.result seq_eng in
    let seq_asn = Rbgp_serve.Engine.assignment seq_eng in
    let seq_rps = float_of_int c.cfg_steps /. seq_dt in
    List.map
      (fun d ->
        Rbgp_util.Pool.reset_estimates ();
        Rbgp_util.Pool.set_domains (Some d);
        Rbgp_util.Pool.warmup ~domains:d ();
        let eng = Rbgp_serve.Engine.create ~alg:"onl-dynamic" ~seed:42 inst in
        let nbatches = (c.cfg_steps + c.cfg_batch - 1) / c.cfg_batch in
        let out = Array.make nbatches [||] in
        let (), dt =
          timed (fun () ->
              for b = 0 to nbatches - 1 do
                let off = b * c.cfg_batch in
                let len = min c.cfg_batch (c.cfg_steps - off) in
                out.(b) <-
                  Rbgp_serve.Engine.ingest_batch eng (Array.sub trace off len)
              done)
        in
        let went_parallel = Rbgp_util.Pool.last_map_parallel () in
        Rbgp_util.Pool.set_domains None;
        let ds = Array.concat (Array.to_list out) in
        let res = Rbgp_serve.Engine.result eng in
        let identical =
          String.equal (decisions_sig ds) seq_sig
          && res.Rbgp_ring.Simulator.cost = seq_res.Rbgp_ring.Simulator.cost
          && res.Rbgp_ring.Simulator.max_load
             = seq_res.Rbgp_ring.Simulator.max_load
          && Rbgp_serve.Engine.assignment eng = seq_asn
        in
        let batched_rps = float_of_int c.cfg_steps /. dt in
        let sequential_path =
          if c.cfg_expect_sequential then Some (not went_parallel) else None
        in
        Printf.printf
          "domains sweep (%s, n=%d ell=%d batch=%d, %d reqs): d=%d \
           per-request %.0f req/s, batched %.0f req/s (%.2fx), %s%s\n"
          c.cfg_name c.cfg_n c.cfg_ell c.cfg_batch c.cfg_steps d seq_rps
          batched_rps (batched_rps /. seq_rps)
          (if identical then "identical" else "DIVERGED")
          (match sequential_path with
          | Some true -> ", auto-grain kept it sequential"
          | Some false -> ", auto-grain WENT PARALLEL on a small config"
          | None -> "");
        {
          sp_config = c.cfg_name;
          sp_n = c.cfg_n;
          sp_ell = c.cfg_ell;
          sp_requests = c.cfg_steps;
          sp_batch = c.cfg_batch;
          sp_domains = d;
          sp_seq_rps = seq_rps;
          sp_batched_rps = batched_rps;
          sp_speedup = batched_rps /. seq_rps;
          sp_identical = identical;
          sp_sequential_path = sequential_path;
        })
      sweep_domains
  in
  List.concat_map sweep_config configs

(* --- ingest: the zero-copy mmap pipeline ----------------------------- *)

type pipeline_point = {
  pp_alg : string;
  pp_batch : int;
  pp_requests : int;
  pp_rps : float;
}

type ingest_result = {
  ing_requests : int;
  ing_bytes : int;
  ing_mmap_decode_rps : float;
  ing_channel_decode_rps : float;
  ing_decode_speedup : float;
  ing_decode_identical : bool;
  ing_pipeline : pipeline_point list;
  ing_serve_identical : bool;
}

(* The zero-copy ingest headline (introduced in the BENCH_5 slot).

   (a) decode-only throughput of the two trace readers over the same
       framed binary file — the block decoder over an mmap'ed region
       ([Trace_codec.decode_requests_into], no syscalls, no per-byte
       closures) vs the buffered channel reader ([input_request_opt],
       one [input_byte] per varint byte).  Both sides fold the decoded
       edges into count/xor/sum accumulators so the loops stay
       allocation-free and the streams are checked equal.
   (b) pull-to-solve pipeline throughput: [Source.next_batch] from the
       mapped file feeding [Engine.ingest_batch_quiet] — the
       `serve --no-decisions --mmap on` path.  never-move isolates the
       pipeline itself (the solver does no work, like a router that only
       accounts); onl-dynamic is the honest full-solver number, where
       the ~us-per-request solve dominates and the source choice stops
       mattering (EXPERIMENTS.md, ingest sweep).
   (c) an identity bit: serving the same trace quietly from the mmap
       and channel backends must yield byte-identical checkpoints and
       equal final costs.

   CI gates on decode_speedup >= 5, never-move pipeline >= 1M req/s and
   both identity bits. *)
let ingest_bench () =
  let n = 4096 and ell = 32 in
  let steps = 2_000_000 and id_steps = 120_000 in
  let gen s =
    match Rbgp_workloads.Workloads.rotating ~n ~steps:s (Rbgp_util.Rng.create 7) with
    | Rbgp_ring.Trace.Fixed a -> a
    | Rbgp_ring.Trace.Adaptive _ -> assert false
  in
  let path = Filename.temp_file "rbgp_bench_ingest" ".rbt" in
  let id_path = Filename.temp_file "rbgp_bench_ingest_id" ".rbt" in
  Fun.protect ~finally:(fun () ->
      Sys.remove path;
      Sys.remove id_path)
  @@ fun () ->
  Rbgp_workloads.Trace_codec.write ~path ~n ~ell ~seed:7 (gen steps);
  Rbgp_workloads.Trace_codec.write ~path:id_path ~n ~ell ~seed:7 (gen id_steps);
  let bytes = (Unix.stat path).Unix.st_size in
  (* (a) decode-only: same stream digest on both sides *)
  let block = Array.make 65536 0 in
  let decode_mmap () =
    let r = Rbgp_workloads.Trace_codec.map ~path path in
    ignore (Rbgp_workloads.Trace_codec.header_of_region ~path r);
    let count = ref 0 and acc = ref 0 and sum = ref 0 in
    let continue = ref true in
    while !continue do
      let got =
        Rbgp_workloads.Trace_codec.decode_requests_into ~path r ~n block
          ~limit:(Array.length block)
      in
      if got = 0 then continue := false
      else begin
        for j = 0 to got - 1 do
          acc := !acc lxor block.(j);
          sum := !sum + block.(j)
        done;
        count := !count + got
      end
    done;
    (!count, !acc, !sum)
  in
  let decode_channel () =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    ignore (Rbgp_workloads.Trace_codec.input_header ~path ic);
    let count = ref 0 and acc = ref 0 and sum = ref 0 in
    let continue = ref true in
    while !continue do
      match Rbgp_workloads.Trace_codec.input_request_opt ~path ic ~n with
      | Some e ->
          acc := !acc lxor e;
          sum := !sum + e;
          incr count
      | None -> continue := false
    done;
    (!count, !acc, !sum)
  in
  (* page the file in once so both timed passes run against warm cache *)
  ignore (decode_channel ());
  let (mc, macc, msum), mdt = timed decode_mmap in
  let (cc, cacc, csum), cdt = timed decode_channel in
  (* cross-check the single-pull readers against the same digest too:
     region_request_opt (mmap) and fold (channel) must agree with the
     block decoder frame for frame *)
  let decode_identical =
    let r = Rbgp_workloads.Trace_codec.map ~path path in
    ignore (Rbgp_workloads.Trace_codec.header_of_region ~path r);
    let acc = ref 0 and sum = ref 0 and count = ref 0 in
    let continue = ref true in
    while !continue do
      match Rbgp_workloads.Trace_codec.region_request_opt ~path r ~n with
      | Some e ->
          acc := !acc lxor e;
          sum := !sum + e;
          incr count
      | None -> continue := false
    done;
    let _, (ca, cs, cn) =
      Rbgp_workloads.Trace_codec.fold ~path ~n ~init:(0, 0, 0)
        ~f:(fun (a, s, k) e -> (a lxor e, s + e, k + 1))
    in
    mc = steps && cc = steps && macc = cacc && msum = csum
    && !count = steps && !acc = ca && !sum = cs && !count = cn
    && !acc = macc && !sum = msum
  in
  let mmap_rps = float_of_int mc /. mdt
  and chan_rps = float_of_int cc /. cdt in
  Printf.printf
    "ingest decode (%d reqs, %d bytes): mmap block %.0f req/s, channel \
     %.0f req/s (%.1fx), streams %s\n"
    steps bytes mmap_rps chan_rps (mmap_rps /. chan_rps)
    (if decode_identical then "identical" else "DIVERGED");
  (* (b) pull-to-solve pipeline: Source.next_batch -> ingest_batch_quiet *)
  let sinst = Rbgp_ring.Instance.blocks ~n ~ell in
  let pipeline ~alg ~batch ~requests tpath =
    let engine = Rbgp_serve.Engine.create ~alg ~seed:42 sinst in
    let src = Rbgp_serve.Source.open_file ~mmap:`On ~n tpath in
    let buf = Array.make batch 0 in
    let (), dt =
      timed (fun () ->
          let continue = ref true in
          while !continue do
            let got = Rbgp_serve.Source.next_batch src buf ~limit:batch in
            if got = 0 then continue := false
            else
              Rbgp_serve.Engine.ingest_batch_quiet engine
                (if got = batch then buf else Array.sub buf 0 got)
          done)
    in
    Rbgp_serve.Source.close src;
    assert (Rbgp_serve.Engine.pos engine = requests);
    let rps = float_of_int requests /. dt in
    Printf.printf
      "ingest pipeline (mmap, quiet, n=%d ell=%d): %s batch=%d, %d reqs, \
       %.0f req/s\n"
      n ell alg batch requests rps;
    { pp_alg = alg; pp_batch = batch; pp_requests = requests; pp_rps = rps }
  in
  let pipeline_points =
    List.map
      (fun batch -> pipeline ~alg:"never-move" ~batch ~requests:steps path)
      [ 256; 1024; 4096 ]
    @ [ pipeline ~alg:"onl-dynamic" ~batch:1024 ~requests:id_steps id_path ]
  in
  (* (c) mmap-vs-channel serve identity, checkpoints included *)
  let quiet_ckpt mmap =
    let engine = Rbgp_serve.Engine.create ~alg:"onl-dynamic" ~seed:42 sinst in
    let src = Rbgp_serve.Source.open_file ~mmap ~n id_path in
    let buf = Array.make 1024 0 in
    let continue = ref true in
    while !continue do
      let got = Rbgp_serve.Source.next_batch src buf ~limit:1024 in
      if got = 0 then continue := false
      else
        Rbgp_serve.Engine.ingest_batch_quiet engine
          (if got = 1024 then buf else Array.sub buf 0 got)
    done;
    Rbgp_serve.Source.close src;
    ( Rbgp_serve.Checkpoint.to_string (Rbgp_serve.Engine.checkpoint engine),
      Rbgp_serve.Engine.result engine )
  in
  let mck, mres = quiet_ckpt `On and cck, cres = quiet_ckpt `Off in
  let serve_identical =
    String.equal mck cck
    && mres.Rbgp_ring.Simulator.cost = cres.Rbgp_ring.Simulator.cost
    && mres.Rbgp_ring.Simulator.max_load = cres.Rbgp_ring.Simulator.max_load
  in
  Printf.printf
    "ingest serve identity (onl-dynamic, %d reqs): mmap vs channel \
     checkpoints %s\n"
    id_steps
    (if serve_identical then "byte-identical" else "DIVERGED");
  {
    ing_requests = steps;
    ing_bytes = bytes;
    ing_mmap_decode_rps = mmap_rps;
    ing_channel_decode_rps = chan_rps;
    ing_decode_speedup = mmap_rps /. chan_rps;
    ing_decode_identical = decode_identical;
    ing_pipeline = pipeline_points;
    ing_serve_identical = serve_identical;
  }

type faults_point = {
  fp_requests : int;
  fp_baseline_rps : float;
  fp_disabled_rps : float;
  fp_armed_rps : float;
  fp_overhead_frac : float;
  fp_identical : bool;
}

(* The crash-safety promise is that the fault layer costs nothing when it
   is off.  Three timings of the same quiet never-move pipeline over one
   mmap'ed trace:

   - baseline: the hook-free hot loop — [Trace_codec.decode_requests_into]
     feeding [Engine.ingest_batch_quiet] directly, no [Source], no
     [Fault.armed] checks anywhere;
   - disabled: the real `serve --mmap on` path through [Source.next_batch]
     with the fault layer disabled (the shipped default);
   - armed: the same path under `crash@2000000000` — a plan that never
     fires, so the cost is the per-block [request_fault_pending] range
     check plus the per-pull read hooks.

   overhead_frac = (baseline - disabled) / baseline is the number CI
   gates below 0.02; the armed figure is reported alongside so a
   regression in the armed-but-idle path is visible in the history.
   Each timing is best-of-3 to shed scheduler noise, and all three runs
   must end in byte-identical checkpoints. *)
let faults_bench () =
  let n = 4096 and ell = 32 and steps = 1_000_000 in
  let trace =
    match
      Rbgp_workloads.Workloads.rotating ~n ~steps (Rbgp_util.Rng.create 7)
    with
    | Rbgp_ring.Trace.Fixed a -> a
    | Rbgp_ring.Trace.Adaptive _ -> assert false
  in
  let path = Filename.temp_file "rbgp_bench_faults" ".rbt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Rbgp_workloads.Trace_codec.write ~path ~n ~ell ~seed:7 trace;
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let batch = 4096 in
  let block = Array.make batch 0 in
  let finish engine =
    assert (Rbgp_serve.Engine.pos engine = steps);
    Rbgp_serve.Checkpoint.to_string (Rbgp_serve.Engine.checkpoint engine)
  in
  let baseline () =
    let engine = Rbgp_serve.Engine.create ~alg:"never-move" ~seed:42 inst in
    let r = Rbgp_workloads.Trace_codec.map ~path path in
    ignore (Rbgp_workloads.Trace_codec.header_of_region ~path r);
    let continue = ref true in
    while !continue do
      let got =
        Rbgp_workloads.Trace_codec.decode_requests_into ~path r ~n block
          ~limit:batch
      in
      if got = 0 then continue := false
      else
        Rbgp_serve.Engine.ingest_batch_quiet engine
          (if got = batch then block else Array.sub block 0 got)
    done;
    finish engine
  in
  let pipeline () =
    let engine = Rbgp_serve.Engine.create ~alg:"never-move" ~seed:42 inst in
    let src = Rbgp_serve.Source.open_file ~mmap:`On ~n path in
    let continue = ref true in
    while !continue do
      let got = Rbgp_serve.Source.next_batch src block ~limit:batch in
      if got = 0 then continue := false
      else
        Rbgp_serve.Engine.ingest_batch_quiet engine
          (if got = batch then block else Array.sub block 0 got)
    done;
    Rbgp_serve.Source.close src;
    finish engine
  in
  (* warm the page cache before any timed pass *)
  ignore (baseline ());
  (* Interleave the three configs round-robin and keep each config's
     fastest pass: timing each config in consecutive passes lets one
     transient machine stall land entirely on one config and fake a
     large overhead (or a negative one), while under interleaving every
     config samples the same conditions and the minima are comparable. *)
  let rounds = 5 in
  let armed f =
    Fun.protect ~finally:Rbgp_serve.Fault.disable (fun () ->
        Rbgp_serve.Fault.configure "crash@2000000000";
        timed f)
  in
  let base_ck = ref "" and dis_ck = ref "" and armed_ck = ref "" in
  let base_dt = ref infinity
  and dis_dt = ref infinity
  and armed_dt = ref infinity in
  for _ = 1 to rounds do
    let take ck dt (c, d) =
      ck := c;
      if d < !dt then dt := d
    in
    take base_ck base_dt (timed baseline);
    take dis_ck dis_dt (timed pipeline);
    take armed_ck armed_dt (armed pipeline)
  done;
  let rps dt = float_of_int steps /. !dt in
  let base_ck, baseline_rps = (!base_ck, rps base_dt) in
  let dis_ck, disabled_rps = (!dis_ck, rps dis_dt) in
  let armed_ck, armed_rps = (!armed_ck, rps armed_dt) in
  let identical = String.equal base_ck dis_ck && String.equal dis_ck armed_ck in
  let overhead = (baseline_rps -. disabled_rps) /. baseline_rps in
  Printf.printf
    "faults overhead (never-move, quiet, %d reqs): hook-free %.0f req/s, \
     disabled %.0f req/s (%.2f%% overhead), armed-idle %.0f req/s, \
     checkpoints %s\n"
    steps baseline_rps disabled_rps (100. *. overhead) armed_rps
    (if identical then "identical" else "DIVERGED");
  {
    fp_requests = steps;
    fp_baseline_rps = baseline_rps;
    fp_disabled_rps = disabled_rps;
    fp_armed_rps = armed_rps;
    fp_overhead_frac = overhead;
    fp_identical = identical;
  }

type net_point = {
  np_tenants : int;
  np_requests : int;  (* total across all tenants *)
  np_batch : int;
  np_pipe_rps : float;
  np_socket_rps : float;
  np_overhead_frac : float;
  np_p50_ns : int;  (* per-RPC round trip, client-observed *)
  np_p99_ns : int;
  np_identical : bool;
}

(* What the socket costs: the same quiet batches served two ways — the
   in-process pipe (Engine.ingest_batch_quiet driven directly, the PR-6
   pipeline) versus the full networked path (RBGN framing, dechunker,
   select loop, tenant router) over a Unix socket, 1 tenant and then 4
   tenants multiplexed on one connection.  Client and server run in one
   process: the client's [pump] callback single-steps the server
   whenever the client would block, so the timing charges every byte of
   framing, buffering and dispatch but no scheduler handoffs.  Latency
   quantiles are client-observed per-RPC round trips; every tenant's
   final engine checkpoint must be byte-identical to its pipe twin (the
   isolation contract), and CI gates the socket throughput overhead
   below 30% of pipe throughput. *)
let net_bench () =
  let n = 1024 and ell = 16 and steps = 100_000 and batch = 4096 in
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let trace_for seed =
    match Rbgp_workloads.Workloads.rotating ~n ~steps (Rbgp_util.Rng.create seed) with
    | Rbgp_ring.Trace.Fixed a -> a
    | Rbgp_ring.Trace.Adaptive _ -> assert false
  in
  let batches_of trace =
    let rec go pos acc =
      if pos >= Array.length trace then List.rev acc
      else
        let len = min batch (Array.length trace - pos) in
        go (pos + len) (Array.sub trace pos len :: acc)
    in
    go 0 []
  in
  let pipe_run trace =
    let engine = Rbgp_serve.Engine.create ~alg:"onl-dynamic" ~seed:42 inst in
    List.iter (Rbgp_serve.Engine.ingest_batch_quiet engine) (batches_of trace);
    assert (Rbgp_serve.Engine.pos engine = steps);
    Rbgp_serve.Checkpoint.to_string (Rbgp_serve.Engine.checkpoint engine)
  in
  let point tenants =
    let traces = List.init tenants (fun i -> (i, trace_for (100 + i))) in
    let rounds =
      (* round-robin: one batch per tenant per turn, like the client CLI *)
      let per_tenant = List.map (fun (i, t) -> (i, batches_of t)) traces in
      let rec turn acc lists =
        if List.for_all (fun (_, bs) -> bs = []) lists then List.rev acc
        else
          let heads =
            List.filter_map
              (fun (i, bs) ->
                match bs with [] -> None | b :: _ -> Some (i, b))
              lists
          in
          let rest = List.map (fun (i, bs) ->
              (i, match bs with [] -> [] | _ :: tl -> tl)) lists
          in
          turn (heads :: acc) rest
      in
      turn [] per_tenant
    in
    let pipe_pass () = List.map (fun (_, t) -> pipe_run t) traces in
    (* One full socket-served pass over fresh engines: a new router,
       server and connection each time, so repeated passes are
       independent and deterministic (same trace, same seed → same
       checkpoint bytes every pass). *)
    let sock_pass () =
      let sock_path = Filename.temp_file "rbgp_bench_net" ".sock" in
      Sys.remove sock_path;
      let router = Rbgp_serve.Tenant.create () in
      let addr = Rbgp_serve.Net.Unix_sock sock_path in
      let server = Rbgp_serve.Net.server ~router addr in
      Fun.protect ~finally:(fun () -> Rbgp_serve.Net.shutdown server)
      @@ fun () ->
      let cl =
        Rbgp_serve.Net.connect
          ~pump:(fun () -> ignore (Rbgp_serve.Net.step server))
          addr
      in
      List.iter
        (fun (i, _) ->
          ignore
            (Rbgp_serve.Net.open_stream cl ~stream:(i + 1)
               {
                 Rbgp_serve.Proto.tenant = Printf.sprintf "t%d" i;
                 alg = "onl-dynamic";
                 n;
                 ell;
                 epsilon = 0.5;
                 seed = 42;
               }))
        traces;
      let rpc_ns = ref [] in
      let (), dt =
        timed (fun () ->
            List.iter
              (List.iter (fun (i, b) ->
                   let t0 = Unix.gettimeofday () in
                   ignore
                     (Rbgp_serve.Net.request_quiet cl ~stream:(i + 1) b ~pos:0
                        ~len:(Array.length b));
                   let ns =
                     int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
                   in
                   rpc_ns := ns :: !rpc_ns))
              rounds)
      in
      let cks =
        List.map
          (fun (i, _) ->
            match Rbgp_serve.Tenant.find router (Printf.sprintf "t%d" i) with
            | Some tn -> (
                match Rbgp_serve.Tenant.engine tn with
                | Some engine ->
                    Rbgp_serve.Checkpoint.to_string
                      (Rbgp_serve.Engine.checkpoint engine)
                | None -> "released")
            | None -> "missing")
          traces
      in
      Rbgp_serve.Net.close cl;
      (cks, !rpc_ns, dt)
    in
    (* Alternate the two sides and keep each side's fastest pass — the
       same anti-stall discipline as the faults bench: timing pipe and
       socket in separate single passes lets one transient machine stall
       land entirely on one side and fake (or hide) the overhead. *)
    ignore (pipe_pass ());
    let net_rounds = 3 in
    let pipe_cks = ref [] and pipe_dt = ref infinity in
    let sock_cks = ref [] and sock_dt = ref infinity and rpc_ns = ref [] in
    for _ = 1 to net_rounds do
      let cks, dt = timed pipe_pass in
      pipe_cks := cks;
      if dt < !pipe_dt then pipe_dt := dt;
      let cks, rpcs, dt = sock_pass () in
      sock_cks := cks;
      if dt < !sock_dt then begin
        sock_dt := dt;
        rpc_ns := rpcs
      end
    done;
    let pipe_cks = !pipe_cks and pipe_dt = !pipe_dt in
    let sock_cks = !sock_cks and sock_dt = !sock_dt in
    let identical = List.equal String.equal pipe_cks sock_cks in
    let total = tenants * steps in
    let pipe_rps = float_of_int total /. pipe_dt
    and sock_rps = float_of_int total /. sock_dt in
    let lats = Array.of_list !rpc_ns in
    Array.sort Int.compare lats;
    let quantile q =
      if Array.length lats = 0 then 0
      else
        lats.(min (Array.length lats - 1)
                (int_of_float (q *. float_of_int (Array.length lats))))
    in
    let overhead = (pipe_rps -. sock_rps) /. pipe_rps in
    Printf.printf
      "net serve (onl-dynamic quiet, n=%d ell=%d, %d tenant%s, %d reqs): \
       pipe %.0f req/s, socket %.0f req/s (%.1f%% overhead), rpc p50 %.1f \
       us p99 %.1f us, checkpoints %s\n"
      n ell tenants
      (if tenants = 1 then "" else "s")
      total pipe_rps sock_rps (100. *. overhead)
      (float_of_int (quantile 0.5) /. 1e3)
      (float_of_int (quantile 0.99) /. 1e3)
      (if identical then "identical" else "DIVERGED");
    {
      np_tenants = tenants;
      np_requests = total;
      np_batch = batch;
      np_pipe_rps = pipe_rps;
      np_socket_rps = sock_rps;
      np_overhead_frac = overhead;
      np_p50_ns = quantile 0.5;
      np_p99_ns = quantile 0.99;
      np_identical = identical;
    }
  in
  let p1 = point 1 in
  let p4 = point 4 in
  [ p1; p4 ]

let write_bench_json ~components ~experiments ~parallel ~serve ~sweep ~ingest
    ~faults ~net =
  let oc = open_out "BENCH_7.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"rbgp-bench/7\",\n";
  out "  \"components\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r2\": %s}%s\n"
        (json_escape name) (json_num ns) (json_num r2)
        (if i < List.length components - 1 then "," else ""))
    components;
  out "  ],\n  \"experiments\": [\n";
  List.iteri
    (fun i (id, dt) ->
      out "    {\"id\": \"%s\", \"quick_seconds\": %s}%s\n" (json_escape id)
        (json_num dt)
        (if i < List.length experiments - 1 then "," else ""))
    experiments;
  out "  ],\n  \"parallel\": [\n";
  List.iteri
    (fun i p ->
      out
        "    {\"experiment\": \"%s\", \"domains\": %d, \"seq_seconds\": %s, \
         \"cold_par_seconds\": %s, \"warm_par_seconds\": %s, \
         \"cold_speedup\": %s, \"warm_speedup\": %s, \"identical\": %b}%s\n"
        (json_escape p.experiment) p.domains
        (json_num p.seq_seconds) (json_num p.cold_seconds)
        (json_num p.warm_seconds)
        (json_num (p.seq_seconds /. p.cold_seconds))
        (json_num (p.seq_seconds /. p.warm_seconds))
        p.identical
        (if i < List.length parallel - 1 then "," else ""))
    parallel;
  out "  ],\n  \"serve\": [\n";
  List.iteri
    (fun i s ->
      out
        "    {\"accounting\": \"%s\", \"alg\": \"onl-dynamic\", \
         \"requests\": %d, \"rps\": %s, \"p50_ns\": %d, \"p99_ns\": %d, \
         \"comm\": %d, \"mig\": %d, \"resume_identical\": %b}%s\n"
        (json_escape s.accounting) s.requests (json_num s.rps) s.p50_ns
        s.p99_ns s.serve_comm s.serve_mig s.resume_identical
        (if i < List.length serve - 1 then "," else ""))
    serve;
  out "  ],\n  \"domains_sweep\": [\n";
  List.iteri
    (fun i p ->
      out
        "    {\"config\": \"%s\", \"n\": %d, \"ell\": %d, \"requests\": %d, \
         \"batch\": %d, \"domains\": %d, \"seq_rps\": %s, \
         \"batched_rps\": %s, \"speedup\": %s, \"identical\": %b, \
         \"sequential_path\": %s}%s\n"
        (json_escape p.sp_config) p.sp_n p.sp_ell p.sp_requests p.sp_batch
        p.sp_domains (json_num p.sp_seq_rps) (json_num p.sp_batched_rps)
        (json_num p.sp_speedup) p.sp_identical
        (match p.sp_sequential_path with
        | Some b -> string_of_bool b
        | None -> "null")
        (if i < List.length sweep - 1 then "," else ""))
    sweep;
  out "  ],\n  \"ingest\": {\n";
  out "    \"requests\": %d,\n    \"bytes\": %d,\n" ingest.ing_requests
    ingest.ing_bytes;
  out "    \"mmap_decode_rps\": %s,\n    \"channel_decode_rps\": %s,\n"
    (json_num ingest.ing_mmap_decode_rps)
    (json_num ingest.ing_channel_decode_rps);
  out "    \"decode_speedup\": %s,\n    \"decode_identical\": %b,\n"
    (json_num ingest.ing_decode_speedup)
    ingest.ing_decode_identical;
  out "    \"pipeline\": [\n";
  List.iteri
    (fun i p ->
      out
        "      {\"alg\": \"%s\", \"batch\": %d, \"requests\": %d, \
         \"rps\": %s}%s\n"
        (json_escape p.pp_alg) p.pp_batch p.pp_requests (json_num p.pp_rps)
        (if i < List.length ingest.ing_pipeline - 1 then "," else ""))
    ingest.ing_pipeline;
  out "    ],\n    \"serve_identical\": %b\n  },\n" ingest.ing_serve_identical;
  out "  \"faults\": {\n";
  out "    \"requests\": %d,\n" faults.fp_requests;
  out "    \"baseline_rps\": %s,\n    \"disabled_rps\": %s,\n"
    (json_num faults.fp_baseline_rps)
    (json_num faults.fp_disabled_rps);
  out "    \"armed_idle_rps\": %s,\n    \"overhead_frac\": %s,\n"
    (json_num faults.fp_armed_rps)
    (json_num faults.fp_overhead_frac);
  out "    \"identical\": %b\n  },\n" faults.fp_identical;
  out "  \"net\": [\n";
  List.iteri
    (fun i p ->
      out
        "    {\"tenants\": %d, \"requests\": %d, \"batch\": %d, \
         \"pipe_rps\": %s, \"socket_rps\": %s, \"overhead_frac\": %s, \
         \"rpc_p50_ns\": %d, \"rpc_p99_ns\": %d, \"identical\": %b}%s\n"
        p.np_tenants p.np_requests p.np_batch
        (json_num p.np_pipe_rps) (json_num p.np_socket_rps)
        (json_num p.np_overhead_frac) p.np_p50_ns p.np_p99_ns p.np_identical
        (if i < List.length net - 1 then "," else ""))
    net;
  out "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_7.json"

let () =
  let components = run_benchmarks () in
  print_endline "\nexperiment tables (quick mode; run `rbgp exp <id>` for full size):";
  (* warm the pool first so the per-experiment wall clocks measure steady
     state rather than charging domain spawn to whichever table runs first *)
  Rbgp_util.Pool.warmup ();
  let experiments =
    List.map
      (fun ((id, _desc, _f) :
             string * string * (?quick:bool -> ?seed:int -> unit -> unit)) ->
        let (), dt =
          timed (fun () -> Rbgp_harness.Report.run ~quick:true ~seed:42 id)
        in
        (id, dt))
      Rbgp_harness.Report.all
  in
  print_newline ();
  let parallel = [ parallel_check "e8"; parallel_check "e10" ] in
  print_newline ();
  let serve = serve_bench () in
  print_newline ();
  let sweep = domains_sweep () in
  print_newline ();
  let ingest = ingest_bench () in
  print_newline ();
  let faults = faults_bench () in
  print_newline ();
  let net = net_bench () in
  write_bench_json ~components ~experiments ~parallel ~serve ~sweep ~ingest
    ~faults ~net;
  (* the fidelity gate: a component whose fit explains less than half the
     variance is a measurement failure, not a data point *)
  let low =
    List.filter (fun (_, _, r2) -> not (r2 >= 0.5)) components
  in
  if low <> [] then begin
    List.iter
      (fun (name, _, r2) ->
        Printf.eprintf "component %s: r^2 %.3f below the 0.5 floor\n" name r2)
      low;
    exit 1
  end
