(* The benchmark harness has two layers:

   1. bechamel micro-benchmarks: one [Test.make] per component that the
      experiments exercise (smin gradients, couplings, MTS solver steps,
      offline DPs, slicing/clustering/scheduling steps, whole-algorithm
      request handling).  These document the per-request cost of every
      moving part and catch performance regressions.

   2. the experiment tables E1-E10 (the reproduction's stand-in for the
      paper's evaluation section), regenerated in quick mode so that a
      single `dune exec bench/main.exe` reproduces every reported table.
      Run `rbgp exp <id>` (without --quick) for the full-size versions. *)

open Bechamel
open Toolkit

let rng = Rbgp_util.Rng.create 20230717

(* --- component fixtures -------------------------------------------- *)

let k = 256
let smin_x = Array.init k (fun i -> float_of_int ((i * 7919) mod 97))

let bench_smin_grad =
  Test.make ~name:"smin: grad_c k=256"
    (Staged.stage (fun () -> Rbgp_util.Smin.grad_c ~c:(float_of_int k) smin_x))

let dist_a = Rbgp_util.Dist.of_weights (Array.init k (fun i -> float_of_int (1 + (i mod 7))))
let dist_b = Rbgp_util.Dist.of_weights (Array.init k (fun i -> float_of_int (1 + ((i + 3) mod 11))))

let bench_coupling =
  Test.make ~name:"dist: coupled resample k=256"
    (Staged.stage (fun () ->
         Rbgp_util.Dist.resample_coupled rng ~current:17 ~old_dist:dist_a
           ~new_dist:dist_b))

let metric = Rbgp_mts.Metric.Line k

let wfa_solver = Rbgp_mts.Work_function.solver metric ~start:(k / 2) ~rng
let smin_solver = Rbgp_mts.Smin_mw.solver metric ~start:(k / 2) ~rng:(Rbgp_util.Rng.split rng)
let hst_solver = Rbgp_mts.Hst_mts.solver metric ~start:(k / 2) ~rng:(Rbgp_util.Rng.split rng)

let mts_bench name solver =
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr i;
         Rbgp_mts.Mts.serve solver (Rbgp_mts.Mts.indicator (!i * 31 mod k) ~n:k)))

let bench_wfa = mts_bench "mts: wfa step k=256" wfa_solver
let bench_smin_mts = mts_bench "mts: smin-mw step k=256" smin_solver
let bench_hst = mts_bench "mts: hst-mw step k=256" hst_solver

let offline_reqs = Array.init 512 (fun i -> (i * 131) mod k)

let bench_offline_mts =
  Test.make ~name:"mts: offline DP 512 reqs k=256"
    (Staged.stage (fun () ->
         Rbgp_mts.Offline.opt_cost_indicators_free metric offline_reqs))

let inst = Rbgp_ring.Instance.blocks ~n:512 ~ell:8
let trace512 = Array.init 4096 (fun i -> (i * 73) mod 512)

let bench_static_opt =
  Test.make ~name:"offline: segmented static OPT n=512"
    (Staged.stage (fun () -> Rbgp_offline.Static_opt.segmented inst trace512))

let bench_dynamic_lb =
  Test.make ~name:"offline: dynamic LB n=512 T=4096"
    (Staged.stage (fun () -> Rbgp_offline.Lower_bound.dynamic_lb inst trace512 ()))

let dyn_alg =
  Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst (Rbgp_util.Rng.split rng)

let dyn_online = Rbgp_core.Dynamic_alg.online dyn_alg

let bench_dyn_serve =
  let i = ref 0 in
  Test.make ~name:"core: onl-dynamic serve n=512"
    (Staged.stage (fun () ->
         incr i;
         dyn_online.Rbgp_ring.Online.serve (!i * 37 mod 512)))

let st_alg = Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rbgp_util.Rng.split rng)
let st_online = Rbgp_core.Static_alg.online st_alg

let bench_static_serve =
  let i = ref 0 in
  Test.make ~name:"core: onl-static serve n=512"
    (Staged.stage (fun () ->
         incr i;
         st_online.Rbgp_ring.Online.serve (!i * 37 mod 512)))

let ig = Rbgp_hitting.Interval_growing.create ~k (Rbgp_util.Rng.split rng)

let bench_interval_growing =
  let i = ref 0 in
  Test.make ~name:"hitting: interval-growing serve k=256"
    (Staged.stage (fun () ->
         incr i;
         Rbgp_hitting.Interval_growing.serve ig (!i * 97 mod k)))

let tests =
  Test.make_grouped ~name:"rbgp"
    [
      bench_smin_grad;
      bench_coupling;
      bench_wfa;
      bench_smin_mts;
      bench_hst;
      bench_offline_mts;
      bench_static_opt;
      bench_dynamic_lb;
      bench_dyn_serve;
      bench_static_serve;
      bench_interval_growing;
    ]

let run_benchmarks () =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort compare rows in
  let tbl = Rbgp_util.Tbl.create ~headers:[ "benchmark"; "time/run"; "r2" ] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | _ -> Float.nan
      in
      let human t =
        if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
        else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
        else Printf.sprintf "%.0f ns" t
      in
      Rbgp_util.Tbl.add_row tbl
        [
          name;
          human est;
          (match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-");
        ])
    rows;
  print_endline "component micro-benchmarks (bechamel, OLS estimates):";
  Rbgp_util.Tbl.print tbl

let () =
  run_benchmarks ();
  print_endline "\nexperiment tables (quick mode; run `rbgp exp <id>` for full size):";
  List.iter
    (fun ((id, _desc, _f) :
           string * string * (?quick:bool -> ?seed:int -> unit -> unit)) ->
      Rbgp_harness.Report.run ~quick:true ~seed:42 id)
    Rbgp_harness.Report.all
