# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench experiments examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# full test log, as shipped in test_output.txt
test-log:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

experiments:
	dune exec bin/rbgp_cli.exe -- exp all | tee experiments_full.txt

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ml_allreduce.exe
	dune exec examples/adversarial_ring.exe
	dune exec examples/compare_algorithms.exe
	dune exec examples/capacity_planning.exe

clean:
	dune clean
