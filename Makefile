# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json experiments examples lint clean

all: build

build:
	dune build @all

test:
	dune runtest

# full test log, as shipped in test_output.txt
test-log:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# the bench run also writes the machine-readable trajectory file
# (BENCH_3.json: component ns/run + r^2, per-experiment wall clock,
# parallel-vs-sequential speedup, serve-loop throughput + resume identity);
# this target just validates it parses
bench-json: bench
	@python3 -c "import json; json.load(open('BENCH_3.json')); print('BENCH_3.json: valid JSON')"

experiments:
	dune exec bin/rbgp_cli.exe -- exp all | tee experiments_full.txt

# static analysis over lib/ bin/ bench/; exits 1 on any finding that is
# not justified in lint/allowlist.txt and writes the CI artifact
lint:
	dune exec bin/rbgp_lint_main.exe -- lib bin bench \
	  --allowlist lint/allowlist.txt --json-out lint_report.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ml_allreduce.exe
	dune exec examples/adversarial_ring.exe
	dune exec examples/compare_algorithms.exe
	dune exec examples/capacity_planning.exe

clean:
	dune clean
