# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json experiments examples lint clean

all: build

build:
	dune build @all

test:
	dune runtest

# full test log, as shipped in test_output.txt
test-log:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# the bench run also writes the machine-readable trajectory file
# (BENCH_7.json: component ns/run + r^2, per-experiment wall clock,
# parallel-vs-sequential speedup, serve-loop throughput + resume identity,
# the domains sweep for the interval-sharded batched request path, the
# zero-copy ingest section: mmap-vs-channel decode throughput and the
# pull-to-solve pipeline with identity bits, the fault-layer section:
# hook-free vs disabled vs armed-idle pipeline throughput, and the net
# section: socket transport vs in-process pipe, 1 and 4 tenants over one
# connection, with RPC latency quantiles and checkpoint identity); this
# target validates it parses and enforces the measurement-fidelity floor
# (any component fit with r^2 < 0.5 fails), the ingest identity bits,
# the faults-off overhead ceiling (< 2% vs the hook-free loop), the
# per-tenant socket/pipe checkpoint identity, and the socket throughput
# overhead ceiling (< 30% vs the pipe on the quiet path)
bench-json: bench
	@python3 -c "import json, sys; \
d = json.load(open('BENCH_7.json')); \
bad = [c for c in d['components'] if c['r2'] is None or c['r2'] < 0.5]; \
ing = d['ingest']; \
flt = d['faults']; \
net = d['net']; \
sys.exit('ingest decode/serve identity broken') if not (ing['decode_identical'] and ing['serve_identical']) else None; \
sys.exit('fault-layer runs diverged') if not flt['identical'] else None; \
sys.exit('faults-off overhead %.2f%% above the 2%% ceiling' % (100 * flt['overhead_frac'])) if flt['overhead_frac'] >= 0.02 else None; \
sys.exit('socket-served checkpoints diverged from pipe runs') if not all(p['identical'] for p in net) else None; \
sys.exit('socket overhead above the 30%% ceiling: ' + ', '.join('%d tenants %.1f%%' % (p['tenants'], 100 * p['overhead_frac']) for p in net if p['overhead_frac'] >= 0.30)) if any(p['overhead_frac'] >= 0.30 for p in net) else None; \
sys.exit('components below the r^2 floor: ' + ', '.join(c['name'] for c in bad)) if bad else \
print('BENCH_7.json: valid JSON, all %d component fits have r^2 >= 0.5, ingest identical (decode %.1fx), faults-off overhead %.2f%%, socket overhead %s' % (len(d['components']), ing['decode_speedup'], 100 * flt['overhead_frac'], ', '.join('%.1f%% @ %d tenants' % (100 * p['overhead_frac'], p['tenants']) for p in net)))"

experiments:
	dune exec bin/rbgp_cli.exe -- exp all | tee experiments_full.txt

# static analysis over lib/ bin/ bench/; exits 1 on any finding that is
# not justified in lint/allowlist.txt and writes the CI artifacts
# (JSON report + SARIF 2.1.0 for code-scanning upload)
lint:
	dune exec bin/rbgp_lint_main.exe -- lib bin bench \
	  --allowlist lint/allowlist.txt --json-out lint_report.json \
	  --sarif-out lint_report.sarif

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ml_allreduce.exe
	dune exec examples/adversarial_ring.exe
	dune exec examples/compare_algorithms.exe
	dune exec examples/capacity_planning.exe

clean:
	dune clean
