(* Tests for the repo-specific static-analysis pass (lib/lint).

   Per rule R1..R7: one fixture the rule must flag and one it must not.
   Then the allowlist contract (justification mandatory, suppression,
   line scoping, expiry, staleness), the JSON reporter round-trip, and a
   self-lint check asserting the repository itself is clean under the
   checked-in allowlist. *)

module Finding = Rbgp_lint.Finding
module Rules = Rbgp_lint.Rules
module Engine = Rbgp_lint.Engine
module Allowlist = Rbgp_lint.Allowlist
module Reporter = Rbgp_lint.Reporter
module Ljson = Rbgp_lint.Ljson
module Index = Rbgp_lint.Index
module Effects = Rbgp_lint.Effects
module Sarif = Rbgp_lint.Sarif

let rules_of ~path src =
  List.map (fun f -> f.Finding.rule) (Engine.lint_source ~path src)

let count rule ~path src =
  List.length (List.filter (String.equal rule) (rules_of ~path src))

let check_flags name rule ~path src =
  Alcotest.(check bool) name true (count rule ~path src > 0)

let check_clean name rule ~path src =
  Alcotest.(check int) name 0 (count rule ~path src)

(* --- R1: polymorphic comparison -------------------------------------- *)

let test_r1 () =
  check_flags "bare compare flagged everywhere" "r1-poly-compare"
    ~path:"lib/offline/fake.ml" "let f a b = compare a b";
  check_flags "Stdlib.compare flagged" "r1-poly-compare"
    ~path:"lib/mts/fake.ml" "let f a b = Stdlib.compare a b";
  check_flags "Hashtbl.hash flagged" "r1-poly-compare" ~path:"bin/fake.ml"
    "let h x = Hashtbl.hash x";
  check_flags "first-class min in hot lib flagged" "r1-poly-compare"
    ~path:"lib/ring/fake.ml" "let m xs = Array.fold_left min 0 xs";
  check_flags "first-class (=) in hot lib flagged" "r1-poly-compare"
    ~path:"lib/serve/fake.ml" "let eq = ( = )";
  check_flags "structural (=) in hot lib flagged" "r1-poly-compare"
    ~path:"lib/util/fake.ml" "let f x = x = (1, 2)";
  check_clean "Int.compare is clean" "r1-poly-compare" ~path:"lib/mts/fake.ml"
    "let f a b = Int.compare a b";
  check_clean "applied min is clean even in hot lib" "r1-poly-compare"
    ~path:"lib/ring/fake.ml" "let m a b = min a b";
  check_clean "first-class min outside hot libs is clean" "r1-poly-compare"
    ~path:"lib/offline/fake.ml" "let m xs = Array.fold_left min 0 xs";
  check_clean "structural (=) outside hot libs is clean" "r1-poly-compare"
    ~path:"lib/harness/fake.ml" "let f x = x = (1, 2)"

(* --- R2: nondeterminism ----------------------------------------------- *)

let test_r2 () =
  check_flags "gettimeofday in lib flagged" "r2-nondeterminism"
    ~path:"lib/ring/fake.ml" "let t () = Unix.gettimeofday ()";
  check_flags "Random.self_init in lib flagged" "r2-nondeterminism"
    ~path:"lib/core/fake.ml" "let () = Random.self_init ()";
  check_flags "Sys.time in lib flagged" "r2-nondeterminism"
    ~path:"lib/util/fake.ml" "let t () = Sys.time ()";
  check_flags "Domain.self in lib flagged" "r2-nondeterminism"
    ~path:"lib/util/fake.ml" "let d () = Domain.self ()";
  check_clean "clock in bin/ is fine" "r2-nondeterminism" ~path:"bin/fake.ml"
    "let t () = Unix.gettimeofday ()";
  check_clean "seeded Random in lib is fine" "r2-nondeterminism"
    ~path:"lib/core/fake.ml" "let s = Random.State.make [| 42 |]"

(* --- R3: partial functions -------------------------------------------- *)

let test_r3 () =
  check_flags "List.hd flagged" "r3-partial" ~path:"lib/offline/fake.ml"
    "let f l = List.hd l";
  check_flags "Option.get flagged" "r3-partial" ~path:"bin/fake.ml"
    "let f o = Option.get o";
  check_flags "Array.unsafe_get flagged" "r3-partial" ~path:"lib/mts/fake.ml"
    "let f a = Array.unsafe_get a 0";
  check_clean "total List functions are clean" "r3-partial"
    ~path:"lib/offline/fake.ml" "let f l = List.length l + List.length l"

(* --- R4: top-level mutable state -------------------------------------- *)

let test_r4 () =
  check_flags "top-level Hashtbl in lib flagged" "r4-global-mutable"
    ~path:"lib/offline/fake.ml" "let cache = Hashtbl.create 16";
  check_flags "top-level ref in lib flagged" "r4-global-mutable"
    ~path:"lib/util/fake.ml" "let counter = ref 0";
  check_flags "top-level alloc inside nested module flagged"
    "r4-global-mutable" ~path:"lib/util/fake.ml"
    "module M = struct let slots = Array.make 4 0 end";
  check_clean "per-call alloc is clean" "r4-global-mutable"
    ~path:"lib/util/fake.ml" "let f () = Hashtbl.create 16";
  check_clean "top-level mutable in bin/ is fine" "r4-global-mutable"
    ~path:"bin/fake.ml" "let cache = Hashtbl.create 16";
  check_clean "Mutex.create is not a data cell" "r4-global-mutable"
    ~path:"lib/util/fake.ml" "let m = Mutex.create ()"

(* --- R5: catch-all exception handlers --------------------------------- *)

let test_r5 () =
  check_flags "try-with-underscore flagged" "r5-catchall-exn"
    ~path:"lib/harness/fake.ml" "let f g = try g () with _ -> 0";
  check_flags "exception _ match case flagged" "r5-catchall-exn"
    ~path:"lib/harness/fake.ml"
    "let f g = match g () with x -> x | exception _ -> 0";
  check_clean "specific handler is clean" "r5-catchall-exn"
    ~path:"lib/harness/fake.ml" "let f g = try g () with Not_found -> 0";
  check_clean "bound exception is clean" "r5-catchall-exn"
    ~path:"lib/harness/fake.ml"
    "let f g = try g () with e -> raise e"

(* --- R6: missing interfaces ------------------------------------------- *)

let test_r6 () =
  let findings =
    Rules.missing_mli
      ~files:
        [
          "lib/foo/a.ml";
          "lib/foo/a.mli";
          "lib/foo/b.ml";
          "bin/c.ml";
          "bench/d.ml";
        ]
  in
  Alcotest.(check (list string))
    "only the uncovered lib module is flagged" [ "lib/foo/b.ml" ]
    (List.map (fun f -> f.Finding.file) findings);
  Alcotest.(check (list string))
    "no findings when every lib module has an interface" []
    (List.map
       (fun f -> f.Finding.file)
       (Rules.missing_mli ~files:[ "lib/foo/a.ml"; "lib/foo/a.mli" ]))

(* --- R7: Domain-safety ------------------------------------------------- *)

let test_r7 () =
  check_flags "Domain.spawn in lib flagged" "r7-domain-safety"
    ~path:"lib/ring/fake.ml" "let d f = Domain.spawn f";
  check_flags "Domain.join in lib flagged" "r7-domain-safety"
    ~path:"lib/core/fake.ml" "let j d = Domain.join d";
  check_flags "qualified pool map in lib flagged" "r7-domain-safety"
    ~path:"lib/core/fake.ml" "let f xs = Rbgp_util.Pool.map succ xs";
  check_flags "aliased pool map in lib flagged" "r7-domain-safety"
    ~path:"lib/serve/fake.ml"
    "module Pool = Rbgp_util.Pool\nlet f xs = Pool.map succ xs";
  check_clean "Domain use in bin/ is fine" "r7-domain-safety"
    ~path:"bin/fake.ml" "let d f = Domain.spawn f";
  check_clean "pool use in bench/ is fine" "r7-domain-safety"
    ~path:"bench/fake.ml" "let f xs = Rbgp_util.Pool.map succ xs";
  check_clean "unrelated module members are clean" "r7-domain-safety"
    ~path:"lib/ring/fake.ml" "let f x = Array.length x + Int.abs x"

(* --- R8: hot-IO hygiene ------------------------------------------------ *)

let test_r8 () =
  check_flags "input_byte in lib/serve flagged" "r8-hot-io"
    ~path:"lib/serve/fake.ml" "let f ic = input_byte ic";
  check_flags "Stdlib.input_char in binc flagged" "r8-hot-io"
    ~path:"lib/util/binc.ml" "let f ic = Stdlib.input_char ic";
  check_flags "input_byte in the trace recorder flagged" "r8-hot-io"
    ~path:"lib/ring/trace.ml" "let f ic = input_byte ic";
  check_flags "closure built in a while body flagged" "r8-hot-io"
    ~path:"lib/serve/fake.ml"
    "let f xs = while !xs > 0 do ignore (List.map (fun x -> x) []) done";
  check_flags "closure built in a for body flagged" "r8-hot-io"
    ~path:"lib/serve/fake.ml"
    "let f n a = for i = 0 to n do ignore (Array.init i (fun j -> a + j)) \
     done";
  (Alcotest.check Alcotest.int)
    "curried closure in a loop is one finding, not one per parameter" 1
    (count "r8-hot-io" ~path:"lib/serve/fake.ml"
       "let f n = for _ = 0 to n do ignore (fun a b c -> a + b + c) done");
  check_clean "input_byte outside the audited modules is clean" "r8-hot-io"
    ~path:"lib/workloads/fake.ml" "let f ic = input_byte ic";
  check_clean "input_byte in bin/ is clean" "r8-hot-io" ~path:"bin/fake.ml"
    "let f ic = input_byte ic";
  check_clean "closure outside a loop is clean" "r8-hot-io"
    ~path:"lib/serve/fake.ml" "let f xs = List.map (fun x -> x + 1) xs";
  check_clean "loop without closures is clean" "r8-hot-io"
    ~path:"lib/serve/fake.ml"
    "let f a = for i = 0 to Array.length a - 1 do a.(i) <- i done";
  check_clean "closure containing a loop is clean" "r8-hot-io"
    ~path:"lib/serve/fake.ml"
    "let f a = Array.iter (fun x -> for _ = 0 to x do ignore x done) a"

(* --- R9: durability hygiene -------------------------------------------- *)

let test_r9 () =
  check_flags "open_out_bin in lib/serve flagged" "r9-durability"
    ~path:"lib/serve/fake.ml" "let f path = open_out_bin path";
  check_flags "open_out in the trace writer flagged" "r9-durability"
    ~path:"lib/workloads/trace_io.ml" "let f path = open_out path";
  check_flags "open_out_gen in the binary trace writer flagged"
    "r9-durability" ~path:"lib/workloads/trace_codec.ml"
    "let f path = open_out_gen [ Open_binary ] 0o644 path";
  check_flags "catch-all try around a Fault hook flagged" "r9-durability"
    ~path:"lib/serve/fake.ml"
    "let f step = try Fault.crash_check ~step with _ -> ()";
  check_flags "bare-variable handler around Durable flagged" "r9-durability"
    ~path:"lib/util/fake.ml"
    "let f path d = try Durable.atomic_write ~path d with e -> ignore e";
  check_flags "catch-all [exception _] around a Fault hook flagged"
    "r9-durability" ~path:"lib/serve/fake.ml"
    "let f step = match Fault.crash_check ~step with () -> 0 \
     | exception _ -> 1";
  check_clean "open_out outside the audited modules is clean"
    "r9-durability" ~path:"lib/harness/fake.ml"
    "let f path = open_out path";
  check_clean "open_out in bin/ is clean" "r9-durability" ~path:"bin/fake.ml"
    "let f path = open_out_bin path";
  check_clean "named handler around a Fault hook is clean" "r9-durability"
    ~path:"lib/serve/fake.ml"
    "let f step = try Fault.crash_check ~step with Not_found -> ()";
  check_clean "re-raising handler around Durable is clean" "r9-durability"
    ~path:"lib/util/fake.ml"
    "let f path d = try Durable.atomic_write ~path d with e -> ignore d; \
     raise e";
  check_clean "catch-all far from the recovery layer is only r5"
    "r9-durability" ~path:"lib/offline/fake.ml"
    "let f g = try g () with _ -> ()"

(* --- R10: net safety --------------------------------------------------- *)

let test_r10 () =
  check_flags "Unix.read outside Sockio flagged" "r10-net-safety"
    ~path:"lib/serve/fake.ml" "let f fd b = Unix.read fd b 0 16";
  check_flags "Unix.accept outside Sockio flagged" "r10-net-safety"
    ~path:"lib/serve/fake.ml" "let f fd = Unix.accept fd";
  check_flags "Unix.select outside Sockio flagged" "r10-net-safety"
    ~path:"lib/serve/fake.ml" "let f r = Unix.select r [] [] 0.1";
  check_flags "syscall in a non-Sockio submodule flagged" "r10-net-safety"
    ~path:"lib/serve/fake.ml"
    "module Io = struct let f fd b = Unix.write fd b 0 4 end";
  check_flags "input_line in a net-audited module flagged" "r10-net-safety"
    ~path:"lib/serve/fake.ml" "let f ic = input_line ic";
  check_flags "really_input_string in lib/serve flagged" "r10-net-safety"
    ~path:"lib/serve/fake.ml" "let f ic n = really_input_string ic n";
  check_clean "Unix.read inside Sockio is clean" "r10-net-safety"
    ~path:"lib/serve/fake.ml"
    "module Sockio = struct let f fd b = Unix.read fd b 0 16 end";
  check_clean "wrapper call sites are clean" "r10-net-safety"
    ~path:"lib/serve/fake.ml"
    "module Sockio = struct let read fd b = Unix.read fd b 0 16 end\n\
     let f fd b = Sockio.read fd b";
  check_clean "Unix.read outside lib/serve is clean" "r10-net-safety"
    ~path:"lib/util/fake.ml" "let f fd b = Unix.read fd b 0 16";
  check_clean "Unix.read in bin/ is clean" "r10-net-safety" ~path:"bin/fake.ml"
    "let f fd b = Unix.read fd b 0 16";
  check_clean "non-syscall Unix setup calls are clean" "r10-net-safety"
    ~path:"lib/serve/fake.ml" "let f fd = Unix.set_nonblock fd"

(* --- parse errors ------------------------------------------------------ *)

let test_parse_error () =
  check_flags "unparseable source yields parse-error" "parse-error"
    ~path:"lib/mts/fake.ml" "let = ="

(* --- allowlist ---------------------------------------------------------- *)

let entry_exn src =
  match Allowlist.parse src with
  | Ok entries -> entries
  | Error e -> Alcotest.failf "allowlist parse failed: %s" e

let test_allowlist_parse () =
  let entries =
    entry_exn
      "# shared cache, mutex-guarded\nr4-global-mutable lib/offline/fake.ml\n"
  in
  (match entries with
  | [ e ] ->
      Alcotest.(check string) "rule" "r4-global-mutable" e.Allowlist.rule;
      Alcotest.(check string)
        "justification" "shared cache, mutex-guarded" e.Allowlist.justification;
      Alcotest.(check bool) "no line scope" true (e.Allowlist.line = None)
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l));
  (* justification is mandatory *)
  (match Allowlist.parse "r1-poly-compare lib/mts/fake.ml\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unjustified entry must be rejected");
  (* a blank line resets the pending justification *)
  match Allowlist.parse "# file header, not a justification\n\nr1-poly-compare lib/mts/fake.ml\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "blank line must reset the justification"

let fake_findings () =
  Engine.lint_source ~path:"lib/offline/fake.ml"
    "let cache = Hashtbl.create 16\nlet f a b = compare a b\n"

let test_allowlist_suppression () =
  let findings = fake_findings () in
  Alcotest.(check int) "fixture has two findings" 2 (List.length findings);
  let al =
    entry_exn "# documented shared cache\nr4-global-mutable lib/offline/fake.ml\n"
  in
  let a = Allowlist.apply al findings in
  Alcotest.(check int) "one suppressed" 1 (List.length a.Allowlist.suppressed);
  Alcotest.(check int) "one live" 1 (List.length a.Allowlist.live);
  Alcotest.(check int) "none stale" 0 (List.length a.Allowlist.stale);
  (match a.Allowlist.live with
  | [ f ] -> Alcotest.(check string) "r1 stays live" "r1-poly-compare" f.Finding.rule
  | _ -> Alcotest.fail "expected exactly one live finding");
  (* line-scoped entry only suppresses its line *)
  let al_line1 =
    entry_exn "# documented shared cache\nr4-global-mutable lib/offline/fake.ml:1\n"
  in
  let a1 = Allowlist.apply al_line1 findings in
  Alcotest.(check int) "line 1 entry suppresses" 1
    (List.length a1.Allowlist.suppressed);
  let al_line9 =
    entry_exn "# documented shared cache\nr4-global-mutable lib/offline/fake.ml:9\n"
  in
  let a9 = Allowlist.apply al_line9 findings in
  Alcotest.(check int) "wrong line suppresses nothing" 0
    (List.length a9.Allowlist.suppressed);
  Alcotest.(check int) "wrong-line entry is stale" 1
    (List.length a9.Allowlist.stale)

let test_allowlist_expiry () =
  let findings = fake_findings () in
  let al =
    entry_exn
      "# temporary, to be fixed\n\
       r4-global-mutable lib/offline/fake.ml expires=2026-01-31\n"
  in
  (* before expiry: suppresses *)
  let before = Allowlist.apply ~today:(2026, 1, 30) al findings in
  Alcotest.(check int) "suppresses before expiry" 1
    (List.length before.Allowlist.suppressed);
  Alcotest.(check int) "nothing expired yet" 0
    (List.length before.Allowlist.expired);
  (* after expiry: the finding returns to live and the pairing is reported *)
  let after = Allowlist.apply ~today:(2026, 2, 1) al findings in
  Alcotest.(check int) "stops suppressing after expiry" 0
    (List.length after.Allowlist.suppressed);
  Alcotest.(check int) "expired pairing reported" 1
    (List.length after.Allowlist.expired);
  Alcotest.(check int) "both findings live again" 2
    (List.length after.Allowlist.live);
  (* no [today] (replay mode): expiry is not enforced *)
  let replay = Allowlist.apply al findings in
  Alcotest.(check int) "expiry ignored without today" 1
    (List.length replay.Allowlist.suppressed)

(* --- JSON reporter round-trip ------------------------------------------ *)

let test_json_roundtrip () =
  let live =
    List.sort Finding.compare
      (Engine.lint_source ~path:"lib/mts/fake.ml"
         "let f a b = compare a b\nlet h l = List.hd l\nlet t () = Sys.time ()\n")
  in
  Alcotest.(check bool) "fixture is non-trivial" true (List.length live >= 3);
  let outcome =
    {
      Engine.files = 1;
      live;
      suppressed = [];
      expired = [];
      stale = [];
      baseline_skipped = 0;
    }
  in
  let json = Reporter.to_json_string outcome in
  match Ljson.parse json with
  | Error e -> Alcotest.failf "reporter emitted unparseable JSON: %s" e
  | Ok j -> (
      match Reporter.findings_of_json j with
      | Error e -> Alcotest.failf "findings_of_json: %s" e
      | Ok parsed ->
          Alcotest.(check int)
            "same number of findings" (List.length live) (List.length parsed);
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Printf.sprintf "finding %s round-trips" (Finding.to_text a))
                true (Finding.equal a b))
            live parsed)

(* --- interprocedural rules (r11–r13) ----------------------------------- *)

let effects_of sources = Effects.infer (Index.of_sources sources)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let rules_of_findings fs = List.map (fun f -> f.Finding.rule) fs

let has_rule rule fs = List.mem rule (rules_of_findings fs)

(* R11: an allocation two calls away from a hot root is visible; the same
   allocation in an unreachable module is not. *)
let test_r11 () =
  let flagged =
    Rules.hot_alloc
      (effects_of
         [
           ("lib/serve/engine.ml", "let ingest t e = Helper.build t e\n");
           ("lib/serve/helper.ml", "let build t e = (t, e)\n");
         ])
  in
  Alcotest.(check bool)
    "tuple in a callee of Engine.ingest flags" true
    (has_rule "r11-hot-alloc" flagged);
  Alcotest.(check bool)
    "finding lands on the allocation site, not the root" true
    (List.exists
       (fun f -> String.equal f.Finding.file "lib/serve/helper.ml")
       flagged);
  let clean =
    Rules.hot_alloc
      (effects_of
         [
           ("lib/serve/engine.ml", "let ingest t e = Helper.build t e\n");
           ("lib/serve/helper.ml", "let build t e = t + e\n");
           (* allocates, but nothing hot reaches it *)
           ("lib/serve/cold.ml", "let report x = [ x ]\n");
         ])
  in
  Alcotest.(check int) "non-allocating callee is clean" 0 (List.length clean);
  (* a Pool.map ~family submitter is a hot root in its own right *)
  let pool =
    Rules.hot_alloc
      (effects_of
         [
           ( "lib/core/solver.ml",
             "let shard work arr = ignore (Pool.map ~family:\"s\" work arr); [ arr ]\n"
           );
         ])
  in
  Alcotest.(check bool)
    "Pool.map ~family submitter is a hot root" true
    (has_rule "r11-hot-alloc" pool);
  (* top-level constants run at module init, not per call *)
  let const =
    Rules.hot_alloc
      (effects_of
         [
           ("lib/serve/engine.ml", "let ingest t e = ignore Helper.table; t + e\n");
           ("lib/serve/helper.ml", "let table = Hashtbl.create 8\n");
         ])
  in
  Alcotest.(check int) "constant initializer is not a per-call alloc" 0
    (List.length const)

(* R12: unhandled partiality reachable from the serve path flags; a
   handler on the path masks it. *)
let test_r12 () =
  let flagged =
    Rules.transitive_partial
      (effects_of
         [
           ( "lib/serve/net.ml",
             "let pick l = List.hd l\nlet handle_req conn = pick conn\n" );
         ])
  in
  Alcotest.(check bool)
    "List.hd behind handle_req flags" true
    (has_rule "r12-transitive-partial" flagged);
  let handled =
    Rules.transitive_partial
      (effects_of
         [
           ( "lib/serve/net.ml",
             "let pick l = List.hd l\n\
              let handle_req conn = try pick conn with Failure _ -> 0\n" );
         ])
  in
  Alcotest.(check int) "a try on the path is the named handler" 0
    (List.length handled);
  let unreachable =
    Rules.transitive_partial
      (effects_of
         [ ("lib/serve/util2.ml", "let pick l = List.hd l\n") ])
  in
  Alcotest.(check int) "partiality off the serve path is r3's business" 0
    (List.length unreachable)

(* R13: an exposed comparator with no test reference flags; a qualified
   test reference covers it; a bare stdlib-colliding name does not. *)
let test_r13 () =
  let index =
    Index.of_sources
      [
        ( "lib/ring/seg.mli",
          "val compare : int -> int -> int\nval equal_arc : int -> int -> bool\n"
        );
      ]
  in
  let tests ml = Index.of_sources [ ("test/test_seg.ml", ml) ] in
  let flagged =
    Rules.comparator_coverage ~index
      ~tests:(tests "let () = ignore (Seg.compare 1 2)\n")
  in
  Alcotest.(check (list string))
    "uncovered equal_arc flags, covered compare does not"
    [ "r13-comparator-coverage" ]
    (rules_of_findings flagged);
  Alcotest.(check bool)
    "the finding names equal_arc" true
    (List.exists
       (fun f -> contains_sub ~sub:"equal_arc" f.Finding.message)
       flagged);
  let bare =
    Rules.comparator_coverage ~index
      ~tests:(tests "let () = ignore (compare 1 2); ignore (Seg.equal_arc 1 2)\n")
  in
  Alcotest.(check (list string))
    "bare stdlib-colliding compare does not cover Seg.compare"
    [ "r13-comparator-coverage" ]
    (rules_of_findings bare)

(* The effect lattice itself: fixpoint across modules, handler masking,
   and the two comparators the coverage rule patrols. *)
let test_effect_lattice () =
  let fx =
    effects_of
      [
        ( "lib/core/alpha.ml",
          "let base l = List.hd l\n\
           let mid l = base l\n\
           let top l = try mid l with Failure _ -> 0\n\
           let mk x = (x, x)\n\
           let wrap x = mk x\n" );
      ]
  in
  let eff name = Effects.effect_of fx ("lib/core/alpha.ml#" ^ name) in
  Alcotest.(check bool) "base is partial" true (eff "base").Effects.partial;
  Alcotest.(check bool) "mid inherits partial" true (eff "mid").Effects.partial;
  Alcotest.(check bool) "top's handler masks partial" false
    (eff "top").Effects.partial;
  Alcotest.(check bool) "mk allocates" true (eff "mk").Effects.alloc;
  Alcotest.(check bool) "wrap inherits alloc" true (eff "wrap").Effects.alloc;
  Alcotest.(check bool) "eff_union is monotone" true
    (Effects.eff_union (eff "mid") (eff "mk")).Effects.alloc;
  (* the exposed comparators r13 patrols, exercised directly *)
  Alcotest.(check bool) "eff_equal bot=bot" true
    (Effects.eff_equal Effects.eff_bot Effects.eff_bot);
  Alcotest.(check bool) "eff_equal distinguishes alloc" false
    (Effects.eff_equal Effects.eff_bot (eff "mk"));
  Alcotest.(check bool) "compare_severity: errors sort first" true
    (Finding.compare_severity Finding.Error Finding.Warning < 0);
  Alcotest.(check int) "compare_severity: reflexive" 0
    (Finding.compare_severity Finding.Warning Finding.Warning)

(* --explain has long-form text for the interprocedural rules and rejects
   unknown ids. *)
let test_explain () =
  List.iter
    (fun r ->
      match Rules.explain r with
      | Some text ->
          Alcotest.(check bool)
            (r ^ " explanation is substantial") true
            (String.length text > 200)
      | None -> Alcotest.failf "no --explain text for %s" r)
    [ "r11-hot-alloc"; "r12-transitive-partial"; "r13-comparator-coverage" ];
  Alcotest.(check bool) "every described rule explains" true
    (List.for_all
       (fun (id, _) -> Option.is_some (Rules.explain id))
       Rules.descriptions);
  Alcotest.(check bool) "unknown rule is None" true
    (Option.is_none (Rules.explain "r99-bogus"))

(* --- self-lint ---------------------------------------------------------- *)

(* The repository's own sources must be clean under the checked-in
   allowlist.  The test runs from the build sandbox (test/), so the tree
   is reached via ".." — findings still match the allowlist because paths
   are normalized and matched by suffix. *)
let test_self_lint () =
  (* dune runtest runs from the sandboxed test/ dir (tree at ".."); dune
     exec runs from the workspace root (tree at ".") *)
  let root =
    if Sys.file_exists "../lint/allowlist.txt" then ".."
    else if Sys.file_exists "lint/allowlist.txt" then "."
    else Alcotest.fail "cannot locate the repository tree"
  in
  let under d = Filename.concat root d in
  let allowlist =
    match Allowlist.load ~path:(under "lint/allowlist.txt") with
    | Ok al -> al
    | Error e -> Alcotest.failf "checked-in allowlist failed to parse: %s" e
  in
  let outcome =
    Engine.run ~allowlist
      ~dirs:[ under "lib"; under "bin"; under "bench" ]
      ()
  in
  Alcotest.(check bool) "scanned a real tree" true (outcome.Engine.files > 50);
  (match outcome.Engine.live with
  | [] -> ()
  | l ->
      Alcotest.failf "repository is not lint-clean:\n%s"
        (String.concat "\n" (List.map Finding.to_text l)));
  Alcotest.(check int) "no stale allowlist entries" 0
    (List.length outcome.Engine.stale)

(* --- SARIF + qcheck round-trips ---------------------------------------- *)

let outcome_of_live live =
  {
    Engine.files = 1;
    live;
    suppressed = [];
    expired = [];
    stale = [];
    baseline_skipped = 0;
  }

let finding_gen =
  let open QCheck2.Gen in
  let rule = oneofl [ "r1-poly-compare"; "r11-hot-alloc"; "r12-transitive-partial"; "r13-comparator-coverage" ] in
  let file = oneofl [ "lib/mts/mts.ml"; "lib/serve/engine.ml"; "lib/util/pool.mli" ] in
  let sev = oneofl [ Finding.Error; Finding.Warning ] in
  (* line >= 1: whole-file findings (line 0) drop the SARIF region and
     are pinned by a separate deterministic case below *)
  let* rule = rule and* file = file and* severity = sev in
  let* line = 1 -- 500 and* col = 0 -- 120 in
  let* message = string_size ~gen:(char_range 'a' 'z') (5 -- 40) in
  return (Finding.make ~rule ~severity ~file ~line ~col message)

let sorted fs = List.sort Finding.compare fs

let roundtrip_prop ~name ~render ~parse fs =
  let live = sorted fs in
  let s = render (outcome_of_live live) in
  match Ljson.parse s with
  | Error e -> QCheck2.Test.fail_reportf "%s emitted unparseable JSON: %s" name e
  | Ok j -> (
      match parse j with
      | Error e -> QCheck2.Test.fail_reportf "%s parse-back: %s" name e
      | Ok parsed ->
          let parsed = sorted parsed in
          List.length parsed = List.length live
          && List.for_all2 Finding.equal live parsed)

let findings_gen = QCheck2.Gen.(list_size (0 -- 12) finding_gen)

let qcheck_sarif_roundtrip =
  QCheck2.Test.make ~name:"sarif round-trip" ~count:200 findings_gen
    (roundtrip_prop ~name:"sarif" ~render:Sarif.to_string
       ~parse:Sarif.findings_of_json)

let qcheck_json_roundtrip =
  QCheck2.Test.make ~name:"reporter JSON round-trip" ~count:200 findings_gen
    (roundtrip_prop ~name:"reporter" ~render:Reporter.to_json_string
       ~parse:Reporter.findings_of_json)

(* Deterministic SARIF cases the generator avoids: whole-file findings
   omit the region; suppressed findings carry the justification and are
   excluded from parse-back. *)
let test_sarif_shape () =
  let whole = Finding.make ~rule:"r6-missing-mli" ~severity:Finding.Error
      ~file:"lib/core/x.ml" ~line:0 ~col:0 "no mli"
  in
  let site = Finding.make ~rule:"r11-hot-alloc" ~severity:Finding.Error
      ~file:"lib/util/pool.ml" ~line:35 ~col:31 "allocates"
  in
  let entry =
    {
      Allowlist.rule = "r11-hot-alloc";
      path = "lib/util/pool.ml";
      line = None;
      expires = None;
      justification = "amortized per batch";
      source_line = 1;
    }
  in
  let outcome =
    { (outcome_of_live [ whole ]) with Engine.suppressed = [ (site, entry) ] }
  in
  let s = Sarif.to_string outcome in
  let j = match Ljson.parse s with Ok j -> j | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "schema is 2.1.0" true
    (match Ljson.member "version" j with
    | Some (Ljson.Str "2.1.0") -> true
    | _ -> false);
  Alcotest.(check bool) "justification is embedded" true
    (contains_sub ~sub:"amortized per batch" s);
  match Sarif.findings_of_json j with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check int) "suppressed results drop out of parse-back" 1
        (List.length parsed);
      Alcotest.(check bool) "whole-file finding round-trips without region"
        true
        (Finding.equal whole (List.hd parsed))

(* --- engine-level behaviors -------------------------------------------- *)

let repo_root () =
  if Sys.file_exists "../lint/allowlist.txt" then ".."
  else if Sys.file_exists "lint/allowlist.txt" then "."
  else Alcotest.fail "cannot locate the repository tree"

(* Overlapping directories must not double-count files (the baseline and
   finding counts would silently double). *)
let test_scan_dirs_dedupe () =
  let root = repo_root () in
  let under d = Filename.concat root d in
  let once = Engine.scan_dirs [ under "lib" ] in
  let overlap = Engine.scan_dirs [ under "lib"; under "lib/serve" ] in
  Alcotest.(check int) "overlapping dirs scan each file once"
    (List.length once) (List.length overlap);
  Alcotest.(check bool) "same file set" true
    (List.equal String.equal once overlap)

(* Satellite: every founding allowlist entry still matches a real finding
   — entries that stop matching must be deleted, not accumulate. *)
let test_founding_entries_live () =
  let root = repo_root () in
  let under d = Filename.concat root d in
  let allowlist =
    match Allowlist.load ~path:(under "lint/allowlist.txt") with
    | Ok al -> al
    | Error e -> Alcotest.failf "allowlist: %s" e
  in
  let outcome =
    Engine.run ~allowlist ~dirs:[ under "lib"; under "bin"; under "bench" ] ()
  in
  let used =
    List.map (fun (_, e) -> Allowlist.entry_id e) outcome.Engine.suppressed
  in
  List.iter
    (fun e ->
      let id = Allowlist.entry_id e in
      Alcotest.(check bool)
        (Printf.sprintf "entry %S suppresses at least one finding" id)
        true
        (List.mem id used))
    allowlist

(* --rules narrows the run to the selected rules (parse-error excepted)
   and narrows the allowlist with it. *)
(* The CLI accepts both full rule ids and bare rNN prefixes, and the
   prefix only matches whole numeric components (r1 must not select
   r11). *)
let test_rules_shorthand () =
  let parse spec =
    match Rbgp_lint.Cli.parse_rules_filter (Some spec) with
    | Ok (Some ids) -> ids
    | Ok None -> Alcotest.fail "spec parsed to no filter"
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check (list string))
    "r11,r13 resolves to the full ids"
    [ "r11-hot-alloc"; "r13-comparator-coverage" ]
    (parse "r11,r13");
  Alcotest.(check (list string))
    "r1 selects poly-compare, not r11"
    [ "r1-poly-compare" ] (parse "r1");
  Alcotest.(check (list string))
    "full ids still accepted"
    [ "r12-transitive-partial" ]
    (parse "r12-transitive-partial");
  (match Rbgp_lint.Cli.parse_rules_filter (Some "r99") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule accepted");
  match Rbgp_lint.Cli.parse_rules_filter None with
  | Ok None -> ()
  | _ -> Alcotest.fail "absent spec must mean all rules"

let test_rules_filter () =
  let root = repo_root () in
  let under d = Filename.concat root d in
  let outcome =
    Engine.run
      ~rules:[ "r11-hot-alloc"; "r13-comparator-coverage" ]
      ~dirs:[ under "lib"; under "bin"; under "bench" ]
      ()
  in
  Alcotest.(check bool) "filtered run has findings to report" true
    (List.length outcome.Engine.live > 0);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "finding %s is from a selected rule" f.Finding.rule)
        true
        (List.mem f.Finding.rule
           [ "r11-hot-alloc"; "r13-comparator-coverage"; "parse-error" ]))
    outcome.Engine.live

(* The effect graph dump is a pure function of the sources: two runs are
   byte-identical. *)
let test_graph_determinism () =
  let root = repo_root () in
  let dirs = [ Filename.concat root "lib" ] in
  let a = Ljson.to_string (Engine.graph ~dirs ()) in
  let b = Ljson.to_string (Engine.graph ~dirs ()) in
  Alcotest.(check bool) "graph dump is byte-identical across runs" true
    (String.equal a b);
  Alcotest.(check bool) "graph dump is non-trivial" true
    (String.length a > 10_000)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "r1 polymorphic compare" `Quick test_r1;
          Alcotest.test_case "r2 nondeterminism" `Quick test_r2;
          Alcotest.test_case "r3 partial functions" `Quick test_r3;
          Alcotest.test_case "r4 top-level mutable state" `Quick test_r4;
          Alcotest.test_case "r5 catch-all handlers" `Quick test_r5;
          Alcotest.test_case "r6 missing interfaces" `Quick test_r6;
          Alcotest.test_case "r7 domain safety" `Quick test_r7;
          Alcotest.test_case "r8 hot-IO hygiene" `Quick test_r8;
          Alcotest.test_case "r9 durability hygiene" `Quick test_r9;
          Alcotest.test_case "r10 net safety" `Quick test_r10;
          Alcotest.test_case "r11 hot-path allocation" `Quick test_r11;
          Alcotest.test_case "r12 transitive partiality" `Quick test_r12;
          Alcotest.test_case "r13 comparator coverage" `Quick test_r13;
          Alcotest.test_case "effect lattice fixpoint" `Quick
            test_effect_lattice;
          Alcotest.test_case "--explain texts" `Quick test_explain;
          Alcotest.test_case "parse errors are findings" `Quick
            test_parse_error;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "parse + mandatory justification" `Quick
            test_allowlist_parse;
          Alcotest.test_case "suppression and line scoping" `Quick
            test_allowlist_suppression;
          Alcotest.test_case "expiry" `Quick test_allowlist_expiry;
        ] );
      ( "reporter",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "SARIF shape + suppression" `Quick
            test_sarif_shape;
          QCheck_alcotest.to_alcotest qcheck_sarif_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "scan_dirs dedupes overlapping dirs" `Quick
            test_scan_dirs_dedupe;
          Alcotest.test_case "founding allowlist entries all live" `Quick
            test_founding_entries_live;
          Alcotest.test_case "--rules filters findings and allowlist" `Quick
            test_rules_filter;
          Alcotest.test_case "--rules accepts rNN shorthand" `Quick
            test_rules_shorthand;
          Alcotest.test_case "graph dump is deterministic" `Quick
            test_graph_determinism;
        ] );
      ( "self",
        [ Alcotest.test_case "repository is lint-clean" `Quick test_self_lint ]
      );
    ]
