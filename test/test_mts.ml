(* Tests for the metrical-task-system substrate: metrics, the solver
   interface's cost accounting, the exact offline DP (cross-checked against
   brute force), the deterministic work-function algorithm (competitive
   bound + work-function invariants), and the randomized solvers. *)

module Metric = Rbgp_mts.Metric
module Mts = Rbgp_mts.Mts
module Offline = Rbgp_mts.Offline
module Wfa = Rbgp_mts.Work_function
module Rng = Rbgp_util.Rng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Metric ----------------------------------------------------------- *)

let test_metric () =
  let l = Metric.Line 5 and u = Metric.Uniform 5 in
  Alcotest.(check int) "line distance" 3 (Metric.distance l 1 4);
  Alcotest.(check int) "line diameter" 4 (Metric.diameter l);
  Alcotest.(check int) "uniform distance" 1 (Metric.distance u 0 4);
  Alcotest.(check int) "uniform same" 0 (Metric.distance u 2 2);
  Alcotest.(check int) "uniform diameter" 1 (Metric.diameter u);
  Alcotest.check_raises "state range"
    (Invalid_argument "Metric.distance: state out of range") (fun () ->
      ignore (Metric.distance l 0 5))

(* --- Mts wrapper ------------------------------------------------------ *)

let test_mts_accounting () =
  (* scripted solver: always moves to the requested state *)
  let metric = Metric.Line 4 in
  let t =
    Mts.make ~name:"follow" ~metric ~start:0 ~next:(fun cost _ ->
        let best = ref 0 in
        Array.iteri (fun i c -> if c > cost.(!best) then best := i) cost;
        !best)
  in
  ignore (Mts.serve t (Mts.indicator 3 ~n:4));
  (* moved 0 -> 3 (distance 3) and pays the task at the new state (1) *)
  Alcotest.(check (float 1e-9)) "move" 3.0 (Mts.move_cost t);
  Alcotest.(check (float 1e-9)) "hit" 1.0 (Mts.hit_cost t);
  ignore (Mts.serve t (Mts.indicator 0 ~n:4));
  Alcotest.(check int) "state sticky" 0 (Mts.state t);
  Alcotest.(check int) "steps" 2 (Mts.steps t)

let test_mts_validation () =
  let metric = Metric.Line 3 in
  let t = Mts.make ~name:"id" ~metric ~start:1 ~next:(fun _ s -> s) in
  Alcotest.check_raises "bad size"
    (Invalid_argument "Mts.serve: cost vector size mismatch") (fun () ->
      ignore (Mts.serve t [| 0.0 |]));
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Mts.serve: cost entries must be non-negative")
    (fun () -> ignore (Mts.serve t [| 0.0; -1.0; 0.0 |]))

(* --- Offline DP vs brute force ---------------------------------------- *)

let brute_force_opt metric ~start tasks =
  let s = Metric.size metric in
  let steps = Array.length tasks in
  let best = ref infinity in
  let rec go t prev acc =
    if acc >= !best then ()
    else if t = steps then best := acc
    else
      for x = 0 to s - 1 do
        go (t + 1) x
          (acc
          +. float_of_int (Metric.distance metric prev x)
          +. tasks.(t).(x))
      done
  in
  go 0 start 0.0;
  !best

let tiny_instance_gen =
  QCheck2.Gen.(
    int_range 2 4 >>= fun s ->
    int_range 0 (s - 1) >>= fun start ->
    int_range 1 5 >>= fun steps ->
    let task = array_size (return s) (float_bound_inclusive 3.0) in
    array_size (return steps) task >|= fun tasks -> (s, start, tasks))

let test_offline_vs_brute_line =
  qtest ~count:200 "offline DP = brute force (line)" tiny_instance_gen
    (fun (s, start, tasks) ->
      let m = Metric.Line s in
      Float.abs (Offline.opt_cost m ~start tasks -. brute_force_opt m ~start tasks)
      < 1e-6)

let test_offline_vs_brute_uniform =
  qtest ~count:200 "offline DP = brute force (uniform)" tiny_instance_gen
    (fun (s, start, tasks) ->
      let m = Metric.Uniform s in
      Float.abs (Offline.opt_cost m ~start tasks -. brute_force_opt m ~start tasks)
      < 1e-6)

let schedule_cost metric ~start tasks (sched : Offline.schedule) =
  let acc = ref 0.0 and prev = ref start in
  Array.iteri
    (fun t x ->
      acc :=
        !acc +. float_of_int (Metric.distance metric !prev x) +. tasks.(t).(x);
      prev := x)
    sched.Offline.states;
  !acc

let test_offline_schedule =
  qtest ~count:200 "offline schedule realizes the optimum" tiny_instance_gen
    (fun (s, start, tasks) ->
      let m = Metric.Line s in
      let sched = Offline.opt_schedule m ~start tasks in
      Float.abs (sched.Offline.cost -. Offline.opt_cost m ~start tasks) < 1e-6
      && Float.abs (schedule_cost m ~start tasks sched -. sched.Offline.cost)
         < 1e-6)

let indicator_seq_gen =
  QCheck2.Gen.(
    int_range 2 8 >>= fun s ->
    int_range 0 (s - 1) >>= fun start ->
    list_size (int_range 0 30) (int_range 0 (s - 1)) >|= fun es ->
    (s, start, Array.of_list es))

let test_offline_indicators =
  qtest ~count:200 "indicator specialization matches generic DP"
    indicator_seq_gen (fun (s, start, es) ->
      let m = Metric.Line s in
      let tasks = Array.map (fun e -> Mts.indicator e ~n:s) es in
      Float.abs
        (Offline.opt_cost_indicators m ~start es -. Offline.opt_cost m ~start tasks)
      < 1e-6)

let test_offline_free_start =
  qtest ~count:200 "free start <= fixed start; static >= dynamic"
    indicator_seq_gen (fun (s, start, es) ->
      let m = Metric.Line s in
      let free = Offline.opt_cost_indicators_free m es in
      let fixed = Offline.opt_cost_indicators m ~start es in
      let static = Offline.static_opt_indicators m ~start es in
      free <= fixed +. 1e-9 && fixed <= static +. 1e-9)

(* --- Work function algorithm ------------------------------------------ *)

let test_wfa_competitive =
  (* WFA is (2s-1)-competitive; check cost <= (2s-1) OPT + (2s-1) * diam on
     random indicator instances (the additive term covers the start-up) *)
  qtest ~count:150 "wfa within the deterministic competitive bound"
    indicator_seq_gen (fun (s, start, es) ->
      let m = Metric.Line s in
      let t = Wfa.solver m ~start ~rng:(Rng.create 0) in
      Array.iter (fun e -> ignore (Mts.serve t (Mts.indicator e ~n:s))) es;
      let opt = Offline.opt_cost_indicators m ~start es in
      let bound =
        (float_of_int ((2 * s) - 1) *. opt)
        +. float_of_int ((2 * s - 1) * Metric.diameter m)
      in
      Mts.total_cost t <= bound +. 1e-6)

let test_wfa_work_function_invariants =
  qtest ~count:150 "work function is 1-Lipschitz and lower-bounds cost"
    indicator_seq_gen (fun (s, start, es) ->
      let t, wf = Wfa.solver_introspect (Metric.Line s) ~start in
      Array.iter (fun e -> ignore (Mts.serve t (Mts.indicator e ~n:s))) es;
      let w = wf () in
      let lipschitz = ref true in
      for i = 0 to s - 2 do
        if Float.abs (w.(i + 1) -. w.(i)) > 1.0 +. 1e-9 then lipschitz := false
      done;
      let wmin = Array.fold_left Float.min w.(0) w in
      let opt = Offline.opt_cost_indicators (Metric.Line s) ~start es in
      (* min of the work function IS the offline optimum *)
      !lipschitz && Float.abs (wmin -. opt) < 1e-6)

let test_wfa_stationary () =
  (* hammering one edge: WFA eventually settles elsewhere and stops paying *)
  let s = 9 in
  let m = Metric.Line s in
  let t = Wfa.solver m ~start:4 ~rng:(Rng.create 0) in
  for _ = 1 to 200 do
    ignore (Mts.serve t (Mts.indicator 4 ~n:s))
  done;
  Alcotest.(check bool) "moved away" true (Mts.state t <> 4);
  let before = Mts.total_cost t in
  for _ = 1 to 100 do
    ignore (Mts.serve t (Mts.indicator 4 ~n:s))
  done;
  Alcotest.(check (float 1e-9)) "no further cost" before (Mts.total_cost t)

(* --- randomized solvers ------------------------------------------------ *)

let run_solver solver m ~start es ~seed =
  let t = solver m ~start ~rng:(Rng.create seed) in
  Array.iter (fun e -> ignore (Mts.serve t (Mts.indicator e ~n:(Metric.size m)) : int)) es;
  Mts.total_cost t

let test_smin_mw_distribution () =
  let m = Metric.Line 8 in
  let x = [| 9.0; 0.0; 9.0; 9.0; 9.0; 9.0; 9.0; 9.0 |] in
  let d = Rbgp_mts.Smin_mw.distribution m x in
  Alcotest.(check bool) "concentrates on cheap state" true
    (Rbgp_util.Dist.prob d 1 > 0.25)

let test_smin_mw_hammer () =
  (* cost of dodging a hammered state stays modest: O(c log s) *)
  let s = 32 in
  let m = Metric.Line s in
  let es = Array.make 2_000 (s / 2) in
  let cost = run_solver Rbgp_mts.Smin_mw.solver m ~start:(s / 2) es ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "hammer cost %.0f bounded" cost)
    true
    (cost <= 8.0 *. float_of_int s)

let test_hst_distribution () =
  let m = Metric.Line 16 in
  let x = Array.make 16 50.0 in
  x.(3) <- 0.0;
  let d = Rbgp_mts.Hst_mts.leaf_distribution m x in
  let arr = Rbgp_util.Dist.to_array d in
  let sum = Array.fold_left ( +. ) 0.0 arr in
  Alcotest.(check (float 1e-6)) "normalized" 1.0 sum;
  Alcotest.(check bool) "concentrates" true (arr.(3) > 0.5)

let test_hst_rejects_uniform () =
  Alcotest.check_raises "uniform rejected"
    (Invalid_argument "Hst_mts.solver: requires a line metric") (fun () ->
      ignore (Rbgp_mts.Hst_mts.solver (Metric.Uniform 4) ~start:0 ~rng:(Rng.create 0)))

let test_randomized_reasonable =
  (* all randomized solvers stay within a loose factor of OPT on random
     indicator sequences (sanity, not the theorem) *)
  qtest ~count:40 "randomized solvers within loose factor of OPT"
    QCheck2.Gen.(
      int_range 4 16 >>= fun s ->
      list_size (int_range 20 80) (int_range 0 (s - 1)) >|= fun es ->
      (s, Array.of_list es))
    (fun (s, es) ->
      let m = Metric.Line s in
      let start = s / 2 in
      let opt = Offline.opt_cost_indicators m ~start es in
      let loose cost = cost <= (20.0 *. opt) +. (30.0 *. float_of_int s) in
      loose (run_solver Rbgp_mts.Smin_mw.solver m ~start es ~seed:1)
      && loose (run_solver Rbgp_mts.Hst_mts.solver m ~start es ~seed:2)
      && loose (run_solver Rbgp_mts.Marking.solver m ~start es ~seed:3))

let test_marking_uniform () =
  (* marking on the uniform metric: competitive on repeated hammering *)
  let s = 8 in
  let m = Metric.Uniform s in
  let es = Array.init 4_000 (fun i -> i mod 2) in
  let cost = run_solver Rbgp_mts.Marking.solver m ~start:0 es ~seed:7 in
  let opt = Offline.opt_cost_indicators m ~start:0 es in
  Alcotest.(check bool)
    (Printf.sprintf "marking %.0f vs opt %.0f" cost opt)
    true
    (cost <= 10.0 *. (opt +. 1.0))

let () =
  Alcotest.run "rbgp_mts"
    [
      ("metric", [ Alcotest.test_case "distances" `Quick test_metric ]);
      ( "mts",
        [
          Alcotest.test_case "accounting" `Quick test_mts_accounting;
          Alcotest.test_case "validation" `Quick test_mts_validation;
        ] );
      ( "offline",
        [
          test_offline_vs_brute_line;
          test_offline_vs_brute_uniform;
          test_offline_schedule;
          test_offline_indicators;
          test_offline_free_start;
        ] );
      ( "wfa",
        [
          test_wfa_competitive;
          test_wfa_work_function_invariants;
          Alcotest.test_case "stationary convergence" `Quick test_wfa_stationary;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "smin-mw distribution" `Quick test_smin_mw_distribution;
          Alcotest.test_case "smin-mw hammer" `Quick test_smin_mw_hammer;
          Alcotest.test_case "hst distribution" `Quick test_hst_distribution;
          Alcotest.test_case "hst rejects uniform" `Quick test_hst_rejects_uniform;
          test_randomized_reasonable;
          Alcotest.test_case "marking on uniform" `Quick test_marking_uniform;
        ] );
    ]
