(* Tests for the offline comparators: the Hungarian algorithm against
   permutation brute force, the static ring optimum (DP + Hungarian vs
   exhaustive search, certified lower bound ordering), the exact dynamic
   DP, and the windowed dynamic lower bound — the crucial property being
   that every "lower bound" is genuinely below the exact optimum on
   exhaustively checkable instances. *)

module Instance = Rbgp_ring.Instance
module Cost = Rbgp_ring.Cost
module Hungarian = Rbgp_offline.Hungarian
module Sopt = Rbgp_offline.Static_opt
module Dopt = Rbgp_offline.Dynamic_opt
module Lb = Rbgp_offline.Lower_bound
module Rng = Rbgp_util.Rng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Hungarian --------------------------------------------------------- *)

let matrix_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun n ->
    array_size (return n) (array_size (return n) (float_range (-5.0) 10.0)))

let test_hungarian_vs_brute =
  qtest ~count:300 "hungarian = brute force (incl. negative costs)" matrix_gen
    (fun m ->
      let _, h = Hungarian.solve m in
      let _, b = Hungarian.solve_brute m in
      Float.abs (h -. b) < 1e-6)

let test_hungarian_is_permutation =
  qtest ~count:300 "hungarian returns a permutation" matrix_gen (fun m ->
      let a, _ = Hungarian.solve m in
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init (Array.length m) (fun i -> i))

let test_hungarian_known () =
  let m = [| [| 4.0; 1.0; 3.0 |]; [| 2.0; 0.0; 5.0 |]; [| 3.0; 2.0; 2.0 |] |] in
  let a, total = Hungarian.solve m in
  Alcotest.(check (float 1e-9)) "known optimum" 5.0 total;
  Alcotest.(check (array int)) "known assignment" [| 1; 0; 2 |] a

let test_hungarian_not_square () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Hungarian.solve: not square") (fun () ->
      ignore (Hungarian.solve [| [| 1.0 |]; [| 2.0 |] |] : int array * float))

(* --- static ring optimum ------------------------------------------------ *)

let tiny_ring_gen =
  QCheck2.Gen.(
    oneofl [ (6, 2); (6, 3); (8, 2); (9, 3) ] >>= fun (n, ell) ->
    list_size (int_range 0 40) (int_range 0 (n - 1)) >|= fun es ->
    (n, ell, Array.of_list es))

let test_static_order =
  qtest ~count:150 "crossing LB <= brute force <= segmented" tiny_ring_gen
    (fun (n, ell, trace) ->
      let inst = Instance.blocks ~n ~ell in
      let lb = Sopt.crossing_lower_bound inst trace in
      let brute = Sopt.brute_force inst trace in
      let seg = Sopt.segmented inst trace in
      lb <= brute.Sopt.total && brute.Sopt.total <= seg.Sopt.total)

let test_static_solutions_priced =
  qtest ~count:150 "solutions re-price consistently" tiny_ring_gen
    (fun (n, ell, trace) ->
      let inst = Instance.blocks ~n ~ell in
      let check (s : Sopt.solution) =
        let again = Sopt.cost_of_assignment inst trace s.Sopt.assignment in
        again.Sopt.total = s.Sopt.total
        && again.Sopt.crossing = s.Sopt.crossing
        && again.Sopt.migration = s.Sopt.migration
        && s.Sopt.total = s.Sopt.crossing + s.Sopt.migration
      in
      check (Sopt.brute_force inst trace) && check (Sopt.segmented inst trace))

let test_static_empty_trace () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let s = Sopt.segmented inst [||] in
  Alcotest.(check int) "empty trace is free" 0 s.Sopt.total;
  let b = Sopt.brute_force inst [||] in
  Alcotest.(check int) "brute agrees" 0 b.Sopt.total

let test_static_hot_edge () =
  (* all requests on one edge: OPT avoids cutting it *)
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let trace = Array.make 100 3 (* edge 3 is an initial cut *) in
  let s = Sopt.segmented inst trace in
  Alcotest.(check bool) "avoids the hot edge" true (s.Sopt.crossing = 0);
  Alcotest.(check bool) "pays only migration" true (s.Sopt.total <= 4)

let test_cost_of_assignment_validation () =
  let inst = Instance.blocks ~n:4 ~ell:2 in
  Alcotest.check_raises "unbalanced"
    (Invalid_argument "Static_opt.cost_of_assignment: unbalanced assignment")
    (fun () ->
      ignore (Sopt.cost_of_assignment inst [| 0 |] [| 0; 0; 0; 1 |]))

let test_requires_split () =
  let inst = Instance.make ~n:4 ~ell:2 ~k:4 () in
  Alcotest.check_raises "n <= k rejected"
    (Invalid_argument "Static_opt: requires n > k (ring must be split)")
    (fun () -> ignore (Sopt.segmented inst [| 0 |]))

(* --- dynamic optimum ----------------------------------------------------- *)

let test_dopt_state_count () =
  let inst = Instance.blocks ~n:4 ~ell:2 in
  let dp = Dopt.enumerate_states inst () in
  (* C(4,2) = 6 balanced configurations *)
  Alcotest.(check int) "states" 6 (Dopt.state_count dp)

let brute_dynamic inst trace =
  (* exhaustive search over schedules (tiny instances only) *)
  let dp = Dopt.enumerate_states inst () in
  let m = Dopt.state_count dp in
  ignore m;
  (* enumerate sequences of configurations directly *)
  let states = ref [] in
  let n = inst.Instance.n and ell = inst.Instance.ell and k = inst.Instance.k in
  let a = Array.make n 0 in
  let loads = Array.make ell 0 in
  let rec gen p =
    if p = n then states := Array.copy a :: !states
    else
      for s = 0 to ell - 1 do
        if loads.(s) < k then begin
          a.(p) <- s;
          loads.(s) <- loads.(s) + 1;
          gen (p + 1);
          loads.(s) <- loads.(s) - 1
        end
      done
  in
  gen 0;
  let states = Array.of_list !states in
  let best = ref max_int in
  let steps = Array.length trace in
  let ham x y =
    let d = ref 0 in
    Array.iteri (fun i v -> if v <> y.(i) then incr d) x;
    !d
  in
  let rec go t prev acc =
    if acc >= !best then ()
    else if t = steps then best := acc
    else
      Array.iter
        (fun c ->
          let e = trace.(t) in
          let comm = if c.(e) <> c.((e + 1) mod n) then 1 else 0 in
          go (t + 1) c (acc + ham prev c + comm))
        states
  in
  go 0 inst.Instance.initial 0;
  !best

let test_dopt_vs_brute =
  qtest ~count:25 "dynamic DP = schedule brute force"
    QCheck2.Gen.(
      list_size (int_range 0 4) (int_range 0 3) >|= fun es -> Array.of_list es)
    (fun trace ->
      let inst = Instance.blocks ~n:4 ~ell:2 in
      let dp = Dopt.enumerate_states inst () in
      Cost.total (Dopt.solve dp trace) = brute_dynamic inst trace)

let test_dopt_le_static =
  qtest ~count:100 "dynamic OPT <= static OPT" tiny_ring_gen
    (fun (n, ell, trace) ->
      let inst = Instance.blocks ~n ~ell in
      let dp = Dopt.enumerate_states inst () in
      Cost.total (Dopt.solve dp trace) <= (Sopt.brute_force inst trace).Sopt.total)

let test_dopt_schedule_replays () =
  let inst = Instance.blocks ~n:6 ~ell:2 in
  let rng = Rng.create 3 in
  let trace = Array.init 100 (fun _ -> Rng.int rng 6) in
  let dp = Dopt.enumerate_states inst () in
  let schedule, cost = Dopt.solve_schedule dp trace in
  let replay = Rbgp_ring.Simulator.replay_cost inst trace ~assignments:schedule in
  Alcotest.(check int) "replay agrees" (Cost.total cost) (Cost.total replay)

let test_dopt_too_large () =
  let inst = Instance.blocks ~n:16 ~ell:4 in
  Alcotest.(check bool) "raises on large space" true
    (try
       ignore (Dopt.enumerate_states inst ~max_states:100 ());
       false
     with Invalid_argument _ -> true)

(* --- pruned solver vs retained exhaustive reference ----------------------- *)

(* every feasible small shape crossed with every oblivious workload
   generator: the dominance-pruned DP must agree with the exhaustive
   reference relaxation exactly (integer costs, so equality is exact) *)
let dopt_shapes = [| (4, 2); (6, 2); (6, 3); (8, 2); (8, 4); (9, 3); (10, 2) |]

let test_dopt_pruned_eq_reference =
  qtest ~count:70 "pruned DP = reference DP (all workload generators)"
    QCheck2.Gen.(
      int_range 0 (Array.length dopt_shapes - 1) >>= fun si ->
      int_range 0 10_000 >>= fun seed ->
      nat >|= fun wi -> (si, seed, wi))
    (fun (si, seed, wi) ->
      let n, ell = dopt_shapes.(si) in
      let inst = Instance.blocks ~n ~ell in
      let rng = Rng.create seed in
      let workloads = Rbgp_workloads.Workloads.all_fixed ~n ~steps:20 rng in
      let trace =
        match List.nth workloads (wi mod List.length workloads) with
        | _, Rbgp_ring.Trace.Fixed t -> t
        | _ -> assert false (* all_fixed only yields fixed traces *)
      in
      let dp = Dopt.shared inst () in
      Cost.total (Dopt.solve dp trace)
      = Cost.total (Dopt.solve ~reference:true dp trace))

(* --- canonicalization ----------------------------------------------------- *)

let rotate a r =
  let n = Array.length a in
  Array.init n (fun i -> a.((i + r) mod n))

let canon_gen =
  QCheck2.Gen.(
    oneofl [ (4, 2); (6, 2); (6, 3); (8, 4); (9, 3) ] >>= fun (n, ell) ->
    array_size (return n) (int_range 0 (ell - 1)) >>= fun a ->
    int_range 0 (n - 1) >>= fun r ->
    shuffle_a (Array.init ell Fun.id) >|= fun perm -> (a, r, perm))

let test_canonical_rotation_invariant =
  qtest ~count:300 "canonical invariant under rotation" canon_gen
    (fun (a, r, _) -> Dopt.canonical (rotate a r) = Dopt.canonical a)

let test_canonical_relabel_invariant =
  qtest ~count:300 "canonical invariant under server relabeling" canon_gen
    (fun (a, _, perm) ->
      Dopt.canonical (Array.map (fun s -> perm.(s)) a) = Dopt.canonical a)

let test_canonical_combined_invariant =
  qtest ~count:300 "canonical invariant under rotation o relabeling" canon_gen
    (fun (a, r, perm) ->
      Dopt.canonical (rotate (Array.map (fun s -> perm.(s)) a) r)
      = Dopt.canonical a)

let test_canonical_idempotent =
  qtest ~count:300 "canonical is idempotent" canon_gen (fun (a, _, _) ->
      let c = Dopt.canonical a in
      Dopt.canonical c = c)

let test_symmetry_classes () =
  (* n=4, ell=2: six balanced configurations, two orbits under
     rotation x relabeling (contiguous blocks vs alternating) *)
  let dp = Dopt.shared (Instance.blocks ~n:4 ~ell:2) () in
  Alcotest.(check int) "states" 6 (Dopt.state_count dp);
  Alcotest.(check int) "classes" 2 (Dopt.symmetry_class_count dp)

let test_shared_is_cached () =
  let inst = Instance.blocks ~n:6 ~ell:3 in
  let a = Dopt.shared inst () and b = Dopt.shared inst () in
  Alcotest.(check bool) "same table returned" true (a == b)

(* --- lower bounds --------------------------------------------------------- *)

let test_dynamic_lb_certified =
  (* the heart of E3's validity: the windowed bound never exceeds the exact
     dynamic optimum *)
  qtest ~count:100 "windowed LB <= exact dynamic OPT" tiny_ring_gen
    (fun (n, ell, trace) ->
      let inst = Instance.blocks ~n ~ell in
      let dp = Dopt.enumerate_states inst () in
      Lb.dynamic_lb inst trace () <= Cost.total (Dopt.solve dp trace))

let test_static_lb_reexport =
  qtest ~count:50 "static_lb = crossing_lower_bound" tiny_ring_gen
    (fun (n, ell, trace) ->
      let inst = Instance.blocks ~n ~ell in
      Lb.static_lb inst trace = Sopt.crossing_lower_bound inst trace)

let test_dynamic_heuristic_bracket =
  (* the feasible windowed schedule must land between the exact optimum and
     the (re-priced) static optimum *)
  qtest ~count:60 "LB <= exact OPT <= windowed UB <= static total"
    tiny_ring_gen (fun (n, ell, trace) ->
      let inst = Instance.blocks ~n ~ell in
      let dp = Dopt.enumerate_states inst () in
      let exact = Cost.total (Dopt.solve dp trace) in
      let _, ub = Rbgp_offline.Dynamic_heuristic.best inst trace ~windows:[ 4; 16; max 1 (Array.length trace) ] () in
      let static_total = (Sopt.segmented inst trace).Sopt.total in
      let lb = Lb.dynamic_lb inst trace () in
      lb <= exact
      && exact <= Cost.total ub
      && Cost.total ub <= static_total)

let test_interval_opt_sane () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let rng = Rng.create 5 in
  let trace = Array.init 2_000 (fun _ -> Rng.int rng 64) in
  let o = Lb.interval_opt inst trace ~shift:0 ~epsilon:0.5 in
  Alcotest.(check bool) "positive on busy trace" true (o > 0.0);
  Alcotest.(check (float 1e-9)) "empty trace free" 0.0
    (Lb.interval_opt inst [||] ~shift:0 ~epsilon:0.5);
  (* restricting requests can only reduce per-interval optima relative to
     hammering every edge uniformly often; smoke: monotone in trace prefix *)
  let half = Array.sub trace 0 1_000 in
  Alcotest.(check bool) "monotone in prefix" true
    (Lb.interval_opt inst half ~shift:0 ~epsilon:0.5 <= o +. 1e-9)

let () =
  Alcotest.run "rbgp_offline"
    [
      ( "hungarian",
        [
          test_hungarian_vs_brute;
          test_hungarian_is_permutation;
          Alcotest.test_case "known matrix" `Quick test_hungarian_known;
          Alcotest.test_case "not square" `Quick test_hungarian_not_square;
        ] );
      ( "static-opt",
        [
          test_static_order;
          test_static_solutions_priced;
          Alcotest.test_case "empty trace" `Quick test_static_empty_trace;
          Alcotest.test_case "hot edge avoided" `Quick test_static_hot_edge;
          Alcotest.test_case "validation" `Quick test_cost_of_assignment_validation;
          Alcotest.test_case "requires n > k" `Quick test_requires_split;
        ] );
      ( "dynamic-opt",
        [
          Alcotest.test_case "state count" `Quick test_dopt_state_count;
          test_dopt_vs_brute;
          test_dopt_le_static;
          Alcotest.test_case "schedule replays" `Quick test_dopt_schedule_replays;
          Alcotest.test_case "size guard" `Quick test_dopt_too_large;
          test_dopt_pruned_eq_reference;
        ] );
      ( "canonicalization",
        [
          test_canonical_rotation_invariant;
          test_canonical_relabel_invariant;
          test_canonical_combined_invariant;
          test_canonical_idempotent;
          Alcotest.test_case "symmetry classes n=4 ell=2" `Quick
            test_symmetry_classes;
          Alcotest.test_case "shared table cached" `Quick test_shared_is_cached;
        ] );
      ( "lower-bounds",
        [
          test_dynamic_lb_certified;
          test_static_lb_reexport;
          test_dynamic_heuristic_bracket;
          Alcotest.test_case "interval opt sanity" `Quick test_interval_opt_sane;
        ] );
    ]
