(* Tests for the streaming partition service (lib/serve) and the trace
   codecs it feeds on.

   The contracts under test:
   - the incremental engine bills exactly what the batch simulator bills
     on the same request sequence (every algorithm, both accounting paths);
   - checkpoint ⇒ resume is byte-identical to an uninterrupted run —
     costs, max load, violations and final assignment — for every
     algorithm in the serving registry, whether the resume goes through
     explicit state restore or deterministic prefix replay, and the
     verification catches tampered snapshots;
   - the framed binary trace format round-trips with the text format and
     detects torn frames;
   - the streaming text reader matches the materializing loader and names
     the file in its errors. *)

module Rng = Rbgp_util.Rng
module Instance = Rbgp_ring.Instance
module Simulator = Rbgp_ring.Simulator
module Trace = Rbgp_ring.Trace
module Cost = Rbgp_ring.Cost
module Workloads = Rbgp_workloads.Workloads
module Trace_io = Rbgp_workloads.Trace_io
module Trace_codec = Rbgp_workloads.Trace_codec
module Registry = Rbgp_serve.Registry
module Engine = Rbgp_serve.Engine
module Ckpt = Rbgp_serve.Checkpoint
module Metrics = Rbgp_serve.Metrics
module Source = Rbgp_serve.Source

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fixed = function Trace.Fixed a -> a | Trace.Adaptive _ -> assert false

let gen_trace ~n ~steps ~seed =
  fixed (Workloads.rotating ~n ~steps (Rng.create seed))

type outcome = {
  comm : int;
  mig : int;
  steps : int;
  max_load : int;
  violations : int;
  assignment : int array;
}

let outcome_of engine =
  let r = Engine.result engine in
  {
    comm = r.Simulator.cost.Cost.comm;
    mig = r.Simulator.cost.Cost.mig;
    steps = r.Simulator.steps;
    max_load = r.Simulator.max_load;
    violations = r.Simulator.capacity_violations;
    assignment = Engine.assignment engine;
  }

let check_outcome msg expected got =
  Alcotest.(check int) (msg ^ ": comm") expected.comm got.comm;
  Alcotest.(check int) (msg ^ ": mig") expected.mig got.mig;
  Alcotest.(check int) (msg ^ ": steps") expected.steps got.steps;
  Alcotest.(check int) (msg ^ ": max_load") expected.max_load got.max_load;
  Alcotest.(check int) (msg ^ ": violations") expected.violations got.violations;
  Alcotest.(check (array int)) (msg ^ ": assignment") expected.assignment
    got.assignment

(* --- engine vs batch simulator -------------------------------------- *)

let test_engine_matches_simulator () =
  let n = 48 and ell = 4 and steps = 800 and seed = 11 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:5 in
  List.iter
    (fun (spec : Registry.spec) ->
      let batch_alg = spec.Registry.build ~epsilon:0.5 ~seed inst in
      let batch =
        Simulator.run inst batch_alg (Trace.fixed trace) ~steps
      in
      let engine = Engine.create ~alg:spec.Registry.name ~seed inst in
      Array.iter (fun e -> ignore (Engine.ingest engine e)) trace;
      let got = outcome_of engine in
      check_outcome
        (spec.Registry.name ^ " engine == simulator")
        {
          comm = batch.Simulator.cost.Cost.comm;
          mig = batch.Simulator.cost.Cost.mig;
          steps = batch.Simulator.steps;
          max_load = batch.Simulator.max_load;
          violations = batch.Simulator.capacity_violations;
          assignment =
            Rbgp_ring.Assignment.to_array
              (batch_alg.Rbgp_ring.Online.assignment ());
        }
        got)
    Registry.all

let test_engine_decisions_cumulative () =
  let n = 32 and ell = 4 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps:500 ~seed:3 in
  let engine = Engine.create ~alg:"onl-static" ~seed:17 inst in
  let cum_comm = ref 0 and cum_mig = ref 0 in
  Array.iteri
    (fun i e ->
      let d = Engine.ingest engine e in
      cum_comm := !cum_comm + d.Engine.comm;
      cum_mig := !cum_mig + d.Engine.moved;
      Alcotest.(check int) "step index" i d.Engine.step;
      Alcotest.(check int) "cum comm" !cum_comm d.Engine.cum_comm;
      Alcotest.(check int) "cum mig" !cum_mig d.Engine.cum_mig)
    trace

(* --- checkpoint / resume -------------------------------------------- *)

(* the satellite requirement, verbatim: checkpoint at a step, resume, and
   the final result equals the uninterrupted run — for every algorithm in
   the registry and both accounting modes *)
let test_checkpoint_resume_all_algorithms () =
  let n = 48 and ell = 4 and steps = 600 and cut = 251 and seed = 23 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:9 in
  List.iter
    (fun accounting ->
      List.iter
        (fun (spec : Registry.spec) ->
          let name =
            Printf.sprintf "%s/%s" spec.Registry.name
              (match accounting with `Diff -> "diff" | _ -> "auto")
          in
          let uninterrupted =
            let e = Engine.create ~accounting ~alg:spec.Registry.name ~seed inst in
            Array.iter (fun q -> ignore (Engine.ingest e q)) trace;
            outcome_of e
          in
          let first = Engine.create ~accounting ~alg:spec.Registry.name ~seed inst in
          Array.iter
            (fun q -> ignore (Engine.ingest first q))
            (Array.sub trace 0 cut);
          let ckpt = Engine.checkpoint first in
          (* the snapshot must survive its on-disk representation *)
          let ckpt = Ckpt.of_string (Ckpt.to_string ckpt) in
          let resumed = Engine.resume ~accounting ckpt in
          Alcotest.(check int) (name ^ ": resumed pos") cut (Engine.pos resumed);
          Array.iter
            (fun q -> ignore (Engine.ingest resumed q))
            (Array.sub trace cut (steps - cut));
          check_outcome (name ^ ": resume == uninterrupted") uninterrupted
            (outcome_of resumed))
        Registry.all)
    [ `Auto; `Diff ]

let test_checkpoint_explicit_state_presence () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let has_state alg =
    let e = Engine.create ~alg ~seed:1 inst in
    ignore (Engine.ingest e 0);
    Option.is_some (Engine.checkpoint e).Ckpt.alg_state
  in
  (* deterministic baselines serialize state explicitly; the randomized
     core algorithms rely on prefix replay *)
  List.iter
    (fun alg ->
      Alcotest.(check bool) (alg ^ " has explicit state") true (has_state alg))
    [ "never-move"; "greedy-colocate"; "counter-threshold";
      "component-learning" ];
  List.iter
    (fun alg ->
      Alcotest.(check bool) (alg ^ " replays prefix") false (has_state alg))
    [ "onl-dynamic"; "onl-static"; "dyn/wfa" ]

let test_resume_detects_tampering () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let trace = gen_trace ~n:32 ~steps:200 ~seed:2 in
  let ckpt_for alg =
    let e = Engine.create ~alg ~seed:4 inst in
    Array.iter (fun q -> ignore (Engine.ingest e q)) trace;
    Engine.checkpoint e
  in
  let expect_failure name tampered =
    Alcotest.check_raises name (Failure "") (fun () ->
        try ignore (Engine.resume tampered) with Failure _ -> raise (Failure ""))
  in
  (* explicit-restore path: the cost is carried by the checkpoint, so what
     resume can (and does) verify is the restored assignment *)
  let ckpt = ckpt_for "counter-threshold" in
  let assignment = Array.copy ckpt.Ckpt.assignment in
  assignment.(0) <- (assignment.(0) + 1) mod inst.Instance.ell;
  expect_failure "explicit restore: tampered assignment rejected"
    { ckpt with Ckpt.assignment };
  (* prefix-replay path: replay recomputes everything, so a tampered cost
     diverges from the replayed one *)
  let ckpt = ckpt_for "onl-static" in
  expect_failure "prefix replay: tampered comm rejected"
    { ckpt with Ckpt.comm = ckpt.Ckpt.comm + 1 }

let test_checkpoint_file_roundtrip () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let e = Engine.create ~alg:"greedy-colocate" ~seed:5 inst in
  Array.iter (fun q -> ignore (Engine.ingest e q)) (gen_trace ~n:32 ~steps:300 ~seed:6);
  let ckpt = Engine.checkpoint e in
  let path = Filename.temp_file "rbgp_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ckpt.write ~path ckpt;
      let back = Ckpt.read ~path in
      Alcotest.(check string) "roundtrip" (Ckpt.to_string ckpt)
        (Ckpt.to_string back);
      (* a truncated file is a decode error, not a crash or a wrong value *)
      let raw = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub raw 0 (String.length raw - 3)));
      match Ckpt.read ~path with
      | _ -> Alcotest.fail "truncated checkpoint accepted"
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "error names the path" true
            (Astring.String.is_infix ~affix:"rbgp_ckpt" msg))

let qcheck_checkpoint_resume =
  let gen =
    QCheck2.Gen.(
      let* alg_idx = int_bound (List.length Registry.all - 1) in
      let* seed = int_bound 10_000 in
      let* wseed = int_bound 10_000 in
      let* steps = int_range 50 400 in
      let* cut = int_range 1 (steps - 1) in
      let* diff = bool in
      return (alg_idx, seed, wseed, steps, cut, diff))
  in
  qtest ~count:60 "qcheck: checkpoint at random step resumes identically" gen
    (fun (alg_idx, seed, wseed, steps, cut, diff) ->
      let spec = List.nth Registry.all alg_idx in
      let accounting = if diff then `Diff else `Auto in
      let n = 48 and ell = 4 in
      let inst = Instance.blocks ~n ~ell in
      let trace = gen_trace ~n ~steps ~seed:wseed in
      let uninterrupted =
        let e = Engine.create ~accounting ~alg:spec.Registry.name ~seed inst in
        Array.iter (fun q -> ignore (Engine.ingest e q)) trace;
        outcome_of e
      in
      let first = Engine.create ~accounting ~alg:spec.Registry.name ~seed inst in
      Array.iter (fun q -> ignore (Engine.ingest first q)) (Array.sub trace 0 cut);
      let ckpt = Ckpt.of_string (Ckpt.to_string (Engine.checkpoint first)) in
      let resumed = Engine.resume ~accounting ckpt in
      Array.iter
        (fun q -> ignore (Engine.ingest resumed q))
        (Array.sub trace cut (steps - cut));
      let got = outcome_of resumed in
      got.comm = uninterrupted.comm
      && got.mig = uninterrupted.mig
      && got.steps = uninterrupted.steps
      && got.max_load = uninterrupted.max_load
      && got.violations = uninterrupted.violations
      && got.assignment = uninterrupted.assignment)

(* --- batched / interval-sharded ingest ------------------------------- *)

(* Every decision field except the wall-clock latency, for byte-identity
   comparisons between the per-request and batched paths. *)
let decision_key (d : Engine.decision) =
  Printf.sprintf "%d|%d|%d|%d|%d|%d|%d" d.Engine.step d.Engine.edge
    d.Engine.comm d.Engine.moved d.Engine.cum_comm d.Engine.cum_mig
    d.Engine.max_load

let per_request_run ?accounting ~alg ~seed inst trace =
  let e = Engine.create ?accounting ~alg ~seed inst in
  let ds = Array.map (fun q -> decision_key (Engine.ingest e q)) trace in
  (ds, outcome_of e)

(* split [trace] into batches whose sizes are drawn from [rng] *)
let partition_trace rng ~max_batch trace =
  let steps = Array.length trace in
  let rec go at acc =
    if at >= steps then List.rev acc
    else
      let len = Stdlib.min (steps - at) (1 + Rng.int rng max_batch) in
      go (at + len) (Array.sub trace at len :: acc)
  in
  go 0 []

let with_domains d f =
  Rbgp_util.Pool.set_domains (Some d);
  Fun.protect f ~finally:(fun () -> Rbgp_util.Pool.set_domains None)

(* batched == per-request, decision for decision, for every registry
   algorithm (only onl-dynamic actually shards; the others take the
   sequential fallback inside Simulator.prepare — same contract) *)
let test_batched_matches_per_request () =
  let n = 48 and ell = 4 and steps = 600 and seed = 31 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:13 in
  List.iter
    (fun (spec : Registry.spec) ->
      let alg = spec.Registry.name in
      let expected_ds, expected = per_request_run ~alg ~seed inst trace in
      List.iter
        (fun domains ->
          with_domains domains (fun () ->
              let e = Engine.create ~sanitize:true ~alg ~seed inst in
              let got_ds =
                List.concat_map
                  (fun batch ->
                    Array.to_list
                      (Array.map decision_key (Engine.ingest_batch e batch)))
                  (partition_trace (Rng.create 7) ~max_batch:64 trace)
              in
              Alcotest.(check (list string))
                (Printf.sprintf "%s decisions, %d domains" alg domains)
                (Array.to_list expected_ds) got_ds;
              check_outcome
                (Printf.sprintf "%s outcome, %d domains" alg domains)
                expected (outcome_of e)))
        [ 1; 4 ])
    Registry.all

(* the prepared batch must be consumed strictly in order *)
let test_prepare_rejects_out_of_order () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let spec = Registry.find "onl-dynamic" in
  let online = spec.Registry.build ~epsilon:0.5 ~seed:3 inst in
  let st = Simulator.stepper inst online in
  let play = Simulator.prepare st [| 0; 1; 2 |] in
  Alcotest.check_raises "out-of-order play rejected"
    (Invalid_argument "Simulator.prepare: requests must be played in order")
    (fun () -> ignore (play 1))

(* the satellite sweep: sharded vs sequential byte-identity of serve
   records and final tables across every registry algorithm, random
   domain counts, random batch partitions, and a mid-stream
   checkpoint/resume cut at a random batch boundary *)
let qcheck_sharded_identity =
  let gen =
    QCheck2.Gen.(
      let* alg_idx = int_bound (List.length Registry.all - 1) in
      let* seed = int_bound 10_000 in
      let* wseed = int_bound 10_000 in
      let* steps = int_range 20 250 in
      let* domains = oneofl [ 1; 2; 3; 5 ] in
      let* max_batch = oneofl [ 1; 3; 17; 64 ] in
      let* pseed = int_bound 10_000 in
      let* cut_frac = float_range 0.0 1.0 in
      return (alg_idx, seed, wseed, steps, domains, max_batch, pseed, cut_frac))
  in
  qtest ~count:50
    "qcheck: sharded batches + checkpoint cut == sequential, all algorithms"
    gen
    (fun (alg_idx, seed, wseed, steps, domains, max_batch, pseed, cut_frac) ->
      let spec = List.nth Registry.all alg_idx in
      let alg = spec.Registry.name in
      let n = 40 and ell = 4 in
      let inst = Instance.blocks ~n ~ell in
      let trace = gen_trace ~n ~steps ~seed:wseed in
      let expected_ds, expected = per_request_run ~alg ~seed inst trace in
      let batches =
        Array.of_list (partition_trace (Rng.create pseed) ~max_batch trace)
      in
      let cut = int_of_float (cut_frac *. float_of_int (Array.length batches)) in
      let cut = Stdlib.min cut (Array.length batches) in
      with_domains domains (fun () ->
          let first = Engine.create ~alg ~seed inst in
          let ds = ref [] in
          let feed e batch =
            Array.iter
              (fun d -> ds := decision_key d :: !ds)
              (Engine.ingest_batch e batch)
          in
          for b = 0 to cut - 1 do
            feed first batches.(b)
          done;
          (* resume goes through explicit restore or (batched) prefix
             replay, depending on the algorithm *)
          let ckpt = Ckpt.of_string (Ckpt.to_string (Engine.checkpoint first)) in
          let resumed = Engine.resume ckpt in
          for b = cut to Array.length batches - 1 do
            feed resumed batches.(b)
          done;
          let got = outcome_of resumed in
          List.rev !ds = Array.to_list expected_ds
          && got.comm = expected.comm && got.mig = expected.mig
          && got.steps = expected.steps
          && got.max_load = expected.max_load
          && got.violations = expected.violations
          && got.assignment = expected.assignment))

(* --- trace codecs --------------------------------------------------- *)

let with_temp ext f =
  let path = Filename.temp_file "rbgp_trace" ext in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let qcheck_binary_text_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 300 in
      let* len = int_bound 500 in
      let* trace = array_size (return len) (int_bound (n - 1)) in
      let* ell = int_bound 16 in
      let* seed = int_range (-100) 10_000 in
      return (n, trace, ell, seed))
  in
  qtest ~count:80 "qcheck: binary <-> text trace round-trip" gen
    (fun (n, trace, ell, seed) ->
      with_temp ".rbt" (fun bin ->
          with_temp ".txt" (fun txt ->
              Trace_codec.write ~path:bin ~n ~ell ~seed trace;
              let hdr = Trace_codec.read_header ~path:bin in
              let from_bin = Trace_codec.read ~path:bin ~n in
              Trace_io.save ~path:txt from_bin;
              let from_txt = Trace_io.load ~path:txt ~n in
              Trace_codec.looks_binary ~path:bin
              && (not (Trace_codec.looks_binary ~path:txt))
              && hdr.Trace_codec.n = n
              && hdr.Trace_codec.ell = ell
              && hdr.Trace_codec.seed = seed
              && from_bin = trace && from_txt = trace)))

let test_codec_streaming_fold () =
  let n = 200 in
  let trace = Array.init 1000 (fun i -> (i * 17) mod n) in
  with_temp ".rbt" (fun path ->
      Trace_codec.write ~path ~n ~ell:8 ~seed:42 trace;
      let hdr, rev =
        Trace_codec.fold ~path ~n ~init:[] ~f:(fun acc e -> e :: acc)
      in
      Alcotest.(check int) "header n" n hdr.Trace_codec.n;
      Alcotest.(check (array int)) "fold == read" trace
        (Array.of_list (List.rev rev)))

let test_codec_detects_torn_frame () =
  let n = 300 in
  (* edge 200 needs a two-byte varint: chopping one byte tears the frame *)
  with_temp ".rbt" (fun path ->
      Trace_codec.write ~path ~n ~ell:0 ~seed:0 [| 1; 200 |];
      let raw = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub raw 0 (String.length raw - 1)));
      match Trace_codec.read ~path ~n with
      | _ -> Alcotest.fail "torn frame accepted"
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "error mentions torn frame" true
            (Astring.String.is_infix ~affix:"torn" msg))

let test_codec_rejects_wrong_n () =
  with_temp ".rbt" (fun path ->
      Trace_codec.write ~path ~n:64 ~ell:0 ~seed:0 [| 1; 2; 3 |];
      match Trace_codec.read ~path ~n:128 with
      | _ -> Alcotest.fail "mismatched n accepted"
      | exception Invalid_argument _ -> ())

let test_trace_io_fold_matches_load () =
  let n = 50 in
  let trace = Array.init 400 (fun i -> (i * 7) mod n) in
  with_temp ".txt" (fun path ->
      Trace_io.save ~path ~comment:"fold test" trace;
      let folded =
        Trace_io.fold ~path ~n ~init:[] ~f:(fun acc e -> e :: acc)
      in
      Alcotest.(check (array int)) "fold == load" (Trace_io.load ~path ~n)
        (Array.of_list (List.rev folded));
      Alcotest.(check (array int)) "load == original" trace
        (Trace_io.load ~path ~n))

let test_trace_io_error_names_path () =
  with_temp ".txt" (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "1\nbogus\n2\n");
      match Trace_io.load ~path ~n:10 with
      | _ -> Alcotest.fail "bogus line accepted"
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "message %S names the file" msg)
            true
            (Astring.String.is_infix ~affix:path msg
            && Astring.String.is_infix ~affix:"line 2" msg))

(* --- sources -------------------------------------------------------- *)

let test_source_binary_and_text_agree () =
  let n = 96 in
  let trace = gen_trace ~n ~steps:700 ~seed:13 in
  let drain src =
    let acc = ref [] in
    let rec go () =
      match Source.next src with
      | Some e ->
          acc := e :: !acc;
          go ()
      | None -> ()
    in
    go ();
    Source.close src;
    Array.of_list (List.rev !acc)
  in
  with_temp ".rbt" (fun bin ->
      with_temp ".txt" (fun txt ->
          Trace_codec.write ~path:bin ~n ~ell:8 ~seed:13 trace;
          Trace_io.save ~path:txt trace;
          let from_bin = drain (Source.open_file ~n bin) in
          let from_txt = drain (Source.open_file ~n txt) in
          Alcotest.(check (array int)) "binary source" trace from_bin;
          Alcotest.(check (array int)) "text source" trace from_txt))

let test_source_mmap_kinds () =
  let n = 64 in
  let trace = gen_trace ~n ~steps:50 ~seed:5 in
  with_temp ".rbt" (fun bin ->
      with_temp ".txt" (fun txt ->
          Trace_codec.write ~path:bin ~n ~ell:8 ~seed:5 trace;
          Trace_io.save ~path:txt trace;
          let kind_of ?format ?mmap path =
            let src = Source.open_file ?format ?mmap ~n path in
            let k = Source.kind src in
            Source.close src;
            k
          in
          let pp_kind = function `Mmap -> "mmap" | `Channel -> "channel" in
          let kind = Alcotest.testable (Fmt.of_to_string pp_kind) ( = ) in
          Alcotest.check kind "binary file auto-detects to mmap" `Mmap
            (kind_of bin);
          Alcotest.check kind "--mmap off forces the channel" `Channel
            (kind_of ~mmap:`Off bin);
          Alcotest.check kind "--mmap on maps" `Mmap (kind_of ~mmap:`On bin);
          Alcotest.check kind "text traces stream" `Channel (kind_of txt);
          (* the mapped source still exposes the framed header *)
          let src = Source.open_file ~n bin in
          (match Source.header src with
          | Some h ->
              Alcotest.(check int) "mmap header n" n h.Trace_codec.n;
              Alcotest.(check int) "mmap header seed" 5 h.Trace_codec.seed
          | None -> Alcotest.fail "mapped binary source lost its header");
          Source.close src))

let test_source_next_batch_matches_next () =
  let n = 96 in
  let trace = gen_trace ~n ~steps:701 ~seed:17 in
  let drain_batched src ~block =
    let buf = Array.make block 0 in
    let acc = ref [] in
    let continue = ref true in
    while !continue do
      let got = Source.next_batch src buf ~limit:block in
      if got = 0 then continue := false
      else
        for j = 0 to got - 1 do
          acc := buf.(j) :: !acc
        done
    done;
    Source.close src;
    Array.of_list (List.rev !acc)
  in
  with_temp ".rbt" (fun bin ->
      Trace_codec.write ~path:bin ~n ~ell:8 ~seed:17 trace;
      List.iter
        (fun block ->
          Alcotest.(check (array int))
            (Printf.sprintf "mmap next_batch, block %d" block)
            trace
            (drain_batched (Source.open_file ~mmap:`On ~n bin) ~block);
          Alcotest.(check (array int))
            (Printf.sprintf "channel next_batch, block %d" block)
            trace
            (drain_batched (Source.open_file ~mmap:`Off ~n bin) ~block))
        [ 1; 7; 64; 1024 ];
      (* limit outside the buffer is rejected, not clamped *)
      let src = Source.open_file ~mmap:`On ~n bin in
      (match Source.next_batch src (Array.make 4 0) ~limit:5 with
      | _ -> Alcotest.fail "oversized limit accepted"
      | exception Invalid_argument _ -> ());
      Source.close src)

(* The quiet batch path is observationally identical to the instrumented
   one: same costs, same assignment, same replay prefix — so a checkpoint
   taken after quiet batches resumes byte-identically. *)
let test_quiet_batch_identity () =
  let n = 128 and ell = 8 in
  let trace = gen_trace ~n ~steps:900 ~seed:23 in
  List.iter
    (fun alg ->
      let inst = Instance.blocks ~n ~ell in
      let loud = Engine.create ~alg ~seed:3 inst in
      let quiet = Engine.create ~alg ~seed:3 inst in
      let block = 128 in
      let at = ref 0 in
      while !at < Array.length trace do
        let len = Stdlib.min block (Array.length trace - !at) in
        let chunk = Array.sub trace !at len in
        ignore (Engine.ingest_batch loud chunk);
        Engine.ingest_batch_quiet quiet chunk;
        at := !at + len
      done;
      check_outcome
        (Printf.sprintf "%s: quiet == instrumented" alg)
        (outcome_of loud) (outcome_of quiet);
      Alcotest.(check int)
        (alg ^ ": same position") (Engine.pos loud) (Engine.pos quiet);
      Alcotest.(check int)
        (alg ^ ": metrics saw every request")
        (Array.length trace)
        (Metrics.requests (Engine.metrics quiet));
      let ck_loud = Engine.checkpoint loud
      and ck_quiet = Engine.checkpoint quiet in
      Alcotest.(check (array int))
        (alg ^ ": identical replay prefix") ck_loud.Ckpt.prefix
        ck_quiet.Ckpt.prefix;
      let resumed = Engine.resume ck_quiet in
      check_outcome
        (alg ^ ": quiet checkpoint resumes")
        (outcome_of loud) (outcome_of resumed))
    [ "onl-dynamic"; "never-move" ]

(* End-to-end: the same binary trace served from the mmap source and the
   channel source produces identical outcomes — the CLI identity behind
   --mmap auto/on/off. *)
let test_source_mmap_vs_channel_serve_identity () =
  let n = 128 and ell = 8 in
  let trace = gen_trace ~n ~steps:800 ~seed:29 in
  with_temp ".rbt" (fun bin ->
      Trace_codec.write ~path:bin ~n ~ell ~seed:29 trace;
      let serve ~mmap ~quiet =
        let inst = Instance.blocks ~n ~ell in
        let engine = Engine.create ~alg:"onl-dynamic" ~seed:7 inst in
        let src = Source.open_file ~mmap ~n bin in
        let buf = Array.make 256 0 in
        let continue = ref true in
        while !continue do
          let got = Source.next_batch src buf ~limit:(Array.length buf) in
          if got = 0 then continue := false
          else begin
            let chunk = Array.sub buf 0 got in
            if quiet then Engine.ingest_batch_quiet engine chunk
            else ignore (Engine.ingest_batch engine chunk)
          end
        done;
        Source.close src;
        outcome_of engine
      in
      let reference = serve ~mmap:`Off ~quiet:false in
      check_outcome "mmap == channel" reference (serve ~mmap:`On ~quiet:false);
      check_outcome "mmap quiet == channel instrumented" reference
        (serve ~mmap:`On ~quiet:true))

(* Construction failures must release the channel exactly when the
   source was to own it: open_file hands its descriptor straight to
   of_channel, so a header-parse error without the close would leak an
   fd per failed open.  A caller-owned channel must survive the same
   failure untouched. *)
let test_source_owned_channel_closed_on_header_error () =
  with_temp ".rbt" (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "NOTATRACE");
      let ic = open_in_bin path in
      (match Source.of_channel ~path ~owns_channel:true ~format:`Binary ~n:8 ic with
      | _ -> Alcotest.fail "bad header accepted"
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "message %S names the file" msg)
            true
            (Astring.String.is_infix ~affix:path msg));
      (match input_byte ic with
      | _ -> Alcotest.fail "owned channel still open after failed construction"
      | exception Sys_error _ -> ());
      let ic2 = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic2)
        (fun () ->
          (match
             Source.of_channel ~path ~owns_channel:false ~format:`Binary ~n:8
               ic2
           with
          | _ -> Alcotest.fail "bad header accepted"
          | exception Invalid_argument _ -> ());
          match input_byte ic2 with
          | _ -> ()
          | exception Sys_error _ ->
              Alcotest.fail "caller-owned channel closed by failed construction"))

(* A pipe that dies mid-frame (producer killed between the bytes of a
   varint) must surface as a torn-frame decode error carrying the byte
   offset, not as a silent end of stream. *)
let test_source_pipe_eof_mid_frame () =
  let n = 8 and ell = 4 in
  let rd, wr = Unix.pipe () in
  let oc = Unix.out_channel_of_descr wr in
  Trace_codec.output_header oc ~n ~ell ~seed:0;
  Trace_codec.output_request oc 5;
  output_byte oc 0x80 (* continuation bit set, next byte never arrives *);
  close_out oc;
  let ic = Unix.in_channel_of_descr rd in
  let src =
    Source.of_channel ~path:"<pipe>" ~owns_channel:true ~format:`Binary ~n ic
  in
  Fun.protect
    ~finally:(fun () -> Source.close src)
    (fun () ->
      (match Source.next src with
      | Some e -> Alcotest.(check int) "intact frame before the tear" 5 e
      | None -> Alcotest.fail "complete frame reported as end of stream");
      match Source.next src with
      | _ -> Alcotest.fail "torn tail accepted"
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "message %S reports a torn frame with offset" msg)
            true
            (Astring.String.is_infix ~affix:"torn frame" msg
            && Astring.String.is_infix ~affix:"byte" msg))

(* --- metrics -------------------------------------------------------- *)

let test_metrics_histogram () =
  let m = Metrics.create () in
  for _ = 1 to 90 do
    Metrics.observe m ~latency_ns:1000 ~comm:1 ~moved:0 ~max_load:3
  done;
  for _ = 1 to 10 do
    Metrics.observe m ~latency_ns:1_000_000 ~comm:0 ~moved:2 ~max_load:5
  done;
  Alcotest.(check int) "requests" 100 (Metrics.requests m);
  Alcotest.(check int) "comm" 90 (Metrics.comm m);
  Alcotest.(check int) "mig" 20 (Metrics.mig m);
  Alcotest.(check int) "max load" 5 (Metrics.max_load m);
  (* 1000ns lands in bucket [512, 1024), 1ms in [2^19, 2^20) *)
  Alcotest.(check int) "p50" 512 (Metrics.quantile m 0.5);
  Alcotest.(check int) "p99" 524288 (Metrics.quantile m 0.99);
  Alcotest.(check bool) "rps positive" true (Metrics.rps m > 0.0);
  Alcotest.(check bool) "json tagged" true
    (Astring.String.is_prefix ~affix:"{\"type\":\"metrics\"" (Metrics.to_json m));
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.requests m);
  Alcotest.(check int) "reset quantile" 0 (Metrics.quantile m 0.99)

(* --- runtime sanitizer ------------------------------------------------- *)

(* Positive: a sanitized run over a healthy algorithm is silent and bills
   exactly what an unsanitized run bills. *)
let test_sanitizer_clean_run () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let trace = gen_trace ~n:32 ~steps:400 ~seed:9 in
  let run sanitize =
    let e = Engine.create ~sanitize ~alg:"onl-dynamic" ~seed:3 inst in
    Array.iter (fun q -> ignore (Engine.ingest e q)) trace;
    let r = Engine.result e in
    (r.Simulator.cost.Cost.comm, r.Simulator.cost.Cost.mig, r.Simulator.max_load)
  in
  let plain = run false and checked = run true in
  Alcotest.(check (triple int int int))
    "sanitized run matches unsanitized" plain checked

(* Negative: corrupting the live assignment between requests (overloading
   one server past the claimed augmentation bound) must be caught by the
   very next sanitized ingest, with the request index in the message.
   [never-move] keeps its hands off the assignment, so the corruption
   survives until the check; [strict:false] keeps the stepper itself from
   raising first. *)
let test_sanitizer_catches_corruption () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let e =
    Engine.create ~strict:false ~sanitize:true ~alg:"never-move" ~seed:1 inst
  in
  ignore (Engine.ingest e 0);
  let a = (Engine.online e).Rbgp_ring.Online.assignment () in
  for p = 0 to 7 do
    Rbgp_ring.Assignment.set a p 0
  done;
  let raised =
    try
      ignore (Engine.ingest e 1);
      None
    with Failure msg -> Some msg
  in
  match raised with
  | None -> Alcotest.fail "sanitizer did not flag an overloaded server"
  | Some msg ->
      Alcotest.(check bool)
        "message names the sanitizer" true
        (Astring.String.is_prefix ~affix:"RBGP_SANITIZE: request 1:" msg)

let () =
  Alcotest.run "serve"
    [
      ( "engine",
        [
          Alcotest.test_case "matches batch simulator" `Quick
            test_engine_matches_simulator;
          Alcotest.test_case "decision records are cumulative" `Quick
            test_engine_decisions_cumulative;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume == uninterrupted (all algs, both \
                              accountings)" `Quick
            test_checkpoint_resume_all_algorithms;
          Alcotest.test_case "explicit state exactly for baselines" `Quick
            test_checkpoint_explicit_state_presence;
          Alcotest.test_case "tampered snapshots rejected" `Quick
            test_resume_detects_tampering;
          Alcotest.test_case "file roundtrip + truncation" `Quick
            test_checkpoint_file_roundtrip;
          qcheck_checkpoint_resume;
        ] );
      ( "batched",
        [
          Alcotest.test_case "batched == per-request (all algs)" `Quick
            test_batched_matches_per_request;
          Alcotest.test_case "prepared batch is order-enforced" `Quick
            test_prepare_rejects_out_of_order;
          qcheck_sharded_identity;
        ] );
      ( "codec",
        [
          qcheck_binary_text_roundtrip;
          Alcotest.test_case "streaming fold" `Quick test_codec_streaming_fold;
          Alcotest.test_case "torn frame detected" `Quick
            test_codec_detects_torn_frame;
          Alcotest.test_case "wrong n rejected" `Quick test_codec_rejects_wrong_n;
          Alcotest.test_case "text fold matches load" `Quick
            test_trace_io_fold_matches_load;
          Alcotest.test_case "text errors name the path" `Quick
            test_trace_io_error_names_path;
        ] );
      ( "source",
        [
          Alcotest.test_case "mmap auto-detection and kinds" `Quick
            test_source_mmap_kinds;
          Alcotest.test_case "next_batch == next (both backends)" `Quick
            test_source_next_batch_matches_next;
          Alcotest.test_case "quiet batches == instrumented batches" `Quick
            test_quiet_batch_identity;
          Alcotest.test_case "mmap == channel end to end" `Quick
            test_source_mmap_vs_channel_serve_identity;
          Alcotest.test_case "binary and text sources agree" `Quick
            test_source_binary_and_text_agree;
          Alcotest.test_case "owned channel closed on header error" `Quick
            test_source_owned_channel_closed_on_header_error;
          Alcotest.test_case "pipe EOF mid-frame is a torn frame" `Quick
            test_source_pipe_eof_mid_frame;
        ] );
      ( "metrics",
        [ Alcotest.test_case "log-bucketed histogram" `Quick test_metrics_histogram ] );
      ( "sanitizer",
        [
          Alcotest.test_case "clean run is silent and cost-identical" `Quick
            test_sanitizer_clean_run;
          Alcotest.test_case "corrupted assignment caught with request index"
            `Quick test_sanitizer_catches_corruption;
        ] );
    ]
