(* Tests for the experiment harness: the runner's agreement with the
   simulator, the algorithm registries, and smoke-running representative
   experiments end to end (the cheap ones; the full suite is exercised by
   `dune exec bench/main.exe`). *)

module Instance = Rbgp_ring.Instance
module Cost = Rbgp_ring.Cost
module Trace = Rbgp_ring.Trace
module Runner = Rbgp_harness.Runner
module Report = Rbgp_harness.Report
module Rng = Rbgp_util.Rng

let test_run_alg_matches_simulator () =
  let inst = Runner.instance ~n:32 ~ell:4 in
  let rng = Rng.create 1 in
  let trace = Array.init 1_000 (fun _ -> Rng.int rng 32) in
  let run =
    Runner.run_alg inst
      (Rbgp_baselines.Baselines.never_move inst)
      (Trace.fixed trace) ~steps:1_000
  in
  let direct =
    Rbgp_ring.Simulator.run inst
      (Rbgp_baselines.Baselines.never_move inst)
      (Trace.fixed trace) ~steps:1_000
  in
  Alcotest.(check int) "same total"
    (Cost.total direct.Rbgp_ring.Simulator.cost)
    (Cost.total run.Runner.cost);
  Alcotest.(check string) "algorithm name" "never-move" run.Runner.alg

let test_registries () =
  let core = Runner.core_algorithms ~epsilon:0.5 in
  let base = Runner.baseline_algorithms ~epsilon:0.5 in
  let mts = Runner.mts_variants ~epsilon:0.5 in
  Alcotest.(check int) "two core algorithms" 2 (List.length core);
  Alcotest.(check int) "five baselines" 5 (List.length base);
  Alcotest.(check int) "four MTS variants" 4 (List.length mts);
  (* every spec builds a runnable algorithm *)
  let inst = Runner.instance ~n:32 ~ell:4 in
  let trace = Array.init 200 (fun i -> i mod 32) in
  List.iter
    (fun (spec : Runner.alg_spec) ->
      let alg = spec.Runner.build inst ~trace ~seed:3 in
      let r = Runner.run_alg inst alg (Trace.fixed trace) ~steps:200 in
      Alcotest.(check bool)
        (spec.Runner.name ^ " runs")
        true
        (Cost.total r.Runner.cost >= 0))
    (core @ base @ mts)

let test_averaged () =
  let mean, sd = Runner.averaged ~seeds:[ 1; 2; 3 ] (fun s -> float_of_int s) in
  Alcotest.(check (float 1e-9)) "mean" 2.0 mean;
  Alcotest.(check (float 1e-9)) "sd" 1.0 sd

let test_experiment_ids () =
  Alcotest.(check int) "fourteen experiments" 14 (List.length Report.all);
  Alcotest.(check bool) "unknown id raises" true
    (try
       Report.run "e99";
       false
     with Invalid_argument _ -> true)

let with_null_stdout f =
  (* the experiments print tables; keep test output readable *)
  let dev_null = open_out "/dev/null" in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel dev_null) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      close_out dev_null)
    f

let smoke id = with_null_stdout (fun () -> Report.run ~quick:true ~seed:7 id)

let test_smoke_e1 () = smoke "e1"
let test_smoke_e4 () = smoke "e4"
let test_smoke_e5 () = smoke "e5"
let test_smoke_e6 () = smoke "e6"

let () =
  Alcotest.run "rbgp_harness"
    [
      ( "runner",
        [
          Alcotest.test_case "matches simulator" `Quick
            test_run_alg_matches_simulator;
          Alcotest.test_case "registries" `Quick test_registries;
          Alcotest.test_case "averaged" `Quick test_averaged;
        ] );
      ( "report",
        [
          Alcotest.test_case "experiment ids" `Quick test_experiment_ids;
          Alcotest.test_case "e1 smoke" `Slow test_smoke_e1;
          Alcotest.test_case "e4 smoke" `Slow test_smoke_e4;
          Alcotest.test_case "e5 smoke" `Slow test_smoke_e5;
          Alcotest.test_case "e6 smoke" `Slow test_smoke_e6;
        ] );
    ]
