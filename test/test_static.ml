(* Tests for the Section-4 machinery: the slicing procedure (interval
   growth, deactivations, event stream), the clustering procedure
   (structural consistency, the cluster-size lemmas), the scheduling
   procedure (rebalancing restores the load bound), and the composed
   static-model algorithm (Lemma 4.13 capacity, strictness, determinism).

   Most properties are checked *during* full runs of the composed
   algorithm: the clustering invariants have to hold after every request,
   not just at the end. *)

module Instance = Rbgp_ring.Instance
module Cost = Rbgp_ring.Cost
module Segment = Rbgp_ring.Segment
module Trace = Rbgp_ring.Trace
module Simulator = Rbgp_ring.Simulator
module Slicing = Rbgp_core.Slicing
module Clustering = Rbgp_core.Clustering
module Scheduling = Rbgp_core.Scheduling
module Static_alg = Rbgp_core.Static_alg
module Rng = Rbgp_util.Rng

(* --- slicing -------------------------------------------------------- *)

let test_slicing_initial () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let s = Slicing.create inst (Rng.create 1) in
  Alcotest.(check (list int)) "one interval per initial cut" [ 7; 15; 23; 31 ]
    (Slicing.initial_cuts s);
  Alcotest.(check int) "interval count" 4 (Slicing.interval_count s);
  List.iter
    (fun (id, cut) ->
      Alcotest.(check int) (Printf.sprintf "cut %d at center" id) cut
        (List.nth (Slicing.initial_cuts s) id))
    (Slicing.active_cuts s)

let test_slicing_requires_split () =
  let inst = Instance.make ~n:4 ~ell:1 ~k:4 () in
  Alcotest.check_raises "n <= k rejected"
    (Invalid_argument "Slicing.create: requires n > k") (fun () ->
      ignore (Slicing.create inst (Rng.create 0)))

let drive_slicing ~n ~ell ~steps ~seed =
  let inst = Instance.blocks ~n ~ell in
  let rng = Rng.create seed in
  let s = Slicing.create inst (Rng.split rng) in
  let events = ref [] in
  for _ = 1 to steps do
    let e = Rng.int rng n in
    events := Slicing.serve s e @ !events
  done;
  (inst, s, List.rev !events)

let test_slicing_cut_inside_interval () =
  let _, s, _ = drive_slicing ~n:48 ~ell:4 ~steps:3_000 ~seed:2 in
  List.iter
    (fun (id, cut) ->
      let seg = Slicing.interval_seg s id in
      Alcotest.(check bool)
        (Printf.sprintf "cut of %d inside its interval" id)
        true
        (Segment.mem seg cut && Segment.mem seg ((cut + 1) mod 48)))
    (Slicing.active_cuts s)

let test_slicing_interval_sizes () =
  let inst, s, _ = drive_slicing ~n:48 ~ell:4 ~steps:3_000 ~seed:3 in
  let k = inst.Instance.k in
  for id = 0 to Slicing.interval_count s - 1 do
    let len = Segment.length (Slicing.interval_seg s id) in
    Alcotest.(check bool)
      (Printf.sprintf "interval %d size %d follows the schedule" id len)
      true
      (len <= k + 1
      && (len = k + 1 || len = 2 lsl (Slicing.interval_rank s id) || len = 2))
  done

let test_slicing_rank_growth () =
  let _, s, _ = drive_slicing ~n:48 ~ell:4 ~steps:5_000 ~seed:4 in
  for id = 0 to Slicing.interval_count s - 1 do
    let len = Segment.length (Slicing.interval_seg s id) in
    let rank = Slicing.interval_rank s id in
    (* each growth step at most doubles: len <= 2^rank * 2 *)
    Alcotest.(check bool) "rank consistent" true (len <= 2 lsl rank)
  done

let test_slicing_event_sanity () =
  let _, _, events = drive_slicing ~n:48 ~ell:4 ~steps:3_000 ~seed:5 in
  List.iter
    (function
      | Slicing.Cut_moved { from_edge; to_edge; dist; _ } ->
          Alcotest.(check bool) "move is a real move" true
            (from_edge <> to_edge && dist > 0)
      | Slicing.Cut_removed { reason; _ } ->
          Alcotest.(check bool) "removal reason is a deactivation" true
            (reason = Slicing.Mono || reason = Slicing.Dominated))
    events

let test_slicing_deactivation_monotone () =
  (* statuses only go Active -> inactive; dominated intervals stay inside
     the interval that dominated them *)
  let inst = Instance.blocks ~n:48 ~ell:4 in
  let rng = Rng.create 6 in
  let s = Slicing.create inst (Rng.split rng) in
  let statuses = Array.make (Slicing.interval_count s) Slicing.Active in
  for _ = 1 to 3_000 do
    let e = Rng.int rng 48 in
    ignore (Slicing.serve s e);
    Array.iteri
      (fun id prev ->
        let cur = Slicing.interval_status s id in
        if prev <> Slicing.Active then
          Alcotest.(check bool) "stays deactivated" true (cur = prev);
        statuses.(id) <- cur)
      statuses
  done

let test_slicing_request_counts () =
  let inst = Instance.blocks ~n:16 ~ell:2 in
  let s = Slicing.create inst (Rng.create 7) in
  ignore (Slicing.serve s 3);
  ignore (Slicing.serve s 3);
  ignore (Slicing.serve s 9);
  Alcotest.(check int) "x(3)" 2 (Slicing.request_count s 3);
  Alcotest.(check int) "x(9)" 1 (Slicing.request_count s 9);
  Alcotest.(check int) "x(0)" 0 (Slicing.request_count s 0)

(* --- clustering ------------------------------------------------------ *)

let test_clustering_create () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let c = Clustering.create inst in
  (match Clustering.check_consistency c with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "initial cuts live" 4 (List.length (Clustering.cut_edges c));
  let out = Array.make 32 (-1) in
  Clustering.assignment_into c out;
  Alcotest.(check (array int)) "initial assignment preserved"
    inst.Instance.initial out

let test_clustering_single_server_ring () =
  (* degenerate: everything on one server, no cuts *)
  let inst = Instance.make ~n:4 ~ell:2 ~k:4 () in
  let c = Clustering.create inst in
  (match Clustering.check_consistency c with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check (list int)) "no cuts" [] (Clustering.cut_edges c)

(* drive clustering directly with hand-crafted events to exercise the
   structural paths: boundary move, merge (cut removal), split (a second
   interval's cut arriving at a fresh position), whole-ring collapse and
   re-rooting, duplicate cuts (multiset semantics) *)

let mk_event_move ~from_edge ~to_edge ~dist =
  Rbgp_core.Slicing.Cut_moved { id = 0; from_edge; to_edge; dist }

let mk_event_remove ~edge =
  Rbgp_core.Slicing.Cut_removed { id = 0; edge; reason = Rbgp_core.Slicing.Mono }

let assert_consistent c ctx =
  match Clustering.check_consistency c with
  | Ok () -> ()
  | Error m -> Alcotest.fail (ctx ^ ": " ^ m)

let test_clustering_boundary_move () =
  let inst = Instance.blocks ~n:16 ~ell:2 in
  let c = Clustering.create inst in
  (* initial cuts at 7 and 15; move 7 -> 9: slice [0..7] grows to [0..9] *)
  Clustering.apply_event c (mk_event_move ~from_edge:7 ~to_edge:9 ~dist:2);
  assert_consistent c "after move";
  Alcotest.(check (list int)) "cuts" [ 9; 15 ] (Clustering.cut_edges c);
  Alcotest.(check int) "move cost" 2 (Clustering.move_cost c);
  let out = Array.make 16 (-1) in
  Clustering.assignment_into c out;
  (* processes 8 and 9 joined server 0's slice; the slice is 10/16
     0-colored, majority 0, was in color-0 cluster -> stays *)
  Alcotest.(check int) "p8 on server 0" 0 out.(8);
  Alcotest.(check int) "p9 on server 0" 0 out.(9);
  Alcotest.(check int) "p10 stays on server 1" 1 out.(10)

let test_clustering_merge_to_single_cut () =
  let inst = Instance.blocks ~n:16 ~ell:2 in
  let c = Clustering.create inst in
  Clustering.apply_event c (mk_event_remove ~edge:7);
  assert_consistent c "after merge";
  Alcotest.(check (list int)) "one cut left" [ 15 ] (Clustering.cut_edges c);
  (* both halves had size 8: the merge charges min(8,8) = 8 *)
  Alcotest.(check int) "merge cost" 8 (Clustering.merge_cost c);
  Alcotest.(check int) "single slice of the whole ring" 1
    (List.length (Clustering.slices c))

let test_clustering_whole_ring_collapse () =
  (* removing every cut collapses the structure into a single whole-ring
     slice; the assignment keeps every process on that slice's server *)
  let inst = Instance.blocks ~n:16 ~ell:2 in
  let c = Clustering.create inst in
  Clustering.apply_event c (mk_event_remove ~edge:7);
  Clustering.apply_event c (mk_event_remove ~edge:15);
  assert_consistent c "no cuts";
  Alcotest.(check (list int)) "no cuts" [] (Clustering.cut_edges c);
  Alcotest.(check int) "one slice" 1 (List.length (Clustering.slices c));
  let out = Array.make 16 (-1) in
  Clustering.assignment_into c out;
  Alcotest.(check bool) "all on one server" true
    (Array.for_all (( = ) out.(0)) out)

let test_clustering_duplicate_cuts () =
  let inst = Instance.blocks ~n:16 ~ell:2 in
  let c = Clustering.create inst in
  (* a second interval's cut moves onto edge 7 (already cut), then the
     first leaves: the position must stay a live cut throughout *)
  Clustering.apply_event c (mk_event_move ~from_edge:15 ~to_edge:7 ~dist:8);
  assert_consistent c "duplicate created";
  Alcotest.(check (list int)) "both cuts collapse to one position" [ 7 ]
    (Clustering.cut_edges c);
  Clustering.apply_event c (mk_event_move ~from_edge:7 ~to_edge:11 ~dist:4);
  assert_consistent c "one copy moved away";
  Alcotest.(check (list int)) "positions 7 and 11 live" [ 7; 11 ]
    (Clustering.cut_edges c)

let test_clustering_singleton_birth () =
  (* shrink a slice until it loses its 3/4 majority: it must leave the
     color cluster and become a singleton (free) *)
  let inst = Instance.blocks ~n:16 ~ell:2 in
  let c = Clustering.create inst in
  (* move cut 7 far into server 1's block: slice [0..13] is 8/14 zeros -
     majority but not 3/4 - parent was color-0 cluster, so it stays;
     then move past the majority threshold *)
  Clustering.apply_event c (mk_event_move ~from_edge:7 ~to_edge:13 ~dist:6);
  assert_consistent c "majority kept";
  let kinds =
    List.map (fun (_, cl) -> cl.Clustering.kind) (Clustering.slices c)
  in
  Alcotest.(check bool) "still color clusters" true
    (List.for_all (function Clustering.Color _ -> true | _ -> false) kinds);
  (* now the other boundary: make a slice with no majority *)
  Clustering.apply_event c (mk_event_move ~from_edge:15 ~to_edge:5 ~dist:6);
  assert_consistent c "after second move";
  let singleton_count =
    List.length
      (List.filter
         (fun (cl : Clustering.cluster) -> cl.Clustering.kind = Clustering.Singleton)
         (Clustering.clusters c))
  in
  Alcotest.(check bool) "a singleton was born" true (singleton_count >= 1)

(* qcheck: random valid event streams keep clustering consistent.  We use
   the real slicing procedure as the event source but on random instances
   and traces, which covers the product space far beyond the fixed-workload
   runs below. *)
let test_clustering_random_streams =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"clustering consistent on random slicing streams"
       QCheck2.Gen.(
         oneofl [ (16, 2); (24, 3); (32, 4) ] >>= fun (n, ell) ->
         int_range 0 1000 >>= fun seed ->
         list_size (int_range 50 300) (int_range 0 (n - 1)) >|= fun es ->
         (n, ell, seed, Array.of_list es))
       (fun (n, ell, seed, es) ->
         let inst = Instance.blocks ~n ~ell in
         let s = Slicing.create inst (Rng.create seed) in
         let c = Clustering.create inst in
         Array.for_all
           (fun e ->
             let events = Slicing.serve s e in
             List.iter (Clustering.apply_event c) events;
             match Clustering.check_consistency c with
             | Ok () -> true
             | Error _ -> false)
           es))

(* run the full static algorithm, checking clustering invariants and
   cluster-size lemmas after every request *)
let run_static_checked ~n ~ell ~steps ~seed ~trace_of =
  let inst = Instance.blocks ~n ~ell in
  let k = inst.Instance.k in
  let rng = Rng.create seed in
  let alg = Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
  let online = Static_alg.online alg in
  let trace = trace_of inst (Rng.split rng) in
  let delta_bar = Static_alg.delta_bar alg in
  let singleton_bound =
    (3.0 +. (2.0 *. (1.0 -. delta_bar) /. delta_bar)) *. float_of_int k
  in
  let check_invariants step =
    let c = Static_alg.clustering alg in
    (match Clustering.check_consistency c with
    | Ok () -> ()
    | Error m -> Alcotest.fail (Printf.sprintf "step %d: %s" step m));
    List.iter
      (fun (cl : Clustering.cluster) ->
        match cl.Clustering.kind with
        | Clustering.Color _ ->
            (* Lemma 4.12 *)
            if cl.Clustering.size > 2 * k then
              Alcotest.fail
                (Printf.sprintf "step %d: color cluster size %d > 2k" step
                   cl.Clustering.size)
        | Clustering.Singleton ->
            (* Corollary 4.10 *)
            if float_of_int cl.Clustering.size > singleton_bound +. 1e-9 then
              Alcotest.fail
                (Printf.sprintf "step %d: singleton size %d > bound %.1f" step
                   cl.Clustering.size singleton_bound))
      (Clustering.clusters c)
  in
  let r =
    Simulator.run
      ~on_step:(fun step _ -> if step mod 20 = 0 then check_invariants step)
      inst online trace ~steps
  in
  check_invariants steps;
  (inst, alg, r)

let test_static_invariants_uniform () =
  ignore
    (run_static_checked ~n:64 ~ell:4 ~steps:4_000 ~seed:11
       ~trace_of:(fun inst rng ->
         Rbgp_workloads.Workloads.uniform ~n:inst.Instance.n ~steps:4_000 rng))

let test_static_invariants_rotating () =
  ignore
    (run_static_checked ~n:64 ~ell:4 ~steps:4_000 ~seed:12
       ~trace_of:(fun inst rng ->
         Rbgp_workloads.Workloads.rotating ~n:inst.Instance.n ~steps:4_000 rng))

let test_static_invariants_zipf () =
  ignore
    (run_static_checked ~n:96 ~ell:6 ~steps:4_000 ~seed:13
       ~trace_of:(fun inst rng ->
         Rbgp_workloads.Workloads.zipf ~n:inst.Instance.n ~steps:4_000 rng))

let test_static_invariants_adversarial () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let rng = Rng.create 14 in
  let alg = Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
  let r =
    Simulator.run inst (Static_alg.online alg)
      (Rbgp_workloads.Workloads.adversary_cut_chaser ~n:64)
      ~steps:4_000
  in
  Alcotest.(check int) "no violations under the chaser" 0
    r.Simulator.capacity_violations;
  match Clustering.check_consistency (Static_alg.clustering alg) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* --- static algorithm end-to-end ------------------------------------- *)

let test_static_load_bound () =
  let _, _, r =
    run_static_checked ~n:128 ~ell:8 ~steps:6_000 ~seed:15
      ~trace_of:(fun inst rng ->
        Rbgp_workloads.Workloads.hotspot ~n:inst.Instance.n ~steps:6_000 rng)
  in
  Alcotest.(check int) "no capacity violations (Lemma 4.13)" 0
    r.Simulator.capacity_violations

let test_static_strict_on_cheap_traces () =
  (* requests that never leave a server's block: the algorithm must pay
     nothing at all (strict competitiveness, Theorem 2.2) *)
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let alg = Static_alg.create ~epsilon:0.5 inst (Rng.create 16) in
  let trace = Array.init 2_000 (fun i -> 1 + (i mod 10)) in
  let r =
    Simulator.run inst (Static_alg.online alg) (Trace.fixed trace)
      ~steps:2_000
  in
  Alcotest.(check int) "zero cost on block-internal demand" 0
    (Cost.total r.Simulator.cost)

let test_static_deterministic_by_seed () =
  let run () =
    let inst = Instance.blocks ~n:64 ~ell:4 in
    let rng = Rng.create 99 in
    let alg = Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
    let trace =
      Rbgp_workloads.Workloads.uniform ~n:64 ~steps:2_000 (Rng.split rng)
    in
    let r = Simulator.run inst (Static_alg.online alg) trace ~steps:2_000 in
    (r.Simulator.cost.Cost.comm, r.Simulator.cost.Cost.mig)
  in
  Alcotest.(check (pair int int)) "reproducible" (run ()) (run ())

let test_static_comm_dominated_by_hits () =
  (* every billed communication crosses a live cut, and every live cut
     belongs to an active interval, so simulator comm <= slicing hit cost *)
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let rng = Rng.create 17 in
  let alg = Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
  let trace = Rbgp_workloads.Workloads.uniform ~n:64 ~steps:4_000 (Rng.split rng) in
  let r = Simulator.run inst (Static_alg.online alg) trace ~steps:4_000 in
  Alcotest.(check bool) "comm <= slicing hits" true
    (float_of_int r.Simulator.cost.Cost.comm
    <= Slicing.hit_cost (Static_alg.slicing alg) +. 1e-9)

let test_static_cost_counters () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let rng = Rng.create 18 in
  let alg = Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
  let trace = Rbgp_workloads.Workloads.zipf ~n:64 ~steps:3_000 (Rng.split rng) in
  ignore (Simulator.run inst (Static_alg.online alg) trace ~steps:3_000);
  let c = Static_alg.clustering alg in
  Alcotest.(check bool) "counters non-negative" true
    (Clustering.move_cost c >= 0
    && Clustering.merge_cost c >= 0
    && Clustering.mono_cost c >= 0
    && Static_alg.rebalance_cost alg >= 0);
  (* slicing's move counter equals clustering's (they see the same events) *)
  Alcotest.(check (float 1e-9)) "move counters agree"
    (Slicing.move_cost (Static_alg.slicing alg))
    (float_of_int (Clustering.move_cost c))

let test_static_augmentation_formula () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let alg = Static_alg.create ~epsilon:0.5 inst (Rng.create 19) in
  let eps' = Static_alg.eps' alg in
  Alcotest.(check (float 1e-9)) "eps' = eps/2" 0.25 eps';
  let db = Static_alg.delta_bar alg in
  Alcotest.(check (float 1e-9)) "delta_bar default" (14.0 /. 15.0) db;
  Alcotest.(check bool) "augmentation >= 3" true (Static_alg.augmentation alg >= 3.0)

(* --- scheduling in isolation ------------------------------------------ *)

let mk_cluster cid size server =
  { Clustering.cid; kind = Clustering.Singleton; size; server }

let test_scheduling_rebalance () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  (* k = 16; put 3 clusters of 20 on server 0: load 60 > (2 + eps') * 16 *)
  let sched = Scheduling.create inst ~eps':0.5 in
  let clusters =
    [ mk_cluster 0 20 0; mk_cluster 1 20 0; mk_cluster 2 20 0;
      mk_cluster 3 4 1 ]
  in
  Scheduling.rebalance sched clusters;
  let loads = Scheduling.loads sched clusters in
  let x_max = 20 in
  let threshold = Scheduling.threshold sched ~x_max in
  Array.iteri
    (fun s load ->
      Alcotest.(check bool)
        (Printf.sprintf "server %d load %d within threshold" s load)
        true
        (float_of_int load <= threshold +. 1e-9))
    loads;
  Alcotest.(check bool) "rebalancing paid for moves" true
    (Scheduling.rebalance_cost sched > 0)

let test_scheduling_noop_when_balanced () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let sched = Scheduling.create inst ~eps':0.5 in
  let clusters = List.init 4 (fun s -> mk_cluster s 16 s) in
  Scheduling.rebalance sched clusters;
  Alcotest.(check int) "no moves needed" 0 (Scheduling.rebalance_cost sched)

let test_scheduling_huge_cluster () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  (* k = 16; a cluster of 40 (> k) shares a server with another: the
     eviction path must fire *)
  let sched = Scheduling.create inst ~eps':0.5 in
  let clusters =
    [ mk_cluster 0 40 0; mk_cluster 1 14 0; mk_cluster 2 5 1; mk_cluster 3 5 2 ]
  in
  Scheduling.rebalance sched clusters;
  let loads = Scheduling.loads sched clusters in
  let threshold = Scheduling.threshold sched ~x_max:40 in
  Array.iter
    (fun load ->
      Alcotest.(check bool) "within threshold" true
        (float_of_int load <= threshold +. 1e-9))
    loads

let test_scheduling_random =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:"rebalance restores the bound on random cluster configurations"
       QCheck2.Gen.(
         oneofl [ (64, 4); (128, 8) ] >>= fun (n, ell) ->
         let k = n / ell in
         (* random clusters summing to n, sizes in [1, 3k], random servers *)
         let rec split remaining acc =
           if remaining = 0 then return acc
           else
             int_range 1 (min remaining (3 * k)) >>= fun size ->
             int_range 0 (ell - 1) >>= fun server ->
             split (remaining - size) ((size, server) :: acc)
         in
         split n [] >|= fun clusters -> (n, ell, clusters))
       (fun (n, ell, cluster_specs) ->
         let inst = Instance.blocks ~n ~ell in
         let k = n / ell in
         let sched = Scheduling.create inst ~eps':0.5 in
         let clusters =
           List.mapi
             (fun i (size, server) -> mk_cluster i size server)
             cluster_specs
         in
         Scheduling.rebalance sched clusters;
         let loads = Scheduling.loads sched clusters in
         let x_max =
           List.fold_left
             (fun acc (c : Clustering.cluster) -> max acc c.Clustering.size)
             0 clusters
         in
         let threshold = Scheduling.threshold sched ~x_max in
         let sum = Array.fold_left ( + ) 0 loads in
         ignore k;
         sum = n
         && Array.for_all
              (fun load -> float_of_int load <= threshold +. 1e-9)
              loads))

let () =
  Alcotest.run "rbgp_core_static"
    [
      ( "slicing",
        [
          Alcotest.test_case "initial intervals" `Quick test_slicing_initial;
          Alcotest.test_case "requires n > k" `Quick test_slicing_requires_split;
          Alcotest.test_case "cut inside interval" `Quick
            test_slicing_cut_inside_interval;
          Alcotest.test_case "interval sizes" `Quick test_slicing_interval_sizes;
          Alcotest.test_case "rank growth" `Quick test_slicing_rank_growth;
          Alcotest.test_case "event sanity" `Quick test_slicing_event_sanity;
          Alcotest.test_case "deactivation monotone" `Quick
            test_slicing_deactivation_monotone;
          Alcotest.test_case "request counts" `Quick test_slicing_request_counts;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "create" `Quick test_clustering_create;
          Alcotest.test_case "single-server ring" `Quick
            test_clustering_single_server_ring;
          Alcotest.test_case "boundary move" `Quick test_clustering_boundary_move;
          Alcotest.test_case "merge to single cut" `Quick
            test_clustering_merge_to_single_cut;
          Alcotest.test_case "whole-ring collapse" `Quick
            test_clustering_whole_ring_collapse;
          Alcotest.test_case "duplicate cuts (multiset)" `Quick
            test_clustering_duplicate_cuts;
          Alcotest.test_case "singleton birth" `Quick test_clustering_singleton_birth;
          test_clustering_random_streams;
          Alcotest.test_case "invariants under uniform" `Quick
            test_static_invariants_uniform;
          Alcotest.test_case "invariants under rotating" `Quick
            test_static_invariants_rotating;
          Alcotest.test_case "invariants under zipf" `Quick
            test_static_invariants_zipf;
          Alcotest.test_case "invariants under adversary" `Quick
            test_static_invariants_adversarial;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "rebalance restores bound" `Quick
            test_scheduling_rebalance;
          Alcotest.test_case "no-op when balanced" `Quick
            test_scheduling_noop_when_balanced;
          Alcotest.test_case "huge cluster eviction" `Quick
            test_scheduling_huge_cluster;
          test_scheduling_random;
        ] );
      ( "static-alg",
        [
          Alcotest.test_case "load bound (Lemma 4.13)" `Quick
            test_static_load_bound;
          Alcotest.test_case "strict on cheap traces" `Quick
            test_static_strict_on_cheap_traces;
          Alcotest.test_case "deterministic by seed" `Quick
            test_static_deterministic_by_seed;
          Alcotest.test_case "comm dominated by hits" `Quick
            test_static_comm_dominated_by_hits;
          Alcotest.test_case "cost counters" `Quick test_static_cost_counters;
          Alcotest.test_case "augmentation formula" `Quick
            test_static_augmentation_formula;
        ] );
    ]
