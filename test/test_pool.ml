(* Tests for the deterministic work pool and the incremental (journal)
   simulator accounting.

   The pool's contract is that parallel execution is observationally
   identical to sequential execution: same results, same order, same
   surfaced exception, same experiment tables byte for byte.  The journal's
   contract is that O(moves+1) incremental accounting bills exactly what
   the O(n+ell) diff/scan oracle bills, on every algorithm and any trace. *)

module Rng = Rbgp_util.Rng
module Pool = Rbgp_util.Pool
module Simulator = Rbgp_ring.Simulator
module Trace = Rbgp_ring.Trace
module Cost = Rbgp_ring.Cost
module Runner = Rbgp_harness.Runner
module Report = Rbgp_harness.Report

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Pool ----------------------------------------------------------- *)

let test_map_matches_sequential () =
  let items = Array.init 257 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f items in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d)
        expected
        (Pool.map ~domains:d f items))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~domains:4 succ [||]);
  Alcotest.(check (array int)) "single" [| 3 |] (Pool.map ~domains:4 succ [| 2 |])

let test_map_list_order () =
  let l = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun x -> 3 * x) l)
    (Pool.map_list ~domains:4 (fun x -> 3 * x) l)

exception Boom of int

let test_map_first_error () =
  (* several items raise; the pool must surface the smallest index, like a
     sequential loop would *)
  let items = Array.init 64 (fun i -> i) in
  let f x = if x mod 10 = 3 then raise (Boom x) else x in
  List.iter
    (fun d ->
      Alcotest.check_raises
        (Printf.sprintf "first error, domains=%d" d)
        (Boom 3)
        (fun () -> ignore (Pool.map ~domains:d f items)))
    [ 1; 4 ]

let test_map_seeded_deterministic () =
  let run d =
    Pool.map_seeded ~domains:d ~rng:(Rng.create 99)
      (fun rng x -> (x, Rng.int rng 1_000_000, Rng.int rng 1_000_000))
      (Array.init 50 (fun i -> i))
  in
  let seq =
    let rng = Rng.create 99 in
    Array.map
      (fun x ->
        let child = Rng.split rng in
        (x, Rng.int child 1_000_000, Rng.int child 1_000_000))
      (Array.init 50 (fun i -> i))
  in
  Alcotest.(check bool) "matches sequential" true (run 1 = seq);
  Alcotest.(check bool) "matches with 4 domains" true (run 4 = seq)

let test_set_domains () =
  Pool.set_domains (Some 3);
  Alcotest.(check int) "override" 3 (Pool.domains ());
  Pool.set_domains None;
  Alcotest.(check bool) "auto >= 1" true (Pool.domains () >= 1);
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Pool.set_domains: need at least 1 domain") (fun () ->
      Pool.set_domains (Some 0))

let test_set_grain () =
  Pool.set_grain (Some 7);
  Alcotest.(check (option int)) "override" (Some 7) (Pool.grain ());
  Pool.set_grain None;
  Alcotest.(check (option int)) "auto" None (Pool.grain ());
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Pool.set_grain: need a grain of at least 1") (fun () ->
      Pool.set_grain (Some 0))

let test_map_under_grain () =
  (* correctness must not depend on the scheduling grain: chunk-of-1
     maximizes hand-offs, a huge grain collapses to one chunk per worker *)
  let items = Array.init 311 (fun i -> i) in
  let f x = (x * 7) - 2 in
  let expected = Array.map f items in
  Fun.protect
    (fun () ->
      List.iter
        (fun g ->
          Pool.set_grain (Some g);
          Alcotest.(check (array int))
            (Printf.sprintf "grain=%d" g)
            expected
            (Pool.map ~domains:4 f items))
        [ 1; 3; 1000 ])
    ~finally:(fun () -> Pool.set_grain None)

let test_auto_grain_estimates () =
  Pool.reset_estimates ();
  Alcotest.(check bool)
    "no estimate before any tagged map" true
    (Pool.estimated_cost_ns "test.family" = None);
  let items = Array.init 300 (fun i -> i) in
  let expected = Array.map succ items in
  (* first tagged map: no estimate yet, optimistic parallel dispatch *)
  Alcotest.(check (array int))
    "first tagged map" expected
    (Pool.map ~domains:4 ~family:"test.family" succ items);
  (match Pool.estimated_cost_ns "test.family" with
  | Some c -> Alcotest.(check bool) "estimate recorded" true (c >= 0.0)
  | None -> Alcotest.fail "tagged map left no cost estimate");
  (* with an estimate this cheap, est * n is far under the cutoff: the
     job must now take the sequential path — with identical results *)
  Alcotest.(check (array int))
    "tiny tagged job identical" expected
    (Pool.map ~domains:4 ~family:"test.family" succ items);
  Alcotest.(check bool)
    "tiny tagged job stayed sequential" false
    (Pool.last_map_parallel ());
  Pool.reset_estimates ();
  Alcotest.(check bool)
    "reset drops estimates" true
    (Pool.estimated_cost_ns "test.family" = None)

let test_auto_grain_forced_grain_wins () =
  (* an explicit grain disables the cost heuristic: the job goes parallel
     with the forced chunk size even though its estimate says "tiny" *)
  Pool.reset_estimates ();
  let items = Array.init 128 (fun i -> i) in
  ignore (Pool.map ~domains:4 ~family:"test.grain" succ items);
  ignore (Pool.map ~domains:4 ~family:"test.grain" succ items);
  Alcotest.(check bool)
    "heuristic keeps it sequential" false
    (Pool.last_map_parallel ());
  Fun.protect
    ~finally:(fun () -> Pool.set_grain None)
    (fun () ->
      Pool.set_grain (Some 8);
      Alcotest.(check (array int))
        "forced grain, same results"
        (Array.map succ items)
        (Pool.map ~domains:4 ~family:"test.grain" succ items);
      Alcotest.(check bool)
        "forced grain dispatches in parallel" true
        (Pool.last_map_parallel ()));
  Pool.reset_estimates ()

let test_sequential_cutoff_override () =
  Alcotest.(check bool)
    "default cutoff" true
    (Pool.sequential_cutoff_ns () = 200_000.0);
  Pool.reset_estimates ();
  let items = Array.init 64 (fun i -> i) in
  ignore (Pool.map ~domains:4 ~family:"test.cutoff" succ items);
  Fun.protect
    ~finally:(fun () -> Pool.set_sequential_cutoff None)
    (fun () ->
      (* a near-zero cutoff means nothing is "small": even this tiny job
         dispatches in parallel *)
      Pool.set_sequential_cutoff (Some 1e-6);
      Alcotest.(check (array int))
        "tiny cutoff, same results"
        (Array.map succ items)
        (Pool.map ~domains:4 ~family:"test.cutoff" succ items);
      Alcotest.(check bool)
        "tiny cutoff dispatches in parallel" true
        (Pool.last_map_parallel ()));
  Alcotest.check_raises "non-positive cutoff rejected"
    (Invalid_argument "Pool.set_sequential_cutoff: need a positive cutoff")
    (fun () -> Pool.set_sequential_cutoff (Some 0.0));
  Pool.reset_estimates ()

let test_warmup_shutdown_idempotent () =
  (* warmup twice, shutdown twice, then map must still work (workers are
     respawned on demand after a shutdown) *)
  Pool.warmup ~domains:4 ();
  Pool.warmup ~domains:4 ();
  Pool.shutdown ();
  Pool.shutdown ();
  let items = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int))
    "map after shutdown"
    (Array.map succ items)
    (Pool.map ~domains:4 succ items);
  Pool.shutdown ()

let test_nested_map_falls_back () =
  (* a map issued from inside a pool task cannot use the single job slot;
     it must fall back to sequential execution rather than deadlock *)
  let outer = Array.init 8 (fun i -> i) in
  let f x =
    Array.fold_left ( + ) 0 (Pool.map ~domains:4 (fun y -> x + y) (Array.init 16 (fun i -> i)))
  in
  let expected = Array.map f outer in
  Alcotest.(check (array int))
    "nested map"
    expected
    (Pool.map ~domains:4 f outer)

(* --- experiment tables: parallel == sequential byte for byte --------- *)

let with_stdout_captured f =
  flush stdout;
  let path = Filename.temp_file "rbgp_pool_test" ".txt" in
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved);
  let ic = open_in_bin path in
  let s =
    Fun.protect
      (fun () -> really_input_string ic (in_channel_length ic))
      ~finally:(fun () -> close_in ic)
  in
  Sys.remove path;
  s

let table_of id domains =
  Pool.set_domains (Some domains);
  Fun.protect
    (fun () ->
      with_stdout_captured (fun () -> Report.run ~quick:true ~seed:42 id))
    ~finally:(fun () -> Pool.set_domains None)

let test_experiment_determinism id () =
  let seq = table_of id 1 in
  let par = table_of id 4 in
  Alcotest.(check bool)
    (id ^ " quick table nonempty")
    true
    (String.length seq > 0);
  Alcotest.(check string) (id ^ " parallel == sequential") seq par

(* --- journal accounting vs the diff/scan oracle ---------------------- *)

let all_specs = Runner.core_algorithms ~epsilon:0.5 @ Runner.baseline_algorithms ~epsilon:0.5

let gen_case =
  QCheck2.Gen.(
    let* ell = oneofl [ 2; 3; 4 ] in
    let* blocks = int_range 2 6 in
    let n = ell * blocks in
    let* steps = int_range 1 120 in
    let* seed = int_range 0 10_000 in
    let* trace = array_size (return steps) (int_range 0 (n - 1)) in
    return (n, ell, seed, trace))

let run_with accounting (spec : Runner.alg_spec) (n, ell, seed, trace) =
  let inst = Runner.instance ~n ~ell in
  let alg = spec.Runner.build inst ~trace ~seed in
  Simulator.run ~strict:false ~accounting inst alg (Trace.fixed trace)
    ~steps:(Array.length trace)

(* `Check runs the incremental path and verifies every step against the
   diff_into/scan oracle internally, raising Failure on any divergence *)
let prop_check_mode case =
  List.for_all
    (fun (spec : Runner.alg_spec) ->
      let r = run_with `Check spec case in
      r.Simulator.steps = Array.length (let _, _, _, t = case in t))
    all_specs

(* identically-seeded algorithms must produce identical result records
   under forced-incremental and forced-diff accounting *)
let prop_diff_vs_incremental case =
  List.for_all
    (fun (spec : Runner.alg_spec) ->
      let a = run_with `Incremental spec case in
      let b = run_with `Diff spec case in
      a.Simulator.cost = b.Simulator.cost
      && a.Simulator.max_load = b.Simulator.max_load
      && a.Simulator.capacity_violations = b.Simulator.capacity_violations)
    all_specs

let prop_mts_variants_check case =
  List.for_all
    (fun (spec : Runner.alg_spec) ->
      let r = run_with `Check spec case in
      Cost.total r.Simulator.cost >= 0)
    (Runner.mts_variants ~epsilon:0.5)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "empty and single" `Quick test_map_empty_and_single;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "first error wins" `Quick test_map_first_error;
          Alcotest.test_case "map_seeded deterministic" `Quick
            test_map_seeded_deterministic;
          Alcotest.test_case "set_domains" `Quick test_set_domains;
          Alcotest.test_case "set_grain" `Quick test_set_grain;
          Alcotest.test_case "auto-grain cost estimates" `Quick
            test_auto_grain_estimates;
          Alcotest.test_case "auto-grain vs forced grain" `Quick
            test_auto_grain_forced_grain_wins;
          Alcotest.test_case "sequential cutoff override" `Quick
            test_sequential_cutoff_override;
          Alcotest.test_case "map under grain overrides" `Quick
            test_map_under_grain;
          Alcotest.test_case "warmup/shutdown idempotent" `Quick
            test_warmup_shutdown_idempotent;
          Alcotest.test_case "nested map falls back" `Quick
            test_nested_map_falls_back;
        ] );
      ( "experiment determinism",
        [
          Alcotest.test_case "e8 quick" `Quick (test_experiment_determinism "e8");
          Alcotest.test_case "e9 quick" `Quick (test_experiment_determinism "e9");
          Alcotest.test_case "e10 quick" `Quick
            (test_experiment_determinism "e10");
        ] );
      ( "journal accounting",
        [
          qtest ~count:40 "incremental matches oracle (core + baselines)"
            gen_case prop_check_mode;
          qtest ~count:40 "diff == incremental results"
            gen_case prop_diff_vs_incremental;
          qtest ~count:20 "mts variants under check mode"
            gen_case prop_mts_variants_check;
        ] );
    ]
