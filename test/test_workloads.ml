(* Tests for the workload generators: edge ranges, the documented
   structural properties of each regime (determinism of allreduce, skew of
   zipf, drift of rotating, phase changes of piecewise), and the adaptive
   cut-chaser actually chasing cuts. *)

module W = Rbgp_workloads.Workloads
module Trace = Rbgp_ring.Trace
module Instance = Rbgp_ring.Instance
module Assignment = Rbgp_ring.Assignment
module Rng = Rbgp_util.Rng

let arr = function Trace.Fixed a -> a | Trace.Adaptive _ -> assert false

let in_range ~n a = Array.for_all (fun e -> e >= 0 && e < n) a

let counts ~n a =
  let c = Array.make n 0 in
  Array.iter (fun e -> c.(e) <- c.(e) + 1) a;
  c

let test_ranges () =
  let n = 64 and steps = 2_000 in
  let rng = Rng.create 1 in
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool) (name ^ " in range") true (in_range ~n (arr t));
      Alcotest.(check int)
        (name ^ " length")
        steps
        (Array.length (arr t)))
    (W.all_fixed ~n ~steps rng)

let test_allreduce_deterministic () =
  let t = arr (W.allreduce ~n:8 ~steps:20) in
  Alcotest.(check (array int)) "cyclic sweep"
    (Array.init 20 (fun i -> i mod 8))
    t

let test_hotspot_concentrated () =
  let n = 64 in
  let t = arr (W.hotspot ~n ~steps:10_000 ~arc:4 ~heat:0.9 (Rng.create 2)) in
  let c = counts ~n t in
  (* some window of 4 consecutive edges holds ~90% of the mass *)
  let best = ref 0 in
  for s = 0 to n - 1 do
    let sum = ref 0 in
    for j = 0 to 3 do
      sum := !sum + c.((s + j) mod n)
    done;
    if !sum > !best then best := !sum
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hot window holds %d/10000" !best)
    true (!best > 8_000)

let test_rotating_covers () =
  let n = 32 in
  let t = arr (W.rotating ~n ~steps:8_000 ~arc:2 ~heat:1.0 ~period:4 (Rng.create 3)) in
  let c = counts ~n t in
  (* a full revolution touches every edge *)
  Alcotest.(check bool) "every edge requested" true (Array.for_all (fun v -> v > 0) c)

let test_zipf_skewed () =
  let n = 64 in
  let t = arr (W.zipf ~n ~steps:20_000 ~exponent:1.2 (Rng.create 4)) in
  let c = counts ~n t in
  Array.sort compare c;
  let top = c.(n - 1) and median = c.(n / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "top %d vs median %d" top median)
    true
    (top > 4 * (median + 1))

let test_piecewise_phases () =
  let n = 64 in
  let t = arr (W.piecewise_static ~n ~steps:4_000 ~period:1_000 ~hot_edges:2 (Rng.create 5)) in
  (* within one phase at most 2 distinct edges are requested *)
  let distinct lo hi =
    let seen = Hashtbl.create 8 in
    for i = lo to hi do
      Hashtbl.replace seen t.(i) ()
    done;
    Hashtbl.length seen
  in
  Alcotest.(check bool) "phase 1 narrow" true (distinct 0 999 <= 2);
  Alcotest.(check bool) "phase 2 narrow" true (distinct 1_000 1_999 <= 2)

let test_partitionable_respects_partition () =
  let n = 64 and ell = 4 in
  let k = n / ell in
  let offset = 7 in
  let t =
    arr (W.partitionable ~n ~ell ~steps:5_000 ~offset (Rng.create 6))
  in
  (* the hidden cut edges offset - 1 + b*k are never requested *)
  Array.iter
    (fun e ->
      let rel = ((e - offset) mod n + n) mod n in
      Alcotest.(check bool)
        (Printf.sprintf "edge %d inside a hidden block" e)
        true
        (rel mod k <> k - 1))
    t;
  Alcotest.(check bool) "in range" true (in_range ~n t)

let test_partitionable_validation () =
  Alcotest.check_raises "ell must divide n"
    (Invalid_argument "Workloads.partitionable: ell must divide n") (fun () ->
      ignore (W.partitionable ~n:10 ~ell:3 ~steps:10 (Rng.create 0)))

let test_cut_chaser_chases () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let a = Assignment.create inst in
  let t = W.adversary_cut_chaser ~n:32 in
  for step = 0 to 50 do
    let e = Trace.next t step a in
    Alcotest.(check bool)
      (Printf.sprintf "step %d requests a cut edge" step)
      true
      (Assignment.cuts_edge a e)
  done

let test_cut_chaser_no_cuts () =
  (* with everything on one server there is no cut; the chaser must still
     return a valid edge *)
  let inst = Instance.make ~n:8 ~ell:2 ~k:8 () in
  let a = Assignment.create inst in
  let t = W.adversary_cut_chaser ~n:8 in
  let e = Trace.next t 0 a in
  Alcotest.(check bool) "valid edge" true (e >= 0 && e < 8)

let test_validation () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Workloads: n must be > 1") (fun () ->
      ignore (W.uniform ~n:1 ~steps:10 (Rng.create 0)));
  Alcotest.check_raises "bad zipf"
    (Invalid_argument "Workloads.zipf: exponent must be positive") (fun () ->
      ignore (W.zipf ~n:8 ~steps:10 ~exponent:0.0 (Rng.create 0)))

let test_seeded_reproducibility () =
  let a = arr (W.uniform ~n:32 ~steps:500 (Rng.create 42)) in
  let b = arr (W.uniform ~n:32 ~steps:500 (Rng.create 42)) in
  Alcotest.(check (array int)) "same seed, same trace" a b

let test_trace_io_roundtrip () =
  let path = Filename.temp_file "rbgp_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = arr (W.uniform ~n:32 ~steps:500 (Rng.create 9)) in
      Rbgp_workloads.Trace_io.save ~path ~comment:"roundtrip test" t;
      let t' = Rbgp_workloads.Trace_io.load ~path ~n:32 in
      Alcotest.(check (array int)) "roundtrip" t t')

let test_trace_io_validation () =
  let path = Filename.temp_file "rbgp_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\n3\n99\n";
      close_out oc;
      Alcotest.(check bool) "out-of-range rejected" true
        (try
           ignore (Rbgp_workloads.Trace_io.load ~path ~n:32);
           false
         with Invalid_argument _ -> true);
      let oc = open_out path in
      output_string oc "3\nnot-a-number\n";
      close_out oc;
      Alcotest.(check bool) "garbage rejected" true
        (try
           ignore (Rbgp_workloads.Trace_io.load ~path ~n:32);
           false
         with Invalid_argument _ -> true))

let () =
  Alcotest.run "rbgp_workloads"
    [
      ( "generators",
        [
          Alcotest.test_case "ranges and lengths" `Quick test_ranges;
          Alcotest.test_case "allreduce deterministic" `Quick
            test_allreduce_deterministic;
          Alcotest.test_case "hotspot concentrated" `Quick test_hotspot_concentrated;
          Alcotest.test_case "rotating covers ring" `Quick test_rotating_covers;
          Alcotest.test_case "zipf skewed" `Quick test_zipf_skewed;
          Alcotest.test_case "piecewise phases" `Quick test_piecewise_phases;
          Alcotest.test_case "seeded reproducibility" `Quick
            test_seeded_reproducibility;
          Alcotest.test_case "partitionable respects hidden partition" `Quick
            test_partitionable_respects_partition;
          Alcotest.test_case "partitionable validation" `Quick
            test_partitionable_validation;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "chases cuts" `Quick test_cut_chaser_chases;
          Alcotest.test_case "no cuts fallback" `Quick test_cut_chaser_no_cuts;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "validation" `Quick test_trace_io_validation;
        ] );
    ]
