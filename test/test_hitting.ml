(* Tests for the hitting game (Section 4.1): the game drivers, the growth
   schedule, the interval-growing algorithm's invariants and competitive
   behaviour, the exact comparators, and the adversaries. *)

module Game = Rbgp_hitting.Game
module Ig = Rbgp_hitting.Interval_growing
module Sopt = Rbgp_hitting.Static_opt
module Adv = Rbgp_hitting.Adversary
module Rng = Rbgp_util.Rng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- start edge / growth rule ------------------------------------------ *)

let test_start_edge () =
  Alcotest.(check int) "k=1" 0 (Game.start_edge ~k:1);
  Alcotest.(check int) "k=2" 0 (Game.start_edge ~k:2);
  Alcotest.(check int) "k=8" 3 (Game.start_edge ~k:8);
  Alcotest.(check int) "k=9" 4 (Game.start_edge ~k:9)

let test_grow_rule =
  qtest ~count:500 "grow rule: doubles, stays in bounds, keeps the core"
    QCheck2.Gen.(
      int_range 1 100 >>= fun k ->
      int_range 0 k >>= fun vl ->
      int_range vl k >|= fun vr -> (k, vl, vr))
    (fun (k, vl, vr) ->
      let vl', vr' = Ig.grow_rule ~k ~vl ~vr in
      let w = vr - vl + 1 and w' = vr' - vl' + 1 in
      w' = min (2 * w) (k + 1)
      && vl' >= 0 && vr' <= k
      && vl' <= vl && vr' >= vr)

(* --- interval growing --------------------------------------------------- *)

let test_ig_position_inside =
  qtest ~count:50 "position stays within the current interval"
    QCheck2.Gen.(
      int_range 2 64 >>= fun k ->
      list_size (int_range 1 300) (int_range 0 (k - 1)) >|= fun es ->
      (k, Array.of_list es))
    (fun (k, es) ->
      let ig = Ig.create ~k (Rng.create 3) in
      Array.for_all
        (fun e ->
          Ig.serve ig e;
          let vl, vr = Ig.interval ig in
          let p = Ig.position ig in
          p >= vl && p < vr)
        es)

let test_ig_phase_bound =
  qtest ~count:50 "phases bounded by log2(k+1) + 1"
    QCheck2.Gen.(
      int_range 2 64 >>= fun k ->
      list_size (int_range 1 500) (int_range 0 (k - 1)) >|= fun es ->
      (k, Array.of_list es))
    (fun (k, es) ->
      let ig = Ig.create ~k (Rng.create 7) in
      Array.iter (Ig.serve ig) es;
      float_of_int (Ig.phases ig)
      <= (log (float_of_int (k + 1)) /. log 2.0) +. 1.0)

let test_ig_counts () =
  let ig = Ig.create ~k:8 (Rng.create 1) in
  Ig.serve ig 2;
  Ig.serve ig 2;
  Ig.serve ig 5;
  Alcotest.(check int) "count edge 2" 2 (Ig.request_count ig 2);
  Alcotest.(check int) "count edge 5" 1 (Ig.request_count ig 5);
  Alcotest.(check int) "count edge 0" 0 (Ig.request_count ig 0)

let test_ig_hammer_cheap () =
  (* requests at the start edge: after the first growth the player escapes
     and pays a constant independent of the horizon *)
  let k = 128 in
  let ig = Ig.create ~k (Rng.create 5) in
  let start = Game.start_edge ~k in
  for _ = 1 to 10_000 do
    Ig.serve ig start
  done;
  let cost = Ig.hit_cost ig +. Ig.move_cost ig in
  Alcotest.(check bool)
    (Printf.sprintf "hammer cost %.0f small" cost)
    true (cost <= 20.0)

let test_ig_competitive_uniform () =
  (* uniform requests: the measured ratio stays within a generous polylog
     envelope (Corollary 4.4 says O(log k) in expectation) *)
  let k = 64 in
  let steps = 20_000 in
  let rng = Rng.create 11 in
  let requests = Adv.uniform ~k ~steps (Rng.split rng) in
  let ratios =
    List.map
      (fun seed ->
        let ig = Ig.create ~k (Rng.create seed) in
        Game.run (Ig.player ig) requests;
        let opt = Sopt.static ~k requests in
        (Ig.hit_cost ig +. Ig.move_cost ig) /. opt)
      [ 1; 2; 3 ]
  in
  let mean = List.fold_left ( +. ) 0.0 ratios /. 3.0 in
  let envelope = 3.0 *. (log (float_of_int k) /. log 2.0) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f within 3 log2 k = %.1f" mean envelope)
    true (mean <= envelope)

let test_ig_lemma_4_3_bound () =
  (* Lemma 4.3: for the current interval I,
     E[hit] <= 2 min(I) + O(ln|I|)|I| and E[move] <= 4 min(I) + O(ln|I|)|I|.
     Check with a generous constant, averaged over seeds. *)
  let k = 64 in
  let steps = 20_000 in
  let requests = Adv.uniform ~k ~steps (Rng.create 31) in
  List.iter
    (fun seed ->
      let ig = Ig.create ~k (Rng.create seed) in
      Game.run (Ig.player ig) requests;
      let vl, vr = Ig.interval ig in
      let width = float_of_int (vr - vl + 1) in
      let min_i = ref max_int in
      for e = vl to vr - 1 do
        min_i := min !min_i (Ig.request_count ig e)
      done;
      let slack = 8.0 *. log width *. width in
      Alcotest.(check bool)
        (Printf.sprintf "hit %.0f within Lemma 4.3a" (Ig.hit_cost ig))
        true
        (Ig.hit_cost ig <= (2.0 *. float_of_int !min_i) +. slack);
      Alcotest.(check bool)
        (Printf.sprintf "move %.0f within Lemma 4.3b" (Ig.move_cost ig))
        true
        (Ig.move_cost ig <= (4.0 *. float_of_int !min_i) +. slack))
    [ 1; 2; 3 ]

let test_ig_player_consistency () =
  let k = 16 in
  let ig = Ig.create ~k (Rng.create 9) in
  let p = Ig.player ig in
  p.Game.serve 7;
  p.Game.serve 7;
  Alcotest.(check (float 1e-9)) "hit via player" (Ig.hit_cost ig) (p.Game.hit_cost ());
  Alcotest.(check (float 1e-9)) "move via player" (Ig.move_cost ig) (p.Game.move_cost ());
  Alcotest.(check int) "position via player" (Ig.position ig) (p.Game.position ())

let test_ig_validation () =
  Alcotest.check_raises "bad delta"
    (Invalid_argument "Interval_growing.create: delta_bar out of (1/2, 1)")
    (fun () -> ignore (Ig.create ~k:8 ~delta_bar:0.3 (Rng.create 0)));
  Alcotest.check_raises "bad edge"
    (Invalid_argument "Interval_growing.serve: edge out of range") (fun () ->
      Ig.serve (Ig.create ~k:8 (Rng.create 0)) 8)

(* --- static / dynamic comparators --------------------------------------- *)

let requests_gen =
  QCheck2.Gen.(
    int_range 2 32 >>= fun k ->
    list_size (int_range 0 60) (int_range 0 (k - 1)) >|= fun es ->
    (k, Array.of_list es))

let test_static_formula =
  qtest ~count:300 "static OPT = min over positions of dist + hits"
    requests_gen (fun (k, es) ->
      let start = Game.start_edge ~k in
      let hits = Array.make k 0 in
      Array.iter (fun e -> hits.(e) <- hits.(e) + 1) es;
      let expected = ref infinity in
      for p = 0 to k - 1 do
        let v = float_of_int (abs (p - start) + hits.(p)) in
        if v < !expected then expected := v
      done;
      Float.abs (Sopt.static ~k es -. !expected) < 1e-9)

let test_static_position =
  qtest ~count:300 "static position realizes the optimum" requests_gen
    (fun (k, es) ->
      let start = Game.start_edge ~k in
      let p = Sopt.static_position ~k es in
      let hits = Array.make k 0 in
      Array.iter (fun e -> hits.(e) <- hits.(e) + 1) es;
      Float.abs
        (float_of_int (abs (p - start) + hits.(p)) -. Sopt.static ~k es)
      < 1e-9)

let test_dynamic_le_static =
  qtest ~count:300 "dynamic OPT <= static OPT" requests_gen (fun (k, es) ->
      Sopt.dynamic ~k es <= Sopt.static ~k es +. 1e-9)

(* --- players and adversaries -------------------------------------------- *)

let test_greedy_dodge_chase () =
  let k = 32 in
  let steps = 4 * k * k in
  let dodger = Game.greedy_dodge ~k () in
  let trace =
    Game.run_adaptive dodger ~steps ~next:(fun _ pos -> Adv.chase 0 pos)
  in
  (* chased, the sweeper pays every step... *)
  Alcotest.(check (float 1e-9)) "pays every step" (float_of_int steps)
    (Game.total_cost dodger);
  (* ...and spreads the requests so static OPT is ~steps/k + O(k) *)
  let opt = Sopt.static ~k trace in
  Alcotest.(check bool)
    (Printf.sprintf "opt %.0f near T/k + k" opt)
    true
    (opt >= float_of_int (steps / k) /. 2.0
    && opt <= float_of_int ((steps / k) + (2 * k)))

let test_of_mts_player () =
  let k = 8 in
  let m = Rbgp_mts.Metric.Line k in
  let solver = Rbgp_mts.Work_function.solver m ~start:3 ~rng:(Rng.create 0) in
  let p = Game.of_mts solver in
  Alcotest.(check int) "initial position" 3 (p.Game.position ());
  p.Game.serve 3;
  p.Game.serve 3;
  Alcotest.(check bool) "costs accumulate" true (Game.total_cost p > 0.0)

let test_adversaries_ranges () =
  let k = 16 in
  let u = Adv.uniform ~k ~steps:500 (Rng.create 2) in
  Alcotest.(check bool) "uniform in range" true
    (Array.for_all (fun e -> e >= 0 && e < k) u);
  let h = Adv.hammer ~k ~edge:5 ~steps:100 in
  Alcotest.(check bool) "hammer constant" true (Array.for_all (( = ) 5) h);
  let b = Adv.bait_and_switch ~k ~steps:100 in
  Alcotest.(check bool) "bait in range" true
    (Array.for_all (fun e -> e >= 0 && e < k) b);
  Alcotest.(check bool) "bait switches" true (b.(0) <> b.(99))

let () =
  Alcotest.run "rbgp_hitting"
    [
      ( "schedule",
        [
          Alcotest.test_case "start edge" `Quick test_start_edge;
          test_grow_rule;
        ] );
      ( "interval-growing",
        [
          test_ig_position_inside;
          test_ig_phase_bound;
          Alcotest.test_case "request counts" `Quick test_ig_counts;
          Alcotest.test_case "hammer is cheap" `Quick test_ig_hammer_cheap;
          Alcotest.test_case "uniform competitive" `Quick test_ig_competitive_uniform;
          Alcotest.test_case "Lemma 4.3 phase bounds" `Quick test_ig_lemma_4_3_bound;
          Alcotest.test_case "player view consistent" `Quick test_ig_player_consistency;
          Alcotest.test_case "validation" `Quick test_ig_validation;
        ] );
      ( "comparators",
        [ test_static_formula; test_static_position; test_dynamic_le_static ] );
      ( "players",
        [
          Alcotest.test_case "greedy-dodge chase" `Quick test_greedy_dodge_chase;
          Alcotest.test_case "of_mts adapter" `Quick test_of_mts_player;
          Alcotest.test_case "adversary ranges" `Quick test_adversaries_ranges;
        ] );
    ]
