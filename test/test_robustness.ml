(* Robustness and failure injection: non-canonical initial layouts,
   extreme instance shapes, and misbehaving inputs.

   The rest of the suite runs on the canonical blocks layout; the paper's
   algorithms must work from ANY balanced initial assignment (the slicing
   procedure seeds one interval per initial cut edge, of which a scattered
   layout has up to n).  These tests run both core algorithms from random
   balanced layouts and from adversarially fragmented ones, check capacity
   and structural invariants throughout, and verify the documented error
   behaviour for malformed inputs. *)

module Instance = Rbgp_ring.Instance
module Cost = Rbgp_ring.Cost
module Trace = Rbgp_ring.Trace
module Simulator = Rbgp_ring.Simulator
module Rng = Rbgp_util.Rng

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* a random balanced assignment: shuffle the blocks layout *)
let random_layout ~n ~ell rng =
  let a = Array.init n (fun i -> i * ell / n) in
  Rng.shuffle rng a;
  a

(* maximally fragmented: processes dealt round-robin, every edge a cut *)
let fragmented_layout ~n ~ell = Array.init n (fun i -> i mod ell)

let layout_gen =
  QCheck2.Gen.(
    oneofl [ (24, 3); (32, 4); (48, 4) ] >>= fun (n, ell) ->
    int_range 0 10_000 >>= fun seed ->
    bool >|= fun fragmented ->
    let initial =
      if fragmented then fragmented_layout ~n ~ell
      else random_layout ~n ~ell (Rng.create seed)
    in
    (n, ell, seed, initial))

let run_core_on_layout (n, ell, seed, initial) =
  let inst = Instance.make ~n ~ell ~k:(n / ell) ~initial () in
  let rng = Rng.create (seed + 1) in
  let steps = 1_500 in
  let trace =
    Rbgp_workloads.Workloads.uniform ~n ~steps (Rng.split rng)
  in
  let dyn =
    Rbgp_core.Dynamic_alg.online
      (Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst (Rng.split rng))
  in
  let r1 = Simulator.run inst dyn trace ~steps in
  let st = Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
  let r2 = Simulator.run inst (Rbgp_core.Static_alg.online st) trace ~steps in
  let consistent =
    match
      Rbgp_core.Clustering.check_consistency (Rbgp_core.Static_alg.clustering st)
    with
    | Ok () -> true
    | Error _ -> false
  in
  r1.Simulator.capacity_violations = 0
  && r2.Simulator.capacity_violations = 0
  && consistent

let test_random_layouts =
  qtest "core algorithms run clean from arbitrary balanced layouts"
    layout_gen run_core_on_layout

let test_minimal_instances () =
  (* the smallest rings the model admits: n = k + 1 and n = 2k *)
  List.iter
    (fun (n, ell) ->
      let inst = Instance.blocks ~n ~ell in
      let rng = Rng.create 3 in
      let steps = 500 in
      let trace = Rbgp_workloads.Workloads.uniform ~n ~steps (Rng.split rng) in
      let dyn =
        Rbgp_core.Dynamic_alg.online
          (Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst (Rng.split rng))
      in
      let r = Simulator.run inst dyn trace ~steps in
      Alcotest.(check int)
        (Printf.sprintf "n=%d dynamic clean" n)
        0 r.Simulator.capacity_violations;
      let st = Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
      let r2 = Simulator.run inst (Rbgp_core.Static_alg.online st) trace ~steps in
      Alcotest.(check int)
        (Printf.sprintf "n=%d static clean" n)
        0 r2.Simulator.capacity_violations)
    [ (4, 2); (6, 2); (6, 3); (9, 3) ]

let test_underfull_instances () =
  (* n < ell * k: spare capacity everywhere *)
  let inst = Instance.make ~n:20 ~ell:4 ~k:8 () in
  let rng = Rng.create 5 in
  let steps = 1_000 in
  let trace = Rbgp_workloads.Workloads.uniform ~n:20 ~steps (Rng.split rng) in
  let dyn =
    Rbgp_core.Dynamic_alg.online
      (Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst (Rng.split rng))
  in
  let r = Simulator.run inst dyn trace ~steps in
  Alcotest.(check int) "dynamic clean" 0 r.Simulator.capacity_violations;
  let st = Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
  let r2 = Simulator.run inst (Rbgp_core.Static_alg.online st) trace ~steps in
  Alcotest.(check int) "static clean" 0 r2.Simulator.capacity_violations

let test_single_server_rejected () =
  (* n <= k: the static algorithm needs at least one initial cut *)
  let inst = Instance.make ~n:8 ~ell:2 ~k:8 () in
  Alcotest.(check bool) "slicing refuses n <= k" true
    (try
       ignore (Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rng.create 0));
       false
     with Invalid_argument _ -> true)

let test_malformed_trace_rejected () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let alg = Rbgp_baselines.Baselines.never_move inst in
  Alcotest.(check bool) "edge out of range rejected" true
    (try
       ignore (Simulator.run inst alg (Trace.fixed [| 0; 99 |]) ~steps:2);
       false
     with Invalid_argument _ -> true);
  let adaptive_bad = Trace.adaptive (fun _ _ -> -1) in
  Alcotest.(check bool) "adaptive out of range rejected" true
    (try
       ignore (Simulator.run inst alg adaptive_bad ~steps:1);
       false
     with Invalid_argument _ -> true)

let test_cheating_algorithm_caught () =
  (* an algorithm that silently overloads a server: the simulator must
     refuse to let it "win" *)
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let a = Rbgp_ring.Assignment.create inst in
  let cheater =
    Rbgp_ring.Online.make ~name:"cheater" ~augmentation:1.0
      ~assignment:(fun () -> a)
      ~serve:(fun _ ->
        for p = 0 to 7 do
          Rbgp_ring.Assignment.set a p 0
        done)
  in
  Alcotest.(check bool) "overload caught" true
    (try
       ignore (Simulator.run inst cheater (Trace.fixed [| 0 |]) ~steps:1);
       false
     with Failure _ -> true)

let test_determinism_across_layouts =
  qtest ~count:15 "same seed, same costs, regardless of layout source"
    layout_gen
    (fun (n, ell, seed, initial) ->
      let run () =
        let inst = Instance.make ~n ~ell ~k:(n / ell) ~initial () in
        let rng = Rng.create (seed + 7) in
        let steps = 500 in
        let trace = Rbgp_workloads.Workloads.zipf ~n ~steps (Rng.split rng) in
        let st = Rbgp_core.Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
        let r = Simulator.run inst (Rbgp_core.Static_alg.online st) trace ~steps in
        Cost.total r.Simulator.cost
      in
      run () = run ())

let () =
  Alcotest.run "rbgp_robustness"
    [
      ( "layouts",
        [
          test_random_layouts;
          Alcotest.test_case "minimal instances" `Quick test_minimal_instances;
          Alcotest.test_case "underfull instances" `Quick test_underfull_instances;
          Alcotest.test_case "single server rejected" `Quick
            test_single_server_rejected;
          test_determinism_across_layouts;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "malformed trace" `Quick test_malformed_trace_rejected;
          Alcotest.test_case "cheating algorithm" `Quick
            test_cheating_algorithm_caught;
        ] );
    ]
