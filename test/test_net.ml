(* The networked serving tier, end to end and in process.

   The dechunker suite is the satellite-2 contract: a multi-frame byte
   stream split at EVERY byte boundary — and at random boundaries under
   qcheck — reassembles frame for frame into the unsplit sequence.

   The isolation suite is the tentpole's acceptance criterion: two
   tenants interleaved over one socket connection produce decisions,
   final totals and checkpoint bytes identical to two engines run in
   isolation (the pipe-mode baseline), including after a supervised
   mid-connection engine kill followed by reconnect-and-resume.  Both
   ends of the socket run in this process: the client's [pump] callback
   single-steps the server whenever the client would block.

   The HTTP suite pins the observability contract: /metrics (Prometheus
   text exposition), /tenants (JSON) and the per-tenant metric
   snapshots all report the same numbers. *)

module Rng = Rbgp_util.Rng
module Instance = Rbgp_ring.Instance
module Trace = Rbgp_ring.Trace
module Workloads = Rbgp_workloads.Workloads
module Engine = Rbgp_serve.Engine
module Ckpt = Rbgp_serve.Checkpoint
module Fault = Rbgp_serve.Fault
module Metrics = Rbgp_serve.Metrics
module Proto = Rbgp_serve.Proto
module Tenant = Rbgp_serve.Tenant
module Http = Rbgp_serve.Http
module Net = Rbgp_serve.Net

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fixed = function Trace.Fixed a -> a | Trace.Adaptive _ -> assert false

let gen_trace ~n ~steps ~seed =
  fixed (Workloads.rotating ~n ~steps (Rng.create seed))

(* Every decision field except the wall-clock latency. *)
let decision_key (d : Engine.decision) =
  Printf.sprintf "%d|%d|%d|%d|%d|%d|%d" d.Engine.step d.Engine.edge
    d.Engine.comm d.Engine.moved d.Engine.cum_comm d.Engine.cum_mig
    d.Engine.max_load

let with_tempdir f =
  let dir = Filename.temp_file "rbgp_net" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun entry ->
          try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- dechunker: split-anywhere reassembly ------------------------------ *)

let frame_key (f : Proto.frame) =
  Printf.sprintf "%d|%d|%S" f.Proto.stream
    (Proto.op_to_int f.Proto.op)
    f.Proto.payload

let encode_frames frames =
  let buf = Buffer.create 256 in
  List.iter
    (fun (stream, op, payload) -> Proto.add_frame buf ~stream op payload)
    frames;
  Buffer.contents buf

let drain_frames d =
  let rec go acc =
    match Proto.next d with Some f -> go (f :: acc) | None -> List.rev acc
  in
  go []

(* Feed [wire] in pieces cut at [cuts] (sorted positions), pulling
   complete frames after every piece exactly as the serve loop does. *)
let reassemble wire cuts =
  let d = Proto.dechunker () in
  let acc = ref [] in
  let prev = ref 0 in
  List.iter
    (fun cut ->
      Proto.feed_string d (String.sub wire !prev (cut - !prev));
      acc := !acc @ drain_frames d;
      prev := cut)
    (cuts @ [ String.length wire ]);
  if Proto.pending_bytes d <> 0 then
    Alcotest.failf "dechunker parked %d bytes of a complete stream"
      (Proto.pending_bytes d);
  !acc

let sample_frames =
  [
    (0, Proto.Hello, "RBGN\001");
    (1, Proto.Open_stream, "tenant-config-bytes");
    (1, Proto.Req, String.init 40 (fun i -> Char.chr (i * 3 mod 256)));
    (2, Proto.Req_quiet, "");
    (1, Proto.Decisions, String.make 120 '\xff');
    (0, Proto.Draining, "");
    (7, Proto.Closed, "totals");
  ]

let test_dechunker_every_boundary () =
  let wire = encode_frames sample_frames in
  let want = List.map frame_key (reassemble wire []) in
  Alcotest.(check int)
    "unsplit decode yields every frame" (List.length sample_frames)
    (List.length want);
  for cut = 0 to String.length wire do
    let got = List.map frame_key (reassemble wire [ cut ]) in
    if not (List.equal String.equal want got) then
      Alcotest.failf "split at byte %d changed the frame sequence" cut
  done

let test_dechunker_byte_at_a_time () =
  let wire = encode_frames sample_frames in
  let want = List.map frame_key (reassemble wire []) in
  let cuts = List.init (String.length wire) (fun i -> i + 1) in
  let got = List.map frame_key (reassemble wire cuts) in
  Alcotest.(check (list string)) "byte-at-a-time identical" want got

let gen_wire_and_cuts =
  QCheck2.Gen.(
    let frame =
      triple (int_range 0 1000)
        (map Proto.op_of_int (int_range 1 14))
        (string_size ~gen:char (int_range 0 300))
    in
    let* frames = list_size (int_range 1 12) frame in
    let wire = encode_frames frames in
    let* cuts =
      list_size (int_range 0 20) (int_range 0 (String.length wire))
    in
    return (frames, wire, List.sort_uniq Int.compare cuts))

let qcheck_dechunker_random_splits =
  qtest ~count:300 "qcheck: random splits reassemble frame-for-frame"
    gen_wire_and_cuts
    (fun (frames, wire, cuts) ->
      let got = List.map frame_key (reassemble wire cuts) in
      let want =
        List.map (fun (stream, op, payload) ->
            frame_key { Proto.stream; op; payload })
          frames
      in
      List.equal String.equal want got)

let test_dechunker_rejects_garbage () =
  (* A varint that never terminates within 10 bytes is unrepairable. *)
  let d = Proto.dechunker () in
  Alcotest.check_raises "varint overflow raises"
    (Proto.Protocol_error "varint over 63 bits") (fun () ->
      Proto.feed_string d (String.make 11 '\xff');
      ignore (Proto.next d))

(* --- in-process server + client ---------------------------------------- *)

let next_sock =
  let c = ref 0 in
  fun dir ->
    incr c;
    Filename.concat dir (Printf.sprintf "s%d.sock" !c)

let with_server ?(supervise = false) ?checkpoint_every ~dir f =
  let router =
    Tenant.create ~checkpoint_dir:dir
      ?checkpoint_every ~checkpoint_keep:3 ()
  in
  let addr = Net.Unix_sock (next_sock dir) in
  let server = Net.server ~supervise ~router addr in
  Fun.protect
    ~finally:(fun () -> Net.shutdown server)
    (fun () -> f router server addr)

let connect_pumped server addr =
  Net.connect ~pump:(fun () -> ignore (Net.step server)) addr

let open_cfg ~tenant ~alg ~seed ~n ~ell =
  { Proto.tenant; alg; n; ell; epsilon = 0.5; seed }

(* Reference: the same tenant served by a directly-driven engine. *)
let reference_run ~alg ~seed ~n ~ell trace =
  let engine =
    Engine.create ~epsilon:0.5 ~alg ~seed (Instance.blocks ~n ~ell)
  in
  let decisions = Engine.ingest_batch engine trace in
  (Array.to_list decisions, Engine.result engine, Engine.checkpoint engine)

let batches_of trace ~batch =
  let rec go pos acc =
    if pos >= Array.length trace then List.rev acc
    else
      let len = Stdlib.min batch (Array.length trace - pos) in
      go (pos + len) (Array.sub trace pos len :: acc)
  in
  go 0 []

let test_two_tenants_isolated () =
  let n = 128 and ell = 8 and steps = 600 in
  let trace_a = gen_trace ~n ~steps ~seed:11 in
  let trace_b = gen_trace ~n ~steps ~seed:12 in
  let ref_a = reference_run ~alg:"onl-dynamic" ~seed:1 ~n ~ell trace_a in
  let ref_b = reference_run ~alg:"greedy-colocate" ~seed:2 ~n ~ell trace_b in
  with_tempdir (fun dir ->
      with_server ~dir ~checkpoint_every:100 (fun router server addr ->
          let cl = connect_pumped server addr in
          let pos_a =
            Net.open_stream cl ~stream:1
              (open_cfg ~tenant:"a" ~alg:"onl-dynamic" ~seed:1 ~n ~ell)
          and pos_b =
            Net.open_stream cl ~stream:2
              (open_cfg ~tenant:"b" ~alg:"greedy-colocate" ~seed:2 ~n ~ell)
          in
          Alcotest.(check (pair int int)) "fresh tenants start at 0" (0, 0)
            (pos_a, pos_b);
          (* interleave: one batch per tenant per round, over one wire *)
          let got_a = ref [] and got_b = ref [] in
          List.iter2
            (fun ba bb ->
              let da = Net.request cl ~stream:1 ba ~pos:0 ~len:(Array.length ba)
              and db =
                Net.request cl ~stream:2 bb ~pos:0 ~len:(Array.length bb)
              in
              got_a := !got_a @ Array.to_list da;
              got_b := !got_b @ Array.to_list db)
            (batches_of trace_a ~batch:97)
            (batches_of trace_b ~batch:97);
          let check_tenant name tid (ref_ds, ref_result, ref_ckpt) got =
            Alcotest.(check (list string))
              (name ^ ": decisions identical to the isolated engine")
              (List.map decision_key ref_ds)
              (List.map decision_key got);
            (match Tenant.find router tid with
            | Some tn -> (
                match Tenant.engine tn with
                | Some engine ->
                    Alcotest.(check string)
                      (name ^ ": checkpoint bytes identical")
                      (Ckpt.to_string ref_ckpt)
                      (Ckpt.to_string (Engine.checkpoint engine))
                | None -> Alcotest.fail (name ^ ": engine released early"))
            | None -> Alcotest.fail (name ^ ": tenant missing"));
            let closed =
              Net.close_stream cl
                ~stream:(if String.equal tid "a" then 1 else 2)
            in
            let cost = ref_result.Rbgp_ring.Simulator.cost in
            Alcotest.(check (list int))
              (name ^ ": closed totals match the isolated result")
              [
                ref_result.Rbgp_ring.Simulator.steps;
                cost.Rbgp_ring.Cost.comm;
                cost.Rbgp_ring.Cost.mig;
                ref_result.Rbgp_ring.Simulator.max_load;
              ]
              [
                closed.Proto.closed_pos;
                closed.Proto.closed_comm;
                closed.Proto.closed_mig;
                closed.Proto.closed_max_load;
              ]
          in
          check_tenant "tenant a" "a" ref_a !got_a;
          check_tenant "tenant b" "b" ref_b !got_b;
          Net.close cl))

let test_quiet_path_identity () =
  let n = 128 and ell = 8 and steps = 500 in
  let trace = gen_trace ~n ~steps ~seed:21 in
  let _, ref_result, ref_ckpt =
    reference_run ~alg:"onl-dynamic" ~seed:5 ~n ~ell trace
  in
  with_tempdir (fun dir ->
      with_server ~dir (fun router server addr ->
          let cl = connect_pumped server addr in
          ignore
            (Net.open_stream cl ~stream:1
               (open_cfg ~tenant:"q" ~alg:"onl-dynamic" ~seed:5 ~n ~ell));
          let last = ref None in
          List.iter
            (fun b ->
              last :=
                Some (Net.request_quiet cl ~stream:1 b ~pos:0 ~len:(Array.length b)))
            (batches_of trace ~batch:128);
          (match !last with
          | Some ack ->
              let cost = ref_result.Rbgp_ring.Simulator.cost in
              Alcotest.(check (list int))
                "final ack totals match the isolated result"
                [ steps; cost.Rbgp_ring.Cost.comm; cost.Rbgp_ring.Cost.mig ]
                [ ack.Proto.pos; ack.Proto.cum_comm; ack.Proto.cum_mig ]
          | None -> Alcotest.fail "no ack received");
          (match Tenant.find router "q" with
          | Some tn -> (
              match Tenant.engine tn with
              | Some engine ->
                  Alcotest.(check string)
                    "quiet-path checkpoint identical to decision-path"
                    (Ckpt.to_string ref_ckpt)
                    (Ckpt.to_string (Engine.checkpoint engine))
              | None -> Alcotest.fail "engine released early")
          | None -> Alcotest.fail "tenant missing");
          Net.close cl))

let test_config_mismatch_and_unknown_stream () =
  with_tempdir (fun dir ->
      with_server ~dir (fun _router server addr ->
          let cl = connect_pumped server addr in
          ignore
            (Net.open_stream cl ~stream:1
               (open_cfg ~tenant:"x" ~alg:"onl-dynamic" ~seed:1 ~n:64 ~ell:4));
          (match
             Net.open_stream cl ~stream:2
               (open_cfg ~tenant:"x" ~alg:"onl-dynamic" ~seed:9 ~n:64 ~ell:4)
           with
          | _ -> Alcotest.fail "config mismatch not reported"
          | exception Net.Server_error (code, _) ->
              Alcotest.(check int) "config mismatch code"
                Proto.err_config_mismatch code);
          (match Net.request cl ~stream:9 [| 0 |] ~pos:0 ~len:1 with
          | _ -> Alcotest.fail "unknown stream not reported"
          | exception Net.Server_error (code, _) ->
              Alcotest.(check int) "unknown stream code"
                Proto.err_unknown_stream code);
          Net.close cl))

(* --- supervised kill mid-connection + reconnect-resume ----------------- *)

let test_kill_and_reconnect_resume () =
  let n = 128 and ell = 8 and steps = 700 in
  let trace = gen_trace ~n ~steps ~seed:31 in
  let ref_ds, _, ref_ckpt =
    reference_run ~alg:"onl-dynamic" ~seed:3 ~n ~ell trace
  in
  with_tempdir (fun dir ->
      with_server ~supervise:true ~checkpoint_every:64 ~dir
        (fun router server addr ->
          let cfg = open_cfg ~tenant:"k" ~alg:"onl-dynamic" ~seed:3 ~n ~ell in
          let cl = connect_pumped server addr in
          ignore (Net.open_stream cl ~stream:1 cfg);
          (* Overlay semantics: keep the latest decision seen per step. *)
          let seen = Hashtbl.create 1024 in
          let record ds =
            Array.iter
              (fun (d : Engine.decision) ->
                Hashtbl.replace seen d.Engine.step (decision_key d))
              ds
          in
          Fault.configure "crash@351";
          Fun.protect ~finally:Fault.disable (fun () ->
              let batches = batches_of trace ~batch:90 in
              let crashed = ref false in
              let rec send cl pos = function
                | [] -> cl
                | b :: rest -> (
                    match
                      Net.request cl ~stream:1 b ~pos:0 ~len:(Array.length b)
                    with
                    | ds ->
                        record ds;
                        send cl (pos + Array.length b) rest
                    | exception Net.Server_error (code, _)
                      when code = Proto.err_tenant_failed ->
                        crashed := true;
                        (* The connection survives a supervised kill:
                           re-open on the same wire and resume from the
                           checkpointed position. *)
                        let resume = Net.open_stream cl ~stream:1 cfg in
                        if resume > pos then
                          Alcotest.failf
                            "resume position %d is past the unsent suffix %d"
                            resume pos;
                        let tail =
                          Array.sub trace resume (Array.length trace - resume)
                        in
                        send cl resume (batches_of tail ~batch:90))
              in
              let cl = send cl 0 batches in
              Alcotest.(check bool) "the injected crash fired" true !crashed;
              Alcotest.(check bool) "tenant was killed and revived" true
                (match Tenant.find router "k" with
                | Some tn -> (
                    match Tenant.state tn with Tenant.Serving -> true | _ -> false)
                | None -> false);
              let overlay =
                List.init steps (fun i ->
                    match Hashtbl.find_opt seen i with
                    | Some key -> key
                    | None -> Printf.sprintf "missing step %d" i)
              in
              Alcotest.(check (list string))
                "overlaid decisions identical to the uninterrupted run"
                (List.map decision_key ref_ds)
                overlay;
              (match Tenant.find router "k" with
              | Some tn -> (
                  match Tenant.engine tn with
                  | Some engine ->
                      Alcotest.(check string)
                        "post-recovery checkpoint identical"
                        (Ckpt.to_string ref_ckpt)
                        (Ckpt.to_string (Engine.checkpoint engine))
                  | None -> Alcotest.fail "engine released early")
              | None -> Alcotest.fail "tenant missing");
              Net.close cl)))

(* --- drain semantics ---------------------------------------------------- *)

let test_drain_rejects_new_opens () =
  with_tempdir (fun dir ->
      with_server ~dir (fun _router server addr ->
          let cl = connect_pumped server addr in
          ignore
            (Net.open_stream cl ~stream:1
               (open_cfg ~tenant:"d" ~alg:"onl-dynamic" ~seed:1 ~n:64 ~ell:4));
          Net.begin_drain server;
          (match
             Net.open_stream cl ~stream:2
               (open_cfg ~tenant:"e" ~alg:"onl-dynamic" ~seed:1 ~n:64 ~ell:4)
           with
          | _ -> Alcotest.fail "open during drain not rejected"
          | exception Net.Server_error (code, _) ->
              Alcotest.(check int) "draining code" Proto.err_draining code
          | exception Net.Disconnected _ -> ());
          Alcotest.(check bool) "drain closed the serving tenant" true
            (match Tenant.find _router "d" with
            | Some tn -> (
                match Tenant.state tn with Tenant.Closed -> true | _ -> false)
            | None -> false)))

(* --- HTTP observability ------------------------------------------------- *)

(* Pull "metric{...tenant="id"...} value" out of an exposition body. *)
let prom_value body metric tenant =
  let needle = Printf.sprintf "%s{tenant=\"%s\"" metric tenant in
  let lines = String.split_on_char '\n' body in
  let rec find = function
    | [] -> None
    | line :: rest ->
        if
          String.length line > String.length needle
          && String.equal (String.sub line 0 (String.length needle)) needle
        then
          match String.rindex_opt line ' ' with
          | Some i ->
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
          | None -> None
        else find rest
  in
  find lines

let json_int body key =
  (* first occurrence of "key":<int> — enough for a single-tenant body *)
  let needle = Printf.sprintf "\"%s\":" key in
  let rec search from =
    match String.index_from_opt body from needle.[0] with
    | None -> None
    | Some i ->
        if
          i + String.length needle <= String.length body
          && String.equal (String.sub body i (String.length needle)) needle
        then
          let j = ref (i + String.length needle) in
          let start = !j in
          while
            !j < String.length body
            && (match body.[!j] with '0' .. '9' | '-' -> true | _ -> false)
          do
            incr j
          done;
          int_of_string_opt (String.sub body start (!j - start))
        else search (i + 1)
  in
  search 0

let body_of response =
  match Astring.String.cut ~sep:"\r\n\r\n" response with
  | Some (_, body) -> body
  | None -> Alcotest.fail "malformed HTTP response"

let test_http_observability () =
  let n = 128 and ell = 8 in
  let trace = gen_trace ~n ~steps:400 ~seed:41 in
  with_tempdir (fun dir ->
      with_server ~dir (fun router server addr ->
          let cl = connect_pumped server addr in
          ignore
            (Net.open_stream cl ~stream:1
               (open_cfg ~tenant:"m" ~alg:"onl-dynamic" ~seed:7 ~n ~ell));
          let ds = Net.request cl ~stream:1 trace ~pos:0 ~len:(Array.length trace) in
          let last = ds.(Array.length ds - 1) in
          let metrics =
            body_of (Http.handle ~router ~draining:false "GET /metrics HTTP/1.0\r\n\r\n")
          and tenants =
            body_of (Http.handle ~router ~draining:false "GET /tenants HTTP/1.0\r\n\r\n")
          in
          let check_prom name metric want =
            match prom_value metrics metric "m" with
            | Some v -> Alcotest.(check int) name want (int_of_float v)
            | None -> Alcotest.failf "%s: %s missing from /metrics" name metric
          in
          check_prom "/metrics requests" "rbgp_requests_total" 400;
          check_prom "/metrics comm" "rbgp_comm_cost_total" last.Engine.cum_comm;
          check_prom "/metrics mig" "rbgp_migration_cost_total"
            last.Engine.cum_mig;
          check_prom "/metrics max load" "rbgp_max_load" last.Engine.max_load;
          check_prom "/metrics position" "rbgp_tenant_position" 400;
          check_prom "/metrics up" "rbgp_tenant_up" 1;
          let check_json name key want =
            match json_int tenants key with
            | Some v -> Alcotest.(check int) name want v
            | None -> Alcotest.failf "%s: %s missing from /tenants" name key
          in
          check_json "/tenants requests agree" "requests" 400;
          check_json "/tenants comm agrees" "comm" last.Engine.cum_comm;
          check_json "/tenants mig agrees" "mig" last.Engine.cum_mig;
          check_json "/tenants position agrees" "pos" 400;
          (match Tenant.find router "m" with
          | Some tn -> (
              match Tenant.metrics_snapshot tn with
              | Some s ->
                  Alcotest.(check int) "snapshot agrees with both surfaces" 400
                    (Metrics.snapshot_requests s)
              | None -> Alcotest.fail "no metrics snapshot")
          | None -> Alcotest.fail "tenant missing");
          Alcotest.(check bool) "healthz serving" true
            (Astring.String.is_infix ~affix:"200 OK"
               (Http.handle ~router ~draining:false "GET /healthz HTTP/1.0\r\n\r\n"));
          Alcotest.(check bool) "healthz draining" true
            (Astring.String.is_infix ~affix:"503"
               (Http.handle ~router ~draining:true "GET /healthz HTTP/1.0\r\n\r\n"));
          Alcotest.(check bool) "unknown path 404" true
            (Astring.String.is_infix ~affix:"404"
               (Http.handle ~router ~draining:false "GET /nope HTTP/1.0\r\n\r\n"));
          Alcotest.(check bool) "non-GET 405" true
            (Astring.String.is_infix ~affix:"405"
               (Http.handle ~router ~draining:false
                  "POST /metrics HTTP/1.0\r\n\r\n"));
          Net.close cl))

let test_prometheus_escaping () =
  let m = Metrics.create () in
  let body =
    Metrics.prometheus_exposition
      [ ([ ("tenant", "a\\b\"c\nd") ], Metrics.snapshot m) ]
  in
  Alcotest.(check bool) "label value escaped" true
    (Astring.String.is_infix ~affix:{|tenant="a\\b\"c\nd"|} body)

let () =
  Alcotest.run "net"
    [
      ( "dechunker",
        [
          Alcotest.test_case "split at every byte boundary" `Quick
            test_dechunker_every_boundary;
          Alcotest.test_case "byte-at-a-time feed" `Quick
            test_dechunker_byte_at_a_time;
          qcheck_dechunker_random_splits;
          Alcotest.test_case "unrepairable input raises" `Quick
            test_dechunker_rejects_garbage;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "two tenants over one socket == isolated runs"
            `Quick test_two_tenants_isolated;
          Alcotest.test_case "quiet path reaches the same state" `Quick
            test_quiet_path_identity;
          Alcotest.test_case "config mismatch and unknown stream errors"
            `Quick test_config_mismatch_and_unknown_stream;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "supervised kill + reconnect-resume bit-exact"
            `Quick test_kill_and_reconnect_resume;
          Alcotest.test_case "drain closes tenants and rejects opens" `Quick
            test_drain_rejects_new_opens;
        ] );
      ( "http",
        [
          Alcotest.test_case "/metrics, /tenants and snapshots agree" `Quick
            test_http_observability;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_escaping;
        ] );
    ]
