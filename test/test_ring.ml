(* Tests for the ring model: cyclic segment arithmetic (property-tested —
   the whole Section-4 machinery leans on it), instances, assignments,
   cost accounting, traces, and the simulator's billing rules. *)

module Instance = Rbgp_ring.Instance
module Segment = Rbgp_ring.Segment
module Assignment = Rbgp_ring.Assignment
module Cost = Rbgp_ring.Cost
module Trace = Rbgp_ring.Trace
module Simulator = Rbgp_ring.Simulator
module Online = Rbgp_ring.Online

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seg_gen =
  QCheck2.Gen.(
    int_range 2 40 >>= fun n ->
    int_range 0 (n - 1) >>= fun start ->
    int_range 1 n >|= fun len -> Segment.make ~n ~start ~len)

let seg_pair_gen =
  QCheck2.Gen.(
    int_range 2 40 >>= fun n ->
    let one =
      int_range 0 (n - 1) >>= fun start ->
      int_range 1 n >|= fun len -> Segment.make ~n ~start ~len
    in
    pair one one)

(* --- Segment --------------------------------------------------------- *)

let test_seg_mem_to_list =
  qtest "segment: mem agrees with to_list" seg_gen (fun s ->
      let l = Segment.to_list s in
      List.length l = Segment.length s
      && List.for_all (Segment.mem s) l
      &&
      let inside = List.sort_uniq compare l in
      List.length inside = Segment.length s)

let test_seg_endpoints =
  qtest "segment: first/last consistent with of_endpoints" seg_gen (fun s ->
      let n = s.Segment.n in
      let s' = Segment.of_endpoints ~n (Segment.first s) (Segment.last s) in
      Segment.equal s s')

let test_seg_subset =
  qtest "segment: subset agrees with membership" seg_pair_gen (fun (a, b) ->
      Segment.subset a b = List.for_all (Segment.mem b) (Segment.to_list a))

let test_seg_inter =
  qtest "segment: inter_size agrees with explicit intersection" seg_pair_gen
    (fun (a, b) ->
      let explicit =
        List.length (List.filter (Segment.mem b) (Segment.to_list a))
      in
      Segment.inter_size a b = explicit
      && Segment.inter_size a b = Segment.inter_size b a)

let test_seg_distances =
  qtest "segment: cw and ring distances"
    QCheck2.Gen.(
      int_range 2 60 >>= fun n ->
      pair (int_range 0 (n - 1)) (int_range 0 (n - 1)) >|= fun (a, b) ->
      (n, a, b))
    (fun (n, a, b) ->
      let cw = Segment.cw_distance ~n a b in
      let ccw = Segment.cw_distance ~n b a in
      let rd = Segment.ring_distance ~n a b in
      cw >= 0 && cw < n
      && (a = b || cw + ccw = n)
      && rd = min cw ccw
      && rd <= n / 2)

let test_seg_edges_inside =
  qtest "segment: edges_inside are the internal edges" seg_gen (fun s ->
      let edges = Segment.edges_inside s in
      let expected =
        if Segment.length s >= s.Segment.n then s.Segment.n
        else Segment.length s - 1
      in
      List.length edges = expected
      && List.for_all
           (fun e -> Segment.mem s e && Segment.mem s ((e + 1) mod s.Segment.n))
           edges)

let test_seg_iter_fold () =
  let s = Segment.make ~n:10 ~start:8 ~len:4 in
  Alcotest.(check (list int)) "wrap-around order" [ 8; 9; 0; 1 ] (Segment.to_list s);
  Alcotest.(check int) "fold sums" 18 (Segment.fold ( + ) 0 s);
  Alcotest.(check int) "last" 1 (Segment.last s)

let test_seg_invalid () =
  Alcotest.check_raises "zero len"
    (Invalid_argument "Segment.make: len out of (0, n]") (fun () ->
      ignore (Segment.make ~n:5 ~start:0 ~len:0));
  Alcotest.check_raises "len > n"
    (Invalid_argument "Segment.make: len out of (0, n]") (fun () ->
      ignore (Segment.make ~n:5 ~start:0 ~len:6))

(* --- Instance -------------------------------------------------------- *)

let test_instance_blocks () =
  let inst = Instance.blocks ~n:12 ~ell:3 in
  Alcotest.(check int) "k" 4 inst.Instance.k;
  Alcotest.(check (list int)) "initial cuts" [ 3; 7; 11 ]
    (Instance.initial_cut_edges inst)

let test_instance_validation () =
  Alcotest.check_raises "capacity exceeded"
    (Invalid_argument "Instance.make: n exceeds total capacity") (fun () ->
      ignore (Instance.make ~n:10 ~ell:2 ~k:4 ()));
  Alcotest.check_raises "overloaded initial"
    (Invalid_argument "Instance.make: initial load exceeds capacity")
    (fun () ->
      ignore (Instance.make ~n:4 ~ell:2 ~k:2 ~initial:[| 0; 0; 0; 1 |] ()));
  Alcotest.check_raises "bad server id"
    (Invalid_argument "Instance.make: initial server id out of range")
    (fun () -> ignore (Instance.make ~n:2 ~ell:2 ~k:1 ~initial:[| 0; 5 |] ()))

let test_instance_custom_initial () =
  let inst =
    Instance.make ~n:6 ~ell:3 ~k:2 ~initial:[| 0; 1; 0; 1; 2; 2 |] ()
  in
  Alcotest.(check (list int)) "cuts of alternating layout" [ 0; 1; 2; 3; 5 ]
    (Instance.initial_cut_edges inst)

(* --- Assignment ------------------------------------------------------ *)

let test_assignment_loads () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let a = Assignment.create inst in
  Alcotest.(check (array int)) "initial loads" [| 4; 4 |] (Assignment.loads a);
  Assignment.set a 0 1;
  Alcotest.(check (array int)) "after move" [| 3; 5 |] (Assignment.loads a);
  Alcotest.(check int) "max load" 5 (Assignment.max_load a);
  Alcotest.(check bool) "capacity 1.0 violated" false
    (Assignment.check_capacity a ~augmentation:1.0);
  Alcotest.(check bool) "capacity 1.25 fine" true
    (Assignment.check_capacity a ~augmentation:1.25)

let test_assignment_cuts () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let a = Assignment.create inst in
  Alcotest.(check (list int)) "block cuts" [ 3; 7 ] (Assignment.cut_edges a);
  Alcotest.(check bool) "edge 3 cut" true (Assignment.cuts_edge a 3);
  Alcotest.(check bool) "edge 0 not cut" false (Assignment.cuts_edge a 0)

let test_assignment_hamming_diff () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let a = Assignment.create inst in
  let b = Assignment.copy a in
  Assignment.set b 0 1;
  Assignment.set b 5 0;
  Alcotest.(check int) "hamming" 2 (Assignment.hamming a b);
  let scratch = Assignment.copy a in
  Alcotest.(check int) "diff_into distance" 2 (Assignment.diff_into b scratch);
  Alcotest.(check int) "scratch synced" 0 (Assignment.hamming b scratch);
  Alcotest.(check (array int)) "loads synced" (Assignment.loads b)
    (Assignment.loads scratch)

(* --- Cost ------------------------------------------------------------ *)

let test_cost () =
  let a = { Cost.comm = 3; mig = 4 } in
  let b = { Cost.comm = 1; mig = 1 } in
  Alcotest.(check int) "total" 7 (Cost.total a);
  let c = Cost.plus a b in
  Alcotest.(check int) "plus" 9 (Cost.total c);
  Cost.add a b;
  Alcotest.(check int) "add mutates" 9 (Cost.total a);
  Alcotest.(check (float 1e-9)) "ratio" 4.5 (Cost.scale_ratio a b);
  Alcotest.(check (float 1e-9)) "0/0" 1.0
    (Cost.scale_ratio (Cost.zero ()) (Cost.zero ()))

(* --- Trace ----------------------------------------------------------- *)

let test_trace () =
  let t = Trace.fixed [| 1; 2; 3 |] in
  Alcotest.(check (option int)) "length" (Some 3) (Trace.length t);
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let a = Assignment.create inst in
  Alcotest.(check int) "fixed next" 2 (Trace.next t 1 a);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Trace.next: step out of bounds") (fun () ->
      ignore (Trace.next t 3 a));
  Trace.validate ~n:8 t ~steps:3;
  Alcotest.check_raises "too short"
    (Invalid_argument "Trace.validate: fixed trace shorter than steps")
    (fun () -> Trace.validate ~n:8 t ~steps:4);
  let ad = Trace.adaptive (fun step _ -> step * 2) in
  Alcotest.(check (option int)) "adaptive length" None (Trace.length ad);
  Alcotest.(check int) "adaptive next" 4 (Trace.next ad 2 a)

(* --- Simulator ------------------------------------------------------- *)

(* a scripted algorithm: migrates process [p] to server [s] at step [t] *)
let scripted ?(augmentation = 2.0) inst moves =
  let a = Assignment.create inst in
  let step = ref 0 in
  Online.make ~name:"scripted" ~augmentation
    ~assignment:(fun () -> a)
    ~serve:(fun _ ->
      List.iter (fun (t, p, s) -> if t = !step then Assignment.set a p s) moves;
      incr step)

let test_simulator_accounting () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  (* requests: edge 3 (cut: comm 1), edge 3 again after process 3 moved to
     server 1 (no longer cut: comm 0), edge 0 (never cut: 0) *)
  let alg = scripted inst [ (0, 3, 1) ] in
  let r = Simulator.run inst alg (Trace.fixed [| 3; 3; 0 |]) ~steps:3 in
  Alcotest.(check int) "comm" 1 r.Simulator.cost.Cost.comm;
  Alcotest.(check int) "mig" 1 r.Simulator.cost.Cost.mig;
  Alcotest.(check int) "max load" 5 r.Simulator.max_load;
  Alcotest.(check int) "violations" 0 r.Simulator.capacity_violations

let test_simulator_comm_before_migration () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  (* the algorithm collocates the endpoints during step 0, but the request
     arrives before the reaction, so step 0 still pays communication *)
  let alg = scripted inst [ (0, 3, 1) ] in
  let r = Simulator.run inst alg (Trace.fixed [| 3 |]) ~steps:1 in
  Alcotest.(check int) "comm billed at old assignment" 1
    r.Simulator.cost.Cost.comm

let test_simulator_capacity_enforcement () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  (* move three processes onto server 1: load 7 > 1.5 * 4 *)
  let moves = [ (0, 0, 1); (0, 1, 1); (0, 2, 1) ] in
  let alg = scripted ~augmentation:1.5 inst moves in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Simulator.run inst alg (Trace.fixed [| 0 |]) ~steps:1);
       false
     with Failure _ -> true);
  let alg = scripted ~augmentation:1.5 inst moves in
  let r =
    Simulator.run ~strict:false inst alg (Trace.fixed [| 0; 0 |]) ~steps:2
  in
  Alcotest.(check int) "violations counted" 2 r.Simulator.capacity_violations

let test_simulator_per_step () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let alg = scripted inst [ (1, 3, 1) ] in
  let r =
    Simulator.run ~record_steps:true inst alg (Trace.fixed [| 3; 3; 3 |])
      ~steps:3
  in
  match r.Simulator.per_step with
  | None -> Alcotest.fail "expected series"
  | Some s ->
      Alcotest.(check (array (pair int int)))
        "cumulative series"
        [| (1, 0); (2, 1); (2, 1) |]
        s

let test_replay_cost () =
  let inst = Instance.blocks ~n:4 ~ell:2 in
  (* initial 0011; schedule: step 0 stays, step 1 swaps to 0101 *)
  let trace = [| 1; 1 |] in
  let assignments = [| [| 0; 0; 1; 1 |]; [| 0; 1; 0; 1 |] |] in
  let c = Simulator.replay_cost inst trace ~assignments in
  (* step 0: no migration; edge 1 connects p1 (server 0) and p2 (server 1):
     comm 1.  step 1: p1 and p2 migrate: 2; edge 1 still crosses: comm 1. *)
  Alcotest.(check int) "comm" 2 c.Cost.comm;
  Alcotest.(check int) "mig" 2 c.Cost.mig

let test_simulator_matches_replay () =
  (* driving a scripted algorithm and replaying the assignments each request
     actually saw must agree on total cost, once the final reaction's
     migrations (invisible to the replay) are added back *)
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let moves = [ (1, 3, 1); (3, 3, 0); (4, 7, 1) ] in
  let trace = [| 3; 3; 7; 3; 7; 0 |] in
  let alg = scripted inst moves in
  let history = ref [] in
  let r =
    Simulator.run
      ~on_step:(fun _ _ ->
        history := Assignment.to_array (alg.Online.assignment ()) :: !history)
      inst alg (Trace.fixed trace) ~steps:(Array.length trace)
  in
  let after = Array.of_list (List.rev !history) in
  let seen =
    Array.mapi
      (fun t _ -> if t = 0 then inst.Instance.initial else after.(t - 1))
      after
  in
  let replay = Simulator.replay_cost inst trace ~assignments:seen in
  let tail_mig =
    let last = Array.length after - 1 in
    let d = ref 0 in
    Array.iteri (fun p s -> if s <> after.(last).(p) then incr d) seen.(last);
    !d
  in
  Alcotest.(check int) "totals agree"
    (Cost.total r.Simulator.cost)
    (Cost.total replay + tail_mig)

(* --- Render ---------------------------------------------------------- *)

let test_render () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let a = Assignment.create inst in
  let s = Rbgp_ring.Render.assignment ~width:8 a in
  Alcotest.(check string) "one row with cut markers"
    "     0  0 0 0 0|1 1 1 1|\n" s;
  let l = Rbgp_ring.Render.loads a in
  Alcotest.(check string) "load bars" "0:#### 1:####" l

let test_render_wrap () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let a = Assignment.create inst in
  let s = Rbgp_ring.Render.assignment ~width:4 a in
  (* two rows; the cut at edge 3 ends row one, the wrap cut at 7 row two *)
  Alcotest.(check string) "two rows"
    "     0  0 0 0 0|\n     4  1 1 1 1|\n" s

let () =
  Alcotest.run "rbgp_ring"
    [
      ( "segment",
        [
          test_seg_mem_to_list;
          test_seg_endpoints;
          test_seg_subset;
          test_seg_inter;
          test_seg_distances;
          test_seg_edges_inside;
          Alcotest.test_case "iter/fold/wrap" `Quick test_seg_iter_fold;
          Alcotest.test_case "invalid" `Quick test_seg_invalid;
        ] );
      ( "instance",
        [
          Alcotest.test_case "blocks" `Quick test_instance_blocks;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "custom initial" `Quick test_instance_custom_initial;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "loads" `Quick test_assignment_loads;
          Alcotest.test_case "cuts" `Quick test_assignment_cuts;
          Alcotest.test_case "hamming/diff" `Quick test_assignment_hamming_diff;
        ] );
      ("cost", [ Alcotest.test_case "arithmetic" `Quick test_cost ]);
      ("trace", [ Alcotest.test_case "fixed/adaptive" `Quick test_trace ]);
      ( "simulator",
        [
          Alcotest.test_case "accounting" `Quick test_simulator_accounting;
          Alcotest.test_case "comm before migration" `Quick
            test_simulator_comm_before_migration;
          Alcotest.test_case "capacity enforcement" `Quick
            test_simulator_capacity_enforcement;
          Alcotest.test_case "per-step series" `Quick test_simulator_per_step;
          Alcotest.test_case "replay cost" `Quick test_replay_cost;
          Alcotest.test_case "simulator matches replay" `Quick
            test_simulator_matches_replay;
        ] );
      ( "render",
        [
          Alcotest.test_case "basic" `Quick test_render;
          Alcotest.test_case "wrap" `Quick test_render_wrap;
        ] );
    ]
