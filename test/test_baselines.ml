(* Tests for the baseline algorithms: balance preservation, cost
   semantics, and the relationships to the offline comparators that the
   harness relies on (e.g. the static oracle realizing the segmented
   optimum up to its first-request delay). *)

module Instance = Rbgp_ring.Instance
module Cost = Rbgp_ring.Cost
module Trace = Rbgp_ring.Trace
module Simulator = Rbgp_ring.Simulator
module Assignment = Rbgp_ring.Assignment
module B = Rbgp_baselines.Baselines
module Rng = Rbgp_util.Rng

let uniform_trace ~n ~steps ~seed =
  let rng = Rng.create seed in
  Array.init steps (fun _ -> Rng.int rng n)

let test_never_move () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let trace = uniform_trace ~n:32 ~steps:2_000 ~seed:1 in
  let r =
    Simulator.run inst (B.never_move inst) (Trace.fixed trace) ~steps:2_000
  in
  Alcotest.(check int) "zero migration" 0 r.Simulator.cost.Cost.mig;
  Alcotest.(check int) "max load = k" inst.Instance.k r.Simulator.max_load;
  (* its communication equals the crossing cost of the initial assignment *)
  let expected =
    Array.fold_left
      (fun acc e ->
        if inst.Instance.initial.(e) <> inst.Instance.initial.((e + 1) mod 32)
        then acc + 1
        else acc)
      0 trace
  in
  Alcotest.(check int) "comm = initial crossings" expected
    r.Simulator.cost.Cost.comm

let test_greedy_balance () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  let trace = uniform_trace ~n:32 ~steps:5_000 ~seed:2 in
  let r =
    Simulator.run inst (B.greedy_colocate inst) (Trace.fixed trace)
      ~steps:5_000
  in
  (* swaps preserve perfect balance: augmentation 1.0, no violations *)
  Alcotest.(check int) "no violations" 0 r.Simulator.capacity_violations;
  Alcotest.(check int) "max load = k" inst.Instance.k r.Simulator.max_load;
  (* every swap moves exactly two processes *)
  Alcotest.(check int) "even migrations" 0 (r.Simulator.cost.Cost.mig mod 2)

let test_greedy_threshold () =
  let inst = Instance.blocks ~n:32 ~ell:4 in
  (* same boundary requested repeatedly: with threshold t the first swap
     happens after t requests *)
  let alg = B.greedy_colocate ~threshold:3 inst in
  let r = Simulator.run inst alg (Trace.fixed [| 7; 7; 7 |]) ~steps:3 in
  Alcotest.(check int) "comm until threshold" 3 r.Simulator.cost.Cost.comm;
  Alcotest.(check int) "then one swap" 2 r.Simulator.cost.Cost.mig

let test_counter_threshold_runs () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let trace = uniform_trace ~n:64 ~steps:5_000 ~seed:3 in
  let alg = B.counter_threshold ~epsilon:0.5 inst in
  let r = Simulator.run inst alg (Trace.fixed trace) ~steps:5_000 in
  Alcotest.(check int) "no violations" 0 r.Simulator.capacity_violations

let test_counter_threshold_stationary () =
  (* hammering one cut edge: the counter player moves it away and then
     pays nothing; total cost stays below 2 theta + movement *)
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let alg = B.counter_threshold ~theta:5 ~epsilon:0.5 inst in
  let trace = Array.make 2_000 15 (* an initial cut edge *) in
  let r = Simulator.run inst alg (Trace.fixed trace) ~steps:2_000 in
  Alcotest.(check bool)
    (Printf.sprintf "cost %d bounded" (Cost.total r.Simulator.cost))
    true
    (Cost.total r.Simulator.cost <= 5 + (4 * inst.Instance.k))

let test_static_oracle_realizes_opt () =
  let inst = Instance.blocks ~n:48 ~ell:4 in
  let trace = uniform_trace ~n:48 ~steps:3_000 ~seed:4 in
  let opt = Rbgp_offline.Static_opt.segmented inst trace in
  let r =
    Simulator.run inst
      (B.static_oracle inst ~trace)
      (Trace.fixed trace) ~steps:3_000
  in
  (* the oracle serves request 0 from the initial assignment and then sits
     in the segmented optimum: totals differ by at most 1 *)
  Alcotest.(check bool)
    (Printf.sprintf "oracle %d vs opt %d" (Cost.total r.Simulator.cost)
       opt.Rbgp_offline.Static_opt.total)
    true
    (abs (Cost.total r.Simulator.cost - opt.Rbgp_offline.Static_opt.total) <= 1);
  Alcotest.(check int) "migration = opt migration"
    opt.Rbgp_offline.Static_opt.migration r.Simulator.cost.Cost.mig

let test_static_oracle_balanced () =
  let inst = Instance.blocks ~n:48 ~ell:4 in
  let trace = uniform_trace ~n:48 ~steps:1_000 ~seed:5 in
  let r =
    Simulator.run inst
      (B.static_oracle inst ~trace)
      (Trace.fixed trace) ~steps:1_000
  in
  Alcotest.(check int) "offline-feasible (augmentation 1)" 0
    r.Simulator.capacity_violations

let test_component_learning_balance () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  let trace = uniform_trace ~n:64 ~steps:5_000 ~seed:6 in
  let r =
    Simulator.run inst
      (B.component_learning inst)
      (Trace.fixed trace) ~steps:5_000
  in
  Alcotest.(check int) "offline-feasible" 0 r.Simulator.capacity_violations;
  Alcotest.(check int) "max load = k" inst.Instance.k r.Simulator.max_load

let test_component_learning_converges () =
  (* on perfectly partitionable demand the learner reaches zero marginal
     cost: the second half of a long trace must be (nearly) free *)
  let n = 64 and ell = 4 in
  let inst = Instance.blocks ~n ~ell in
  let rng = Rng.create 7 in
  let trace =
    match
      Rbgp_workloads.Workloads.partitionable ~n ~ell ~steps:10_000 ~offset:5 rng
    with
    | Trace.Fixed a -> a
    | _ -> assert false
  in
  let alg = B.component_learning inst in
  let r =
    Simulator.run ~record_steps:true inst alg (Trace.fixed trace) ~steps:10_000
  in
  let series = Option.get r.Simulator.per_step in
  let total_at i = fst series.(i) + snd series.(i) in
  let second_half = total_at 9_999 - total_at 4_999 in
  Alcotest.(check int) "second half is free" 0 second_half;
  (* and the hidden partition is fully learned: every hidden block is
     monochromatic under the final assignment *)
  let a = alg.Rbgp_ring.Online.assignment () in
  let k = inst.Instance.k in
  for b = 0 to ell - 1 do
    let base = (5 + (b * k)) mod n in
    let s0 = Assignment.server_of a base in
    for j = 1 to k - 1 do
      Alcotest.(check int)
        (Printf.sprintf "block %d homogeneous" b)
        s0
        (Assignment.server_of a ((base + j) mod n))
    done
  done

let test_component_learning_caps_components () =
  (* genuine ring demand: components would exceed k; the learner must not
     build them (and must stay balanced) *)
  let inst = Instance.blocks ~n:32 ~ell:2 in
  let trace = Array.init 2_000 (fun i -> i mod 32) in
  let r =
    Simulator.run inst
      (B.component_learning inst)
      (Trace.fixed trace) ~steps:2_000
  in
  Alcotest.(check int) "still balanced" 0 r.Simulator.capacity_violations

let () =
  Alcotest.run "rbgp_baselines"
    [
      ( "never-move",
        [ Alcotest.test_case "semantics" `Quick test_never_move ] );
      ( "greedy-colocate",
        [
          Alcotest.test_case "balance" `Quick test_greedy_balance;
          Alcotest.test_case "threshold" `Quick test_greedy_threshold;
        ] );
      ( "counter-threshold",
        [
          Alcotest.test_case "runs clean" `Quick test_counter_threshold_runs;
          Alcotest.test_case "stationary" `Quick test_counter_threshold_stationary;
        ] );
      ( "static-oracle",
        [
          Alcotest.test_case "realizes segmented OPT" `Quick
            test_static_oracle_realizes_opt;
          Alcotest.test_case "balanced" `Quick test_static_oracle_balanced;
        ] );
      ( "component-learning",
        [
          Alcotest.test_case "balance" `Quick test_component_learning_balance;
          Alcotest.test_case "converges on partitionable demand" `Quick
            test_component_learning_converges;
          Alcotest.test_case "caps components on ring demand" `Quick
            test_component_learning_caps_components;
        ] );
    ]
