(* Crash-matrix: randomized (algorithm, kill point, corruption) cells.

   Each cell serves a trace three ways:

   1. uninterrupted — the reference decision stream and final checkpoint;
   2. crashed — same run with [crash@k] armed and rolling checkpoints,
      killed mid-stream, optionally with the on-disk generations
      corrupted afterwards (torn tail, flipped bit, all truncated);
   3. recovered — restore the newest generation that verifies (fresh
      start when none does) and serve the remainder.

   The recovered decision stream, overlaid over what the crashed attempt
   already emitted, must equal the reference stream key for key, and the
   recovered run's final checkpoint must be byte-identical to the
   uninterrupted one.  This is the paper-level determinism contract
   (engine state is a function of (alg, epsilon, seed, instance,
   requests)) extended across process death.

   The second half pins down solver-budget degradation: injected stalls
   produce exact frozen spans, degraded runs are reproducible, and a
   checkpoint taken mid-degradation resumes into the same stream. *)

module Rng = Rbgp_util.Rng
module Instance = Rbgp_ring.Instance
module Trace = Rbgp_ring.Trace
module Workloads = Rbgp_workloads.Workloads
module Registry = Rbgp_serve.Registry
module Fault = Rbgp_serve.Fault
module Engine = Rbgp_serve.Engine
module Ckpt = Rbgp_serve.Checkpoint
module Metrics = Rbgp_serve.Metrics

let fixed = function Trace.Fixed a -> a | Trace.Adaptive _ -> assert false

let gen_trace ~n ~steps ~seed =
  fixed (Workloads.rotating ~n ~steps (Rng.create seed))

(* Every decision field except the wall-clock latency. *)
let decision_key (d : Engine.decision) =
  Printf.sprintf "%d|%d|%d|%d|%d|%d|%d" d.Engine.step d.Engine.edge
    d.Engine.comm d.Engine.moved d.Engine.cum_comm d.Engine.cum_mig
    d.Engine.max_load

let with_tempdir f =
  let dir = Filename.temp_file "rbgp_crash" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun entry ->
          try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let munge path f =
  if Sys.file_exists path then begin
    let raw = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (f raw))
  end

let tear raw = String.sub raw 0 (String.length raw / 2)

let flip_bit raw =
  let b = Bytes.of_string raw in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
  Bytes.to_string b

(* --- the crash matrix -------------------------------------------------- *)

let run_cell (alg_idx, wseed, steps, kill, ckpt_every, keep, corr) =
  let specs = Registry.all in
  let alg = (List.nth specs (alg_idx mod List.length specs)).Registry.name in
  let n = 32 and ell = 4 and seed = 23 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:wseed in
  (* 1: uninterrupted reference *)
  let reference = Engine.create ~alg ~seed inst in
  let ref_keys =
    Array.map (fun q -> decision_key (Engine.ingest reference q)) trace
  in
  let ref_ckpt = Ckpt.to_string (Engine.checkpoint reference) in
  with_tempdir (fun dir ->
      let path = Filename.concat dir "run.ckpt" in
      (* 2: crashed attempt with rolling checkpoints *)
      let overlay = Array.make steps "" in
      Fun.protect ~finally:Fault.disable (fun () ->
          Fault.configure (Printf.sprintf "crash@%d" kill);
          let first = Engine.create ~alg ~seed inst in
          try
            Array.iteri
              (fun i q ->
                overlay.(i) <- decision_key (Engine.ingest first q);
                if Engine.pos first mod ckpt_every = 0 then
                  Ckpt.write_rolling ~path ~keep (Engine.checkpoint first))
              trace
          with Fault.Injected_crash _ -> ());
      (* optional post-mortem corruption of the on-disk generations *)
      (match corr with
      | 0 -> ()
      | 1 -> munge path tear
      | 2 -> munge path flip_bit
      | _ ->
          for g = 0 to keep - 1 do
            munge
              (if g = 0 then path else Printf.sprintf "%s.%d" path g)
              (fun raw -> String.sub raw 0 (Stdlib.min 5 (String.length raw)))
          done);
      (* 3: recover and serve the remainder *)
      let resumed =
        match Ckpt.read_latest ~path () with
        | r -> Engine.resume r.Ckpt.ckpt
        | exception (Invalid_argument _ | Failure _ | Sys_error _) ->
            Engine.create ~alg ~seed inst
      in
      let start = Engine.pos resumed in
      for i = start to steps - 1 do
        overlay.(i) <- decision_key (Engine.ingest resumed trace.(i))
      done;
      overlay = ref_keys
      && String.equal ref_ckpt (Ckpt.to_string (Engine.checkpoint resumed)))

let qcheck_crash_matrix =
  let gen =
    QCheck2.Gen.(
      let* alg_idx = int_bound 100 in
      let* wseed = int_range 0 999 in
      let* steps = int_range 40 160 in
      let* kill = int_range 1 (steps - 1) in
      let* ckpt_every = int_range 7 50 in
      let* keep = int_range 1 3 in
      let* corr = int_bound 3 in
      return (alg_idx, wseed, steps, kill, ckpt_every, keep, corr))
  in
  let print (alg_idx, wseed, steps, kill, ckpt_every, keep, corr) =
    Printf.sprintf
      "alg_idx=%d wseed=%d steps=%d kill=%d ckpt_every=%d keep=%d corr=%d"
      alg_idx wseed steps kill ckpt_every keep corr
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~print
       ~name:"qcheck: crash matrix — recovered == uninterrupted, byte for byte"
       gen run_cell)

(* A targeted always-run cell: tear the newest generation so recovery
   must fall back, and assert it still converges to the reference. *)
let test_fallback_past_torn_generation () =
  let ok =
    run_cell (0 (* onl-dynamic or first spec *), 5, 120, 97, 11, 3, 1)
  in
  Alcotest.(check bool) "recovered through the torn generation" true ok

(* --- solver-budget degradation ----------------------------------------- *)

(* Virtual stall: 100s reported against a 10s budget — fires regardless
   of real scheduling noise, and real latency can never reach the budget
   on its own, so the spans are exact. *)
let stall_spec = "solver-stall@20:100000000000"
let budget_ns = 10_000_000_000

let degraded_run ?(cooloff = 40) ~steps () =
  let n = 32 and ell = 4 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:11 in
  Fun.protect ~finally:Fault.disable (fun () ->
      Fault.configure stall_spec;
      let e = Engine.create ~alg:"onl-dynamic" ~seed:5 inst in
      Engine.set_solver_budget e ~budget_ns ~cooloff;
      let keys =
        Array.map (fun q -> decision_key (Engine.ingest e q)) trace
      in
      (keys, e))

let test_degradation_spans_exact () =
  let steps = 100 and cooloff = 40 in
  let keys, e = degraded_run ~cooloff ~steps () in
  Alcotest.(check int) "all requests served" steps (Array.length keys);
  (* the stall hits request 20, so 21 .. 60 ride the never-move path *)
  Alcotest.(check (array int)) "one exact frozen span" [| 21; cooloff |]
    (Engine.degraded_spans e);
  Alcotest.(check bool) "re-promoted by the end" false (Engine.degrading e);
  let m = Engine.metrics e in
  Alcotest.(check int) "metrics count the frozen requests" cooloff
    (Metrics.degraded m);
  Alcotest.(check int) "one recovery" 1 (Metrics.recovered m);
  (* frozen requests still pay communication but never migrate *)
  let moved_in_span =
    Array.exists
      (fun k -> Scanf.sscanf k "%d|%d|%d|%d|" (fun s _ _ moved ->
           s >= 21 && s <= 60 && moved > 0))
      keys
  in
  Alcotest.(check bool) "no migration inside the frozen span" false
    moved_in_span

let test_degraded_run_deterministic () =
  let a_keys, a = degraded_run ~steps:120 () in
  let b_keys, b = degraded_run ~steps:120 () in
  Alcotest.(check bool) "decision streams identical" true (a_keys = b_keys);
  Alcotest.(check string) "checkpoints byte-identical"
    (Ckpt.to_string (Engine.checkpoint a))
    (Ckpt.to_string (Engine.checkpoint b))

let test_mid_degradation_checkpoint_resume () =
  let n = 32 and ell = 4 and steps = 120 and cut = 30 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:11 in
  let tail_ref, mid, final_ref =
    Fun.protect ~finally:Fault.disable (fun () ->
        Fault.configure stall_spec;
        let e = Engine.create ~alg:"onl-dynamic" ~seed:5 inst in
        Engine.set_solver_budget e ~budget_ns ~cooloff:40;
        for i = 0 to cut - 1 do
          ignore (Engine.ingest e trace.(i))
        done;
        let mid = Ckpt.to_string (Engine.checkpoint e) in
        let tail =
          Array.init (steps - cut) (fun j ->
              decision_key (Engine.ingest e trace.(cut + j)))
        in
        (tail, mid, Ckpt.to_string (Engine.checkpoint e)))
  in
  let ckpt = Ckpt.of_string mid in
  Alcotest.(check bool) "snapshot taken mid-degradation" true
    (ckpt.Ckpt.degraded_left > 0);
  (* resume with no fault plan: the stall fired before the cut, and its
     remaining cooloff must be honoured from the snapshot alone *)
  let resumed = Engine.resume ckpt in
  Alcotest.(check bool) "resumed engine is still degrading" true
    (Engine.degrading resumed);
  let tail =
    Array.init (steps - cut) (fun j ->
        decision_key (Engine.ingest resumed trace.(cut + j)))
  in
  Alcotest.(check bool) "tail decisions identical" true (tail = tail_ref);
  Alcotest.(check string) "final checkpoints byte-identical" final_ref
    (Ckpt.to_string (Engine.checkpoint resumed))

(* Batched ingestion under an armed plan must match per-request serving:
   the engine falls back to per-request stepping around pending faults
   and degradation so the kill/stall lands on the exact same index. *)
let test_batched_matches_per_request_under_faults () =
  let n = 32 and ell = 4 and steps = 120 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:11 in
  let ref_keys, ref_final =
    let keys, e = degraded_run ~steps () in
    (keys, Ckpt.to_string (Engine.checkpoint e))
  in
  let batched =
    Fun.protect ~finally:Fault.disable (fun () ->
        Fault.configure stall_spec;
        let e = Engine.create ~alg:"onl-dynamic" ~seed:5 inst in
        Engine.set_solver_budget e ~budget_ns ~cooloff:40;
        let rng = Rng.create 77 in
        let keys = ref [] in
        let at = ref 0 in
        while !at < steps do
          let len = Stdlib.min (steps - !at) (1 + Rng.int rng 16) in
          let ds = Engine.ingest_batch e (Array.sub trace !at len) in
          Array.iter (fun d -> keys := decision_key d :: !keys) ds;
          at := !at + len
        done;
        (Array.of_list (List.rev !keys), Ckpt.to_string (Engine.checkpoint e)))
  in
  Alcotest.(check bool) "decision streams identical" true
    (fst batched = ref_keys);
  Alcotest.(check string) "checkpoints byte-identical" ref_final (snd batched)

let () =
  Alcotest.run "crash"
    [
      ( "matrix",
        [
          qcheck_crash_matrix;
          Alcotest.test_case "fallback past a torn generation" `Quick
            test_fallback_past_torn_generation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "stall produces exact frozen spans" `Quick
            test_degradation_spans_exact;
          Alcotest.test_case "degraded runs are reproducible" `Quick
            test_degraded_run_deterministic;
          Alcotest.test_case "mid-degradation checkpoint resumes exactly"
            `Quick test_mid_degradation_checkpoint_resume;
          Alcotest.test_case "batched == per-request under faults" `Quick
            test_batched_matches_per_request_under_faults;
        ] );
    ]
