(* Tests for the crash-safety layer:

   - CRC-32 against the standard check vector and incremental updates;
   - Durable.atomic_write / retry_transient semantics;
   - fault-plan parsing (including malformed specs) and the determinism
     of the seeded probabilistic faults;
   - checkpoint v2 integrity (CRC detection, torn records, v1 compat)
     and the injected tear / bit-flip write paths;
   - rolling generations: write_rolling rotation and read_latest
     fallback past corrupt generations. *)

module Crc32 = Rbgp_util.Crc32
module Durable = Rbgp_util.Durable
module Rng = Rbgp_util.Rng
module Instance = Rbgp_ring.Instance
module Trace = Rbgp_ring.Trace
module Workloads = Rbgp_workloads.Workloads
module Fault = Rbgp_serve.Fault
module Engine = Rbgp_serve.Engine
module Ckpt = Rbgp_serve.Checkpoint

let fixed = function Trace.Fixed a -> a | Trace.Adaptive _ -> assert false

let gen_trace ~n ~steps ~seed =
  fixed (Workloads.rotating ~n ~steps (Rng.create seed))

(* Every fault test must leave the process-global plan disarmed. *)
let with_faults spec f =
  Fault.configure spec;
  Fun.protect ~finally:Fault.disable f

let with_tempdir f =
  let dir = Filename.temp_file "rbgp_fault" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun entry ->
          try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* A small served engine to produce realistic checkpoints. *)
let engine_at ~alg ~steps =
  let n = 32 and ell = 4 in
  let inst = Instance.blocks ~n ~ell in
  let trace = gen_trace ~n ~steps ~seed:7 in
  let e = Engine.create ~alg ~seed:3 inst in
  Array.iter (fun q -> ignore (Engine.ingest e q)) trace;
  e

(* --- CRC-32 ----------------------------------------------------------- *)

let test_crc32 () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int) "check vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty input" 0 (Crc32.string "");
  let s = "the quick brown fox jumps over the lazy dog" in
  let oneshot = Crc32.string s in
  let split = Crc32.update (Crc32.string ~len:20 s) s ~pos:20
      ~len:(String.length s - 20)
  in
  Alcotest.(check int) "incremental == one-shot" oneshot split;
  Alcotest.(check bool) "corruption changes the sum" true
    (Crc32.string "123456788" <> oneshot);
  match Crc32.update 0 s ~pos:40 ~len:10 with
  | _ -> Alcotest.fail "out-of-bounds range accepted"
  | exception Invalid_argument _ -> ()

(* --- Durable ----------------------------------------------------------- *)

let test_atomic_write () =
  with_tempdir (fun dir ->
      let path = Filename.concat dir "blob" in
      Durable.atomic_write ~path "first";
      Alcotest.(check string) "written" "first"
        (In_channel.with_open_bin path In_channel.input_all);
      Durable.atomic_write ~path "second, longer";
      Alcotest.(check string) "atomically replaced" "second, longer"
        (In_channel.with_open_bin path In_channel.input_all);
      Alcotest.(check bool) "no tmp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

let test_retry_transient () =
  let calls = ref 0 in
  let flaky () =
    incr calls;
    if !calls < 3 then raise (Unix.Unix_error (Unix.EINTR, "read", ""))
    else 42
  in
  Alcotest.(check int) "transient errors retried" 42
    (Durable.retry_transient flaky);
  Alcotest.(check int) "exactly three attempts" 3 !calls;
  (* a non-transient error propagates on the first attempt *)
  let hard = ref 0 in
  (match
     Durable.retry_transient (fun () ->
         incr hard;
         raise (Unix.Unix_error (Unix.ENOENT, "open", "gone")))
   with
  | _ -> Alcotest.fail "ENOENT treated as transient"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      Alcotest.(check int) "no retry for hard errors" 1 !hard);
  (* bounded attempts: a persistent EINTR eventually surfaces *)
  let spins = ref 0 in
  match
    Durable.retry_transient ~attempts:5 (fun () ->
        incr spins;
        raise (Unix.Unix_error (Unix.EAGAIN, "read", "")))
  with
  | _ -> Alcotest.fail "persistent EAGAIN absorbed forever"
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) ->
      Alcotest.(check int) "attempt budget honoured" 5 !spins

(* --- fault plan parsing ------------------------------------------------ *)

let test_spec_parsing () =
  Alcotest.(check bool) "disarmed by default" false (Fault.armed ());
  with_faults "crash@5,read-eintr:0.25,solver-stall@9:77,seed=12" (fun () ->
      Alcotest.(check bool) "armed" true (Fault.armed ());
      (match Fault.describe () with
      | Some spec ->
          Alcotest.(check bool) "describe echoes the spec" true
            (Astring.String.is_infix ~affix:"crash@5" spec)
      | None -> Alcotest.fail "armed plan has no description"));
  Alcotest.(check bool) "disabled again" false (Fault.armed ());
  Fault.configure "";
  Alcotest.(check bool) "empty spec disarms" false (Fault.armed ());
  List.iter
    (fun bad ->
      match Fault.configure bad with
      | () -> Alcotest.failf "malformed spec %S accepted" bad
      | exception Invalid_argument _ -> ())
    [ "bogus"; "crash@"; "crash@x"; "read-eintr:nope"; "read-eintr:1.5";
      "ckpt-tear@0"; "solver-stall@3:"; "seed="; "crash@5@6" ]

let test_counted_faults_fire_once () =
  with_faults "crash@5" (fun () ->
      Fault.crash_check ~step:4;
      (match Fault.crash_check ~step:5 with
      | () -> Alcotest.fail "crash@5 did not fire"
      | exception Fault.Injected_crash _ -> ());
      (* fired faults disarm: a supervised restart replaying past the
         same index must not die again *)
      Fault.crash_check ~step:5);
  with_faults "solver-stall@7:123" (fun () ->
      Alcotest.(check int) "no stall before the index" 0
        (Fault.solver_stall_ns ~step:6);
      Alcotest.(check int) "stall fires with its budget" 123
        (Fault.solver_stall_ns ~step:7);
      Alcotest.(check int) "stall is one-shot" 0
        (Fault.solver_stall_ns ~step:7))

let test_request_fault_pending () =
  with_faults "crash@10" (fun () ->
      Alcotest.(check bool) "inside the block" true
        (Fault.request_fault_pending ~lo:8 ~hi:16);
      Alcotest.(check bool) "below the block" false
        (Fault.request_fault_pending ~lo:0 ~hi:10);
      Alcotest.(check bool) "above the block" false
        (Fault.request_fault_pending ~lo:11 ~hi:20));
  Alcotest.(check bool) "disarmed plans have nothing pending" false
    (Fault.request_fault_pending ~lo:0 ~hi:max_int)

let test_probabilistic_determinism () =
  let schedule () =
    with_faults "read-eintr:0.4,read-eagain:0.2,seed=99" (fun () ->
        List.init 200 (fun _ ->
            match Fault.before_read () with
            | () -> 'n'
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> 'i'
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                'a'))
  in
  let a = schedule () and b = schedule () in
  Alcotest.(check bool) "same seed, same fault schedule" true (a = b);
  Alcotest.(check bool) "faults actually fire" true (List.mem 'i' a);
  Alcotest.(check bool) "reads actually succeed" true (List.mem 'n' a)

let test_read_flip () =
  with_faults "read-flip@2" (fun () ->
      let dst = [| 1; 2; 3; 4; 5 |] in
      Alcotest.(check bool) "batch containing the ordinal is mangled" true
        (Fault.mangle_batch dst ~got:5);
      Alcotest.(check bool) "the planned slot changed" true (dst.(2) <> 3);
      Alcotest.(check int) "neighbours untouched" 2 dst.(1);
      let dst2 = [| 1; 2; 3 |] in
      Alcotest.(check bool) "flip is one-shot" false
        (Fault.mangle_batch dst2 ~got:3));
  with_faults "read-flip@0" (fun () ->
      let v = Fault.mangle_one 5 in
      Alcotest.(check bool) "single-request variant mangles" true (v <> 5);
      Alcotest.(check int) "and disarms" 5 (Fault.mangle_one 5))

(* --- checkpoint integrity ---------------------------------------------- *)

let test_v2_crc_detects_corruption () =
  let e = engine_at ~alg:"onl-dynamic" ~steps:120 in
  let data = Ckpt.to_string (Engine.checkpoint e) in
  (* round-trips clean *)
  ignore (Ckpt.of_string data);
  (* any flipped byte in the body or trailer must be caught *)
  List.iter
    (fun frac ->
      let i = String.length data * frac / 100 in
      let b = Bytes.of_string data in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      match Ckpt.of_string (Bytes.to_string b) with
      | _ -> Alcotest.failf "corruption at byte %d accepted" i
      | exception Invalid_argument _ -> ())
    [ 20; 50; 80; 99 ];
  (* torn records are named as such *)
  match Ckpt.of_string (String.sub data 0 (String.length data - 7)) with
  | _ -> Alcotest.fail "torn record accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error mentions the tear or the trailer" true
        (Astring.String.is_infix ~affix:"torn" msg
        || Astring.String.is_infix ~affix:"CRC" msg)

let test_v1_still_readable () =
  let e = engine_at ~alg:"greedy-colocate" ~steps:90 in
  let ckpt = Engine.checkpoint e in
  let v1 = Ckpt.to_string ~version:1 ckpt in
  let v2 = Ckpt.to_string ckpt in
  Alcotest.(check bool) "v1 and v2 encodings differ" true (v1 <> v2);
  let back = Ckpt.of_string v1 in
  Alcotest.(check string) "alg" ckpt.Ckpt.alg back.Ckpt.alg;
  Alcotest.(check int) "pos" ckpt.Ckpt.pos back.Ckpt.pos;
  Alcotest.(check (array int)) "prefix" ckpt.Ckpt.prefix back.Ckpt.prefix;
  Alcotest.(check (array int)) "assignment" ckpt.Ckpt.assignment
    back.Ckpt.assignment;
  Alcotest.(check (array int)) "v1 carries no degradation" [||]
    back.Ckpt.degraded;
  (* a degraded snapshot cannot be downgraded: v1 has no field for it *)
  let degraded = { ckpt with Ckpt.degraded = [| 3; 2 |] } in
  match Ckpt.to_string ~version:1 degraded with
  | _ -> Alcotest.fail "v1 encoding silently dropped degradation"
  | exception Invalid_argument _ -> ()

let test_injected_tear_and_flip () =
  with_tempdir (fun dir ->
      let path = Filename.concat dir "run.ckpt" in
      let e = engine_at ~alg:"onl-static" ~steps:100 in
      let ckpt = Engine.checkpoint e in
      (* a flipped write lands (atomically) but fails verification *)
      with_faults "ckpt-flip@1" (fun () ->
          Ckpt.write ~path ckpt;
          (match Ckpt.verify ~path with
          | Ok _ -> Alcotest.fail "bit-flipped checkpoint verified"
          | Error msg ->
              Alcotest.(check bool) "flip caught by CRC" true
                (Astring.String.is_infix ~affix:"CRC" msg));
          (* the fault disarms: the next write is clean *)
          Ckpt.write ~path ckpt;
          match Ckpt.verify ~path with
          | Ok back -> Alcotest.(check int) "clean rewrite" ckpt.Ckpt.pos
              back.Ckpt.pos
          | Error msg -> Alcotest.failf "clean rewrite failed: %s" msg);
      (* a torn write dies mid-write and leaves a truncated final file *)
      with_faults "ckpt-tear@1:40" (fun () ->
          (match Ckpt.write ~path ckpt with
          | () -> Alcotest.fail "torn write did not kill the process"
          | exception Fault.Injected_crash _ -> ());
          Alcotest.(check int) "exactly the torn prefix on disk" 40
            (let ic = open_in_bin path in
             Fun.protect
               ~finally:(fun () -> close_in ic)
               (fun () -> in_channel_length ic));
          match Ckpt.verify ~path with
          | Ok _ -> Alcotest.fail "torn checkpoint verified"
          | Error _ -> ()))

(* --- rolling generations ----------------------------------------------- *)

let test_rolling_generations_and_fallback () =
  with_tempdir (fun dir ->
      let path = Filename.concat dir "run.ckpt" in
      let snapshot steps =
        Engine.checkpoint (engine_at ~alg:"counter-threshold" ~steps)
      in
      let c1 = snapshot 40 and c2 = snapshot 80 and c3 = snapshot 120 in
      Ckpt.write_rolling ~path ~keep:3 c1;
      Ckpt.write_rolling ~path ~keep:3 c2;
      Ckpt.write_rolling ~path ~keep:3 c3;
      Alcotest.(check bool) "three generations on disk" true
        (Sys.file_exists path
        && Sys.file_exists (path ^ ".1")
        && Sys.file_exists (path ^ ".2"));
      let r = Ckpt.read_latest ~path () in
      Alcotest.(check int) "newest generation wins" 0 r.Ckpt.generation;
      Alcotest.(check int) "and holds the newest snapshot" 120
        r.Ckpt.ckpt.Ckpt.pos;
      (* tear generation 0: fallback must land on generation 1 *)
      let raw = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub raw 0 (String.length raw / 2)));
      let r = Ckpt.read_latest ~path () in
      Alcotest.(check int) "fallback generation" 1 r.Ckpt.generation;
      Alcotest.(check int) "fallback snapshot" 80 r.Ckpt.ckpt.Ckpt.pos;
      Alcotest.(check int) "the torn generation is reported" 1
        (List.length r.Ckpt.skipped);
      (* corrupt every generation: recovery must fail loudly *)
      List.iter
        (fun p ->
          Out_channel.with_open_bin p (fun oc ->
              Out_channel.output_string oc "not a checkpoint"))
        [ path; path ^ ".1"; path ^ ".2" ];
      match Ckpt.read_latest ~path () with
      | _ -> Alcotest.fail "recovery from all-corrupt generations"
      | exception (Invalid_argument _ | Failure _) -> ())

let () =
  Alcotest.run "fault"
    [
      ( "integrity",
        [
          Alcotest.test_case "crc32 vectors and updates" `Quick test_crc32;
          Alcotest.test_case "atomic_write" `Quick test_atomic_write;
          Alcotest.test_case "retry_transient" `Quick test_retry_transient;
        ] );
      ( "plan",
        [
          Alcotest.test_case "spec parsing + malformed specs" `Quick
            test_spec_parsing;
          Alcotest.test_case "counted faults fire once" `Quick
            test_counted_faults_fire_once;
          Alcotest.test_case "request_fault_pending windows" `Quick
            test_request_fault_pending;
          Alcotest.test_case "seeded faults are deterministic" `Quick
            test_probabilistic_determinism;
          Alcotest.test_case "read-flip mangles one request" `Quick
            test_read_flip;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "v2 CRC detects corruption" `Quick
            test_v2_crc_detects_corruption;
          Alcotest.test_case "v1 records remain readable" `Quick
            test_v1_still_readable;
          Alcotest.test_case "injected tear and flip" `Quick
            test_injected_tear_and_flip;
          Alcotest.test_case "rolling generations + fallback" `Quick
            test_rolling_generations_and_fallback;
        ] );
    ]
