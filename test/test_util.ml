(* Unit and property tests for Rbgp_util: the PRNG, the smooth-minimum
   machinery of Appendix A, finite distributions with couplings, and the
   statistics helpers.  The smin tests check the appendix's inequalities
   (Fact A.1, Lemmas A.2 and A.3) numerically on random vectors — these
   inequalities carry the whole randomized analysis, so they get the
   heaviest property coverage. *)

module Rng = Rbgp_util.Rng
module Smin = Rbgp_util.Smin
module Dist = Rbgp_util.Dist
module Stats = Rbgp_util.Stats
module Binc = Rbgp_util.Binc

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Rng ------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy matches" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_diverges () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_uniform () =
  let rng = Rng.create 2 in
  let buckets = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = trials / 8 in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform" i)
        true
        (abs (c - expected) < expected / 5))
    buckets

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 4 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_geometric () =
  let rng = Rng.create 6 in
  let total = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let v = Rng.geometric rng 0.5 in
    Alcotest.(check bool) "non-negative" true (v >= 0);
    total := !total + v
  done;
  (* mean of failures-before-success at p = 1/2 is 1 *)
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool) "mean near 1" true (Float.abs (mean -. 1.0) < 0.1)

let test_rng_exponential () =
  let rng = Rng.create 8 in
  let total = ref 0.0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let v = Rng.exponential rng 2.0 in
    Alcotest.(check bool) "positive" true (v >= 0.0);
    total := !total +. v
  done;
  let mean = !total /. float_of_int trials in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.05)

(* --- Smin ------------------------------------------------------------ *)

let vec_gen =
  QCheck2.Gen.(
    list_size (int_range 1 40) (float_bound_inclusive 100.0) >|= Array.of_list)

let min_arr x = Array.fold_left Float.min x.(0) x

let test_smin_bounds =
  qtest "smin: min - ln n <= smin <= min (Fact A.1 i)" vec_gen (fun x ->
      let s = Smin.smin x and m = min_arr x in
      let n = float_of_int (Array.length x) in
      s <= m +. 1e-9 && s >= m -. log n -. 1e-9)

let test_smin_grad_dist =
  qtest "smin: gradient is a distribution (Fact A.1 ii)" vec_gen (fun x ->
      let g = Smin.grad x in
      let sum = Array.fold_left ( +. ) 0.0 g in
      Array.for_all (fun v -> v >= 0.0) g && Float.abs (sum -. 1.0) < 1e-9)

let pair_gen =
  QCheck2.Gen.(
    int_range 1 30 >>= fun n ->
    let fvec hi = array_size (return n) (float_bound_inclusive hi) in
    pair (fvec 50.0) (fvec 1.0))

let test_smin_growth =
  qtest "smin: smin(x+l) - smin(x) >= grad(x).l / 2 (Lemma A.2 i)" pair_gen
    (fun (x, l) ->
      let xl = Array.mapi (fun i v -> v +. l.(i)) x in
      let lhs = Smin.smin xl -. Smin.smin x in
      let g = Smin.grad x in
      let dot = ref 0.0 in
      Array.iteri (fun i gi -> dot := !dot +. (gi *. l.(i))) g;
      lhs >= (0.5 *. !dot) -. 1e-9)

let test_smin_grad_stability =
  qtest "smin: |grad(x+l) - grad(x)|_1 <= 2 grad(x).l (Lemma A.2 ii)" pair_gen
    (fun (x, l) ->
      let xl = Array.mapi (fun i v -> v +. l.(i)) x in
      let g = Smin.grad x and g' = Smin.grad xl in
      let l1 = ref 0.0 and dot = ref 0.0 in
      Array.iteri
        (fun i gi ->
          l1 := !l1 +. Float.abs (g'.(i) -. gi);
          dot := !dot +. (gi *. l.(i)))
        g;
      !l1 <= (2.0 *. !dot) +. 1e-9)

let scaled_gen = QCheck2.Gen.(pair vec_gen (float_range 1.0 20.0))

let test_smin_c_bounds =
  qtest "smin_c: min - c ln n <= smin_c <= min (Lemma A.3 i)" scaled_gen
    (fun (x, c) ->
      let s = Smin.smin_c ~c x and m = min_arr x in
      let n = float_of_int (Array.length x) in
      s <= m +. 1e-9 && s >= m -. (c *. log n) -. 1e-9)

let test_smin_c_grad_stability =
  qtest "smin_c: L1 drift <= (2/c) grad.l (Lemma A.3 iv)"
    QCheck2.Gen.(pair pair_gen (float_range 1.0 20.0))
    (fun ((x, l), c) ->
      let xl = Array.mapi (fun i v -> v +. l.(i)) x in
      let g = Smin.grad_c ~c x and g' = Smin.grad_c ~c xl in
      let l1 = ref 0.0 and dot = ref 0.0 in
      Array.iteri
        (fun i gi ->
          l1 := !l1 +. Float.abs (g'.(i) -. gi);
          dot := !dot +. (gi *. l.(i)))
        g;
      !l1 <= (2.0 /. c *. !dot) +. 1e-9)

let test_smin_sub_consistency =
  qtest "smin_sub/grad_sub agree with explicit slices"
    QCheck2.Gen.(
      vec_gen >>= fun x ->
      let n = Array.length x in
      int_range 0 (n - 1) >>= fun lo ->
      int_range lo (n - 1) >|= fun hi -> (x, lo, hi))
    (fun (x, lo, hi) ->
      let slice = Array.sub x lo (hi - lo + 1) in
      let c = 3.0 in
      let direct = Smin.smin_c ~c slice in
      let sub = Smin.smin_sub ~c x ~lo ~hi in
      let g1 = Smin.grad_c ~c slice in
      let g2 = Array.make (hi - lo + 1) 0.0 in
      Smin.grad_sub_into ~c x ~lo ~hi g2;
      Float.abs (direct -. sub) < 1e-9
      && Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) g1 g2)

let test_smin_huge_counts () =
  (* numerical stability: counters in the millions must not overflow *)
  let x = [| 1e7; 2e7; 1e7 +. 3.0 |] in
  let s = Smin.smin x in
  Alcotest.(check bool) "finite" true (Float.is_finite s);
  let g = Smin.grad x in
  Alcotest.(check bool) "gradient concentrates on minimum" true (g.(0) > 0.9)

(* --- Dist ------------------------------------------------------------ *)

let weights_gen =
  QCheck2.Gen.(
    list_size (int_range 1 30) (float_range 0.01 10.0) >|= Array.of_list)

let test_dist_normalized =
  qtest "dist: of_weights normalizes" weights_gen (fun w ->
      let d = Dist.of_weights w in
      let sum = Array.fold_left ( +. ) 0.0 (Dist.to_array d) in
      Float.abs (sum -. 1.0) < 1e-9)

let test_dist_sample_support () =
  let rng = Rng.create 10 in
  let d = Dist.of_weights [| 0.0; 1.0; 0.0; 2.0; 0.0 |] in
  for _ = 1 to 5_000 do
    let s = Dist.sample rng d in
    Alcotest.(check bool) "only support sampled" true (s = 1 || s = 3)
  done

let test_dist_sample_frequencies () =
  let rng = Rng.create 11 in
  let d = Dist.of_weights [| 1.0; 2.0; 3.0; 4.0 |] in
  let counts = Array.make 4 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let s = Dist.sample rng d in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun i c ->
      let expect = Dist.prob d i *. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "freq %d" i)
        true
        (Float.abs (float_of_int c -. expect) < 0.06 *. float_of_int trials))
    counts

let test_coupling_marginal () =
  (* if current ~ old, the coupled resample must be distributed as new *)
  let rng = Rng.create 12 in
  let old_d = Dist.of_weights [| 4.0; 1.0; 1.0; 2.0 |] in
  let new_d = Dist.of_weights [| 1.0; 3.0; 2.0; 2.0 |] in
  let counts = Array.make 4 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    let cur = Dist.sample rng old_d in
    let nxt = Dist.resample_coupled rng ~current:cur ~old_dist:old_d ~new_dist:new_d in
    counts.(nxt) <- counts.(nxt) + 1
  done;
  Array.iteri
    (fun i c ->
      let expect = Dist.prob new_d i *. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "marginal %d" i)
        true
        (Float.abs (float_of_int c -. expect) < 0.02 *. float_of_int trials))
    counts

let test_coupling_movement () =
  (* probability of moving equals the total-variation distance *)
  let rng = Rng.create 13 in
  let old_d = Dist.of_weights [| 4.0; 1.0; 1.0; 2.0 |] in
  let new_d = Dist.of_weights [| 1.0; 3.0; 2.0; 2.0 |] in
  let moved = ref 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    let cur = Dist.sample rng old_d in
    let nxt = Dist.resample_coupled rng ~current:cur ~old_dist:old_d ~new_dist:new_d in
    if nxt <> cur then incr moved
  done;
  let tv = Dist.tv_distance old_d new_d in
  let freq = float_of_int !moved /. float_of_int trials in
  Alcotest.(check bool) "move prob = tv distance" true (Float.abs (freq -. tv) < 0.01)

let dist_pair_gen =
  QCheck2.Gen.(
    int_range 2 20 >>= fun n ->
    let w = array_size (return n) (float_range 0.01 5.0) in
    pair w w)

let test_tv_l1 =
  qtest "dist: tv = l1 / 2, metric properties" dist_pair_gen (fun (a, b) ->
      let da = Dist.of_weights a and db = Dist.of_weights b in
      let tv = Dist.tv_distance da db in
      Float.abs ((2.0 *. tv) -. Dist.l1_distance da db) < 1e-9
      && tv >= 0.0 && tv <= 1.0 +. 1e-9
      && Dist.tv_distance da da < 1e-12)

let test_earthmover_points () =
  let n = 10 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = Dist.earthmover_line (Dist.point i ~n) (Dist.point j ~n) in
      checkf "em of point masses" (float_of_int (abs (i - j))) d
    done
  done

let test_earthmover_vs_tv =
  qtest "dist: tv <= earthmover <= (n-1) * tv" dist_pair_gen (fun (a, b) ->
      let da = Dist.of_weights a and db = Dist.of_weights b in
      let em = Dist.earthmover_line da db in
      let tv = Dist.tv_distance da db in
      let n = float_of_int (Array.length a) in
      em >= tv -. 1e-9 && em <= ((n -. 1.0) *. tv) +. 1e-9)

let test_expectation () =
  let d = Dist.of_weights [| 1.0; 1.0; 2.0 |] in
  checkf "expectation" 1.25 (Dist.expectation d float_of_int)

(* --- Binc: block decoder == channel decoder --------------------------- *)

(* The zero-copy ingest path stands on one claim: Binc.decode_varints over
   a region and input_varint_opt over a channel are the same decoder —
   same values, same clean-EOF/torn-tail split, for any byte sequence and
   any block size.  These properties pin that down; Source/Trace_codec
   inherit the guarantee wholesale. *)

let encode_varints vals =
  let b = Buffer.create 64 in
  List.iter (Binc.add_varint b) vals;
  Buffer.contents b

(* Decode everything the channel reader can: (values, torn?) where [torn]
   records an Invalid_argument mid-varint (vs a clean end-of-stream). *)
let channel_decode s =
  let path = Filename.temp_file "rbgp_binc" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let acc = ref [] and torn = ref false in
  (try
     let continue = ref true in
     while !continue do
       match Binc.input_varint_opt ic with
       | Some v -> acc := v :: !acc
       | None -> continue := false
     done
   with Invalid_argument _ -> torn := true);
  (List.rev !acc, !torn)

(* Same contract through the block decoder, pulling [block] values per
   call — crossing frame boundaries at every block size exercises the
   parked-cursor torn-tail logic. *)
let region_decode ~block s =
  let r = Binc.region_of_string s in
  let out = Array.make block 0 in
  let acc = ref [] and torn = ref false in
  (try
     let continue = ref true in
     while !continue do
       let got = Binc.decode_varints r out ~limit:block in
       if got = 0 then continue := false
       else
         for j = 0 to got - 1 do
           acc := out.(j) :: !acc
         done
     done
   with Invalid_argument _ -> torn := true);
  (List.rev !acc, !torn)

(* And through the one-value region reads (the Source.next mmap path). *)
let region_decode_singles s =
  let r = Binc.region_of_string s in
  let acc = ref [] and torn = ref false in
  (try
     while not (Binc.region_at_end r) do
       acc := Binc.region_read_varint r :: !acc
     done
   with Invalid_argument _ -> torn := true);
  (List.rev !acc, !torn)

let decoded = Alcotest.(pair (list int) bool)

(* boundary-heavy value generator: continuation-byte edges and the 63-bit
   range edges show up in most cases, not once in a blue moon *)
let varint_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, int_range 0 300);
        ( 3,
          oneofl
            [ 0; 1; 127; 128; 16383; 16384; 2097151; 2097152; max_int - 1;
              max_int ] );
        (2, int_range 0 max_int);
      ])

let varints_gen = QCheck2.Gen.(list_size (int_range 0 40) varint_gen)

let test_binc_parity =
  qtest ~count:150 "binc: block decode == channel decode (clean streams)"
    QCheck2.Gen.(pair varints_gen (int_range 1 7))
    (fun (vals, block) ->
      let s = encode_varints vals in
      channel_decode s = (vals, false)
      && region_decode ~block s = (vals, false)
      && region_decode_singles s = (vals, false))

let test_binc_torn_parity =
  qtest ~count:200 "binc: torn tails agree with the channel reader"
    QCheck2.Gen.(pair (pair varints_gen (int_range 1 5)) (float_bound_inclusive 1.0))
    (fun ((vals, block), frac) ->
      let s = encode_varints vals in
      let cut = int_of_float (frac *. float_of_int (String.length s)) in
      let s = String.sub s 0 (min cut (String.length s)) in
      let reference = channel_decode s in
      region_decode ~block s = reference
      && region_decode_singles s = reference)

let test_binc_boundaries () =
  let vals = [ 0; 1; 127; 128; 16383; 16384; 2097151; 2097152; max_int ] in
  let s = encode_varints vals in
  check decoded "channel decodes boundary values" (vals, false)
    (channel_decode s);
  check decoded "block decoder matches" (vals, false) (region_decode ~block:3 s);
  (* dropping the last byte tears the final (multi-byte) varint: complete
     frames are still delivered, then both decoders raise *)
  let torn = String.sub s 0 (String.length s - 1) in
  let expect = (List.filteri (fun i _ -> i < List.length vals - 1) vals, true) in
  check decoded "channel reports the torn tail" expect (channel_decode torn);
  check decoded "block decoder reports the same torn tail" expect
    (region_decode ~block:4 torn);
  check decoded "single-value region reads agree" expect
    (region_decode_singles torn)

let test_binc_zigzag_region () =
  let vals = [ 0; -1; 1; -64; 64; 123456789; -123456789; (1 lsl 61) - 1;
               -(1 lsl 61) ] in
  let b = Buffer.create 64 in
  List.iter (Binc.add_zigzag b) vals;
  let r = Binc.region_of_string (Buffer.contents b) in
  List.iter
    (fun v ->
      Alcotest.(check int) "zigzag round-trips through the region" v
        (Binc.region_read_zigzag r))
    vals;
  Alcotest.(check bool) "region fully consumed" true (Binc.region_at_end r)

(* --- Union_find ------------------------------------------------------ *)

module Uf = Rbgp_util.Union_find

let test_uf_basic () =
  let uf = Uf.create 8 in
  Alcotest.(check int) "initial components" 8 (Uf.components uf);
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 2 3);
  Alcotest.(check bool) "joined" true (Uf.same uf 0 1);
  Alcotest.(check bool) "separate" false (Uf.same uf 1 2);
  ignore (Uf.union uf 1 3);
  Alcotest.(check bool) "transitively joined" true (Uf.same uf 0 2);
  Alcotest.(check int) "sizes" 4 (Uf.size uf 3);
  Alcotest.(check int) "components" 5 (Uf.components uf);
  Alcotest.(check (list int)) "members" [ 0; 1; 2; 3 ] (Uf.members uf 0)

let test_uf_props =
  qtest ~count:200 "union-find: sizes sum to n, same is an equivalence"
    QCheck2.Gen.(
      int_range 2 30 >>= fun n ->
      list_size (int_range 0 60) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >|= fun ops -> (n, ops))
    (fun (n, ops) ->
      let uf = Uf.create n in
      List.iter (fun (a, b) -> ignore (Uf.union uf a b)) ops;
      let roots = Hashtbl.create 8 in
      for i = 0 to n - 1 do
        let r = Uf.find uf i in
        Hashtbl.replace roots r (1 + Option.value ~default:0 (Hashtbl.find_opt roots r))
      done;
      let total = Hashtbl.fold (fun _ c acc -> acc + c) roots 0 in
      let sizes_ok =
        Hashtbl.fold
          (fun r c acc -> acc && Uf.size uf r = c)
          roots true
      in
      total = n && sizes_ok && Hashtbl.length roots = Uf.components uf)

(* --- Stats ----------------------------------------------------------- *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "mean" 2.5 (Stats.mean xs);
  checkf "variance" (5.0 /. 3.0) (Stats.variance xs);
  checkf "median" 2.5 (Stats.median xs);
  checkf "q0" 1.0 (Stats.quantile xs 0.0);
  checkf "q1" 4.0 (Stats.quantile xs 1.0);
  checkf "min" 1.0 (Stats.min xs);
  checkf "max" 4.0 (Stats.max xs)

let test_linear_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let f = Stats.linear_fit xs ys in
  checkf "slope" 2.0 f.Stats.slope;
  checkf "intercept" 1.0 f.Stats.intercept;
  checkf "r2" 1.0 f.Stats.r2

let test_loglog_fit () =
  let xs = [| 1.0; 2.0; 4.0; 8.0; 16.0 |] in
  let ys = Array.map (fun x -> 3.0 *. x *. x) xs in
  let f = Stats.loglog_fit xs ys in
  checkf "exponent" 2.0 f.Stats.slope

let test_log_x_fit () =
  let xs = [| 2.0; 4.0; 8.0; 16.0 |] in
  let ys = Array.map (fun x -> 5.0 *. log x) xs in
  let f = Stats.log_x_fit xs ys in
  checkf "log slope" 5.0 f.Stats.slope

(* --- Tbl ------------------------------------------------------------- *)

let test_tbl_render () =
  let t = Rbgp_util.Tbl.create ~headers:[ "name"; "value" ] in
  Rbgp_util.Tbl.add_row t [ "alpha"; "1.5" ];
  Rbgp_util.Tbl.add_rule t;
  Rbgp_util.Tbl.add_row t [ "beta"; "2" ];
  let s = Rbgp_util.Tbl.render t in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has header and rows" true
    (contains "name" s && contains "alpha" s && contains "beta" s)

let test_tbl_bad_row () =
  let t = Rbgp_util.Tbl.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Tbl.add_row: wrong number of cells")
    (fun () -> Rbgp_util.Tbl.add_row t [ "only-one" ])

let test_tbl_cells () =
  Alcotest.(check string) "int-like float" "3" (Rbgp_util.Tbl.cell_f 3.0);
  Alcotest.(check string) "fractional" "3.142" (Rbgp_util.Tbl.cell_f 3.1415);
  Alcotest.(check string) "int" "42" (Rbgp_util.Tbl.cell_i 42)

let () =
  Alcotest.run "rbgp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
          Alcotest.test_case "exponential" `Quick test_rng_exponential;
        ] );
      ( "smin",
        [
          test_smin_bounds;
          test_smin_grad_dist;
          test_smin_growth;
          test_smin_grad_stability;
          test_smin_c_bounds;
          test_smin_c_grad_stability;
          test_smin_sub_consistency;
          Alcotest.test_case "huge counts stable" `Quick test_smin_huge_counts;
        ] );
      ( "dist",
        [
          test_dist_normalized;
          Alcotest.test_case "sample support" `Quick test_dist_sample_support;
          Alcotest.test_case "sample frequencies" `Quick test_dist_sample_frequencies;
          Alcotest.test_case "coupling marginal" `Quick test_coupling_marginal;
          Alcotest.test_case "coupling movement" `Quick test_coupling_movement;
          test_tv_l1;
          Alcotest.test_case "earthmover points" `Quick test_earthmover_points;
          test_earthmover_vs_tv;
          Alcotest.test_case "expectation" `Quick test_expectation;
        ] );
      ( "binc",
        [
          test_binc_parity;
          test_binc_torn_parity;
          Alcotest.test_case "boundary values" `Quick test_binc_boundaries;
          Alcotest.test_case "zigzag region reads" `Quick
            test_binc_zigzag_region;
        ] );
      ( "union-find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          test_uf_props;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "loglog fit" `Quick test_loglog_fit;
          Alcotest.test_case "log-x fit" `Quick test_log_x_fit;
        ] );
      ( "tbl",
        [
          Alcotest.test_case "render" `Quick test_tbl_render;
          Alcotest.test_case "bad row" `Quick test_tbl_bad_row;
          Alcotest.test_case "cells" `Quick test_tbl_cells;
        ] );
    ]
