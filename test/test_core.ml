(* Tests for the Section-3 machinery: the shifted interval decomposition,
   the dynamic-model online algorithm (load bound of Lemma 3.1, the
   Observation 3.2 cost dominances, determinism), and the well-behaved
   clustering strategy of Lemma 3.4 replayed against exact dynamic optima
   (invariants (IH)/(IM)/(IS) and the lemma's cost bound). *)

module Instance = Rbgp_ring.Instance
module Cost = Rbgp_ring.Cost
module Trace = Rbgp_ring.Trace
module Simulator = Rbgp_ring.Simulator
module Intervals = Rbgp_ring.Intervals
module Dyn = Rbgp_core.Dynamic_alg
module Wb = Rbgp_core.Well_behaved
module Rng = Rbgp_util.Rng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- interval decomposition -------------------------------------------- *)

let dec_k_gen =
  QCheck2.Gen.(
    int_range 2 8 >>= fun ell ->
    int_range 2 20 >>= fun k ->
    let n = ell * k in
    float_range 0.1 1.5 >>= fun epsilon ->
    int_range 0 (n - 1) >|= fun shift ->
    (k, Intervals.make ~n ~k ~epsilon ~shift))

let dec_gen = QCheck2.Gen.(dec_k_gen >|= snd)

let test_locate_consistency =
  qtest ~count:200 "every edge is in exactly one interval" dec_gen (fun dec ->
      let n = dec.Intervals.n in
      let ok = ref true in
      for e = 0 to n - 1 do
        let i, local = Intervals.locate dec e in
        if Intervals.to_global dec i local <> e then ok := false;
        if local < 0 || local >= Intervals.width dec i then ok := false
      done;
      !ok)

let test_edges_partition =
  qtest ~count:200 "interval edge lists partition the ring" dec_gen
    (fun dec ->
      let n = dec.Intervals.n in
      let seen = Array.make n 0 in
      for i = 0 to dec.Intervals.ell' - 1 do
        Array.iter (fun e -> seen.(e) <- seen.(e) + 1) (Intervals.edges dec i)
      done;
      Array.for_all (( = ) 1) seen)

let test_widths =
  qtest ~count:200 "widths: near-equal, wider than k, summing to n" dec_k_gen
    (fun (k, dec) ->
      let widths = dec.Intervals.widths in
      let sum = Array.fold_left ( + ) 0 widths in
      let mn = Array.fold_left min widths.(0) widths in
      let mx = Array.fold_left max widths.(0) widths in
      (* every width exceeds k, so any balanced schedule keeps a cut edge
         inside every interval (the Lemma 3.6 prerequisite) *)
      sum = dec.Intervals.n && mx - mn <= 1 && mn >= k + 1)

let cuts_gen =
  QCheck2.Gen.(
    dec_gen >>= fun dec ->
    let pick_cut i =
      int_range 0 (Intervals.width dec i - 1) >|= fun local ->
      Intervals.to_global dec i local
    in
    let rec all i acc =
      if i = dec.Intervals.ell' then return (List.rev acc)
      else pick_cut i >>= fun c -> all (i + 1) (c :: acc)
    in
    all 0 [] >|= fun cuts -> (dec, Array.of_list cuts))

let test_slices_partition =
  qtest ~count:400 "slices of arbitrary valid cuts partition the ring"
    cuts_gen (fun (dec, cuts) ->
      let n = dec.Intervals.n in
      let covered = Array.make n 0 in
      Array.iter
        (fun (_, seg) ->
          Rbgp_ring.Segment.iter (fun p -> covered.(p) <- covered.(p) + 1) seg)
        (Intervals.slices_of_cuts dec cuts);
      Array.for_all (( = ) 1) covered)

let test_slices_bounded =
  qtest ~count:400 "slice lengths respect the max_slice_len bound" cuts_gen
    (fun (dec, cuts) ->
      Array.for_all
        (fun (_, seg) ->
          Rbgp_ring.Segment.length seg <= Intervals.max_slice_len dec)
        (Intervals.slices_of_cuts dec cuts))

let test_slices_one_per_server =
  qtest ~count:200 "each server owns exactly one slice" cuts_gen
    (fun (dec, cuts) ->
      let owners =
        Array.to_list (Intervals.slices_of_cuts dec cuts) |> List.map fst
      in
      List.sort compare owners = List.init dec.Intervals.ell' (fun i -> i))

let test_intervals_validation () =
  Alcotest.check_raises "bad shift"
    (Invalid_argument "Intervals.make: shift out of [0, n)") (fun () ->
      ignore (Intervals.make ~n:16 ~k:4 ~epsilon:0.5 ~shift:16));
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Intervals.make: epsilon must be positive") (fun () ->
      ignore (Intervals.make ~n:16 ~k:4 ~epsilon:0.0 ~shift:0))

(* --- dynamic algorithm --------------------------------------------------- *)

let run_dyn ?(epsilon = 0.5) ~n ~ell ~steps ~seed trace_of =
  let inst = Instance.blocks ~n ~ell in
  let rng = Rng.create seed in
  let alg = Dyn.create ~epsilon inst (Rng.split rng) in
  let trace = trace_of inst (Rng.split rng) in
  let r = Simulator.run inst (Dyn.online alg) trace ~steps in
  (inst, alg, r)

let workloads n steps rng =
  Rbgp_workloads.Workloads.all_fixed ~n ~steps rng

let test_dyn_load_bound () =
  (* Lemma 3.1: never exceeds the claimed augmentation, on all workloads *)
  let n = 96 and ell = 6 and steps = 4_000 in
  let rng = Rng.create 1 in
  List.iter
    (fun (name, trace) ->
      let inst = Instance.blocks ~n ~ell in
      let alg = Dyn.create ~epsilon:0.5 inst (Rng.split rng) in
      let r = Simulator.run inst (Dyn.online alg) trace ~steps in
      Alcotest.(check int) (name ^ ": no violations") 0 r.Simulator.capacity_violations)
    (workloads n steps (Rng.split rng))

let test_dyn_cuts_inside_intervals () =
  let _, alg, _ =
    run_dyn ~n:64 ~ell:4 ~steps:3_000 ~seed:2 (fun inst rng ->
        Rbgp_workloads.Workloads.uniform ~n:inst.Instance.n ~steps:3_000 rng)
  in
  let dec = Dyn.decomposition alg in
  Array.iteri
    (fun i cut ->
      Alcotest.(check int)
        (Printf.sprintf "cut %d inside interval %d" cut i)
        i
        (fst (Intervals.locate dec cut)))
    (Dyn.cut_edges alg)

let test_dyn_observation_32 () =
  (* Observation 3.2: simulator costs are dominated by the interval costs,
     modulo the one-time alignment migration of the first step *)
  let n = 64 and ell = 4 and steps = 4_000 in
  let inst, alg, r =
    run_dyn ~n ~ell ~steps ~seed:3 (fun inst rng ->
        Rbgp_workloads.Workloads.zipf ~n:inst.Instance.n ~steps rng)
  in
  ignore inst;
  (* a billed communication lands on some interval's current cut; the MTS
     convention charges the hit at the NEW state, so a dodged request shows
     up as movement instead of a hit — hence the hit+move majorant *)
  Alcotest.(check bool) "comm <= sum hit + sum move" true
    (float_of_int r.Simulator.cost.Cost.comm
    <= Dyn.interval_hit_cost alg +. Dyn.interval_move_cost alg +. 1e-9);
  (* the overlap-free decomposition makes migration = cut movement, plus
     the one-time alignment with the initial assignment (<= n) *)
  Alcotest.(check bool) "mig <= sum move + n" true
    (float_of_int r.Simulator.cost.Cost.mig
    <= Dyn.interval_move_cost alg +. float_of_int n +. 1e-9)

let test_dyn_assignment_matches_cuts () =
  (* the live assignment must always equal the one its cut edges induce *)
  let inst = Instance.blocks ~n:96 ~ell:6 in
  let rng = Rng.create 23 in
  let alg = Dyn.create ~epsilon:0.5 inst (Rng.split rng) in
  let online = Dyn.online alg in
  let check () =
    let dec = Dyn.decomposition alg in
    let expected = Array.make 96 (-1) in
    Array.iter
      (fun (server, seg) ->
        Rbgp_ring.Segment.iter (fun p -> expected.(p) <- server) seg)
      (Intervals.slices_of_cuts dec (Dyn.cut_edges alg));
    let actual =
      Rbgp_ring.Assignment.to_array (online.Rbgp_ring.Online.assignment ())
    in
    Alcotest.(check (array int)) "assignment = slices of cuts" expected actual
  in
  check ();
  for _ = 1 to 2_000 do
    online.Rbgp_ring.Online.serve (Rng.int rng 96)
  done;
  check ()

let test_dyn_deterministic_given_seed () =
  let run () =
    let _, _, r =
      run_dyn ~n:64 ~ell:4 ~steps:2_000 ~seed:77 (fun inst rng ->
          Rbgp_workloads.Workloads.rotating ~n:inst.Instance.n ~steps:2_000 rng)
    in
    (r.Simulator.cost.Cost.comm, r.Simulator.cost.Cost.mig)
  in
  Alcotest.(check (pair int int)) "reproducible" (run ()) (run ())

let test_dyn_shift_range () =
  let inst = Instance.blocks ~n:64 ~ell:4 in
  for seed = 0 to 20 do
    let alg = Dyn.create ~epsilon:0.5 inst (Rng.create seed) in
    Alcotest.(check bool) "shift in range" true
      (Dyn.shift alg >= 0 && Dyn.shift alg < inst.Instance.n)
  done

let test_dyn_solver_variants () =
  (* every MTS solver plugs in and respects the load bound *)
  let n = 64 and ell = 4 and steps = 1_500 in
  let inst = Instance.blocks ~n ~ell in
  List.iter
    (fun (name, solver) ->
      let rng = Rng.create 9 in
      let alg = Dyn.create ~mts:solver ~epsilon:0.5 inst (Rng.split rng) in
      let trace =
        Rbgp_workloads.Workloads.uniform ~n ~steps (Rng.split rng)
      in
      let r = Simulator.run inst (Dyn.online alg) trace ~steps in
      Alcotest.(check int) (name ^ " violations") 0 r.Simulator.capacity_violations)
    [
      ("wfa", Rbgp_mts.Work_function.solver);
      ("smin", Rbgp_mts.Smin_mw.solver);
      ("hst", Rbgp_mts.Hst_mts.solver);
      ("marking", Rbgp_mts.Marking.solver);
    ]

let test_dyn_epsilon_too_small () =
  (* ell' > ell must be rejected: n = ell * k with epsilon tiny makes
     k' = k + 1 and ell' = ceil(n / (k+1)) = ell when k >= ... pick a case
     where it genuinely overflows: ell' can never exceed ell for valid
     instances with epsilon > 0, so instead check creation succeeds across
     epsilons *)
  let inst = Instance.blocks ~n:64 ~ell:4 in
  List.iter
    (fun epsilon ->
      let alg = Dyn.create ~epsilon inst (Rng.create 0) in
      let dec = Dyn.decomposition alg in
      Alcotest.(check bool) "ell' <= ell" true (dec.Intervals.ell' <= 4))
    [ 0.01; 0.1; 0.5; 1.0; 2.0 ]

(* --- well-behaved strategy (Lemma 3.4) ----------------------------------- *)

let wb_cases =
  [ (6, 3, "uniform"); (6, 3, "rotating"); (8, 2, "uniform");
    (8, 2, "hotspot"); (9, 3, "uniform"); (10, 2, "rotating") ]

let make_trace name n steps rng =
  match name with
  | "uniform" -> Rbgp_workloads.Workloads.uniform ~n ~steps rng
  | "rotating" ->
      Rbgp_workloads.Workloads.rotating ~n ~steps ~arc:2 ~period:7 rng
  | "hotspot" -> Rbgp_workloads.Workloads.hotspot ~n ~steps ~arc:2 rng
  | _ -> assert false

let test_wb_replay () =
  let steps = 300 in
  let epsilon = 0.25 in
  List.iter
    (fun (n, ell, wname) ->
      let inst = Instance.blocks ~n ~ell in
      let rng = Rng.create (n + ell) in
      let trace =
        match make_trace wname n steps rng with
        | Trace.Fixed a -> a
        | _ -> assert false
      in
      let dp = Rbgp_offline.Dynamic_opt.enumerate_states inst () in
      let schedule, opt = Rbgp_offline.Dynamic_opt.solve_schedule dp trace in
      (* replay raises on any invariant violation *)
      let wb = Wb.replay inst ~epsilon ~trace ~schedule in
      let log2 x = log x /. log 2.0 in
      let k = float_of_int inst.Instance.k in
      let bound =
        (4.0 /. epsilon *. log2 k *. float_of_int (Cost.total opt))
        +. (2.0 *. float_of_int n *. log2 k)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s n=%d: W cost within Lemma 3.4 bound" wname n)
        true
        (float_of_int (Wb.total_cost wb) <= bound);
      (* (IH) makes the hitting cost at most OPT's communication cost *)
      Alcotest.(check bool)
        (Printf.sprintf "%s n=%d: hit <= OPT comm" wname n)
        true
        (Wb.hit_cost wb <= opt.Cost.comm))
    wb_cases

let test_wb_segments_partition () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let wb = Wb.create inst ~epsilon:0.25 in
  let total = List.fold_left ( + ) 0 (Wb.segment_sizes wb) in
  Alcotest.(check int) "initial segments cover the ring" 8 total;
  Alcotest.(check (list int)) "initial cuts = OPT cuts" [ 3; 7 ] (Wb.cut_edges wb)

let test_wb_potential_nonneg () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  let rng = Rng.create 4 in
  let trace = Array.init 200 (fun _ -> Rng.int rng 8) in
  let dp = Rbgp_offline.Dynamic_opt.enumerate_states inst () in
  let schedule, _ = Rbgp_offline.Dynamic_opt.solve_schedule dp trace in
  let wb = Wb.create inst ~epsilon:0.25 in
  Array.iteri
    (fun i e ->
      ignore (Wb.step wb ~opt_assignment:schedule.(i) ~request:e);
      Alcotest.(check bool) "potential non-negative" true (Wb.potential wb >= -1e-9))
    trace

let test_lemma_3_6_chain () =
  (* Lemma 3.6 implies E_R[OPT_R] <= 6 * OPT_W <= 6 * (cost of our
     constructed well-behaved strategy); check the chain on exact-OPT
     replays.  The constructed W is only an upper bound on OPT_W, so this
     is a necessary consequence of the lemma, not its exact statement. *)
  let n = 6 and ell = 3 in
  let inst = Instance.blocks ~n ~ell in
  let rng = Rng.create 21 in
  let trace = Array.init 300 (fun _ -> Rng.int rng n) in
  let dp = Rbgp_offline.Dynamic_opt.enumerate_states inst () in
  let schedule, _ = Rbgp_offline.Dynamic_opt.solve_schedule dp trace in
  let wb = Wb.replay inst ~epsilon:0.25 ~trace ~schedule in
  let epsilon = 0.25 in
  let opt_rs =
    List.init n (fun shift ->
        Rbgp_offline.Lower_bound.interval_opt inst trace ~shift ~epsilon)
  in
  let mean_opt_r =
    List.fold_left ( +. ) 0.0 opt_rs /. float_of_int (List.length opt_rs)
  in
  (* allow the additive slack of W's initialization (its segments start as
     OPT's, worth at most n) *)
  Alcotest.(check bool)
    (Printf.sprintf "E_R[OPT_R]=%.1f <= 6 W=%d + n" mean_opt_r
       (Wb.total_cost wb))
    true
    (mean_opt_r <= (6.0 *. float_of_int (Wb.total_cost wb)) +. float_of_int n)

let test_wb_epsilon_validation () =
  let inst = Instance.blocks ~n:8 ~ell:2 in
  Alcotest.check_raises "epsilon too large"
    (Invalid_argument "Well_behaved.create: epsilon must be in (0, 1/4]")
    (fun () -> ignore (Wb.create inst ~epsilon:0.5))

let () =
  Alcotest.run "rbgp_core_dynamic"
    [
      ( "intervals",
        [
          test_locate_consistency;
          test_edges_partition;
          test_widths;
          test_slices_partition;
          test_slices_bounded;
          test_slices_one_per_server;
          Alcotest.test_case "validation" `Quick test_intervals_validation;
        ] );
      ( "dynamic-alg",
        [
          Alcotest.test_case "load bound (Lemma 3.1)" `Quick test_dyn_load_bound;
          Alcotest.test_case "cuts inside intervals" `Quick
            test_dyn_cuts_inside_intervals;
          Alcotest.test_case "Observation 3.2 dominance" `Quick
            test_dyn_observation_32;
          Alcotest.test_case "assignment matches cuts" `Quick
            test_dyn_assignment_matches_cuts;
          Alcotest.test_case "deterministic by seed" `Quick
            test_dyn_deterministic_given_seed;
          Alcotest.test_case "shift range" `Quick test_dyn_shift_range;
          Alcotest.test_case "all MTS solvers" `Quick test_dyn_solver_variants;
          Alcotest.test_case "epsilon sweep" `Quick test_dyn_epsilon_too_small;
        ] );
      ( "well-behaved",
        [
          Alcotest.test_case "replay vs exact OPT (Lemma 3.4)" `Quick
            test_wb_replay;
          Alcotest.test_case "initial segments" `Quick test_wb_segments_partition;
          Alcotest.test_case "potential non-negative" `Quick
            test_wb_potential_nonneg;
          Alcotest.test_case "Lemma 3.6 chain" `Quick test_lemma_3_6_chain;
          Alcotest.test_case "epsilon validation" `Quick test_wb_epsilon_validation;
        ] );
    ]
