(* The paper's structural lemmas, executed.

   Lemmas 4.5 and 4.6 are pure combinatorial statements about
   monochromatic segments — property-tested directly on random colorings.
   Lemmas 4.9 (slice size between adjacent active intervals) and 4.21
   (every process is in O(log k) intervals) are invariants of the slicing
   procedure's state — checked continuously during full runs of the static
   algorithm under several demand regimes.  Lemma 4.12 / Corollary 4.10
   (cluster sizes) are covered in test_static.ml; this file holds the
   lemmas about raw interval/segment structure. *)

module Instance = Rbgp_ring.Instance
module Segment = Rbgp_ring.Segment
module Slicing = Rbgp_core.Slicing
module Static_alg = Rbgp_core.Static_alg
module Rng = Rbgp_util.Rng

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Lemma 4.5 ---------------------------------------------------------- *)

(* Let I and J be two overlapping delta-monochromatic segments with
   |I cap J| >= alpha * max(|I|, |J|) and delta >= 1 - alpha/2.  Then they
   have the same majority color. *)

let coloring_gen =
  QCheck2.Gen.(
    int_range 8 40 >>= fun n ->
    int_range 2 4 >>= fun colors ->
    array_size (return n) (int_range 0 (colors - 1)) >>= fun coloring ->
    let seg =
      int_range 0 (n - 1) >>= fun start ->
      int_range 2 n >|= fun len -> Segment.make ~n ~start ~len
    in
    pair seg seg >|= fun (i, j) -> (coloring, i, j))

let color_count coloring seg c =
  Segment.fold (fun acc p -> if coloring.(p) = c then acc + 1 else acc) 0 seg

let majority coloring ~colors seg =
  let best = ref 0 and best_c = ref 0 in
  for c = 0 to colors - 1 do
    let v = color_count coloring seg c in
    if v > !best then begin
      best := v;
      best_c := c
    end
  done;
  (!best_c, !best)

let is_delta_mono coloring ~colors ~delta seg =
  let _, cnt = majority coloring ~colors seg in
  float_of_int cnt > delta *. float_of_int (Segment.length seg)

let test_lemma_4_5 =
  qtest ~count:2000 "Lemma 4.5: big overlap forces equal majority colors"
    coloring_gen (fun (coloring, i, j) ->
      let colors = 1 + Array.fold_left max 0 coloring in
      let inter = Segment.inter_size i j in
      let mx = max (Segment.length i) (Segment.length j) in
      if inter = 0 then true (* no overlap: lemma silent *)
      else begin
        let alpha = float_of_int inter /. float_of_int mx in
        let delta = 1.0 -. (alpha /. 2.0) in
        (* strengthen delta a little to stay strictly above the threshold *)
        let delta = delta +. 1e-9 in
        if
          is_delta_mono coloring ~colors ~delta i
          && is_delta_mono coloring ~colors ~delta j
        then
          fst (majority coloring ~colors i) = fst (majority coloring ~colors j)
        else true
      end)

(* --- Lemma 4.6 ---------------------------------------------------------- *)

(* A union of consecutive overlapping delta-monochromatic segments with the
   same majority color c is delta/(2-delta)-monochromatic for c. *)

let chain_gen =
  QCheck2.Gen.(
    int_range 20 60 >>= fun n ->
    int_range 2 3 >>= fun colors ->
    array_size (return n) (int_range 0 (colors - 1)) >>= fun coloring ->
    int_range 2 5 >>= fun m ->
    int_range 0 (n - 1) >>= fun start0 ->
    (* build a chain of overlapping segments going clockwise *)
    let seg_len = int_range 3 (n / 3) in
    let rec build i start acc =
      if i = m then return (List.rev acc)
      else
        seg_len >>= fun len ->
        int_range 1 (len - 1) >>= fun advance ->
        let seg = Segment.make ~n ~start ~len in
        build (i + 1) (start + advance) (seg :: acc)
    in
    build 0 start0 [] >|= fun segs -> (coloring, colors, segs))

let union_segment segs =
  (* the chain is built going clockwise with overlaps, so the union runs
     from the first segment's start to the last reaching endpoint *)
  match segs with
  | [] -> assert false
  | first :: _ ->
      let n = first.Segment.n in
      let start = Segment.first first in
      let reach =
        List.fold_left
          (fun acc seg ->
            max acc
              (Segment.cw_distance ~n start (Segment.first seg)
              + Segment.length seg))
          0 segs
      in
      if reach >= n then Segment.whole ~n
      else Segment.make ~n ~start ~len:reach

let test_lemma_4_6 =
  qtest ~count:2000
    "Lemma 4.6: unions of same-majority delta-mono chains stay mono"
    chain_gen (fun (coloring, colors, segs) ->
      let delta = 0.75 in
      let monos =
        List.for_all (is_delta_mono coloring ~colors ~delta) segs
      in
      let majors =
        List.map (fun s -> fst (majority coloring ~colors s)) segs
      in
      let same_major =
        match majors with [] -> true | c :: rest -> List.for_all (( = ) c) rest
      in
      if not (monos && same_major) then true
      else begin
        let u = union_segment segs in
        let c = List.hd majors in
        let cnt = color_count coloring u c in
        (* delta/(2-delta) with delta = 3/4 gives 3/5 *)
        float_of_int cnt
        >= delta /. (2.0 -. delta) *. float_of_int (Segment.length u) -. 1e-9
      end)

(* --- Lemmas 4.9 / 4.21 during slicing runs ------------------------------- *)

let drive_static ~n ~ell ~steps ~seed ~workload ~check =
  let inst = Instance.blocks ~n ~ell in
  let rng = Rng.create seed in
  let alg = Static_alg.create ~epsilon:0.5 inst (Rng.split rng) in
  let trace = workload inst (Rng.split rng) in
  let online = Static_alg.online alg in
  ignore
    (Rbgp_ring.Simulator.run
       ~on_step:(fun step _ -> if step mod 25 = 0 then check step alg)
       inst online trace ~steps);
  check steps alg

let check_lemma_4_21 n k step alg =
  (* every process is contained in at most 8 * (log2 k + 2) interval
     segments (active or inactive) — Lemma 4.21's bound with its explicit
     constants relaxed by the rank-1/2 special cases *)
  let s = Static_alg.slicing alg in
  let containment = Array.make n 0 in
  for id = 0 to Slicing.interval_count s - 1 do
    Segment.iter
      (fun p -> containment.(p) <- containment.(p) + 1)
      (Slicing.interval_seg s id)
  done;
  let bound =
    8.0 *. ((log (float_of_int k) /. log 2.0) +. 2.0)
  in
  Array.iteri
    (fun p c ->
      if float_of_int c > bound then
        Alcotest.fail
          (Printf.sprintf
             "step %d: process %d is in %d intervals (bound %.1f, Lemma 4.21)"
             step p c bound))
    containment

let check_lemma_4_9 n k step alg =
  (* the slice between the cut edges of adjacent active intervals has at
     most |A| + |B| - 2 + (2 - delta_bar)/delta_bar * k processes *)
  let s = Static_alg.slicing alg in
  let delta_bar = Static_alg.delta_bar alg in
  let cuts = Slicing.active_cuts s in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) cuts in
  match sorted with
  | [] | [ _ ] -> ()
  | (first_id, first_cut) :: _ ->
      let rec pairs = function
        | (ia, a) :: ((_, _) as nb) :: rest ->
            ((ia, a), nb) :: pairs (nb :: rest)
        | [ (ia, a) ] -> [ ((ia, a), (first_id, first_cut)) ]
        | [] -> []
      in
      List.iter
        (fun ((ia, a), (ib, b)) ->
          if a <> b then begin
            let slice_len = Segment.cw_distance ~n a b in
            let la = Segment.length (Slicing.interval_seg s ia) in
            let lb = Segment.length (Slicing.interval_seg s ib) in
            let bound =
              float_of_int (la + lb - 2)
              +. ((2.0 -. delta_bar) /. delta_bar *. float_of_int k)
            in
            if float_of_int slice_len > bound +. 1e-9 then
              Alcotest.fail
                (Printf.sprintf
                   "step %d: slice between cuts %d and %d has %d processes \
                    (bound %.1f, Lemma 4.9)"
                   step a b slice_len bound)
          end)
        (pairs sorted)

let lemma_run_cases =
  [
    (64, 4, "uniform");
    (64, 4, "rotating");
    (96, 6, "zipf");
    (128, 8, "hotspot");
  ]

let workload_of name inst rng =
  let n = inst.Instance.n in
  let steps = 4_000 in
  match name with
  | "uniform" -> Rbgp_workloads.Workloads.uniform ~n ~steps rng
  | "rotating" -> Rbgp_workloads.Workloads.rotating ~n ~steps rng
  | "zipf" -> Rbgp_workloads.Workloads.zipf ~n ~steps rng
  | "hotspot" -> Rbgp_workloads.Workloads.hotspot ~n ~steps rng
  | _ -> assert false

let test_lemma_4_21 () =
  List.iter
    (fun (n, ell, w) ->
      drive_static ~n ~ell ~steps:4_000 ~seed:(n + ell) ~workload:(workload_of w)
        ~check:(fun step alg -> check_lemma_4_21 n (n / ell) step alg))
    lemma_run_cases

let test_lemma_4_9 () =
  List.iter
    (fun (n, ell, w) ->
      drive_static ~n ~ell ~steps:4_000 ~seed:(2 * (n + ell))
        ~workload:(workload_of w)
        ~check:(fun step alg -> check_lemma_4_9 n (n / ell) step alg))
    lemma_run_cases

(* --- Fact 3.5 ------------------------------------------------------------ *)

let test_fact_3_5 =
  qtest ~count:1000 "Fact 3.5: (s-d) log(s/(s-d)) <= d"
    QCheck2.Gen.(
      int_range 2 1000 >>= fun s ->
      int_range 1 (s - 1) >|= fun d -> (float_of_int s, float_of_int d))
    (fun (s, d) -> (s -. d) *. log (s /. (s -. d)) <= d +. 1e-9)

let () =
  Alcotest.run "rbgp_lemmas"
    [
      ( "segment-structure",
        [ test_lemma_4_5; test_lemma_4_6; test_fact_3_5 ] );
      ( "slicing-structure",
        [
          Alcotest.test_case "Lemma 4.21: interval containment" `Slow
            test_lemma_4_21;
          Alcotest.test_case "Lemma 4.9: inter-cut slice size" `Slow
            test_lemma_4_9;
        ] );
    ]
