(* Standalone linter entry point (also available as `rbgp lint`):

     rbgp-lint                       # scan lib bin bench with the
                                     # checked-in allowlist
     rbgp-lint --json-out report.json
     rbgp-lint --rules               # describe the rule set
     rbgp-lint --write-baseline b.json && rbgp-lint --baseline b.json

   Exit codes: 0 clean, 1 findings, 2 configuration error. *)

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  (tm.Unix.tm_year + 1900, tm.Unix.tm_mon + 1, tm.Unix.tm_mday)

let cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "rbgp-lint" ~version:"1.0.0" ~doc:Rbgp_lint.Cli.doc)
    (Rbgp_lint.Cli.term ~today:(today ()))

let () = exit (Cmdliner.Cmd.eval' cmd)
