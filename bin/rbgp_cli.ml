(* Command-line driver: run experiments, single simulations, or the
   streaming partition service.

     rbgp exp e3                 run experiment E3
     rbgp exp all --quick        quick pass over the whole suite
     rbgp sim --alg onl-static --workload rotating --n 256 --ell 8
     rbgp trace --workload uniform --n 256 --steps 10000 --out t.rbt --format bin
     rbgp serve --alg onl-dynamic --n 256 --ell 8 --trace t.rbt
     cat t.txt | rbgp serve --n 256 --ell 8       # stream from a pipe
     rbgp resume --from run.ckpt --trace t.rbt --skip-prefix
     rbgp checkpoint run.ckpt                     # inspect a snapshot
*)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging of algorithm events.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sizes, for smoke runs.")

let domains_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some d when d >= 1 -> Ok d
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Number of domains (cores) used to fan experiment cells out and \
           to pre-solve batched serve requests (see --batch). Defaults to \
           \\$(b,RBGP_DOMAINS) or the machine's recommended domain count; \
           results are byte-identical for any value.")

let grain_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some g when g >= 1 -> Ok g
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "grain" ] ~docv:"G"
        ~doc:
          "Work-pool scheduling grain: how many grid cells a domain claims \
           per trip to the shared cursor.  Defaults to \\$(b,RBGP_GRAIN) or \
           an automatic per-job value (about eight chunks per domain); the \
           grain changes the schedule, never the results.")

(* --- exp ------------------------------------------------------------ *)

let exp_ids = "all" :: List.map (fun (id, _, _) -> id) Rbgp_harness.Report.all

let exp_id_arg =
  let doc =
    Printf.sprintf "Experiment id (%s)." (String.concat ", " exp_ids)
  in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun i -> (i, i)) exp_ids))) None
    & info [] ~docv:"EXPERIMENT" ~doc)

let exp_cmd =
  let run id quick seed domains grain verbose =
    setup_logs verbose;
    Rbgp_util.Pool.set_domains domains;
    Rbgp_util.Pool.set_grain grain;
    Rbgp_harness.Report.run ~quick ~seed id
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run one of the E1-E13 experiments (see DESIGN.md).")
    Term.(
      const run $ exp_id_arg $ quick_arg $ seed_arg $ domains_arg $ grain_arg
      $ verbose_arg)

(* --- sim ------------------------------------------------------------ *)

let alg_names =
  [ "onl-dynamic"; "onl-static"; "never-move"; "greedy-colocate";
    "counter-threshold"; "static-oracle" ]

let workload_trace ~workload ~n ~steps rng =
  match workload with
  | "uniform" -> Rbgp_workloads.Workloads.uniform ~n ~steps rng
  | "hotspot" -> Rbgp_workloads.Workloads.hotspot ~n ~steps rng
  | "rotating" -> Rbgp_workloads.Workloads.rotating ~n ~steps rng
  | "allreduce" -> Rbgp_workloads.Workloads.allreduce ~n ~steps
  | "zipf" -> Rbgp_workloads.Workloads.zipf ~n ~steps rng
  | "piecewise" -> Rbgp_workloads.Workloads.piecewise_static ~n ~steps rng
  | "cut-chaser" -> Rbgp_workloads.Workloads.adversary_cut_chaser ~n
  | w -> invalid_arg ("unknown workload " ^ w)

let sim alg workload n ell steps epsilon seed verbose trace_file save_trace show =
  setup_logs verbose;
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let rng = Rbgp_util.Rng.create seed in
  let trace_t =
    match trace_file with
    | Some path ->
        Rbgp_ring.Trace.fixed (Rbgp_workloads.Trace_io.load ~path ~n)
    | None -> workload_trace ~workload ~n ~steps rng
  in
  let tarr =
    match trace_t with Rbgp_ring.Trace.Fixed a -> a | _ -> [||]
  in
  let steps = min steps (if Array.length tarr > 0 then Array.length tarr else steps) in
  (match save_trace with
  | Some path when Array.length tarr > 0 ->
      Rbgp_workloads.Trace_io.save ~path
        ~comment:(Printf.sprintf "workload=%s n=%d seed=%d" workload n seed)
        tarr;
      Printf.printf "trace saved to %s\n" path
  | Some _ -> prerr_endline "cannot save an adaptive trace"
  | None -> ());
  let online =
    match alg with
    | "onl-dynamic" ->
        Rbgp_core.Dynamic_alg.online
          (Rbgp_core.Dynamic_alg.create ~epsilon inst (Rbgp_util.Rng.split rng))
    | "onl-static" ->
        Rbgp_core.Static_alg.online
          (Rbgp_core.Static_alg.create ~epsilon inst (Rbgp_util.Rng.split rng))
    | "never-move" -> Rbgp_baselines.Baselines.never_move inst
    | "greedy-colocate" -> Rbgp_baselines.Baselines.greedy_colocate inst
    | "counter-threshold" ->
        Rbgp_baselines.Baselines.counter_threshold ~epsilon inst
    | "static-oracle" ->
        if Array.length tarr = 0 then
          invalid_arg "static-oracle needs an oblivious workload";
        Rbgp_baselines.Baselines.static_oracle inst ~trace:tarr
    | a -> invalid_arg ("unknown algorithm " ^ a)
  in
  let r = Rbgp_ring.Simulator.run inst online trace_t ~steps in
  Printf.printf "%s on %s (n=%d ell=%d k=%d steps=%d seed=%d)\n" alg workload n
    ell inst.Rbgp_ring.Instance.k steps seed;
  Printf.printf "  cost: %s\n" (Rbgp_ring.Cost.to_string r.Rbgp_ring.Simulator.cost);
  Printf.printf "  max load: %d (capacity %d, claimed augmentation %.2f)\n"
    r.Rbgp_ring.Simulator.max_load inst.Rbgp_ring.Instance.k
    online.Rbgp_ring.Online.augmentation;
  if show then begin
    Printf.printf "  final assignment (server per process, '|' = cut):\n%s"
      (Rbgp_ring.Render.assignment (online.Rbgp_ring.Online.assignment ()));
    Printf.printf "  loads: %s\n"
      (Rbgp_ring.Render.loads (online.Rbgp_ring.Online.assignment ()))
  end;
  if Array.length tarr > 0 && n > inst.Rbgp_ring.Instance.k then begin
    let sopt = Rbgp_offline.Static_opt.segmented inst tarr in
    let dlb = Rbgp_offline.Lower_bound.dynamic_lb inst tarr () in
    Printf.printf "  static OPT (segmented): %d   dynamic OPT lower bound: %d\n"
      sopt.Rbgp_offline.Static_opt.total dlb
  end

let enum_of l = Arg.enum (List.map (fun x -> (x, x)) l)

let sim_cmd =
  let alg =
    Arg.(
      value
      & opt (enum_of alg_names) "onl-dynamic"
      & info [ "alg" ] ~docv:"ALG" ~doc:"Algorithm to run.")
  in
  let workload =
    Arg.(
      value
      & opt
          (enum_of
             [ "uniform"; "hotspot"; "rotating"; "allreduce"; "zipf";
               "piecewise"; "cut-chaser" ])
          "uniform"
      & info [ "workload" ] ~docv:"W" ~doc:"Workload generator.")
  in
  let n = Arg.(value & opt int 256 & info [ "n" ] ~doc:"Number of processes.") in
  let ell = Arg.(value & opt int 8 & info [ "ell" ] ~doc:"Number of servers.") in
  let steps = Arg.(value & opt int 20_000 & info [ "steps" ] ~doc:"Requests.") in
  let epsilon =
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"Augmentation slack.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-file" ] ~docv:"FILE"
          ~doc:"Read the request trace from FILE (one edge per line).")
  in
  let save_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"Write the generated trace to FILE.")
  in
  let show =
    Arg.(
      value & flag
      & info [ "show" ] ~doc:"Render the final assignment as ASCII art.")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a single algorithm on a single workload.")
    Term.(
      const sim $ alg $ workload $ n $ ell $ steps $ epsilon $ seed_arg
      $ verbose_arg $ trace_file $ save_trace $ show)

(* --- serve / resume ------------------------------------------------- *)

module Engine = Rbgp_serve.Engine
module Metrics = Rbgp_serve.Metrics
module Ckpt = Rbgp_serve.Checkpoint
module Source = Rbgp_serve.Source
module Fault = Rbgp_serve.Fault
module Net = Rbgp_serve.Net
module Tenant = Rbgp_serve.Tenant
module Proto = Rbgp_serve.Proto

(* --faults wins over RBGP_FAULTS; with neither, hooks stay disabled. *)
let configure_faults = function
  | Some spec -> Fault.configure spec
  | None -> Fault.configure_from_env ()

let format_conv =
  Arg.enum [ ("auto", `Auto); ("text", `Text); ("bin", `Binary) ]

let accounting_conv =
  Arg.enum
    [ ("auto", `Auto); ("incremental", `Incremental); ("diff", `Diff);
      ("check", `Check) ]

let open_source ~trace ~format ~mmap ~n =
  match trace with
  | "-" ->
      let format = match format with `Auto -> `Text | (`Text | `Binary) as f -> f in
      Source.of_channel ~path:"<stdin>" ~format ~n stdin
  | path -> Source.open_file ~format ~mmap ~n path

(* The serving loop shared by [serve] and [resume]: pull requests until
   the source dries up (or --stop-after), emit one JSONL decision per
   request, embed a metrics record every N requests, keep a rolling
   checkpoint, dump metrics on SIGUSR1 and at exit. *)
let serve_loop engine source ~decisions ~metrics_every ~checkpoint_path
    ~checkpoint_every ~checkpoint_keep ~stop_after ~batch =
  let m = Engine.metrics engine in
  (try
     Sys.set_signal Sys.sigusr1
       (Sys.Signal_handle
          (fun _ ->
            prerr_endline (Metrics.summary m);
            flush stderr))
   with Invalid_argument _ | Sys_error _ -> ());
  let write_ckpt () =
    match checkpoint_path with
    | Some path ->
        if checkpoint_keep > 1 then
          Ckpt.write_rolling ~path ~keep:checkpoint_keep
            (Engine.checkpoint engine)
        else Ckpt.write ~path (Engine.checkpoint engine)
    | None -> ()
  in
  (* a cadence boundary (metrics-every / checkpoint-every) fires when a
     batch crosses a multiple of N; with --batch 1 this is exactly the old
     [pos mod N = 0] behaviour *)
  let crossed every ~before ~after =
    every > 0 && after / every > before / every
  in
  let buf = Array.make (Stdlib.max 1 batch) 0 in
  (* full batches go to the engine without the defensive copy — on the
     mmap source that makes the whole pull-to-solve path allocation-free *)
  let batch_view got = if got = Array.length buf then buf else Array.sub buf 0 got in
  let served = ref 0 in
  let continue = ref true in
  while !continue do
    let want =
      let cap = Array.length buf in
      match stop_after with
      | Some s -> Stdlib.min cap (s - !served)
      | None -> cap
    in
    if want <= 0 then continue := false
    else begin
      let got = Source.next_batch source buf ~limit:want in
      if got = 0 then continue := false
      else begin
        let before = Engine.pos engine in
        let edges = batch_view got in
        if decisions then
          Array.iter
            (fun d -> print_endline (Engine.decision_to_json d))
            (Engine.ingest_batch engine edges)
        else Engine.ingest_batch_quiet engine edges;
        served := !served + got;
        let after = Engine.pos engine in
        if crossed metrics_every ~before ~after then
          print_endline (Metrics.to_json m);
        if crossed checkpoint_every ~before ~after then write_ckpt ()
      end
    end
  done;
  write_ckpt ();
  print_endline (Metrics.to_json m);
  print_endline (Engine.result_to_json engine);
  flush stdout;
  prerr_endline (Metrics.summary m)

(* Consume the already-served prefix of a source that replays the stream
   from the beginning, verifying it against the checkpoint request for
   request.  Verified in blocks: one next_batch pull per chunk instead of
   one closure dispatch per already-served request. *)
let consume_prefix source (ckpt : Ckpt.t) =
  let prefix = ckpt.Ckpt.prefix in
  let total = Array.length prefix in
  let chunk = Array.make (Stdlib.min 8192 (Stdlib.max 1 total)) 0 in
  let at = ref 0 in
  while !at < total do
    let want = Stdlib.min (Array.length chunk) (total - !at) in
    let got = Source.next_batch source chunk ~limit:want in
    if got = 0 then
      failwith
        (Printf.sprintf
           "resume: trace ends at request %d but the checkpoint already \
            served %d requests"
           !at ckpt.Ckpt.pos);
    for j = 0 to got - 1 do
      if chunk.(j) <> prefix.(!at + j) then
        failwith
          (Printf.sprintf
             "resume: trace diverges from checkpoint at request %d (trace \
              has %d, checkpoint served %d)"
             (!at + j) chunk.(j)
             prefix.(!at + j))
    done;
    at := !at + got
  done

(* Supervised serving: run the loop, and on an engine / decode /
   sanitizer / injected failure restore the newest checkpoint generation
   that verifies, replay its verified prefix from the reopened trace, and
   continue — with bounded exponential backoff between restarts so a
   persistently failing source cannot spin.  Only failures the recovery
   machinery is built for are caught (named exception list below); anything
   else escapes to the top level untouched. *)
let supervised_serve ~alg ~accounting ~epsilon ~seed ~inst ~trace ~format
    ~mmap ~n ~decisions ~metrics_every ~checkpoint_path ~checkpoint_every
    ~checkpoint_keep ~stop_after ~batch ~budget_ns ~cooloff =
  let ckpt_path =
    match checkpoint_path with
    | Some p -> p
    | None -> invalid_arg "serve: --supervise requires --checkpoint"
  in
  if trace = "-" then
    invalid_arg
      "serve: --supervise needs a re-openable --trace file, not stdin";
  let max_restarts = 16 in
  let restarts = ref 0 in
  let rec attempt () =
    let engine, recovered =
      if !restarts = 0 then
        (Engine.create ~accounting ~epsilon ~alg ~seed inst, None)
      else
        match Ckpt.read_latest ~path:ckpt_path () with
        | r ->
            List.iter
              (fun (p, msg) ->
                Logs.warn (fun k ->
                    k "supervise: skipped checkpoint generation %s: %s" p msg))
              r.Ckpt.skipped;
            Logs.warn (fun k ->
                k "supervise: restored generation %d at request %d"
                  r.Ckpt.generation r.Ckpt.ckpt.Ckpt.pos);
            (Engine.resume ~accounting r.Ckpt.ckpt, Some r.Ckpt.ckpt)
        | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
            Logs.warn (fun k ->
                k "supervise: no verifiable checkpoint (%s); starting fresh"
                  msg);
            (Engine.create ~accounting ~epsilon ~alg ~seed inst, None)
    in
    Engine.set_solver_budget engine ~budget_ns ~cooloff;
    let source = open_source ~trace ~format ~mmap ~n in
    match
      Fun.protect
        ~finally:(fun () -> Source.close source)
        (fun () ->
          (match recovered with
          | Some ckpt -> consume_prefix source ckpt
          | None -> ());
          (* --stop-after counts the whole run, so a restarted attempt
             only serves what the restored engine has not already seen *)
          let stop_after =
            Option.map
              (fun s -> Stdlib.max 0 (s - Engine.pos engine))
              stop_after
          in
          serve_loop engine source ~decisions ~metrics_every
            ~checkpoint_path ~checkpoint_every ~checkpoint_keep ~stop_after
            ~batch)
    with
    | () -> ()
    | exception
        (( Fault.Injected_crash _ | Failure _ | Invalid_argument _
         | Sys_error _ | End_of_file
         | Unix.Unix_error _ ) as e)
      when !restarts < max_restarts ->
        incr restarts;
        Logs.warn (fun k ->
            k "supervise: attempt failed (%s); restart %d/%d"
              (Printexc.to_string e) !restarts max_restarts);
        Unix.sleepf
          (Stdlib.min (0.005 *. (2. ** float_of_int (!restarts - 1))) 0.5);
        attempt ()
  in
  attempt ()

let trace_arg =
  Arg.(
    value & opt string "-"
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Request source: a trace file (text or framed binary), or '-' for \
           stdin (the default) so requests can be piped in as they arrive.")

let format_arg =
  Arg.(
    value & opt format_conv `Auto
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Trace format: auto (detect by magic bytes; text for stdin), text \
           (one edge per line) or bin (framed binary, see DESIGN.md).")

let mmap_conv = Arg.enum [ ("auto", `Auto); ("on", `On); ("off", `Off) ]

let mmap_arg =
  Arg.(
    value & opt mmap_conv `Auto
    & info [ "mmap" ] ~docv:"MODE"
        ~doc:
          "Zero-copy trace replay: auto (default: mmap regular binary trace \
           files, stream everything else), on (require the mmap path; fails \
           on pipes), off (always stream through a channel).  Both paths \
           produce identical decisions, costs and checkpoints.")

let accounting_arg =
  Arg.(
    value & opt accounting_conv `Auto
    & info [ "accounting" ] ~docv:"MODE"
        ~doc:
          "Cost accounting mode: auto, incremental (require move journal), \
           diff (full scans), or check (incremental verified against the \
           full-scan oracle).")

let decisions_arg =
  Arg.(
    value & flag
    & info [ "no-decisions" ]
        ~doc:
          "Suppress per-request JSONL decision records (metrics and the \
           final result record are still emitted) — useful for raw \
           throughput measurements.")

let metrics_every_arg =
  Arg.(
    value & opt int 1000
    & info [ "metrics-every" ] ~docv:"N"
        ~doc:
          "Embed a metrics record in the JSONL stream every N requests \
           (0 disables).")

let checkpoint_path_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Write a snapshot to FILE at exit (and every N requests with \
              --checkpoint-every).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Refresh the --checkpoint snapshot every N requests (0: only \
              at exit).")

let stop_after_arg =
  Arg.(
    value & opt (some int) None
    & info [ "stop-after" ] ~docv:"N"
        ~doc:"Stop serving after N requests even if the source has more \
              (e.g. to take a mid-stream checkpoint).")

let batch_arg =
  Arg.(
    value & opt int 1
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Ingest up to N requests per engine call (default 1).  Batching \
           lets interval-sharded algorithms pre-solve requests in parallel \
           across domains (see --domains); decisions, costs and \
           checkpoints are byte-identical to --batch 1.  Metrics and \
           checkpoint cadences are evaluated at batch boundaries.")

let checkpoint_keep_arg =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-keep" ] ~docv:"K"
        ~doc:
          "Keep K rolling checkpoint generations (FILE, FILE.1, ..., \
           FILE.(K-1), newest first); recovery falls back past torn or \
           corrupt generations to the newest one that verifies.  K = 1 \
           (the default) keeps a single atomically-replaced snapshot.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault-injection plan, e.g. \
           'ckpt-tear@3,read-eintr:0.01,solver-stall@5000' (see DESIGN.md \
           for the grammar).  Overrides \\$(b,RBGP_FAULTS).  For testing \
           the recovery machinery; without a plan every hook is disabled.")

let solver_budget_arg =
  Arg.(
    value & opt int 0
    & info [ "solver-budget" ] ~docv:"NS"
        ~doc:
          "Per-request solver budget in nanoseconds (0 disables).  A \
           request whose solve exceeds the budget degrades the engine to \
           the never-move path for --budget-cooloff requests before \
           re-promoting; degraded spans are recorded in metrics and \
           checkpoints, and resume replays them exactly.")

let budget_cooloff_arg =
  Arg.(
    value & opt int 64
    & info [ "budget-cooloff" ] ~docv:"N"
        ~doc:
          "How many requests the engine serves on the degraded never-move \
           path after a solver-budget overrun before re-promoting to the \
           full algorithm.")

(* --- networked serving: rbgp serve --listen -------------------------- *)

let dump_tenant_metrics router =
  List.iter
    (fun tn ->
      match Tenant.metrics_snapshot tn with
      | Some s ->
          Printf.eprintf "[%s] %s\n" (Tenant.id tn)
            (Metrics.summary_of_snapshot s)
      | None -> ())
    (Tenant.tenants router);
  flush stderr

let install_handler signal handler =
  match Sys.set_signal signal (Sys.Signal_handle handler) with
  | () -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let net_serve ~listen ~http ~checkpoint_dir ~checkpoint_every ~checkpoint_keep
    ~accounting ~supervise =
  let addr = Net.parse_addr listen in
  let http = Option.map Net.parse_addr http in
  (match checkpoint_dir with
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        invalid_arg (Printf.sprintf "serve: --checkpoint-dir %s is a file" dir)
  | None -> ());
  let router =
    Tenant.create ?checkpoint_dir ~checkpoint_every ~checkpoint_keep
      ~accounting ()
  in
  let server = Net.server ?http ~supervise ~router addr in
  (* request_drain only sets a flag, so it is safe from a signal
     handler; the next select round performs the actual drain. *)
  install_handler Sys.sigterm (fun _ -> Net.request_drain server);
  install_handler Sys.sigint (fun _ -> Net.request_drain server);
  install_handler Sys.sigusr1 (fun _ -> dump_tenant_metrics router);
  install_handler Sys.sigpipe (fun _ -> ());
  Logs.app (fun k ->
      k "serving on %s%s%s" listen
        (match http with
        | Some a -> Printf.sprintf ", http on %s" (Net.addr_to_string a)
        | None -> "")
        (if supervise then " (supervised)" else ""));
  Net.run server;
  dump_tenant_metrics router

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve over a socket instead of a trace/stdin: listen on ADDR \
           (unix:PATH or tcp:HOST:PORT) speaking the RBGN framed binary \
           protocol, hosting one engine per tenant routed by the frame \
           stream id.  Tenants are configured by clients at OPEN time, so \
           --alg/--n/--ell/--trace do not apply; --checkpoint-dir, \
           --checkpoint-every, --checkpoint-keep, --accounting, --faults \
           and --supervise do.")

let http_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "http" ] ~docv:"ADDR"
        ~doc:
          "With --listen: also expose HTTP observability on ADDR \
           (unix:PATH or tcp:HOST:PORT): GET /metrics (Prometheus text \
           exposition of every tenant), /healthz and /tenants (JSON status \
           including checkpoint age).")

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "With --listen: per-tenant rolling durable checkpoints in DIR \
           (DIR/<tenant>.ckpt), written every --checkpoint-every requests \
           and at close/drain; re-opened tenants resume from the newest \
           generation that verifies.")

(* --- client: drive a networked server -------------------------------- *)

type client_tenant_spec = {
  ct_id : string;
  ct_alg : string;
  ct_n : int;
  ct_ell : int;
  ct_epsilon : float;
  ct_seed : int;
  ct_trace : string;
  ct_out : string option;
}

let parse_tenant_spec s =
  let kvs = String.split_on_char ',' s in
  let find key =
    List.find_map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i when String.equal (String.sub kv 0 i) key ->
            Some (String.sub kv (i + 1) (String.length kv - i - 1))
        | _ -> None)
      kvs
  in
  let int_of key default =
    match find key with
    | Some v -> (
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "tenant spec: bad %s=%s" key v))
    | None -> Ok default
  in
  let float_of key default =
    match find key with
    | Some v -> (
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "tenant spec: bad %s=%s" key v))
    | None -> Ok default
  in
  match (find "id", find "trace") with
  | None, _ -> Error "tenant spec: missing id="
  | _, None -> Error "tenant spec: missing trace="
  | Some id, Some trace -> (
      match (int_of "n" 256, int_of "ell" 8, int_of "seed" 42,
             float_of "epsilon" 0.5)
      with
      | Ok n, Ok ell, Ok seed, Ok epsilon ->
          Ok
            {
              ct_id = id;
              ct_alg = Option.value (find "alg") ~default:"onl-dynamic";
              ct_n = n;
              ct_ell = ell;
              ct_epsilon = epsilon;
              ct_seed = seed;
              ct_trace = trace;
              ct_out = find "out";
            }
      | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _
      | _, _, _, Error e ->
          Error e)

let tenant_spec_conv =
  let parse s =
    match parse_tenant_spec s with Ok t -> Ok t | Error e -> Error (`Msg e)
  in
  let print fmt t = Format.pp_print_string fmt t.ct_id in
  Arg.conv (parse, print)

(* Live client-side state for one tenant stream. *)
type client_tenant = {
  spec : client_tenant_spec;
  stream : int;
  open_payload : Proto.open_payload;
  oc : out_channel;
  mutable src : Source.t option;
  mutable written : int;  (** decision lines already in [oc] *)
  mutable acked : int;  (** requests the server has confirmed *)
  mutable finished : bool;
}

let client_result_json (ct : client_tenant) (c : Proto.closed_payload) =
  Printf.sprintf
    "{\"type\":\"result\",\"alg\":\"%s\",\"requests\":%d,\"comm\":%d,\
     \"mig\":%d,\"total\":%d,\"max_load\":%d,\"violations\":%d}"
    ct.spec.ct_alg c.Proto.closed_pos c.Proto.closed_comm c.Proto.closed_mig
    (c.Proto.closed_comm + c.Proto.closed_mig)
    c.Proto.closed_max_load c.Proto.closed_violations

let skip_requests src count =
  let chunk = Array.make (Stdlib.min 8192 (Stdlib.max 1 count)) 0 in
  let at = ref 0 in
  while !at < count do
    let want = Stdlib.min (Array.length chunk) (count - !at) in
    let got = Source.next_batch src chunk ~limit:want in
    if got = 0 then
      failwith
        (Printf.sprintf
           "client: trace ends at request %d but the server resumes at %d"
           !at count);
    at := !at + got
  done

(* (Re)position a tenant at the server's resume position: re-open the
   trace source and discard the prefix the server has already served.
   Decisions below [written] were already emitted in a previous attempt
   and are skipped on arrival — the engine is deterministic, so the
   replayed lines would be byte-identical anyway (latencies aside). *)
let position_tenant ct ~resume_pos =
  (match ct.src with Some s -> Source.close s | None -> ());
  let src =
    open_source ~trace:ct.spec.ct_trace ~format:`Auto ~mmap:`Auto
      ~n:ct.spec.ct_n
  in
  if resume_pos > 0 then skip_requests src resume_pos;
  ct.src <- Some src;
  ct.acked <- resume_pos

let client_open_all cl tenants =
  List.iter
    (fun ct ->
      if not ct.finished then begin
        let pos = Net.open_stream cl ~stream:ct.stream ct.open_payload in
        position_tenant ct ~resume_pos:pos
      end)
    tenants

let rec client_connect_with_retry ~addr ~attempts =
  match Net.connect addr with
  | cl -> cl
  | exception Net.Disconnected msg when attempts > 1 ->
      Unix.sleepf 0.1;
      Logs.debug (fun k -> k "client: reconnecting (%s)" msg);
      client_connect_with_retry ~addr ~attempts:(attempts - 1)

(* One round for one tenant: pull a batch from its trace, send it, and
   emit any decision lines not already written.  Returns [true] while
   the tenant has more requests. *)
let client_round cl ct ~batch ~quiet ~buf =
  match ct.src with
  | None -> false
  | Some src ->
      let want = Stdlib.min batch (Array.length buf) in
      let got = Source.next_batch src buf ~limit:want in
      if got = 0 then begin
        let closed = Net.close_stream cl ~stream:ct.stream in
        output_string ct.oc (client_result_json ct closed);
        output_char ct.oc '\n';
        flush ct.oc;
        Source.close src;
        ct.src <- None;
        ct.finished <- true;
        false
      end
      else begin
        (if quiet then begin
           let ack = Net.request_quiet cl ~stream:ct.stream buf ~pos:0 ~len:got in
           ct.acked <- ack.Proto.pos
         end
         else begin
           let ds = Net.request cl ~stream:ct.stream buf ~pos:0 ~len:got in
           Array.iter
             (fun (d : Engine.decision) ->
               if d.Engine.step >= ct.written then begin
                 output_string ct.oc (Engine.decision_to_json d);
                 output_char ct.oc '\n';
                 ct.written <- ct.written + 1
               end)
             ds;
           ct.acked <- ct.acked + got
         end);
        true
      end

let run_client ~connect ~tenant_specs ~batch ~quiet ~reconnect ~do_shutdown =
  let addr = Net.parse_addr connect in
  let tenants =
    List.mapi
      (fun i spec ->
        {
          spec;
          stream = i + 1;
          open_payload =
            {
              Proto.tenant = spec.ct_id;
              alg = spec.ct_alg;
              n = spec.ct_n;
              ell = spec.ct_ell;
              epsilon = spec.ct_epsilon;
              seed = spec.ct_seed;
            };
          oc =
            (match spec.ct_out with
            | Some path -> open_out path
            | None -> stdout);
          src = None;
          written = 0;
          acked = 0;
          finished = false;
        })
      tenant_specs
  in
  let buf = Array.make (Stdlib.max 1 batch) 0 in
  let cl = ref (client_connect_with_retry ~addr ~attempts:20) in
  client_open_all !cl tenants;
  let unfinished () = List.exists (fun ct -> not ct.finished) tenants in
  (* Round-robin across tenants, one batch per turn, so concurrent
     tenants genuinely interleave on the one connection. *)
  let reconnects = ref 0 in
  let max_reconnects = 32 in
  let recover msg =
    if (not reconnect) || !reconnects >= max_reconnects then
      failwith (Printf.sprintf "client: connection lost (%s)" msg)
    else begin
      incr reconnects;
      Logs.warn (fun k ->
          k "client: %s; reconnect %d/%d" msg !reconnects max_reconnects);
      Net.close !cl;
      Unix.sleepf (Stdlib.min (0.02 *. (2. ** float_of_int !reconnects)) 0.5);
      cl := client_connect_with_retry ~addr ~attempts:20;
      client_open_all !cl tenants
    end
  in
  while unfinished () do
    match
      List.iter
        (fun ct ->
          if not ct.finished then ignore (client_round !cl ct ~batch ~quiet ~buf))
        tenants
    with
    | () -> ()
    | exception Net.Disconnected msg -> recover msg
    | exception Net.Server_error (code, msg)
      when code = Proto.err_tenant_failed && reconnect ->
        (* Supervised server killed the tenant's engine (injected crash):
           the stream must be re-opened; the server answers with the
           checkpointed position to resume from. *)
        recover (Printf.sprintf "tenant failed: %s" msg)
  done;
  if do_shutdown then begin
    match Net.shutdown_server !cl with
    | () -> ()
    | exception Net.Disconnected _ -> ()
  end
  else Net.close !cl;
  List.iter
    (fun ct ->
      match ct.spec.ct_out with Some _ -> close_out ct.oc | None -> flush ct.oc)
    tenants

let client_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server address (unix:PATH or tcp:HOST:PORT).")
  in
  let tenant_arg =
    Arg.(
      value & opt_all tenant_spec_conv []
      & info [ "tenant" ] ~docv:"SPEC"
          ~doc:
            "One tenant to serve (repeatable): comma-separated key=value \
             pairs id=, trace= (required) and alg=, n=, ell=, epsilon=, \
             seed=, out= (optional).  Requests are read from the trace \
             file, served over the connection, and decision/result JSONL \
             is written to out= (default stdout) — byte-compatible with \
             pipe-mode $(b,rbgp serve) output.")
  in
  let batch_arg =
    Arg.(
      value & opt int 512
      & info [ "batch" ] ~docv:"N"
          ~doc:"Requests per frame (one in-flight frame per tenant).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:
            "Quiet ingest: servers ack whole batches with aggregate \
             totals instead of per-request decisions (the --no-decisions \
             of the wire).")
  in
  let reconnect_arg =
    Arg.(
      value & flag
      & info [ "reconnect" ]
          ~doc:
            "On connection loss or a supervised tenant failure, reconnect \
             with bounded backoff, re-open every stream and resume from \
             the server's checkpointed position (duplicate decisions are \
             suppressed client-side).")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:
            "After all tenants finish (or immediately with no --tenant), \
             ask the server to drain gracefully and stop.")
  in
  let run connect tenant_specs batch quiet reconnect shutdown verbose =
    setup_logs verbose;
    run_client ~connect ~tenant_specs ~batch ~quiet ~reconnect
      ~do_shutdown:shutdown
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Drive a networked rbgp server: open one stream per tenant over \
          a single connection, replay trace files through it, write the \
          decision/result JSONL locally, and optionally reconnect-resume \
          across server crashes.")
    Term.(
      const run $ connect_arg $ tenant_arg $ batch_arg $ quiet_arg
      $ reconnect_arg $ shutdown_arg $ verbose_arg)

let serve_cmd =
  let alg_arg =
    Arg.(
      value
      & opt (enum_of Rbgp_serve.Registry.names) "onl-dynamic"
      & info [ "alg" ] ~docv:"ALG" ~doc:"Algorithm to serve with.")
  in
  let n = Arg.(value & opt int 256 & info [ "n" ] ~doc:"Number of processes.") in
  let ell = Arg.(value & opt int 8 & info [ "ell" ] ~doc:"Number of servers.") in
  let epsilon =
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"Augmentation slack.")
  in
  let supervise_arg =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Supervised serving: catch engine, decode and sanitizer \
             failures, restore the newest checkpoint generation that \
             verifies, replay the verified prefix and continue, with \
             bounded exponential backoff between restarts.  Requires \
             --checkpoint and a re-openable --trace file (not stdin).")
  in
  let run alg n ell epsilon seed trace format mmap accounting no_decisions
      metrics_every checkpoint_path checkpoint_every checkpoint_keep
      stop_after batch domains faults solver_budget budget_cooloff supervise
      listen http checkpoint_dir verbose =
    setup_logs verbose;
    Rbgp_util.Pool.set_domains domains;
    configure_faults faults;
    match listen with
    | Some listen ->
        net_serve ~listen ~http ~checkpoint_dir ~checkpoint_every
          ~checkpoint_keep ~accounting ~supervise
    | None ->
    let inst = Rbgp_ring.Instance.blocks ~n ~ell in
    if supervise then
      supervised_serve ~alg ~accounting ~epsilon ~seed ~inst ~trace ~format
        ~mmap ~n ~decisions:(not no_decisions) ~metrics_every
        ~checkpoint_path ~checkpoint_every ~checkpoint_keep ~stop_after
        ~batch ~budget_ns:solver_budget ~cooloff:budget_cooloff
    else begin
      let engine = Engine.create ~accounting ~epsilon ~alg ~seed inst in
      Engine.set_solver_budget engine ~budget_ns:solver_budget
        ~cooloff:budget_cooloff;
      let source = open_source ~trace ~format ~mmap ~n in
      Fun.protect
        ~finally:(fun () -> Source.close source)
        (fun () ->
          serve_loop engine source ~decisions:(not no_decisions)
            ~metrics_every ~checkpoint_path ~checkpoint_every
            ~checkpoint_keep ~stop_after ~batch)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Stream requests through an algorithm: one JSONL decision per \
          request, live metrics, optional rolling checkpoints, fault \
          injection and supervised crash recovery.")
    Term.(
      const run $ alg_arg $ n $ ell $ epsilon $ seed_arg $ trace_arg
      $ format_arg $ mmap_arg $ accounting_arg $ decisions_arg
      $ metrics_every_arg $ checkpoint_path_arg $ checkpoint_every_arg
      $ checkpoint_keep_arg $ stop_after_arg $ batch_arg $ domains_arg
      $ faults_arg $ solver_budget_arg $ budget_cooloff_arg $ supervise_arg
      $ listen_arg $ http_arg $ checkpoint_dir_arg $ verbose_arg)

let resume_cmd =
  let from_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"CKPT" ~doc:"Checkpoint file to resume from.")
  in
  let skip_prefix_arg =
    Arg.(
      value & flag
      & info [ "skip-prefix" ]
          ~doc:
            "The trace source contains the stream from the beginning: \
             consume the already-served prefix first, verifying it matches \
             the checkpoint request for request.")
  in
  let run from trace format mmap accounting skip_prefix no_decisions
      metrics_every checkpoint_path checkpoint_every checkpoint_keep
      stop_after batch domains faults solver_budget budget_cooloff verbose =
    setup_logs verbose;
    Rbgp_util.Pool.set_domains domains;
    configure_faults faults;
    let ckpt = Ckpt.read ~path:from in
    let engine = Engine.resume ~accounting ckpt in
    Engine.set_solver_budget engine ~budget_ns:solver_budget
      ~cooloff:budget_cooloff;
    let source = open_source ~trace ~format ~mmap ~n:ckpt.Ckpt.n in
    Fun.protect
      ~finally:(fun () -> Source.close source)
      (fun () ->
        if skip_prefix then consume_prefix source ckpt;
        serve_loop engine source ~decisions:(not no_decisions) ~metrics_every
          ~checkpoint_path ~checkpoint_every ~checkpoint_keep ~stop_after
          ~batch)
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume a checkpointed serving run (explicit state restore when \
          the algorithm supports it, deterministic prefix replay \
          otherwise; both verified against the snapshot).")
    Term.(
      const run $ from_arg $ trace_arg $ format_arg $ mmap_arg
      $ accounting_arg $ skip_prefix_arg $ decisions_arg $ metrics_every_arg
      $ checkpoint_path_arg $ checkpoint_every_arg $ checkpoint_keep_arg
      $ stop_after_arg $ batch_arg $ domains_arg $ faults_arg
      $ solver_budget_arg $ budget_cooloff_arg $ verbose_arg)

let checkpoint_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CKPT"
          ~doc:
            "Checkpoint file to inspect — or the literal word 'verify' \
             followed by the file, to check it (CRC trailer, header, full \
             decode) and exit 0 if valid, 1 if not.")
  in
  let second_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"CKPT" ~doc:"With 'verify': the checkpoint to check.")
  in
  let run first second =
    match (first, second) with
    | "verify", Some path -> (
        match Ckpt.verify ~path with
        | Ok t ->
            Printf.printf "%s: ok (%s, n=%d, ell=%d, pos %d)\n" path
              t.Ckpt.alg t.Ckpt.n t.Ckpt.ell t.Ckpt.pos
        | Error msg ->
            Printf.eprintf "%s: INVALID: %s\n" path msg;
            Stdlib.exit 1)
    | "verify", None ->
        prerr_endline "checkpoint verify: missing checkpoint file argument";
        Stdlib.exit 2
    | file, None -> print_endline (Ckpt.to_json (Ckpt.read ~path:file))
    | _, Some extra ->
        Printf.eprintf "checkpoint: unexpected extra argument %s\n" extra;
        Stdlib.exit 2
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Describe a checkpoint file as a JSON record, or verify its \
          integrity ('rbgp checkpoint verify FILE').")
    Term.(const run $ file_arg $ second_arg)

(* --- trace: generate / convert -------------------------------------- *)

let trace_cmd =
  let workload =
    Arg.(
      value
      & opt
          (enum_of
             [ "uniform"; "hotspot"; "rotating"; "allreduce"; "zipf";
               "piecewise" ])
          "uniform"
      & info [ "workload" ] ~docv:"W"
          ~doc:"Workload generator (oblivious generators only).")
  in
  let n = Arg.(value & opt int 256 & info [ "n" ] ~doc:"Number of processes.") in
  let ell =
    Arg.(
      value & opt int 0
      & info [ "ell" ] ~doc:"Server count recorded in the binary header \
                             (0: unspecified).")
  in
  let steps = Arg.(value & opt int 10_000 & info [ "steps" ] ~doc:"Requests.") in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let convert_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "convert" ] ~docv:"FILE"
          ~doc:
            "Convert FILE (text or binary, auto-detected) instead of \
             generating a workload; --n must match the trace.")
  in
  let out_format_arg =
    Arg.(
      value & opt format_conv `Auto
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: text, bin, or auto (bin iff the output path \
             ends in .rbt).")
  in
  let run workload n ell steps seed convert out format =
    let format =
      match format with
      | (`Text | `Binary) as f -> f
      | `Auto -> if Filename.check_suffix out ".rbt" then `Binary else `Text
    in
    let trace, ell, seed, comment =
      match convert with
      | Some path ->
          let comment = Printf.sprintf "converted from %s (n=%d)" path n in
          if Rbgp_workloads.Trace_codec.looks_binary ~path then begin
            let hdr = Rbgp_workloads.Trace_codec.read_header ~path in
            ( Rbgp_workloads.Trace_codec.read ~path ~n,
              hdr.Rbgp_workloads.Trace_codec.ell,
              hdr.Rbgp_workloads.Trace_codec.seed,
              comment )
          end
          else (Rbgp_workloads.Trace_io.load ~path ~n, ell, seed, comment)
      | None -> (
          let rng = Rbgp_util.Rng.create seed in
          let comment =
            Printf.sprintf "workload=%s n=%d seed=%d" workload n seed
          in
          match workload_trace ~workload ~n ~steps rng with
          | Rbgp_ring.Trace.Fixed a -> (a, ell, seed, comment)
          | Rbgp_ring.Trace.Adaptive _ ->
              invalid_arg "trace: adaptive workloads cannot be exported")
    in
    (match format with
    | `Text -> Rbgp_workloads.Trace_io.save ~path:out ~comment trace
    | `Binary ->
        Rbgp_workloads.Trace_codec.write ~path:out ~n ~ell ~seed trace);
    Printf.printf "wrote %d requests to %s (%s)\n" (Array.length trace) out
      (match format with `Text -> "text" | `Binary -> "binary")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Generate a request trace file, or convert one between the text \
          and framed binary formats.")
    Term.(
      const run $ workload $ n $ ell $ steps $ seed_arg $ convert_arg
      $ out_arg $ out_format_arg)

(* --- lint: repo-specific static analysis ----------------------------- *)

let lint_cmd =
  let today =
    let tm = Unix.localtime (Unix.time ()) in
    (tm.Unix.tm_year + 1900, tm.Unix.tm_mon + 1, tm.Unix.tm_mday)
  in
  let exit_nonzero code = if code <> 0 then Stdlib.exit code in
  Cmd.v
    (Cmd.info "lint" ~doc:Rbgp_lint.Cli.doc)
    Term.(const exit_nonzero $ Rbgp_lint.Cli.term ~today)

let main =
  Cmd.group
    (Cmd.info "rbgp" ~version:"1.0.0"
       ~doc:
         "Online balanced graph partitioning for ring demands (SPAA 2023 \
          reproduction).")
    [ exp_cmd; sim_cmd; serve_cmd; client_cmd; resume_cmd; checkpoint_cmd;
      trace_cmd; lint_cmd ]

let () = exit (Cmd.eval main)
