(* Command-line driver: run experiments or single simulations.

     rbgp exp e3                 run experiment E3
     rbgp exp all --quick        quick pass over the whole suite
     rbgp sim --alg onl-static --workload rotating --n 256 --ell 8
*)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging of algorithm events.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sizes, for smoke runs.")

let domains_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some d when d >= 1 -> Ok d
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Number of domains (cores) used to fan experiment cells out. \
           Defaults to \\$(b,RBGP_DOMAINS) or the machine's recommended \
           domain count; results are byte-identical for any value.")

let grain_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some g when g >= 1 -> Ok g
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "grain" ] ~docv:"G"
        ~doc:
          "Work-pool scheduling grain: how many grid cells a domain claims \
           per trip to the shared cursor.  Defaults to \\$(b,RBGP_GRAIN) or \
           an automatic per-job value (about eight chunks per domain); the \
           grain changes the schedule, never the results.")

(* --- exp ------------------------------------------------------------ *)

let exp_ids = "all" :: List.map (fun (id, _, _) -> id) Rbgp_harness.Report.all

let exp_id_arg =
  let doc =
    Printf.sprintf "Experiment id (%s)." (String.concat ", " exp_ids)
  in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun i -> (i, i)) exp_ids))) None
    & info [] ~docv:"EXPERIMENT" ~doc)

let exp_cmd =
  let run id quick seed domains grain verbose =
    setup_logs verbose;
    Rbgp_util.Pool.set_domains domains;
    Rbgp_util.Pool.set_grain grain;
    Rbgp_harness.Report.run ~quick ~seed id
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run one of the E1-E13 experiments (see DESIGN.md).")
    Term.(
      const run $ exp_id_arg $ quick_arg $ seed_arg $ domains_arg $ grain_arg
      $ verbose_arg)

(* --- sim ------------------------------------------------------------ *)

let alg_names =
  [ "onl-dynamic"; "onl-static"; "never-move"; "greedy-colocate";
    "counter-threshold"; "static-oracle" ]

let sim alg workload n ell steps epsilon seed verbose trace_file save_trace show =
  setup_logs verbose;
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let rng = Rbgp_util.Rng.create seed in
  let trace_t =
    match trace_file with
    | Some path ->
        Rbgp_ring.Trace.fixed (Rbgp_workloads.Trace_io.load ~path ~n)
    | None ->
    match workload with
    | "uniform" -> Rbgp_workloads.Workloads.uniform ~n ~steps rng
    | "hotspot" -> Rbgp_workloads.Workloads.hotspot ~n ~steps rng
    | "rotating" -> Rbgp_workloads.Workloads.rotating ~n ~steps rng
    | "allreduce" -> Rbgp_workloads.Workloads.allreduce ~n ~steps
    | "zipf" -> Rbgp_workloads.Workloads.zipf ~n ~steps rng
    | "piecewise" -> Rbgp_workloads.Workloads.piecewise_static ~n ~steps rng
    | "cut-chaser" -> Rbgp_workloads.Workloads.adversary_cut_chaser ~n
    | w -> invalid_arg ("unknown workload " ^ w)
  in
  let tarr =
    match trace_t with Rbgp_ring.Trace.Fixed a -> a | _ -> [||]
  in
  let steps = min steps (if Array.length tarr > 0 then Array.length tarr else steps) in
  (match save_trace with
  | Some path when Array.length tarr > 0 ->
      Rbgp_workloads.Trace_io.save ~path
        ~comment:(Printf.sprintf "workload=%s n=%d seed=%d" workload n seed)
        tarr;
      Printf.printf "trace saved to %s\n" path
  | Some _ -> prerr_endline "cannot save an adaptive trace"
  | None -> ());
  let online =
    match alg with
    | "onl-dynamic" ->
        Rbgp_core.Dynamic_alg.online
          (Rbgp_core.Dynamic_alg.create ~epsilon inst (Rbgp_util.Rng.split rng))
    | "onl-static" ->
        Rbgp_core.Static_alg.online
          (Rbgp_core.Static_alg.create ~epsilon inst (Rbgp_util.Rng.split rng))
    | "never-move" -> Rbgp_baselines.Baselines.never_move inst
    | "greedy-colocate" -> Rbgp_baselines.Baselines.greedy_colocate inst
    | "counter-threshold" ->
        Rbgp_baselines.Baselines.counter_threshold ~epsilon inst
    | "static-oracle" ->
        if Array.length tarr = 0 then
          invalid_arg "static-oracle needs an oblivious workload";
        Rbgp_baselines.Baselines.static_oracle inst ~trace:tarr
    | a -> invalid_arg ("unknown algorithm " ^ a)
  in
  let r = Rbgp_ring.Simulator.run inst online trace_t ~steps in
  Printf.printf "%s on %s (n=%d ell=%d k=%d steps=%d seed=%d)\n" alg workload n
    ell inst.Rbgp_ring.Instance.k steps seed;
  Printf.printf "  cost: %s\n" (Rbgp_ring.Cost.to_string r.Rbgp_ring.Simulator.cost);
  Printf.printf "  max load: %d (capacity %d, claimed augmentation %.2f)\n"
    r.Rbgp_ring.Simulator.max_load inst.Rbgp_ring.Instance.k
    online.Rbgp_ring.Online.augmentation;
  if show then begin
    Printf.printf "  final assignment (server per process, '|' = cut):\n%s"
      (Rbgp_ring.Render.assignment (online.Rbgp_ring.Online.assignment ()));
    Printf.printf "  loads: %s\n"
      (Rbgp_ring.Render.loads (online.Rbgp_ring.Online.assignment ()))
  end;
  if Array.length tarr > 0 && n > inst.Rbgp_ring.Instance.k then begin
    let sopt = Rbgp_offline.Static_opt.segmented inst tarr in
    let dlb = Rbgp_offline.Lower_bound.dynamic_lb inst tarr () in
    Printf.printf "  static OPT (segmented): %d   dynamic OPT lower bound: %d\n"
      sopt.Rbgp_offline.Static_opt.total dlb
  end

let enum_of l = Arg.enum (List.map (fun x -> (x, x)) l)

let sim_cmd =
  let alg =
    Arg.(
      value
      & opt (enum_of alg_names) "onl-dynamic"
      & info [ "alg" ] ~docv:"ALG" ~doc:"Algorithm to run.")
  in
  let workload =
    Arg.(
      value
      & opt
          (enum_of
             [ "uniform"; "hotspot"; "rotating"; "allreduce"; "zipf";
               "piecewise"; "cut-chaser" ])
          "uniform"
      & info [ "workload" ] ~docv:"W" ~doc:"Workload generator.")
  in
  let n = Arg.(value & opt int 256 & info [ "n" ] ~doc:"Number of processes.") in
  let ell = Arg.(value & opt int 8 & info [ "ell" ] ~doc:"Number of servers.") in
  let steps = Arg.(value & opt int 20_000 & info [ "steps" ] ~doc:"Requests.") in
  let epsilon =
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"Augmentation slack.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-file" ] ~docv:"FILE"
          ~doc:"Read the request trace from FILE (one edge per line).")
  in
  let save_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"Write the generated trace to FILE.")
  in
  let show =
    Arg.(
      value & flag
      & info [ "show" ] ~doc:"Render the final assignment as ASCII art.")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a single algorithm on a single workload.")
    Term.(
      const sim $ alg $ workload $ n $ ell $ steps $ epsilon $ seed_arg
      $ verbose_arg $ trace_file $ save_trace $ show)

let main =
  Cmd.group
    (Cmd.info "rbgp" ~version:"1.0.0"
       ~doc:
         "Online balanced graph partitioning for ring demands (SPAA 2023 \
          reproduction).")
    [ exp_cmd; sim_cmd ]

let () = exit (Cmd.eval main)
