(* Elastic distributed training with ring allreduce.

   The paper motivates ring demands with machine-learning traffic: workers
   in data-parallel training exchange gradients along a logical ring
   (Horovod-style ring allreduce).  Virtualized workers get (re)scheduled
   onto physical servers; co-locating ring neighbours on the same server
   makes their exchange free, while cross-server hops pay the "bandwidth
   tax".

   This example models an elastic training fleet:
   - 128 workers on 8 servers (capacity 16);
   - training alternates between allreduce sweeps (every worker exchanges
     with its ring successor, in order) and phases where a section of the
     ring is hot (e.g. pipeline stages resharding, stragglers
     retransmitting) that slowly drifts as the job rebalances.

   Every partition must cut the ring somewhere, so allreduce sweeps cost
   any algorithm about steps/k; the interesting question is how much extra
   the online algorithms pay on top, and how they handle the drifting hot
   section.  Run with: dune exec examples/ml_allreduce.exe *)

let n = 128
let ell = 8
let steps = 24_000

let build_trace rng =
  (* interleave: 2/3 allreduce sweeps, 1/3 drifting hot section *)
  let hot_arc = n / 16 in
  let sweep = ref 0 in
  Array.init steps (fun t ->
      if t mod 3 < 2 then begin
        let e = !sweep in
        sweep := (!sweep + 1) mod n;
        e
      end
      else
        let center = t * n / steps (* one slow revolution over the run *) in
        (center + Rbgp_util.Rng.int rng hot_arc) mod n)

let () =
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let rng = Rbgp_util.Rng.create 7 in
  let trace = build_trace (Rbgp_util.Rng.split rng) in
  let k = inst.Rbgp_ring.Instance.k in
  Format.printf
    "elastic training: %d workers, %d servers (capacity %d), %d requests@."
    n ell k steps;
  Format.printf
    "any partition pays ~%d on the allreduce sweeps alone (steps * 2/3 / k)@."
    (steps * 2 / 3 / k);

  let algorithms =
    [
      ("onl-dynamic (Thm 2.1)",
       Rbgp_core.Dynamic_alg.online
         (Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst
            (Rbgp_util.Rng.split rng)));
      ("onl-static (Thm 2.2)",
       Rbgp_core.Static_alg.online
         (Rbgp_core.Static_alg.create ~epsilon:0.5 inst
            (Rbgp_util.Rng.split rng)));
      ("never-move", Rbgp_baselines.Baselines.never_move inst);
      ("greedy-colocate", Rbgp_baselines.Baselines.greedy_colocate inst);
      ("static-oracle (offline)",
       Rbgp_baselines.Baselines.static_oracle inst ~trace);
    ]
  in
  List.iter
    (fun (name, alg) ->
      let r =
        Rbgp_ring.Simulator.run inst alg (Rbgp_ring.Trace.fixed trace) ~steps
      in
      Format.printf "  %-24s %a  (max load %d)@." name Rbgp_ring.Cost.pp
        r.Rbgp_ring.Simulator.cost r.Rbgp_ring.Simulator.max_load)
    algorithms;

  let lb = Rbgp_offline.Lower_bound.dynamic_lb inst trace () in
  Format.printf "certified dynamic OPT lower bound: %d@." lb
