(* Why randomization is necessary: the cut-chasing adversary.

   Avin et al. (DISC 2016) proved that every deterministic algorithm for
   dynamic balanced ring partitioning is Omega(k)-competitive: an adversary
   that watches where the algorithm cuts the ring and always requests a cut
   edge makes it pay on every step, while in hindsight a schedule that puts
   the (few) chased boundaries elsewhere pays almost nothing.  Beating this
   requires randomization — which is the paper's whole point.

   This example runs that adversary against deterministic and randomized
   algorithms (adaptively: the adversary sees the realized configuration),
   and then re-prices the generated traces offline.  It also runs the
   hitting-game version (Lemma 4.1) where the separation is the cleanest:
   the deterministic player is Theta(k)-competitive on its chase trace
   while interval growing stays polylogarithmic on the very same trace.

   Run with: dune exec examples/adversarial_ring.exe *)

let () =
  let n = 128 and ell = 8 in
  let steps = 10_000 in
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let rng = Rbgp_util.Rng.create 3 in
  Format.printf "ring cut-chaser, n=%d ell=%d k=%d, %d adaptive requests@." n
    ell inst.Rbgp_ring.Instance.k steps;
  List.iter
    (fun (name, alg) ->
      let r =
        Rbgp_ring.Simulator.run inst alg
          (Rbgp_workloads.Workloads.adversary_cut_chaser ~n)
          ~steps
      in
      Format.printf "  %-20s %a@." name Rbgp_ring.Cost.pp
        r.Rbgp_ring.Simulator.cost)
    [
      ("never-move", Rbgp_baselines.Baselines.never_move inst);
      ("greedy-colocate", Rbgp_baselines.Baselines.greedy_colocate inst);
      ("counter-threshold",
       Rbgp_baselines.Baselines.counter_threshold ~epsilon:0.5 inst);
      ("onl-dynamic",
       Rbgp_core.Dynamic_alg.online
         (Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst
            (Rbgp_util.Rng.split rng)));
      ("onl-static",
       Rbgp_core.Static_alg.online
         (Rbgp_core.Static_alg.create ~epsilon:0.5 inst
            (Rbgp_util.Rng.split rng)));
    ];

  (* the hitting game separation (Lemma 4.1) *)
  let k = 64 in
  let game_steps = 4 * k * k in
  Format.printf
    "@.hitting game on %d edges, %d steps: chase the deterministic dodger, \
     then replay its trace against the randomized player@." k game_steps;
  let dodger = Rbgp_hitting.Game.greedy_dodge ~k () in
  let trace =
    Rbgp_hitting.Game.run_adaptive dodger ~steps:game_steps ~next:(fun _ pos ->
        pos)
  in
  let opt = Rbgp_hitting.Static_opt.static ~k trace in
  Format.printf "  static OPT of the chase trace: %.0f@." opt;
  Format.printf "  greedy-dodge (deterministic): %.0f  -> ratio %.1f (~k/2 = %d)@."
    (Rbgp_hitting.Game.total_cost dodger)
    (Rbgp_hitting.Game.total_cost dodger /. opt)
    (k / 2);
  let ig = Rbgp_hitting.Interval_growing.create ~k (Rbgp_util.Rng.split rng) in
  Rbgp_hitting.Game.run (Rbgp_hitting.Interval_growing.player ig) trace;
  let ig_cost =
    Rbgp_hitting.Interval_growing.hit_cost ig
    +. Rbgp_hitting.Interval_growing.move_cost ig
  in
  Format.printf
    "  interval-growing (randomized, same trace): %.0f  -> ratio %.1f \
     (log2 k = %.1f)@."
    ig_cost (ig_cost /. opt)
    (log (float_of_int k) /. log 2.0)
