(* Survey: every algorithm against every workload regime.

   A compact version of experiment E8 built purely from the public API —
   use it as a template for evaluating your own workload or algorithm.
   Each cell is total cost (communication + migration) over the trace; the
   last column is the certified lower bound on what *any* dynamic schedule
   must pay, so a column close to it is near-optimal on that row.

   Run with: dune exec examples/compare_algorithms.exe *)

let n = 128
let ell = 8
let steps = 10_000
let epsilon = 0.5

let () =
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let rng = Rbgp_util.Rng.create 12 in
  let algorithms =
    [
      ("dyn", fun ~trace:_ ->
        Rbgp_core.Dynamic_alg.online
          (Rbgp_core.Dynamic_alg.create ~epsilon inst (Rbgp_util.Rng.split rng)));
      ("static", fun ~trace:_ ->
        Rbgp_core.Static_alg.online
          (Rbgp_core.Static_alg.create ~epsilon inst (Rbgp_util.Rng.split rng)));
      ("never", fun ~trace:_ -> Rbgp_baselines.Baselines.never_move inst);
      ("greedy", fun ~trace:_ -> Rbgp_baselines.Baselines.greedy_colocate inst);
      ("counter", fun ~trace:_ ->
        Rbgp_baselines.Baselines.counter_threshold ~epsilon inst);
      ("oracle", fun ~trace -> Rbgp_baselines.Baselines.static_oracle inst ~trace);
    ]
  in
  let tbl =
    Rbgp_util.Tbl.create
      ~headers:
        ("workload" :: List.map fst algorithms @ [ "dynOPT>=" ])
  in
  List.iter
    (fun (wname, trace) ->
      let tarr =
        match trace with Rbgp_ring.Trace.Fixed a -> a | _ -> assert false
      in
      let cells =
        List.map
          (fun (_, make) ->
            let alg = make ~trace:tarr in
            let r =
              Rbgp_ring.Simulator.run inst alg (Rbgp_ring.Trace.fixed tarr)
                ~steps
            in
            Rbgp_util.Tbl.cell_i
              (Rbgp_ring.Cost.total r.Rbgp_ring.Simulator.cost))
          algorithms
      in
      let lb = Rbgp_offline.Lower_bound.dynamic_lb inst tarr () in
      Rbgp_util.Tbl.add_row tbl ((wname :: cells) @ [ Rbgp_util.Tbl.cell_i lb ]))
    (Rbgp_workloads.Workloads.all_fixed ~n ~steps (Rbgp_util.Rng.split rng));
  Rbgp_util.Tbl.print tbl
