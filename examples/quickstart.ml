(* Quickstart: schedule 256 communicating processes on 8 servers, online.

   This walks through the library's core loop:
   1. describe the cluster (an [Instance]: n processes, ell servers of
      capacity k, initial placement in consecutive blocks);
   2. pick an online algorithm (here the paper's dynamic-model algorithm,
      Theorem 2.1, with augmentation 2+eps);
   3. drive it through a request trace with the [Simulator], which charges
      communication and migration exactly as the model prescribes;
   4. compare against offline yardsticks.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. the cluster: 256 processes, 8 servers, capacity 32 *)
  let inst = Rbgp_ring.Instance.blocks ~n:256 ~ell:8 in
  Format.printf "%a@." Rbgp_ring.Instance.pp inst;

  (* 2. the online algorithm; all randomness comes from an explicit seed *)
  let rng = Rbgp_util.Rng.create 1 in
  let alg =
    Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst (Rbgp_util.Rng.split rng)
  in

  (* 3. a workload: a hot communication region drifting around the ring,
     the regime where online re-partitioning pays off *)
  let steps = 20_000 in
  let trace =
    Rbgp_workloads.Workloads.rotating ~n:256 ~steps (Rbgp_util.Rng.split rng)
  in
  let result =
    Rbgp_ring.Simulator.run inst
      (Rbgp_core.Dynamic_alg.online alg)
      trace ~steps
  in
  Format.printf "onl-dynamic:  %a  (max load %d, capacity %d)@."
    Rbgp_ring.Cost.pp result.Rbgp_ring.Simulator.cost
    result.Rbgp_ring.Simulator.max_load inst.Rbgp_ring.Instance.k;

  (* 4. yardsticks: what would standing still have cost, and what does the
     best static partition cost in hindsight? *)
  let tarr =
    match trace with Rbgp_ring.Trace.Fixed a -> a | _ -> assert false
  in
  let never =
    Rbgp_ring.Simulator.run inst
      (Rbgp_baselines.Baselines.never_move inst)
      (Rbgp_ring.Trace.fixed tarr) ~steps
  in
  Format.printf "never-move:   %a@." Rbgp_ring.Cost.pp
    never.Rbgp_ring.Simulator.cost;
  let static_opt = Rbgp_offline.Static_opt.segmented inst tarr in
  Format.printf "static OPT:   total=%d (crossing %d + migration %d)@."
    static_opt.Rbgp_offline.Static_opt.total
    static_opt.Rbgp_offline.Static_opt.crossing
    static_opt.Rbgp_offline.Static_opt.migration;
  let lb = Rbgp_offline.Lower_bound.dynamic_lb inst tarr () in
  Format.printf "dynamic OPT is at least %d@." lb
