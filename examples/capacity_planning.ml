(* Capacity planning: how much resource augmentation do you need?

   Both of the paper's algorithms trade server headroom (resource
   augmentation) for competitiveness: the dynamic algorithm may load a
   server up to ~(2 + eps) k, the static one up to ~(3 + eps) k.  An
   operator picking epsilon wants to know: how much headroom do I have to
   provision, and what do I get back in communication/migration cost?

   This example sweeps epsilon on a drifting workload and prints, for each
   setting, the provisioned bound, the worst load actually observed, and
   the cost — the table to read before sizing a cluster.  It also shows
   the failure mode: epsilon so small that the interval decomposition (or
   the rebalancer) cannot do its job.

   Run with: dune exec examples/capacity_planning.exe *)

let n = 256
let ell = 8
let steps = 20_000

let () =
  let inst = Rbgp_ring.Instance.blocks ~n ~ell in
  let k = inst.Rbgp_ring.Instance.k in
  let rng = Rbgp_util.Rng.create 5 in
  let trace =
    match Rbgp_workloads.Workloads.rotating ~n ~steps (Rbgp_util.Rng.split rng) with
    | Rbgp_ring.Trace.Fixed a -> a
    | _ -> assert false
  in
  let tbl =
    Rbgp_util.Tbl.create
      ~headers:
        [ "epsilon"; "algorithm"; "provisioned"; "observed peak"; "comm";
          "mig"; "total" ]
  in
  List.iter
    (fun epsilon ->
      List.iter
        (fun (name, make) ->
          match make epsilon with
          | exception Invalid_argument msg ->
              Rbgp_util.Tbl.add_row tbl
                [ Printf.sprintf "%.2f" epsilon; name;
                  "infeasible: " ^ String.sub msg 0 (min 24 (String.length msg));
                  "-"; "-"; "-"; "-" ]
          | alg ->
              let r =
                Rbgp_ring.Simulator.run inst alg
                  (Rbgp_ring.Trace.fixed trace) ~steps
              in
              Rbgp_util.Tbl.add_row tbl
                [
                  Printf.sprintf "%.2f" epsilon;
                  name;
                  Printf.sprintf "%.0f processes"
                    (alg.Rbgp_ring.Online.augmentation *. float_of_int k);
                  Printf.sprintf "%d processes" r.Rbgp_ring.Simulator.max_load;
                  string_of_int r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.comm;
                  string_of_int r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.mig;
                  string_of_int
                    (Rbgp_ring.Cost.total r.Rbgp_ring.Simulator.cost);
                ])
        [
          ("onl-dynamic", fun epsilon ->
            Rbgp_core.Dynamic_alg.online
              (Rbgp_core.Dynamic_alg.create ~epsilon inst
                 (Rbgp_util.Rng.split rng)));
          ("onl-static", fun epsilon ->
            Rbgp_core.Static_alg.online
              (Rbgp_core.Static_alg.create ~epsilon inst
                 (Rbgp_util.Rng.split rng)));
        ])
    [ 0.1; 0.25; 0.5; 1.0; 2.0 ];
  Printf.printf
    "capacity planning on a drifting workload (n=%d, ell=%d, k=%d, %d \
     requests):\n" n ell k steps;
  Rbgp_util.Tbl.print tbl;
  print_endline
    "reading: 'provisioned' is the contractual per-server bound for the\n\
     chosen epsilon; 'observed peak' is what this trace actually used.\n\
     More headroom buys fewer, wider intervals (dynamic) and laxer\n\
     rebalancing (static), hence lower total cost."
