module Instance = Rbgp_ring.Instance
module Assignment = Rbgp_ring.Assignment
module Online = Rbgp_ring.Online
module Binc = Rbgp_util.Binc

(* Every baseline is deterministic with small, flat state, so each one
   implements the explicit Online snapshot/restore hooks: a versioned
   Binc-framed byte string holding the assignment plus whatever counters
   the algorithm keeps.  The serving layer uses these for O(state)
   checkpoint restores; the randomized core algorithms (whose split rng
   streams are not worth capturing) rely on its prefix-replay fallback
   instead. *)
let snap_version = 1

let snapshot_of name fill =
  let buf = Buffer.create 128 in
  Binc.add_varint buf snap_version;
  Binc.add_string buf name;
  fill buf;
  Buffer.contents buf

let open_snapshot name s =
  let r = Binc.reader s in
  let v = Binc.read_varint r in
  if v <> snap_version then
    invalid_arg
      (Printf.sprintf "%s: unsupported snapshot version %d" name v);
  let stored = Binc.read_string r in
  if not (String.equal stored name) then
    invalid_arg
      (Printf.sprintf "%s: snapshot belongs to algorithm %s" name stored);
  r

let restore_int_array name dst r =
  let src = Binc.read_int_array r in
  if Array.length src <> Array.length dst then
    invalid_arg (name ^ ": snapshot array length mismatch");
  Array.blit src 0 dst 0 (Array.length dst)

let never_move (inst : Instance.t) =
  let a = Assignment.create inst in
  let name = "never-move" in
  Online.with_state
    ~snapshot:(fun () ->
      snapshot_of name (fun buf -> Binc.add_int_array buf (Assignment.to_array a)))
    ~restore:(fun s ->
      let r = open_snapshot name s in
      Assignment.restore_array a (Binc.read_int_array r))
  @@ Online.with_journal (Assignment.journal a)
  @@ Online.make ~name ~augmentation:1.0
    ~assignment:(fun () -> a)
    ~serve:(fun _ -> ())

let greedy_colocate ?(threshold = 1) (inst : Instance.t) =
  if threshold < 1 then invalid_arg "greedy_colocate: threshold >= 1";
  let n = inst.Instance.n in
  let a = Assignment.create inst in
  let counts = Array.make n 0 in
  let serve e =
    let u = e and v = (e + 1) mod n in
    if Assignment.server_of a u <> Assignment.server_of a v then begin
      counts.(e) <- counts.(e) + 1;
      if counts.(e) >= threshold then begin
        counts.(e) <- 0;
        let su = Assignment.server_of a u and sv = Assignment.server_of a v in
        (* swap u with the process on v's server that is ring-farthest from
           v — a deterministic choice that tends to evict strays *)
        let victim = ref (-1) and victim_d = ref (-1) in
        for p = 0 to n - 1 do
          if p <> v && Assignment.server_of a p = sv then begin
            let d = Rbgp_ring.Segment.ring_distance ~n p v in
            if d > !victim_d then begin
              victim_d := d;
              victim := p
            end
          end
        done;
        if !victim >= 0 then begin
          Assignment.set a u sv;
          Assignment.set a !victim su
        end
      end
    end
  in
  let name = "greedy-colocate" in
  Online.with_state
    ~snapshot:(fun () ->
      snapshot_of name (fun buf ->
          Binc.add_int_array buf (Assignment.to_array a);
          Binc.add_int_array buf counts))
    ~restore:(fun s ->
      let r = open_snapshot name s in
      Assignment.restore_array a (Binc.read_int_array r);
      restore_int_array name counts r)
  @@ Online.with_journal (Assignment.journal a)
  @@ Online.make ~name ~augmentation:1.0
    ~assignment:(fun () -> a)
    ~serve

let counter_threshold ?theta ~epsilon (inst : Instance.t) =
  let n = inst.Instance.n and k = inst.Instance.k in
  let module Intervals = Rbgp_ring.Intervals in
  let dec = Intervals.make ~n ~k ~epsilon ~shift:0 in
  let ell' = dec.Intervals.ell' in
  if ell' > inst.Instance.ell then
    invalid_arg "counter_threshold: epsilon too small for this instance";
  let theta = match theta with Some t -> t | None -> dec.Intervals.k' in
  if theta < 1 then invalid_arg "counter_threshold: theta >= 1";
  let a = Assignment.create inst in
  (* cut edge per interval: start at the first initial cut edge inside *)
  let cuts =
    Array.init ell' (fun i ->
        let w = Intervals.width dec i in
        let rec find j =
          if j >= w then Intervals.to_global dec i 0
          else
            let e = Intervals.to_global dec i j in
            if inst.Instance.initial.(e) <> inst.Instance.initial.((e + 1) mod n)
            then e
            else find (j + 1)
        in
        find 0)
  in
  let counts = Array.make n 0 in
  let apply_cuts () =
    Array.iter
      (fun (server, seg) ->
        Rbgp_ring.Segment.iter (fun p -> Assignment.set a p server) seg)
      (Intervals.slices_of_cuts dec cuts)
  in
  apply_cuts ();
  let serve e =
    counts.(e) <- counts.(e) + 1;
    let i, _ = Intervals.locate dec e in
    if cuts.(i) = e && counts.(e) >= theta then begin
      (* move to the least-requested edge of the interval *)
      let w = Intervals.width dec i in
      let best = ref 0 in
      for j = 0 to w - 1 do
        let f = Intervals.to_global dec i j in
        if counts.(f) < counts.(Intervals.to_global dec i !best) then best := j
      done;
      counts.(e) <- 0;
      let target = Intervals.to_global dec i !best in
      if target <> cuts.(i) then begin
        cuts.(i) <- target;
        apply_cuts ()
      end
    end
  in
  let name = "counter-threshold" in
  Online.with_state
    ~snapshot:(fun () ->
      snapshot_of name (fun buf ->
          Binc.add_int_array buf (Assignment.to_array a);
          Binc.add_int_array buf counts;
          Binc.add_int_array buf cuts))
    ~restore:(fun s ->
      let r = open_snapshot name s in
      Assignment.restore_array a (Binc.read_int_array r);
      restore_int_array name counts r;
      restore_int_array name cuts r)
  @@ Online.with_journal (Assignment.journal a)
  @@ Online.make ~name
    ~augmentation:
      (float_of_int (Intervals.max_slice_len dec) /. float_of_int k)
    ~assignment:(fun () -> a)
    ~serve

let component_learning (inst : Instance.t) =
  let n = inst.Instance.n and k = inst.Instance.k in
  let a = Assignment.create inst in
  (* a ref so a checkpoint restore can swap in a reconstructed forest *)
  let uf_ref = ref (Rbgp_util.Union_find.create n) in
  (* collocate the whole component of [root] onto [target_server], swapping
     each mover with a process of the target server outside the component.
     Balance is preserved, and because the component has at most k members
     the target always holds enough outsiders to swap with. *)
  let collocate root target_server =
    let movers =
      List.filter
        (fun p -> Assignment.server_of a p <> target_server)
        (Rbgp_util.Union_find.members !uf_ref root)
    in
    let outsiders = ref [] in
    for p = n - 1 downto 0 do
      if
        Assignment.server_of a p = target_server
        && Rbgp_util.Union_find.find !uf_ref p <> root
      then outsiders := p :: !outsiders
    done;
    List.iter
      (fun p ->
        match !outsiders with
        | q :: rest ->
            outsiders := rest;
            let sp = Assignment.server_of a p in
            Assignment.set a q sp;
            Assignment.set a p target_server
        | [] ->
            (* no outsider left to swap with: only possible when the target
               has spare capacity, but guard anyway *)
            if Assignment.load a target_server < k then
              Assignment.set a p target_server)
      movers
  in
  (* the server currently hosting the most members of [root]'s component *)
  let majority_server root =
    let counts = Array.make inst.Instance.ell 0 in
    List.iter
      (fun p ->
        let s = Assignment.server_of a p in
        counts.(s) <- counts.(s) + 1)
      (Rbgp_util.Union_find.members !uf_ref root);
    let best = ref 0 in
    Array.iteri (fun s c -> if c > counts.(!best) then best := s) counts;
    !best
  in
  let serve e =
    let u = e and v = (e + 1) mod n in
    let su = Assignment.server_of a u and sv = Assignment.server_of a v in
    let total =
      Rbgp_util.Union_find.size !uf_ref u + Rbgp_util.Union_find.size !uf_ref v
    in
    let joined = Rbgp_util.Union_find.same !uf_ref u v in
    if (not joined) && total <= k then begin
      (* merge; if the endpoints straddle servers, collocate on the larger
         side's server *)
      let size_u = Rbgp_util.Union_find.size !uf_ref u in
      let target_server = if size_u >= total - size_u then su else sv in
      let root = Rbgp_util.Union_find.union !uf_ref u v in
      if su <> sv then collocate root target_server
    end
    else if joined && su <> sv then
      (* a previously learned component was scattered by someone else's
         collocation swaps: bring it back together on its majority server *)
      let root = Rbgp_util.Union_find.find !uf_ref u in
      collocate root (majority_server root)
    (* components that would exceed k are never merged: the learning
       variant's guarantee does not cover them, so the request is paid *)
  in
  let name = "component-learning" in
  Online.with_state
    ~snapshot:(fun () ->
      snapshot_of name (fun buf ->
          Binc.add_int_array buf (Assignment.to_array a);
          (* future behaviour depends only on the partition (membership
             and sizes), not on which element the forest happens to use
             as a root, so canonicalise each component to its minimum
             member: a run that restored from this snapshot then
             re-snapshots must produce identical bytes *)
          let roots = Array.init n (fun p -> Rbgp_util.Union_find.find !uf_ref p) in
          let canon = Array.make n max_int in
          Array.iteri
            (fun p r -> if p < canon.(r) then canon.(r) <- p)
            roots;
          Binc.add_int_array buf (Array.map (fun r -> canon.(r)) roots)))
    ~restore:(fun s ->
      let r = open_snapshot name s in
      Assignment.restore_array a (Binc.read_int_array r);
      let reps = Binc.read_int_array r in
      if Array.length reps <> n then
        invalid_arg (name ^ ": snapshot partition length mismatch");
      let uf = Rbgp_util.Union_find.create n in
      Array.iteri (fun p rep -> ignore (Rbgp_util.Union_find.union uf p rep)) reps;
      uf_ref := uf)
  @@ Online.with_journal (Assignment.journal a)
  @@ Online.make ~name ~augmentation:1.0
    ~assignment:(fun () -> a)
    ~serve

let static_oracle (inst : Instance.t) ~trace =
  let sol = Rbgp_offline.Static_opt.segmented inst trace in
  let a = Assignment.create inst in
  let moved = ref false in
  let serve _ =
    if not !moved then begin
      moved := true;
      Array.iteri
        (fun p s -> Assignment.set a p s)
        sol.Rbgp_offline.Static_opt.assignment
    end
  in
  let name = "static-oracle" in
  Online.with_state
    ~snapshot:(fun () ->
      snapshot_of name (fun buf ->
          Binc.add_int_array buf (Assignment.to_array a);
          Binc.add_varint buf (if !moved then 1 else 0)))
    ~restore:(fun s ->
      let r = open_snapshot name s in
      Assignment.restore_array a (Binc.read_int_array r);
      moved := Binc.read_varint r = 1)
  @@ Online.with_journal (Assignment.journal a)
  @@ Online.make ~name ~augmentation:1.0
    ~assignment:(fun () -> a)
    ~serve
