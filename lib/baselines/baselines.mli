(** Baseline online algorithms.

    These are the comparators the paper's contribution is measured against
    in E8:

    - {!never_move}: keep the initial assignment forever.  Offline-feasible
      (augmentation 1), optimal on demand that matches the initial layout,
      helpless under drift.
    - {!greedy_colocate}: the folklore reactive heuristic — when a request
      crosses servers, swap one endpoint with a process of the other
      server, after the edge has been hit [threshold] times since the
      processes last moved.  Deterministic, keeps perfect balance
      (augmentation 1), and is exactly the kind of algorithm the adaptive
      adversary punishes.
    - {!counter_threshold}: a deterministic interval-based repartitioner in
      the spirit of the O(k log k)-competitive deterministic algorithms
      (Avin et al.): intervals as in Section 3, each holding a cut edge;
      when the requests at the current cut since it last moved reach
      [theta], move the cut to the least-requested edge of the interval.
      Subject to the Omega(k) deterministic lower bound, which E4/E8
      exhibit.
    - {!static_oracle}: an *offline-assisted* baseline: it receives the
      whole trace up front, computes the segmented static optimum
      ({!Rbgp_offline.Static_opt.segmented}), migrates into it on the first
      request and never moves again.  It realizes (up to its one-shot
      migration) the Theorem 2.2 comparator, so the static algorithm's
      measured ratio against it is a direct empirical competitive ratio. *)

val never_move : Rbgp_ring.Instance.t -> Rbgp_ring.Online.t

val greedy_colocate :
  ?threshold:int -> Rbgp_ring.Instance.t -> Rbgp_ring.Online.t

val counter_threshold :
  ?theta:int -> epsilon:float -> Rbgp_ring.Instance.t -> Rbgp_ring.Online.t

val static_oracle : Rbgp_ring.Instance.t -> trace:int array -> Rbgp_ring.Online.t

val component_learning : Rbgp_ring.Instance.t -> Rbgp_ring.Online.t
(** The learning-variant strategy in the spirit of Henzinger et al.
    (SIGMETRICS 2019) and Forner et al. (APOCS 2021): track the connected
    components of the requested edges with a union-find; whenever a request
    joins two components that together still fit in a server ([<= k]
    processes), merge them and collocate the merged component (moving the
    smaller side, evicting unrelated processes to the least-loaded server
    when the target is full).  Components larger than [k] are never formed:
    such a request is simply paid.

    On *perfectly partitionable* demand — requests drawn from a graph whose
    components fit into servers, the learning variant's assumption — this
    converges to zero marginal cost.  On genuine ring demand the components
    immediately grow past [k] and the strategy degenerates to paying every
    cross-edge, which is precisely the gap motivating the paper
    (experiment E14).  Deterministic; augmentation 1. *)
