(** The interface every online algorithm in this repository implements.

    An algorithm owns a mutable {!Assignment.t}; the {!Simulator} charges
    communication by inspecting the assignment *before* calling [serve] and
    charges migration by diffing it afterwards, per the model of Section 2
    (serve-then-optionally-migrate).  Algorithms must therefore perform all
    reactions to a request inside [serve] and must never hand out their
    assignment for mutation.

    [augmentation] is the capacity factor the algorithm claims
    (e.g. [2 + eps] for the dynamic-model algorithm, [3 + eps] for the
    static-model one, [1.0] for offline-feasible baselines); the simulator
    verifies it after every request. *)

type t = {
  name : string;
  augmentation : float;
  assignment : unit -> Assignment.t;
      (** Current assignment.  Callers must treat it as read-only. *)
  serve : int -> unit;
      (** React to a request on ring edge [(e, e+1 mod n)]: optionally
          migrate processes. *)
}

val make :
  name:string ->
  augmentation:float ->
  assignment:(unit -> Assignment.t) ->
  serve:(int -> unit) ->
  t
