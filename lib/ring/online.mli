(** The interface every online algorithm in this repository implements.

    An algorithm owns a mutable {!Assignment.t}; the {!Simulator} charges
    communication by inspecting the assignment *before* calling [serve] and
    charges migration by diffing it afterwards, per the model of Section 2
    (serve-then-optionally-migrate).  Algorithms must therefore perform all
    reactions to a request inside [serve] and must never hand out their
    assignment for mutation.

    [augmentation] is the capacity factor the algorithm claims
    (e.g. [2 + eps] for the dynamic-model algorithm, [3 + eps] for the
    static-model one, [1.0] for offline-feasible baselines); the simulator
    verifies it after every request. *)

type t = {
  name : string;
  augmentation : float;
  assignment : unit -> Assignment.t;
      (** Current assignment.  Callers must treat it as read-only.

          {b Contract}: this must return a {e live view} of the algorithm's
          one mutable assignment — the same [Assignment.t] value on every
          call, mutated in place by [serve] — {e not} a copy.  The simulator
          relies on this: it caches the handle once per step (and the
          incremental accounting path reads it across steps), so a fresh
          copy per call would silently decouple cost accounting from the
          algorithm's real state. *)
  serve : int -> unit;
      (** React to a request on ring edge [(e, e+1 mod n)]: optionally
          migrate processes. *)
  journal : Assignment.journal option;
      (** The move journal of the algorithm's assignment, when the
          algorithm supports incremental accounting (see
          {!Assignment.journal}).  When present, the simulator charges
          migration, tracks loads and checks capacity in [O(moves + 1)] per
          request instead of re-scanning all [n] processes and [ell]
          servers; when absent it falls back to the [O(n + ell)]
          {!Assignment.diff_into} scan. *)
  snapshot : (unit -> string) option;
      (** Serialize the algorithm's complete mutable state (including its
          assignment) to an opaque, versioned byte string, when the
          algorithm supports O(state)-cost checkpointing.  Contract: after
          [restore s] on a {e freshly built} instance of the same algorithm
          on the same problem instance, all future [serve] behaviour is
          identical to the instance [s] was taken from.  Randomized
          algorithms whose rng streams are impractical to capture leave
          this [None]; the serving layer falls back to deterministic
          prefix replay (see {!Rbgp_serve.Checkpoint}). *)
  restore : (string -> unit) option;
      (** Inverse of [snapshot]; raises [Invalid_argument] on a byte
          string this algorithm version cannot decode. *)
  batch : (int array -> int -> unit) option;
      (** Optional batched request path, the hook behind interval-sharded
          parallel serving.  [batch edges] pre-computes the algorithm's
          decisions for the whole batch — possibly in parallel across
          independent sub-instances — and returns an [apply] function;
          [apply j] then performs {e exactly} the observable mutations
          (assignment updates, journal entries) that [serve edges.(j)]
          would have performed, and must be called in order
          [j = 0, 1, ...].  Contract: for every batch decomposition of a
          request sequence, interleaving [apply j] with arbitrary reads of
          the assignment is indistinguishable from calling [serve] request
          by request.  Algorithms whose per-request decisions depend on
          global state that [apply] cannot reproduce must leave this
          [None]. *)
}

val make :
  name:string ->
  augmentation:float ->
  assignment:(unit -> Assignment.t) ->
  serve:(int -> unit) ->
  t
(** Builds a journal-less algorithm ([journal = None]); the simulator uses
    the full-scan accounting fallback for it. *)

val with_journal : Assignment.journal -> t -> t
(** [with_journal j t] declares that [t] supports incremental accounting.
    [j] must be the journal of the same assignment returned by
    [t.assignment] (i.e. [Assignment.journal (t.assignment ())]). *)

val with_state : snapshot:(unit -> string) -> restore:(string -> unit) -> t -> t
(** [with_state ~snapshot ~restore t] declares that [t] supports explicit
    state checkpointing (see the field contracts above). *)

val with_batch : (int array -> int -> unit) -> t -> t
(** [with_batch b t] declares that [t] supports the batched request path
    (see the [batch] field contract above). *)
