type t = { n : int; ell : int; k : int; initial : int array }

let default_initial ~n ~k = Array.init n (fun i -> i / k)

let make ~n ~ell ~k ?initial () =
  if n <= 0 then invalid_arg "Instance.make: n must be positive";
  if ell <= 0 then invalid_arg "Instance.make: ell must be positive";
  if k <= 0 then invalid_arg "Instance.make: k must be positive";
  if n > ell * k then invalid_arg "Instance.make: n exceeds total capacity";
  let initial =
    match initial with
    | None -> default_initial ~n ~k
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Instance.make: initial length <> n";
        let loads = Array.make ell 0 in
        Array.iter
          (fun s ->
            if s < 0 || s >= ell then
              invalid_arg "Instance.make: initial server id out of range";
            loads.(s) <- loads.(s) + 1)
          a;
        Array.iter
          (fun load ->
            if load > k then
              invalid_arg "Instance.make: initial load exceeds capacity")
          loads;
        Array.copy a
  in
  { n; ell; k; initial }

let blocks ~n ~ell =
  if ell <= 0 || n mod ell <> 0 then
    invalid_arg "Instance.blocks: ell must divide n";
  make ~n ~ell ~k:(n / ell) ()

let edge_count t = t.n

let initial_cut_edges t =
  let acc = ref [] in
  for e = t.n - 1 downto 0 do
    if t.initial.(e) <> t.initial.((e + 1) mod t.n) then acc := e :: !acc
  done;
  !acc

let pp fmt t =
  Format.fprintf fmt "ring instance: n=%d ell=%d k=%d cut-edges=%d" t.n t.ell
    t.k
    (List.length (initial_cut_edges t))
