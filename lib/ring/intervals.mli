(** The shifted interval decomposition of the ring (Section 3.1).

    The paper covers the ring with [ell' = ceil(n / k')] intervals of
    exactly [k' = ceil((1+epsilon) k)] edges each, letting the last
    interval overlap the first.  This implementation uses the overlap-free
    variant: the [n] edges are partitioned into
    [ell' = min(ceil(n/k'), floor(n/(k+1)))] contiguous intervals of
    near-equal widths (either [floor(n/ell')] or [ceil(n/ell')], all at
    least [k+1] and close to [k']).  Every edge belongs to exactly one
    interval; consecutive intervals share one vertex.

    Why this is faithful: each interval still spans more than [k+1]
    vertices, so any schedule with loads at most [k] keeps a cut edge
    inside every interval (the fact Lemma 3.6 needs), and the random-shift
    argument is unchanged (interval borders sit at [shift] plus fixed
    offsets, so a uniformly random [shift] makes any fixed position a
    border with probability [ell'/n <= 1/k']).  What it buys: cut edges of
    distinct intervals can never coincide or cross, so the slices always
    partition the ring and a cut-edge move of distance [d] migrates exactly
    [d] processes — Observation 3.2 holds with equality instead of only as
    an upper bound (the overlapping variant can swap slice ownership inside
    the overlap region, where a 1-step cut move may relabel whole slices).

    With cut edge [a_i] chosen inside interval [i], server [i] hosts the
    processes [a_i + 1 .. a_(i+1)] (cyclically); slice sizes are at most
    [width i + width (i+1) - 1 <= 2 max_width - 1], giving the
    [(2 + O(epsilon)) k] resource augmentation of Lemma 3.1. *)

type t = private {
  n : int;
  k' : int;  (** requested interval width [ceil((1+epsilon) k)] *)
  ell' : int;  (** number of intervals *)
  shift : int;  (** rotation of the decomposition, in [\[0, n)] *)
  widths : int array;  (** actual edge count per interval, length [ell'] *)
}

val make : n:int -> k:int -> epsilon:float -> shift:int -> t
(** Requires [n >= 2], [k >= 1], [epsilon > 0], [0 <= shift < n]. *)

val width : t -> int -> int
val max_width : t -> int

val base : t -> int -> int
(** First edge (and first vertex) of interval [i]. *)

val edges : t -> int -> int array
(** Global edge indices of interval [i], in local order. *)

val locate : t -> int -> int * int
(** The unique [(interval, local_index)] of an edge. *)

val to_global : t -> int -> int -> int
(** [to_global t i local] = global edge index of local edge [local] of
    interval [i]. *)

val slices_of_cuts : t -> int array -> (int * Segment.t) array
(** Given per-interval cut edges ([cuts.(i)] inside interval [i]), the
    server-to-slice map: server [i] owns the processes strictly after its
    cut up to (and including the first endpoint of) the next interval's
    cut.  Slices partition the ring; with a single interval the whole ring
    goes to server 0. *)

val max_slice_len : t -> int
(** Largest possible slice: [max over i of width i + width (i+1) - 1]
    (or [n] when there is one interval). *)
