(** Request traces: fixed (oblivious) or adaptive (adversarial).

    A fixed trace is a pre-generated array of edge requests — the standard
    oblivious-adversary setting in which the paper's randomized guarantees
    hold.  An adaptive trace computes the next request from the current step
    and the online algorithm's *current assignment*; this models the adaptive
    adversary that defeats deterministic algorithms (Lemma 4.1 / the
    [Omega(k)] lower bound of Avin et al.).  Randomized algorithms keep their
    internal coin flips hidden, so an adaptive adversary here sees exactly
    what the lower-bound adversary sees: the realized configuration. *)

type t =
  | Fixed of int array
  | Adaptive of (int -> Assignment.t -> int)
      (** [f step assignment] returns the edge requested at [step]. *)

val fixed : int array -> t
val adaptive : (int -> Assignment.t -> int) -> t

val length : t -> int option
(** Length of a fixed trace; [None] for adaptive ones. *)

val next : t -> int -> Assignment.t -> int
(** [next t step assignment]: the request at [step].  For fixed traces the
    assignment is ignored; out-of-bounds steps raise [Invalid_argument]. *)

val validate : n:int -> t -> steps:int -> unit
(** Checks that a fixed trace has at least [steps] requests and all edges
    are within [\[0, n)].  Adaptive traces are validated per-step by the
    simulator. *)
