(** Problem instances of dynamic balanced graph partitioning on a ring.

    An instance fixes the number of processes [n], the number of servers
    [ell], the server capacity [k] (so [n <= ell * k]), and the initial
    assignment of processes to servers.  Processes are named [0 .. n-1] and
    all position arithmetic is modulo [n]; the communication pattern is the
    ring: request [e] means processes [e] and [e+1 mod n] communicate.

    The paper's canonical initial layout places processes in consecutive
    blocks of size [k] on servers [0 .. ell-1]; alternative initial layouts
    (needed for tests and adversarial setups) can be supplied explicitly. *)

type t = private {
  n : int;  (** number of processes *)
  ell : int;  (** number of servers *)
  k : int;  (** capacity of each server *)
  initial : int array;  (** initial server of each process; length [n] *)
}

val make : n:int -> ell:int -> k:int -> ?initial:int array -> unit -> t
(** Validates [0 < n <= ell*k], that [initial] (when given) has length [n],
    server ids in range, and initial loads at most [k].  Default initial
    layout: process [i] on server [i / k]. *)

val blocks : n:int -> ell:int -> t
(** Convenience: [make ~n ~ell ~k:(n / ell)] requiring [ell] divides [n] —
    the paper's setting [k = n / ell] with fully loaded servers. *)

val edge_count : t -> int
(** Number of ring edges, equals [n]. *)

val initial_cut_edges : t -> int list
(** Edges [e] with [initial.(e) <> initial.(e+1 mod n)] in increasing
    order — the initial cut edges that seed the slicing procedure. *)

val pp : Format.formatter -> t -> unit
