type t = {
  n : int;
  k' : int;
  ell' : int;
  shift : int;
  widths : int array;
}

let make ~n ~k ~epsilon ~shift =
  if n < 2 then invalid_arg "Intervals.make: n must be >= 2";
  if k <= 0 then invalid_arg "Intervals.make: k must be positive";
  if epsilon <= 0.0 then invalid_arg "Intervals.make: epsilon must be positive";
  if shift < 0 || shift >= n then invalid_arg "Intervals.make: shift out of [0, n)";
  let k' = int_of_float (Float.ceil ((1.0 +. epsilon) *. float_of_int k)) in
  let k' = Stdlib.min k' n in
  (* as many intervals as possible while (a) targeting width k' and
     (b) keeping every width at least k+1, so that any balanced schedule
     still has a cut edge inside every interval *)
  let ell' = Stdlib.max 1 (Stdlib.min ((n + k' - 1) / k') (n / (k + 1))) in
  (* near-equal widths: the first [n mod ell'] intervals get one extra *)
  let base_w = n / ell' and rem = n mod ell' in
  let widths = Array.init ell' (fun i -> base_w + if i < rem then 1 else 0) in
  { n; k'; ell'; shift; widths }

let check_interval t i =
  if i < 0 || i >= t.ell' then invalid_arg "Intervals: interval index out of range"

let width t i =
  check_interval t i;
  t.widths.(i)

let max_width t = Array.fold_left Int.max 0 t.widths

let base t i =
  check_interval t i;
  let off = ref 0 in
  for j = 0 to i - 1 do
    off := !off + t.widths.(j)
  done;
  (t.shift + !off) mod t.n

let to_global t i local =
  check_interval t i;
  if local < 0 || local >= t.widths.(i) then
    invalid_arg "Intervals.to_global: local edge out of range";
  (base t i + local) mod t.n

let edges t i = Array.init (width t i) (fun local -> to_global t i local)

let locate t e =
  if e < 0 || e >= t.n then invalid_arg "Intervals.locate: edge out of range";
  let rel = (((e - t.shift) mod t.n) + t.n) mod t.n in
  let rec go i acc =
    if i >= t.ell' then invalid_arg "Intervals.locate: internal error"
    else if rel < acc + t.widths.(i) then (i, rel - acc)
    else go (i + 1) (acc + t.widths.(i))
  in
  go 0 0

let slices_of_cuts t cuts =
  if Array.length cuts <> t.ell' then
    invalid_arg "Intervals.slices_of_cuts: need one cut per interval";
  Array.iteri
    (fun i c ->
      if fst (locate t c) <> i then
        invalid_arg "Intervals.slices_of_cuts: cut outside its interval")
    cuts;
  if t.ell' = 1 then [| (0, Segment.whole ~n:t.n) |]
  else
    Array.init t.ell' (fun i ->
        let a = cuts.(i) and b = cuts.((i + 1) mod t.ell') in
        (* disjoint interval ranges make a <> b and keep cuts in cyclic
           order, so the slice (a, b] is never empty *)
        (i, Segment.of_endpoints ~n:t.n ((a + 1) mod t.n) b))

let max_slice_len t =
  if t.ell' = 1 then t.n
  else begin
    let worst = ref 0 in
    for i = 0 to t.ell' - 1 do
      let pair = t.widths.(i) + t.widths.((i + 1) mod t.ell') - 1 in
      if pair > !worst then worst := pair
    done;
    !worst
  end
