type journal = { mutable buf : int array; mutable len : int }

type t = {
  inst : Instance.t;
  map : int array;
  loads : int array;
  (* hist.(v) = number of servers whose load is exactly v; together with
     the cached maximum this turns max-load and capacity checks into O(1)
     reads on the serving hot path instead of an O(ell) rescan per
     request. *)
  hist : int array;
  mutable maxl : int;
  mutable jrn : journal option;
}

let of_array (inst : Instance.t) a =
  if Array.length a <> inst.n then invalid_arg "Assignment.of_array: bad length";
  let loads = Array.make inst.ell 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= inst.ell then
        invalid_arg "Assignment.of_array: server id out of range";
      loads.(s) <- loads.(s) + 1)
    a;
  let hist = Array.make (inst.n + 1) 0 in
  let maxl = ref 0 in
  Array.iter
    (fun l ->
      hist.(l) <- hist.(l) + 1;
      if l > !maxl then maxl := l)
    loads;
  { inst; map = Array.copy a; loads; hist; maxl = !maxl; jrn = None }

let create (inst : Instance.t) = of_array inst inst.initial

(* copies never inherit the journal: they are snapshots (simulator shadows),
   not live algorithm state *)
let copy t =
  {
    inst = t.inst;
    map = Array.copy t.map;
    loads = Array.copy t.loads;
    hist = Array.copy t.hist;
    maxl = t.maxl;
    jrn = None;
  }

(* Move one unit of load from [old_s] to [s] (distinct servers), keeping
   the load histogram and cached maximum in sync.  When the old load was
   the unique maximum, the donor itself now sits at [maxl - 1], so the new
   maximum is exactly one below — no rescan needed. *)
let move_load t old_s s =
  let la = t.loads.(old_s) and lb = t.loads.(s) in
  t.loads.(old_s) <- la - 1;
  t.loads.(s) <- lb + 1;
  t.hist.(la) <- t.hist.(la) - 1;
  t.hist.(la - 1) <- t.hist.(la - 1) + 1;
  t.hist.(lb) <- t.hist.(lb) - 1;
  t.hist.(lb + 1) <- t.hist.(lb + 1) + 1;
  if lb + 1 > t.maxl then t.maxl <- lb + 1
  else if la = t.maxl && t.hist.(la) = 0 then t.maxl <- la - 1

let journal t =
  match t.jrn with
  | Some j -> j
  | None ->
      let j = { buf = Array.make 64 0; len = 0 } in
      t.jrn <- Some j;
      j

let journal_clear j = j.len <- 0

let journal_push j p =
  if j.len = Array.length j.buf then begin
    let bigger = Array.make (2 * j.len) 0 in
    Array.blit j.buf 0 bigger 0 j.len;
    j.buf <- bigger
  end;
  j.buf.(j.len) <- p;
  j.len <- j.len + 1

let journal_drain j f =
  for i = 0 to j.len - 1 do
    f j.buf.(i)
  done;
  j.len <- 0

let n t = t.inst.Instance.n
let server_of t p = t.map.(p)

let set t p s =
  if s < 0 || s >= t.inst.Instance.ell then
    invalid_arg "Assignment.set: server id out of range";
  let old = t.map.(p) in
  if old <> s then begin
    t.map.(p) <- s;
    move_load t old s;
    match t.jrn with None -> () | Some j -> journal_push j p
  end

let load t s = t.loads.(s)
let loads t = Array.copy t.loads
let max_load t = t.maxl

let check_capacity t ~augmentation =
  let bound = (augmentation *. float_of_int t.inst.Instance.k) +. 1e-9 in
  float_of_int t.maxl <= bound

let cuts_edge t e =
  let n = t.inst.Instance.n in
  t.map.(e) <> t.map.((e + 1) mod n)

let cut_edges t =
  let acc = ref [] in
  for e = n t - 1 downto 0 do
    if cuts_edge t e then acc := e :: !acc
  done;
  !acc

let hamming a b =
  if n a <> n b then invalid_arg "Assignment.hamming: size mismatch";
  let d = ref 0 in
  for p = 0 to n a - 1 do
    if a.map.(p) <> b.map.(p) then incr d
  done;
  !d

let diff_into target scratch =
  if n target <> n scratch then invalid_arg "Assignment.diff_into: size mismatch";
  let d = ref 0 in
  for p = 0 to n target - 1 do
    if scratch.map.(p) <> target.map.(p) then begin
      incr d;
      let old = scratch.map.(p) in
      scratch.map.(p) <- target.map.(p);
      move_load scratch old target.map.(p)
    end
  done;
  !d

let restore_array t a =
  if Array.length a <> t.inst.Instance.n then
    invalid_arg "Assignment.restore_array: bad length";
  Array.iteri
    (fun p s ->
      if s < 0 || s >= t.inst.Instance.ell then
        invalid_arg "Assignment.restore_array: server id out of range";
      set t p s)
    a

let to_array t = Array.copy t.map
let instance t = t.inst

let pp fmt t =
  Format.fprintf fmt "assignment loads=[%s] cuts=%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.loads)))
    (List.length (cut_edges t))
