type journal = { mutable buf : int array; mutable len : int }

type t = {
  inst : Instance.t;
  map : int array;
  loads : int array;
  mutable jrn : journal option;
}

let of_array (inst : Instance.t) a =
  if Array.length a <> inst.n then invalid_arg "Assignment.of_array: bad length";
  let loads = Array.make inst.ell 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= inst.ell then
        invalid_arg "Assignment.of_array: server id out of range";
      loads.(s) <- loads.(s) + 1)
    a;
  { inst; map = Array.copy a; loads; jrn = None }

let create (inst : Instance.t) = of_array inst inst.initial

(* copies never inherit the journal: they are snapshots (simulator shadows),
   not live algorithm state *)
let copy t =
  { inst = t.inst; map = Array.copy t.map; loads = Array.copy t.loads; jrn = None }

let journal t =
  match t.jrn with
  | Some j -> j
  | None ->
      let j = { buf = Array.make 64 0; len = 0 } in
      t.jrn <- Some j;
      j

let journal_clear j = j.len <- 0

let journal_push j p =
  if j.len = Array.length j.buf then begin
    let bigger = Array.make (2 * j.len) 0 in
    Array.blit j.buf 0 bigger 0 j.len;
    j.buf <- bigger
  end;
  j.buf.(j.len) <- p;
  j.len <- j.len + 1

let journal_drain j f =
  for i = 0 to j.len - 1 do
    f j.buf.(i)
  done;
  j.len <- 0

let n t = t.inst.Instance.n
let server_of t p = t.map.(p)

let set t p s =
  if s < 0 || s >= t.inst.Instance.ell then
    invalid_arg "Assignment.set: server id out of range";
  let old = t.map.(p) in
  if old <> s then begin
    t.map.(p) <- s;
    t.loads.(old) <- t.loads.(old) - 1;
    t.loads.(s) <- t.loads.(s) + 1;
    match t.jrn with None -> () | Some j -> journal_push j p
  end

let load t s = t.loads.(s)
let loads t = Array.copy t.loads

let max_load t =
  let m = ref 0 in
  Array.iter (fun l -> if l > !m then m := l) t.loads;
  !m

let check_capacity t ~augmentation =
  let bound = (augmentation *. float_of_int t.inst.Instance.k) +. 1e-9 in
  Array.for_all (fun load -> float_of_int load <= bound) t.loads

let cuts_edge t e =
  let n = t.inst.Instance.n in
  t.map.(e) <> t.map.((e + 1) mod n)

let cut_edges t =
  let acc = ref [] in
  for e = n t - 1 downto 0 do
    if cuts_edge t e then acc := e :: !acc
  done;
  !acc

let hamming a b =
  if n a <> n b then invalid_arg "Assignment.hamming: size mismatch";
  let d = ref 0 in
  for p = 0 to n a - 1 do
    if a.map.(p) <> b.map.(p) then incr d
  done;
  !d

let diff_into target scratch =
  if n target <> n scratch then invalid_arg "Assignment.diff_into: size mismatch";
  let d = ref 0 in
  for p = 0 to n target - 1 do
    if scratch.map.(p) <> target.map.(p) then begin
      incr d;
      let old = scratch.map.(p) in
      scratch.map.(p) <- target.map.(p);
      scratch.loads.(old) <- scratch.loads.(old) - 1;
      scratch.loads.(target.map.(p)) <- scratch.loads.(target.map.(p)) + 1
    end
  done;
  !d

let restore_array t a =
  if Array.length a <> t.inst.Instance.n then
    invalid_arg "Assignment.restore_array: bad length";
  Array.iteri
    (fun p s ->
      if s < 0 || s >= t.inst.Instance.ell then
        invalid_arg "Assignment.restore_array: server id out of range";
      set t p s)
    a

let to_array t = Array.copy t.map
let instance t = t.inst

let pp fmt t =
  Format.fprintf fmt "assignment loads=[%s] cuts=%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.loads)))
    (List.length (cut_edges t))
