(** Cost accounting: communication + migration, as defined in Section 2.

    A request costs 1 of communication if its endpoints are on different
    servers when it arrives; each process migration costs 1.  Totals are
    kept as integers (the model is integral); ratios are computed in float
    by the harness. *)

type t = { mutable comm : int; mutable mig : int }

val zero : unit -> t
val total : t -> int
val add : t -> t -> unit
(** [add acc delta] accumulates [delta] into [acc]. *)

val plus : t -> t -> t
val scale_ratio : t -> t -> float
(** [scale_ratio a b = total a / total b] as float; [infinity] when [b] is
    zero and [a] is not; [1.0] when both are zero. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
