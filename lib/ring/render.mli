(** ASCII rendering of ring states, for debugging and the CLI.

    An assignment is drawn as one character per process (the server id in
    base-36), wrapped to fixed-width rows with position ruler lines and
    ['|'] markers at cut edges — enough to see at a glance where the
    slices are and how balanced they look. *)

val assignment : ?width:int -> Assignment.t -> string
(** Multi-line rendering, [width] processes per row (default 64). *)

val loads : Assignment.t -> string
(** One-line bar chart of the per-server loads, e.g.
    ["0:################ 1:############"]. *)
