type t = {
  name : string;
  augmentation : float;
  assignment : unit -> Assignment.t;
  serve : int -> unit;
  journal : Assignment.journal option;
}

let make ~name ~augmentation ~assignment ~serve =
  { name; augmentation; assignment; serve; journal = None }

let with_journal journal t = { t with journal = Some journal }
