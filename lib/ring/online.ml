type t = {
  name : string;
  augmentation : float;
  assignment : unit -> Assignment.t;
  serve : int -> unit;
  journal : Assignment.journal option;
  snapshot : (unit -> string) option;
  restore : (string -> unit) option;
  batch : (int array -> int -> unit) option;
}

let make ~name ~augmentation ~assignment ~serve =
  {
    name;
    augmentation;
    assignment;
    serve;
    journal = None;
    snapshot = None;
    restore = None;
    batch = None;
  }

let with_journal journal t = { t with journal = Some journal }

let with_state ~snapshot ~restore t =
  { t with snapshot = Some snapshot; restore = Some restore }

let with_batch batch t = { t with batch = Some batch }
