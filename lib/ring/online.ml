type t = {
  name : string;
  augmentation : float;
  assignment : unit -> Assignment.t;
  serve : int -> unit;
}

let make ~name ~augmentation ~assignment ~serve =
  { name; augmentation; assignment; serve }
