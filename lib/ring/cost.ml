type t = { mutable comm : int; mutable mig : int }

let zero () = { comm = 0; mig = 0 }
let total t = t.comm + t.mig

let add acc delta =
  acc.comm <- acc.comm + delta.comm;
  acc.mig <- acc.mig + delta.mig

let plus a b = { comm = a.comm + b.comm; mig = a.mig + b.mig }

let scale_ratio a b =
  let ta = total a and tb = total b in
  if tb = 0 then if ta = 0 then 1.0 else infinity
  else float_of_int ta /. float_of_int tb

let pp fmt t =
  Format.fprintf fmt "comm=%d mig=%d total=%d" t.comm t.mig (total t)

let to_string t = Format.asprintf "%a" pp t
