(** Mutable process-to-server assignments and their cost geometry.

    An assignment maps each process [0 .. n-1] to a server id.  The model
    charges one unit per process migration, so the distance between two
    assignments is the Hamming distance; a request on edge [(i, i+1)] costs
    one unit of communication iff the endpoints map to different servers.

    Load validation is parameterized by the resource-augmentation factor:
    online algorithms may use [alpha * k] capacity while offline comparators
    must respect [k] strictly. *)

type t

type journal
(** A move journal: the ids of processes whose server changed since the
    journal was last drained.  Once attached (see {!journal}), every
    effective {!set} appends the process id; redundant sets (same server)
    are not recorded.  A process that moved twice appears twice — consumers
    that need exact Hamming semantics should diff against a snapshot per
    touched id (see {!Simulator}). *)

val create : Instance.t -> t
(** Initialized to the instance's initial assignment. *)

val journal : t -> journal
(** Attach (idempotently) and return the assignment's journal.  Lets the
    simulator charge migrations in [O(moves)] instead of re-scanning all
    [n] processes per request. *)

val journal_clear : journal -> unit
(** Forget any recorded moves (e.g. moves made during algorithm setup,
    before simulation starts). *)

val journal_drain : journal -> (int -> unit) -> unit
(** [journal_drain j f] calls [f] on every recorded process id, in record
    order, then clears the journal. *)

val of_array : Instance.t -> int array -> t
(** Copies the given map; validates server ids are in range (loads are not
    validated here — use {!max_load} / {!check_capacity}). *)

val copy : t -> t
(** Snapshot of the map and loads; the copy has no journal attached. *)

val n : t -> int
val server_of : t -> int -> int
val set : t -> int -> int -> unit
(** [set t p s] migrates process [p] to server [s], updating loads. *)

val load : t -> int -> int
val loads : t -> int array

val max_load : t -> int
(** O(1): the assignment maintains a load-value histogram and a cached
    maximum across every mutation, so hot-path accounting never rescans
    the [ell] servers. *)

val check_capacity : t -> augmentation:float -> bool
(** Every load at most [augmentation * k] (integer floor comparison is
    deliberately avoided: the bound is [load <= augmentation * k + 1e-9]).
    O(1) — see {!max_load}. *)

val cuts_edge : t -> int -> bool
(** Does edge [(e, e+1 mod n)] cross servers? *)

val cut_edges : t -> int list

val hamming : t -> t -> int
(** Number of processes assigned differently — the migration cost of moving
    from one assignment to the other. *)

val diff_into : t -> t -> int
(** [diff_into target scratch] copies [target] into [scratch] and returns
    their Hamming distance — used by the simulator to charge migrations with
    one pass and no allocation. *)

val restore_array : t -> int array -> unit
(** [restore_array t a] moves every process to its server in [a], in place,
    through {!set} — loads stay consistent and an attached journal records
    the effective moves (checkpoint restores run before the simulator
    clears setup-time journal entries).  Validates lengths and server ids. *)

val to_array : t -> int array
val instance : t -> Instance.t
val pp : Format.formatter -> t -> unit
