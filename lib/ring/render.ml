let digit s =
  if s < 10 then Char.chr (Char.code '0' + s)
  else if s < 36 then Char.chr (Char.code 'a' + s - 10)
  else '?'

let assignment ?(width = 64) a =
  if width < 1 then invalid_arg "Render.assignment: width >= 1";
  let n = Assignment.n a in
  let buf = Buffer.create (4 * n) in
  let rows = (n + width - 1) / width in
  for row = 0 to rows - 1 do
    let lo = row * width in
    let hi = Stdlib.min (n - 1) (lo + width - 1) in
    Buffer.add_string buf (Printf.sprintf "%6d  " lo);
    for p = lo to hi do
      Buffer.add_char buf (digit (Assignment.server_of a p));
      (* mark the cut edge between p and p+1 *)
      if p < hi && Assignment.cuts_edge a p then Buffer.add_char buf '|'
      else if p < hi then Buffer.add_char buf ' '
    done;
    (* a cut at the row boundary (or the ring wrap on the last row) *)
    if Assignment.cuts_edge a hi then Buffer.add_char buf '|';
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let loads a =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun s load ->
      if s > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%d:%s" s (String.make load '#')))
    (Assignment.loads a);
  Buffer.contents buf
