type accounting = [ `Auto | `Incremental | `Diff | `Check ]

type result = {
  cost : Cost.t;
  steps : int;
  max_load : int;
  capacity_violations : int;
  per_step : (int * int) array option;
}

(* Largest integer load that satisfies [load <= augmentation * k + 1e-9] —
   the same tolerance as Assignment.check_capacity, precomputed so the
   incremental path compares integers. *)
let capacity_cap (inst : Instance.t) ~augmentation =
  int_of_float ((augmentation *. float_of_int inst.Instance.k) +. 1e-9)

type stepper = {
  inst : Instance.t;
  alg : Online.t;
  strict : bool;
  s_cost : Cost.t;
  mutable s_steps : int;
  s_max_load_ref : int ref;
  mutable s_violations : int;
  account : Assignment.t -> int;
  capacity_ok : Assignment.t -> bool;
}

let stepper ?(strict = true) ?(accounting = `Auto) ?cost ?max_load ?violations
    ?(steps_done = 0) (inst : Instance.t) (alg : Online.t) =
  let cost = match cost with Some c -> c | None -> Cost.zero () in
  let shadow = Assignment.copy (alg.Online.assignment ()) in
  let max_load_init =
    match max_load with
    | Some m -> max m (Assignment.max_load shadow)
    | None -> Assignment.max_load shadow
  in
  let max_load = ref max_load_init in
  let journal =
    match (accounting, alg.Online.journal) with
    | `Diff, _ -> None
    | `Auto, j -> j
    | (`Incremental | `Check), (Some _ as j) -> j
    | (`Incremental | `Check), None ->
        invalid_arg
          (Printf.sprintf "Simulator.stepper: %s exposes no move journal"
             alg.Online.name)
  in
  let account, capacity_ok =
    match journal with
    | None ->
        (* O(n + ell) fallback: full diff scan and load re-scan per request *)
        let account current =
          let moved = Assignment.diff_into current shadow in
          let load = Assignment.max_load current in
          if load > !max_load then max_load := load;
          moved
        in
        let capacity_ok current =
          Assignment.check_capacity current
            ~augmentation:alg.Online.augmentation
        in
        (account, capacity_ok)
    | Some j ->
        (* O(moves + 1) incremental accounting off the move journal.  The
           shadow is advanced per touched process (deduplicated against the
           current state, so back-and-forth moves within one step charge the
           Hamming distance, exactly like diff_into); server loads cross the
           capacity boundary at most once per unit change, so a running
           count of over-capacity servers stays exact.  The running maximum
           load is only checked on destination servers *after* the whole
           step is applied: mid-step transients (a process arriving before
           another departs) are not observable states of the model. *)
        let cap = capacity_cap inst ~augmentation:alg.Online.augmentation in
        let over = ref 0 in
        Array.iter
          (fun load -> if load > cap then incr over)
          (Assignment.loads shadow);
        let dsts = ref [] in
        (* setup-time moves (algorithm construction, or a checkpoint
           restore) predate the simulation and are already reflected in the
           shadow snapshot *)
        Assignment.journal_clear j;
        let oracle =
          match accounting with
          | `Check -> Some (Assignment.copy shadow)
          | _ -> None
        in
        let account current =
          let moved = ref 0 in
          Assignment.journal_drain j (fun p ->
              let s_new = Assignment.server_of current p in
              let s_old = Assignment.server_of shadow p in
              if s_old <> s_new then begin
                incr moved;
                Assignment.set shadow p s_new;
                if Assignment.load shadow s_new = cap + 1 then incr over;
                if Assignment.load shadow s_old = cap then decr over;
                dsts := s_new :: !dsts
              end);
          List.iter
            (fun s ->
              let load = Assignment.load shadow s in
              if load > !max_load then max_load := load)
            !dsts;
          dsts := [];
          (match oracle with
          | None -> ()
          | Some oracle ->
              let d = Assignment.diff_into current oracle in
              if d <> !moved then
                failwith
                  (Printf.sprintf
                     "Simulator.run: %s journal accounting charged %d \
                      migrations where diff_into charges %d"
                     alg.Online.name !moved d);
              if Assignment.hamming shadow oracle <> 0 then
                failwith
                  (Printf.sprintf
                     "Simulator.run: %s journal shadow diverged from the \
                      diff_into oracle"
                     alg.Online.name);
              let ok_inc = !over = 0 in
              let ok_oracle =
                Assignment.check_capacity current
                  ~augmentation:alg.Online.augmentation
              in
              if ok_inc <> ok_oracle then
                failwith
                  (Printf.sprintf
                     "Simulator.run: %s incremental capacity check disagrees \
                      with check_capacity"
                     alg.Online.name));
          !moved
        in
        let capacity_ok _current = !over = 0 in
        (account, capacity_ok)
  in
  {
    inst;
    alg;
    strict;
    s_cost = cost;
    s_steps = steps_done;
    s_max_load_ref = max_load;
    s_violations = (match violations with Some v -> v | None -> 0);
    account;
    capacity_ok;
  }

(* [serve_now st x] performs the algorithm action for this step; [x] is
   caller-chosen (the edge for the per-request paths, the batch index for
   the prepared path) so the actions can be top-level or per-batch values
   and no per-request closure is allocated (r11 patrols this path). *)
let step_with st e serve_now x =
  let alg = st.alg in
  if e < 0 || e >= st.inst.Instance.n then
    invalid_arg "Simulator.step: edge out of range";
  (* one live handle per step: Online.assignment is contractually a live
     view, so the post-serve state is visible through the same handle *)
  let current = alg.Online.assignment () in
  let comm = if Assignment.cuts_edge current e then 1 else 0 in
  st.s_cost.Cost.comm <- st.s_cost.Cost.comm + comm;
  serve_now st x;
  let moved = st.account current in
  st.s_cost.Cost.mig <- st.s_cost.Cost.mig + moved;
  if not (st.capacity_ok current) then begin
    st.s_violations <- st.s_violations + 1;
    if st.strict then
      failwith
        (Printf.sprintf
           "Simulator.run: %s violated capacity at step %d (max load %d, \
            claimed augmentation %.3f, k=%d)"
           alg.Online.name st.s_steps
           (Assignment.max_load current)
           alg.Online.augmentation st.inst.Instance.k)
  end;
  st.s_steps <- st.s_steps + 1;
  (comm, moved)

let serve_action st e = st.alg.Online.serve e
let frozen_action (_ : stepper) (_ : int) = ()
let step st e = step_with st e serve_action e

(* A degraded "never-move" accounting step: the request is billed exactly
   as if a never-move algorithm had served it (communication charged when
   the edge is cut, zero migrations, loads unchanged) but the real
   algorithm is not consulted, so an over-budget or stalled solver is
   bypassed without losing cost accounting.  The serving engine records
   which positions were served this way so a checkpoint replay reproduces
   the identical call sequence. *)
let step_frozen st e = step_with st e frozen_action e

(* Batched stepping: pre-solve the algorithm's decisions for the whole
   batch (in parallel, when the algorithm provides [Online.batch]), then
   play them through the exact per-request accounting above.  All edges are
   validated up front — the algorithm's batch hook may inspect them before
   any step is played. *)
let prepare st edges =
  let n = st.inst.Instance.n in
  Array.iter
    (fun e ->
      if e < 0 || e >= n then invalid_arg "Simulator.step: edge out of range")
    edges;
  let apply =
    match st.alg.Online.batch with
    | Some b when Array.length edges > 1 -> b edges
    | _ -> fun j -> st.alg.Online.serve edges.(j)
  in
  (* one action per batch, indexed by j — not one closure per request *)
  let apply_action _st j = apply j in
  let next = ref 0 in
  fun j ->
    if j <> !next then
      invalid_arg "Simulator.prepare: requests must be played in order";
    incr next;
    step_with st edges.(j) apply_action j

let stepper_result st =
  {
    cost = st.s_cost;
    steps = st.s_steps;
    max_load = !(st.s_max_load_ref);
    capacity_violations = st.s_violations;
    per_step = None;
  }

let run ?(strict = true) ?(record_steps = false) ?on_step ?(accounting = `Auto)
    (inst : Instance.t) (alg : Online.t) trace ~steps =
  if steps < 0 then invalid_arg "Simulator.run: negative steps";
  Trace.validate ~n:inst.Instance.n trace ~steps;
  let st = stepper ~strict ~accounting inst alg in
  let series = if record_steps then Array.make steps (0, 0) else [||] in
  for t = 0 to steps - 1 do
    let current = alg.Online.assignment () in
    let e = Trace.next trace t current in
    if e < 0 || e >= inst.Instance.n then
      invalid_arg "Simulator.run: trace produced edge out of range";
    let _ = step st e in
    if record_steps then series.(t) <- (st.s_cost.Cost.comm, st.s_cost.Cost.mig);
    match on_step with None -> () | Some f -> f t st.s_cost
  done;
  let r = stepper_result st in
  { r with per_step = (if record_steps then Some series else None) }

let replay_cost (inst : Instance.t) trace ~assignments =
  let steps = Array.length trace in
  if Array.length assignments <> steps then
    invalid_arg "Simulator.replay_cost: schedule length mismatch";
  let cost = Cost.zero () in
  let n = inst.Instance.n in
  let prev = ref inst.Instance.initial in
  for t = 0 to steps - 1 do
    let a = assignments.(t) in
    if Array.length a <> n then
      invalid_arg "Simulator.replay_cost: assignment length mismatch";
    (* migrations charged when moving into the configuration serving step t *)
    for p = 0 to n - 1 do
      if a.(p) <> !prev.(p) then cost.Cost.mig <- cost.Cost.mig + 1
    done;
    let e = trace.(t) in
    if a.(e) <> a.((e + 1) mod n) then cost.Cost.comm <- cost.Cost.comm + 1;
    prev := a
  done;
  cost
