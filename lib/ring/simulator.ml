type result = {
  cost : Cost.t;
  steps : int;
  max_load : int;
  capacity_violations : int;
  per_step : (int * int) array option;
}

let run ?(strict = true) ?(record_steps = false) ?on_step (inst : Instance.t)
    (alg : Online.t) trace ~steps =
  if steps < 0 then invalid_arg "Simulator.run: negative steps";
  Trace.validate ~n:inst.Instance.n trace ~steps;
  let cost = Cost.zero () in
  let shadow = Assignment.copy (alg.Online.assignment ()) in
  let max_load = ref (Assignment.max_load shadow) in
  let violations = ref 0 in
  let series = if record_steps then Array.make steps (0, 0) else [||] in
  for t = 0 to steps - 1 do
    let current = alg.Online.assignment () in
    let e = Trace.next trace t current in
    if e < 0 || e >= inst.Instance.n then
      invalid_arg "Simulator.run: trace produced edge out of range";
    if Assignment.cuts_edge current e then cost.Cost.comm <- cost.Cost.comm + 1;
    alg.Online.serve e;
    let after = alg.Online.assignment () in
    let moved = Assignment.diff_into after shadow in
    cost.Cost.mig <- cost.Cost.mig + moved;
    let load = Assignment.max_load after in
    if load > !max_load then max_load := load;
    if not (Assignment.check_capacity after ~augmentation:alg.Online.augmentation)
    then begin
      incr violations;
      if strict then
        failwith
          (Printf.sprintf
             "Simulator.run: %s violated capacity at step %d (max load %d, \
              claimed augmentation %.3f, k=%d)"
             alg.Online.name t load alg.Online.augmentation inst.Instance.k)
    end;
    if record_steps then series.(t) <- (cost.Cost.comm, cost.Cost.mig);
    match on_step with None -> () | Some f -> f t cost
  done;
  {
    cost;
    steps;
    max_load = !max_load;
    capacity_violations = !violations;
    per_step = (if record_steps then Some series else None);
  }

let replay_cost (inst : Instance.t) trace ~assignments =
  let steps = Array.length trace in
  if Array.length assignments <> steps then
    invalid_arg "Simulator.replay_cost: schedule length mismatch";
  let cost = Cost.zero () in
  let n = inst.Instance.n in
  let prev = ref inst.Instance.initial in
  for t = 0 to steps - 1 do
    let a = assignments.(t) in
    if Array.length a <> n then
      invalid_arg "Simulator.replay_cost: assignment length mismatch";
    (* migrations charged when moving into the configuration serving step t *)
    for p = 0 to n - 1 do
      if a.(p) <> !prev.(p) then cost.Cost.mig <- cost.Cost.mig + 1
    done;
    let e = trace.(t) in
    if a.(e) <> a.((e + 1) mod n) then cost.Cost.comm <- cost.Cost.comm + 1;
    prev := a
  done;
  cost
