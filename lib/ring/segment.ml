type t = { start : int; len : int; n : int }

let norm n x =
  let r = x mod n in
  if r < 0 then r + n else r

let make ~n ~start ~len =
  if n <= 0 then invalid_arg "Segment.make: n must be positive";
  if len <= 0 || len > n then invalid_arg "Segment.make: len out of (0, n]";
  { start = norm n start; len; n }

let cw_distance ~n a b = norm n (b - a)

let of_endpoints ~n a b = make ~n ~start:a ~len:(cw_distance ~n a b + 1)

let whole ~n = make ~n ~start:0 ~len:n
let length t = t.len
let first t = t.start
let last t = norm t.n (t.start + t.len - 1)

let mem t p =
  let off = cw_distance ~n:t.n t.start (norm t.n p) in
  off < t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f (norm t.n (t.start + i))
  done

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := norm t.n (t.start + i) :: !acc
  done;
  !acc

let fold f init t =
  let acc = ref init in
  iter (fun p -> acc := f !acc p) t;
  !acc

let subset inner outer =
  if inner.n <> outer.n then invalid_arg "Segment.subset: different rings";
  if outer.len >= outer.n then true
  else if inner.len > outer.len then false
  else
    let off = cw_distance ~n:inner.n outer.start inner.start in
    off + inner.len <= outer.len

let inter_size a b =
  if a.n <> b.n then invalid_arg "Segment.inter_size: different rings";
  let n = a.n in
  if a.len >= n then b.len
  else if b.len >= n then a.len
  else begin
    (* offset of b's start relative to a's start; intersection of [0,a.len)
       with [off, off+b.len) on Z_n can wrap at most once. *)
    let off = cw_distance ~n a.start b.start in
    let overlap lo1 hi1 lo2 hi2 =
      let lo = Stdlib.max lo1 lo2 and hi = Stdlib.min hi1 hi2 in
      Stdlib.max 0 (hi - lo)
    in
    let part1 = overlap 0 a.len off (off + b.len) in
    let part2 = overlap 0 a.len (off - n) (off - n + b.len) in
    part1 + part2
  end

let ring_distance ~n a b =
  let d = cw_distance ~n a b in
  Stdlib.min d (n - d)

let edges_inside t =
  if t.len >= t.n then List.init t.n (fun i -> i)
  else begin
    let acc = ref [] in
    for i = t.len - 2 downto 0 do
      acc := norm t.n (t.start + i) :: !acc
    done;
    !acc
  end

let equal a b = a.n = b.n && a.len = b.len && (a.len = a.n || a.start = b.start)

let pp fmt t =
  Format.fprintf fmt "[%d..%d]/%d (len %d)" t.start (last t) t.n t.len
