(** Drives an online algorithm over a request trace and charges costs.

    The simulator owns the cost accounting so that every algorithm —
    including baselines and, in tests, deliberately buggy ones — is billed by
    the same rules:

    + a request on edge [(e, e+1)] costs 1 of communication iff the
      endpoints are currently on different servers (checked {e before} the
      algorithm reacts);
    + after the algorithm's [serve] returns, the Hamming distance between
      the previous and new assignment is charged as migration;
    + the new assignment must satisfy the algorithm's claimed
      resource-augmentation bound (violations are counted; [run] raises by
      default, or records them when [strict:false] for diagnostic runs).

    The per-step hook receives cumulative costs and supports time-series
    experiments (cost curves, crossover plots) without a second run.

    {2 Accounting modes}

    Historically every step paid an [O(n)] {!Assignment.diff_into} scan for
    migrations plus [O(ell)] load scans for the running maximum and the
    capacity check — even when the algorithm moved nothing.  Algorithms
    that expose a move journal ({!Online.t.journal}) are instead charged
    incrementally in [O(moves + 1)] per request; the full-scan path remains
    both as the fallback for journal-less algorithms and as a cross-check
    oracle ([`Check]) used by the test suite.  All modes produce identical
    results. *)

type accounting = [ `Auto | `Incremental | `Diff | `Check ]
(** [`Auto] (default): incremental when the algorithm exposes a journal,
    full-scan otherwise.  [`Incremental]: require the journal (raises
    [Invalid_argument] if absent).  [`Diff]: force the full-scan path even
    when a journal is available.  [`Check]: run the incremental path {e and}
    verify it against the full-scan oracle after every step, raising
    [Failure] on any divergence in migration charges, shadow state or
    capacity verdicts. *)

type result = {
  cost : Cost.t;
  steps : int;
  max_load : int;  (** maximum server load ever observed after a reaction *)
  capacity_violations : int;
  per_step : (int * int) array option;
      (** cumulative (comm, mig) after each step when requested *)
}

type stepper
(** Incremental form of {!run}: the same accounting state machine, one
    request at a time.  [run] is implemented on top of it; the streaming
    serving engine ({!Rbgp_serve.Engine}) drives it directly from an
    unbounded request source. *)

val stepper :
  ?strict:bool ->
  ?accounting:accounting ->
  ?cost:Cost.t ->
  ?max_load:int ->
  ?violations:int ->
  ?steps_done:int ->
  Instance.t ->
  Online.t ->
  stepper
(** [stepper inst alg] captures the algorithm's current assignment as the
    accounting baseline (any moves made before this call — construction, or
    a checkpoint restore — are not billed).  The optional [cost],
    [max_load], [violations] and [steps_done] seeds resume cumulative
    accounting mid-stream from a checkpoint; they default to a fresh run.
    [cost] is owned by the stepper and mutated in place. *)

val step : stepper -> int -> int * int
(** [step st e] serves one request on edge [e]: charges communication,
    calls the algorithm's [serve], charges migrations, updates the load
    maximum and checks capacity (raising [Failure] in strict mode).
    Returns this request's [(comm, migrations)] — cumulative totals are in
    {!stepper_result}.  Raises [Invalid_argument] if [e] is out of
    [\[0, n)]. *)

val step_frozen : stepper -> int -> int * int
(** [step_frozen st e] serves one request on the degraded never-move
    path: communication is charged iff [e] is currently cut, the
    algorithm's [serve] is {e not} called, no migrations occur, and the
    load maximum / capacity check / step counter advance as usual.  Used
    by the serving engine when a per-request solver budget is exceeded —
    and during checkpoint replay of positions recorded as degraded, so
    resumption remains byte-identical.  Raises [Invalid_argument] if [e]
    is out of [\[0, n)]. *)

val prepare : stepper -> int array -> int -> int * int
(** [prepare st edges] pre-solves a whole batch of requests and returns a
    [play] function; [play j] performs the accounting of
    [step st edges.(j)] and returns the same [(comm, migrations)] pair.
    When the algorithm provides a batched path ({!Online.t.batch}) the
    decisions for all requests are computed before the first [play] —
    potentially sharded across domains — while costs, journal accounting,
    load tracking and capacity checks still happen request by request in
    arrival order, so results are identical to [step]ping each edge.

    [play] must be called exactly in order [j = 0, 1, ...] (raises
    [Invalid_argument] otherwise).  Unlike [step], all edges are validated
    {e up front}, so an out-of-range edge anywhere in the batch raises
    before any request is served.  On a strict-mode capacity failure at
    request [j], requests after [j] have already been pre-solved inside
    the algorithm; the stepper must not be reused past the failure. *)

val stepper_result : stepper -> result
(** Cumulative totals so far ([per_step] is always [None]; the returned
    [cost] is the live accumulator, not a copy). *)

val run :
  ?strict:bool ->
  ?record_steps:bool ->
  ?on_step:(int -> Cost.t -> unit) ->
  ?accounting:accounting ->
  Instance.t ->
  Online.t ->
  Trace.t ->
  steps:int ->
  result
(** [run inst alg trace ~steps] simulates [steps] requests.
    @param strict raise [Failure] on a capacity violation (default [true])
    @param record_steps keep the cumulative cost series (default [false])
    @param on_step called after each step with the step index and cumulative
    cost
    @param accounting migration/load accounting mode (default [`Auto]) *)

val replay_cost : Instance.t -> int array -> assignments:int array array -> Cost.t
(** [replay_cost inst trace ~assignments] computes the cost of an arbitrary
    (offline) schedule: [assignments.(t)] is the assignment used when request
    [trace.(t)] arrives (communication billed against it), and migrations
    are billed between consecutive assignments, including the initial move
    from [inst.initial] to [assignments.(0)].  Used to price offline optima
    and hand-crafted schedules in tests. *)
