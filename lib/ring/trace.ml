type t = Fixed of int array | Adaptive of (int -> Assignment.t -> int)

let fixed a = Fixed a
let adaptive f = Adaptive f

let length = function Fixed a -> Some (Array.length a) | Adaptive _ -> None

let next t step assignment =
  match t with
  | Fixed a ->
      if step < 0 || step >= Array.length a then
        invalid_arg "Trace.next: step out of bounds";
      a.(step)
  | Adaptive f -> f step assignment

let validate ~n t ~steps =
  match t with
  | Adaptive _ -> ()
  | Fixed a ->
      if Array.length a < steps then
        invalid_arg "Trace.validate: fixed trace shorter than steps";
      Array.iter
        (fun e ->
          if e < 0 || e >= n then
            invalid_arg "Trace.validate: edge index out of range")
        a
