(** Cyclic segments (sets of consecutive processes) on the ring [Z_n].

    A segment [S = \[a, b\]] is the set [{a, a+1, ..., b}] with arithmetic
    modulo [n]; it is represented by its start and length, which avoids the
    wrap-around ambiguity of endpoint pairs.  Segments of length [n] (the
    whole ring) are allowed; empty segments are not representable (use
    [option] at call sites).

    The paper identifies the edge [(i, i+1)] with index [i]; a segment
    [\[a, b\]] "between cut edges [(a-1, a)] and [(b, b+1)]" contains
    processes [a..b]. *)

type t = private { start : int; len : int; n : int }

val make : n:int -> start:int -> len:int -> t
(** Requires [0 < len <= n]; [start] is normalized into [\[0, n)]. *)

val of_endpoints : n:int -> int -> int -> t
(** [of_endpoints ~n a b] is the clockwise segment from [a] to [b]
    inclusive.  [a = b] gives a singleton; [(b - a) mod n = n - 1] gives the
    whole ring minus nothing... i.e. length [n]. *)

val whole : n:int -> t
val length : t -> int
val first : t -> int
val last : t -> int
val mem : t -> int -> bool
val to_list : t -> int list
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val subset : t -> t -> bool
(** [subset inner outer]: is every process of [inner] in [outer]? *)

val inter_size : t -> t -> int
(** Number of processes in both segments (segments on the same ring). *)

val cw_distance : n:int -> int -> int -> int
(** [cw_distance ~n a b] is the clockwise distance from [a] to [b], in
    [\[0, n)]. *)

val ring_distance : n:int -> int -> int -> int
(** Shortest cyclic distance between two positions, in [\[0, n/2\]]. *)

val edges_inside : t -> int list
(** Edge indices [(i, i+1)] with both endpoints in the segment, i.e.
    [first t .. last t - 1] cyclically ([len - 1] edges; for the whole ring,
    all [n] edges). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
