(** Deterministic, splittable pseudo-random number generation.

    All randomized algorithms in this repository draw exclusively from this
    module so that every experiment is reproducible from a single integer
    seed.  The generator is xoshiro256++ seeded through splitmix64, which is
    the standard recommendation for initializing xoshiro state.  [split]
    derives an independent stream, used to give each online algorithm, each
    workload generator and each interval-local sub-algorithm its own stream
    so that adding draws in one component does not perturb another. *)

type t

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val split : t -> t
(** [split t] returns a fresh generator whose stream is independent of
    [t]'s future output.  Advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the exact current state (same future outputs). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0].
    Uses rejection sampling, so the result is exactly uniform. *)

val float : t -> float
(** Uniform float in [\[0, 1)], using 53 bits of randomness. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli(p) process, for [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate). *)
