(* Persistent domain pool.

   PR-1's pool spawned [d - 1] fresh domains on every [map]; for quick-mode
   experiments the spawn cost (several ms per domain: runtime registration,
   minor-heap setup) dwarfed the work and parallel runs *lost* to sequential
   ones.  This version spawns worker domains once, keeps them parked on a
   condition variable, and feeds them jobs through a single published-job
   slot.  A job is claimed chunk by chunk off a shared atomic cursor, so
   scheduling is dynamic but the result layout is positional and therefore
   deterministic; the only cross-domain traffic inside a job is the cursor
   and the first-error cell.

   Chunk size ("grain") is tunable: [set_grain] / [RBGP_GRAIN] force a fixed
   grain.  Without a forced grain the pool is cost-aware: callers may tag a
   [map] with a [~family] label, the pool keeps an EWMA of the measured
   ns/item per family, and uses it to (a) route jobs whose estimated total
   work is below a cutoff straight to the sequential path (parallel dispatch
   would cost more than it saves) and (b) size chunks so each trip to the
   cursor carries roughly [target_chunk_ns] of work.  With no estimate the
   old default [max 1 (n / (8 d))] keeps ~8 chunks per participant.  The
   clock only steers scheduling, never results. *)

let override = Atomic.make None

let set_domains d =
  (match d with
  | Some d when d < 1 -> invalid_arg "Pool.set_domains: need at least 1 domain"
  | _ -> ());
  Atomic.set override d

let positive_env name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | _ -> None)

let env_domains () = positive_env "RBGP_DOMAINS"

let domains () =
  match Atomic.get override with
  | Some d -> d
  | None -> (
      match env_domains () with
      | Some d -> d
      | None -> Stdlib.max 1 (Domain.recommended_domain_count ()))

let grain_override = Atomic.make None

let set_grain g =
  (match g with
  | Some g when g < 1 -> invalid_arg "Pool.set_grain: need a grain of at least 1"
  | _ -> ());
  Atomic.set grain_override g

let grain () =
  match Atomic.get grain_override with
  | Some g -> Some g
  | None -> positive_env "RBGP_GRAIN"

(* --- measured per-item cost, by job family --------------------------- *)

(* EWMA of observed ns/item keyed by the caller-supplied family label.
   Sequential runs measure exactly; parallel runs scale wall time by
   [min (participants, cores)] — the effective parallelism — so the
   estimate approximates sequential CPU cost per item.  Scaling by raw
   participant count would over-estimate by the oversubscription factor
   on a machine with fewer cores than domains, and the resulting
   feedback loop (parallel run -> inflated estimate -> stays parallel)
   could pin a genuinely tiny job to the parallel path forever. *)
let ewma_alpha = 0.3
let cost_mutex = Mutex.create ()
let cost_table : (string, float) Hashtbl.t = Hashtbl.create 16

let estimated_cost_ns family =
  Mutex.lock cost_mutex;
  let r = Hashtbl.find_opt cost_table family in
  Mutex.unlock cost_mutex;
  r

let reset_estimates () =
  Mutex.lock cost_mutex;
  Hashtbl.reset cost_table;
  Mutex.unlock cost_mutex

let record_cost family ns_per_item =
  Mutex.lock cost_mutex;
  let v =
    match Hashtbl.find_opt cost_table family with
    | None -> ns_per_item
    | Some prev -> prev +. (ewma_alpha *. (ns_per_item -. prev))
  in
  Hashtbl.replace cost_table family v;
  Mutex.unlock cost_mutex

(* Jobs whose estimated total work is below this go sequential: waking
   parked workers, cursor traffic and the join handshake cost tens of
   microseconds, so a sub-cutoff job loses by going parallel. *)
let default_cutoff_ns = 200_000.
let cutoff_override = Atomic.make None

let set_sequential_cutoff c =
  (match c with
  | Some c when not (c > 0.) ->
      invalid_arg "Pool.set_sequential_cutoff: need a positive cutoff"
  | _ -> ());
  Atomic.set cutoff_override c

let sequential_cutoff_ns () =
  match Atomic.get cutoff_override with
  | Some c -> c
  | None -> (
      match Sys.getenv_opt "RBGP_SEQ_CUTOFF_NS" with
      | None | Some "" -> default_cutoff_ns
      | Some s -> (
          match float_of_string_opt (String.trim s) with
          | Some c when c > 0. -> c
          | _ -> default_cutoff_ns))

(* Aim for chunks carrying about this much work, so cursor round-trips are
   amortized on cheap items while expensive items still load-balance. *)
let target_chunk_ns = 100_000.

let chunk_size ?est ~n ~d () =
  match grain () with
  | Some g -> g
  | None -> (
      match est with
      | Some c when c > 0. ->
          let by_cost = int_of_float (Float.ceil (target_chunk_ns /. c)) in
          Stdlib.max 1 (Stdlib.min (Stdlib.max 1 (n / (d * 2))) by_cost)
      | _ -> Stdlib.max 1 (n / (d * 8)))

let now_ns () = Unix.gettimeofday () *. 1e9
let last_parallel = Atomic.make false
let last_map_parallel () = Atomic.get last_parallel

(* --- the persistent worker pool ------------------------------------- *)

(* A job hands out [0, total) in [chunk]-sized slices via [cursor]; [run]
   processes one slice.  [participants] counts domains currently executing
   slices (including the submitter); the submitter publishes the job, works
   on it itself, then waits until every participant has drained.  Workers
   that wake up after the cursor is exhausted join, find nothing, and leave
   — harmless.  [max_workers] caps how many pool workers may join so a
   [map ~domains:d] uses at most [d - 1] of them even when more are alive. *)
type job = {
  id : int;
  run : int -> int -> unit; (* run lo hi: process items [lo, hi) *)
  cursor : int Atomic.t;
  total : int;
  chunk : int;
  max_workers : int;
  mutable joined : int; (* workers admitted; guarded by [mutex] *)
  mutable participants : int; (* domains inside [drain]; guarded by [mutex] *)
}

let mutex = Mutex.create ()
let work_available = Condition.create ()
let job_done = Condition.create ()
let current_job : job option ref = ref None
let quitting = ref false
let workers : unit Domain.t list ref = ref []
let worker_count = ref 0
let next_job_id = ref 0

(* a worker (or the submitter) pulls slices until the cursor runs dry *)
let drain job =
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add job.cursor job.chunk in
    if lo >= job.total then continue := false
    else job.run lo (Stdlib.min job.total (lo + job.chunk))
  done

let worker_loop () =
  let last_seen = ref (-1) in
  let running = ref true in
  while !running do
    Mutex.lock mutex;
    let claimed = ref None in
    while
      !claimed = None && not !quitting
      &&
      match !current_job with
      | Some j when j.id <> !last_seen && j.joined < j.max_workers ->
          claimed := Some j;
          false
      | _ -> true
    do
      Condition.wait work_available mutex
    done;
    (match !claimed with
    | Some j ->
        j.joined <- j.joined + 1;
        j.participants <- j.participants + 1;
        last_seen := j.id;
        Mutex.unlock mutex;
        drain j;
        Mutex.lock mutex;
        j.participants <- j.participants - 1;
        if j.participants = 0 then Condition.broadcast job_done;
        Mutex.unlock mutex
    | None ->
        (* the wait predicate only falls through without a claim when
           [shutdown] is in progress *)
        running := false;
        Mutex.unlock mutex)
  done

(* make sure at least [w] workers are alive; workers persist until
   [shutdown] (or process exit) *)
let ensure_workers w =
  Mutex.lock mutex;
  while !worker_count < w do
    workers := Domain.spawn worker_loop :: !workers;
    incr worker_count
  done;
  Mutex.unlock mutex

let shutdown () =
  Mutex.lock mutex;
  quitting := true;
  Condition.broadcast work_available;
  let to_join = !workers in
  workers := [];
  worker_count := 0;
  Mutex.unlock mutex;
  List.iter Domain.join to_join;
  Mutex.lock mutex;
  quitting := false;
  Mutex.unlock mutex

let () = at_exit shutdown

let warmup ?domains:d () =
  let d = match d with Some d -> Stdlib.max 1 d | None -> domains () in
  ensure_workers (d - 1)

(* Keep the error of the smallest input index, as a sequential loop would
   raise it first. *)
let record_error cell i exn bt =
  let rec loop () =
    let prev = Atomic.get cell in
    let keep = match prev with None -> true | Some (j, _, _) -> i < j in
    if keep && not (Atomic.compare_and_set cell prev (Some (i, exn, bt))) then
      loop ()
  in
  loop ()

(* A nested [map] (from inside a worker, or from [f] during an outer map on
   the submitting domain) would wait for the busy job slot that its own
   caller holds — deadlock.  One job in flight at a time; everyone else
   degrades to the sequential path, which is always correct. *)
let slot_busy = Atomic.make false

let map ?domains:d ?family f items =
  let n = Array.length items in
  let d = match d with Some d -> Stdlib.max 1 d | None -> domains () in
  let est =
    match family with None -> None | Some fam -> estimated_cost_ns fam
  in
  (* a forced grain disables the cost heuristic entirely *)
  let small_job =
    match (grain (), est) with
    | None, Some c -> c *. float_of_int n < sequential_cutoff_ns ()
    | _ -> false
  in
  let run_sequential () =
    Atomic.set last_parallel false;
    match family with
    | None -> Array.map f items
    | Some fam ->
        let t0 = now_ns () in
        let r = Array.map f items in
        if n > 0 then record_cost fam ((now_ns () -. t0) /. float_of_int n);
        r
  in
  if
    d = 1 || n <= 1 || small_job
    || not (Atomic.compare_and_set slot_busy false true)
  then run_sequential ()
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set slot_busy false)
      (fun () ->
        Atomic.set last_parallel true;
        let results = Array.make n None in
        let error = Atomic.make None in
        let run lo hi =
          for i = lo to hi - 1 do
            if Atomic.get error = None then
              try results.(i) <- Some (f items.(i))
              with e -> record_error error i e (Printexc.get_raw_backtrace ())
          done
        in
        ensure_workers (d - 1);
        let t0 = now_ns () in
        Mutex.lock mutex;
        let job =
          {
            id =
              (incr next_job_id;
               !next_job_id);
            run;
            cursor = Atomic.make 0;
            total = n;
            chunk = chunk_size ?est ~n ~d ();
            max_workers = d - 1;
            joined = 0;
            participants = 1 (* the submitter *);
          }
        in
        current_job := Some job;
        Condition.broadcast work_available;
        Mutex.unlock mutex;
        drain job;
        Mutex.lock mutex;
        job.participants <- job.participants - 1;
        while job.participants > 0 do
          Condition.wait job_done mutex
        done;
        current_job := None;
        Mutex.unlock mutex;
        (match Atomic.get error with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None ->
            (match family with
            | Some fam ->
                let wall = now_ns () -. t0 in
                let cores = Domain.recommended_domain_count () in
                let cpus = float_of_int (min (job.joined + 1) cores) in
                record_cost fam (wall *. cpus /. float_of_int n)
            | None -> ()));
        Array.map
          (function
            | Some v -> v
            | None ->
                (* unreachable without an error, which was re-raised above *)
                assert false)
          results)

let map_list ?domains ?family f items =
  Array.to_list (map ?domains ?family f (Array.of_list items))

let map_seeded ?domains ?family ~rng f items =
  let tasks = Array.map (fun x -> (Rng.split rng, x)) items in
  map ?domains ?family (fun (child, x) -> f child x) tasks
