(* Work-stealing-lite: a shared atomic cursor hands out fixed-size chunks of
   the input to whichever domain is free.  Each result is written to its own
   slot, so ordering is positional and never depends on the schedule; the
   only cross-domain communication is the cursor and the first-error cell. *)

let override = Atomic.make None

let set_domains d =
  (match d with
  | Some d when d < 1 -> invalid_arg "Pool.set_domains: need at least 1 domain"
  | _ -> ());
  Atomic.set override d

let env_domains () =
  match Sys.getenv_opt "RBGP_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | _ -> None)

let domains () =
  match Atomic.get override with
  | Some d -> d
  | None -> (
      match env_domains () with
      | Some d -> d
      | None -> Stdlib.max 1 (Domain.recommended_domain_count ()))

(* Keep the error of the smallest input index, as a sequential loop would
   raise it first. *)
let record_error cell i exn bt =
  let rec loop () =
    let prev = Atomic.get cell in
    let keep =
      match prev with None -> true | Some (j, _, _) -> i < j
    in
    if keep && not (Atomic.compare_and_set cell prev (Some (i, exn, bt))) then
      loop ()
  in
  loop ()

let map ?domains:d f items =
  let n = Array.length items in
  let d = match d with Some d -> Stdlib.max 1 d | None -> domains () in
  if d = 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let cursor = Atomic.make 0 in
    (* small chunks for load balance, but at least 1 so the cursor always
       advances; 8 chunks per domain amortizes the atomic traffic *)
    let chunk = Stdlib.max 1 (n / (d * 8)) in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue := false
        else
          let stop = Stdlib.min n (start + chunk) in
          for i = start to stop - 1 do
            if Atomic.get error = None then
              try results.(i) <- Some (f items.(i))
              with e -> record_error error i e (Printexc.get_raw_backtrace ())
          done
      done
    in
    let spawned = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None ->
            (* unreachable without an error, which was re-raised above *)
            assert false)
      results
  end

let map_list ?domains f items =
  Array.to_list (map ?domains f (Array.of_list items))

let map_seeded ?domains ~rng f items =
  let tasks = Array.map (fun x -> (Rng.split rng, x)) items in
  map ?domains (fun (child, x) -> f child x) tasks
