(** Deterministic, {e persistent} Domain-based work pool.

    The experiment harness fans independent grid cells (algorithm x workload
    x seed x k) across cores with {!map}.  Worker domains are spawned once
    (on first use, or explicitly via {!warmup}) and then parked on a
    condition variable between jobs, so fan-out cost is amortized across an
    entire experiment run instead of being paid per table.  Three properties
    make the parallel runs indistinguishable from sequential ones:

    - {b deterministic ordering}: [map f items] always returns results in
      input order, regardless of which domain computed which item and in
      which order chunks were claimed;
    - {b deterministic errors}: if several items raise, the exception of the
      {e smallest} input index is re-raised, exactly as a sequential loop
      would have surfaced it first;
    - {b seed isolation}: {!map_seeded} pre-splits one child {!Rng.t} per
      item from a parent generator {e sequentially} (in input order) before
      any parallelism starts, so each task owns an independent stream whose
      identity does not depend on the schedule.

    Tasks must not share mutable state with each other; the harness
    guarantees this by constructing all shared inputs (instances, traces,
    offline DP tables) before the fan-out and treating them as read-only.

    The default domain count is resolved, in order, from: an explicit
    {!set_domains} override (the [--domains] CLI flag), the [RBGP_DOMAINS]
    environment variable, and [Domain.recommended_domain_count ()].  With a
    single domain (or a single item) [map] degrades to a plain sequential
    [Array.map] in the calling domain — no workers are woken.  Nested
    [map]s (from a worker, or from [f] itself) also run sequentially rather
    than deadlocking on the single job slot.

    The scheduling {e grain} — how many items a worker claims per trip to
    the shared cursor — is resolved from {!set_grain} (the [--grain] CLI
    flag), the [RBGP_GRAIN] environment variable, or chosen automatically
    (see below).  Larger grains reduce cursor traffic for many tiny cells;
    grain 1 maximizes load balance for few expensive cells.  The grain
    never affects results, only the schedule.

    {2 Cost-measured auto-grain}

    Callers that issue the same shape of job repeatedly tag their maps with
    a [~family] label.  The pool measures every tagged map (wall time per
    item; parallel runs are scaled by the effective parallelism —
    participants capped at the core count — so the estimate approximates
    sequential CPU cost even on an oversubscribed machine) and folds the
    observation into a per-family EWMA ([alpha = 0.3]).  The estimate
    steers two decisions for subsequent maps of the same family:

    - {b sequential fallback}: if the estimated {e total} work
      [est_ns_per_item * n] is below the cutoff (default 200 us; override
      with {!set_sequential_cutoff} or [RBGP_SEQ_CUTOFF_NS]), the job runs
      sequentially in the caller — waking parked workers and the join
      handshake would cost more than the parallelism saves.  This is what
      keeps small/quick configurations on the sequential path without any
      per-call-site tuning.
    - {b chunk sizing}: chunks are sized to carry roughly 100 us of
      estimated work each (clamped to at least two chunks per participant),
      so cheap items amortize cursor traffic and expensive items still
      load-balance.

    A forced grain ({!set_grain} / [RBGP_GRAIN]) disables the heuristic
    entirely and restores the fixed-grain behavior: jobs always attempt the
    parallel path with the forced chunk size.  Untagged maps behave as
    before (optimistic parallel dispatch, [max 1 (n / (8 d))] chunks).
    The first map of a family has no estimate yet and is dispatched
    optimistically in parallel.  Estimates never affect results, only the
    schedule; the byte-identity qchecks in [test_pool] hold under every
    mode. *)

val set_domains : int option -> unit
(** Process-wide override of the default domain count ([Some d] with
    [d >= 1]); [None] restores env/auto detection.  Raises
    [Invalid_argument] on [Some d] with [d < 1]. *)

val domains : unit -> int
(** The effective default domain count (override, else [RBGP_DOMAINS],
    else [Domain.recommended_domain_count ()]); always at least 1. *)

val set_grain : int option -> unit
(** Process-wide override of the scheduling grain ([Some g] with [g >= 1]);
    [None] restores env/auto detection.  Raises [Invalid_argument] on
    [Some g] with [g < 1]. *)

val grain : unit -> int option
(** The forced grain, if any (override, else [RBGP_GRAIN]); [None] means
    the automatic per-job default. *)

val warmup : ?domains:int -> unit -> unit
(** Pre-spawn the worker domains a subsequent [map ~domains] would use, so
    the first parallel job does not pay domain-creation cost.  Idempotent;
    benchmarks call this to separate pool-spawn cost from algorithmic
    speedup. *)

val shutdown : unit -> unit
(** Join and discard all parked workers (the next parallel [map] or
    {!warmup} re-spawns cold).  Called automatically at process exit;
    benchmarks call it to measure cold-start cost. *)

val set_sequential_cutoff : float option -> unit
(** Process-wide override of the auto-grain sequential-fallback cutoff in
    nanoseconds ([Some c] with [c > 0.]); [None] restores
    [RBGP_SEQ_CUTOFF_NS]/default resolution.  Raises [Invalid_argument] on
    a non-positive cutoff. *)

val sequential_cutoff_ns : unit -> float
(** The effective cutoff (override, else [RBGP_SEQ_CUTOFF_NS], else
    200 us): tagged jobs with estimated total work below this run
    sequentially. *)

val estimated_cost_ns : string -> float option
(** The current EWMA estimate of ns/item for a job family, if any map
    tagged with that family has completed. *)

val reset_estimates : unit -> unit
(** Drop all per-family cost estimates (next tagged map of each family is
    dispatched optimistically again).  Benchmarks use this to make runs
    independent of earlier jobs. *)

val last_map_parallel : unit -> bool
(** Whether the most recent {!map} on any domain took the parallel path
    (true) or the sequential path (false).  A scheduling diagnostic for
    tests and benchmarks only — results are identical either way. *)

val map : ?domains:int -> ?family:string -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f items] applies [f] to every element, using up to
    [domains] domains (including the caller), and returns the results in
    input order.  Chunked dynamic scheduling balances uneven task costs.
    Output is identical to [Array.map f items] whenever every [f] call is
    independent of the others.  [~family] opts into the cost-measured
    auto-grain heuristic described above; it changes scheduling only,
    never results. *)

val map_list : ?domains:int -> ?family:string -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val map_seeded :
  ?domains:int ->
  ?family:string ->
  rng:Rng.t ->
  (Rng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map_seeded ~rng f items] splits one child generator per item off [rng]
    sequentially (advancing [rng] exactly [Array.length items] times), then
    runs [f child_rng item] in parallel.  Bit-identical to the sequential
    loop [Array.map (fun x -> f (Rng.split rng) x) items]. *)
