(** Small statistics toolkit for the experiment harness.

    Competitive-ratio experiments summarize many seeded runs (mean, standard
    deviation, quantiles) and fit growth exponents by least squares on
    log-transformed data (e.g. "does cost/OPT grow like log^2 k or like k?").
    Everything operates on plain float arrays. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [0 <= q <= 1], linear interpolation between order
    statistics.  Does not mutate the input. *)

val median : float array -> float

type linfit = { slope : float; intercept : float; r2 : float }

val linear_fit : float array -> float array -> linfit
(** Ordinary least squares of y against x.  Requires equal lengths >= 2. *)

val loglog_fit : float array -> float array -> linfit
(** Least squares of [log y] against [log x]: the slope estimates the
    polynomial growth exponent.  All inputs must be positive. *)

val log_x_fit : float array -> float array -> linfit
(** Least squares of [y] against [log x]: a good fit (high r2, stable slope)
    indicates logarithmic growth of y in x. *)

val describe : float array -> string
(** One-line summary "mean m sd s min a med b max c" used in reports. *)
