(** CRC-32 (IEEE 802.3) checksums.

    The reflected-polynomial variant used by zlib, PNG and Ethernet.
    Checkpoint files append this as a little-endian 32-bit trailer so a
    torn or bit-flipped record is detected before any field is trusted.
    Results are in [\[0, 2^32)], carried in an OCaml [int]. *)

val string : ?pos:int -> ?len:int -> string -> int
(** [string s] is the CRC-32 of [s] (or of the designated substring). *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends a running checksum, so a large
    buffer can be streamed in chunks: [string s = update 0 s ...]. *)
