(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
   Used as the integrity trailer of RBGC/v2 checkpoints.  The table is
   built once at module init; [string] streams a whole buffer through it. *)

let table =
  let t = Array.make 256 0 in
  for i = 0 to 255 do
    let c = ref i in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(i) <- !c
  done;
  t

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    let byte = Char.code s.[i] in
    crc := table.((!crc lxor byte) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  update 0 s ~pos ~len
