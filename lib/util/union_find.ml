type t = {
  parent : int array;
  size : int array;
  mutable components : int;
}

let create n =
  if n <= 0 then invalid_arg "Union_find.create: n must be positive";
  { parent = Array.init n (fun i -> i); size = Array.make n 1; components = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let small, big = if t.size.(ra) < t.size.(rb) then (ra, rb) else (rb, ra) in
    t.parent.(small) <- big;
    t.size.(big) <- t.size.(big) + t.size.(small);
    t.components <- t.components - 1;
    big
  end

let same t a b = find t a = find t b
let size t x = t.size.(find t x)
let components t = t.components

let members t x =
  let root = find t x in
  let acc = ref [] in
  for i = Array.length t.parent - 1 downto 0 do
    if find t i = root then acc := i :: !acc
  done;
  !acc
