type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  ncols : int;
  mutable rows : row list; (* reversed *)
  mutable aligns : align array option;
}

let create ~headers =
  if headers = [] then invalid_arg "Tbl.create: no headers";
  { headers; ncols = List.length headers; rows = []; aligns = None }

let is_numeric s =
  match float_of_string_opt (String.trim s) with Some _ -> true | None -> false

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg "Tbl.add_row: wrong number of cells";
  (match t.aligns with
  | Some _ -> ()
  | None ->
      t.aligns <-
        Some (Array.of_list (List.map (fun c -> if is_numeric c then Right else Left) cells)));
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let aligns =
    match t.aligns with Some a -> a | None -> Array.make t.ncols Left
  in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Rule -> ()
      | Cells cs ->
          List.iteri
            (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
            cs)
    rows;
  let buf = Buffer.create 1024 in
  let sep ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line align_per_col cs =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let a = if align_per_col then aligns.(i) else Left in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf " |")
      cs;
    Buffer.add_char buf '\n'
  in
  sep '-';
  line false t.headers;
  sep '=';
  List.iter (function Rule -> sep '-' | Cells cs -> line true cs) rows;
  sep '-';
  Buffer.contents buf

let print t = print_string (render t)

let cell_f v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let cell_i = string_of_int

let cell_ratio r =
  if Float.is_nan r then "nan"
  else if r = Float.infinity then "inf"
  else if r = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.2f" r
