type t = float array

let of_weights w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Dist.of_weights: empty";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    if w.(i) < 0.0 || Float.is_nan w.(i) then
      invalid_arg "Dist.of_weights: negative or NaN weight";
    total := !total +. w.(i)
  done;
  if not (!total > 0.0) then invalid_arg "Dist.of_weights: zero total mass";
  Array.map (fun v -> v /. !total) w

let grad_total g =
  let n = Array.length g in
  if n = 0 then invalid_arg "Dist.of_grad: empty";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    if g.(i) < 0.0 || Float.is_nan g.(i) then
      invalid_arg "Dist.of_grad: negative or NaN entry";
    total := !total +. g.(i)
  done;
  if Float.abs (!total -. 1.0) > 1e-6 then
    invalid_arg "Dist.of_grad: not normalized";
  !total

let of_grad g =
  let total = grad_total g in
  Array.map (fun v -> v /. total) g

let of_grad_into g (dst : t) =
  if Array.length g <> Array.length dst then
    invalid_arg "Dist.of_grad_into: size mismatch";
  let total = grad_total g in
  for i = 0 to Array.length g - 1 do
    dst.(i) <- g.(i) /. total
  done

let uniform n =
  if n <= 0 then invalid_arg "Dist.uniform: n must be positive";
  Array.make n (1.0 /. float_of_int n)

let point i ~n =
  if i < 0 || i >= n then invalid_arg "Dist.point: index out of range";
  let a = Array.make n 0.0 in
  a.(i) <- 1.0;
  a

let size = Array.length
let prob (t : t) i = t.(i)

let support (t : t) =
  let acc = ref [] in
  for i = Array.length t - 1 downto 0 do
    if t.(i) > 0.0 then acc := i :: !acc
  done;
  !acc

let sample rng (t : t) =
  let u = Rng.float rng in
  let n = Array.length t in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. t.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0

(* Sample from the normalized positive part of (new - old).  Total positive
   mass equals TV distance; if it is numerically zero fall back to sampling
   new_dist directly. *)
let sample_excess rng (old_dist : t) (new_dist : t) =
  let n = Array.length new_dist in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let d = new_dist.(i) -. old_dist.(i) in
    if d > 0.0 then total := !total +. d
  done;
  if not (!total > 0.0) then sample rng new_dist
  else begin
    let u = Rng.float rng *. !total in
    let rec go i acc =
      if i >= n - 1 then n - 1
      else
        let d = new_dist.(i) -. old_dist.(i) in
        let acc = if d > 0.0 then acc +. d else acc in
        if u < acc then i else go (i + 1) acc
    in
    go 0 0.0
  end

let resample_coupled rng ~current ~old_dist ~new_dist =
  let po = prob old_dist current and pn = prob new_dist current in
  if Array.length (old_dist : t :> float array)
     <> Array.length (new_dist : t :> float array)
  then invalid_arg "Dist.resample_coupled: size mismatch";
  if po <= 0.0 then
    (* current was not actually in old support: just sample fresh *)
    sample rng new_dist
  else
    let stay = Float.min 1.0 (pn /. po) in
    if Rng.float rng < stay then current
    else sample_excess rng old_dist new_dist

let l1_distance (a : t) (b : t) =
  if Array.length a <> Array.length b then
    invalid_arg "Dist.l1_distance: size mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let tv_distance a b = 0.5 *. l1_distance a b

let earthmover_line (a : t) (b : t) =
  if Array.length a <> Array.length b then
    invalid_arg "Dist.earthmover_line: size mismatch";
  (* W1 on the line = sum over cut points of |F_a(i) - F_b(i)| *)
  let acc = ref 0.0 in
  let fa = ref 0.0 and fb = ref 0.0 in
  for i = 0 to Array.length a - 2 do
    fa := !fa +. a.(i);
    fb := !fb +. b.(i);
    acc := !acc +. Float.abs (!fa -. !fb)
  done;
  !acc

let expectation (t : t) f =
  let acc = ref 0.0 in
  for i = 0 to Array.length t - 1 do
    if t.(i) > 0.0 then acc := !acc +. (t.(i) *. f i)
  done;
  !acc

let to_array (t : t) = Array.copy t
