(** Durable file writes and transient-I/O retry.

    This module is the audited atomic-write helper referenced by lint
    rule [r9-durability]: durability-sensitive modules (checkpoints,
    trace writers in the serve stack) must route file creation through
    [atomic_write] instead of opening output channels directly, so that
    a crash mid-write can never leave a torn file at the published
    path. *)

val atomic_write : path:string -> string -> unit
(** [atomic_write ~path data] writes [data] to [path ^ ".tmp"], fsyncs
    it, atomically renames it over [path], then fsyncs the parent
    directory.  After a crash at any instruction, [path] holds either
    its previous complete contents or [data] in full — never a prefix.
    Raises [Sys_error] / [Unix.Unix_error] on genuine I/O failure; the
    tmp file is removed on the error path. *)

val fsync_dir : string -> unit
(** [fsync_dir dir] fsyncs the directory [dir] so a preceding rename in
    it survives power loss.  Filesystems that cannot fsync a directory
    (the open or fsync is refused) are tolerated silently — the rename
    is still atomic, only its durability window widens. *)

val retry_transient : ?attempts:int -> (unit -> 'a) -> 'a
(** [retry_transient f] runs [f], retrying when it raises
    [Unix.Unix_error] with [EINTR], [EAGAIN] or [EWOULDBLOCK] — the
    transient conditions a signal-heavy or slow-source process sees on
    reads.  At most [attempts] (default 64) tries; the last attempt's
    exception propagates.  [f] must be safe to re-run, i.e. it must not
    have consumed input when it raises (true for the fault-injection
    hooks and for [Unix] calls that fail before transferring bytes). *)
