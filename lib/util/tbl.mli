(** ASCII table rendering for harness reports.

    The experiment harness prints one table per experiment (the repository's
    stand-in for the paper's missing evaluation tables).  Columns are sized
    to their widest cell; numeric cells are right-aligned, text cells
    left-aligned. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** Create a table; alignment is inferred per column from the first data row
    (cells parsing as floats are right-aligned). *)

val add_row : t -> string list -> unit
(** Rows must have exactly as many cells as there are headers. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val render : t -> string
(** Render with unicode-free ASCII borders, ending in a newline. *)

val print : t -> unit

val cell_f : float -> string
(** Format a float compactly: integers render without decimals, otherwise 3
    significant decimals. *)

val cell_i : int -> string

val cell_ratio : float -> string
(** Format a competitive ratio with two decimals, rendering the
    non-finite cases explicitly as ["inf"], ["-inf"] and ["nan"] — e.g. a
    comparator of cost zero against a positive online cost
    ({!Rbgp_ring.Cost.scale_ratio} returns [infinity] there) must not
    depend on [Printf]'s locale-dependent float formatting. *)
