(* xoshiro256++ with splitmix64 seeding.  Splitting is implemented by
   drawing a fresh 256-bit state from the parent through splitmix64 of a
   parent draw, which keeps child streams statistically independent for the
   experiment scales used here. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64 step: returns the next output and the advanced state. *)
let splitmix64 state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (Int64.logxor z (Int64.shift_right_logical z 31), state)

let of_seed64 seed =
  let z0, st = splitmix64 seed in
  let z1, st = splitmix64 st in
  let z2, st = splitmix64 st in
  let z3, _ = splitmix64 st in
  (* xoshiro state must not be all-zero; splitmix64 outputs make that
     astronomically unlikely, but guard anyway. *)
  if Int64.logor (Int64.logor z0 z1) (Int64.logor z2 z3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0 = z0; s1 = z1; s2 = z2; s3 = z3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub mask (Int64.rem mask bound64) in
  let rec draw () =
    let r = Int64.logand (bits64 t) mask in
    if r > limit then draw () else Int64.to_int (Int64.rem r bound64)
  in
  draw ()

let float t =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p out of range";
  if p >= 1.0 then 0
  else
    let u = float t in
    (* inverse CDF of the geometric distribution counting failures *)
    int_of_float (Float.of_int 1 *. floor (log1p (-.u) /. log1p (-.p)))

let exponential t rate =
  if not (rate > 0.0) then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.float t) /. rate
