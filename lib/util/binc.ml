let add_varint buf v =
  if v < 0 then invalid_arg "Binc.add_varint: negative";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let add_zigzag buf n = add_varint buf (zigzag n)

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_int_array buf a =
  add_varint buf (Array.length a);
  Array.iter (fun x -> add_zigzag buf x) a

type reader = { data : string; mutable pos : int }

let reader ?(pos = 0) data = { data; pos }

let truncated who pos =
  invalid_arg (Printf.sprintf "Binc.%s: truncated input at byte %d" who pos)

let read_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if r.pos >= String.length r.data then truncated "read_varint" r.pos;
    if !shift > 62 then invalid_arg "Binc.read_varint: varint too long";
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let read_zigzag r = unzigzag (read_varint r)

let read_string r =
  let len = read_varint r in
  if r.pos + len > String.length r.data then truncated "read_string" r.pos;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_int_array r =
  let len = read_varint r in
  Array.init len (fun _ -> read_zigzag r)

let at_end r = r.pos >= String.length r.data
let reader_pos r = r.pos

(* --- block decoding over byte regions --------------------------------- *)

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type region = { big : bigbytes; mutable rpos : int; rend : int }

let region ?(pos = 0) big =
  let len = Bigarray.Array1.dim big in
  if pos < 0 || pos > len then invalid_arg "Binc.region: position out of range";
  { big; rpos = pos; rend = len }

let region_of_string s =
  let len = String.length s in
  let big = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len in
  for i = 0 to len - 1 do
    Bigarray.Array1.set big i s.[i]
  done;
  { big; rpos = 0; rend = len }

let region_pos r = r.rpos
let region_length r = r.rend
let region_at_end r = r.rpos >= r.rend

let region_read_string r len =
  if len < 0 || r.rpos + len > r.rend then
    truncated "region_read_string" r.rpos;
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Bigarray.Array1.get r.big (r.rpos + i))
  done;
  r.rpos <- r.rpos + len;
  Bytes.unsafe_to_string b

let region_read_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if r.rpos >= r.rend then truncated "region_read_varint" r.rpos;
    if !shift > 62 then invalid_arg "Binc.region_read_varint: varint too long";
    let b = Char.code (Bigarray.Array1.get r.big r.rpos) in
    r.rpos <- r.rpos + 1;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let region_read_zigzag r = unzigzag (region_read_varint r)

(* The bulk decoder behind [Source.next_batch]: one tight loop over the
   mapped bytes, no closure per byte or per frame.  Torn-frame parity with
   the channel reader is load-bearing: complete varints decoded before a
   torn tail are delivered (return value < limit with the cursor parked on
   the torn byte), and only a call that cannot make progress — the torn
   varint is the very next thing in the region — raises.  A clean end of
   region returns 0, the block analogue of [input_varint_opt]'s [None]. *)
let decode_varints r out ~limit =
  if limit < 0 || limit > Array.length out then
    invalid_arg "Binc.decode_varints: bad limit";
  let big = r.big and rend = r.rend in
  let pos = ref r.rpos and count = ref 0 in
  (try
     while !count < limit && !pos < rend do
       let b0 = Char.code (Bigarray.Array1.get big !pos) in
       if b0 < 0x80 then begin
         (* single-byte fast path: the common case for small rings *)
         out.(!count) <- b0;
         incr count;
         incr pos
       end
       else begin
         let v = ref (b0 land 0x7f) and shift = ref 7 and p = ref (!pos + 1) in
         let continue = ref true in
         while !continue do
           if !p >= rend then raise Exit;
           if !shift > 62 then
             invalid_arg "Binc.decode_varints: varint too long";
           let b = Char.code (Bigarray.Array1.get big !p) in
           incr p;
           v := !v lor ((b land 0x7f) lsl !shift);
           shift := !shift + 7;
           continue := b land 0x80 <> 0
         done;
         out.(!count) <- !v;
         incr count;
         pos := !p
       end
     done
   with Exit ->
     (* torn varint at the end of the region: deliver what we have; a call
        that decoded nothing has hit the tear head-on, which is corruption
        (the region is the whole file), not end-of-stream *)
     if !count = 0 then begin
       r.rpos <- !pos;
       truncated "decode_varints" !pos
     end);
  r.rpos <- !pos;
  !count

let output_varint oc v =
  if v < 0 then invalid_arg "Binc.output_varint: negative";
  let v = ref v in
  while !v >= 0x80 do
    output_char oc (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  output_char oc (Char.chr !v)

let output_zigzag oc n = output_varint oc (zigzag n)

(* [first]: a clean EOF before any byte is a normal end-of-stream
   (End_of_file propagates / None); after the first byte the varint is
   torn, which is corruption, not end-of-stream *)
let input_varint_from ~first oc_byte =
  let v = ref 0 and shift = ref 0 and continue = ref true and first = ref first in
  while !continue do
    if !shift > 62 then invalid_arg "Binc.input_varint: varint too long";
    let b =
      if !first then oc_byte ()
      else
        try oc_byte ()
        with End_of_file -> invalid_arg "Binc.input_varint: truncated input"
    in
    first := false;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let input_varint ic = input_varint_from ~first:true (fun () -> input_byte ic)

let input_varint_opt ic =
  match input_byte ic with
  | exception End_of_file -> None
  | b0 ->
      if b0 land 0x80 = 0 then Some b0
      else
        let rest =
          input_varint_from ~first:false (fun () -> input_byte ic)
        in
        Some ((b0 land 0x7f) lor (rest lsl 7))

let input_zigzag ic = unzigzag (input_varint ic)
