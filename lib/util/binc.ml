let add_varint buf v =
  if v < 0 then invalid_arg "Binc.add_varint: negative";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let add_zigzag buf n = add_varint buf (zigzag n)

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_int_array buf a =
  add_varint buf (Array.length a);
  Array.iter (fun x -> add_zigzag buf x) a

type reader = { data : string; mutable pos : int }

let reader ?(pos = 0) data = { data; pos }

let read_varint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if r.pos >= String.length r.data then
      invalid_arg "Binc.read_varint: truncated input";
    if !shift > 62 then invalid_arg "Binc.read_varint: varint too long";
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let read_zigzag r = unzigzag (read_varint r)

let read_string r =
  let len = read_varint r in
  if r.pos + len > String.length r.data then
    invalid_arg "Binc.read_string: truncated input";
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_int_array r =
  let len = read_varint r in
  Array.init len (fun _ -> read_zigzag r)

let at_end r = r.pos >= String.length r.data

let output_varint oc v =
  if v < 0 then invalid_arg "Binc.output_varint: negative";
  let v = ref v in
  while !v >= 0x80 do
    output_char oc (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  output_char oc (Char.chr !v)

let output_zigzag oc n = output_varint oc (zigzag n)

(* [first]: a clean EOF before any byte is a normal end-of-stream
   (End_of_file propagates / None); after the first byte the varint is
   torn, which is corruption, not end-of-stream *)
let input_varint_from ~first oc_byte =
  let v = ref 0 and shift = ref 0 and continue = ref true and first = ref first in
  while !continue do
    if !shift > 62 then invalid_arg "Binc.input_varint: varint too long";
    let b =
      if !first then oc_byte ()
      else
        try oc_byte ()
        with End_of_file -> invalid_arg "Binc.input_varint: truncated input"
    in
    first := false;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

let input_varint ic = input_varint_from ~first:true (fun () -> input_byte ic)

let input_varint_opt ic =
  match input_byte ic with
  | exception End_of_file -> None
  | b0 ->
      if b0 land 0x80 = 0 then Some b0
      else
        let rest =
          input_varint_from ~first:false (fun () -> input_byte ic)
        in
        Some ((b0 land 0x7f) lor (rest lsl 7))

let input_zigzag ic = unzigzag (input_varint ic)
