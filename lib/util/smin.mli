(** Smooth minimum approximation (Appendix A of the paper).

    [smin x = -ln (sum_i e^(-x_i))] approximates [min_i x_i] from below up to
    an additive [ln n], and its gradient is a probability distribution that
    concentrates on the (near-)minimal coordinates.  The scaled variant
    [smin_c x = c * smin (x/c)] trades approximation quality ([c ln n]
    additive error) for stability of the gradient (per-unit-of-cost L1 change
    bounded by [2/c], Lemma A.3), which is exactly what the hitting-game and
    MTS algorithms need: the gradient is used as the probability distribution
    over positions, and its L1 movement bounds the (expected) migration
    cost.

    All computations are done with the standard log-sum-exp shift so they are
    numerically stable for arbitrarily large counters. *)

val smin : float array -> float
(** Smooth minimum of a non-empty vector. *)

val grad : float array -> float array
(** Gradient of {!smin}: [grad x i = e^(-x_i) / sum_j e^(-x_j)].
    A probability distribution (Fact A.1 (ii)). *)

val smin_c : c:float -> float array -> float
(** Scaled smooth minimum [smin_c x = c * smin (x / c)], [c >= 1]. *)

val grad_c : c:float -> float array -> float array
(** Gradient of {!smin_c}; equals [grad (x / c)] (Lemma A.3 (ii)). *)

val grad_c_into : c:float -> float array -> float array -> unit
(** [grad_c_into ~c x out] writes {!grad_c} into [out] without allocating.
    [Array.length out] must equal [Array.length x]. *)

val smin_sub : c:float -> float array -> lo:int -> hi:int -> float
(** [smin_sub ~c x ~lo ~hi] is [smin_c] of the sub-vector [x.(lo..hi)]
    (inclusive bounds), without copying. *)

val grad_sub_into : c:float -> float array -> lo:int -> hi:int -> float array -> unit
(** Gradient of {!smin_sub} written into an [hi - lo + 1]-sized buffer. *)
