(** Disjoint-set forests with union by size and path compression.

    Substrate for the learning-variant baseline (Henzinger et al.'s model
    tracks connected components of the demand graph) and for any
    connectivity bookkeeping over processes.  Amortized near-constant time
    per operation. *)

type t

val create : int -> t
(** [create n]: n singleton sets over elements [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. *)

val union : t -> int -> int -> int
(** Merge the two sets; returns the surviving representative.  No-op (but
    still returns the representative) if already joined. *)

val same : t -> int -> int -> bool
val size : t -> int -> int
(** Size of the set containing the element. *)

val components : t -> int
(** Current number of disjoint sets. *)

val members : t -> int -> int list
(** All elements of the set containing the given element (O(n) scan). *)
