(** Minimal binary codec: LEB128 varints over buffers, strings and
    channels.

    Shared by the framed binary trace format ({!Rbgp_workloads.Trace_codec})
    and the serving layer's checkpoint snapshots
    ({!Rbgp_serve.Checkpoint}): both need compact, versioned,
    endian-independent integer framing without pulling in a serialization
    dependency.  Unsigned varints are standard LEB128 (7 bits per byte,
    high bit = continuation); signed values go through the zigzag map
    [(n lsl 1) lxor (n asr 62)] first so small negatives stay short. *)

val add_varint : Buffer.t -> int -> unit
(** Append an unsigned LEB128 varint.  Requires the value [>= 0]. *)

val add_zigzag : Buffer.t -> int -> unit
(** Append a signed integer, zigzag-mapped then LEB128-encoded. *)

val add_string : Buffer.t -> string -> unit
(** Append a length-prefixed (varint) byte string. *)

val add_int_array : Buffer.t -> int array -> unit
(** Append a varint length followed by each element zigzag-encoded. *)

type reader
(** A cursor over an immutable byte string. *)

val reader : ?pos:int -> string -> reader
val read_varint : reader -> int
val read_zigzag : reader -> int
val read_string : reader -> string
val read_int_array : reader -> int array
val at_end : reader -> bool

(** All [read_*] functions raise [Invalid_argument] on truncated input or
    varints longer than 63 bits. *)

val output_varint : out_channel -> int -> unit
val output_zigzag : out_channel -> int -> unit

val input_varint : in_channel -> int
(** Raises [End_of_file] when the channel is exhausted {e before the first
    byte}; a truncation mid-varint raises [Invalid_argument] instead, so a
    clean end-of-stream is distinguishable from a corrupt tail. *)

val input_varint_opt : in_channel -> int option
(** [None] at clean end-of-stream; mid-varint truncation still raises. *)

val input_zigzag : in_channel -> int
