(** Minimal binary codec: LEB128 varints over buffers, strings and
    channels.

    Shared by the framed binary trace format ({!Rbgp_workloads.Trace_codec})
    and the serving layer's checkpoint snapshots
    ({!Rbgp_serve.Checkpoint}): both need compact, versioned,
    endian-independent integer framing without pulling in a serialization
    dependency.  Unsigned varints are standard LEB128 (7 bits per byte,
    high bit = continuation); signed values go through the zigzag map
    [(n lsl 1) lxor (n asr 62)] first so small negatives stay short. *)

val add_varint : Buffer.t -> int -> unit
(** Append an unsigned LEB128 varint.  Requires the value [>= 0]. *)

val add_zigzag : Buffer.t -> int -> unit
(** Append a signed integer, zigzag-mapped then LEB128-encoded. *)

val add_string : Buffer.t -> string -> unit
(** Append a length-prefixed (varint) byte string. *)

val add_int_array : Buffer.t -> int array -> unit
(** Append a varint length followed by each element zigzag-encoded. *)

type reader
(** A cursor over an immutable byte string. *)

val reader : ?pos:int -> string -> reader
val read_varint : reader -> int
val read_zigzag : reader -> int
val read_string : reader -> string
val read_int_array : reader -> int array
val at_end : reader -> bool

val reader_pos : reader -> int
(** Current byte offset of the cursor — used by checkpoint decoding to
    reject trailing garbage and to report absolute offsets in errors. *)

(** All [read_*] functions raise [Invalid_argument] on truncated input or
    varints longer than 63 bits; truncation errors name the absolute byte
    offset at which input ran out. *)

(** {2 Block decoding over byte regions}

    The zero-copy counterpart of the channel readers: a {!region} is a
    cursor over a [Bigarray]-backed byte range (typically an [mmap]ed
    trace file, see {!Rbgp_workloads.Trace_codec}), and {!decode_varints}
    decodes whole blocks of varints out of it in one tight loop — no
    per-byte closure calls, no intermediate copies. *)

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type region
(** A mutable cursor over an immutable byte range. *)

val region : ?pos:int -> bigbytes -> region
(** View the whole array (from [pos], default 0) as a region. *)

val region_of_string : string -> region
(** Copies the string into a fresh bigarray — for tests and small inputs;
    the mmap path never goes through this. *)

val region_pos : region -> int
val region_length : region -> int
val region_at_end : region -> bool

val region_read_string : region -> int -> string
(** Read exactly [len] bytes; raises [Invalid_argument] when fewer remain. *)

val region_read_varint : region -> int
(** One varint at the cursor.  Raises [Invalid_argument] on a varint that
    runs past the region end (a torn frame — the region is the whole
    input, so there is no more data coming) or past 63 bits. *)

val region_read_zigzag : region -> int

val decode_varints : region -> int array -> limit:int -> int
(** [decode_varints r out ~limit] bulk-decodes up to [limit] varints into
    [out.(0 ..)], returning how many were decoded and advancing the cursor
    past them.  Returns [0] only at a clean end of region.  A torn varint
    at the region end is left unconsumed while the completed frames before
    it are delivered; the {e next} call then raises [Invalid_argument] —
    exactly the complete-frames-then-raise behaviour of the channel
    reader, so the two paths report corruption at the same request index.
    Raises [Invalid_argument] on [limit] outside [0 .. length out]. *)

val output_varint : out_channel -> int -> unit
val output_zigzag : out_channel -> int -> unit

val input_varint : in_channel -> int
(** Raises [End_of_file] when the channel is exhausted {e before the first
    byte}; a truncation mid-varint raises [Invalid_argument] instead, so a
    clean end-of-stream is distinguishable from a corrupt tail. *)

val input_varint_opt : in_channel -> int option
(** [None] at clean end-of-stream; mid-varint truncation still raises. *)

val input_zigzag : in_channel -> int
