(** Finite probability distributions over [0 .. n-1].

    The randomized algorithms of the paper maintain a distribution over edge
    positions and, on each request, shift to an updated distribution while
    paying movement proportional to how far probability mass travels.  This
    module provides the three primitives that make this faithful to the
    analysis:

    - exact sampling,
    - the optimal "lazy" coupling between two distributions, which keeps the
      current sample unchanged with the largest possible probability
      ([min(1, p'(s)/p(s))]) and otherwise resamples from the normalized
      positive part of [p' - p]; the probability of moving at all equals half
      the L1 distance, matching the movement bound used by Lemma 4.3,
    - distance functionals (total variation, L1, and the earthmover distance
      under the line metric) used by tests and by cost accounting. *)

type t = private float array
(** A normalized probability vector.  The [private] type guarantees all
    values were built through {!of_weights} / {!uniform} / {!point} and hence
    are normalized and non-negative. *)

val of_weights : float array -> t
(** Normalize a non-negative, not-all-zero weight vector.  Raises
    [Invalid_argument] on negative weights or zero total mass. *)

val of_grad : float array -> t
(** Trusts an already-normalized vector (e.g. a {!Smin} gradient); verifies
    normalization up to 1e-6 and renormalizes exactly. *)

val of_grad_into : float array -> t -> unit
(** [of_grad_into g dst] is {!of_grad} writing into an existing
    distribution buffer of the same size (e.g. one created by {!uniform}) —
    the allocation-free form used by the per-request MTS solver loops.
    Performs the same validation and exact renormalization as {!of_grad},
    so the result is bit-identical. *)

val uniform : int -> t
val point : int -> n:int -> t

val size : t -> int
val prob : t -> int -> float
val support : t -> int list

val sample : Rng.t -> t -> int
(** Exact inverse-CDF sampling. *)

val resample_coupled : Rng.t -> current:int -> old_dist:t -> new_dist:t -> int
(** [resample_coupled rng ~current ~old_dist ~new_dist] returns a sample of
    [new_dist] that equals [current] with probability
    [min(1, new_dist(current)/old_dist(current))] — the maximal-stay coupling.
    If [current] is kept by every caller whenever possible, the marginal
    distribution of the returned position is exactly [new_dist] provided the
    caller's [current] was distributed as [old_dist]. *)

val tv_distance : t -> t -> float
(** Total variation distance, [1/2 * L1]. *)

val l1_distance : t -> t -> float

val earthmover_line : t -> t -> float
(** Earthmover (Wasserstein-1) distance under the line metric
    [d(i,j) = |i - j|], computed by the prefix-sum formula. *)

val expectation : t -> (int -> float) -> float

val to_array : t -> float array
(** Fresh copy of the underlying vector. *)
