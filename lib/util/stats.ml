let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun v -> acc := !acc +. ((v -. m) *. (v -. m))) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  check_nonempty "Stats.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "Stats.max" xs;
  Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  check_nonempty "Stats.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = Int.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

type linfit = { slope : float; intercept : float; r2 : float }

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if not (!sxx > 0.0) then invalid_arg "Stats.linear_fit: degenerate x";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy > 0.0 then !sxy *. !sxy /. (!sxx *. !syy) else 1.0 in
  { slope; intercept; r2 }

let map_positive name f xs =
  Array.map
    (fun v ->
      if not (v > 0.0) then invalid_arg (name ^ ": inputs must be positive");
      f v)
    xs

let loglog_fit xs ys =
  linear_fit (map_positive "Stats.loglog_fit" log xs) (map_positive "Stats.loglog_fit" log ys)

let log_x_fit xs ys = linear_fit (map_positive "Stats.log_x_fit" log xs) ys

let describe xs =
  Printf.sprintf "mean %.3f sd %.3f min %.3f med %.3f max %.3f" (mean xs)
    (stddev xs) (min xs) (median xs) (max xs)
