(* Smooth minimum (log-sum-exp of negated inputs), numerically stabilized by
   shifting with the true minimum: with m = min_i x_i,
     smin x = m - ln (sum_i e^(m - x_i))
   so every exponent is <= 0 and no overflow can occur. *)

let min_sub x lo hi =
  let m = ref x.(lo) in
  for i = lo + 1 to hi do
    if x.(i) < !m then m := x.(i)
  done;
  !m

let smin_range x lo hi =
  if hi < lo then invalid_arg "Smin: empty range";
  let m = min_sub x lo hi in
  let acc = ref 0.0 in
  for i = lo to hi do
    acc := !acc +. exp (m -. x.(i))
  done;
  m -. log !acc

let smin x =
  if Array.length x = 0 then invalid_arg "Smin.smin: empty vector";
  smin_range x 0 (Array.length x - 1)

let grad_range_into x lo hi out =
  if hi < lo then invalid_arg "Smin: empty range";
  if Array.length out <> hi - lo + 1 then invalid_arg "Smin: bad output size";
  let m = min_sub x lo hi in
  let acc = ref 0.0 in
  for i = lo to hi do
    let v = exp (m -. x.(i)) in
    out.(i - lo) <- v;
    acc := !acc +. v
  done;
  let z = !acc in
  for i = 0 to hi - lo do
    out.(i) <- out.(i) /. z
  done

let grad x =
  if Array.length x = 0 then invalid_arg "Smin.grad: empty vector";
  let out = Array.make (Array.length x) 0.0 in
  grad_range_into x 0 (Array.length x - 1) out;
  out

let check_c c = if not (c >= 1.0) then invalid_arg "Smin: scale c must be >= 1"

let smin_c ~c x =
  check_c c;
  if Array.length x = 0 then invalid_arg "Smin.smin_c: empty vector";
  c *. smin (Array.map (fun v -> v /. c) x)

let grad_c_into ~c x out =
  check_c c;
  let n = Array.length x in
  if n = 0 then invalid_arg "Smin.grad_c_into: empty vector";
  if Array.length out <> n then invalid_arg "Smin.grad_c_into: bad output size";
  (* inline the scaling to avoid an intermediate array *)
  let m = ref (x.(0) /. c) in
  for i = 1 to n - 1 do
    let v = x.(i) /. c in
    if v < !m then m := v
  done;
  let mv = !m in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let v = exp (mv -. (x.(i) /. c)) in
    out.(i) <- v;
    acc := !acc +. v
  done;
  let z = !acc in
  for i = 0 to n - 1 do
    out.(i) <- out.(i) /. z
  done

let grad_c ~c x =
  let out = Array.make (Array.length x) 0.0 in
  grad_c_into ~c x out;
  out

let smin_sub ~c x ~lo ~hi =
  check_c c;
  if hi < lo then invalid_arg "Smin.smin_sub: empty range";
  let m = ref (x.(lo) /. c) in
  for i = lo + 1 to hi do
    let v = x.(i) /. c in
    if v < !m then m := v
  done;
  let mv = !m in
  let acc = ref 0.0 in
  for i = lo to hi do
    acc := !acc +. exp (mv -. (x.(i) /. c))
  done;
  c *. (mv -. log !acc)

let grad_sub_into ~c x ~lo ~hi out =
  check_c c;
  if hi < lo then invalid_arg "Smin.grad_sub_into: empty range";
  if Array.length out <> hi - lo + 1 then
    invalid_arg "Smin.grad_sub_into: bad output size";
  let m = ref (x.(lo) /. c) in
  for i = lo + 1 to hi do
    let v = x.(i) /. c in
    if v < !m then m := v
  done;
  let mv = !m in
  let acc = ref 0.0 in
  for i = lo to hi do
    let v = exp (mv -. (x.(i) /. c)) in
    out.(i - lo) <- v;
    acc := !acc +. v
  done;
  let z = !acc in
  for i = 0 to hi - lo do
    out.(i) <- out.(i) /. z
  done
