(* Durable file writes and transient-error retry.

   [atomic_write] is the single audited path through which checkpoint
   and other crash-safe artifacts reach disk (lint rule r9-durability
   flags direct [open_out*] in durability-audited modules).  The
   sequence is the classic tmp + fsync + rename + parent-dir fsync:

     1. write the full payload to [path ^ ".tmp"];
     2. fsync the tmp file so its bytes are on the platter;
     3. [Sys.rename] tmp over [path] (atomic within a filesystem);
     4. fsync the containing directory so the rename itself is durable.

   A crash at any point leaves either the complete old file or the
   complete new file at [path]; the tmp file may survive as garbage but
   is overwritten by the next write. *)

let rec retry_transient ?(attempts = 64) f =
  if attempts <= 1 then f ()
  else
    match f () with
    | v -> v
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      retry_transient ~attempts:(attempts - 1) f

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error ((Unix.EACCES | Unix.ENOSYS | Unix.EISDIR), _, _) ->
    (* Some filesystems refuse O_RDONLY opens of directories; the rename
       is still atomic, just not guaranteed durable across power loss. *)
    ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try Unix.fsync fd
        with Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.EROFS), _, _) -> ())

let atomic_write ~path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     flush oc;
     retry_transient (fun () -> Unix.fsync (Unix.descr_of_out_channel oc));
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)
