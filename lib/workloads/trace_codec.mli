(** Framed binary trace format, the streaming counterpart of {!Trace_io}.

    Layout (all integers LEB128 varints, see {!Rbgp_util.Binc}):

    {v
    magic   "RBGT"            4 bytes
    version varint            format version, currently 1
    n       varint            ring size every edge is validated against
    ell     varint            server count hint (0 = unspecified)
    seed    zigzag varint     provenance seed (0 = unspecified)
    body    frame*            one frame per request, until end of stream
    v}

    A version-1 frame is a single varint: the requested edge index in
    [\[0, n)].  Framing is self-delimiting, so readers consume requests one
    at a time without knowing the trace length in advance — [rbgp serve]
    reads from a pipe this way — and a clean end-of-stream is
    distinguishable from a torn frame (truncation raises).

    Writers emit the current version; readers accept exactly the versions
    they know.  All decoding errors raise [Invalid_argument] naming the
    path (or "<channel>" for raw channels). *)

val magic : string
(** ["RBGT"]. *)

val version : int

type header = { version : int; n : int; ell : int; seed : int }

val output_header : out_channel -> n:int -> ell:int -> seed:int -> unit
val input_header : ?path:string -> in_channel -> header

val output_request : out_channel -> int -> unit

val input_request_opt : ?path:string -> in_channel -> n:int -> int option
(** Next framed request, validated against [n]; [None] at clean
    end-of-stream. *)

val write :
  path:string -> n:int -> ?ell:int -> ?seed:int -> int array -> unit

val read : path:string -> n:int -> int array
(** Loads a whole trace; validates the header's [n] equals the caller's
    expectation.  Prefer {!fold} for large files. *)

val fold :
  path:string -> n:int -> init:'a -> f:('a -> int -> 'a) -> header * 'a
(** Streams the file request by request without materializing it. *)

val read_header : path:string -> header

val looks_binary : path:string -> bool
(** Does the file start with {!magic}?  (Used to auto-detect the trace
    format; text traces never start with these bytes.) *)
