(** Framed binary trace format, the streaming counterpart of {!Trace_io}.

    Layout (all integers LEB128 varints, see {!Rbgp_util.Binc}):

    {v
    magic   "RBGT"            4 bytes
    version varint            format version, currently 1
    n       varint            ring size every edge is validated against
    ell     varint            server count hint (0 = unspecified)
    seed    zigzag varint     provenance seed (0 = unspecified)
    body    frame*            one frame per request, until end of stream
    v}

    A version-1 frame is a single varint: the requested edge index in
    [\[0, n)].  Framing is self-delimiting, so readers consume requests one
    at a time without knowing the trace length in advance — [rbgp serve]
    reads from a pipe this way — and a clean end-of-stream is
    distinguishable from a torn frame (truncation raises).

    Writers emit the current version; readers accept exactly the versions
    they know.  All decoding errors raise [Invalid_argument] naming the
    path (or "<channel>" for raw channels). *)

val magic : string
(** ["RBGT"]. *)

val version : int

type header = { version : int; n : int; ell : int; seed : int }

val output_header : out_channel -> n:int -> ell:int -> seed:int -> unit
val input_header : ?path:string -> in_channel -> header

val output_request : out_channel -> int -> unit

val input_request_opt : ?path:string -> in_channel -> n:int -> int option
(** Next framed request, validated against [n]; [None] at clean
    end-of-stream. *)

(** {2 Zero-copy region path}

    The mmap counterpart of the channel readers: {!map} maps a trace file
    read-only into a {!Rbgp_util.Binc.region}, {!header_of_region} parses
    the frame header out of it, and {!decode_requests_into} bulk-decodes
    and validates whole blocks of requests — the hot loop behind
    [Source.next_batch].  Decode errors and torn tails raise
    [Invalid_argument] naming the path, frame for frame like the channel
    readers (the qcheck parity suite in [test_util] pins this down). *)

val can_map : path:string -> bool
(** Is the file a regular, non-empty file — i.e. will {!map} work?  Pipes,
    sockets, devices and empty files answer [false] (a zero-length mmap is
    rejected by the kernel; the channel path reports the empty file as
    "missing magic" instead). *)

val map : ?path:string -> string -> Rbgp_util.Binc.region
(** [map path] maps the file read-only ([Unix.map_file] behind a private
    mapping) and returns a region over its bytes; the file descriptor is
    closed before returning.  Raises [Invalid_argument] (naming [?path],
    default the file path) when the file cannot be mapped — pipes and
    other non-regular files — and [Unix.Unix_error] when it cannot be
    opened at all. *)

val header_of_region : ?path:string -> Rbgp_util.Binc.region -> header

val decode_requests_into :
  ?path:string -> Rbgp_util.Binc.region -> n:int -> int array -> limit:int -> int
(** Bulk-decode up to [limit] requests into the array, validating each
    against [n]; returns how many were decoded, [0] only at a clean end
    of region.  Complete frames before a torn tail are delivered; the
    next call raises. *)

val region_request_opt :
  ?path:string -> Rbgp_util.Binc.region -> n:int -> int option
(** Single-request pull from a region — [input_request_opt] for the mmap
    path. *)

val write :
  path:string -> n:int -> ?ell:int -> ?seed:int -> int array -> unit

val read : path:string -> n:int -> int array
(** Loads a whole trace; validates the header's [n] equals the caller's
    expectation.  Prefer {!fold} for large files. *)

val fold :
  path:string -> n:int -> init:'a -> f:('a -> int -> 'a) -> header * 'a
(** Streams the file request by request without materializing it. *)

val read_header : path:string -> header

val looks_binary : path:string -> bool
(** Does the file start with {!magic}?  (Used to auto-detect the trace
    format; text traces never start with these bytes.) *)
