(** Request-trace generators.

    The paper motivates ring demands with machine-learning traffic (ring
    allreduce) and proves bounds against adversarial sequences; since it
    ships no traces, these generators synthesize the demand regimes its
    analysis distinguishes.  Each documents the regime it stresses:

    - {!uniform}: memoryless noise; both online algorithms should track the
      per-interval optima closely (E2).
    - {!hotspot}: a fixed hot arc — a *static-friendly* demand where
      [never_move]/static OPT is nearly free and strict competitiveness
      (Theorem 2.2's lack of an additive term) is visible.
    - {!rotating}: a hot arc that drifts around the ring — dynamic OPT
      migrates and beats every static placement; the regime where
      Theorem 2.1's dynamic comparator separates from Theorem 2.2's (E3).
    - {!allreduce}: deterministic ring-allreduce sweeps (each step requests
      the next edge around the ring), the motivating ML pattern; every
      partition pays ~1/k of requests, so OPT is dense and ratios are
      near 1.
    - {!zipf}: heavy-tailed edge popularity with permuted ranks.
    - {!piecewise_static}: i.i.d. within a phase, resampled every [period]
      steps — tests how fast the algorithms re-converge.
    - {!adversary_cut_chaser}: adaptive — always requests a currently cut
      edge of the algorithm under test (preferring the most recently
      requested cut to maximize pressure).  Deterministic algorithms pay
      every step (the Omega(k) regime, Avin et al.); randomized cut
      placement makes the realized cut unpredictable, so this generator
      also measures how much the adaptive adversary hurts in practice. *)

val uniform : n:int -> steps:int -> Rbgp_util.Rng.t -> Rbgp_ring.Trace.t

val hotspot :
  n:int -> steps:int -> ?arc:int -> ?heat:float -> Rbgp_util.Rng.t ->
  Rbgp_ring.Trace.t
(** [arc]: width of the hot window (default [max 1 (n/16)]); [heat]:
    probability a request lands in it (default 0.9). *)

val rotating :
  n:int -> steps:int -> ?arc:int -> ?heat:float -> ?period:int ->
  Rbgp_util.Rng.t -> Rbgp_ring.Trace.t
(** The hot window advances one position every [period] steps (default:
    chosen so it completes one revolution over the trace). *)

val allreduce : n:int -> steps:int -> Rbgp_ring.Trace.t

val zipf :
  n:int -> steps:int -> ?exponent:float -> Rbgp_util.Rng.t -> Rbgp_ring.Trace.t

val piecewise_static :
  n:int -> steps:int -> ?period:int -> ?hot_edges:int -> Rbgp_util.Rng.t ->
  Rbgp_ring.Trace.t

val partitionable :
  n:int -> ell:int -> steps:int -> ?offset:int -> Rbgp_util.Rng.t ->
  Rbgp_ring.Trace.t
(** The *learning variant*'s input class (Henzinger et al.): a hidden
    balanced partition of the ring into [ell] blocks of [n/ell] is drawn
    (rotated by [offset], random by default), and every request falls on an
    edge internal to some hidden block — the demand graph's components fit
    into servers perfectly.  Learning algorithms converge to zero marginal
    cost here; the paper's point is that genuine ring demand does not
    belong to this class (E14). *)

val adversary_cut_chaser : n:int -> Rbgp_ring.Trace.t

val all_fixed :
  n:int -> steps:int -> Rbgp_util.Rng.t -> (string * Rbgp_ring.Trace.t) list
(** The oblivious generators above with default parameters, fresh
    independent rng streams, labelled — the standard workload suite of the
    harness. *)
