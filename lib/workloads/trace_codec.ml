module Binc = Rbgp_util.Binc

let magic = "RBGT"
let version = 1

type header = { version : int; n : int; ell : int; seed : int }

let fail ?(path = "<channel>") fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Trace_codec: %s: %s" path msg))
    fmt

let output_header oc ~n ~ell ~seed =
  output_string oc magic;
  Binc.output_varint oc version;
  Binc.output_varint oc n;
  Binc.output_varint oc ell;
  Binc.output_zigzag oc seed

let input_header ?path ic =
  let m = try really_input_string ic (String.length magic) with
    | End_of_file -> fail ?path "missing magic (file shorter than %d bytes)"
                       (String.length magic)
  in
  if m <> magic then
    fail ?path "bad magic %S (expected %S — not a binary trace?)" m magic;
  let v = Binc.input_varint ic in
  if v <> version then fail ?path "unsupported format version %d" v;
  let n = Binc.input_varint ic in
  if n <= 0 then fail ?path "header n = %d is not positive" n;
  let ell = Binc.input_varint ic in
  let seed = Binc.input_zigzag ic in
  { version = v; n; ell; seed }

let output_request oc e = Binc.output_varint oc e

let input_request_opt ?path ic ~n =
  match Binc.input_varint_opt ic with
  | None -> None
  | Some e ->
      if e < 0 || e >= n then fail ?path "edge %d out of [0, %d)" e n;
      Some e
  | exception Invalid_argument _ -> fail ?path "torn frame (truncated varint)"

let write ~path ~n ?(ell = 0) ?(seed = 0) trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_header oc ~n ~ell ~seed;
      Array.iter
        (fun e ->
          if e < 0 || e >= n then
            fail ~path "cannot write edge %d out of [0, %d)" e n;
          output_request oc e)
        trace)

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let fold ~path ~n ~init ~f =
  with_in path (fun ic ->
      let header = input_header ~path ic in
      if header.n <> n then
        fail ~path "header n = %d does not match expected n = %d" header.n n;
      let acc = ref init in
      let continue = ref true in
      while !continue do
        match input_request_opt ~path ic ~n with
        | Some e -> acc := f !acc e
        | None -> continue := false
      done;
      (header, !acc))

let read ~path ~n =
  let _, acc = fold ~path ~n ~init:[] ~f:(fun acc e -> e :: acc) in
  Array.of_list (List.rev acc)

let read_header ~path = with_in path (fun ic -> input_header ~path ic)

let looks_binary ~path =
  with_in path (fun ic ->
      match really_input_string ic (String.length magic) with
      | m -> String.equal m magic
      | exception End_of_file -> false)
