module Binc = Rbgp_util.Binc

let magic = "RBGT"
let version = 1

type header = { version : int; n : int; ell : int; seed : int }

let fail ?(path = "<channel>") fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Trace_codec: %s: %s" path msg))
    fmt

let output_header oc ~n ~ell ~seed =
  output_string oc magic;
  Binc.output_varint oc version;
  Binc.output_varint oc n;
  Binc.output_varint oc ell;
  Binc.output_zigzag oc seed

let input_header ?path ic =
  let m = try really_input_string ic (String.length magic) with
    | End_of_file -> fail ?path "missing magic (file shorter than %d bytes)"
                       (String.length magic)
  in
  if m <> magic then
    fail ?path "bad magic %S (expected %S — not a binary trace?)" m magic;
  let v = Binc.input_varint ic in
  if v <> version then fail ?path "unsupported format version %d" v;
  let n = Binc.input_varint ic in
  if n <= 0 then fail ?path "header n = %d is not positive" n;
  let ell = Binc.input_varint ic in
  let seed = Binc.input_zigzag ic in
  { version = v; n; ell; seed }

let output_request oc e = Binc.output_varint oc e

let input_request_opt ?path ic ~n =
  match Binc.input_varint_opt ic with
  | None -> None
  | Some e ->
      if e < 0 || e >= n then
        fail ?path "edge %d out of [0, %d) (frame ends at byte %d)" e n
          (pos_in ic);
      Some e
  | exception Invalid_argument _ ->
      fail ?path "torn frame (truncated varint at byte %d)" (pos_in ic)

(* --- zero-copy region path (mmap) ------------------------------------- *)

let map ?path:path_label path =
  let label = match path_label with Some p -> p | None -> path in
  let fd =
    Rbgp_util.Durable.retry_transient (fun () ->
        Unix.openfile path [ Unix.O_RDONLY ] 0)
  in
  match
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |])
  with
  | big ->
      (* the mapping outlives the descriptor *)
      Unix.close fd;
      Binc.region big
  | exception e ->
      Unix.close fd;
      (match e with
      | Unix.Unix_error (err, _, _) ->
          fail ~path:label "cannot mmap: %s" (Unix.error_message err)
      | e -> raise e)

(* Only regular, non-empty files are worth mapping: pipes and sockets
   cannot be mmap'ed at all, and a zero-length mapping is rejected by the
   kernel while the channel path already reports "missing magic" for it. *)
let can_map ~path =
  match Rbgp_util.Durable.retry_transient (fun () -> Unix.stat path) with
  | { Unix.st_kind = Unix.S_REG; st_size; _ } -> st_size > 0
  | _ -> false
  | exception Unix.Unix_error _ -> false

let header_of_region ?path r =
  let m =
    try Binc.region_read_string r (String.length magic)
    with Invalid_argument _ ->
      fail ?path "missing magic (file shorter than %d bytes)"
        (String.length magic)
  in
  if m <> magic then
    fail ?path "bad magic %S (expected %S — not a binary trace?)" m magic;
  let v = Binc.region_read_varint r in
  if v <> version then fail ?path "unsupported format version %d" v;
  let n = Binc.region_read_varint r in
  if n <= 0 then fail ?path "header n = %d is not positive" n;
  let ell = Binc.region_read_varint r in
  let seed = Binc.region_read_zigzag r in
  { version = v; n; ell; seed }

(* Bulk frame decode + validation, the hot half of the mmap ingest path:
   one block-decoder call, one branch-per-request validation scan, no
   allocation.  Torn-tail behaviour mirrors [input_request_opt] frame for
   frame (see Binc.decode_varints). *)
let decode_requests_into ?path r ~n out ~limit =
  let block_start = Binc.region_pos r in
  let got =
    try Binc.decode_varints r out ~limit
    with Invalid_argument _ ->
      fail ?path "torn frame (truncated varint at byte %d)" (Binc.region_pos r)
  in
  for j = 0 to got - 1 do
    let e = out.(j) in
    if e < 0 || e >= n then
      fail ?path "edge %d out of [0, %d) (request %d of block at byte %d)" e n
        j block_start
  done;
  got

let region_request_opt ?path r ~n =
  if Binc.region_at_end r then None
  else
    match Binc.region_read_varint r with
    | e ->
        if e < 0 || e >= n then
          fail ?path "edge %d out of [0, %d) (frame ends at byte %d)" e n
            (Binc.region_pos r);
        Some e
    | exception Invalid_argument _ ->
        fail ?path "torn frame (truncated varint at byte %d)" (Binc.region_pos r)

let write ~path ~n ?(ell = 0) ?(seed = 0) trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_header oc ~n ~ell ~seed;
      Array.iter
        (fun e ->
          if e < 0 || e >= n then
            fail ~path "cannot write edge %d out of [0, %d)" e n;
          output_request oc e)
        trace)

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let fold ~path ~n ~init ~f =
  with_in path (fun ic ->
      let header = input_header ~path ic in
      if header.n <> n then
        fail ~path "header n = %d does not match expected n = %d" header.n n;
      let acc = ref init in
      let continue = ref true in
      while !continue do
        match input_request_opt ~path ic ~n with
        | Some e -> acc := f !acc e
        | None -> continue := false
      done;
      (header, !acc))

let read_channel ~path ~n =
  let _, acc = fold ~path ~n ~init:[] ~f:(fun acc e -> e :: acc) in
  Array.of_list (List.rev acc)

let read ~path ~n =
  match map path with
  | exception Unix.Unix_error _ -> read_channel ~path ~n
  | exception Invalid_argument _ ->
      (* unmappable (pipe, special file): the channel path owns the error *)
      read_channel ~path ~n
  | r ->
      let header = header_of_region ~path r in
      if header.n <> n then
        fail ~path "header n = %d does not match expected n = %d" header.n n;
      let block_len = 65536 in
      let block = Array.make block_len 0 in
      let buf = ref (Array.make block_len 0) in
      let len = ref 0 in
      let continue = ref true in
      while !continue do
        let got = decode_requests_into ~path r ~n block ~limit:block_len in
        if got = 0 then continue := false
        else begin
          if !len + got > Array.length !buf then begin
            let bigger =
              Array.make (Stdlib.max (2 * Array.length !buf) (!len + got)) 0
            in
            Array.blit !buf 0 bigger 0 !len;
            buf := bigger
          end;
          Array.blit block 0 !buf !len got;
          len := !len + got
        end
      done;
      Array.sub !buf 0 !len

let read_header ~path = with_in path (fun ic -> input_header ~path ic)

let looks_binary ~path =
  with_in path (fun ic ->
      match really_input_string ic (String.length magic) with
      | m -> String.equal m magic
      | exception End_of_file -> false)
