module Rng = Rbgp_util.Rng
module Trace = Rbgp_ring.Trace

let check ~n ~steps =
  if n <= 1 then invalid_arg "Workloads: n must be > 1";
  if steps < 0 then invalid_arg "Workloads: negative steps"

let uniform ~n ~steps rng =
  check ~n ~steps;
  Trace.fixed (Array.init steps (fun _ -> Rng.int rng n))

let hot_window ~n ~arc ~heat rng center =
  if Rng.float rng < heat then (center + Rng.int rng arc) mod n
  else Rng.int rng n

let hotspot ~n ~steps ?arc ?(heat = 0.9) rng =
  check ~n ~steps;
  let arc = match arc with Some a -> a | None -> Stdlib.max 1 (n / 16) in
  let center = Rng.int rng n in
  Trace.fixed (Array.init steps (fun _ -> hot_window ~n ~arc ~heat rng center))

let rotating ~n ~steps ?arc ?(heat = 0.9) ?period rng =
  check ~n ~steps;
  let arc = match arc with Some a -> a | None -> Stdlib.max 1 (n / 16) in
  let period =
    match period with Some p -> p | None -> Stdlib.max 1 (steps / n)
  in
  if period < 1 then invalid_arg "Workloads.rotating: period >= 1";
  let start = Rng.int rng n in
  Trace.fixed
    (Array.init steps (fun t ->
         let center = (start + (t / period)) mod n in
         hot_window ~n ~arc ~heat rng center))

let allreduce ~n ~steps =
  check ~n ~steps;
  Trace.fixed (Array.init steps (fun t -> t mod n))

let zipf ~n ~steps ?(exponent = 1.1) rng =
  check ~n ~steps;
  if exponent <= 0.0 then invalid_arg "Workloads.zipf: exponent must be positive";
  let ranks = Array.init n (fun i -> i) in
  Rng.shuffle rng ranks;
  let weights =
    Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent))
  in
  let dist = Rbgp_util.Dist.of_weights weights in
  Trace.fixed
    (Array.init steps (fun _ -> ranks.(Rbgp_util.Dist.sample rng dist)))

let piecewise_static ~n ~steps ?period ?hot_edges rng =
  check ~n ~steps;
  let period =
    match period with Some p -> p | None -> Stdlib.max 1 (steps / 8)
  in
  let hot_edges =
    match hot_edges with Some h -> h | None -> Stdlib.max 1 (n / 32)
  in
  if period < 1 || hot_edges < 1 then
    invalid_arg "Workloads.piecewise_static: bad parameters";
  let hot = Array.init hot_edges (fun _ -> Rng.int rng n) in
  Trace.fixed
    (Array.init steps (fun t ->
         if t > 0 && t mod period = 0 then
           Array.iteri (fun i _ -> hot.(i) <- Rng.int rng n) hot;
         Rng.pick rng hot))

let partitionable ~n ~ell ~steps ?offset rng =
  check ~n ~steps;
  if ell <= 0 || n mod ell <> 0 then
    invalid_arg "Workloads.partitionable: ell must divide n";
  let k = n / ell in
  if k < 2 then invalid_arg "Workloads.partitionable: blocks need >= 2 processes";
  let offset = match offset with Some o -> o mod n | None -> Rng.int rng n in
  (* internal edges of block b: offset + b*k + j for j in [0, k-2] *)
  Trace.fixed
    (Array.init steps (fun _ ->
         let b = Rng.int rng ell in
         let j = Rng.int rng (k - 1) in
         (offset + (b * k) + j) mod n))

let adversary_cut_chaser ~n =
  let last = ref 0 in
  Trace.adaptive (fun _step assignment ->
      (* request a currently-cut edge, scanning from the last requested
         position so repeated hits concentrate on one boundary *)
      let rec find i steps =
        if steps >= n then !last (* no cut edge: keep hammering *)
        else if Rbgp_ring.Assignment.cuts_edge assignment i then i
        else find ((i + 1) mod n) (steps + 1)
      in
      let e = find !last 0 in
      last := e;
      e)

let all_fixed ~n ~steps rng =
  [
    ("uniform", uniform ~n ~steps (Rng.split rng));
    ("hotspot", hotspot ~n ~steps (Rng.split rng));
    ("rotating", rotating ~n ~steps (Rng.split rng));
    ("allreduce", allreduce ~n ~steps);
    ("zipf", zipf ~n ~steps (Rng.split rng));
    ("piecewise", piecewise_static ~n ~steps (Rng.split rng));
  ]
