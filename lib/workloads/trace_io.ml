let save ~path ?comment trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match comment with
      | Some c -> Printf.fprintf oc "# %s\n" c
      | None -> ());
      Printf.fprintf oc "# %d requests\n" (Array.length trace);
      Array.iter (fun e -> Printf.fprintf oc "%d\n" e) trace)

let fail ~path fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Trace_io: %s: %s" path msg))
    fmt

let rec input_request_from ~path ~lineno ic ~n =
  match input_line ic with
  | exception End_of_file -> None
  | line ->
      incr lineno;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then input_request_from ~path ~lineno ic ~n
      else
        match int_of_string_opt line with
        | Some e when e >= 0 && e < n -> Some e
        | Some _ -> fail ~path "line %d: edge out of [0, %d)" !lineno n
        | None -> fail ~path "line %d: not an integer" !lineno

let input_request_opt ?(path = "<channel>") ?lineno ic ~n =
  let lineno = match lineno with Some r -> r | None -> ref 0 in
  input_request_from ~path ~lineno ic ~n

let fold_channel ?(path = "<channel>") ic ~n ~init ~f =
  let acc = ref init in
  let lineno = ref 0 in
  let continue = ref true in
  while !continue do
    match input_request_from ~path ~lineno ic ~n with
    | Some e -> acc := f !acc e
    | None -> continue := false
  done;
  !acc

let fold ~path ~n ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> fold_channel ~path ic ~n ~init ~f)

let load ~path ~n =
  let acc = fold ~path ~n ~init:[] ~f:(fun acc e -> e :: acc) in
  Array.of_list (List.rev acc)
