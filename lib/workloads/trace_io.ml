let save ~path ?comment trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match comment with
      | Some c -> Printf.fprintf oc "# %s\n" c
      | None -> ());
      Printf.fprintf oc "# %d requests\n" (Array.length trace);
      Array.iter (fun e -> Printf.fprintf oc "%d\n" e) trace)

let load ~path ~n =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then
             match int_of_string_opt line with
             | Some e when e >= 0 && e < n -> acc := e :: !acc
             | Some _ ->
                 invalid_arg
                   (Printf.sprintf "Trace_io.load: line %d: edge out of [0, %d)"
                      !lineno n)
             | None ->
                 invalid_arg
                   (Printf.sprintf "Trace_io.load: line %d: not an integer"
                      !lineno)
         done
       with End_of_file -> ());
      Array.of_list (List.rev !acc))
