(** Plain-text trace files: one edge index per line.

    Lets real traces (or traces produced by one tool) drive any algorithm
    in this repository, and lets generated traces be exported for external
    analysis.  Lines starting with ['#'] and blank lines are ignored on
    input; [save] writes a provenance header comment.  For the compact,
    streaming binary format see {!Trace_codec}. *)

val save : path:string -> ?comment:string -> int array -> unit

val fold : path:string -> n:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Streams the file line by line without materializing the trace — the
    reader behind both [load] and [rbgp serve]'s text input.  Validates
    every entry against the ring size [n]; raises [Invalid_argument]
    naming the file path and offending line number otherwise, and
    [Sys_error] on I/O failure. *)

val fold_channel :
  ?path:string -> in_channel -> n:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold] over an already-open channel (e.g. stdin); reads to
    end-of-stream.  [path] is only used in error messages (default
    ["<channel>"]). *)

val input_request_opt :
  ?path:string -> ?lineno:int ref -> in_channel -> n:int -> int option
(** Pull one request: skips blank/comment lines, validates the edge,
    [None] at end-of-stream.  The streaming serving loop reads stdin this
    way.  Pass the same [lineno] ref across calls to keep error messages'
    line numbers accurate. *)

val load : path:string -> n:int -> int array
(** [fold] materialized into an array, same validation and errors. *)
