(** Plain-text trace files: one edge index per line.

    Lets real traces (or traces produced by one tool) drive any algorithm
    in this repository, and lets generated traces be exported for external
    analysis.  Lines starting with ['#'] and blank lines are ignored on
    input; [save] writes a provenance header comment. *)

val save : path:string -> ?comment:string -> int array -> unit

val load : path:string -> n:int -> int array
(** Validates every entry against the ring size [n]; raises
    [Invalid_argument] with the offending line number otherwise, and
    [Sys_error] on I/O failure. *)
