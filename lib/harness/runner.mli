(** Shared experiment plumbing: algorithm registry, seeded runs, ratio
    estimation.

    Every experiment builds instances through {!instance}, algorithms
    through the registry (fresh algorithm state per run — online algorithms
    are single-use), and reports ratios against the comparator appropriate
    to its model (exact OPT, certified lower bound, or static optimum). *)

type run = {
  alg : string;
  cost : Rbgp_ring.Cost.t;
  max_load : int;
  violations : int;
}

val instance : n:int -> ell:int -> Rbgp_ring.Instance.t
(** [blocks] layout; requires [ell] divides [n]. *)

val run_alg :
  ?strict:bool ->
  Rbgp_ring.Instance.t ->
  Rbgp_ring.Online.t ->
  Rbgp_ring.Trace.t ->
  steps:int ->
  run

type alg_spec = {
  name : string;
  build : Rbgp_ring.Instance.t -> trace:int array -> seed:int -> Rbgp_ring.Online.t;
}

val core_algorithms : epsilon:float -> alg_spec list
(** The paper's two algorithms (dynamic with the default randomized MTS
    solver, and static). *)

val baseline_algorithms : epsilon:float -> alg_spec list
(** never-move, greedy-colocate, counter-threshold, static-oracle. *)

val mts_variants : epsilon:float -> alg_spec list
(** onl-dynamic instantiated with each MTS solver (E9). *)

val averaged :
  seeds:int list -> (int -> float) -> float * float
(** Run a seeded measurement for each seed; returns (mean, stddev). *)

val fan_out : (unit -> 'a) list -> 'a list
(** Run independent experiment cells across domains
    ({!Rbgp_util.Pool.map_list} with the default domain count — see
    [RBGP_DOMAINS] / [--domains]), returning results in input order.
    Cells must not share mutable state; the experiments guarantee this by
    generating instances, traces and rng streams {e before} the fan-out
    and deriving every in-cell rng from an explicit integer seed.  With
    one domain this is exactly a sequential [List.map], and because cells
    are self-contained the parallel output is byte-identical to it. *)
