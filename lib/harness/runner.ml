module Instance = Rbgp_ring.Instance
module Simulator = Rbgp_ring.Simulator
module Rng = Rbgp_util.Rng

type run = {
  alg : string;
  cost : Rbgp_ring.Cost.t;
  max_load : int;
  violations : int;
}

let instance ~n ~ell = Instance.blocks ~n ~ell

let run_alg ?(strict = true) inst (alg : Rbgp_ring.Online.t) trace ~steps =
  let r = Simulator.run ~strict inst alg trace ~steps in
  {
    alg = alg.Rbgp_ring.Online.name;
    cost = r.Simulator.cost;
    max_load = r.Simulator.max_load;
    violations = r.Simulator.capacity_violations;
  }

type alg_spec = {
  name : string;
  build : Instance.t -> trace:int array -> seed:int -> Rbgp_ring.Online.t;
}

let dynamic_with solver name ~epsilon =
  {
    name;
    build =
      (fun inst ~trace:_ ~seed ->
        Rbgp_core.Dynamic_alg.online
          (Rbgp_core.Dynamic_alg.create ~mts:solver ~epsilon inst
             (Rng.create seed)));
  }

let core_algorithms ~epsilon =
  [
    dynamic_with Rbgp_mts.Smin_mw.solver "onl-dynamic" ~epsilon;
    {
      name = "onl-static";
      build =
        (fun inst ~trace:_ ~seed ->
          Rbgp_core.Static_alg.online
            (Rbgp_core.Static_alg.create ~epsilon inst (Rng.create seed)));
    };
  ]

let baseline_algorithms ~epsilon =
  [
    {
      name = "never-move";
      build = (fun inst ~trace:_ ~seed:_ -> Rbgp_baselines.Baselines.never_move inst);
    };
    {
      name = "greedy-colocate";
      build =
        (fun inst ~trace:_ ~seed:_ ->
          Rbgp_baselines.Baselines.greedy_colocate inst);
    };
    {
      name = "counter-threshold";
      build =
        (fun inst ~trace:_ ~seed:_ ->
          Rbgp_baselines.Baselines.counter_threshold ~epsilon inst);
    };
    {
      name = "static-oracle";
      build =
        (fun inst ~trace ~seed:_ -> Rbgp_baselines.Baselines.static_oracle inst ~trace);
    };
    {
      name = "component-learning";
      build =
        (fun inst ~trace:_ ~seed:_ ->
          Rbgp_baselines.Baselines.component_learning inst);
    };
  ]

let mts_variants ~epsilon =
  [
    dynamic_with Rbgp_mts.Smin_mw.solver "dyn/smin-mw" ~epsilon;
    dynamic_with Rbgp_mts.Work_function.solver "dyn/wfa" ~epsilon;
    dynamic_with Rbgp_mts.Hst_mts.solver "dyn/hst-mw" ~epsilon;
    dynamic_with Rbgp_mts.Marking.solver "dyn/marking" ~epsilon;
  ]

let averaged ~seeds f =
  let samples = Array.of_list (List.map f seeds) in
  (Rbgp_util.Stats.mean samples, Rbgp_util.Stats.stddev samples)

let fan_out cells = Rbgp_util.Pool.map_list (fun f -> f ()) cells
