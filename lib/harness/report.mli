(** The experiment suite — the repository's stand-in for the paper's
    missing evaluation section.

    Each experiment Ei prints one or more tables (see DESIGN.md section 3
    for the index and EXPERIMENTS.md for expected-vs-measured).  [quick]
    shrinks sizes/seeds for CI-speed runs; the default sizes complete in
    seconds to a couple of minutes each.

    All randomness is derived from the experiment's [seed] argument, so
    every table is exactly reproducible. *)

val e1_dynamic_load : ?quick:bool -> ?seed:int -> unit -> unit
(** Lemma 3.1: the dynamic algorithm's load never exceeds [2 k' - 1]. *)

val e2_interval_ratio : ?quick:bool -> ?seed:int -> unit -> unit
(** Lemma 3.3: ONL_R's interval cost against the exact optimal
    interval-based strategy OPT_R, as k grows. *)

val e3_dynamic_ratio : ?quick:bool -> ?seed:int -> unit -> unit
(** Theorem 2.1: dynamic algorithm vs exact dynamic OPT (tiny instances)
    and vs the certified windowed lower bound (at scale), on drifting
    demand where static placements fail. *)

val e4_deterministic_lower_bound : ?quick:bool -> ?seed:int -> unit -> unit
(** Lemma 4.1: the chase adversary forces deterministic hitting-game
    players to Omega(k) while interval growing stays polylogarithmic. *)

val e5_hitting_ratio : ?quick:bool -> ?seed:int -> unit -> unit
(** Corollary 4.4: interval growing vs the exact static optimum of the
    hitting game, as k grows. *)

val e6_static_load : ?quick:bool -> ?seed:int -> unit -> unit
(** Lemma 4.13: the static algorithm's load stays below [(3 + 2 eps') k]. *)

val e7_static_ratio : ?quick:bool -> ?seed:int -> unit -> unit
(** Theorem 2.2: static algorithm vs the segmented static optimum,
    including the strictness check on short cheap sequences. *)

val e8_head_to_head : ?quick:bool -> ?seed:int -> unit -> unit
(** All algorithms x all workloads (including the adaptive cut-chaser). *)

val e9_mts_ablation : ?quick:bool -> ?seed:int -> unit -> unit
(** The Section-3 reduction instantiated with each MTS solver. *)

val e10_well_behaved : ?quick:bool -> ?seed:int -> unit -> unit
(** Lemma 3.4: the well-behaved strategy replayed against exact dynamic
    OPT schedules — invariants and cost bound. *)

val e11_epsilon_ablation : ?quick:bool -> ?seed:int -> unit -> unit
(** The augmentation/cost tradeoff: both core algorithms swept over
    epsilon; more augmentation means fewer, wider intervals (dynamic) and
    laxer rebalancing (static), hence lower cost. *)

val e12_parameter_ablation : ?quick:bool -> ?seed:int -> unit -> unit
(** Internal design-choice ablations called out in DESIGN.md: the smin
    scale [c] of the randomized MTS solver (reaction speed vs movement)
    and the monochromaticity threshold [delta_bar] of the slicing
    procedure (eager vs lazy deactivation). *)

val e13_time_series : ?quick:bool -> ?seed:int -> unit -> unit
(** Cumulative cost over time for the core algorithms and comparators on a
    drifting workload — the "figure" showing strict competitiveness (no
    start-up spike for onl-static) and the dynamic algorithm tracking the
    drift. *)

val e14_learning_variant : ?quick:bool -> ?seed:int -> unit -> unit
(** The paper's positioning against the learning variant (Henzinger et
    al.): on perfectly partitionable demand the component-learning
    baseline converges to ~zero marginal cost, while on genuine ring
    demand its component-size assumption breaks immediately — and the
    paper's algorithms handle both. *)

val all : (string * string * (?quick:bool -> ?seed:int -> unit -> unit)) list
(** [(id, one-line description, runner)] for the CLI and the bench
    harness. *)

val run : ?quick:bool -> ?seed:int -> string -> unit
(** Run one experiment by id (["e1"] ... ["e10"] or ["all"]).  Raises
    [Invalid_argument] on unknown ids. *)
