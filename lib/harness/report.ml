module Rng = Rbgp_util.Rng
module Tbl = Rbgp_util.Tbl
module Stats = Rbgp_util.Stats
module Cost = Rbgp_ring.Cost
module Trace = Rbgp_ring.Trace
module Instance = Rbgp_ring.Instance
module W = Rbgp_workloads.Workloads

let header id title =
  Printf.printf "\n=== %s: %s ===\n" (String.uppercase_ascii id) title

(* a zero-cost comparator against a positive online cost is an explicit
   "inf" in the tables (rendered by Tbl.cell_ratio, like Cost.scale_ratio's
   infinity), never a locale-dependent Printf artifact; 0/0 stays nan
   ("no signal") *)
let ratio a b =
  if b > 0.0 then a /. b else if a > 0.0 then Float.infinity else Float.nan

let fi = float_of_int

let trace_array trace steps =
  match trace with
  | Trace.Fixed a -> Array.sub a 0 steps
  | Trace.Adaptive _ -> invalid_arg "trace_array: adaptive trace"

(* total: the simulator always fills [per_step] when run with
   [~record_steps:true], as every caller below does *)
let per_step_series r =
  match r.Rbgp_ring.Simulator.per_step with
  | Some series -> series
  | None -> invalid_arg "Report: run was not recorded with ~record_steps:true"

(* split the flat result list of a fan-out back into rows of [width] cells *)
let rec take width l =
  if width = 0 then ([], l)
  else
    match l with
    | x :: tl ->
        let row, rest = take (width - 1) tl in
        (x :: row, rest)
    | [] -> invalid_arg "Report.take: not enough cells"

(* ------------------------------------------------------------------ *)
(* E1 / E6: load bounds                                                *)
(* ------------------------------------------------------------------ *)

let load_experiment ~id ~title ~quick ~seed ~make_alg ~bound_of =
  header id title;
  let sizes = if quick then [ (64, 4) ] else [ (64, 4); (256, 8); (1024, 16) ] in
  let steps = if quick then 2_000 else 10_000 in
  let tbl =
    Tbl.create ~headers:[ "n"; "ell"; "k"; "workload"; "max load"; "bound"; "ok" ]
  in
  List.iter
    (fun (n, ell) ->
      let inst = Runner.instance ~n ~ell in
      let k = inst.Instance.k in
      let rng = Rng.create seed in
      List.iter
        (fun (wname, trace) ->
          let alg = make_alg inst (Rng.split rng) in
          let bound = bound_of alg *. fi k in
          let r = Runner.run_alg inst alg trace ~steps in
          Tbl.add_row tbl
            [
              Tbl.cell_i n;
              Tbl.cell_i ell;
              Tbl.cell_i k;
              wname;
              Tbl.cell_i r.Runner.max_load;
              Tbl.cell_f bound;
              (if fi r.Runner.max_load <= bound +. 1e-6 then "yes" else "NO");
            ])
        (W.all_fixed ~n ~steps (Rng.split rng)))
    sizes;
  Tbl.print tbl

let e1_dynamic_load ?(quick = false) ?(seed = 7) () =
  load_experiment ~id:"e1"
    ~title:"dynamic algorithm load bound (Lemma 3.1), epsilon = 1/2" ~quick
    ~seed
    ~make_alg:(fun inst rng ->
      Rbgp_core.Dynamic_alg.online
        (Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst rng))
    ~bound_of:(fun alg -> alg.Rbgp_ring.Online.augmentation)

let e6_static_load ?(quick = false) ?(seed = 11) () =
  load_experiment ~id:"e6"
    ~title:"static algorithm load bound (Lemma 4.13), epsilon = 1/2" ~quick
    ~seed
    ~make_alg:(fun inst rng ->
      Rbgp_core.Static_alg.online
        (Rbgp_core.Static_alg.create ~epsilon:0.5 inst rng))
    ~bound_of:(fun alg -> alg.Rbgp_ring.Online.augmentation)

(* ------------------------------------------------------------------ *)
(* E2: ONL_R vs OPT_R                                                  *)
(* ------------------------------------------------------------------ *)

let e2_interval_ratio ?(quick = false) ?(seed = 13) () =
  header "e2" "interval cost of ONL_R vs optimal interval strategy OPT_R (Lemma 3.3)";
  let ks = if quick then [ 8; 16 ] else [ 8; 16; 32; 64; 128 ] in
  let epsilon = 0.5 in
  let solver_seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let tbl =
    Tbl.create
      ~headers:
        [ "k"; "n"; "workload"; "ONL_R (mean)"; "sd"; "OPT_R"; "ratio";
          "ratio/log2 k" ]
  in
  (* cell construction is sequential (workload rng streams are derived in a
     fixed order); the expensive run + exact OPT_R per cell fans out *)
  let cells =
    List.concat_map
      (fun k ->
        let ell = 8 in
        let n = ell * k in
        let inst = Runner.instance ~n ~ell in
        let steps = if quick then 2_000 else 50 * n in
        let rng = Rng.create seed in
        List.map
          (fun (wname, trace) ->
            let tarr = trace_array trace steps in
            ignore (Rng.split rng);
            ( (k, n, wname),
              fun () ->
                let mean, sd =
                  Runner.averaged ~seeds:solver_seeds (fun s ->
                      let alg =
                        Rbgp_core.Dynamic_alg.create ~shift:0 ~epsilon inst
                          (Rng.create (seed + (1000 * s)))
                      in
                      let (_ : Runner.run) =
                        Runner.run_alg inst
                          (Rbgp_core.Dynamic_alg.online alg)
                          (Trace.fixed tarr) ~steps
                      in
                      Rbgp_core.Dynamic_alg.interval_hit_cost alg
                      +. Rbgp_core.Dynamic_alg.interval_move_cost alg)
                in
                let opt_r =
                  Rbgp_offline.Lower_bound.interval_opt inst tarr ~shift:0
                    ~epsilon
                in
                (mean, sd, opt_r) ))
          [
            ("uniform", W.uniform ~n ~steps (Rng.split rng));
            ("zipf", W.zipf ~n ~steps (Rng.split rng));
            ("rotating", W.rotating ~n ~steps (Rng.split rng));
          ])
      ks
  in
  let results = Runner.fan_out (List.map snd cells) in
  let ratios = ref [] in
  List.iter2
    (fun ((k, n, wname), _) (mean, sd, opt_r) ->
      let r = ratio mean opt_r in
      if wname = "uniform" then ratios := (fi k, r) :: !ratios;
      Tbl.add_row tbl
        [
          Tbl.cell_i k;
          Tbl.cell_i n;
          wname;
          Printf.sprintf "%.0f" mean;
          Printf.sprintf "%.0f" sd;
          Tbl.cell_f opt_r;
          Tbl.cell_ratio r;
          Tbl.cell_ratio (r /. (log (fi k) /. log 2.0));
        ])
    cells results;
  Tbl.print tbl;
  (match !ratios with
  | _ :: _ :: _ ->
      let xs = Array.of_list (List.rev_map fst !ratios) in
      let ys = Array.of_list (List.rev_map snd !ratios) in
      let fit = Stats.loglog_fit xs ys in
      Printf.printf
        "growth of uniform-trace ratio: k^%.2f (r2=%.2f); polylog predicts \
         exponent near 0, linear lower bounds would give 1.\n"
        fit.Stats.slope fit.Stats.r2
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* E3: dynamic model, exact + at scale                                 *)
(* ------------------------------------------------------------------ *)

let e3_dynamic_ratio ?(quick = false) ?(seed = 17) () =
  header "e3" "dynamic algorithm vs dynamic OPT (Theorem 2.1)";
  (* exact part *)
  let tbl =
    Tbl.create
      ~headers:[ "instance"; "workload"; "alg"; "cost"; "OPT"; "ratio" ]
  in
  (* instances chosen so 2(1+eps)k < n: the dynamic algorithm's augmented
     capacity cannot swallow the whole ring, keeping the comparison
     meaningful *)
  let tiny_steps = if quick then 300 else 800 in
  let tiny_instances = if quick then [ (6, 3) ] else [ (6, 3); (8, 4) ] in
  (* the state-space DP is built once per instance (through the process-wide
     shared cache) and shared read-only by the parallel cells
     (Dynamic_opt.solve allocates its own scratch) *)
  let tiny_cells =
    List.concat_map
      (fun (n, ell) ->
        let inst = Runner.instance ~n ~ell in
        let dp = Rbgp_offline.Dynamic_opt.shared inst () in
        let rng = Rng.create seed in
        List.map
          (fun (wname, trace) ->
            let tarr = trace_array trace tiny_steps in
            ( (n, ell, wname),
              fun () ->
                let opt = Rbgp_offline.Dynamic_opt.solve dp tarr in
                let runs =
                  List.map
                    (fun (spec : Runner.alg_spec) ->
                      let alg =
                        spec.Runner.build inst ~trace:tarr ~seed:(seed + 1)
                      in
                      let r =
                        Runner.run_alg inst alg (Trace.fixed tarr)
                          ~steps:tiny_steps
                      in
                      (spec.Runner.name, Cost.total r.Runner.cost))
                    (Runner.core_algorithms ~epsilon:0.5
                    @ Runner.baseline_algorithms ~epsilon:0.5)
                in
                (Cost.total opt, runs) ))
          [
            ("uniform", W.uniform ~n ~steps:tiny_steps (Rng.split rng));
            ( "rotating",
              W.rotating ~n ~steps:tiny_steps ~arc:2 ~period:8 (Rng.split rng)
            );
          ])
      tiny_instances
  in
  List.iter2
    (fun ((n, ell, wname), _) (opt_total, runs) ->
      List.iter
        (fun (alg_name, cost_total) ->
          Tbl.add_row tbl
            [
              Printf.sprintf "n=%d ell=%d" n ell;
              wname;
              alg_name;
              Tbl.cell_i cost_total;
              Tbl.cell_i opt_total;
              Tbl.cell_ratio (ratio (fi cost_total) (fi opt_total));
            ])
        runs)
    tiny_cells
    (Runner.fan_out (List.map snd tiny_cells));
  Tbl.print tbl;
  (* at scale, vs certified lower bound *)
  Printf.printf
    "\nAt scale, dynamic OPT is bracketed: the certified windowed lower \
     bound from below, a feasible window-wise static schedule from above \
     (cost/LB overestimates the true ratio, cost/UB underestimates it):\n";
  let tbl2 =
    Tbl.create
      ~headers:
        [ "n"; "k"; "workload"; "alg"; "cost"; "dyn LB"; "dyn UB";
          "cost/LB"; "cost/UB" ]
  in
  let n = if quick then 128 else 256 in
  let ell = 8 in
  let steps = if quick then 5_000 else 20_000 in
  let inst = Runner.instance ~n ~ell in
  let rng = Rng.create (seed + 2) in
  let scale_cells =
    List.map
      (fun (wname, trace) ->
        let tarr = trace_array trace steps in
        ( wname,
          fun () ->
            let lb = Rbgp_offline.Lower_bound.dynamic_lb inst tarr () in
            let _, ub_cost = Rbgp_offline.Dynamic_heuristic.best inst tarr () in
            let runs =
              List.map
                (fun (spec : Runner.alg_spec) ->
                  let alg =
                    spec.Runner.build inst ~trace:tarr ~seed:(seed + 3)
                  in
                  let r = Runner.run_alg inst alg (Trace.fixed tarr) ~steps in
                  (spec.Runner.name, Cost.total r.Runner.cost))
                (Runner.core_algorithms ~epsilon:0.5
                @ Runner.baseline_algorithms ~epsilon:0.5)
            in
            (lb, Cost.total ub_cost, runs) ))
      [
        ("uniform", W.uniform ~n ~steps (Rng.split rng));
        ("rotating", W.rotating ~n ~steps (Rng.split rng));
        ("hotspot", W.hotspot ~n ~steps (Rng.split rng));
      ]
  in
  List.iter2
    (fun (wname, _) (lb, ub, runs) ->
      List.iter
        (fun (alg_name, cost_total) ->
          Tbl.add_row tbl2
            [
              Tbl.cell_i n;
              Tbl.cell_i inst.Instance.k;
              wname;
              alg_name;
              Tbl.cell_i cost_total;
              Tbl.cell_i lb;
              Tbl.cell_i ub;
              Tbl.cell_ratio (ratio (fi cost_total) (fi lb));
              Tbl.cell_ratio (ratio (fi cost_total) (fi ub));
            ])
        runs)
    scale_cells
    (Runner.fan_out (List.map snd scale_cells));
  Tbl.print tbl2;
  (* scaling: does the ratio against the feasible offline schedule stay
     bounded as k grows?  (Theorem 2.1 predicts polylog growth; against
     the UB the measured ratio *underestimates* the true one.) *)
  Printf.printf "\nratio scaling on drifting demand (UB = feasible offline schedule):\n";
  let tbl3 =
    Tbl.create
      ~headers:[ "k"; "n"; "steps"; "onl-dynamic"; "dyn UB"; "cost/UB" ]
  in
  let ks = if quick then [ 8; 16 ] else [ 8; 16; 32; 64 ] in
  (* each k is fully self-contained (a fresh rng stream per k), so the cell
     body can build its own trace *)
  let k_cells =
    List.map
      (fun k ->
        let ell = 8 in
        let n = ell * k in
        let steps = 50 * n in
        ( (k, n, steps),
          fun () ->
            let inst = Runner.instance ~n ~ell in
            let rng = Rng.create (seed + 4) in
            let tarr =
              trace_array (W.rotating ~n ~steps (Rng.split rng)) steps
            in
            let alg =
              Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst
                (Rng.create (seed + 5))
            in
            let r =
              Runner.run_alg inst
                (Rbgp_core.Dynamic_alg.online alg)
                (Trace.fixed tarr) ~steps
            in
            let _, ub_cost = Rbgp_offline.Dynamic_heuristic.best inst tarr () in
            (Cost.total r.Runner.cost, Cost.total ub_cost) ))
      ks
  in
  List.iter2
    (fun ((k, n, steps), _) (cost_total, ub) ->
      Tbl.add_row tbl3
        [
          Tbl.cell_i k;
          Tbl.cell_i n;
          Tbl.cell_i steps;
          Tbl.cell_i cost_total;
          Tbl.cell_i ub;
          Tbl.cell_ratio (ratio (fi cost_total) (fi ub));
        ])
    k_cells
    (Runner.fan_out (List.map snd k_cells));
  Tbl.print tbl3

(* ------------------------------------------------------------------ *)
(* E4: the Omega(k) separation on the hitting game                     *)
(* ------------------------------------------------------------------ *)

let e4_deterministic_lower_bound ?(quick = false) ?(seed = 19) () =
  header "e4"
    "chase adversary on the hitting game: deterministic Omega(k) vs \
     randomized polylog (Lemma 4.1)";
  Printf.printf
    "The adversary chases a deterministic player (requesting its realized \
     edge); the resulting trace is then replayed obliviously against the \
     randomized interval-growing player, which is the setting of the \
     paper's guarantees.  The last rows run the adversary adaptively \
     against interval growing itself: adaptive adversaries defeat \
     randomization too, as the theory predicts.\n";
  let ks = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128; 256 ] in
  let tbl =
    Tbl.create
      ~headers:
        [ "k"; "steps"; "trace"; "player"; "cost"; "static OPT"; "ratio";
          "ratio/k"; "ratio/log2 k" ]
  in
  let row ~k ~steps ~trace_name ~player_name cost opt =
    let r = ratio cost opt in
    Tbl.add_row tbl
      [
        Tbl.cell_i k;
        Tbl.cell_i steps;
        trace_name;
        player_name;
        Tbl.cell_f cost;
        Tbl.cell_f opt;
        Tbl.cell_ratio r;
        Printf.sprintf "%.3f" (r /. fi k);
        Tbl.cell_ratio (r /. (log (fi k) /. log 2.0));
      ]
  in
  List.iter
    (fun k ->
      let steps = Stdlib.min (if quick then 10_000 else 60_000) (4 * k * k) in
      let ig_seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
      let ig_cost requests =
        fst
          (Runner.averaged ~seeds:ig_seeds (fun s ->
               let ig =
                 Rbgp_hitting.Interval_growing.create ~k
                   (Rng.create (seed + (1000 * s)))
               in
               Rbgp_hitting.Game.run (Rbgp_hitting.Interval_growing.player ig)
                 requests;
               Rbgp_hitting.Interval_growing.hit_cost ig
               +. Rbgp_hitting.Interval_growing.move_cost ig))
      in
      (* chase the deterministic dodger, then replay its trace obliviously *)
      let dodger = Rbgp_hitting.Game.greedy_dodge ~k () in
      let chase_trace =
        Rbgp_hitting.Game.run_adaptive dodger ~steps ~next:(fun _ pos ->
            Rbgp_hitting.Adversary.chase 0 pos)
      in
      let opt = Rbgp_hitting.Static_opt.static ~k chase_trace in
      row ~k ~steps ~trace_name:"chase-dodge" ~player_name:"greedy-dodge"
        (Rbgp_hitting.Game.total_cost dodger)
        opt;
      row ~k ~steps ~trace_name:"chase-dodge" ~player_name:"interval-growing"
        (ig_cost chase_trace) opt;
      (* and adaptively against the randomized player itself *)
      let ig =
        Rbgp_hitting.Interval_growing.create ~k (Rng.create (seed + k))
      in
      let player = Rbgp_hitting.Interval_growing.player ig in
      let adaptive_trace =
        Rbgp_hitting.Game.run_adaptive player ~steps ~next:(fun _ pos ->
            Rbgp_hitting.Adversary.chase 0 pos)
      in
      row ~k ~steps ~trace_name:"chase-adaptive" ~player_name:"interval-growing"
        (Rbgp_hitting.Game.total_cost player)
        (Rbgp_hitting.Static_opt.static ~k adaptive_trace))
    ks;
  Tbl.print tbl;
  Printf.printf
    "expected shape: on the oblivious chase-dodge trace, greedy-dodge's \
     ratio/k stays roughly constant (the Omega(k) lower bound) while \
     interval-growing's ratio/log2 k stays roughly constant.\n"

(* ------------------------------------------------------------------ *)
(* E5: interval growing vs static OPT                                  *)
(* ------------------------------------------------------------------ *)

let e5_hitting_ratio ?(quick = false) ?(seed = 23) () =
  header "e5" "interval growing vs hitting-game static OPT (Corollary 4.4)";
  let ks = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024 ] in
  let tbl =
    Tbl.create
      ~headers:[ "k"; "workload"; "cost"; "static OPT"; "ratio"; "ratio/log2 k" ]
  in
  let cells =
    List.concat_map
      (fun k ->
        let steps = if quick then 5_000 else 40_000 in
        let rng = Rng.create seed in
        let start = Rbgp_hitting.Game.start_edge ~k in
        List.map
          (fun (wname, requests) ->
            ( (k, wname),
              fun () ->
                let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
                let mean, _ =
                  Runner.averaged ~seeds (fun s ->
                      let ig =
                        Rbgp_hitting.Interval_growing.create ~k
                          (Rng.create (seed + s))
                      in
                      Rbgp_hitting.Game.run
                        (Rbgp_hitting.Interval_growing.player ig)
                        requests;
                      Rbgp_hitting.Interval_growing.hit_cost ig
                      +. Rbgp_hitting.Interval_growing.move_cost ig)
                in
                let opt = Rbgp_hitting.Static_opt.static ~k requests in
                (mean, opt) ))
          [
            ( "hammer-start",
              Rbgp_hitting.Adversary.hammer ~k ~edge:start ~steps );
            ( "uniform",
              Rbgp_hitting.Adversary.uniform ~k ~steps (Rng.split rng) );
            ("bait-switch", Rbgp_hitting.Adversary.bait_and_switch ~k ~steps);
          ])
      ks
  in
  List.iter2
    (fun ((k, wname), _) (mean, opt) ->
      let r = ratio mean opt in
      Tbl.add_row tbl
        [
          Tbl.cell_i k;
          wname;
          Tbl.cell_f mean;
          Tbl.cell_f opt;
          Tbl.cell_ratio r;
          Tbl.cell_ratio (r /. (log (fi k) /. log 2.0));
        ])
    cells
    (Runner.fan_out (List.map snd cells));
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E7: static algorithm vs static OPT                                  *)
(* ------------------------------------------------------------------ *)

let e7_static_ratio ?(quick = false) ?(seed = 29) () =
  header "e7" "static algorithm vs segmented static OPT (Theorem 2.2)";
  let ks = if quick then [ 8; 16 ] else [ 8; 16; 32; 64 ] in
  let epsilon = 1.0 in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let tbl =
    Tbl.create
      ~headers:
        [ "k"; "n"; "workload"; "onl-static (mean)"; "sd"; "static OPT";
          "static LB"; "ratio" ]
  in
  let cells =
    List.concat_map
      (fun k ->
        let ell = 8 in
        let n = ell * k in
        let inst = Runner.instance ~n ~ell in
        let steps = if quick then 2_000 else 40 * n in
        let rng = Rng.create seed in
        List.map
          (fun (wname, trace) ->
            let tarr = trace_array trace steps in
            ignore (Rng.split rng);
            ( (k, n, wname),
              fun () ->
                let mean, sd =
                  Runner.averaged ~seeds (fun s ->
                      let alg =
                        Rbgp_core.Static_alg.create ~epsilon inst
                          (Rng.create (seed + (1000 * s)))
                      in
                      let r =
                        Runner.run_alg inst
                          (Rbgp_core.Static_alg.online alg)
                          (Trace.fixed tarr) ~steps
                      in
                      fi (Cost.total r.Runner.cost))
                in
                let opt = Rbgp_offline.Static_opt.segmented inst tarr in
                let lb =
                  Rbgp_offline.Static_opt.crossing_lower_bound inst tarr
                in
                (mean, sd, opt.Rbgp_offline.Static_opt.total, lb) ))
          [
            ("uniform", W.uniform ~n ~steps (Rng.split rng));
            ("hotspot", W.hotspot ~n ~steps (Rng.split rng));
            ("piecewise", W.piecewise_static ~n ~steps (Rng.split rng));
          ])
      ks
  in
  List.iter2
    (fun ((k, n, wname), _) (mean, sd, opt_total, lb) ->
      Tbl.add_row tbl
        [
          Tbl.cell_i k;
          Tbl.cell_i n;
          wname;
          Printf.sprintf "%.0f" mean;
          Printf.sprintf "%.0f" sd;
          Tbl.cell_i opt_total;
          Tbl.cell_i lb;
          Tbl.cell_ratio (ratio mean (fi opt_total));
        ])
    cells
    (Runner.fan_out (List.map snd cells));
  Tbl.print tbl;
  (* strictness: short, cheap sequences must still give bounded ratios *)
  Printf.printf "\nstrictness check (short cheap sequences, no additive term):\n";
  let tbl2 = Tbl.create ~headers:[ "steps"; "onl-static"; "static OPT"; "ratio" ] in
  let inst = Runner.instance ~n:64 ~ell:4 in
  List.iter
    (fun steps ->
      (* all requests inside one server's block: OPT pays nothing *)
      let tarr = Array.init steps (fun i -> 1 + (i mod 8)) in
      let alg =
        Rbgp_core.Static_alg.create ~epsilon inst (Rng.create (seed + steps))
      in
      let r =
        Runner.run_alg inst (Rbgp_core.Static_alg.online alg)
          (Trace.fixed tarr) ~steps
      in
      let opt = Rbgp_offline.Static_opt.segmented inst tarr in
      Tbl.add_row tbl2
        [
          Tbl.cell_i steps;
          Tbl.cell_i (Cost.total r.Runner.cost);
          Tbl.cell_i opt.Rbgp_offline.Static_opt.total;
          (let c = Cost.total r.Runner.cost in
           if opt.Rbgp_offline.Static_opt.total = 0 then
             if c = 0 then "0/0 (strict)" else Printf.sprintf "%d/0 VIOLATION" c
           else Tbl.cell_ratio (ratio (fi c) (fi opt.Rbgp_offline.Static_opt.total)));
        ])
    [ 10; 100; 1000 ];
  Tbl.print tbl2

(* ------------------------------------------------------------------ *)
(* E8: head-to-head                                                    *)
(* ------------------------------------------------------------------ *)

let e8_head_to_head ?(quick = false) ?(seed = 31) () =
  header "e8" "all algorithms x all workloads";
  let n = if quick then 128 else 256 in
  let ell = 8 in
  let steps = if quick then 5_000 else 20_000 in
  let inst = Runner.instance ~n ~ell in
  let epsilon = 0.5 in
  let rng = Rng.create seed in
  let specs =
    Runner.core_algorithms ~epsilon @ Runner.baseline_algorithms ~epsilon
  in
  let tbl =
    Tbl.create
      ~headers:
        ("workload" :: List.map (fun (s : Runner.alg_spec) -> s.Runner.name) specs)
  in
  let oblivious = W.all_fixed ~n ~steps (Rng.split rng) in
  (* one cell per (workload x algorithm); the flat fan-out result is split
     back into table rows of |specs| cells *)
  let cells =
    List.concat_map
      (fun (_, trace) ->
        let tarr = trace_array trace steps in
        List.map
          (fun (spec : Runner.alg_spec) () ->
            let alg = spec.Runner.build inst ~trace:tarr ~seed:(seed + 1) in
            let r = Runner.run_alg inst alg (Trace.fixed tarr) ~steps in
            Tbl.cell_i (Cost.total r.Runner.cost))
          specs)
      oblivious
  in
  (* adaptive adversary: no static-oracle (it needs the trace up front);
     each cell drives its own adversary instance *)
  let adaptive_specs =
    List.filter (fun (s : Runner.alg_spec) -> s.Runner.name <> "static-oracle") specs
  in
  let adaptive_cells =
    List.map
      (fun (spec : Runner.alg_spec) () ->
        let alg = spec.Runner.build inst ~trace:[||] ~seed:(seed + 1) in
        let r = Runner.run_alg inst alg (W.adversary_cut_chaser ~n) ~steps in
        Tbl.cell_i (Cost.total r.Runner.cost))
      adaptive_specs
  in
  let results = Runner.fan_out (cells @ adaptive_cells) in
  let width = List.length specs in
  let rest =
    List.fold_left
      (fun remaining (wname, _) ->
        let row, rest = take width remaining in
        Tbl.add_row tbl (wname :: row);
        rest)
      results oblivious
  in
  Tbl.add_rule tbl;
  Tbl.add_row tbl (("cut-chaser" :: rest) @ [ "n/a" ]);
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E9: MTS solver ablation                                             *)
(* ------------------------------------------------------------------ *)

let e9_mts_ablation ?(quick = false) ?(seed = 37) () =
  header "e9" "Section-3 reduction instantiated with each MTS solver";
  let n = if quick then 128 else 256 in
  let ell = 8 in
  let steps = if quick then 5_000 else 20_000 in
  let inst = Runner.instance ~n ~ell in
  let rng = Rng.create seed in
  let specs = Runner.mts_variants ~epsilon:0.5 in
  let tbl =
    Tbl.create
      ~headers:
        ("workload" :: List.map (fun (s : Runner.alg_spec) -> s.Runner.name) specs)
  in
  let workloads =
    [
      ("uniform", `Fixed (W.uniform ~n ~steps (Rng.split rng)));
      ("rotating", `Fixed (W.rotating ~n ~steps (Rng.split rng)));
      ("zipf", `Fixed (W.zipf ~n ~steps (Rng.split rng)));
      ("cut-chaser", `Adaptive);
    ]
  in
  (* one cell per (workload x solver); adaptive traces are built inside the
     cell so every solver drives a private adversary instance *)
  let cells =
    List.concat_map
      (fun (_, kind) ->
        List.map
          (fun (spec : Runner.alg_spec) () ->
            let trace =
              match kind with
              | `Fixed t -> t
              | `Adaptive -> W.adversary_cut_chaser ~n
            in
            let alg = spec.Runner.build inst ~trace:[||] ~seed:(seed + 1) in
            let r = Runner.run_alg inst alg trace ~steps in
            Tbl.cell_i (Cost.total r.Runner.cost))
          specs)
      workloads
  in
  let width = List.length specs in
  let (_ : string list) =
    List.fold_left
      (fun remaining (wname, _) ->
        let row, rest = take width remaining in
        Tbl.add_row tbl (wname :: row);
        rest)
      (Runner.fan_out cells) workloads
  in
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E10: well-behaved strategy replay                                   *)
(* ------------------------------------------------------------------ *)

let e10_well_behaved ?(quick = false) ?(seed = 41) () =
  header "e10"
    "well-behaved clustering strategy vs exact dynamic OPT (Lemma 3.4)";
  let steps = if quick then 200 else 1_000 in
  let epsilon = 0.25 in
  let tbl =
    Tbl.create
      ~headers:
        [ "instance"; "workload"; "OPT"; "W cost"; "bound"; "within"; "invariants" ]
  in
  (* one cell per (instance x workload), fanned across domains; the exact-OPT
     DP table is built once per instance (via the shared cache, before the
     fan-out) and read by all of that instance's cells, while each solve
     allocates its own scratch.  Traces are generated sequentially here so
     the fan-out cannot perturb the rng stream. *)
  let cells =
    List.concat_map
      (fun (n, ell) ->
        let inst = Runner.instance ~n ~ell in
        let k = inst.Instance.k in
        let dp = Rbgp_offline.Dynamic_opt.shared inst () in
        let rng = Rng.create seed in
        List.map
          (fun (wname, trace) ->
            let tarr = trace_array trace steps in
            ( (n, ell, k, wname),
              fun () ->
                let schedule, opt =
                  Rbgp_offline.Dynamic_opt.solve_schedule dp tarr
                in
                let ok, w_cost =
                  try
                    let wb =
                      Rbgp_core.Well_behaved.replay inst ~epsilon ~trace:tarr
                        ~schedule
                    in
                    (true, Rbgp_core.Well_behaved.total_cost wb)
                  with Failure _ -> (false, -1)
                in
                (Cost.total opt, ok, w_cost) ))
          [
            ("uniform", W.uniform ~n ~steps (Rng.split rng));
            ("rotating", W.rotating ~n ~steps ~arc:2 ~period:8 (Rng.split rng));
            ("hotspot", W.hotspot ~n ~steps ~arc:2 (Rng.split rng));
          ])
      [ (8, 2); (9, 3); (10, 2) ]
  in
  List.iter2
    (fun ((n, _ell, k, wname), _) (opt_total, ok, w_cost) ->
      let log2 x = log x /. log 2.0 in
      let bound =
        (4.0 /. epsilon *. log2 (fi k) *. fi opt_total)
        +. (2.0 *. fi n *. log2 (fi k))
      in
      Tbl.add_row tbl
        [
          Printf.sprintf "n=%d ell=%d" n _ell;
          wname;
          Tbl.cell_i opt_total;
          Tbl.cell_i w_cost;
          Tbl.cell_f bound;
          (if fi w_cost <= bound then "yes" else "NO");
          (if ok then "ok" else "VIOLATED");
        ])
    cells
    (Runner.fan_out (List.map snd cells));
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E11: epsilon ablation                                               *)
(* ------------------------------------------------------------------ *)

let e11_epsilon_ablation ?(quick = false) ?(seed = 43) () =
  header "e11" "augmentation vs cost: epsilon sweep for both core algorithms";
  let n = if quick then 128 else 256 in
  let ell = 8 in
  let steps = if quick then 5_000 else 20_000 in
  let inst = Runner.instance ~n ~ell in
  let rng = Rng.create seed in
  let tarr = trace_array (W.rotating ~n ~steps (Rng.split rng)) steps in
  let tbl =
    Tbl.create
      ~headers:
        [ "epsilon"; "alg"; "claimed aug"; "max load / k"; "total cost" ]
  in
  let makers =
    [
      ( "onl-dynamic",
        fun epsilon ->
          Some
            (Rbgp_core.Dynamic_alg.online
               (Rbgp_core.Dynamic_alg.create ~epsilon inst
                  (Rng.create (seed + 1)))) );
      ( "onl-static",
        fun epsilon ->
          Some
            (Rbgp_core.Static_alg.online
               (Rbgp_core.Static_alg.create ~epsilon inst
                  (Rng.create (seed + 2)))) );
    ]
  in
  let cells =
    List.concat_map
      (fun epsilon ->
        List.map
          (fun (name, make) () ->
            match make epsilon with
            | None -> None
            | Some (alg : Rbgp_ring.Online.t) ->
                let r = Runner.run_alg inst alg (Trace.fixed tarr) ~steps in
                Some
                  ( epsilon,
                    name,
                    alg.Rbgp_ring.Online.augmentation,
                    r.Runner.max_load,
                    Cost.total r.Runner.cost ))
          makers)
      (if quick then [ 0.25; 1.0 ] else [ 0.1; 0.25; 0.5; 1.0; 2.0 ])
  in
  List.iter
    (function
      | None -> ()
      | Some (epsilon, name, aug, max_load, cost_total) ->
          Tbl.add_row tbl
            [
              Printf.sprintf "%.2f" epsilon;
              name;
              Printf.sprintf "%.2f" aug;
              Printf.sprintf "%.2f" (fi max_load /. fi inst.Instance.k);
              Tbl.cell_i cost_total;
            ])
    (Runner.fan_out cells);
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E12: internal parameter ablations                                   *)
(* ------------------------------------------------------------------ *)

let e12_parameter_ablation ?(quick = false) ?(seed = 47) () =
  header "e12" "design-choice ablations: smin scale c, delta_bar";
  let n = if quick then 128 else 256 in
  let ell = 8 in
  let steps = if quick then 5_000 else 20_000 in
  let inst = Runner.instance ~n ~ell in
  let k = inst.Instance.k in
  let rng = Rng.create seed in
  let tarr = trace_array (W.zipf ~n ~steps (Rng.split rng)) steps in
  (* smin scale: c = diameter is the analysis' choice; smaller c reacts
     faster but moves more *)
  Printf.printf "\nsmin-mw scale c (dynamic algorithm, zipf trace):\n";
  let tbl = Tbl.create ~headers:[ "c / diameter"; "comm"; "mig"; "total" ] in
  let factor_cells =
    List.map
      (fun factor () ->
        let solver metric ~start ~rng =
          let c =
            Float.max 1.0 (factor *. fi (Rbgp_mts.Metric.diameter metric))
          in
          Rbgp_mts.Smin_mw.solver_with_scale ~c metric ~start ~rng
        in
        let alg =
          Rbgp_core.Dynamic_alg.create ~mts:solver ~epsilon:0.5 inst
            (Rng.create (seed + 1))
        in
        let r =
          Runner.run_alg inst
            (Rbgp_core.Dynamic_alg.online alg)
            (Trace.fixed tarr) ~steps
        in
        (factor, r.Runner.cost))
      (if quick then [ 0.25; 1.0 ] else [ 0.1; 0.25; 0.5; 1.0; 2.0; 4.0 ])
  in
  List.iter
    (fun (factor, cost) ->
      Tbl.add_row tbl
        [
          Printf.sprintf "%.2f" factor;
          Tbl.cell_i cost.Cost.comm;
          Tbl.cell_i cost.Cost.mig;
          Tbl.cell_i (Cost.total cost);
        ])
    (Runner.fan_out factor_cells);
  Tbl.print tbl;
  (* delta_bar: eager (paper's 14/15) vs lazier deactivation *)
  Printf.printf "\nslicing threshold delta_bar (static algorithm, zipf trace):\n";
  let tbl2 =
    Tbl.create ~headers:[ "delta_bar"; "comm"; "mig"; "total"; "max load / k" ]
  in
  let delta_cells =
    List.map
      (fun delta_bar () ->
        let alg =
          Rbgp_core.Static_alg.create ~delta_bar ~epsilon:0.5 inst
            (Rng.create (seed + 2))
        in
        let r =
          Runner.run_alg ~strict:false inst
            (Rbgp_core.Static_alg.online alg)
            (Trace.fixed tarr) ~steps
        in
        (delta_bar, r.Runner.cost, r.Runner.max_load))
      (if quick then [ 0.75; 14.0 /. 15.0 ]
       else [ 0.6; 0.75; 0.85; 14.0 /. 15.0; 0.97 ])
  in
  List.iter
    (fun (delta_bar, cost, max_load) ->
      Tbl.add_row tbl2
        [
          Printf.sprintf "%.3f" delta_bar;
          Tbl.cell_i cost.Cost.comm;
          Tbl.cell_i cost.Cost.mig;
          Tbl.cell_i (Cost.total cost);
          Printf.sprintf "%.2f" (fi max_load /. fi k);
        ])
    (Runner.fan_out delta_cells);
  Tbl.print tbl2;
  Printf.printf
    "note: delta_bar below the paper's max(2/(2+eps'), 14/15) voids the \
     capacity guarantee (the run tolerates violations and reports max \
     load), which is exactly why the paper needs the eager threshold.\n"

(* ------------------------------------------------------------------ *)
(* E13: cumulative cost curves                                         *)
(* ------------------------------------------------------------------ *)

let e13_time_series ?(quick = false) ?(seed = 53) () =
  header "e13" "cumulative cost over time (rotating hotspot)";
  let n = if quick then 128 else 256 in
  let ell = 8 in
  let steps = if quick then 8_000 else 24_000 in
  let samples = 8 in
  let inst = Runner.instance ~n ~ell in
  let rng = Rng.create seed in
  let tarr = trace_array (W.rotating ~n ~steps (Rng.split rng)) steps in
  let specs =
    Runner.core_algorithms ~epsilon:0.5 @ Runner.baseline_algorithms ~epsilon:0.5
  in
  let curves =
    List.map
      (fun (spec : Runner.alg_spec) ->
        let alg = spec.Runner.build inst ~trace:tarr ~seed:(seed + 1) in
        let r =
          Rbgp_ring.Simulator.run ~record_steps:true inst alg
            (Trace.fixed tarr) ~steps
        in
        let series = per_step_series r in
        (spec.Runner.name, series))
      specs
  in
  let tbl =
    Tbl.create ~headers:("step" :: List.map fst curves)
  in
  for s = 1 to samples do
    let step = (s * steps / samples) - 1 in
    Tbl.add_row tbl
      (Tbl.cell_i (step + 1)
      :: List.map
           (fun (_, series) ->
             let comm, mig = series.(step) in
             Tbl.cell_i (comm + mig))
           curves)
  done;
  Tbl.print tbl;
  Printf.printf
    "each cell is cumulative cost after the given step; onl-static starts \
     at zero (strictness) and the drifting hotspot makes purely static \
     placements accumulate linearly between re-optimization points.\n"

(* ------------------------------------------------------------------ *)
(* E14: the learning variant                                           *)
(* ------------------------------------------------------------------ *)

let e14_learning_variant ?(quick = false) ?(seed = 59) () =
  header "e14"
    "learning variant vs ring demand: why components are not enough";
  Printf.printf
    "'partitionable' draws requests from a hidden balanced partition (the \
     learning variant's input class); 'uniform' and 'allreduce' are \
     genuine ring demand, where every partition keeps paying.\n";
  let n = if quick then 128 else 256 in
  let ell = 8 in
  let steps = if quick then 5_000 else 20_000 in
  let inst = Runner.instance ~n ~ell in
  let rng = Rng.create seed in
  let algorithms =
    [
      ( "component-learning",
        fun () -> Rbgp_baselines.Baselines.component_learning inst );
      ( "onl-dynamic",
        fun () ->
          Rbgp_core.Dynamic_alg.online
            (Rbgp_core.Dynamic_alg.create ~epsilon:0.5 inst
               (Rng.create (seed + 1))) );
      ( "onl-static",
        fun () ->
          Rbgp_core.Static_alg.online
            (Rbgp_core.Static_alg.create ~epsilon:0.5 inst
               (Rng.create (seed + 2))) );
      ("never-move", fun () -> Rbgp_baselines.Baselines.never_move inst);
    ]
  in
  (* each cell is "first half + second half": a converging algorithm's
     second half goes to ~0 *)
  let tbl =
    Tbl.create
      ~headers:
        ("workload (1st+2nd half)" :: List.map fst algorithms)
  in
  List.iter
    (fun (wname, trace) ->
      let tarr = trace_array trace steps in
      let row =
        List.map
          (fun (_, make) ->
            let r =
              Rbgp_ring.Simulator.run ~record_steps:true inst (make ())
                (Trace.fixed tarr) ~steps
            in
            let series = per_step_series r in
            let total i = fst series.(i) + snd series.(i) in
            let half = total ((steps / 2) - 1) in
            Printf.sprintf "%d+%d" half (total (steps - 1) - half))
          algorithms
      in
      Tbl.add_row tbl (wname :: row))
    [
      ( "partitionable",
        W.partitionable ~n ~ell ~steps (Rng.split rng) );
      ("uniform", W.uniform ~n ~steps (Rng.split rng));
      ("allreduce", W.allreduce ~n ~steps);
    ];
  Tbl.print tbl;
  Printf.printf
    "expected: component-learning's second half is ~0 on partitionable \
     demand (it learned the hidden blocks) but keeps paying on ring \
     demand; the paper's algorithms are competitive on both.\n"

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", "dynamic load bound (Lemma 3.1)", e1_dynamic_load);
    ("e2", "ONL_R vs OPT_R (Lemma 3.3)", e2_interval_ratio);
    ("e3", "dynamic competitive ratio (Theorem 2.1)", e3_dynamic_ratio);
    ("e4", "deterministic Omega(k) separation (Lemma 4.1)", e4_deterministic_lower_bound);
    ("e5", "interval growing ratio (Corollary 4.4)", e5_hitting_ratio);
    ("e6", "static load bound (Lemma 4.13)", e6_static_load);
    ("e7", "static competitive ratio (Theorem 2.2)", e7_static_ratio);
    ("e8", "head-to-head comparison", e8_head_to_head);
    ("e9", "MTS solver ablation", e9_mts_ablation);
    ("e10", "well-behaved strategy (Lemma 3.4)", e10_well_behaved);
    ("e11", "epsilon / augmentation ablation", e11_epsilon_ablation);
    ("e12", "internal parameter ablations", e12_parameter_ablation);
    ("e13", "cumulative cost curves", e13_time_series);
    ("e14", "learning variant vs ring demand", e14_learning_variant);
  ]

let run ?quick ?seed id =
  if id = "all" then
    List.iter (fun (_, _, f) -> f ?quick ?seed ()) all
  else
    match List.find_opt (fun (i, _, _) -> i = id) all with
    | Some (_, _, f) -> f ?quick ?seed ()
    | None -> invalid_arg (Printf.sprintf "Report.run: unknown experiment %S" id)
