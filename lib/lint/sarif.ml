(* SARIF 2.1.0 rendering of a lint outcome, for CI code-scanning upload.

   One run, one driver ("rbgp-lint"), rules from [Rules.descriptions].
   Live findings become results at their own level; allowlist-suppressed
   findings are emitted too, carrying a [suppressions] entry whose
   justification is the allowlist's written one — so the PR annotation
   view shows *why* a site is accepted, not just that it is.

   Column convention: Finding.col is 0-based (compiler convention),
   SARIF's startColumn is 1-based.  Whole-file findings (line = 0) omit
   the region.  [findings_of_json] inverts the un-suppressed results for
   the qcheck round-trip. *)

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let level_of_severity = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let severity_of_level = function
  | "error" -> Some Finding.Error
  | "warning" -> Some Finding.Warning
  | _ -> None

let rule_descriptor (id, desc) =
  Ljson.Obj
    [
      ("id", Ljson.Str id);
      ("shortDescription", Ljson.Obj [ ("text", Ljson.Str desc) ]);
    ]

let location (f : Finding.t) =
  let physical =
    ("artifactLocation", Ljson.Obj [ ("uri", Ljson.Str f.Finding.file) ])
  in
  let fields =
    if f.Finding.line = 0 then [ physical ]
    else
      [
        physical;
        ( "region",
          Ljson.Obj
            [
              ("startLine", Ljson.Num (float_of_int f.Finding.line));
              ("startColumn", Ljson.Num (float_of_int (f.Finding.col + 1)));
            ] );
      ]
  in
  Ljson.Obj [ ("physicalLocation", Ljson.Obj fields) ]

let result ?suppression (f : Finding.t) =
  let base =
    [
      ("ruleId", Ljson.Str f.Finding.rule);
      ("level", Ljson.Str (level_of_severity f.Finding.severity));
      ("message", Ljson.Obj [ ("text", Ljson.Str f.Finding.message) ]);
      ("locations", Ljson.Arr [ location f ]);
    ]
  in
  let fields =
    match suppression with
    | None -> base
    | Some (e : Allowlist.entry) ->
        base
        @ [
            ( "suppressions",
              Ljson.Arr
                [
                  Ljson.Obj
                    [
                      ("kind", Ljson.Str "external");
                      ( "justification",
                        Ljson.Str e.Allowlist.justification );
                    ];
                ] );
          ]
  in
  Ljson.Obj fields

let to_json (o : Engine.outcome) =
  let results =
    List.map (fun f -> result f) o.Engine.live
    @ List.map
        (fun (f, e) -> result ~suppression:e f)
        o.Engine.suppressed
  in
  Ljson.Obj
    [
      ("version", Ljson.Str "2.1.0");
      ("$schema", Ljson.Str schema_uri);
      ( "runs",
        Ljson.Arr
          [
            Ljson.Obj
              [
                ( "tool",
                  Ljson.Obj
                    [
                      ( "driver",
                        Ljson.Obj
                          [
                            ("name", Ljson.Str "rbgp-lint");
                            ("informationUri", Ljson.Str "DESIGN.md");
                            ( "rules",
                              Ljson.Arr
                                (List.map rule_descriptor Rules.descriptions)
                            );
                          ] );
                    ] );
                ("results", Ljson.Arr results);
              ];
          ] );
    ]

let to_string o = Ljson.to_string (to_json o)

(* --- parse-back (round-trip tests, CI sanity) -------------------------- *)

let ( let* ) r f = Result.bind r f

let req what = function Some v -> Ok v | None -> Error ("sarif: missing " ^ what)

let finding_of_result j =
  let* rule = req "ruleId" Option.(Ljson.member "ruleId" j |> fold ~none:None ~some:Ljson.to_str) in
  let* level = req "level" Option.(Ljson.member "level" j |> fold ~none:None ~some:Ljson.to_str) in
  let* severity = req "level value" (severity_of_level level) in
  let* message =
    req "message.text"
      Option.(
        Ljson.member "message" j
        |> fold ~none:None ~some:(Ljson.member "text")
        |> fold ~none:None ~some:Ljson.to_str)
  in
  let* loc =
    req "locations[0]"
      (match Ljson.member "locations" j with
      | Some (Ljson.Arr (l :: _)) -> Some l
      | _ -> None)
  in
  let* phys = req "physicalLocation" (Ljson.member "physicalLocation" loc) in
  let* file =
    req "artifactLocation.uri"
      Option.(
        Ljson.member "artifactLocation" phys
        |> fold ~none:None ~some:(Ljson.member "uri")
        |> fold ~none:None ~some:Ljson.to_str)
  in
  let line, col =
    match Ljson.member "region" phys with
    | Some region ->
        let get k =
          Option.(Ljson.member k region |> fold ~none:None ~some:Ljson.to_int)
        in
        ( Option.value ~default:0 (get "startLine"),
          Option.value ~default:1 (get "startColumn") - 1 )
    | None -> (0, 0)
  in
  Ok (Finding.make ~rule ~severity ~file ~line ~col message)

let is_suppressed j =
  match Ljson.member "suppressions" j with
  | Some (Ljson.Arr (_ :: _)) -> true
  | _ -> false

let findings_of_json j =
  let* results =
    req "runs[0].results"
      (match Ljson.member "runs" j with
      | Some (Ljson.Arr (run :: _)) -> (
          match Ljson.member "results" run with
          | Some (Ljson.Arr rs) -> Some rs
          | _ -> None)
      | _ -> None)
  in
  List.fold_left
    (fun acc r ->
      let* acc = acc in
      if is_suppressed r then Ok acc
      else
        let* f = finding_of_result r in
        Ok (f :: acc))
    (Ok []) results
  |> Result.map List.rev
