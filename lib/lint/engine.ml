(* Drives the rule set over sources: parse with the compiler's own parser
   (compiler-libs — no new dependency, no grammar drift), apply the rules,
   then fold in the allowlist and an optional baseline.

   Everything is deterministic: directory walks sort entries, findings
   sort by location, and no wall clock is read here — expiry "today" is an
   input, supplied by the executables (bin/ is outside the R2 scope). *)

let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  let parse_error (e : exn) =
    let loc, msg =
      match Location.error_of_exn e with
      | Some (`Ok err) ->
          let msg =
            Format.asprintf "%a" Location.print_report err
            |> String.split_on_char '\n'
            |> List.map String.trim
            |> List.filter (fun s -> not (String.equal s ""))
            |> String.concat " "
          in
          (err.Location.main.Location.loc, msg)
      | _ -> (Location.curr lexbuf, Printexc.to_string e)
    in
    [
      Finding.of_location ~rule:"parse-error" ~severity:Finding.Error
        ~file:path loc msg;
    ]
  in
  let findings =
    if Filename.check_suffix path ".mli" then
      match Parse.interface lexbuf with
      | signature -> Rules.check_signature ~path signature
      | exception e -> parse_error e
    else
      match Parse.implementation lexbuf with
      | structure -> Rules.check_structure ~path structure
      | exception e -> parse_error e
  in
  List.sort Finding.compare findings

(* --- file discovery --------------------------------------------------- *)

let skip_dir name =
  String.equal name "_build"
  || String.equal name "_opam"
  || (String.length name > 0 && Char.equal name.[0] '.')

let scan_dirs dirs =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          if not (skip_dir name) then walk (Filename.concat path name))
        entries
    end
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then acc := path :: !acc
  in
  List.iter
    (fun dir -> if Sys.file_exists dir then walk dir)
    dirs;
  (* sort_uniq: overlapping dirs ("lib lib/serve") must not double-count
     files — duplicates would double findings and corrupt the baseline *)
  List.sort_uniq String.compare !acc

let read_file path = In_channel.with_open_bin path In_channel.input_all

let lint_paths paths =
  let per_file =
    List.concat_map (fun p -> lint_source ~path:p (read_file p)) paths
  in
  List.sort Finding.compare (Rules.missing_mli ~files:paths @ per_file)

(* --- interprocedural pass ---------------------------------------------- *)

(* The test file set for r13 lives beside the scanned dirs: for each
   scanned dir, its sibling "test" directory (so "lib" from the repo root
   finds "./test", and "../lib" from a test sandbox finds "../test").
   When none exists, r13 has no coverage evidence and stays silent. *)
let test_dirs_of dirs =
  List.sort_uniq String.compare
    (List.filter_map
       (fun dir ->
         let td = Filename.concat (Filename.dirname dir) "test" in
         if Sys.file_exists td && Sys.is_directory td then Some td else None)
       dirs)

let index_of_paths paths =
  Index.of_sources (List.map (fun p -> (p, read_file p)) paths)

let effects_of_paths ?extra_hot_roots paths =
  Effects.infer ?extra_hot_roots (index_of_paths paths)

let interprocedural_findings ?extra_hot_roots ~dirs paths =
  let index = index_of_paths paths in
  let effects = Effects.infer ?extra_hot_roots index in
  let r11 = Rules.hot_alloc effects in
  let r12 = Rules.transitive_partial effects in
  let r13 =
    match test_dirs_of dirs with
    | [] -> []
    | test_dirs ->
        let tests = index_of_paths (scan_dirs test_dirs) in
        Rules.comparator_coverage ~index ~tests
  in
  List.sort Finding.compare (r11 @ r12 @ r13)

let graph ?extra_hot_roots ~dirs () =
  Effects.to_json (effects_of_paths ?extra_hot_roots (scan_dirs dirs))

(* --- baseline ---------------------------------------------------------- *)

(* A baseline is a (rule, file) -> count ratchet, not a line-pinned list:
   robust to unrelated edits shifting line numbers, and monotone — new
   findings in a (rule, file) cell beyond the recorded count fail. *)

type baseline = (string * string, int) Hashtbl.t

let counts findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Finding.t) ->
      let key = (f.Finding.rule, f.Finding.file) in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    findings;
  tbl

let baseline_to_json findings =
  let tbl = counts findings in
  let cells =
    Hashtbl.fold (fun (rule, file) count acc -> (rule, file, count) :: acc) tbl []
    |> List.sort (fun (r1, f1, _) (r2, f2, _) ->
           let c = String.compare f1 f2 in
           if c <> 0 then c else String.compare r1 r2)
  in
  Ljson.Obj
    [
      ("schema", Ljson.Str "rbgp-lint-baseline/1");
      ( "cells",
        Ljson.Arr
          (List.map
             (fun (rule, file, count) ->
               Ljson.Obj
                 [
                   ("rule", Ljson.Str rule);
                   ("file", Ljson.Str file);
                   ("count", Ljson.Num (float_of_int count));
                 ])
             cells) );
    ]

let baseline_of_json json : (baseline, string) result =
  match Option.bind (Ljson.member "cells" json) Ljson.to_list with
  | None -> Error "baseline: missing \"cells\" array"
  | Some cells ->
      let tbl = Hashtbl.create 64 in
      let bad = ref None in
      List.iter
        (fun cell ->
          match
            ( Option.bind (Ljson.member "rule" cell) Ljson.to_str,
              Option.bind (Ljson.member "file" cell) Ljson.to_str,
              Option.bind (Ljson.member "count" cell) Ljson.to_int )
          with
          | Some rule, Some file, Some count ->
              Hashtbl.replace tbl (rule, Finding.normalize_path file) count
          | _ ->
              if Option.is_none !bad then
                bad := Some ("baseline: malformed cell " ^ Ljson.to_string cell))
        cells;
      (match !bad with Some msg -> Error msg | None -> Ok tbl)

let apply_baseline (baseline : baseline) findings =
  let budget = Hashtbl.copy baseline in
  let skipped = ref 0 in
  let live =
    List.filter
      (fun (f : Finding.t) ->
        let key = (f.Finding.rule, f.Finding.file) in
        match Hashtbl.find_opt budget key with
        | Some n when n > 0 ->
            Hashtbl.replace budget key (n - 1);
            incr skipped;
            false
        | _ -> true)
      findings
  in
  (live, !skipped)

(* --- top-level run ----------------------------------------------------- *)

type outcome = {
  files : int;
  live : Finding.t list;
  suppressed : (Finding.t * Allowlist.entry) list;
  expired : (Finding.t * Allowlist.entry) list;
  stale : Allowlist.entry list;
  baseline_skipped : int;
}

let errors outcome =
  List.length
    (List.filter
       (fun (f : Finding.t) ->
         match f.Finding.severity with
         | Finding.Error -> true
         | Finding.Warning -> false)
       outcome.live)

let run ?today ?(allowlist = []) ?baseline ?rules ?extra_hot_roots ~dirs () =
  let paths = scan_dirs dirs in
  let findings =
    List.sort Finding.compare
      (lint_paths paths
      @ interprocedural_findings ?extra_hot_roots ~dirs paths)
  in
  (* --rules filter: selected rules plus parse-error, which is always
     live (an unparseable file silently exempts itself from every rule).
     The allowlist narrows with it so un-selected rules' entries are not
     reported stale. *)
  let findings, allowlist =
    match rules with
    | None -> (findings, allowlist)
    | Some selected ->
        ( List.filter
            (fun (f : Finding.t) ->
              String.equal f.Finding.rule "parse-error"
              || List.mem f.Finding.rule selected)
            findings,
          List.filter
            (fun (e : Allowlist.entry) -> List.mem e.Allowlist.rule selected)
            allowlist )
  in
  let applied = Allowlist.apply ?today allowlist findings in
  let live, baseline_skipped =
    match baseline with
    | Some b -> apply_baseline b applied.Allowlist.live
    | None -> (applied.Allowlist.live, 0)
  in
  {
    files = List.length paths;
    live;
    suppressed = applied.Allowlist.suppressed;
    expired = applied.Allowlist.expired;
    stale = applied.Allowlist.stale;
    baseline_skipped;
  }
