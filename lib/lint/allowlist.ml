(* The checked-in allowlist: every suppression carries a written
   justification, and entries can expire.

   File format (line-oriented):

     # One or more comment lines immediately above an entry are its
     # justification.  An entry without a justification is a parse error —
     # the acceptance bar is "every allowlist entry carries a written
     # justification", enforced here rather than by review.
     rule-id path[:line] [expires=YYYY-MM-DD]

     (blank lines reset the pending justification, so file headers do not
      leak into the first entry)

   Matching is by rule id and normalized-path suffix, so the same file
   works from the repository root ("lib/util/pool.ml") and from the test
   sandbox ("../lib/util/pool.ml").  A file-level entry (no :line)
   suppresses every finding of that rule in the file — deliberate: line
   numbers churn, and the justification is about the file's design, not
   one occurrence.

   Expiry ([expires=YYYY-MM-DD], inclusive) makes temporary waivers
   honest: past the date the entry stops suppressing (the findings come
   back as errors) and the entry itself is reported. *)

type entry = {
  rule : string;
  path : string;
  line : int option;
  expires : (int * int * int) option;  (* (year, month, day) *)
  justification : string;
  source_line : int;  (* line in the allowlist file, for error messages *)
}

type t = entry list

let entry_id e =
  Printf.sprintf "%s %s%s" e.rule e.path
    (match e.line with Some l -> Printf.sprintf ":%d" l | None -> "")

let date_compare (y1, m1, d1) (y2, m2, d2) =
  let c = Int.compare y1 y2 in
  if c <> 0 then c
  else
    let c = Int.compare m1 m2 in
    if c <> 0 then c else Int.compare d1 d2

let parse_date s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some y, Some m, Some d when m >= 1 && m <= 12 && d >= 1 && d <= 31 ->
          Some (y, m, d)
      | _ -> None)
  | _ -> None

let is_expired ~today e =
  match (today, e.expires) with
  | Some today, Some expires -> date_compare today expires > 0
  | _ -> false

let parse source =
  let lines = String.split_on_char '\n' source in
  let entries = ref [] in
  let pending = ref [] in
  let error = ref None in
  let fail lineno msg =
    if Option.is_none !error then
      error := Some (Printf.sprintf "allowlist line %d: %s" lineno msg)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if String.equal line "" then pending := []
      else if String.length line > 0 && Char.equal line.[0] '#' then
        pending :=
          String.trim (String.sub line 1 (String.length line - 1)) :: !pending
      else
        match
          List.filter
            (fun s -> not (String.equal s ""))
            (String.split_on_char ' ' line)
        with
        | rule :: target :: rest ->
            let expires =
              List.fold_left
                (fun acc tok ->
                  match acc with
                  | Error _ -> acc
                  | Ok _ ->
                      if String.length tok > 8 && String.equal (String.sub tok 0 8) "expires=" then
                        match
                          parse_date (String.sub tok 8 (String.length tok - 8))
                        with
                        | Some d -> Ok (Some d)
                        | None -> Error (Printf.sprintf "bad date in %S" tok)
                      else Error (Printf.sprintf "unknown field %S" tok))
                (Ok None) rest
            in
            (match expires with
            | Error msg -> fail lineno msg
            | Ok expires -> (
                let path, line_opt =
                  match String.rindex_opt target ':' with
                  | Some j -> (
                      let p = String.sub target 0 j in
                      let l = String.sub target (j + 1) (String.length target - j - 1) in
                      match int_of_string_opt l with
                      | Some l -> (p, Some l)
                      | None -> (target, None))
                  | None -> (target, None)
                in
                let justification =
                  String.concat " " (List.rev !pending) |> String.trim
                in
                if String.equal justification "" then
                  fail lineno
                    (Printf.sprintf
                       "entry %S has no justification; add a '#' comment \
                        line above it explaining why the finding is safe"
                       line)
                else
                  entries :=
                    {
                      rule;
                      path = Finding.normalize_path path;
                      line = line_opt;
                      expires;
                      justification;
                      source_line = lineno;
                    }
                    :: !entries;
                pending := []))
        | _ -> fail lineno (Printf.sprintf "malformed entry %S" line))
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (List.rev !entries)

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | source -> parse source
  | exception Sys_error msg -> Error msg

(* Suffix match on normalized paths: "lib/util/pool.ml" matches findings
   from both "lib/util/pool.ml" and "../lib/util/pool.ml" (normalization
   strips the "../"), and an entry may also give a deeper-rooted path. *)
let path_matches ~entry_path ~file =
  String.equal entry_path file
  ||
  let le = String.length entry_path and lf = String.length file in
  lf > le + 1
  && Char.equal file.[lf - le - 1] '/'
  && String.equal (String.sub file (lf - le) le) entry_path

let matches e (f : Finding.t) =
  String.equal e.rule f.Finding.rule
  && path_matches ~entry_path:e.path ~file:f.Finding.file
  && match e.line with None -> true | Some l -> l = f.Finding.line

type applied = {
  live : Finding.t list;
  suppressed : (Finding.t * entry) list;
  expired : (Finding.t * entry) list;
  stale : entry list;
}

let apply ?today t findings =
  let used = Hashtbl.create 16 in
  let live = ref [] and suppressed = ref [] and expired = ref [] in
  List.iter
    (fun f ->
      match List.find_opt (fun e -> matches e f) t with
      | Some e when is_expired ~today e ->
          Hashtbl.replace used e.source_line ();
          expired := (f, e) :: !expired;
          live := f :: !live
      | Some e ->
          Hashtbl.replace used e.source_line ();
          suppressed := (f, e) :: !suppressed
      | None -> live := f :: !live)
    findings;
  let stale =
    List.filter (fun e -> not (Hashtbl.mem used e.source_line)) t
  in
  {
    live = List.rev !live;
    suppressed = List.rev !suppressed;
    expired = List.rev !expired;
    stale;
  }
