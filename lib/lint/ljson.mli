(** Minimal JSON tree with printer and parser.

    Just enough JSON for the linter's machine-readable reports and
    baselines — no opam dependency.  The parser accepts everything the
    printer emits (standard escapes; [\uXXXX] for ASCII only) and rejects
    trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Integral [Num] values print without
    a decimal point, so reports are stable under round-trips. *)

val parse : string -> (t, string) result
(** [Error msg] carries the byte offset of the first syntax error. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing key or non-object. *)

val to_list : t -> t list option
val to_str : t -> string option
val to_int : t -> int option
