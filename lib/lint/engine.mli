(** The linter driver: parse sources with the compiler's own parser
    (compiler-libs), run the rules, fold in the allowlist and an optional
    baseline.

    Deterministic by construction: directory walks sort entries, findings
    sort by location, and no wall clock is read in this library — the
    expiry date is an input supplied by the executables. *)

val lint_source : path:string -> string -> Finding.t list
(** Parse one [.ml]/[.mli] (selected by the [path] suffix) from a string
    and run every expression/structure rule.  Unparseable input yields a
    single [parse-error] finding.  Sorted by location. *)

val scan_dirs : string list -> string list
(** All [.ml]/[.mli] files under the given directories, sorted and
    deduplicated (overlapping directories such as ["lib lib/serve"] count
    each file once); skips [_build], [_opam] and dot-directories.
    Missing directories are ignored. *)

val lint_paths : string list -> Finding.t list
(** [lint_source] over each file plus the file-set rule (R6).  Per-file
    rules only — the interprocedural pass (r11–r13) runs in {!run}. *)

val test_dirs_of : string list -> string list
(** The sibling ["test"] directories of the scanned dirs that exist on
    disk — r13's coverage evidence.  Empty means r13 stays silent. *)

val interprocedural_findings :
  ?extra_hot_roots:string list ->
  dirs:string list ->
  string list ->
  Finding.t list
(** The r11/r12/r13 pass: index the given files, infer effects, and
    cross-check comparator coverage against {!test_dirs_of}[ dirs].
    Sorted. *)

val graph :
  ?extra_hot_roots:string list -> dirs:string list -> unit -> Ljson.t
(** The call-graph/effect dump ([--graph-out]): schema
    ["rbgp-lint-graph/1"], a pure function of the sources on disk. *)

type baseline
(** A (rule, file) -> count ratchet: robust to line churn, monotone —
    only findings beyond the recorded count fail. *)

val baseline_to_json : Finding.t list -> Ljson.t
(** Schema ["rbgp-lint-baseline/1"]. *)

val baseline_of_json : Ljson.t -> (baseline, string) result

val apply_baseline : baseline -> Finding.t list -> Finding.t list * int
(** Remaining findings and the number suppressed by the ratchet. *)

type outcome = {
  files : int;
  live : Finding.t list;  (** unsuppressed findings — these fail the run *)
  suppressed : (Finding.t * Allowlist.entry) list;
  expired : (Finding.t * Allowlist.entry) list;
  stale : Allowlist.entry list;
  baseline_skipped : int;
}

val errors : outcome -> int
(** Count of error-severity live findings; nonzero means exit 1. *)

val run :
  ?today:(int * int * int) ->
  ?allowlist:Allowlist.t ->
  ?baseline:baseline ->
  ?rules:string list ->
  ?extra_hot_roots:string list ->
  dirs:string list ->
  unit ->
  outcome
(** [rules] restricts the run to the named rule ids ([parse-error] stays
    live regardless — an unparseable file must not exempt itself); the
    allowlist narrows with it so entries for unselected rules are not
    reported stale.  [extra_hot_roots] adds display names ("Mod.name")
    to r11's built-in hot-root set. *)
