(* The shared Cmdliner term behind both entry points: the standalone
   rbgp-lint executable and the `rbgp lint` subcommand.  The term returns
   the process exit code (0 clean, 1 findings, 2 configuration error);
   callers decide how to exit.  "today" is an input so this library never
   reads the clock (rule R2 patrols all of lib/, this directory included). *)

open Cmdliner

let default_allowlist = "lint/allowlist.txt"

let dirs_arg =
  Arg.(
    value
    & pos_all string [ "lib"; "bin"; "bench" ]
    & info [] ~docv:"DIR"
        ~doc:"Directories to scan for .ml/.mli files (default: lib bin bench).")

let allowlist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "allowlist" ] ~docv:"FILE"
        ~doc:
          (Printf.sprintf
             "Allowlist file (default: $(b,%s) when it exists).  Every \
              entry must carry a '#' justification comment."
             default_allowlist))

let no_allowlist_arg =
  Arg.(
    value & flag
    & info [ "no-allowlist" ] ~doc:"Ignore the allowlist entirely.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print the JSON report to stdout instead of text.")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE"
        ~doc:"Also write the JSON report to FILE (the CI artifact).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Fail only on findings beyond the per-(rule, file) counts \
           recorded in FILE — a ratchet for adopting new rules.")

let write_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:"Record the current findings as a baseline and exit 0.")

let rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"LIST"
        ~doc:
          "Comma-separated rule ids to run (e.g. $(b,r11-hot-alloc,r13-\\
           comparator-coverage)); other rules are skipped and their \
           allowlist entries are not reported stale.  parse-error always \
           runs.")

let list_rules_arg =
  Arg.(
    value & flag & info [ "list-rules" ] ~doc:"List the rule set and exit.")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"RULE"
        ~doc:"Print the long-form rationale for RULE and exit.")

let graph_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph-out" ] ~docv:"FILE"
        ~doc:
          "Write the call-graph/effect dump (schema rbgp-lint-graph/1) to \
           FILE — the debugging view behind r11/r12.")

let sarif_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sarif-out" ] ~docv:"FILE"
        ~doc:
          "Also write a SARIF 2.1.0 report to FILE (the CI code-scanning \
           artifact; suppressed findings carry their allowlist \
           justification).")

let hot_root_arg =
  Arg.(
    value & opt_all string []
    & info [ "hot-root" ] ~docv:"MOD.NAME"
        ~doc:
          "Add a hot root for r11 by display name (repeatable), on top of \
           the built-in set (Engine.ingest*, Dynamic_alg.serve_batch, \
           Binc.decode_varints*, Pool.map ~family submitters).")

let today_arg =
  let date =
    let parse s =
      match Allowlist.parse_date s with
      | Some d -> Ok d
      | None -> Error (`Msg (Printf.sprintf "expected YYYY-MM-DD, got %S" s))
    in
    let print ppf (y, m, d) = Format.fprintf ppf "%04d-%02d-%02d" y m d in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some date) None
    & info [ "today" ] ~docv:"YYYY-MM-DD"
        ~doc:
          "Override the date used for allowlist expiry (for reproducible \
           runs; defaults to the system date).")

let print_rules () =
  List.iter
    (fun (id, desc) -> Printf.printf "%-24s %s\n" id desc)
    Rules.descriptions

(* A selector is either a full rule id (r11-hot-alloc) or its bare
   numeric prefix (r11); the prefix form only matches up to the next
   '-' so r1 never selects r11. *)
let resolve_rule sel =
  if List.mem_assoc sel Rules.descriptions then Some sel
  else
    List.find_map
      (fun (id, _) ->
        let lp = String.length sel in
        if
          String.length id > lp
          && String.equal (String.sub id 0 lp) sel
          && Char.equal id.[lp] '-'
        then Some id
        else None)
      Rules.descriptions

let parse_rules_filter = function
  | None -> Ok None
  | Some spec -> (
      let sels =
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun s -> not (String.equal s ""))
      in
      let resolved = List.map (fun s -> (s, resolve_rule s)) sels in
      let bad =
        List.filter_map
          (fun (s, r) -> match r with None -> Some s | Some _ -> None)
          resolved
      in
      match (sels, bad) with
      | [], _ -> Error "--rules: empty rule list"
      | _, [] ->
          Ok (Some (List.filter_map (fun (_, r) -> r) resolved))
      | _, bad ->
          Error
            (Printf.sprintf "--rules: unknown rule id(s) %s (see --list-rules)"
               (String.concat ", " bad)))

let ( let* ) r f = match r with Ok v -> f v | Error msg -> Error msg

let load_allowlist ~no_allowlist ~allowlist_path =
  if no_allowlist then Ok []
  else
    match allowlist_path with
    | Some path -> Allowlist.load ~path
    | None ->
        if Sys.file_exists default_allowlist then
          Allowlist.load ~path:default_allowlist
        else Ok []

let load_baseline = function
  | None -> Ok None
  | Some path -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | source ->
          let* json =
            Result.map_error (fun m -> path ^ ": " ^ m) (Ljson.parse source)
          in
          let* b =
            Result.map_error
              (fun m -> path ^ ": " ^ m)
              (Engine.baseline_of_json json)
          in
          Ok (Some b)
      | exception Sys_error msg -> Error msg)

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents;
      Out_channel.output_char oc '\n')

let lint ~today ~dirs ~allowlist ~baseline ~rules ~hot_roots ~json ~json_out
    ~sarif_out ~graph_out ~write_baseline =
  let extra_hot_roots = hot_roots in
  match write_baseline with
  | Some path ->
      let outcome = Engine.run ~today ~allowlist ?rules ~extra_hot_roots ~dirs () in
      write_file path
        (Ljson.to_string (Engine.baseline_to_json outcome.Engine.live));
      Printf.printf "wrote baseline of %d findings to %s\n"
        (List.length outcome.Engine.live)
        path;
      0
  | None ->
      let outcome =
        Engine.run ~today ~allowlist ?baseline ?rules ~extra_hot_roots ~dirs ()
      in
      Option.iter
        (fun path -> write_file path (Reporter.to_json_string outcome))
        json_out;
      Option.iter
        (fun path -> write_file path (Sarif.to_string outcome))
        sarif_out;
      Option.iter
        (fun path ->
          write_file path
            (Ljson.to_string (Engine.graph ~extra_hot_roots ~dirs ())))
        graph_out;
      if json then print_endline (Reporter.to_json_string outcome)
      else print_string (Reporter.to_text outcome);
      if Engine.errors outcome > 0 then 1 else 0

let run ~today dirs allowlist_path no_allowlist json json_out sarif_out
    graph_out baseline_path write_baseline rules_spec list_rules explain
    hot_roots today_override =
  if list_rules then begin
    print_rules ();
    0
  end
  else
    match explain with
    | Some rule -> (
        match Rules.explain rule with
        | Some text ->
            print_endline text;
            0
        | None ->
            prerr_endline
              ("rbgp-lint: unknown rule " ^ rule ^ " (see --list-rules)");
            2)
    | None -> (
        let today = match today_override with Some d -> d | None -> today in
        let config =
          let* allowlist = load_allowlist ~no_allowlist ~allowlist_path in
          let* baseline = load_baseline baseline_path in
          let* rules = parse_rules_filter rules_spec in
          Ok (allowlist, baseline, rules)
        in
        match config with
        | Error msg ->
            prerr_endline ("rbgp-lint: " ^ msg);
            2
        | Ok (allowlist, baseline, rules) ->
            lint ~today ~dirs ~allowlist ~baseline ~rules ~hot_roots ~json
              ~json_out ~sarif_out ~graph_out ~write_baseline)

let term ~today =
  Term.(
    const (run ~today)
    $ dirs_arg $ allowlist_arg $ no_allowlist_arg $ json_arg $ json_out_arg
    $ sarif_out_arg $ graph_out_arg $ baseline_arg $ write_baseline_arg
    $ rules_arg $ list_rules_arg $ explain_arg $ hot_root_arg $ today_arg)

let doc =
  "Repo-specific static analysis: determinism, domain-safety and hot-path \
   hygiene over lib/, bin/ and bench/"
