(** The checked-in suppression file — every entry justified, expirable.

    Format (line-oriented):
    {v
    # Comment lines immediately above an entry are its justification.
    # An entry with no justification is a PARSE ERROR, enforcing the
    # "every allowlist entry carries a written justification" bar.
    rule-id path[:line] [expires=YYYY-MM-DD]
    v}
    Blank lines reset the pending justification (file headers do not leak
    into the first entry).  A file-level entry (no [:line]) suppresses
    every finding of that rule in that file. *)

type entry = {
  rule : string;
  path : string;  (** normalized; matched as a path suffix of the finding *)
  line : int option;
  expires : (int * int * int) option;  (** inclusive (year, month, day) *)
  justification : string;
  source_line : int;  (** line in the allowlist file, for diagnostics *)
}

type t = entry list

val entry_id : entry -> string
(** ["rule path[:line]"] — how reporters name an entry. *)

val parse_date : string -> (int * int * int) option
(** ["YYYY-MM-DD"] with basic range checks. *)

val parse : string -> (t, string) result
(** First malformed or unjustified entry wins the error. *)

val load : path:string -> (t, string) result

val matches : entry -> Finding.t -> bool
(** Rule equality + normalized-path suffix match + optional line match. *)

val is_expired : today:(int * int * int) option -> entry -> bool
(** False when [today] is [None] (expiry not enforced, e.g. in replay). *)

type applied = {
  live : Finding.t list;  (** not suppressed — these fail the run *)
  suppressed : (Finding.t * entry) list;
  expired : (Finding.t * entry) list;
      (** matched an expired entry: also present in [live] *)
  stale : entry list;  (** matched nothing — candidates for deletion *)
}

val apply : ?today:(int * int * int) -> t -> Finding.t list -> applied
(** First matching entry wins.  An expired entry no longer suppresses: its
    findings return to [live] and the pairing is reported in [expired]. *)
