(** Text and JSON rendering of a lint outcome.

    Text: one compiler-style [file:line:col] line per live finding,
    expired/stale allowlist notices, then a one-line summary.

    JSON (schema ["rbgp-lint/1"]): the CI artifact.  Round-trippable —
    {!findings_of_json} reconstructs the live findings exactly. *)

val summary_line : Engine.outcome -> string
val to_text : Engine.outcome -> string

val to_json : Engine.outcome -> Ljson.t
val to_json_string : Engine.outcome -> string

val findings_of_json : Ljson.t -> (Finding.t list, string) result
(** Inverse of the ["findings"] array of {!to_json}. *)
