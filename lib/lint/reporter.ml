(* Text and JSON rendering of a lint outcome.

   The text form is the human default: one compiler-style line per
   finding plus a summary.  The JSON form (schema rbgp-lint/1) is the CI
   artifact and the round-trippable source of truth — Finding.of_json
   reconstructs every finding from it. *)

let finding_lines outcome =
  List.map Finding.to_text outcome.Engine.live

let summary_line outcome =
  let errors = Engine.errors outcome in
  let warnings = List.length outcome.Engine.live - errors in
  Printf.sprintf
    "%d file%s scanned: %d error%s, %d warning%s, %d suppressed by \
     allowlist, %d by baseline%s%s"
    outcome.Engine.files
    (if outcome.Engine.files = 1 then "" else "s")
    errors
    (if errors = 1 then "" else "s")
    warnings
    (if warnings = 1 then "" else "s")
    (List.length outcome.Engine.suppressed)
    outcome.Engine.baseline_skipped
    (match outcome.Engine.expired with
    | [] -> ""
    | l -> Printf.sprintf ", %d under EXPIRED allowlist entries" (List.length l))
    (match outcome.Engine.stale with
    | [] -> ""
    | l -> Printf.sprintf ", %d stale allowlist entries" (List.length l))

let to_text outcome =
  let b = Buffer.create 1024 in
  List.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    (finding_lines outcome);
  List.iter
    (fun (f, e) ->
      Buffer.add_string b
        (Printf.sprintf
           "%s: allowlist entry [%s] EXPIRED %s — finding is live again\n"
           (Finding.to_text f) (Allowlist.entry_id e)
           (match e.Allowlist.expires with
           | Some (y, m, d) -> Printf.sprintf "%04d-%02d-%02d" y m d
           | None -> ""))
    )
    outcome.Engine.expired;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           "stale allowlist entry [%s] (line %d) matches no finding — \
            delete it\n"
           (Allowlist.entry_id e) e.Allowlist.source_line))
    outcome.Engine.stale;
  Buffer.add_string b (summary_line outcome);
  Buffer.add_char b '\n';
  Buffer.contents b

let entry_json (e : Allowlist.entry) =
  Ljson.Obj
    [
      ("entry", Ljson.Str (Allowlist.entry_id e));
      ("justification", Ljson.Str e.Allowlist.justification);
      ( "expires",
        match e.Allowlist.expires with
        | Some (y, m, d) ->
            Ljson.Str (Printf.sprintf "%04d-%02d-%02d" y m d)
        | None -> Ljson.Null );
    ]

let to_json outcome =
  let errors = Engine.errors outcome in
  Ljson.Obj
    [
      ("schema", Ljson.Str "rbgp-lint/1");
      ("files_scanned", Ljson.Num (float_of_int outcome.Engine.files));
      ("findings", Ljson.Arr (List.map Finding.to_json outcome.Engine.live));
      ( "suppressed",
        Ljson.Arr
          (List.map
             (fun (f, e) ->
               match Finding.to_json f with
               | Ljson.Obj fields ->
                   Ljson.Obj
                     (fields @ [ ("allowlist", entry_json e) ])
               | other -> other)
             outcome.Engine.suppressed) );
      ( "expired",
        Ljson.Arr
          (List.map (fun (_, e) -> entry_json e) outcome.Engine.expired) );
      ("stale_allowlist", Ljson.Arr (List.map entry_json outcome.Engine.stale));
      ( "summary",
        Ljson.Obj
          [
            ("errors", Ljson.Num (float_of_int errors));
            ( "warnings",
              Ljson.Num
                (float_of_int (List.length outcome.Engine.live - errors)) );
            ( "suppressed",
              Ljson.Num (float_of_int (List.length outcome.Engine.suppressed))
            );
            ( "baseline_skipped",
              Ljson.Num (float_of_int outcome.Engine.baseline_skipped) );
            ("stale", Ljson.Num (float_of_int (List.length outcome.Engine.stale)));
          ] );
    ]

let to_json_string outcome = Ljson.to_string (to_json outcome)

let findings_of_json json =
  match Option.bind (Ljson.member "findings" json) Ljson.to_list with
  | None -> Error "report: missing \"findings\" array"
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match Finding.of_json item with
            | Some f -> go (f :: acc) rest
            | None -> Error ("report: malformed finding " ^ Ljson.to_string item))
      in
      go [] items
