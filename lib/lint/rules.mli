(** The repo-specific rule set, implemented over the compiler's Parsetree.

    Rules are purely syntactic (no typing pass): fast, dependency-free,
    and deterministic.  Heuristic misses are routed through the allowlist
    with written justifications — see DESIGN.md "Static analysis".

    - [r1-poly-compare] — generic [compare]/[Hashtbl.hash] anywhere;
      first-class [=]/[<]/[min]/[max] and structural literals under [(=)]
      in the hot-path libraries (lib/mts, lib/ring, lib/serve, lib/util).
    - [r2-nondeterminism] — [Random.self_init], [Unix.gettimeofday],
      [Unix.time], [Sys.time], [Domain.self] anywhere in lib/.
    - [r3-partial] — [List.hd], [List.tl], [Option.get], unsafe indexing.
    - [r4-global-mutable] — module-level [ref]/[Hashtbl.create]/
      [Array.make]/[Atomic.make]/... in lib/ (shared across pool domains).
    - [r5-catchall-exn] — [try ... with _ ->] and [exception _ ->] cases.
    - [r6-missing-mli] — lib/ modules without an interface file.
    - [r7-domain-safety] — [Domain.*] API use or pool job submission
      ([...Pool.*]) in lib/ modules not on the audited Domain-safety
      allowlist.
    - [r8-hot-io] — per-byte channel reads ([input_byte]/[input_char])
      and closures allocated inside [while]/[for] bodies in the audited
      hot-IO modules (lib/serve, lib/ring/trace.ml, lib/util/binc.ml);
      the channel fallback for pipes is allowlisted with its
      justification.
    - [r9-durability] — bare [open_out*] in the durability-audited
      modules (lib/serve, the trace writers, lib/util/durable.ml itself),
      where persistent state must route through [Durable.atomic_write];
      and catch-all exception handlers around [Fault.*]/[Durable.*] call
      sites in lib/, which would swallow [Injected_crash] and blind the
      crash-recovery tests.  Founding exceptions (the atomic-write
      helper, the deliberate tear path, the regenerable trace writers)
      are allowlisted with their justifications.
    - [r10-net-safety] — raw [Unix.read]/[Unix.write] and unbounded
      [really_input] outside the audited [Sockio] wrappers in the
      networked serving modules.
    - [r11-hot-alloc] — interprocedural: allocation sites transitively
      reachable from the audited hot roots (Engine.ingest*,
      Dynamic_alg.serve_batch, Binc.decode_varints, and every
      [Pool.map ~family] submitter), via the [Effects] fixpoint.
    - [r12-transitive-partial] — interprocedural: partiality reachable
      from the serve/net request path with no intervening handler.
    - [r13-comparator-coverage] — comparator-shaped values exposed from
      lib interfaces but never referenced by the test suite. *)

type scope = { area : [ `Lib | `Bin | `Bench | `Other ]; sublib : string option }

val scope_of_path : string -> scope
(** Classifies a (possibly relative) path by its first [lib]/[bin]/[bench]
    segment; [sublib] is the library directory under [lib]. *)

val is_hot : scope -> bool
(** True for the hot-path libraries patrolled by the strict R1 checks. *)

val is_lib : scope -> bool

val check_structure : path:string -> Parsetree.structure -> Finding.t list
(** All expression-level rules (R1, R2, R3, R5, R7, R8, R9) plus the
    top-level mutable-state rule (R4) over one implementation file. *)

val check_signature : path:string -> Parsetree.signature -> Finding.t list
(** Interface files: no expression rules apply today; hook for future
    signature rules. *)

val missing_mli : files:string list -> Finding.t list
(** R6 over a file set: one finding per [lib/**/*.ml] whose [.mli] is not
    in the set.  Pure — testable on synthetic lists. *)

val hot_alloc : Effects.t -> Finding.t list
(** R11 over the inferred effect graph: one finding per direct
    allocation site inside any function transitively reachable from a
    hot root. *)

val transitive_partial : Effects.t -> Finding.t list
(** R12: unhandled partiality sites reachable from the serve/net roots
    without crossing an exception handler. *)

val comparator_coverage : index:Index.t -> tests:Index.t -> Finding.t list
(** R13: comparator-shaped values ([compare]/[equal]/[hash] exact or as
    a [_]-separated segment) exposed in lib interfaces of [index] but
    never referenced by [tests]. *)

val is_comparator_name : string -> bool

val descriptions : (string * string) list
(** [(rule id, one-line description)] for [--list-rules] and the
    reporters. *)

val explain : string -> string option
(** Long-form text for [--explain RULE]: the one-line description, plus
    an extended rationale for the interprocedural rules. *)
