(** A structured lint finding: rule id, severity, location, message.

    File paths are normalized at construction (leading ["./"]/["../"]
    segments stripped) so findings produced from the repository root and
    from a test sandbox compare, suppress and baseline identically. *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;  (** normalized, '/'-separated *)
  line : int;  (** 1-based; [0] = whole-file finding *)
  col : int;  (** 0-based (compiler convention); [0] for whole-file *)
  message : string;
}

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val normalize_path : string -> string
(** Rewrites ['\\'] to ['/'] and strips leading ["."], [".."] and empty
    segments. *)

val make :
  rule:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val of_location :
  rule:string -> severity:severity -> file:string -> Location.t -> string -> t
(** Anchors the finding at the location's start position. *)

val compare_severity : severity -> severity -> int
(** Errors sort before warnings. *)

val compare : t -> t -> int
(** Orders by (file, line, col, rule, message) — the report order. *)

val equal : t -> t -> bool

val to_text : t -> string
(** [file:line:col: [rule] severity: message] — clickable in editors. *)

val to_json : t -> Ljson.t
val of_json : Ljson.t -> t option
