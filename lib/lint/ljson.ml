(* Minimal JSON tree, printer and parser.

   The linter must emit and re-read machine-readable reports (CI artifacts,
   baselines) without adding an opam dependency, so this implements just
   the JSON subset the reporter produces: objects, arrays, strings with
   standard escapes, numbers, booleans and null.  \uXXXX escapes decode
   for ASCII code points only — the reporter never emits anything else. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else Buffer.add_string b (Printf.sprintf "%.17g" v)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v -> add_num b v
  | Str s -> escape_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* --- parsing --------------------------------------------------------- *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
            | 'n' ->
                Buffer.add_char b '\n';
                go ()
            | 'r' ->
                Buffer.add_char b '\r';
                go ()
            | 't' ->
                Buffer.add_char b '\t';
                go ()
            | 'b' ->
                Buffer.add_char b '\b';
                go ()
            | 'f' ->
                Buffer.add_char b '\012';
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> v
                  | None -> fail "bad \\u escape"
                in
                if code > 0x7f then fail "non-ASCII \\u escape unsupported";
                Buffer.add_char b (Char.chr code);
                go ()
            | _ -> fail "unknown escape")
        | c ->
            Buffer.add_char b c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> (
      match List.find_opt (fun (k, _) -> String.equal k key) fields with
      | Some (_, v) -> Some v
      | None -> None)
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_str = function Str s -> Some s | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None
