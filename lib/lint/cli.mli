(** The shared Cmdliner term behind both entry points — the standalone
    [rbgp-lint] executable and the [rbgp lint] subcommand.

    The term evaluates to the process exit code: 0 clean, 1 live
    error-severity findings, 2 configuration error (bad allowlist or
    baseline).  [today] feeds allowlist expiry and is supplied by the
    executable (this library never reads the clock — rule R2 patrols all
    of lib/, this directory included); the [--today] flag overrides it. *)

val default_allowlist : string
(** ["lint/allowlist.txt"], used when it exists and no [--allowlist] was
    given. *)

val parse_rules_filter : string option -> (string list option, string) result
(** Parses a [--rules] spec: comma-separated full rule ids
    ([r11-hot-alloc]) or bare numeric prefixes ([r11]), resolved against
    {!Rules.descriptions}; [None] means all rules.  Exposed for tests. *)

val term : today:(int * int * int) -> int Cmdliner.Term.t

val doc : string
(** One-line command description shared by both entry points. *)
