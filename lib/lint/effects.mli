(** Interprocedural effect inference: a fixpoint over the cross-module
    index computing a four-bit lattice per value definition, plus the
    hot-root / serve-root reachability the interprocedural rules
    (r11-hot-alloc, r12-transitive-partial) query.

    Optimistic on unknowns (unresolved externals outside the intrinsic
    table contribute nothing), pessimistic on collisions (a name defined
    by several modules unions every candidate's effects).  Deterministic
    and pure: sorted iteration, no clock — [to_json] is a function of the
    sources alone, pinned by a byte-identity test. *)

type eff = {
  alloc : bool;  (** heap-allocates per call *)
  partial : bool;  (** may raise from an unnamed partiality idiom *)
  nondet : bool;  (** reads clock / RNG / [Domain.self] *)
  blocking : bool;  (** blocking syscall or channel operation *)
}

val eff_bot : eff
val eff_union : eff -> eff -> eff
val eff_equal : eff -> eff -> bool

val intrinsic : string list -> (eff * string) option
(** Effect of a stdlib/Unix value by dotted path, with the human label
    used in finding messages; [None] for unknown externals. *)

type direct = {
  d_eff : eff;
  d_what : string;
  d_line : int;
  d_col : int;
  d_handled : bool;
}
(** A direct effect site in a body: a syntactic allocation, or a call to
    an intrinsic. *)

type edge = { to_id : string; e_line : int; e_handled : bool }

type info = {
  node : Index.node;
  direct : direct list;  (** sorted by location *)
  edges : edge list;  (** resolved calls, deduplicated and sorted *)
  mutable eff : eff;  (** the inferred fixpoint *)
}

type t

val infer : ?extra_hot_roots:string list -> Index.t -> t
(** Build call edges, run the fixpoint, compute root reachability.
    [extra_hot_roots] adds display names ("Mod.name") to the built-in
    hot-root specs ([Engine.ingest*], [Dynamic_alg.serve_batch],
    [Binc.decode_varints*], every [Pool.map ~family] submitter). *)

val effect_of : t -> string -> eff
(** By node id; [eff_bot] for unknown ids. *)

val info : t -> string -> info option

val node_ids : t -> string list
(** Sorted. *)

val hot_roots : t -> string list
(** Sorted node ids. *)

val serve_roots : t -> string list

val hot_reach : t -> string -> string option
(** [Some root_display] when the node is transitively reachable from a
    hot root (handled edges crossed — allocation escapes handlers). *)

val serve_reach : t -> string -> string option
(** Reachability from the serve/net request path, *not* crossing handled
    edges: a handler on the path is the interposition r12 asks for. *)

val direct_sites : t -> string -> direct list

val to_json : t -> Ljson.t
(** Schema ["rbgp-lint-graph/1"]: roots plus one record per node with
    its effects, direct sites, resolved calls and reachability. *)
