(** SARIF 2.1.0 rendering of a lint outcome — the CI code-scanning
    artifact.

    Live findings become results at their severity's level; suppressed
    findings are emitted with a [suppressions] entry carrying the
    allowlist's written justification.  Whole-file findings (line 0)
    omit the region; columns convert between the 0-based compiler
    convention and SARIF's 1-based [startColumn]. *)

val to_json : Engine.outcome -> Ljson.t
val to_string : Engine.outcome -> string

val findings_of_json : Ljson.t -> (Finding.t list, string) result
(** The un-suppressed results of [runs\[0\]], as findings — inverse of
    {!to_json} on the live set (round-trip tested). *)
