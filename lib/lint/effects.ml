(* Interprocedural effect inference over the cross-module index: a
   fixpoint computing, per value definition, a four-bit lattice —

     allocates   the body (or anything it reaches) heap-allocates per
                 call: closures, tuples, records, array/list literals,
                 cons cells, or allocating stdlib ([@], [^],
                 [Array.append], [List.map], [Printf.sprintf], ...);
     partial     it can raise from an *unnamed* partiality idiom
                 ([List.hd], [Option.get], [Hashtbl.find],
                 [int_of_string], ...) with no intervening handler —
                 deliberate [failwith]/[invalid_arg] with a written
                 invariant message do not count;
     nondet      it reads a clock, the global RNG or [Domain.self];
     blocking    it performs a blocking syscall or channel operation.

   Effects are monotone under the call graph, so a worklist-free
   round-robin over the sorted node list converges in at most
   4 * |nodes| rounds (in practice a handful).  Calls through an edge
   sitting under an exception handler propagate everything *except*
   partiality — the handler is the "intervening named handler" that
   r12-transitive-partial asks for.  Constant bindings (top-level
   non-function, non-alias values) export nothing to their referencers:
   their body runs once at module initialization, not per call.

   Unresolved references fall back to the intrinsic table below;
   unknown externals contribute no effects (optimistic — this is a
   linter's ratchet, not a soundness proof, and the pessimistic choice
   would drown every finding in noise).

   Two root sets anchor the rules:
     - hot roots (r11): the bench-audited allocation-free entry points —
       [Engine.ingest*], [Dynamic_alg.serve_batch], the [Binc] block
       decoders, and every node that submits [Pool.map ~family] jobs;
     - serve roots (r12): the request path — [Engine.ingest*], the net
       tier's frame handlers and the tenant router's serve entries.

   Determinism: sorted iteration everywhere, no wall clock, and the
   graph dump is a pure function of the sources (pinned by a
   byte-identity test). *)

type eff = {
  alloc : bool;
  partial : bool;
  nondet : bool;
  blocking : bool;
}

let eff_bot = { alloc = false; partial = false; nondet = false; blocking = false }

let eff_union a b =
  {
    alloc = a.alloc || b.alloc;
    partial = a.partial || b.partial;
    nondet = a.nondet || b.nondet;
    blocking = a.blocking || b.blocking;
  }

let eff_equal a b =
  Bool.equal a.alloc b.alloc
  && Bool.equal a.partial b.partial
  && Bool.equal a.nondet b.nondet
  && Bool.equal a.blocking b.blocking

(* --- the intrinsic table ----------------------------------------------- *)

let e_alloc = { eff_bot with alloc = true }
let e_partial = { eff_bot with partial = true }
let e_nondet = { eff_bot with nondet = true }
let e_blocking = { eff_bot with blocking = true }

(* Effects of stdlib (and Unix) values the tree leans on.  The label is
   the human name used in finding messages. *)
let intrinsic path : (eff * string) option =
  match path with
  (* allocation *)
  | [ "@" ] | [ "List"; "append" ] -> Some (e_alloc, "list append (@)")
  | [ "^" ] -> Some (e_alloc, "string append (^)")
  | [ "ref" ] -> Some (e_alloc, "ref cell")
  | [ "Array";
      ( "append" | "make" | "create_float" | "init" | "make_matrix" | "copy"
      | "sub" | "concat" | "of_list" | "to_list" | "map" | "mapi" | "map2"
      | "split" | "combine" ) ] ->
      Some (e_alloc, "Array." ^ List.nth path 1)
  | [ "List";
      ( "map" | "mapi" | "map2" | "rev" | "rev_append" | "rev_map" | "init"
      | "filter" | "filteri" | "filter_map" | "concat" | "concat_map"
      | "flatten" | "sort" | "stable_sort" | "fast_sort" | "sort_uniq"
      | "merge" | "split" | "combine" | "of_seq" | "cons" ) ] ->
      Some (e_alloc, "List." ^ List.nth path 1)
  | [ "String";
      ( "make" | "init" | "sub" | "concat" | "cat" | "map" | "mapi" | "trim"
      | "escaped" | "uppercase_ascii" | "lowercase_ascii"
      | "capitalize_ascii" | "split_on_char" | "of_bytes" | "to_bytes" ) ] ->
      Some (e_alloc, "String." ^ List.nth path 1)
  | [ "Bytes";
      ( "create" | "make" | "init" | "copy" | "sub" | "extend" | "cat"
      | "concat" | "of_string" | "to_string" | "sub_string" ) ] ->
      Some (e_alloc, "Bytes." ^ List.nth path 1)
  | [ "Buffer"; ("create" | "contents" | "to_bytes" | "sub") ] ->
      Some (e_alloc, "Buffer." ^ List.nth path 1)
  | [ "Printf"; ("sprintf" | "ksprintf") ] ->
      Some (e_alloc, "Printf." ^ List.nth path 1)
  | [ "Format"; "asprintf" ] -> Some (e_alloc, "Format.asprintf")
  | [ "Hashtbl"; ("create" | "copy" | "to_seq" | "of_seq") ] ->
      Some (e_alloc, "Hashtbl." ^ List.nth path 1)
  | [ "Queue"; "create" ] | [ "Stack"; "create" ] ->
      Some (e_alloc, List.nth path 0 ^ ".create")
  | [ "Option"; ("map" | "some" | "bind" | "join") ] ->
      Some (e_alloc, "Option." ^ List.nth path 1)
  | [ "Result"; ("map" | "map_error" | "bind" | "ok" | "error") ] ->
      Some (e_alloc, "Result." ^ List.nth path 1)
  (* partiality — the *unnamed* idioms; [failwith]/[invalid_arg] carry a
     written invariant and are not counted *)
  | [ "List"; (("hd" | "tl" | "nth" | "find" | "assoc" | "assq") as f) ] ->
      Some (e_partial, "List." ^ f)
  | [ "Option"; "get" ] -> Some (e_partial, "Option.get")
  | [ "Hashtbl"; "find" ] -> Some (e_partial, "Hashtbl.find")
  | [ "Stack"; (("pop" | "top") as f) ] -> Some (e_partial, "Stack." ^ f)
  | [ "Queue"; (("pop" | "take" | "peek") as f) ] ->
      Some (e_partial, "Queue." ^ f)
  | [ ("int_of_string" | "float_of_string" | "bool_of_string") as f ] ->
      Some (e_partial, f)
  | [ "String"; (("index" | "rindex") as f) ] ->
      Some (e_partial, "String." ^ f)
  (* nondeterminism *)
  | [ "Unix"; (("gettimeofday" | "time") as f) ] ->
      Some (e_nondet, "Unix." ^ f)
  | [ "Sys"; "time" ] -> Some (e_nondet, "Sys.time")
  | [ "Domain"; "self" ] -> Some (e_nondet, "Domain.self")
  | [ "Random";
      (("self_init" | "int" | "full_int" | "float" | "bool" | "bits") as f) ]
    ->
      Some (e_nondet, "Random." ^ f)
  (* blocking syscalls / channel IO *)
  | [ "Unix";
      (( "read" | "write" | "single_write" | "select" | "accept" | "connect"
       | "recv" | "send" | "recvfrom" | "sendto" | "sleep" | "sleepf"
       | "openfile" | "fsync" | "waitpid" ) as f) ] ->
      Some (e_blocking, "Unix." ^ f)
  | [ (( "input_byte" | "input_char" | "input_line" | "input_value" | "input"
       | "really_input" | "really_input_string" | "output_string"
       | "output_bytes" | "output_byte" | "output_char" | "output_value"
       | "output" | "flush" | "print_string" | "print_endline"
       | "prerr_endline" | "read_line" ) as f) ] ->
      Some (e_blocking, f)
  | [ "In_channel"; f ] -> Some (e_blocking, "In_channel." ^ f)
  | [ "Out_channel"; f ] -> Some (e_blocking, "Out_channel." ^ f)
  | [ "Printf"; (("printf" | "eprintf" | "fprintf") as f) ] ->
      Some (e_blocking, "Printf." ^ f)
  | _ -> None

(* --- node info ---------------------------------------------------------- *)

(* A direct effect site, after intrinsic resolution: syntactic allocation
   sites plus intrinsic calls, each with its human label. *)
type direct = {
  d_eff : eff;
  d_what : string;
  d_line : int;
  d_col : int;
  d_handled : bool;
}

type edge = {
  to_id : string;
  e_line : int;
  e_handled : bool;
}

type info = {
  node : Index.node;
  direct : direct list;  (* source order *)
  edges : edge list;  (* deduplicated, sorted by (to_id, line) *)
  mutable eff : eff;
}

type t = {
  index : Index.t;
  infos : (string, info) Hashtbl.t;
  order : string list;  (* sorted node ids *)
  hot_roots : string list;  (* sorted ids *)
  serve_roots : string list;
  reach_hot : (string, string) Hashtbl.t;  (* id -> root display *)
  reach_serve : (string, string) Hashtbl.t;
}

(* --- roots -------------------------------------------------------------- *)

(* (module, value-name prefix): the audited hot entry points whose
   transitive callees must stay allocation-free (r11). *)
let hot_root_specs =
  [
    ("Engine", "ingest");  (* ingest / ingest_batch / ingest_batch_quiet *)
    ("Dynamic_alg", "serve_batch");  (* the interval-sharded solver path *)
    ("Binc", "decode_varints");  (* the block decoder *)
  ]

(* The serve/net request path whose reachable partiality r12 patrols. *)
let serve_root_specs =
  [
    ("Engine", "ingest");
    ("Net", "handle_");  (* handle_req / handle_frame *)
    ("Net", "dispatch_frames");
    ("Tenant", "serve");  (* serve / serve_quiet *)
  ]

let has_prefix s pre =
  let lp = String.length pre in
  String.length s >= lp && String.equal (String.sub s 0 lp) pre

let matches_spec specs (n : Index.node) =
  List.exists
    (fun (m, pre) -> String.equal n.Index.modname m && has_prefix n.Index.name pre)
    specs

(* --- inference ---------------------------------------------------------- *)

let build_info index (n : Index.node) =
  let direct = ref [] and edges = ref [] in
  List.iter
    (fun (s : Index.site) ->
      let d_eff, d_what =
        match s.Index.s_kind with
        | Index.Alloc what -> (e_alloc, what)
        | Index.Partial what -> (e_partial, what)
      in
      direct :=
        {
          d_eff;
          d_what;
          d_line = s.Index.s_line;
          d_col = s.Index.s_col;
          d_handled = s.Index.s_handled;
        }
        :: !direct)
    n.Index.sites;
  List.iter
    (fun (r : Index.reference) ->
      match Index.resolve index ~file:n.Index.file r.Index.r_path with
      | `Nodes ids ->
          List.iter
            (fun to_id ->
              if not (String.equal to_id n.Index.id) then
                edges :=
                  { to_id; e_line = r.Index.r_line; e_handled = r.Index.r_handled }
                  :: !edges)
            ids
      | `Extern path -> (
          match intrinsic path with
          | Some (d_eff, d_what) ->
              direct :=
                {
                  d_eff;
                  d_what;
                  d_line = r.Index.r_line;
                  d_col = r.Index.r_col;
                  d_handled = r.Index.r_handled;
                }
                :: !direct
          | None -> ()))
    n.Index.refs;
  let edges =
    List.sort_uniq
      (fun a b ->
        let c = String.compare a.to_id b.to_id in
        if c <> 0 then c
        else
          let c = Int.compare a.e_line b.e_line in
          if c <> 0 then c else Bool.compare a.e_handled b.e_handled)
      !edges
  in
  let direct =
    List.sort
      (fun a b ->
        let c = Int.compare a.d_line b.d_line in
        if c <> 0 then c else Int.compare a.d_col b.d_col)
      !direct
  in
  { node = n; direct; edges; eff = eff_bot }

(* A binding's exported effect: what a *call* to it performs.  Constant
   bindings run once at module init, so they export nothing; aliases
   forward their target's effects (captured via their edge). *)
let exports (i : info) =
  i.node.Index.is_function || i.node.Index.is_alias

let direct_eff (i : info) =
  List.fold_left
    (fun acc d ->
      (* a handled partial site cannot escape the enclosing handler *)
      let e =
        if d.d_handled then { d.d_eff with partial = false } else d.d_eff
      in
      eff_union acc e)
    eff_bot i.direct

let infer ?(extra_hot_roots = []) index =
  let infos = Hashtbl.create 512 in
  let order =
    List.map
      (fun (n : Index.node) ->
        Hashtbl.replace infos n.Index.id (build_info index n);
        n.Index.id)
      (Index.nodes index)
  in
  (* fixpoint: effects are monotone over a finite lattice *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        let i = Hashtbl.find infos id in
        let e =
          List.fold_left
            (fun acc (ed : edge) ->
              match Hashtbl.find_opt infos ed.to_id with
              | Some callee when exports callee ->
                  let ce =
                    if ed.e_handled then { callee.eff with partial = false }
                    else callee.eff
                  in
                  eff_union acc ce
              | _ -> acc)
            (direct_eff i) i.edges
        in
        if not (eff_equal e i.eff) then begin
          i.eff <- e;
          changed := true
        end)
      order
  done;
  let roots_of specs extra =
    List.filter
      (fun id ->
        let i = Hashtbl.find infos id in
        let n = i.node in
        matches_spec specs n || n.Index.pool_family
        || List.mem n.Index.display extra)
      order
  in
  let hot_roots = roots_of hot_root_specs extra_hot_roots in
  let serve_roots =
    List.filter
      (fun id ->
        let n = (Hashtbl.find infos id).node in
        matches_spec serve_root_specs n)
      order
  in
  (* BFS reachability recording the first root that reaches each node
     (deterministic: roots and adjacency are sorted).  Constant bindings
     are not entered: a call reads them, it does not re-run their
     initializer, so their sites and callees execute at module init and
     never per hot call.  The serve-path traversal additionally refuses
     handled edges — a handler on the path is exactly the interposition
     r12 asks for. *)
  let reach roots ~cross_handled =
    let tbl = Hashtbl.create 256 in
    let rec visit root id =
      if not (Hashtbl.mem tbl id) then
        match Hashtbl.find_opt infos id with
        | None -> ()
        | Some i when not (exports i) -> ()
        | Some i ->
            Hashtbl.replace tbl id root;
            List.iter
              (fun (ed : edge) ->
                if cross_handled || not ed.e_handled then visit root ed.to_id)
              i.edges
    in
    List.iter
      (fun root_id ->
        let display = (Hashtbl.find infos root_id).node.Index.display in
        visit display root_id)
      roots;
    tbl
  in
  {
    index;
    infos;
    order;
    hot_roots;
    serve_roots;
    reach_hot = reach hot_roots ~cross_handled:true;
    reach_serve = reach serve_roots ~cross_handled:false;
  }

(* --- queries ------------------------------------------------------------ *)

let effect_of t id =
  match Hashtbl.find_opt t.infos id with
  | Some i -> i.eff
  | None -> eff_bot

let info t id = Hashtbl.find_opt t.infos id
let node_ids t = t.order
let hot_roots t = t.hot_roots
let serve_roots t = t.serve_roots
let hot_reach t id = Hashtbl.find_opt t.reach_hot id
let serve_reach t id = Hashtbl.find_opt t.reach_serve id

let direct_sites t id =
  match Hashtbl.find_opt t.infos id with Some i -> i.direct | None -> []

(* --- the graph dump ----------------------------------------------------- *)

let eff_json e =
  Ljson.Obj
    [
      ("allocates", Ljson.Bool e.alloc);
      ("partial", Ljson.Bool e.partial);
      ("nondet", Ljson.Bool e.nondet);
      ("blocking", Ljson.Bool e.blocking);
    ]

let to_json t =
  let node_json id =
    let i = Hashtbl.find t.infos id in
    let n = i.node in
    Ljson.Obj
      [
        ("id", Ljson.Str n.Index.id);
        ("display", Ljson.Str n.Index.display);
        ("file", Ljson.Str n.Index.file);
        ("line", Ljson.Num (float_of_int n.Index.n_line));
        ("function", Ljson.Bool n.Index.is_function);
        ("effects", eff_json i.eff);
        ( "direct",
          Ljson.Arr
            (List.map
               (fun d ->
                 Ljson.Obj
                   [
                     ("what", Ljson.Str d.d_what);
                     ("effects", eff_json d.d_eff);
                     ("line", Ljson.Num (float_of_int d.d_line));
                     ("col", Ljson.Num (float_of_int d.d_col));
                     ("handled", Ljson.Bool d.d_handled);
                   ])
               i.direct) );
        ( "calls",
          Ljson.Arr
            (List.map
               (fun (ed : edge) ->
                 Ljson.Obj
                   [
                     ("to", Ljson.Str ed.to_id);
                     ("line", Ljson.Num (float_of_int ed.e_line));
                     ("handled", Ljson.Bool ed.e_handled);
                   ])
               i.edges) );
        ("hot_root", Ljson.Bool (List.mem id t.hot_roots));
        ("serve_root", Ljson.Bool (List.mem id t.serve_roots));
        ( "reachable_from_hot",
          match Hashtbl.find_opt t.reach_hot id with
          | Some root -> Ljson.Str root
          | None -> Ljson.Null );
        ( "reachable_from_serve",
          match Hashtbl.find_opt t.reach_serve id with
          | Some root -> Ljson.Str root
          | None -> Ljson.Null );
      ]
  in
  Ljson.Obj
    [
      ("schema", Ljson.Str "rbgp-lint-graph/1");
      ("hot_roots", Ljson.Arr (List.map (fun r -> Ljson.Str r) t.hot_roots));
      ( "serve_roots",
        Ljson.Arr (List.map (fun r -> Ljson.Str r) t.serve_roots) );
      ("nodes", Ljson.Arr (List.map node_json t.order));
    ]
