(* The cross-module value index: the syntactic substrate for the
   interprocedural effect analysis (effects.ml) and the index-level rules
   (r11-hot-alloc, r12-transitive-partial, r13-comparator-coverage).

   One pass over every parsed implementation collects, per top-level (or
   nested-module) value binding:

     - the *references* its body makes — applied heads and first-class
       uses alike, recorded as raw dotted paths for later resolution;
     - its *direct allocation sites* — closures built inside the body,
       tuples, records, array and list literals (a cons chain counts
       once, like the literal it spells);
     - whether a reference sits under an exception handler ([try]/
       [match ... with exception]), so partiality can be masked by an
       intervening named handler;
     - whether the body submits pool jobs with a [~family] label (those
       call sites are hot roots by definition — the pool only measures
       families on the bench-audited paths).

   Alongside the nodes the index keeps each file's module aliases
   ([module P = Rbgp_util.Pool]) and [open]s, the values each interface
   exposes (for the comparator-coverage rule), and resolution tables
   from (module, value) names to node ids.

   Resolution is deliberately syntactic and over-approximate: a name
   defined by two modules (the tree has two [Engine]s) resolves to every
   candidate, so effects union rather than drop.  First-class dispatch
   through record fields (the [Online] algorithm interface) is invisible
   here — the analysis is honest about that boundary, which is why the
   hot roots name both the engine entry points and the solver-side
   [serve_batch] explicitly.

   Everything is deterministic: nodes sort by id, tables are folded into
   sorted lists before anything escapes, and no wall clock is read. *)

type site_kind =
  | Alloc of string  (* what is allocated, for the finding message *)
  | Partial of string  (* which partial idiom *)

type site = {
  s_kind : site_kind;
  s_line : int;
  s_col : int;
  s_handled : bool;  (* under an exception handler *)
}

type reference = {
  r_path : string list;  (* alias-expanded dotted path, Stdlib stripped *)
  r_line : int;
  r_col : int;
  r_handled : bool;
}

type node = {
  id : string;  (* "<file>#<Mod[.Sub]>.<name>" — unique and sortable *)
  display : string;  (* "Mod.name" or "Mod.Sub.name" *)
  file : string;
  modname : string;  (* top-level module (capitalized basename) *)
  name : string;  (* value name *)
  n_line : int;
  is_function : bool;  (* binding peels at least one fun/function *)
  is_alias : bool;  (* non-function whose body is a bare ident *)
  pool_family : bool;  (* body contains a Pool.map/map_list ~family:... *)
  sites : site list;  (* in source order *)
  refs : reference list;  (* in source order *)
}

type exposed = {
  e_file : string;  (* the .mli path *)
  e_modname : string;
  e_name : string;
  e_line : int;
  e_col : int;
}

type t = {
  nodes : node list;  (* sorted by id *)
  exposed : exposed list;  (* sorted by (file, line) *)
  by_value : (string * string, string list) Hashtbl.t;
      (* (modname, value) -> node ids, sorted *)
  by_file_value : (string * string, string list) Hashtbl.t;
      (* (file, value) -> node ids, sorted *)
  by_id : (string, node) Hashtbl.t;
}

(* --- identifier utilities --------------------------------------------- *)

let rec flatten acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flatten (s :: acc) l
  | Longident.Lapply _ -> acc

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let module_basename path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* Library wrapper modules (dune's [Rbgp_util], [Rbgp_serve], ...) only
   namespace the per-file modules; drop them so [Rbgp_util.Pool.map] and
   a same-library [Pool.map] resolve identically. *)
let is_wrapper seg =
  String.length seg > 5 && String.equal (String.sub seg 0 5) "Rbgp_"

let rec strip_wrappers = function
  | seg :: (_ :: _ as rest) when is_wrapper seg -> strip_wrappers rest
  | p -> p

(* --- per-file syntactic walk ------------------------------------------ *)

type file_ctx = {
  path : string;
  modname : string;
  aliases : (string, string list) Hashtbl.t;  (* local name -> target path *)
  mutable collected : node list;  (* reverse source order *)
}

let expand_aliases ctx p =
  match p with
  | head :: rest -> (
      match Hashtbl.find_opt ctx.aliases head with
      | Some target -> target @ rest
      | None -> p)
  | [] -> p

let normalize_path_ident ctx lid =
  strip_wrappers (strip_stdlib (expand_aliases ctx (flatten [] lid)))

let is_pool_map = function
  | [ "Pool"; ("map" | "map_list") ] -> true
  | _ -> false

let has_family_label args =
  List.exists
    (fun (l, _) ->
      match l with
      | Asttypes.Labelled "family" | Asttypes.Optional "family" -> true
      | _ -> false)
    args

(* Collect the sites and references of one binding body.  [handled] is a
   depth counter: positive inside a [try] body or a [match] scrutinee
   whose cases include [exception] patterns.  Closures count one site
   each (the curried spine collapses, mirroring r8), and the leading
   parameters of the binding itself are not allocations. *)
let collect_body ctx expr0 =
  let sites = ref [] and refs = ref [] and pool_family = ref false in
  let handled = ref 0 in
  let loc_of (loc : Location.t) =
    let p = loc.Location.loc_start in
    (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
  in
  let add_site kind loc =
    let line, col = loc_of loc in
    sites :=
      { s_kind = kind; s_line = line; s_col = col; s_handled = !handled > 0 }
      :: !sites
  in
  let add_ref lid loc =
    let p = normalize_path_ident ctx lid in
    if p <> [] then begin
      let line, col = loc_of loc in
      refs :=
        { r_path = p; r_line = line; r_col = col; r_handled = !handled > 0 }
        :: !refs
    end
  in
  let rec peel_top self (e : Parsetree.expression) =
    (* the binding's own parameter spine: not allocations *)
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun (_, default, _, body) ->
        Option.iter (expr_of self) default;
        peel_top self body
    | Parsetree.Pexp_function cases -> List.iter (case_of self) cases
    | Parsetree.Pexp_newtype (_, body) -> peel_top self body
    | _ -> expr_of self e
  and case_of self (c : Parsetree.case) =
    Option.iter (expr_of self) c.Parsetree.pc_guard;
    expr_of self c.Parsetree.pc_rhs
  and expr_of self e = self.Ast_iterator.expr self e
  and cons_chain self (e : Parsetree.expression) =
    (* one site for the whole chain: walk elements, follow the tail *)
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_construct
        ( { txt = Longident.Lident "::"; _ },
          Some { pexp_desc = Parsetree.Pexp_tuple [ hd; tl ]; _ } ) ->
        expr_of self hd;
        cons_chain self tl
    | _ -> expr_of self e
  in
  let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> add_ref txt loc
    | Parsetree.Pexp_apply (fn, args) ->
        (match fn.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident { txt; loc } ->
            add_ref txt loc;
            if is_pool_map (normalize_path_ident ctx txt) && has_family_label args
            then pool_family := true
        | _ -> expr_of self fn);
        List.iter (fun (_, a) -> expr_of self a) args
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
        add_site (Alloc "closure") e.Parsetree.pexp_loc;
        (* the closure's curried spine is one allocation, not one per
           parameter; its body re-arms normally *)
        peel_top self e
    | Parsetree.Pexp_tuple items ->
        add_site (Alloc "tuple") e.Parsetree.pexp_loc;
        List.iter (expr_of self) items
    | Parsetree.Pexp_record (fields, base) ->
        add_site (Alloc "record") e.Parsetree.pexp_loc;
        List.iter (fun (_, v) -> expr_of self v) fields;
        Option.iter (expr_of self) base
    | Parsetree.Pexp_array items ->
        add_site (Alloc "array literal") e.Parsetree.pexp_loc;
        List.iter (expr_of self) items
    | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) ->
        add_site (Alloc "list cons") e.Parsetree.pexp_loc;
        cons_chain self e
    | Parsetree.Pexp_try (body, cases) ->
        incr handled;
        expr_of self body;
        decr handled;
        List.iter (case_of self) cases
    | Parsetree.Pexp_match (scrut, cases) ->
        let has_exn_case =
          List.exists
            (fun (c : Parsetree.case) ->
              match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
              | Parsetree.Ppat_exception _ -> true
              | _ -> false)
            cases
        in
        if has_exn_case then begin
          incr handled;
          expr_of self scrut;
          decr handled
        end
        else expr_of self scrut;
        List.iter (case_of self) cases
    | _ -> Ast_iterator.default_iterator.Ast_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  let is_function, is_alias =
    match expr0.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _
    | Parsetree.Pexp_newtype _ ->
        (true, false)
    | Parsetree.Pexp_ident _ -> (false, true)
    | _ -> (false, false)
  in
  peel_top it expr0;
  (List.rev !sites, List.rev !refs, !pool_family, is_function, is_alias)

let binding_name (vb : Parsetree.value_binding) =
  let rec of_pat (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> Some txt
    | Parsetree.Ppat_constraint (p, _) -> of_pat p
    | _ -> None
  in
  of_pat vb.Parsetree.pvb_pat

let walk_structure ctx str =
  let add_node ~modpath (vb : Parsetree.value_binding) =
    let name =
      match binding_name vb with
      | Some name -> name
      | None ->
          (* pattern bindings define no callable, but their bodies still
             reference values — [let () = Alcotest.run ...] is how test
             files exercise comparators, and r13's coverage evidence
             must see those references.  A synthetic per-line name keeps
             the node addressable and un-referenceable. *)
          Printf.sprintf "_anon:%d"
            vb.Parsetree.pvb_loc.Location.loc_start.Lexing.pos_lnum
    in
    let sites, refs, pool_family, is_function, is_alias =
      collect_body ctx vb.Parsetree.pvb_expr
    in
    let qual = String.concat "." (modpath @ [ name ]) in
    let line = vb.Parsetree.pvb_loc.Location.loc_start.Lexing.pos_lnum in
    ctx.collected <-
      {
        id = ctx.path ^ "#" ^ qual;
        display = ctx.modname ^ "." ^ qual;
        file = ctx.path;
        modname = ctx.modname;
        name;
        n_line = line;
        is_function;
        is_alias;
        pool_family;
        sites;
        refs;
      }
      :: ctx.collected
  in
  let rec structure ~modpath str = List.iter (item ~modpath) str
  and item ~modpath (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) -> List.iter (add_node ~modpath) vbs
    | Parsetree.Pstr_module mb -> module_binding ~modpath mb
    | Parsetree.Pstr_recmodule mbs ->
        List.iter (module_binding ~modpath) mbs
    | Parsetree.Pstr_open
        {
          popen_expr = { pmod_desc = Parsetree.Pmod_ident _; _ };
          _;
        } ->
        (* opens are not resolved (no scope model for foreign module
           contents); unqualified names fall back to the intrinsic
           table, which is the conservative direction for effects *)
        ()
    | Parsetree.Pstr_include incl -> module_expr ~modpath incl.Parsetree.pincl_mod
    | _ -> ()
  and module_binding ~modpath (mb : Parsetree.module_binding) =
    match mb.Parsetree.pmb_name.Location.txt with
    | None -> ()
    | Some name -> (
        match mb.Parsetree.pmb_expr.Parsetree.pmod_desc with
        | Parsetree.Pmod_ident { txt; _ } ->
            Hashtbl.replace ctx.aliases name
              (strip_wrappers (strip_stdlib (flatten [] txt)))
        | _ -> module_expr ~modpath:(modpath @ [ name ]) mb.Parsetree.pmb_expr)
  and module_expr ~modpath (me : Parsetree.module_expr) =
    match me.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure str -> structure ~modpath str
    | Parsetree.Pmod_functor (_, body) -> module_expr ~modpath body
    | Parsetree.Pmod_constraint (me, _) -> module_expr ~modpath me
    | _ -> ()
  in
  structure ~modpath:[] str

let exposed_of_signature ~path ~modname sg =
  List.filter_map
    (fun (si : Parsetree.signature_item) ->
      match si.Parsetree.psig_desc with
      | Parsetree.Psig_value vd ->
          let p = vd.Parsetree.pval_loc.Location.loc_start in
          Some
            {
              e_file = path;
              e_modname = modname;
              e_name = vd.Parsetree.pval_name.Location.txt;
              e_line = p.Lexing.pos_lnum;
              e_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
            }
      | _ -> None)
    sg

(* --- building --------------------------------------------------------- *)

let of_sources sources =
  let nodes = ref [] and exposed = ref [] in
  List.iter
    (fun (path, source) ->
      let path = Finding.normalize_path path in
      let modname = module_basename path in
      let lexbuf = Lexing.from_string source in
      Location.init lexbuf path;
      if Filename.check_suffix path ".mli" then
        match Parse.interface lexbuf with
        | sg -> exposed := exposed_of_signature ~path ~modname sg @ !exposed
        | exception _ -> ()  (* parse errors are the engine's findings *)
      else
        match Parse.implementation lexbuf with
        | str ->
            let ctx =
              { path; modname; aliases = Hashtbl.create 8; collected = [] }
            in
            walk_structure ctx str;
            nodes := List.rev ctx.collected @ !nodes
        | exception _ -> ())
    sources;
  let nodes =
    List.sort (fun a b -> String.compare a.id b.id) !nodes
  in
  let exposed =
    List.sort
      (fun a b ->
        let c = String.compare a.e_file b.e_file in
        if c <> 0 then c else Int.compare a.e_line b.e_line)
      !exposed
  in
  let by_value = Hashtbl.create 256
  and by_file_value = Hashtbl.create 256
  and by_id = Hashtbl.create 256 in
  (* nodes are sorted, so appended id lists stay sorted *)
  List.iter
    (fun n ->
      Hashtbl.replace by_id n.id n;
      let push tbl key =
        Hashtbl.replace tbl key
          ((Option.value ~default:[] (Hashtbl.find_opt tbl key)) @ [ n.id ])
      in
      push by_value (n.modname, n.name);
      push by_file_value (n.file, n.name))
    nodes;
  { nodes; exposed; by_value; by_file_value; by_id }

let nodes t = t.nodes
let exposed t = t.exposed
let find t id = Hashtbl.find_opt t.by_id id

(* --- reference resolution --------------------------------------------- *)

(* Resolve an alias-expanded path from [file] to node ids, or report it
   external.  [Lident v] prefers same-file definitions; [M.v] matches
   every module named [M] (over-approximating on the tree's duplicate
   module names, so effects union rather than drop). *)
let resolve t ~file path =
  match path with
  | [] -> `Extern []
  | [ v ] -> (
      match Hashtbl.find_opt t.by_file_value (Finding.normalize_path file, v) with
      | Some ids -> `Nodes ids
      | None -> `Extern path)
  | _ -> (
      let v = List.nth path (List.length path - 1) in
      let m = List.nth path (List.length path - 2) in
      match Hashtbl.find_opt t.by_value (m, v) with
      | Some ids -> `Nodes ids
      | None -> `Extern path)

(* --- test-suite references (r13) -------------------------------------- *)

let compare_opt a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some a, Some b -> String.compare a b

(* Every (module, value) pair a file set references, alias-expanded:
   [module A = Rbgp_ring.Assignment ... A.compare] yields
   (Some "Assignment", "compare"); bare idents yield (None, name). *)
let references t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun n ->
      List.iter
        (fun r ->
          let key =
            match r.r_path with
            | [ v ] -> (None, v)
            | p ->
                let v = List.nth p (List.length p - 1) in
                let m = List.nth p (List.length p - 2) in
                (Some m, v)
          in
          Hashtbl.replace tbl key ())
        n.refs)
    t.nodes;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort (fun (m1, v1) (m2, v2) ->
         let c = compare_opt m1 m2 in
         if c <> 0 then c else String.compare v1 v2)
