(* The repo-specific rule set, implemented over the compiler's Parsetree.

   Each rule protects an invariant no compiler checks:

   R1  poly-compare     hot loops must stay monomorphic: generic compare /
                        Hashtbl.hash anywhere, and first-class =, <, min,
                        max (or structural-literal =) in the hot-path
                        libraries lib/mts, lib/ring, lib/serve, lib/util.
   R2  nondeterminism   checkpoint/resume identity and pool byte-identity
                        require lib/ to be a pure function of its inputs:
                        no wall-clock reads, no Random.self_init, no
                        Domain.self-derived values.
   R3  partial          List.hd / List.tl / Option.get / unsafe array ops
                        turn empty-case bugs into runtime explosions far
                        from the cause; match explicitly or justify.
   R4  global-mutable   top-level mutable state (ref, Hashtbl.create,
                        Array.make, Atomic.make, ... at module level) in
                        lib/ is shared across Pool worker domains; every
                        instance needs a written thread-safety note.
   R5  catchall-exn     [try ... with _ ->] swallows Stack_overflow,
                        assertion failures and algorithm bugs alike; bind
                        the exception or match specific constructors.
   R6  missing-mli      every lib/ module ships an interface, so the
                        public surface is deliberate.
   R7  domain-safety    spawning domains or submitting pool jobs from an
                        arbitrary lib/ module risks nested-parallel
                        deadlocks and schedule-dependent state; parallel
                        entry points live behind audited, allowlisted
                        modules only.

   Rules are syntactic (no typing pass), which keeps the linter fast and
   dependency-free; the cost is a small class of heuristic calls, all
   routed through the allowlist with written justifications. *)

type scope = { area : [ `Lib | `Bin | `Bench | `Other ]; sublib : string option }

let hot_sublibs = [ "mts"; "ring"; "serve"; "util" ]

let scope_of_path path =
  let parts =
    List.filter
      (fun s -> not (String.equal s ""))
      (String.split_on_char '/' (Finding.normalize_path path))
  in
  let rec find = function
    | "lib" :: rest ->
        let sublib = match rest with sub :: _ :: _ -> Some sub | _ -> None in
        { area = `Lib; sublib }
    | "bin" :: _ -> { area = `Bin; sublib = None }
    | "bench" :: _ -> { area = `Bench; sublib = None }
    | _ :: rest -> find rest
    | [] -> { area = `Other; sublib = None }
  in
  find parts

let is_hot scope =
  match (scope.area, scope.sublib) with
  | `Lib, Some sub -> List.mem sub hot_sublibs
  | _ -> false

let is_lib scope = match scope.area with `Lib -> true | _ -> false

(* --- identifier classification --------------------------------------- *)

(* Longident.flatten raises on functor applications; this total version
   just yields the path segments (empty for Lapply, which never names a
   value we patrol). *)
let rec flatten acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flatten (s :: acc) l
  | Longident.Lapply _ -> acc

let ident_path lid =
  match flatten [] lid with "Stdlib" :: rest -> rest | p -> p

let poly_op = function
  | "=" | "<>" | "<" | ">" | "<=" | ">=" | "min" | "max" -> true
  | _ -> false

let nondet_message = function
  | [ "Random"; "self_init" ] ->
      Some
        "Random.self_init seeds from the environment; thread the seed \
         explicitly (Rbgp_util.Rng) or resume identity breaks"
  | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
      Some
        "wall-clock read in lib/; algorithm state must be a function of \
         (seed, instance, requests) for checkpoint/resume to be exact"
  | [ "Sys"; "time" ] ->
      Some
        "Sys.time (CPU clock) in lib/; timing belongs in bin/ or bench/, \
         not in code the serving engine replays"
  | [ "Domain"; "self" ] ->
      Some
        "Domain.self is schedule-dependent; deriving state or hashes from \
         it breaks pool byte-identity"
  | _ -> None

(* R7: the Domain stdlib module and the pool API are the only ways code in
   this tree goes parallel.  Every lib/ module that touches either must be
   on the Domain-safety allowlist with a written audit: what shared state
   the parallel region can reach, and why results stay deterministic. *)
let domain_safety_message p =
  let rec member_of m = function
    | x :: _ :: _ when String.equal x m -> true
    | _ :: rest -> member_of m rest
    | [] -> false
  in
  if member_of "Domain" p then
    Some
      "direct Domain API use in lib/; parallelism belongs behind the \
       audited pool layer — record the safety audit in the lint allowlist"
  else if member_of "Pool" p then
    Some
      "pool job submission in lib/; parallel call sites must be on the \
       Domain-safety allowlist with a written audit of the shared state \
       their tasks touch"
  else None

let partial_message = function
  | [ "List"; "hd" ] | [ "List"; "tl" ] ->
      Some "partial on []; match the list shape explicitly"
  | [ "Option"; "get" ] ->
      Some "partial on None; match and fail with a named invariant"
  | [ "Array"; "unsafe_get" ] | [ "Array"; "unsafe_set" ]
  | [ "Bytes"; "unsafe_get" ] | [ "Bytes"; "unsafe_set" ]
  | [ "String"; "unsafe_get" ] ->
      Some "unchecked indexing; prove the bound and justify via allowlist"
  | _ -> None

(* --- expression rules (R1, R2, R3, R5) ------------------------------- *)

(* Is this expression a structural literal — something whose polymorphic
   comparison is certainly a deep caml_compare walk? *)
let structural_literal (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_tuple _ | Parsetree.Pexp_array _ | Parsetree.Pexp_record _
    ->
      true
  | Parsetree.Pexp_construct (_, Some _) -> true
  | _ -> false

let expression_findings ~path ~scope (str : Parsetree.structure) =
  let acc = ref [] in
  let add ~loc ~rule message =
    acc :=
      Finding.of_location ~rule ~severity:Finding.Error ~file:path loc message
      :: !acc
  in
  let check_ident ~applied ~loc lid =
    let p = ident_path lid in
    (match p with
    | [ "compare" ] | [ "Pervasives"; "compare" ] ->
        add ~loc ~rule:"r1-poly-compare"
          "polymorphic compare; use Int.compare / Float.compare / an \
           explicit comparator"
    | [ "Hashtbl"; "hash" ] ->
        add ~loc ~rule:"r1-poly-compare"
          "polymorphic Hashtbl.hash walks the whole value; hash an \
           explicit canonical key instead"
    | [ op ] when poly_op op && (not applied) && is_hot scope ->
        add ~loc ~rule:"r1-poly-compare"
          (Printf.sprintf
             "first-class polymorphic (%s) in a hot-path library; pass \
              Int.%s / Float.%s / an explicit comparator"
             op
             (match op with "min" | "max" -> op | _ -> "compare")
             (match op with "min" | "max" -> op | _ -> "compare"))
    | _ -> ());
    (if is_lib scope then
       match nondet_message p with
       | Some msg -> add ~loc ~rule:"r2-nondeterminism" msg
       | None -> ());
    (if is_lib scope then
       match domain_safety_message p with
       | Some msg -> add ~loc ~rule:"r7-domain-safety" msg
       | None -> ());
    match partial_message p with
    | Some msg -> add ~loc ~rule:"r3-partial" msg
    | None -> ()
  in
  let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> check_ident ~applied:false ~loc txt
    | Parsetree.Pexp_apply (fn, args) ->
        (match fn.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident { txt; loc } ->
            check_ident ~applied:true ~loc txt;
            (match ident_path txt with
            | [ ("=" | "<>") ]
              when is_hot scope
                   && List.exists (fun (_, a) -> structural_literal a) args ->
                add ~loc ~rule:"r1-poly-compare"
                  "structural (=) in a hot-path library; compare fields \
                   with monomorphic equality"
            | _ -> ())
        | _ -> self.Ast_iterator.expr self fn);
        List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args
    | Parsetree.Pexp_try (body, cases) ->
        self.Ast_iterator.expr self body;
        List.iter
          (fun (c : Parsetree.case) ->
            (match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
            | Parsetree.Ppat_any ->
                add ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc
                  ~rule:"r5-catchall-exn"
                  "catch-all exception handler swallows everything \
                   (including Assert_failure and Stack_overflow); bind \
                   the exception or match specific constructors"
            | _ -> ());
            Option.iter (self.Ast_iterator.expr self) c.Parsetree.pc_guard;
            self.Ast_iterator.expr self c.Parsetree.pc_rhs)
          cases
    | _ -> Ast_iterator.default_iterator.Ast_iterator.expr self e
  in
  let case (self : Ast_iterator.iterator) (c : Parsetree.case) =
    (match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
    | Parsetree.Ppat_exception { ppat_desc = Parsetree.Ppat_any; ppat_loc; _ }
      ->
        add ~loc:ppat_loc ~rule:"r5-catchall-exn"
          "catch-all [exception _] match case swallows everything; bind \
           the exception or match specific constructors"
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.case self c
  in
  let it = { Ast_iterator.default_iterator with expr; case } in
  it.Ast_iterator.structure it str;
  !acc

(* --- R4: top-level mutable state ------------------------------------- *)

let mutable_alloc_message = function
  | [ "ref" ] -> Some "top-level ref"
  | [ "Hashtbl"; "create" ] -> Some "top-level Hashtbl"
  | [ "Array"; "make" ]
  | [ "Array"; "init" ]
  | [ "Array"; "make_matrix" ]
  | [ "Array"; "create_float" ] ->
      Some "top-level mutable array"
  | [ "Bytes"; "create" ] | [ "Bytes"; "make" ] -> Some "top-level bytes"
  | [ "Buffer"; "create" ] -> Some "top-level buffer"
  | [ "Queue"; "create" ] -> Some "top-level queue"
  | [ "Stack"; "create" ] -> Some "top-level stack"
  | [ "Atomic"; "make" ] -> Some "top-level atomic"
  | _ -> None

(* Walk a top-level binding's expression, stopping at function boundaries:
   state allocated per call is private to the caller, state allocated at
   module initialization is shared by every domain the pool spawns. *)
let toplevel_mutable_findings ~path (str : Parsetree.structure) =
  let acc = ref [] in
  let add ~loc what =
    acc :=
      Finding.of_location ~rule:"r4-global-mutable" ~severity:Finding.Error
        ~file:path loc
        (Printf.sprintf
           "%s is shared across pool worker domains; confine it, guard it, \
            and record the thread-safety argument in the lint allowlist"
           what)
      :: !acc
  in
  let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> ()
    | Parsetree.Pexp_apply
        ({ pexp_desc = Parsetree.Pexp_ident { txt; loc }; _ }, args) ->
        (match mutable_alloc_message (ident_path txt) with
        | Some what -> add ~loc what
        | None -> ());
        List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args
    | _ -> Ast_iterator.default_iterator.Ast_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  let rec structure str = List.iter item str
  and item (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, bindings) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            it.Ast_iterator.expr it vb.Parsetree.pvb_expr)
          bindings
    | Parsetree.Pstr_module mb -> module_expr mb.Parsetree.pmb_expr
    | Parsetree.Pstr_recmodule mbs ->
        List.iter (fun mb -> module_expr mb.Parsetree.pmb_expr) mbs
    | Parsetree.Pstr_include incl ->
        module_expr incl.Parsetree.pincl_mod
    | _ -> ()
  and module_expr (me : Parsetree.module_expr) =
    match me.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure str -> structure str
    | Parsetree.Pmod_functor (_, me)
    | Parsetree.Pmod_constraint (me, _) ->
        module_expr me
    | _ -> ()
  in
  structure str;
  !acc

(* --- R8: hot-IO hygiene ----------------------------------------------- *)

(* The audited hot-IO modules: every byte of the ingest path flows through
   these, so a per-byte channel read or a closure allocated inside a
   serving loop is a real per-request cost (the difference between the
   channel and mmap decode rates in the bench ingest section), not a style nit.  The
   channel fallback for pipes and stdin legitimately reads byte-wise —
   those sites carry founding allowlist entries with the justification
   written down. *)
let hot_io_file_suffixes = [ "lib/ring/trace.ml"; "lib/util/binc.ml" ]

let has_suffix p suf =
  let lp = String.length p and ls = String.length suf in
  lp >= ls && String.equal (String.sub p (lp - ls) ls) suf

let is_hot_io path =
  let p = Finding.normalize_path path in
  (match scope_of_path p with
  | { area = `Lib; sublib = Some "serve" } -> true
  | _ -> false)
  || List.exists (has_suffix p) hot_io_file_suffixes

let hot_io_findings ~path (str : Parsetree.structure) =
  let acc = ref [] in
  let add ~loc message =
    acc :=
      Finding.of_location ~rule:"r8-hot-io" ~severity:Finding.Error ~file:path
        loc message
      :: !acc
  in
  (* loop_depth > 0 <=> the iterator is inside a while/for body; a closure
     allocated there is (re)built on every iteration *)
  let loop_depth = ref 0 in
  let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } ->
        (match ident_path txt with
        | [ ("input_byte" | "input_char") as f ] ->
            add ~loc
              (Printf.sprintf
                 "per-byte channel read (%s) in an audited hot-IO module; \
                  decode in blocks (Binc.decode_varints over an mmap \
                  region) or justify the channel fallback in the allowlist"
                 f)
        | _ -> ())
    | Parsetree.Pexp_while (cond, body) ->
        self.Ast_iterator.expr self cond;
        incr loop_depth;
        self.Ast_iterator.expr self body;
        decr loop_depth
    | Parsetree.Pexp_for (_, lo, hi, _, body) ->
        self.Ast_iterator.expr self lo;
        self.Ast_iterator.expr self hi;
        incr loop_depth;
        self.Ast_iterator.expr self body;
        decr loop_depth
    | (Parsetree.Pexp_fun _ | Parsetree.Pexp_function _)
      when !loop_depth > 0 ->
        add ~loc:e.Parsetree.pexp_loc
          "closure allocated inside a hot loop body; hoist it out of the \
           loop (reuse one closure or inline the call) or justify the \
           allocation in the allowlist";
        (* one finding per closure, not per curried parameter: scan the
           body as if at top level (a loop inside it re-arms the check) *)
        let saved = !loop_depth in
        loop_depth := 0;
        Ast_iterator.default_iterator.Ast_iterator.expr self e;
        loop_depth := saved
    | _ -> Ast_iterator.default_iterator.Ast_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.Ast_iterator.structure it str;
  !acc

(* --- R9: durability hygiene ------------------------------------------- *)

(* The audited durable-write modules: every byte that must survive a
   crash (checkpoints, trace artifacts) is produced here, and the only
   sanctioned way to publish it is Durable.atomic_write (tmp + fsync +
   rename + parent-dir fsync).  A bare open_out to a persistent path can
   be torn by a crash mid-write — exactly the failure the fault injector
   exists to exercise — so every remaining channel-writer site carries an
   allowlist entry saying why a torn file is acceptable there.

   The second half patrols the recovery machinery itself: a catch-all
   handler wrapped around code that calls into the Fault or Durable layer
   swallows Injected_crash, turning a simulated kill into a silently
   absorbed no-op and making the crash matrix vacuous.  Handlers that
   name their exceptions (as the supervisor does) or visibly re-raise are
   fine. *)
let durable_file_suffixes =
  [ "lib/workloads/trace_codec.ml"; "lib/workloads/trace_io.ml";
    "lib/util/durable.ml" ]

let is_durable_audited path =
  let p = Finding.normalize_path path in
  (match scope_of_path p with
  | { area = `Lib; sublib = Some "serve" } -> true
  | _ -> false)
  || List.exists (has_suffix p) durable_file_suffixes

let durability_findings ~path ~scope (str : Parsetree.structure) =
  let audited = is_durable_audited path in
  let acc = ref [] in
  let add ~loc message =
    acc :=
      Finding.of_location ~rule:"r9-durability" ~severity:Finding.Error
        ~file:path loc message
      :: !acc
  in
  (* does this subtree call into the fault / durable layer? *)
  let mentions_recovery_layer e0 =
    let rec member_of m = function
      | x :: _ :: _ when String.equal x m -> true
      | _ :: rest -> member_of m rest
      | [] -> false
    in
    let hit lid =
      let p = flatten [] lid in
      member_of "Fault" p || member_of "Durable" p
    in
    let found = ref false in
    let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
      (match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; _ } -> if hit txt then found := true
      | Parsetree.Pexp_construct ({ txt; _ }, _) ->
          if hit txt then found := true
      | _ -> ());
      if not !found then
        Ast_iterator.default_iterator.Ast_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.Ast_iterator.expr it e0;
    !found
  in
  (* a handler that re-raises (raise / reraise / raise_with_backtrace
     anywhere in its body) is propagating, not swallowing *)
  let reraises e0 =
    let found = ref false in
    let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
      (match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; _ } -> (
          match ident_path txt with
          | [ "raise" ] | [ "reraise" ] | [ "raise_notrace" ]
          | [ "Printexc"; "raise_with_backtrace" ] ->
              found := true
          | _ -> ())
      | _ -> ());
      if not !found then
        Ast_iterator.default_iterator.Ast_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.Ast_iterator.expr it e0;
    !found
  in
  let catch_all (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
    | Parsetree.Ppat_alias ({ ppat_desc = Parsetree.Ppat_any; _ }, _) -> true
    | _ -> false
  in
  let swallow_msg =
    "catch-all handler around a fault/durability call site swallows \
     Injected_crash, silently absorbing a simulated kill; name the \
     exceptions you recover from (and let Injected_crash escape) or \
     justify via allowlist"
  in
  let flag_case protected (c : Parsetree.case) =
    match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
    | Parsetree.Ppat_exception p
      when protected && catch_all p && c.Parsetree.pc_guard = None
           && not (reraises c.Parsetree.pc_rhs) ->
        add ~loc:p.Parsetree.ppat_loc swallow_msg
    | _ ->
        if
          protected
          && catch_all c.Parsetree.pc_lhs
          && c.Parsetree.pc_guard = None
          && not (reraises c.Parsetree.pc_rhs)
        then add ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc swallow_msg
  in
  let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } when audited -> (
        match ident_path txt with
        | [ ("open_out" | "open_out_bin" | "open_out_gen") as f ] ->
            add ~loc
              (Printf.sprintf
                 "bare %s in a durability-audited module; persistent \
                  state must go through Durable.atomic_write (tmp + \
                  fsync + rename + parent-dir fsync) or carry an \
                  allowlist entry saying why a torn file is safe here"
                 f)
        | _ -> ())
    | Parsetree.Pexp_try (body, cases) when is_lib scope ->
        List.iter (flag_case (mentions_recovery_layer body)) cases
    | Parsetree.Pexp_match (scrut, cases) when is_lib scope ->
        let protected = mentions_recovery_layer scrut in
        List.iter
          (fun (c : Parsetree.case) ->
            match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
            | Parsetree.Ppat_exception _ -> flag_case protected c
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.Ast_iterator.structure it str;
  !acc

(* --- R10: net safety --------------------------------------------------- *)

(* The socket transport's contract (net.mli): every raw socket syscall
   lives inside the audited [Sockio] submodule, whose wrappers retry
   EINTR, surface would-block explicitly, treat reset/broken-pipe as
   peer departure, and route reads through the fault layer so the crash
   matrix reaches the networked path.  A bare [Unix.read] elsewhere in
   lib/serve silently loses all four properties — the kind of drift a
   review won't catch once the module is large.  The second half flags
   unbounded channel-read idioms ([input_line], [really_input], ...):
   net-facing code must bound every read by a caller-supplied buffer or
   an explicit limit, never by what the peer chooses to send. *)
let socket_syscall = function
  | [ "Unix";
      (( "read" | "write" | "single_write" | "accept" | "connect" | "select"
       | "recv" | "send" | "recvfrom" | "sendto" ) as f) ] ->
      Some f
  | _ -> None

let unbounded_read_message = function
  | [ (("input_line" | "really_input" | "really_input_string") as f) ]
  | [ "In_channel"; (("input_all" | "input_line") as f) ] ->
      Some
        (Printf.sprintf
           "unbounded channel read (%s) in a net-audited module; bound \
            every read by a caller-supplied buffer or explicit limit — \
            the peer must not control allocation"
           f)
  | _ -> None

let is_net_audited path =
  match scope_of_path (Finding.normalize_path path) with
  | { area = `Lib; sublib = Some "serve" } -> true
  | _ -> false

let net_findings ~path (str : Parsetree.structure) =
  let acc = ref [] in
  let add ~loc message =
    acc :=
      Finding.of_location ~rule:"r10-net-safety" ~severity:Finding.Error
        ~file:path loc message
      :: !acc
  in
  (* Exempt code lexically inside [module Sockio = struct ... end] — the
     one place raw syscalls are supposed to live. *)
  let in_sockio = ref false in
  let expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> (
        let p = ident_path txt in
        (match socket_syscall p with
        | Some f when not !in_sockio ->
            add ~loc
              (Printf.sprintf
                 "raw socket syscall (Unix.%s) outside the audited Sockio \
                  wrappers; it would skip EINTR retry, would-block \
                  handling, peer-reset mapping and the fault layer's \
                  read hooks — call Sockio.%s or justify via allowlist"
                 f f)
        | _ -> ());
        match unbounded_read_message p with
        | Some msg -> add ~loc msg
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.expr self e
  in
  let module_binding (self : Ast_iterator.iterator)
      (mb : Parsetree.module_binding) =
    let is_sockio =
      match mb.Parsetree.pmb_name.Location.txt with
      | Some "Sockio" -> true
      | _ -> false
    in
    let saved = !in_sockio in
    if is_sockio then in_sockio := true;
    Ast_iterator.default_iterator.Ast_iterator.module_binding self mb;
    in_sockio := saved
  in
  let it = { Ast_iterator.default_iterator with expr; module_binding } in
  it.Ast_iterator.structure it str;
  !acc

(* --- entry points ----------------------------------------------------- *)

let check_structure ~path (str : Parsetree.structure) =
  let scope = scope_of_path path in
  let exprs = expression_findings ~path ~scope str in
  let globals = if is_lib scope then toplevel_mutable_findings ~path str else [] in
  let hot_io = if is_hot_io path then hot_io_findings ~path str else [] in
  let durability =
    if is_durable_audited path || is_lib scope then
      durability_findings ~path ~scope str
    else []
  in
  let net = if is_net_audited path then net_findings ~path str else [] in
  exprs @ globals @ hot_io @ durability @ net

(* Interfaces carry no expressions, so only parse errors (reported by the
   engine) apply today; kept as a hook for future signature rules. *)
let check_signature ~path:_ (_sig : Parsetree.signature) = []

let missing_mli ~files =
  let set = Hashtbl.create (List.length files * 2) in
  List.iter (fun f -> Hashtbl.replace set (Finding.normalize_path f) ()) files;
  List.filter_map
    (fun f ->
      let f = Finding.normalize_path f in
      if
        Filename.check_suffix f ".ml"
        && is_lib (scope_of_path f)
        && not (Hashtbl.mem set (f ^ "i"))
      then
        Some
          (Finding.make ~rule:"r6-missing-mli" ~severity:Finding.Error ~file:f
             ~line:0 ~col:0
             "library module without an interface; add a .mli so the \
              public surface is deliberate")
      else None)
    files

(* --- interprocedural rules (r11–r13) ---------------------------------- *)

(* r11-hot-alloc: every direct allocation site inside a function
   transitively reachable from a hot root.  Findings land on the
   allocation site itself (not the path), so allowlist entries can scope
   to file:line and the justification reads next to the code. *)
let hot_alloc (effects : Effects.t) =
  List.concat_map
    (fun id ->
      match Effects.hot_reach effects id with
      | None -> []
      | Some root -> (
          match Effects.info effects id with
          | None -> []
          | Some info ->
              let n = info.Effects.node in
              List.filter_map
                (fun (d : Effects.direct) ->
                  if d.Effects.d_eff.Effects.alloc then
                    Some
                      (Finding.make ~rule:"r11-hot-alloc"
                         ~severity:Finding.Error ~file:n.Index.file
                         ~line:d.Effects.d_line ~col:d.Effects.d_col
                         (Printf.sprintf
                            "%s allocates (%s) and is reachable from hot \
                             root %s — the audited hot paths must stay \
                             allocation-free per call; hoist the \
                             allocation, reuse a scratch buffer, or \
                             justify the amortization via allowlist"
                            n.Index.display d.Effects.d_what root))
                  else None)
                info.Effects.direct))
    (Effects.node_ids effects)

(* r12-transitive-partial: unhandled partiality idioms reachable from the
   serve/net request path.  The reachability already refuses to cross
   handled call edges, and handled sites are skipped here — a [try] or
   [match ... with exception] on the path is the named handler the rule
   asks for. *)
let transitive_partial (effects : Effects.t) =
  List.concat_map
    (fun id ->
      match Effects.serve_reach effects id with
      | None -> []
      | Some root -> (
          match Effects.info effects id with
          | None -> []
          | Some info ->
              let n = info.Effects.node in
              List.filter_map
                (fun (d : Effects.direct) ->
                  if d.Effects.d_eff.Effects.partial && not d.Effects.d_handled
                  then
                    Some
                      (Finding.make ~rule:"r12-transitive-partial"
                         ~severity:Finding.Error ~file:n.Index.file
                         ~line:d.Effects.d_line ~col:d.Effects.d_col
                         (Printf.sprintf
                            "%s can raise from %s and is reachable from \
                             serve root %s with no intervening handler — \
                             a request must fail as a mapped error frame, \
                             not an escaped Not_found/Failure; handle the \
                             exception, use the total variant, or justify \
                             via allowlist"
                            n.Index.display d.Effects.d_what root))
                  else None)
                info.Effects.direct))
    (Effects.node_ids effects)

(* r13-comparator-coverage: every comparator-shaped value exposed by a
   lib interface must be referenced from the test file set.  Names that
   collide with stdlib ([compare]/[equal]/[hash] bare) only count as
   covered under a qualified reference; distinctive names ([equal_foo],
   [compare_severity]) also accept a bare reference (local open). *)
let is_comparator_name name =
  let seg = function "compare" | "equal" | "hash" -> true | _ -> false in
  seg name || List.exists seg (String.split_on_char '_' name)

let comparator_coverage ~(index : Index.t) ~(tests : Index.t) =
  let refs = Index.references tests in
  let referenced modname name =
    let stdlib_collision =
      match name with "compare" | "equal" | "hash" -> true | _ -> false
    in
    List.exists
      (fun (m, v) ->
        String.equal v name
        &&
        match m with
        | Some m -> String.equal m modname
        | None -> not stdlib_collision)
      refs
  in
  List.filter_map
    (fun (e : Index.exposed) ->
      if
        is_comparator_name e.Index.e_name
        && is_lib (scope_of_path e.Index.e_file)
        && not (referenced e.Index.e_modname e.Index.e_name)
      then
        Some
          (Finding.make ~rule:"r13-comparator-coverage" ~severity:Finding.Error
             ~file:e.Index.e_file ~line:e.Index.e_line ~col:e.Index.e_col
             (Printf.sprintf
                "comparator %s.%s is exposed but never referenced from the \
                 test suite — the paper's guarantees ride on exact \
                 comparators, so every exposed compare/equal/hash needs \
                 qcheck or unit coverage (or a written justification)"
                e.Index.e_modname e.Index.e_name))
      else None)
    (Index.exposed index)

let descriptions =
  [
    ( "r1-poly-compare",
      "no polymorphic comparison in hot paths: generic compare / \
       Hashtbl.hash anywhere; first-class =, <, min, max and structural \
       literals under (=) in lib/mts, lib/ring, lib/serve, lib/util" );
    ( "r2-nondeterminism",
      "no wall-clock, Random.self_init or Domain.self in lib/ — \
       checkpoint/resume identity and pool byte-identity depend on lib/ \
       being a pure function of (seed, instance, requests)" );
    ( "r3-partial",
      "no List.hd / List.tl / Option.get / unsafe indexing outside \
       allowlisted, justified sites" );
    ( "r4-global-mutable",
      "top-level mutable state in lib/ (ref, Hashtbl.create, Array.make, \
       Atomic.make, ...) is shared across pool domains and needs a \
       written thread-safety note in the allowlist" );
    ( "r5-catchall-exn",
      "no catch-all try ... with _ -> handlers; bind the exception or \
       match specific constructors" );
    ("r6-missing-mli", "every lib/**/*.ml ships a corresponding .mli");
    ( "r7-domain-safety",
      "no Domain API use or pool job submission in lib/ outside the \
       audited Domain-safety allowlist — nested parallelism deadlocks \
       and schedule-dependent state hide behind unaudited call sites" );
    ( "r8-hot-io",
      "no per-byte channel reads (input_byte / input_char) and no closure \
       allocation inside loop bodies in the audited hot-IO modules \
       (lib/serve, lib/ring/trace.ml, lib/util/binc.ml) — the ingest path \
       decodes in blocks; the channel fallback is allowlisted with its \
       justification" );
    ( "r9-durability",
      "no bare open_out / open_out_bin / open_out_gen in the \
       durability-audited modules (lib/serve, lib/workloads/trace_codec.ml, \
       lib/workloads/trace_io.ml, lib/util/durable.ml) — persistent state \
       goes through Durable.atomic_write; and no catch-all handlers \
       around Fault/Durable call sites in lib/, which would swallow \
       Injected_crash and blind the crash matrix" );
    ( "r10-net-safety",
      "no raw socket syscalls (Unix.read / write / accept / connect / \
       select / send / recv ...) in lib/serve outside the audited Sockio \
       wrappers — which retry EINTR, surface would-block, map peer resets \
       and route reads through the fault layer — and no unbounded channel \
       reads (input_line / really_input) in net-audited modules" );
    ( "r11-hot-alloc",
      "no heap allocation (closures, tuples, records, list conses, \
       Array.append / @ / ^ / sprintf ...) in functions transitively \
       reachable from the audited hot roots — Engine.ingest*, \
       Dynamic_alg.serve_batch, the Binc block decoders and every \
       Pool.map ~family submitter — outside justified allowlist entries" );
    ( "r12-transitive-partial",
      "no unnamed partiality (List.hd / Option.get / Hashtbl.find / \
       int_of_string ...) reachable from the serve/net request path \
       without an intervening exception handler — requests fail as \
       mapped error frames, never as escaped Not_found" );
    ( "r13-comparator-coverage",
      "every comparator/equal/hash value exposed in a lib/**.mli is \
       referenced from test/ — exactness of comparators is what the \
       competitive guarantees ride on, so coverage is a ratchet" );
    ("parse-error", "file must parse with the OCaml 5.1 grammar");
  ]

(* --- --explain texts --------------------------------------------------- *)

let explain rule =
  let find k = List.assoc_opt k descriptions in
  let extended =
    match rule with
    | "r11-hot-alloc" ->
        Some
          "Interprocedural: the linter indexes every value definition in \
           the scanned tree (lib/lint/index.ml), resolves call heads \
           across modules, and runs a fixpoint (lib/lint/effects.ml) \
           marking each function that allocates per call — closures, \
           tuples, records, array/list literals, cons cells, and \
           allocating stdlib such as @, ^, Array.append, List.map and \
           Printf.sprintf.  Findings are the direct allocation sites \
           inside any function transitively reachable from a hot root: \
           Engine.ingest*, Dynamic_alg.serve_batch, Binc.decode_varints*, \
           every body that submits Pool.map ~family jobs, plus any \
           --hot-root extras.  First-class dispatch through record fields \
           (the Online interface) is invisible to the index, which is why \
           the solver-side serve_batch is a root in its own right.  \
           Amortized allocations (per-batch scratch, startup-only paths) \
           belong in lint/allowlist.txt with a written justification; \
           per-element allocations in steady state are bugs."
    | "r12-transitive-partial" ->
        Some
          "Interprocedural: using the same call graph as r11, the serve \
           roots — Engine.ingest*, Net.handle_*, Net.dispatch_frames, \
           Tenant.serve* — are traversed without crossing call edges that \
           sit under a try or a match-with-exception case: a handler on \
           the path is exactly the interposition the rule asks for.  Any \
           reachable unhandled partiality idiom (List.hd, List.tl, \
           Option.get, Hashtbl.find, Stack.pop, Queue.pop, int_of_string, \
           String.index, ...) is reported at its site.  Deliberate \
           failwith/invalid_arg with a written invariant message are not \
           counted — the rule patrols *unnamed* partiality, the kind that \
           escapes as Not_found and tears down a connection without a \
           mapped error frame."
    | "r13-comparator-coverage" ->
        Some
          "Cross-checked against the test file set: every value whose \
           name is compare/equal/hash or carries one of those as a \
           _-separated segment, exposed in a lib interface, must be \
           referenced somewhere under test/.  Bare-stdlib-colliding names \
           (compare, equal, hash exactly) only count as covered under a \
           qualified reference (M.compare); distinctive names also accept \
           a bare reference under a local open.  The ROADMAP's \
           million-scale push names this ratchet explicitly: the \
           competitive-ratio harness trusts comparator exactness, so an \
           untested comparator is an unverified invariant."
    | _ -> None
  in
  match (find rule, extended) with
  | None, _ -> None
  | Some d, None -> Some d
  | Some d, Some e -> Some (d ^ "\n\n" ^ e)
