(** The cross-module value index: per-module value definitions, their
    direct allocation/partiality sites, and the raw references their
    bodies make — the syntactic substrate the effect-inference fixpoint
    (effects.ml) and the interprocedural rules (r11–r13) resolve over.

    Deliberately syntactic and over-approximate: a value name defined by
    two modules resolves to every candidate (effects union rather than
    drop), and first-class dispatch through record fields (the [Online]
    algorithm interface) is invisible — which is why the hot-root list
    names both the engine entry points and the solver-side batch path
    explicitly.  Deterministic: nodes and tables sort, no clock. *)

type site_kind =
  | Alloc of string  (** what is allocated, for the finding message *)
  | Partial of string  (** which partial idiom — reserved for future
                           syntactic partiality; stdlib partiality comes
                           from the intrinsic table in effects.ml *)

type site = {
  s_kind : site_kind;
  s_line : int;
  s_col : int;
  s_handled : bool;  (** under a [try] / [match ... with exception] *)
}

type reference = {
  r_path : string list;
      (** alias-expanded dotted path, [Stdlib] and library wrappers
          stripped *)
  r_line : int;
  r_col : int;
  r_handled : bool;
}

type node = {
  id : string;  (** ["<file>#<Mod[.Sub]>.<name>"] — unique, sortable *)
  display : string;  (** ["Mod.name"] or ["Mod.Sub.name"] *)
  file : string;
  modname : string;
  name : string;
  n_line : int;
  is_function : bool;
  is_alias : bool;  (** non-function whose body is a bare ident *)
  pool_family : bool;
      (** body submits pool jobs with a [~family] label — a hot root *)
  sites : site list;  (** in source order *)
  refs : reference list;  (** in source order *)
}

type exposed = {
  e_file : string;
  e_modname : string;
  e_name : string;
  e_line : int;
  e_col : int;
}

type t

val of_sources : (string * string) list -> t
(** [(path, source)] pairs; [.mli] files contribute exposed values,
    [.ml] files contribute nodes.  Unparseable sources are skipped here
    (the engine reports them as [parse-error] findings). *)

val nodes : t -> node list
(** Sorted by id. *)

val exposed : t -> exposed list
(** Every value declared in an indexed interface, sorted by (file, line). *)

val find : t -> string -> node option

val resolve :
  t -> file:string -> string list -> [ `Nodes of string list | `Extern of string list ]
(** Resolve an alias-expanded reference path from [file]: bare names
    prefer same-file definitions; [M.v] matches every indexed module
    named [M].  Unresolved paths come back as [`Extern] for the
    intrinsic table. *)

val references : t -> (string option * string) list
(** Every (module, value) pair the indexed implementations reference,
    alias-expanded and deduplicated — the coverage evidence for
    r13-comparator-coverage when built over the test file set. *)

val module_basename : string -> string
(** ["lib/serve/engine.ml"] → ["Engine"]. *)
