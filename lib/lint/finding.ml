(* A structured lint finding: which rule fired, where, and why.

   Paths are normalized at construction (leading "./" and "../" segments
   stripped, backslashes rewritten) so that findings produced from the
   repository root and from a test sandbox compare, sort, suppress and
   baseline identically. *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;  (* 1-based; 0 means the finding is about the whole file *)
  col : int;  (* 0-based, matching compiler convention; 0 for whole-file *)
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let normalize_path path =
  let parts =
    String.split_on_char '/'
      (String.concat "/" (String.split_on_char '\\' path))
  in
  let rec strip = function
    | ("." | ".." | "") :: rest -> strip rest
    | parts -> parts
  in
  String.concat "/" (strip parts)

let make ~rule ~severity ~file ~line ~col message =
  { rule; severity; file = normalize_path file; line; col; message }

let of_location ~rule ~severity ~file (loc : Location.t) message =
  let p = loc.Location.loc_start in
  make ~rule ~severity ~file ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

let compare_severity a b =
  match (a, b) with
  | Error, Error | Warning, Warning -> 0
  | Error, Warning -> -1
  | Warning, Error -> 1

(* Named [compare_finding] internally so the syntactic r1 rule (which flags
   any bare [compare] identifier) does not fire on the linter itself. *)
let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let compare = compare_finding
let equal a b = compare_finding a b = 0

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col f.rule
    (severity_to_string f.severity)
    f.message

let to_json f =
  Ljson.Obj
    [
      ("rule", Ljson.Str f.rule);
      ("severity", Ljson.Str (severity_to_string f.severity));
      ("file", Ljson.Str f.file);
      ("line", Ljson.Num (float_of_int f.line));
      ("col", Ljson.Num (float_of_int f.col));
      ("message", Ljson.Str f.message);
    ]

let of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> None in
  let* rule = Option.bind (Ljson.member "rule" j) Ljson.to_str in
  let* sev = Option.bind (Ljson.member "severity" j) Ljson.to_str in
  let* severity = severity_of_string sev in
  let* file = Option.bind (Ljson.member "file" j) Ljson.to_str in
  let* line = Option.bind (Ljson.member "line" j) Ljson.to_int in
  let* col = Option.bind (Ljson.member "col" j) Ljson.to_int in
  let* message = Option.bind (Ljson.member "message" j) Ljson.to_str in
  Some { rule; severity; file; line; col; message }
