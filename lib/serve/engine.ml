module Instance = Rbgp_ring.Instance
module Online = Rbgp_ring.Online
module Assignment = Rbgp_ring.Assignment
module Simulator = Rbgp_ring.Simulator
module Cost = Rbgp_ring.Cost

type decision = {
  step : int;
  edge : int;
  comm : int;
  moved : int;
  cum_comm : int;
  cum_mig : int;
  max_load : int;
  latency_ns : int;
}

type t = {
  inst : Instance.t;
  alg_name : string;
  epsilon : float;
  seed : int;
  online : Online.t;
  stepper : Simulator.stepper;
  metrics : Metrics.t;
  mutable prefix : int array;
  mutable pos : int;
  sanitize : bool;
  (* solver-budget degradation: when a request's effective solve time
     exceeds [budget_ns] (> 0 enables), the next [cooloff] requests are
     served on the frozen never-move path, then the solver is re-promoted.
     [spans] records every frozen stretch, newest first, so checkpoints
     can reproduce the exact call sequence on replay. *)
  mutable budget_ns : int;
  mutable cooloff : int;
  mutable degraded_left : int;
  mutable spans : (int * int) list;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let sanitize_default () =
  match Sys.getenv_opt "RBGP_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

(* --- runtime sanitizer ------------------------------------------------ *)

(* Per-request invariant checks, run after every [Simulator.step] when the
   engine was created with [~sanitize:true] (or RBGP_SANITIZE=1).  Each
   check is an invariant the rest of the system silently relies on; the
   sanitizer turns a silent corruption into a [Failure] naming the request
   index at which it first became observable. *)
let check_step_invariants t ~step ~comm ~prev_comm ~prev_mig ~prev_max
    (r : Simulator.result) =
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        failwith (Printf.sprintf "RBGP_SANITIZE: request %d: %s" step s))
      fmt
  in
  let a = t.online.Online.assignment () in
  let n = t.inst.Instance.n and ell = t.inst.Instance.ell in
  if Assignment.n a <> n then
    fail "assignment covers %d processes, instance has %d" (Assignment.n a) n;
  (* partition validity: every process on a real server, cached loads in
     sync with the map (their sum over all servers is then n by counting) *)
  let counts = Array.make ell 0 in
  for p = 0 to n - 1 do
    let s = Assignment.server_of a p in
    if s < 0 || s >= ell then
      fail "process %d assigned to invalid server %d (ell = %d)" p s ell;
    counts.(s) <- counts.(s) + 1
  done;
  let loads = Assignment.loads a in
  for s = 0 to ell - 1 do
    if counts.(s) <> loads.(s) then
      fail "server %d: cached load %d, but %d processes actually assigned" s
        loads.(s) counts.(s)
  done;
  (* augmented capacity bound claimed by the algorithm *)
  let augmentation = t.online.Online.augmentation in
  if not (Assignment.check_capacity a ~augmentation) then
    fail "max load %d exceeds augmentation bound %.3f * k = %.3f"
      (Assignment.max_load a) augmentation
      (augmentation *. float_of_int t.inst.Instance.k);
  (* accounting sanity: unit communication charges, monotone cumulatives *)
  if comm <> 0 && comm <> 1 then fail "communication charge %d not in {0,1}" comm;
  if r.Simulator.cost.Cost.comm < prev_comm then
    fail "cumulative comm decreased: %d -> %d" prev_comm
      r.Simulator.cost.Cost.comm;
  if r.Simulator.cost.Cost.mig < prev_mig then
    fail "cumulative mig decreased: %d -> %d" prev_mig r.Simulator.cost.Cost.mig;
  if r.Simulator.max_load < prev_max then
    fail "running max load decreased: %d -> %d" prev_max r.Simulator.max_load

let make_engine ?(strict = true) ?(accounting = `Auto) ?sanitize ~epsilon ~alg
    ~seed ?(cost = Cost.zero ()) ?max_load ?violations ?(steps_done = 0)
    ?(prefix = [||]) (inst : Instance.t) (online : Online.t) =
  let stepper =
    Simulator.stepper ~strict ~accounting ~cost ?max_load ?violations
      ~steps_done inst online
  in
  let cap = max 1024 (Array.length prefix) in
  let buf = Array.make cap 0 in
  Array.blit prefix 0 buf 0 (Array.length prefix);
  let sanitize =
    match sanitize with Some b -> b | None -> sanitize_default ()
  in
  {
    inst;
    alg_name = alg;
    epsilon;
    seed;
    online;
    stepper;
    metrics = Metrics.create ();
    prefix = buf;
    pos = steps_done;
    sanitize;
    budget_ns = 0;
    cooloff = 64;
    degraded_left = 0;
    spans = [];
  }

let create ?strict ?accounting ?sanitize ?(epsilon = 0.5) ~alg ~seed inst =
  let spec = Registry.find alg in
  let online = spec.Registry.build ~epsilon ~seed inst in
  make_engine ?strict ?accounting ?sanitize ~epsilon ~alg ~seed inst online

let push_prefix t e =
  if t.pos >= Array.length t.prefix then begin
    let bigger = Array.make (2 * Array.length t.prefix) 0 in
    Array.blit t.prefix 0 bigger 0 t.pos;
    t.prefix <- bigger
  end;
  t.prefix.(t.pos) <- e

(* One request's bookkeeping around [play] (the accounting step):
   identical for the per-request and batched paths, so every decision
   field except the wall-clock [latency_ns] is byte-identical between
   them.  [play] takes the stepper and a caller-chosen argument ([e] for
   the per-request paths, the batch index for the prepared path) so the
   per-request callers pass [Simulator.step]/[step_frozen] directly and
   allocate no thunk (r11 patrols this path). *)
let ingest_step t e play x =
  let t0 = now_ns () in
  let prev =
    if t.sanitize then begin
      (* capture scalars: the stepper's cost record is mutated in place *)
      let p = Simulator.stepper_result t.stepper in
      Some (p.Simulator.cost.Cost.comm, p.Simulator.cost.Cost.mig, p.Simulator.max_load)
    end
    else None
  in
  let comm, moved = play t.stepper x in
  push_prefix t e;
  t.pos <- t.pos + 1;
  let r = Simulator.stepper_result t.stepper in
  (match prev with
  | Some (prev_comm, prev_mig, prev_max) ->
      check_step_invariants t ~step:(t.pos - 1) ~comm ~prev_comm ~prev_mig
        ~prev_max r
  | None -> ());
  let latency_ns = now_ns () - t0 in
  Metrics.observe t.metrics ~latency_ns ~comm ~moved
    ~max_load:r.Simulator.max_load;
  {
    step = t.pos - 1;
    edge = e;
    comm;
    moved;
    cum_comm = r.Simulator.cost.Cost.comm;
    cum_mig = r.Simulator.cost.Cost.mig;
    max_load = r.Simulator.max_load;
    latency_ns;
  }

(* --- solver-budget degradation ---------------------------------------- *)

let set_solver_budget t ~budget_ns ~cooloff =
  if budget_ns < 0 then invalid_arg "Engine.set_solver_budget: negative budget";
  if budget_ns > 0 && cooloff < 1 then
    invalid_arg "Engine.set_solver_budget: cooloff < 1";
  t.budget_ns <- budget_ns;
  t.cooloff <- cooloff

let degrading t = t.degraded_left > 0

let degraded_spans t =
  let l = List.rev t.spans in
  let a = Array.make (2 * List.length l) 0 in
  List.iteri
    (fun i (s, len) ->
      a.(2 * i) <- s;
      a.((2 * i) + 1) <- len)
    l;
  a

let spans_of_flat flat =
  let r = ref [] in
  for i = 0 to (Array.length flat / 2) - 1 do
    r := (flat.(2 * i), flat.((2 * i) + 1)) :: !r
  done;
  !r

(* Bookkeeping for one request just served frozen (pos already advanced):
   extend the current span or open a new one, and count the re-promotion
   when the cooloff ends. *)
let note_frozen t =
  let p = t.pos - 1 in
  (match t.spans with
  | (s, len) :: rest when s + len = p -> t.spans <- (s, len + 1) :: rest
  | spans -> t.spans <- (p, 1) :: spans);
  Metrics.note_degraded t.metrics;
  t.degraded_left <- t.degraded_left - 1;
  if t.degraded_left = 0 then Metrics.note_recovered t.metrics

(* Was this request slow enough to degrade?  The effective time is the
   measured solve latency plus any injected stall — virtual, so the fault
   path stays deterministic and fast. *)
let check_budget t ~latency_ns ~step =
  if t.budget_ns > 0 then begin
    let eff =
      latency_ns
      + (if Fault.armed () then Fault.solver_stall_ns ~step else 0)
    in
    if eff > t.budget_ns then t.degraded_left <- t.cooloff
  end

let ingest t e =
  if Fault.armed () then Fault.crash_check ~step:t.pos;
  if t.degraded_left > 0 then begin
    let d = ingest_step t e Simulator.step_frozen e in
    note_frozen t;
    d
  end
  else begin
    let d = ingest_step t e Simulator.step e in
    check_budget t ~latency_ns:d.latency_ns ~step:d.step;
    d
  end

let ingest_batch t edges =
  let b = Array.length edges in
  if b = 0 then [||]
  else if t.degraded_left > 0 || Fault.armed () then begin
    (* per-request path: frozen spans, crash points and injected stalls
       land on exact request indices (the batched pre-solve would consult
       the solver for requests that must be served frozen) *)
    let out = ref [] in
    Array.iter (fun e -> out := ingest t e :: !out) edges;
    Array.of_list (List.rev !out)
  end
  else begin
    let play = Simulator.prepare t.stepper edges in
    (* one play wrapper per batch, indexed by j — not one thunk per request *)
    let play_step _stepper j = play j in
    let ds = Array.mapi (fun j e -> ingest_step t e play_step j) edges in
    (* degradation triggers are evaluated at batch boundaries — a prepared
       batch's [play j] must run for every j in order, so the switch to the
       frozen path applies from the next batch on *)
    if t.budget_ns > 0 then begin
      let worst = ref 0 in
      Array.iter (fun d -> if d.latency_ns > !worst then worst := d.latency_ns) ds;
      if !worst > t.budget_ns then t.degraded_left <- t.cooloff
    end;
    ds
  end

(* The no-decision fast path: same accounting, replay prefix and
   checkpoint-observable state as [ingest_batch], but two clock reads and
   one aggregate metrics record per *batch* instead of per request, and no
   decision records allocated — the dominant per-request overheads once
   the solver itself is cheap (see the bench ingest section).  The
   sanitizer needs per-request before/after scalars, so sanitizing
   engines keep the checked path. *)
let ingest_batch_quiet t edges =
  let b = Array.length edges in
  if b = 0 then ()
  else if
    t.sanitize || t.degraded_left > 0
    || (Fault.armed () && Fault.request_fault_pending ~lo:t.pos ~hi:(t.pos + b))
  then
    (* blocks that need per-request treatment — sanitizing engines, an
       active degradation cooloff, or a counted fault landing inside this
       block — take the checked path; an armed-but-quiet fault plan costs
       this one range check per block (gated <2% in the bench) *)
    ignore (ingest_batch t edges)
  else begin
    let prev = Simulator.stepper_result t.stepper in
    (* capture scalars: the stepper's cost record is mutated in place *)
    let prev_comm = prev.Simulator.cost.Cost.comm
    and prev_mig = prev.Simulator.cost.Cost.mig in
    let t0 = now_ns () in
    let play = Simulator.prepare t.stepper edges in
    for j = 0 to b - 1 do
      ignore (play j);
      push_prefix t edges.(j);
      t.pos <- t.pos + 1
    done;
    let latency_ns = now_ns () - t0 in
    let r = Simulator.stepper_result t.stepper in
    Metrics.observe_batch t.metrics ~count:b ~latency_ns
      ~comm:(r.Simulator.cost.Cost.comm - prev_comm)
      ~mig:(r.Simulator.cost.Cost.mig - prev_mig)
      ~max_load:r.Simulator.max_load;
    if t.budget_ns > 0 && latency_ns / b > t.budget_ns then
      t.degraded_left <- t.cooloff
  end

let pos t = t.pos
let alg_name t = t.alg_name
let epsilon t = t.epsilon
let seed t = t.seed
let instance t = t.inst
let result t = Simulator.stepper_result t.stepper
let assignment t = Assignment.to_array (t.online.Online.assignment ())
let online t = t.online
let metrics t = t.metrics

let checkpoint t =
  let r = result t in
  {
    Checkpoint.alg = t.alg_name;
    epsilon = t.epsilon;
    seed = t.seed;
    n = t.inst.Instance.n;
    ell = t.inst.Instance.ell;
    k = t.inst.Instance.k;
    initial = Array.copy t.inst.Instance.initial;
    pos = t.pos;
    prefix = Array.sub t.prefix 0 t.pos;
    comm = r.Simulator.cost.Cost.comm;
    mig = r.Simulator.cost.Cost.mig;
    max_load = r.Simulator.max_load;
    violations = r.Simulator.capacity_violations;
    assignment = assignment t;
    alg_state =
      Option.map (fun snap -> snap ()) t.online.Online.snapshot;
    degraded = degraded_spans t;
    degraded_left = t.degraded_left;
  }

let verify_against (ckpt : Checkpoint.t) t ~how =
  let r = result t in
  let mismatch what got want =
    failwith
      (Printf.sprintf
         "Engine.resume: %s of %s diverged from checkpoint after %s: %s = %d, \
          checkpoint says %d"
         what ckpt.Checkpoint.alg how what got want)
  in
  if r.Simulator.cost.Cost.comm <> ckpt.Checkpoint.comm then
    mismatch "comm" r.Simulator.cost.Cost.comm ckpt.Checkpoint.comm;
  if r.Simulator.cost.Cost.mig <> ckpt.Checkpoint.mig then
    mismatch "mig" r.Simulator.cost.Cost.mig ckpt.Checkpoint.mig;
  if r.Simulator.max_load <> ckpt.Checkpoint.max_load then
    mismatch "max_load" r.Simulator.max_load ckpt.Checkpoint.max_load;
  if r.Simulator.capacity_violations <> ckpt.Checkpoint.violations then
    mismatch "violations" r.Simulator.capacity_violations
      ckpt.Checkpoint.violations;
  let same_assignment a b =
    Array.length a = Array.length b && Array.for_all2 Int.equal a b
  in
  if not (same_assignment (assignment t) ckpt.Checkpoint.assignment) then
    failwith
      (Printf.sprintf
         "Engine.resume: assignment of %s diverged from checkpoint after %s"
         ckpt.Checkpoint.alg how)

let resume ?(strict = true) ?(accounting = `Auto) ?sanitize
    (ckpt : Checkpoint.t) =
  let inst =
    Instance.make ~n:ckpt.Checkpoint.n ~ell:ckpt.Checkpoint.ell
      ~k:ckpt.Checkpoint.k ~initial:(Array.copy ckpt.Checkpoint.initial) ()
  in
  let spec = Registry.find ckpt.Checkpoint.alg in
  let online =
    spec.Registry.build ~epsilon:ckpt.Checkpoint.epsilon
      ~seed:ckpt.Checkpoint.seed inst
  in
  match (ckpt.Checkpoint.alg_state, online.Online.restore) with
  | Some state, Some restore ->
      (* explicit restore: O(state), no replay.  The stepper created below
         snapshots the restored assignment as its baseline, so restore-time
         moves are not billed, exactly like construction-time moves. *)
      restore state;
      let t =
        make_engine ~strict ~accounting ?sanitize ~epsilon:ckpt.Checkpoint.epsilon
          ~alg:ckpt.Checkpoint.alg ~seed:ckpt.Checkpoint.seed
          ~cost:
            {
              Cost.comm = ckpt.Checkpoint.comm;
              Cost.mig = ckpt.Checkpoint.mig;
            }
          ~max_load:ckpt.Checkpoint.max_load
          ~violations:ckpt.Checkpoint.violations
          ~steps_done:ckpt.Checkpoint.pos ~prefix:ckpt.Checkpoint.prefix inst
          online
      in
      verify_against ckpt t ~how:"explicit state restore";
      t.spans <- spans_of_flat ckpt.Checkpoint.degraded;
      t.degraded_left <- ckpt.Checkpoint.degraded_left;
      t
  | _ ->
      (* deterministic prefix replay: rebuild from (alg, epsilon, seed,
         instance) and re-serve the stored prefix through the same
         accounting *)
      let t =
        make_engine ~strict ~accounting ?sanitize ~epsilon:ckpt.Checkpoint.epsilon
          ~alg:ckpt.Checkpoint.alg ~seed:ckpt.Checkpoint.seed inst online
      in
      let m = Array.length ckpt.Checkpoint.prefix in
      if Array.length ckpt.Checkpoint.degraded = 0 then begin
        (* replay through the batched path: byte-identical to per-request
           ingest by the Online.batch contract, and sharded across domains
           for algorithms that support it, so long prefixes resume faster *)
        let chunk = 8192 in
        let at = ref 0 in
        while !at < m do
          let len = Stdlib.min chunk (m - !at) in
          ignore (ingest_batch t (Array.sub ckpt.Checkpoint.prefix !at len));
          at := !at + len
        done
      end
      else begin
        (* span-aware replay: positions the live run served on the frozen
           never-move path are replayed frozen, everything else through
           the solver — the exact call sequence of the original run *)
        let spans = ckpt.Checkpoint.degraded in
        let nspans = Array.length spans / 2 in
        let si = ref 0 in
        let cur_frozen = ref false in
        let play stepper edge =
          if !cur_frozen then Simulator.step_frozen stepper edge
          else Simulator.step stepper edge
        in
        for i = 0 to m - 1 do
          while
            !si < nspans && spans.(2 * !si) + spans.((2 * !si) + 1) <= i
          do
            incr si
          done;
          cur_frozen := !si < nspans && spans.(2 * !si) <= i;
          let e = ckpt.Checkpoint.prefix.(i) in
          ignore (ingest_step t e play e)
        done
      end;
      verify_against ckpt t ~how:"prefix replay";
      t.spans <- spans_of_flat ckpt.Checkpoint.degraded;
      t.degraded_left <- ckpt.Checkpoint.degraded_left;
      Metrics.reset t.metrics;
      t

let decision_to_json d =
  Printf.sprintf
    "{\"type\":\"decision\",\"step\":%d,\"edge\":%d,\"comm\":%d,\"mig\":%d,\
     \"cum_comm\":%d,\"cum_mig\":%d,\"max_load\":%d,\"latency_ns\":%d}"
    d.step d.edge d.comm d.moved d.cum_comm d.cum_mig d.max_load d.latency_ns

let result_to_json t =
  let r = result t in
  Printf.sprintf
    "{\"type\":\"result\",\"alg\":\"%s\",\"requests\":%d,\"comm\":%d,\
     \"mig\":%d,\"total\":%d,\"max_load\":%d,\"violations\":%d}"
    t.alg_name r.Simulator.steps r.Simulator.cost.Cost.comm
    r.Simulator.cost.Cost.mig
    (Cost.total r.Simulator.cost)
    r.Simulator.max_load r.Simulator.capacity_violations
