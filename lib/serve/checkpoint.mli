(** Versioned serving snapshots: everything needed to resume a streaming
    run and to verify the resumption is exact.

    A checkpoint captures the run's {e identity} (algorithm name, epsilon,
    rng seed, instance parameters), its {e position} (number of requests
    served, plus the full served prefix), its {e accounting} (cumulative
    communication/migration, running maximum load, capacity violations),
    its {e state} (the current assignment, plus — when the algorithm
    implements the explicit {!Rbgp_ring.Online.t} snapshot hook — an
    opaque algorithm-state blob) and its {e degradation history} (which
    prefix positions were served on the frozen never-move path, so replay
    reproduces the exact call sequence).

    {!Engine.resume} has two paths, both ending in verification against
    the stored assignment and cost:

    + {b explicit restore}: the algorithm state blob is handed to the
      algorithm's [restore] hook — O(state), no replay;
    + {b deterministic prefix replay}: the algorithm is rebuilt from
      [(name, epsilon, seed, instance)] and the stored prefix is re-served
      through the same accounting — O(prefix), available for {e every}
      registered algorithm because all of them are deterministic functions
      of those four parameters (plus the recorded degraded spans).

    On-disk layout: magic ["RBGC"], varint format version, then a
    Binc-framed record (see the implementation for field order).  Version
    2 appends the degraded-span record and a little-endian CRC-32 trailer
    over all preceding bytes; version 1 files remain readable.  Floats
    travel as ["%h"] hex-float strings, which round-trip exactly.

    {b Durability.}  {!write} routes through
    {!Rbgp_util.Durable.atomic_write} (tmp + fsync + rename + parent-dir
    fsync), so a crash mid-write never leaves a torn file at the
    published path.  {!write_rolling} additionally keeps [keep] rolling
    generations ([path], [path.1], ...), and {!read_latest} falls back
    past torn or corrupt generations to the newest one that verifies. *)

type t = {
  alg : string;
  epsilon : float;
  seed : int;
  n : int;
  ell : int;
  k : int;
  initial : int array;
  pos : int;  (** requests served before the snapshot *)
  prefix : int array;  (** the served requests, length [pos] *)
  comm : int;
  mig : int;
  max_load : int;
  violations : int;
  assignment : int array;  (** assignment after request [pos - 1] *)
  alg_state : string option;  (** explicit algorithm snapshot, if supported *)
  degraded : int array;
      (** flattened [(start, len)] pairs: prefix positions served on the
          frozen never-move path (solver-budget degradation) *)
  degraded_left : int;
      (** remaining frozen requests if the snapshot was taken
          mid-degradation *)
}

val magic : string

val version : int
(** The current (newest writable) format version. *)

val write : path:string -> t -> unit
(** Atomic durable write via {!Rbgp_util.Durable.atomic_write}.  Honours
    the active {!Fault} plan: a planned tear writes truncated bytes
    directly to [path] and raises {!Fault.Injected_crash}; a planned bit
    flip corrupts the serialized record (still written atomically). *)

val write_rolling : path:string -> keep:int -> t -> unit
(** [write_rolling ~path ~keep t] rotates [path -> path.1 -> ...]
    keeping at most [keep] generations, then {!write}s [t] to [path].
    Rotation happens first, so dying between the two steps leaves
    [path.1] as the newest (complete) generation. *)

val read : path:string -> t
(** Raises [Invalid_argument] naming the path on bad magic, unsupported
    version, CRC mismatch or a torn record. *)

type recovery = {
  ckpt : t;
  generation : int;  (** 0 = [path] itself, g = [path.g] *)
  skipped : (string * string) list;
      (** generations that existed but failed verification, newest
          first, with the failure message *)
}

val read_latest : ?generations:int -> path:string -> unit -> recovery
(** Scan [path], [path.1], ... (up to [generations], default 8) and
    return the newest generation that decodes and verifies, recording
    the ones skipped over.  Raises [Invalid_argument] when none does. *)

val verify : path:string -> (t, string) result
(** Full check — magic, version, CRC (v2), field decode, internal
    consistency — as a [result] for the [rbgp checkpoint verify]
    subcommand. *)

val to_string : ?version:int -> t -> string
(** Serialize.  [~version:1] emits the legacy CRC-less layout (rejected
    if [t] carries degradation history) — used by compatibility tests. *)

val of_string : ?path:string -> string -> t

val to_json : t -> string
(** Inspection record for [rbgp checkpoint]: all scalar fields, array
    lengths rather than contents, and whether an explicit state blob is
    present. *)
