(** Versioned serving snapshots: everything needed to resume a streaming
    run and to verify the resumption is exact.

    A checkpoint captures the run's {e identity} (algorithm name, epsilon,
    rng seed, instance parameters), its {e position} (number of requests
    served, plus the full served prefix), its {e accounting} (cumulative
    communication/migration, running maximum load, capacity violations)
    and its {e state} (the current assignment, plus — when the algorithm
    implements the explicit {!Rbgp_ring.Online.t} snapshot hook — an
    opaque algorithm-state blob).

    {!Engine.resume} has two paths, both ending in verification against
    the stored assignment and cost:

    + {b explicit restore}: the algorithm state blob is handed to the
      algorithm's [restore] hook — O(state), no replay;
    + {b deterministic prefix replay}: the algorithm is rebuilt from
      [(name, epsilon, seed, instance)] and the stored prefix is re-served
      through the same accounting — O(prefix), available for {e every}
      registered algorithm because all of them are deterministic functions
      of those four parameters.

    On-disk layout: magic ["RBGC"], varint format version, then a
    Binc-framed record (see the implementation for field order).  Floats
    travel as ["%h"] hex-float strings, which round-trip exactly. *)

type t = {
  alg : string;
  epsilon : float;
  seed : int;
  n : int;
  ell : int;
  k : int;
  initial : int array;
  pos : int;  (** requests served before the snapshot *)
  prefix : int array;  (** the served requests, length [pos] *)
  comm : int;
  mig : int;
  max_load : int;
  violations : int;
  assignment : int array;  (** assignment after request [pos - 1] *)
  alg_state : string option;  (** explicit algorithm snapshot, if supported *)
}

val magic : string
val version : int

val write : path:string -> t -> unit

val read : path:string -> t
(** Raises [Invalid_argument] naming the path on bad magic, unsupported
    version or a torn record. *)

val to_string : t -> string
val of_string : ?path:string -> string -> t

val to_json : t -> string
(** Inspection record for [rbgp checkpoint]: all scalar fields, array
    lengths rather than contents, and whether an explicit state blob is
    present. *)
