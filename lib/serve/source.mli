(** Pull-based request sources for the serving loop: a file, a pipe or
    stdin, in either the text ({!Rbgp_workloads.Trace_io}) or framed
    binary ({!Rbgp_workloads.Trace_codec}) format.

    A source yields one validated edge per {!next} call and [None] at a
    clean end-of-stream, so the serving loop never materializes the trace
    — requests can keep arriving for as long as the producer lives. *)

type t

type format = [ `Auto | `Text | `Binary ]

val of_channel :
  ?path:string -> format:[ `Text | `Binary ] -> n:int -> in_channel -> t
(** Wrap an already-open channel (e.g. stdin).  For [`Binary] the framed
    header is read and validated against [n] immediately.  [`Auto] is not
    available here: distinguishing the formats requires a peek the channel
    cannot take back. *)

val open_file : ?format:format -> n:int -> string -> t
(** Open a trace file; [`Auto] (default) detects the binary magic.  The
    caller must {!close}. *)

val next : t -> int option
(** The next request, validated against [n]; raises [Invalid_argument]
    (naming the path) on malformed input. *)

val header : t -> Rbgp_workloads.Trace_codec.header option
(** The binary header, when the source is framed. *)

val close : t -> unit
(** Closes the underlying channel if this source owns it (i.e. was opened
    by {!open_file}); no-op otherwise. *)
