(** Pull-based request sources for the serving loop: a file, a pipe or
    stdin, in either the text ({!Rbgp_workloads.Trace_io}) or framed
    binary ({!Rbgp_workloads.Trace_codec}) format.

    A source yields one validated edge per {!next} call — or a whole
    block per {!next_batch} call — and reports a clean end-of-stream, so
    the serving loop never materializes the trace.

    Regular binary trace files are mmap'ed by default (see {!open_file}):
    requests are block-decoded straight out of the mapped bytes with no
    per-byte closure calls, no read syscalls and no intermediate copies —
    the zero-copy ingest path behind the BENCH_5 numbers.  Pipes, stdin
    and text traces use the buffered channel readers; both backends
    produce identical request streams and identical errors (the qcheck
    parity suite in [test_util] covers the decoders frame for frame).

    Every pull runs under {!Rbgp_util.Durable.retry_transient}, so
    transient [EINTR]/[EAGAIN] conditions — real, or injected through an
    armed {!Fault} plan's [before_read] hook in the same retried thunk —
    are absorbed with bounded attempts.  Decode errors (torn frames,
    out-of-range edges, injected frame corruption) raise
    [Invalid_argument] naming the path and the absolute byte offset. *)

type t

type format = [ `Auto | `Text | `Binary ]

type mmap = [ `Auto | `On | `Off ]
(** [`Auto] maps regular, non-empty binary files and falls back to the
    channel reader otherwise; [`On] requires the mmap path (raises when
    the file cannot be mapped); [`Off] always streams through a channel. *)

val of_channel :
  ?path:string ->
  ?owns_channel:bool ->
  format:[ `Text | `Binary ] ->
  n:int ->
  in_channel ->
  t
(** Wrap an already-open channel (e.g. stdin).  For [`Binary] the framed
    header is read and validated against [n] immediately; both a header
    parse failure and an [n] mismatch raise [Invalid_argument] naming the
    source's path (default ["<channel>"]), and close the channel first
    when [owns_channel] is [true] (default [false]: the caller keeps
    responsibility for a channel it handed in).  [`Auto] is not available
    here: distinguishing the formats requires a peek the channel cannot
    take back. *)

val open_file : ?format:format -> ?mmap:mmap -> n:int -> string -> t
(** Open a trace file; [`Auto] (default) detects the binary magic.  With
    [mmap:`Auto] (default) a regular binary file is mapped read-only and
    served through the block decoder.  Construction failures never leak
    the underlying descriptor.  The caller must {!close}. *)

val next : t -> int option
(** The next request, validated against [n]; raises [Invalid_argument]
    (naming the path) on malformed input. *)

val next_batch : t -> int array -> limit:int -> int
(** [next_batch t dst ~limit] fills [dst.(0 ..)] with up to [limit]
    requests and returns how many were delivered; [0] only at a clean
    end-of-stream.  On the mmap backend this is one block decode; on a
    channel it loops {!next} (and therefore blocks until [limit] requests
    arrive or the stream ends).  Complete frames before a torn tail are
    delivered, then the next call raises — identical to calling {!next}
    repeatedly.  Raises [Invalid_argument] when [limit] is outside
    [0 .. Array.length dst]. *)

val header : t -> Rbgp_workloads.Trace_codec.header option
(** The binary header, when the source is framed. *)

val kind : t -> [ `Mmap | `Channel ]
(** Which backend this source resolved to (e.g. for logging and tests). *)

val close : t -> unit
(** Closes the underlying channel if this source owns it (i.e. was opened
    by {!open_file}); no-op otherwise.  Mapped regions are reclaimed by
    the GC. *)
