(** The socket transport: a single-threaded, select-driven server
    hosting many tenant engines behind the RBGN/v1 framed protocol
    ({!Proto}), plus the matching client.

    {2 Server}

    One [select] loop owns every file descriptor: the RPC listener, the
    optional HTTP listener, and all accepted connections, each with a
    {!Proto.dechunker} for torn-frame reassembly and an output queue for
    partially-written replies.  Backpressure is per connection: when a
    peer's queued output exceeds a high-water mark the server stops
    {e reading} from that peer until the queue drains below the low-water
    mark — a slow consumer throttles itself, never the other tenants.

    Graceful drain ({!begin_drain}, or a [Shutdown] frame): stop
    accepting, checkpoint and close every tenant ({!Tenant.drain}),
    notify every connection with a [Draining] frame, flush all queues,
    then stop.  {!request_drain} only sets a flag and is async-signal
    safe — CLI signal handlers use it.

    In supervised mode a tenant engine that raises mid-request (most
    importantly {!Fault.Injected_crash} — the PR-7 crash matrix with
    live connections) is killed and reported to its client as a
    resumable [Error_frame]; the server and the other tenants keep
    serving.  Unsupervised, the exception propagates and takes the
    process down, which is what the kill-anywhere recovery tests
    exercise end to end.

    {2 Client}

    Synchronous RPC: one in-flight request per stream, frames parsed
    through the same dechunker.  An optional [pump] callback runs
    whenever the client would block, which lets tests and the bench
    drive an in-process server cooperatively (no second process, no
    domain); against a real server it is simply never needed.
    {!Disconnected} surfaces connection loss so callers can reconnect
    and re-[open_stream] — the server answers with the position to
    resume from. *)

type addr = Unix_sock of string | Tcp of string * int

val parse_addr : string -> addr
(** ["unix:PATH"] or ["tcp:HOST:PORT"]; raises [Invalid_argument]
    otherwise. *)

val addr_to_string : addr -> string

(** {2 Server} *)

type server

val server :
  ?http:addr ->
  ?backlog:int ->
  ?supervise:bool ->
  ?hwm:int ->
  router:Tenant.t ->
  addr ->
  server
(** Bind and listen (both sockets non-blocking; an existing Unix-socket
    path is replaced).  [hwm] is the per-connection output high-water
    mark in bytes (default 256 KiB; the low-water mark is a quarter of
    it).  [supervise] defaults to [false]. *)

val step : ?timeout:float -> server -> bool
(** One select round: accept, read, dispatch frames, flush.  Returns
    [false] once the server has fully stopped.  [timeout] (default 0 —
    poll) bounds the select wait; EINTR counts as an empty round so
    signal-requested drains are noticed promptly. *)

val run : ?timeout:float -> server -> unit
(** [step] until stopped ([timeout] default 0.2s per round). *)

val request_drain : server -> unit
(** Async-signal-safe: ask the next [step] to {!begin_drain}. *)

val begin_drain : server -> unit
(** Checkpoint + close all tenants, notify and flush connections, stop
    accepting; [step] returns [false] once every queue is flushed. *)

val stopped : server -> bool

val shutdown : server -> unit
(** Close every fd and unlink Unix-socket paths (idempotent; called
    automatically when a drain completes). *)

val draining : server -> bool
val connections : server -> int

(** {2 Client} *)

exception Disconnected of string
(** The transport died (EOF, reset, refused).  Reconnect and re-open
    streams to resume. *)

exception Server_error of int * string
(** An [Error_frame] answered the call: ({!Proto} error code, message). *)

type client

val connect : ?pump:(unit -> unit) -> addr -> client
(** Dial, exchange [Hello] frames, verify magic + version.  [pump] runs
    whenever the client would block on the socket. *)

val close : client -> unit

val server_draining : client -> bool
(** Has a [Draining] notice arrived on this connection? *)

val open_stream : client -> stream:int -> Proto.open_payload -> int
(** Bind [stream] to a tenant; returns the position to resume sending
    from (0 = fresh run).  Raises {!Server_error} (config mismatch,
    draining, failed resume) or {!Disconnected}. *)

val request :
  client -> stream:int -> int array -> pos:int -> len:int ->
  Engine.decision array
(** Serve [len] edges starting at [pos]: sends [Req], awaits
    [Decisions]. *)

val request_quiet :
  client -> stream:int -> int array -> pos:int -> len:int ->
  Proto.ack_payload
(** Quiet path: sends [Req_quiet], awaits [Ack]. *)

val checkpoint : client -> stream:int -> int
(** Force a durable checkpoint; returns its position. *)

val close_stream : client -> stream:int -> Proto.closed_payload

val shutdown_server : client -> unit
(** Send [Shutdown] (graceful drain) and wait for the server to close
    the connection. *)
