type addr = Unix_sock of string | Tcp of string * int

let parse_addr s =
  match String.index_opt s ':' with
  | Some i when String.equal (String.sub s 0 i) "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if String.length path = 0 then invalid_arg "Net.parse_addr: empty path";
      Unix_sock path
  | Some i when String.equal (String.sub s 0 i) "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          (match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 -> Tcp (host, p)
          | _ -> invalid_arg "Net.parse_addr: bad port")
      | None -> invalid_arg "Net.parse_addr: tcp:HOST:PORT")
  | _ -> invalid_arg "Net.parse_addr: expected unix:PATH or tcp:HOST:PORT"

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

exception Disconnected of string
exception Server_error of int * string

(* The only raw socket syscalls in the serving tier live in this
   submodule; lint rule r10-net-safety flags Unix I/O calls in lib/serve
   outside it.  Every wrapper retries EINTR, surfaces would-block
   explicitly instead of looping, treats reset/broken-pipe as peer
   departure, and bounds every read by the caller's buffer.  The armed
   {!Fault} plan's transient read errors apply to socket reads exactly
   as they do to trace reads, which is how the crash matrix reaches the
   networked path. *)
module Sockio = struct
  let rec read fd buf off len =
    match
      Fault.before_read ();
      Unix.read fd buf off len
    with
    | 0 -> `Eof
    | n -> `Did n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Would_block
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof

  let rec write fd buf off len =
    match Unix.write fd buf off len with
    | n -> `Did n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write fd buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Would_block
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        `Closed

  let rec accept fd =
    match Unix.accept ~cloexec:true fd with
    | c, _ ->
        Unix.set_nonblock c;
        Some c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        None

  (* EINTR yields an empty round instead of a retry so the caller's loop
     re-checks its drain/stop flags — a signal must be able to interrupt
     a sleeping server. *)
  let select rfds wfds timeout =
    match Unix.select rfds wfds [] timeout with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])

  let close_fd fd =
    match Unix.close fd with
    | () -> ()
    | exception Unix.Unix_error (_, _, _) -> ()

  let unlink_quiet path =
    match Unix.unlink path with
    | () -> ()
    | exception Unix.Unix_error (_, _, _) -> ()

  let resolve host =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list; _ } when Array.length h_addr_list > 0 ->
            h_addr_list.(0)
        | _ | (exception Not_found) ->
            invalid_arg (Printf.sprintf "Net: cannot resolve %S" host))

  let sockaddr_of = function
    | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (resolve host, port))

  let listen_on addr backlog =
    let domain, sa = sockaddr_of addr in
    (match addr with
    | Unix_sock path -> unlink_quiet path
    | Tcp _ -> ());
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    (match addr with
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix_sock _ -> ());
    Unix.bind fd sa;
    Unix.listen fd backlog;
    Unix.set_nonblock fd;
    fd

  let dial addr =
    let domain, sa = sockaddr_of addr in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    (match Unix.connect fd sa with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
        close_fd fd;
        raise
          (Disconnected
             (Printf.sprintf "connect %s: %s" (addr_to_string addr)
                (Unix.error_message e))));
    Unix.set_nonblock fd;
    fd
end

(* Per-connection output queue: bytes accepted eagerly, drained by the
   select loop as the peer allows.  Same grow/compact discipline as the
   protocol dechunker. *)
module Outbuf = struct
  type t = { mutable buf : bytes; mutable start : int; mutable len : int }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0 }
  let length t = t.len

  let add_string t s =
    let slen = String.length s in
    let cap = Bytes.length t.buf in
    if t.start + t.len + slen > cap then begin
      if t.len + slen <= cap then begin
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' =
          let rec grow c = if c >= t.len + slen then c else grow (2 * c) in
          grow (2 * cap)
        in
        let nb = Bytes.create cap' in
        Bytes.blit t.buf t.start nb 0 t.len;
        t.buf <- nb;
        t.start <- 0
      end
    end;
    Bytes.blit_string s 0 t.buf (t.start + t.len) slen;
    t.len <- t.len + slen

  let consume t n =
    t.start <- t.start + n;
    t.len <- t.len - n;
    if t.len = 0 then t.start <- 0
end

type kind = Rpc | Http

type conn = {
  fd : Unix.file_descr;
  kind : kind;
  dec : Proto.dechunker;
  http_buf : Buffer.t;
  out : Outbuf.t;
  streams : (int, Tenant.tenant) Hashtbl.t;
  mutable greeted : bool;
  mutable closing : bool;  (** flush the queue, then close *)
  mutable dead : bool;  (** remove at the end of this step *)
  mutable throttled : bool;  (** above HWM: reads paused until LWM *)
}

type server = {
  router : Tenant.t;
  supervise : bool;
  hwm : int;
  lwm : int;
  lfd : Unix.file_descr;
  hfd : Unix.file_descr option;
  unix_paths : string list;
  rdbuf : bytes;
  mutable conns : conn list;
  mutable draining_ : bool;
  mutable drain_req : bool;
  mutable stopped_ : bool;
  mutable closed : bool;
}

let server ?http ?(backlog = 64) ?(supervise = false) ?(hwm = 256 * 1024)
    ~router addr =
  if hwm < 4096 then invalid_arg "Net.server: hwm";
  let lfd = Sockio.listen_on addr backlog in
  let hfd =
    match http with Some a -> Some (Sockio.listen_on a 16) | None -> None
  in
  let unix_paths =
    List.filter_map
      (fun a ->
        match a with Some (Unix_sock p) -> Some p | Some (Tcp _) | None -> None)
      [ Some addr; http ]
  in
  {
    router;
    supervise;
    hwm;
    lwm = hwm / 4;
    lfd;
    hfd;
    unix_paths;
    rdbuf = Bytes.create 65536;
    conns = [];
    draining_ = false;
    drain_req = false;
    stopped_ = false;
    closed = false;
  }

let stopped s = s.stopped_
let draining s = s.draining_
let connections s = List.length s.conns
let request_drain s = s.drain_req <- true

let send_frame conn ~stream op payload =
  Outbuf.add_string conn.out (Proto.frame_to_string ~stream op payload)

let send_error conn ~stream ~code msg =
  let b = Buffer.create (String.length msg + 8) in
  Proto.add_error b ~code msg;
  send_frame conn ~stream Proto.Error_frame (Buffer.contents b)

let hello_payload () =
  let b = Buffer.create 8 in
  Proto.add_hello b;
  Buffer.contents b

(* Engine exceptions a supervised server absorbs by killing the tenant:
   the same named set the CLI supervisor restarts on.  Anything else is
   a programming error and takes the process down in either mode. *)
let handle_req server conn (f : Proto.frame) tn quiet =
  let router = server.router in
  match
    if quiet then begin
      let edges = Proto.read_req f.payload in
      Tenant.serve_quiet router tn edges;
      (match Tenant.engine tn with
      | Some e ->
          let r = Engine.result e in
          let b = Buffer.create 24 in
          Proto.add_ack b
            {
              Proto.count = Array.length edges;
              pos = Engine.pos e;
              cum_comm = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.comm;
              cum_mig = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.mig;
              ack_max_load = r.Rbgp_ring.Simulator.max_load;
              violations = r.Rbgp_ring.Simulator.capacity_violations;
            };
          send_frame conn ~stream:f.stream Proto.Ack (Buffer.contents b)
      | None -> failwith "tenant engine vanished mid-request")
    end
    else begin
      let edges = Proto.read_req f.payload in
      let start_pos = Tenant.pos tn in
      let ds = Tenant.serve router tn edges in
      let b = Buffer.create ((Array.length ds * 12) + 16) in
      Proto.add_decisions b ~start_pos ds;
      send_frame conn ~stream:f.stream Proto.Decisions (Buffer.contents b)
    end
  with
  | () -> ()
  | exception
      (( Fault.Injected_crash _ | Failure _ | Invalid_argument _
       | Sys_error _ | End_of_file ) as e)
    when server.supervise ->
      let msg = Printexc.to_string e in
      Tenant.kill router tn msg;
      send_error conn ~stream:f.stream ~code:Proto.err_tenant_failed msg

let handle_frame server conn (f : Proto.frame) =
  match f.op with
  | Proto.Hello ->
      let peer_version = Proto.read_hello f.payload in
      if peer_version <> Proto.version then begin
        send_error conn ~stream:0 ~code:Proto.err_proto
          (Printf.sprintf "version %d unsupported" peer_version);
        conn.closing <- true
      end
      else begin
        conn.greeted <- true;
        send_frame conn ~stream:0 Proto.Hello (hello_payload ())
      end
  | _ when not conn.greeted ->
      send_error conn ~stream:0 ~code:Proto.err_proto "hello first";
      conn.closing <- true
  | Proto.Shutdown -> server.drain_req <- true
  | Proto.Open_stream -> (
      if f.stream = 0 then
        send_error conn ~stream:0 ~code:Proto.err_proto "stream 0 is control"
      else if server.draining_ then
        send_error conn ~stream:f.stream ~code:Proto.err_draining "draining"
      else
        let o = Proto.read_open f.payload in
        match Tenant.open_tenant server.router o with
        | Ok (tn, pos) ->
            Hashtbl.replace conn.streams f.stream tn;
            let b = Buffer.create 8 in
            Proto.add_opened b ~pos;
            send_frame conn ~stream:f.stream Proto.Opened (Buffer.contents b)
        | Error (code, msg) -> send_error conn ~stream:f.stream ~code msg)
  | Proto.Req | Proto.Req_quiet | Proto.Ckpt | Proto.Close_stream -> (
      match Hashtbl.find_opt conn.streams f.stream with
      | None ->
          send_error conn ~stream:f.stream ~code:Proto.err_unknown_stream
            (Printf.sprintf "stream %d not open" f.stream)
      | Some tn -> (
          match f.op with
          | Proto.Req -> handle_req server conn f tn false
          | Proto.Req_quiet -> handle_req server conn f tn true
          | Proto.Ckpt ->
              let pos = Tenant.checkpoint_now server.router tn in
              let b = Buffer.create 8 in
              Proto.add_ckpt_ok b ~pos;
              send_frame conn ~stream:f.stream Proto.Ckpt_ok
                (Buffer.contents b)
          | _ ->
              let payload = Tenant.close server.router tn in
              Hashtbl.remove conn.streams f.stream;
              let b = Buffer.create 16 in
              Proto.add_closed b payload;
              send_frame conn ~stream:f.stream Proto.Closed
                (Buffer.contents b)))
  | Proto.Opened | Proto.Decisions | Proto.Ack | Proto.Ckpt_ok
  | Proto.Closed | Proto.Error_frame | Proto.Draining ->
      send_error conn ~stream:f.stream ~code:Proto.err_proto
        (Printf.sprintf "%s is a server-side opcode" (Proto.op_name f.op));
      conn.closing <- true

let rec dispatch_frames server conn =
  if not (conn.closing || conn.dead) then begin
    match Proto.next conn.dec with
    | Some f ->
        handle_frame server conn f;
        dispatch_frames server conn
    | None -> ()
  end

let ingest_rpc server conn n =
  Proto.feed conn.dec server.rdbuf 0 n;
  match dispatch_frames server conn with
  | () -> ()
  | exception Proto.Protocol_error msg ->
      send_error conn ~stream:0 ~code:Proto.err_proto msg;
      conn.closing <- true

let ingest_http server conn n =
  Buffer.add_subbytes conn.http_buf server.rdbuf 0 n;
  if Buffer.length conn.http_buf > Http.max_request_bytes then begin
    Outbuf.add_string conn.out
      (Http.response ~status:431 ~content_type:"text/plain" "too large\n");
    conn.closing <- true
  end
  else begin
    let req = Buffer.contents conn.http_buf in
    if Http.request_complete req then begin
      Outbuf.add_string conn.out
        (Http.handle ~router:server.router ~draining:server.draining_ req);
      conn.closing <- true
    end
  end

let read_conn server conn =
  match Sockio.read conn.fd server.rdbuf 0 (Bytes.length server.rdbuf) with
  | `Eof -> conn.dead <- true
  | `Would_block -> ()
  | `Did n -> (
      match conn.kind with
      | Rpc -> ingest_rpc server conn n
      | Http -> ingest_http server conn n)

let flush_conn conn =
  let rec go () =
    if conn.out.Outbuf.len > 0 then begin
      let chunk = min conn.out.Outbuf.len 65536 in
      match
        Sockio.write conn.fd conn.out.Outbuf.buf conn.out.Outbuf.start chunk
      with
      | `Did n ->
          Outbuf.consume conn.out n;
          go ()
      | `Would_block -> ()
      | `Closed -> conn.dead <- true
    end
  in
  go ();
  if conn.closing && Outbuf.length conn.out = 0 then conn.dead <- true

let close_conn conn =
  Sockio.close_fd conn.fd;
  conn.dead <- true

let shutdown s =
  if not s.closed then begin
    s.closed <- true;
    Sockio.close_fd s.lfd;
    (match s.hfd with Some fd -> Sockio.close_fd fd | None -> ());
    List.iter close_conn s.conns;
    s.conns <- [];
    List.iter Sockio.unlink_quiet s.unix_paths;
    s.stopped_ <- true
  end

let begin_drain s =
  if not s.draining_ then begin
    s.draining_ <- true;
    s.drain_req <- false;
    Tenant.drain s.router;
    List.iter
      (fun conn ->
        (match conn.kind with
        | Rpc -> send_frame conn ~stream:0 Proto.Draining ""
        | Http -> ());
        conn.closing <- true)
      s.conns
  end

let make_conn kind fd =
  {
    fd;
    kind;
    dec = Proto.dechunker ();
    http_buf = Buffer.create 256;
    out = Outbuf.create ();
    streams = Hashtbl.create 4;
    greeted = (match kind with Http -> true | Rpc -> false);
    closing = false;
    dead = false;
    throttled = false;
  }

let rec accept_all s kind fd =
  match Sockio.accept fd with
  | Some c ->
      s.conns <- make_conn kind c :: s.conns;
      accept_all s kind fd
  | None -> ()

let step ?(timeout = 0.0) s =
  if s.stopped_ then false
  else begin
    if s.drain_req then begin_drain s;
    (* Backpressure with hysteresis: a connection whose output queue
       crosses the high-water mark leaves the read set and only rejoins
       once the queue drains below the low-water mark — a slow reader
       throttles only itself, and the latch prevents read/flush
       flapping right at the mark. *)
    let rfds = ref [] and wfds = ref [] in
    if not s.draining_ then begin
      rfds := s.lfd :: !rfds;
      match s.hfd with Some fd -> rfds := fd :: !rfds | None -> ()
    end;
    List.iter
      (fun conn ->
        if not conn.dead then begin
          let queued = Outbuf.length conn.out in
          if conn.throttled && queued <= s.lwm then conn.throttled <- false;
          if (not conn.throttled) && queued >= s.hwm then
            conn.throttled <- true;
          if (not conn.closing) && not conn.throttled then
            rfds := conn.fd :: !rfds;
          if queued > 0 then wfds := conn.fd :: !wfds
        end)
      s.conns;
    let ready_r, ready_w = Sockio.select !rfds !wfds timeout in
    if List.memq s.lfd ready_r then accept_all s Rpc s.lfd;
    (match s.hfd with
    | Some fd -> if List.memq fd ready_r then accept_all s Http fd
    | None -> ());
    List.iter
      (fun conn ->
        if (not conn.dead) && List.memq conn.fd ready_r then
          read_conn s conn)
      s.conns;
    List.iter
      (fun conn ->
        if
          (not conn.dead)
          && (List.memq conn.fd ready_w || Outbuf.length conn.out > 0)
        then flush_conn conn)
      s.conns;
    let dead, live = List.partition (fun conn -> conn.dead) s.conns in
    List.iter (fun conn -> Sockio.close_fd conn.fd) dead;
    s.conns <- live;
    if s.draining_ && (match s.conns with [] -> true | _ :: _ -> false) then
      shutdown s;
    not s.stopped_
  end

let run ?(timeout = 0.2) s =
  let continue = ref true in
  while !continue do
    continue := step ~timeout s
  done

(* ---- client ---------------------------------------------------------- *)

type client = {
  cfd : Unix.file_descr;
  cdec : Proto.dechunker;
  cbuf : bytes;
  pump : (unit -> unit) option;
  mutable srv_draining : bool;
  mutable cclosed : bool;
}

let op_eq a b = Proto.op_to_int a = Proto.op_to_int b

let client_wait_readable c =
  match c.pump with
  | Some pump -> pump ()
  | None -> ignore (Sockio.select [ c.cfd ] [] 1.0)

let client_wait_writable c =
  match c.pump with
  | Some pump -> pump ()
  | None -> ignore (Sockio.select [] [ c.cfd ] 1.0)

let send_all c s =
  let b = Bytes.unsafe_of_string s in
  let total = String.length s in
  let rec go off =
    if off < total then begin
      match Sockio.write c.cfd b off (total - off) with
      | `Did n -> go (off + n)
      | `Would_block ->
          client_wait_writable c;
          go off
      | `Closed -> raise (Disconnected "peer closed while writing")
    end
  in
  go 0

let rec recv_frame c =
  match Proto.next c.cdec with
  | Some f -> f
  | None -> (
      match Sockio.read c.cfd c.cbuf 0 (Bytes.length c.cbuf) with
      | `Did n ->
          Proto.feed c.cdec c.cbuf 0 n;
          recv_frame c
      | `Eof -> raise (Disconnected "server closed the connection")
      | `Would_block ->
          client_wait_readable c;
          recv_frame c)

(* Synchronous RPC: exactly one request in flight, so the next frame on
   our stream is the answer.  Control-stream frames (drain notices,
   connection-level errors) are absorbed along the way. *)
let rec await c ~stream expect =
  let f = recv_frame c in
  if f.Proto.stream = stream && op_eq f.Proto.op expect then f
  else if op_eq f.Proto.op Proto.Error_frame then begin
    let code, msg = Proto.read_error f.Proto.payload in
    raise (Server_error (code, msg))
  end
  else if f.Proto.stream = 0 && op_eq f.Proto.op Proto.Draining then begin
    c.srv_draining <- true;
    await c ~stream expect
  end
  else
    raise
      (Proto.Protocol_error
         (Printf.sprintf "unexpected %s frame on stream %d"
            (Proto.op_name f.Proto.op) f.Proto.stream))

let connect ?pump addr =
  let fd = Sockio.dial addr in
  let c =
    {
      cfd = fd;
      cdec = Proto.dechunker ();
      cbuf = Bytes.create 65536;
      pump;
      srv_draining = false;
      cclosed = false;
    }
  in
  send_all c (Proto.frame_to_string ~stream:0 Proto.Hello (hello_payload ()));
  let f = await c ~stream:0 Proto.Hello in
  let v = Proto.read_hello f.Proto.payload in
  if v <> Proto.version then
    raise
      (Proto.Protocol_error (Printf.sprintf "server speaks version %d" v));
  c

let close c =
  if not c.cclosed then begin
    c.cclosed <- true;
    Sockio.close_fd c.cfd
  end

let server_draining c = c.srv_draining

let open_stream c ~stream (o : Proto.open_payload) =
  let b = Buffer.create 64 in
  Proto.add_open b o;
  send_all c (Proto.frame_to_string ~stream Proto.Open_stream (Buffer.contents b));
  let f = await c ~stream Proto.Opened in
  Proto.read_opened f.Proto.payload

let request c ~stream edges ~pos ~len =
  let b = Buffer.create (len * 3) in
  Proto.add_req b edges ~pos ~len;
  send_all c (Proto.frame_to_string ~stream Proto.Req (Buffer.contents b));
  let f = await c ~stream Proto.Decisions in
  let _start, ds = Proto.read_decisions f.Proto.payload in
  ds

let request_quiet c ~stream edges ~pos ~len =
  let b = Buffer.create (len * 3) in
  Proto.add_req b edges ~pos ~len;
  send_all c (Proto.frame_to_string ~stream Proto.Req_quiet (Buffer.contents b));
  let f = await c ~stream Proto.Ack in
  Proto.read_ack f.Proto.payload

let checkpoint c ~stream =
  send_all c (Proto.frame_to_string ~stream Proto.Ckpt "");
  let f = await c ~stream Proto.Ckpt_ok in
  Proto.read_ckpt_ok f.Proto.payload

let close_stream c ~stream =
  send_all c (Proto.frame_to_string ~stream Proto.Close_stream "");
  let f = await c ~stream Proto.Closed in
  Proto.read_closed f.Proto.payload

let shutdown_server c =
  send_all c (Proto.frame_to_string ~stream:0 Proto.Shutdown "");
  let rec drainloop () =
    match recv_frame c with
    | _ -> drainloop ()
    | exception Disconnected _ -> ()
  in
  drainloop ();
  close c
