module Rng = Rbgp_util.Rng

type spec = {
  name : string;
  build : epsilon:float -> seed:int -> Rbgp_ring.Instance.t -> Rbgp_ring.Online.t;
}

let dynamic_with solver name =
  {
    name;
    build =
      (fun ~epsilon ~seed inst ->
        Rbgp_core.Dynamic_alg.online
          (Rbgp_core.Dynamic_alg.create ~mts:solver ~epsilon inst
             (Rng.create seed)));
  }

let all =
  [
    dynamic_with Rbgp_mts.Smin_mw.solver "onl-dynamic";
    {
      name = "onl-static";
      build =
        (fun ~epsilon ~seed inst ->
          Rbgp_core.Static_alg.online
            (Rbgp_core.Static_alg.create ~epsilon inst (Rng.create seed)));
    };
    dynamic_with Rbgp_mts.Work_function.solver "dyn/wfa";
    dynamic_with Rbgp_mts.Hst_mts.solver "dyn/hst-mw";
    dynamic_with Rbgp_mts.Marking.solver "dyn/marking";
    {
      name = "never-move";
      build = (fun ~epsilon:_ ~seed:_ inst -> Rbgp_baselines.Baselines.never_move inst);
    };
    {
      name = "greedy-colocate";
      build =
        (fun ~epsilon:_ ~seed:_ inst ->
          Rbgp_baselines.Baselines.greedy_colocate inst);
    };
    {
      name = "counter-threshold";
      build =
        (fun ~epsilon ~seed:_ inst ->
          Rbgp_baselines.Baselines.counter_threshold ~epsilon inst);
    };
    {
      name = "component-learning";
      build =
        (fun ~epsilon:_ ~seed:_ inst ->
          Rbgp_baselines.Baselines.component_learning inst);
    };
  ]

let names = List.map (fun s -> s.name) all

let find name =
  match List.find_opt (fun s -> String.equal s.name name) all with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.find: unknown algorithm %S (known: %s)" name
           (String.concat ", " names))
