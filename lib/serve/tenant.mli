(** The tenant router: many independent serving engines in one process,
    each an (instance × algorithm) run with its own rolling durable
    checkpoints and its own {!Metrics}.

    A {e tenant} is identified by a client-chosen id ([[A-Za-z0-9._-]],
    at most 64 bytes) and configured by [(alg, n, ell, epsilon, seed)] —
    the engine determinism parameters.  The router owns the lifecycle:

    {v
                 Open_stream               Close_stream
       (absent) ------------> Serving --------------------> Closed
                                |  ^                          |
                 engine raised  |  | Open_stream              | Open_stream
                 (supervised)   v  |   (resume from ckpt)     v
                              Dead ----------------------> Serving
    v}

    - [Serving]: live engine.  A second [Open_stream] with the {e same}
      configuration re-binds to it at its current position (this is the
      client reconnect path); a different configuration is a
      config-mismatch error.
    - [Closed]: final checkpoint written, engine released.  Re-opening
      resumes from the newest verifiable checkpoint generation.
    - [Dead]: the engine raised mid-request under supervision.  The
      in-memory engine is discarded; re-opening resumes from the last
      durable checkpoint (or in-memory snapshot when the router has no
      checkpoint directory), replaying the verified prefix — the PR-7
      crash matrix extended to kill-anywhere-with-live-connections.

    Checkpoints roll per tenant at [dir/<id>.ckpt] via
    {!Checkpoint.write_rolling}/{!Checkpoint.read_latest} on a
    request-count cadence, plus on demand ([Ckpt] frames), at close and
    at drain. *)

type t
(** The router. *)

type tenant
(** One tenant slot.  Handles stay valid across [Dead]/re-open cycles —
    the slot, not the engine, is the identity. *)

type state = Serving | Closed | Dead of string

val create :
  ?checkpoint_dir:string ->
  ?checkpoint_every:int ->
  ?checkpoint_keep:int ->
  ?accounting:Rbgp_ring.Simulator.accounting ->
  ?sanitize:bool ->
  unit ->
  t
(** [checkpoint_every] (default 0 = only explicit/close/drain
    checkpoints) is the rolling cadence in requests; [checkpoint_keep]
    (default 3) the generations kept.  Without [checkpoint_dir] nothing
    is durable, but close/kill still snapshot in memory so re-opening
    resumes exactly within the process lifetime. *)

val valid_id : string -> bool

val open_tenant :
  t -> Proto.open_payload -> (tenant * int, int * string) result
(** Bind (or re-bind) a tenant.  [Ok (tenant, pos)] carries the position
    to resume from: [0] for a fresh run, the checkpointed position after
    [Closed]/[Dead], the live position when re-binding a [Serving]
    tenant.  [Error (code, msg)] uses the {!Proto} error codes
    ([err_config_mismatch], [err_proto] for a bad id or unknown
    algorithm, [err_tenant_failed] when a resume attempt itself fails). *)

val serve : t -> tenant -> int array -> Engine.decision array
(** {!Engine.ingest_batch} plus the rolling-checkpoint cadence.  Raises
    [Failure] if the tenant is not [Serving]; engine exceptions (including
    {!Fault.Injected_crash}) propagate to the caller, which decides
    between {!kill} (supervised) and dying (unsupervised). *)

val serve_quiet : t -> tenant -> int array -> unit
(** {!Engine.ingest_batch_quiet} plus the same cadence. *)

val checkpoint_now : t -> tenant -> int
(** Snapshot immediately (rolling write when a directory is configured);
    returns the checkpointed position. *)

val close : t -> tenant -> Proto.closed_payload
(** Final checkpoint, release the engine, state [Closed].  Returns the
    run totals for the [Closed] frame. *)

val kill : t -> tenant -> string -> unit
(** Supervised failure: discard the engine, state [Dead reason].  The
    last durable (or in-memory) checkpoint is untouched — that is what a
    re-open resumes from. *)

val drain : t -> unit
(** Checkpoint and close every [Serving] tenant (graceful shutdown). *)

val find : t -> string -> tenant option
val tenants : t -> tenant list
(** All tenants, sorted by id — the deterministic order of every
    observability surface. *)

val id : tenant -> string
val state : tenant -> state
val config : tenant -> Proto.open_payload
val pos : tenant -> int
(** Current engine position; for [Closed]/[Dead] tenants, the position
    of the snapshot a re-open would resume from. *)

val engine : tenant -> Engine.t option
val metrics_snapshot : tenant -> Metrics.snapshot option
(** [None] only before the first open ever completes. *)

val ckpt_age_s : tenant -> float option
(** Seconds since the last completed checkpoint ([None] before the
    first) — the per-tenant staleness gauge behind the HTTP
    checkpoint-age endpoint. *)

val ckpt_path : t -> tenant -> string option
