(** RBGN/v1: the framed binary wire protocol of the networked serving
    tier.

    Every frame is [stream varint · op varint · payload-length varint ·
    payload bytes].  The stream id routes the frame to a tenant bound by
    a prior {!Open_stream} on the same connection (stream [0] is the
    connection-control stream: hello, shutdown, drain notices).  Payloads
    are themselves varint-packed with {!Rbgp_util.Binc}, the same codec
    the RBGT/v1 trace format and RBGC checkpoints use.

    Socket reads deliver arbitrary byte boundaries, so decoding goes
    through a {!dechunker} that parks torn frames — the discipline the
    mmap/channel {!Source} readers already follow: complete frames are
    delivered, an incomplete tail is retained until more bytes arrive,
    and only impossible input (varint overflow, oversized payload)
    raises. *)

exception Protocol_error of string
(** Corrupt or hostile input: varint longer than 63 bits, unknown
    opcode, payload over {!max_payload}, bad hello magic.  Never raised
    for merely-incomplete input. *)

val magic : string
(** ["RBGN"] *)

val version : int

val max_payload : int
(** Hard upper bound on a frame payload (16 MiB).  A length field above
    this raises {!Protocol_error} before any allocation, so a corrupt or
    hostile length prefix cannot trigger an unbounded read. *)

(** {2 Opcodes} *)

type op =
  | Hello  (** c→s, stream 0: magic + protocol version *)
  | Open_stream  (** c→s: bind a stream id to a tenant configuration *)
  | Req  (** c→s: batch of ring requests; server replies {!Decisions} *)
  | Req_quiet  (** c→s: batch on the quiet path; server replies {!Ack} *)
  | Ckpt  (** c→s: force a durable checkpoint now *)
  | Close_stream  (** c→s: final checkpoint + release the stream id *)
  | Shutdown  (** c→s, stream 0: drain and stop the server *)
  | Opened  (** s→c: stream bound; payload carries the resume position *)
  | Decisions  (** s→c: per-request decisions for one {!Req} batch *)
  | Ack  (** s→c: aggregate totals for one {!Req_quiet} batch *)
  | Ckpt_ok  (** s→c: checkpoint durable at the carried position *)
  | Closed  (** s→c: stream released; payload carries final totals *)
  | Error_frame  (** s→c: error code + message (see error codes below) *)
  | Draining  (** s→c, stream 0: server is draining; no new opens *)

val op_to_int : op -> int
val op_of_int : int -> op
(** Raises {!Protocol_error} on an unknown opcode. *)

val op_name : op -> string

(** {2 Error codes carried by [Error_frame]} *)

val err_proto : int  (** 1 — malformed frame or payload *)

val err_unknown_stream : int  (** 2 — frame for a stream never opened *)

val err_tenant_failed : int
(** 3 — the tenant's engine died (supervised mode); re-open to resume
    from its last durable checkpoint *)

val err_config_mismatch : int
(** 4 — [Open_stream] config disagrees with the live tenant or its
    checkpoint *)

val err_draining : int  (** 5 — server is draining; no new work *)

(** {2 Frames} *)

type frame = { stream : int; op : op; payload : string }

val add_frame : Buffer.t -> stream:int -> op -> string -> unit
(** Append one encoded frame. *)

val frame_to_string : stream:int -> op -> string -> string

(** {2 Incremental decoding: the dechunker} *)

type dechunker
(** Reassembles frames from arbitrarily-split byte arrivals.  Feed it
    whatever a socket read returned; pull complete frames with {!next}.
    A torn frame (header or payload) is parked until completed by later
    feeds — byte boundaries are invisible in the frame sequence. *)

val dechunker : unit -> dechunker

val feed : dechunker -> bytes -> int -> int -> unit
(** [feed d buf off len] appends [len] bytes starting at [off]. *)

val feed_string : dechunker -> string -> unit

val next : dechunker -> frame option
(** The next complete frame, or [None] if the buffered bytes end in a
    torn frame (or are empty).  Raises {!Protocol_error} on input no
    completion could repair. *)

val pending_bytes : dechunker -> int
(** Bytes buffered but not yet delivered as frames (parked tail). *)

(** {2 Payload codecs}

    Encoders append to a [Buffer.t]; decoders read a payload string and
    raise {!Protocol_error} on truncated or trailing bytes. *)

val add_hello : Buffer.t -> unit
val read_hello : string -> int
(** Returns the peer's protocol version; raises on bad magic. *)

type open_payload = {
  tenant : string;  (** tenant id, [[A-Za-z0-9._-]{1,64}] *)
  alg : string;
  n : int;
  ell : int;
  epsilon : float;
  seed : int;
}

val add_open : Buffer.t -> open_payload -> unit
val read_open : string -> open_payload

val add_req : Buffer.t -> int array -> pos:int -> len:int -> unit
(** Payload is [len] consecutive edge varints from [pos] — identical to
    the RBGT/v1 request framing, so a trace block can be re-framed
    without re-encoding. *)

val read_req : string -> int array

val add_opened : Buffer.t -> pos:int -> unit
val read_opened : string -> int

val add_decisions : Buffer.t -> start_pos:int -> Engine.decision array -> unit
val read_decisions : string -> int * Engine.decision array
(** Steps are reconstructed from the carried start position, so the
    per-decision wire cost is edge/comm/moved/cumulative-totals/latency
    varints only. *)

type ack_payload = {
  count : int;
  pos : int;
  cum_comm : int;
  cum_mig : int;
  ack_max_load : int;
  violations : int;
}

val add_ack : Buffer.t -> ack_payload -> unit
val read_ack : string -> ack_payload

val add_ckpt_ok : Buffer.t -> pos:int -> unit
val read_ckpt_ok : string -> int

type closed_payload = {
  closed_pos : int;
  closed_comm : int;
  closed_mig : int;
  closed_max_load : int;
  closed_violations : int;
}

val add_closed : Buffer.t -> closed_payload -> unit
val read_closed : string -> closed_payload

val add_error : Buffer.t -> code:int -> string -> unit
val read_error : string -> int * string
