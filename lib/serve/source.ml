module Trace_io = Rbgp_workloads.Trace_io
module Trace_codec = Rbgp_workloads.Trace_codec
module Binc = Rbgp_util.Binc
module Durable = Rbgp_util.Durable

type format = [ `Auto | `Text | `Binary ]
type mmap = [ `Auto | `On | `Off ]

(* Two backends, one contract.  [Channel] pulls framed or text requests
   through a (possibly blocking) in_channel — the only option for pipes
   and stdin.  [Mapped] decodes straight out of the mmap'ed file bytes:
   no per-byte closure calls, no read syscalls on the hot path, and
   next_batch amortizes even the per-request dispatch into one block
   decode per batch. *)
type backend =
  | Channel of { next_req : unit -> int option; ic : in_channel; owns : bool }
  | Mapped of { region : Binc.region; path : string }

type t = {
  backend : backend;
  hdr : Trace_codec.header option;
  n : int;
  path : string;
}

let fail ~path fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Source: %s: %s" path msg))
    fmt

let check_header ~path ~n (hdr : Trace_codec.header) =
  if hdr.Trace_codec.n <> n then
    fail ~path "binary trace is for n = %d, expected n = %d"
      hdr.Trace_codec.n n

(* Each channel pull runs inside [Durable.retry_transient] with the fault
   layer's [before_read] hook in the same thunk: a transient EINTR/EAGAIN
   — real or injected — is retried with bounded attempts before it
   surfaces.  The retried thunk is built once per source, not per pull. *)
let wrap_reads next_req =
  let raw () =
    Fault.before_read ();
    next_req ()
  in
  fun () -> Durable.retry_transient raw

let of_channel ?(path = "<channel>") ?(owns_channel = false) ~format ~n ic =
  (* every construction failure (header parse, n mismatch) releases the
     channel when this source was to own it — not just the open_file
     wrapper *)
  let build () =
    match format with
    | `Text ->
        let lineno = ref 0 in
        {
          backend =
            Channel
              {
                next_req =
                  wrap_reads (fun () ->
                      Trace_io.input_request_opt ~path ~lineno ic ~n);
                ic;
                owns = owns_channel;
              };
          hdr = None;
          n;
          path;
        }
    | `Binary ->
        let hdr = Trace_codec.input_header ~path ic in
        check_header ~path ~n hdr;
        {
          backend =
            Channel
              {
                next_req =
                  wrap_reads (fun () ->
                      Trace_codec.input_request_opt ~path ic ~n);
                ic;
                owns = owns_channel;
              };
          hdr = Some hdr;
          n;
          path;
        }
  in
  match build () with
  | src -> src
  | exception e ->
      if owns_channel then close_in_noerr ic;
      raise e

let map_file ~n path =
  let region = Trace_codec.map path in
  let hdr = Trace_codec.header_of_region ~path region in
  check_header ~path ~n hdr;
  { backend = Mapped { region; path }; hdr = Some hdr; n; path }

let open_file ?(format = `Auto) ?(mmap = `Auto) ~n path =
  let format =
    match format with
    | (`Text | `Binary) as f -> f
    | `Auto -> if Trace_codec.looks_binary ~path then `Binary else `Text
  in
  match (format, mmap) with
  | `Binary, `On -> map_file ~n path
  | `Binary, `Auto when Trace_codec.can_map ~path -> map_file ~n path
  | `Binary, (`Auto | `Off) | `Text, _ ->
      of_channel ~path ~owns_channel:true ~format ~n (open_in_bin path)

(* An injected frame corruption must surface exactly like a real decode
   failure, so mangled values are re-validated here with an offset-bearing
   message. *)
let check_injected t e =
  if e < 0 || e >= t.n then
    fail ~path:t.path "injected corruption: edge %d out of [0, %d)" e t.n;
  e

let revalidate_batch t dst got =
  for j = 0 to got - 1 do
    if dst.(j) < 0 || dst.(j) >= t.n then
      fail ~path:t.path
        "injected corruption: edge %d out of [0, %d) at batch index %d"
        dst.(j) t.n j
  done

let next t =
  match t.backend with
  | Channel c ->
      let r = c.next_req () in
      if Fault.armed () then
        Option.map (fun e -> check_injected t (Fault.mangle_one e)) r
      else r
  | Mapped m ->
      if Fault.armed () then
        let r =
          Durable.retry_transient (fun () ->
              Fault.before_read ();
              Trace_codec.region_request_opt ~path:m.path m.region ~n:t.n)
        in
        Option.map (fun e -> check_injected t (Fault.mangle_one e)) r
      else Trace_codec.region_request_opt ~path:m.path m.region ~n:t.n

let next_batch t dst ~limit =
  if limit < 0 || limit > Array.length dst then
    fail ~path:t.path "next_batch: bad limit %d (buffer holds %d)" limit
      (Array.length dst);
  match t.backend with
  | Mapped m ->
      if Fault.armed () then begin
        let got =
          Durable.retry_transient (fun () ->
              Fault.before_read ();
              Trace_codec.decode_requests_into ~path:m.path m.region ~n:t.n
                dst ~limit)
        in
        if Fault.mangle_batch dst ~got then revalidate_batch t dst got;
        got
      end
      else
        Trace_codec.decode_requests_into ~path:m.path m.region ~n:t.n dst
          ~limit
  | Channel c ->
      let got = ref 0 in
      let continue = ref (!got < limit) in
      while !continue do
        match c.next_req () with
        | Some e ->
            dst.(!got) <- e;
            incr got;
            continue := !got < limit
        | None -> continue := false
      done;
      if Fault.armed () && Fault.mangle_batch dst ~got:!got then
        revalidate_batch t dst !got;
      !got

let header t = t.hdr

let kind t =
  match t.backend with Channel _ -> `Channel | Mapped _ -> `Mmap

let close t =
  match t.backend with
  | Channel c -> if c.owns then close_in_noerr c.ic
  | Mapped _ -> ()
