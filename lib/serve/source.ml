module Trace_io = Rbgp_workloads.Trace_io
module Trace_codec = Rbgp_workloads.Trace_codec

type format = [ `Auto | `Text | `Binary ]

type t = {
  next_req : unit -> int option;
  hdr : Trace_codec.header option;
  ic : in_channel;
  owns_channel : bool;
}

let of_channel ?(path = "<channel>") ~format ~n ic =
  match format with
  | `Text ->
      let lineno = ref 0 in
      {
        next_req = (fun () -> Trace_io.input_request_opt ~path ~lineno ic ~n);
        hdr = None;
        ic;
        owns_channel = false;
      }
  | `Binary ->
      let hdr = Trace_codec.input_header ~path ic in
      if hdr.Trace_codec.n <> n then
        invalid_arg
          (Printf.sprintf
             "Source: %s: binary trace is for n = %d, expected n = %d" path
             hdr.Trace_codec.n n);
      {
        next_req = (fun () -> Trace_codec.input_request_opt ~path ic ~n);
        hdr = Some hdr;
        ic;
        owns_channel = false;
      }

let open_file ?(format = `Auto) ~n path =
  let format =
    match format with
    | (`Text | `Binary) as f -> f
    | `Auto -> if Trace_codec.looks_binary ~path then `Binary else `Text
  in
  let ic = open_in_bin path in
  match of_channel ~path ~format ~n ic with
  | src -> { src with owns_channel = true }
  | exception e ->
      close_in_noerr ic;
      raise e

let next t = t.next_req ()
let header t = t.hdr
let close t = if t.owns_channel then close_in_noerr t.ic
