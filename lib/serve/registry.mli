(** The serving layer's algorithm registry: every algorithm that can be
    driven by an unbounded request stream, buildable from
    [(name, epsilon, seed, instance)] alone.

    This is the closure the checkpoint format is defined over: a snapshot
    names its algorithm, and {!Engine.resume} rebuilds it through this
    registry, so everything here must be a deterministic function of the
    four parameters.  The batch-only [static-oracle] baseline is absent by
    construction — it needs the whole future trace at build time, which a
    stream cannot provide. *)

type spec = {
  name : string;
  build : epsilon:float -> seed:int -> Rbgp_ring.Instance.t -> Rbgp_ring.Online.t;
}

val all : spec list
(** The paper's two algorithms, the MTS-solver variants of the dynamic
    one, and the streamable baselines. *)

val names : string list

val find : string -> spec
(** Raises [Invalid_argument] listing the known names. *)
