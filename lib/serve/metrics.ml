let nbuckets = 63

type t = {
  buckets : int array;
  mutable requests : int;
  mutable comm : int;
  mutable mig : int;
  mutable max_load : int;
  mutable lat_sum_ns : float;
  mutable t0 : float;
  mutable degraded : int;
  mutable recovered : int;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    requests = 0;
    comm = 0;
    mig = 0;
    max_load = 0;
    lat_sum_ns = 0.0;
    t0 = Unix.gettimeofday ();
    degraded = 0;
    recovered = 0;
  }

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.requests <- 0;
  t.comm <- 0;
  t.mig <- 0;
  t.max_load <- 0;
  t.lat_sum_ns <- 0.0;
  t.t0 <- Unix.gettimeofday ();
  t.degraded <- 0;
  t.recovered <- 0

let bucket_of ns =
  if ns <= 1 then 0
  else
    let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
    min (nbuckets - 1) (go 0 ns)

let observe t ~latency_ns ~comm ~moved ~max_load =
  let latency_ns = max 0 latency_ns in
  t.buckets.(bucket_of latency_ns) <- t.buckets.(bucket_of latency_ns) + 1;
  t.requests <- t.requests + 1;
  t.comm <- t.comm + comm;
  t.mig <- t.mig + moved;
  if max_load > t.max_load then t.max_load <- max_load;
  t.lat_sum_ns <- t.lat_sum_ns +. float_of_int latency_ns

(* Aggregate record for the engine's quiet batch path: [count] requests
   that together took [latency_ns] and charged [comm]/[mig].  Per-request
   timestamps were never taken — that is the point of the quiet path — so
   the histogram gets [count] entries at the batch's mean latency. *)
let observe_batch t ~count ~latency_ns ~comm ~mig ~max_load =
  if count > 0 then begin
    let latency_ns = max 0 latency_ns in
    let b = bucket_of (latency_ns / count) in
    t.buckets.(b) <- t.buckets.(b) + count;
    t.requests <- t.requests + count;
    t.comm <- t.comm + comm;
    t.mig <- t.mig + mig;
    if max_load > t.max_load then t.max_load <- max_load;
    t.lat_sum_ns <- t.lat_sum_ns +. float_of_int latency_ns
  end

(* Solver-budget degradation accounting: [note_degraded] counts requests
   served on the frozen never-move path, [note_recovered] counts
   re-promotions back to the real solver after a quiet interval. *)
let note_degraded ?(count = 1) t = t.degraded <- t.degraded + count
let note_recovered t = t.recovered <- t.recovered + 1

let requests t = t.requests
let comm t = t.comm
let mig t = t.mig
let max_load t = t.max_load
let degraded t = t.degraded
let recovered t = t.recovered

let elapsed_s t = Unix.gettimeofday () -. t.t0

let rps t =
  if t.requests = 0 then 0.0
  else
    let dt = elapsed_s t in
    if dt <= 0.0 then 0.0 else float_of_int t.requests /. dt

let quantile t q =
  if t.requests = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.requests)) in
      max 1 (min t.requests r)
    in
    let acc = ref 0 and found = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= rank then begin
           found := (if i = 0 then 0 else 1 lsl i);
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end

let mean_latency_ns t =
  if t.requests = 0 then 0.0 else t.lat_sum_ns /. float_of_int t.requests

let to_json t =
  Printf.sprintf
    "{\"type\":\"metrics\",\"requests\":%d,\"rps\":%.1f,\"p50_ns\":%d,\
     \"p90_ns\":%d,\"p99_ns\":%d,\"mean_ns\":%.0f,\"comm\":%d,\"mig\":%d,\
     \"max_load\":%d,\"degraded\":%d,\"recovered\":%d,\"elapsed_s\":%.3f}"
    t.requests (rps t) (quantile t 0.5) (quantile t 0.9) (quantile t 0.99)
    (mean_latency_ns t) t.comm t.mig t.max_load t.degraded t.recovered
    (elapsed_s t)

let summary t =
  Printf.sprintf
    "served %d requests in %.2fs (%.0f req/s); ingest latency p50 %dns p90 \
     %dns p99 %dns mean %.0fns; cost comm=%d mig=%d; max load %d; degraded \
     %d (recovered %d)"
    t.requests (elapsed_s t) (rps t) (quantile t 0.5) (quantile t 0.9)
    (quantile t 0.99) (mean_latency_ns t) t.comm t.mig t.max_load t.degraded
    t.recovered
