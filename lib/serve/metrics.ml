let nbuckets = 63

type t = {
  buckets : int array;
  mutable requests : int;
  mutable comm : int;
  mutable mig : int;
  mutable max_load : int;
  mutable lat_sum_ns : float;
  mutable t0 : float;
  mutable degraded : int;
  mutable recovered : int;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    requests = 0;
    comm = 0;
    mig = 0;
    max_load = 0;
    lat_sum_ns = 0.0;
    t0 = Unix.gettimeofday ();
    degraded = 0;
    recovered = 0;
  }

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.requests <- 0;
  t.comm <- 0;
  t.mig <- 0;
  t.max_load <- 0;
  t.lat_sum_ns <- 0.0;
  t.t0 <- Unix.gettimeofday ();
  t.degraded <- 0;
  t.recovered <- 0

(* top-level so [observe] (per-request, r11-patrolled) allocates no
   closure for the loop *)
let rec bucket_loop i v = if v <= 1 then i else bucket_loop (i + 1) (v lsr 1)
let bucket_of ns = if ns <= 1 then 0 else min (nbuckets - 1) (bucket_loop 0 ns)

let observe t ~latency_ns ~comm ~moved ~max_load =
  let latency_ns = max 0 latency_ns in
  let b = bucket_of latency_ns in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.requests <- t.requests + 1;
  t.comm <- t.comm + comm;
  t.mig <- t.mig + moved;
  if max_load > t.max_load then t.max_load <- max_load;
  t.lat_sum_ns <- t.lat_sum_ns +. float_of_int latency_ns

(* Aggregate record for the engine's quiet batch path: [count] requests
   that together took [latency_ns] and charged [comm]/[mig].  Per-request
   timestamps were never taken — that is the point of the quiet path — so
   the histogram gets [count] entries at the batch's mean latency. *)
let observe_batch t ~count ~latency_ns ~comm ~mig ~max_load =
  if count > 0 then begin
    let latency_ns = max 0 latency_ns in
    let b = bucket_of (latency_ns / count) in
    t.buckets.(b) <- t.buckets.(b) + count;
    t.requests <- t.requests + count;
    t.comm <- t.comm + comm;
    t.mig <- t.mig + mig;
    if max_load > t.max_load then t.max_load <- max_load;
    t.lat_sum_ns <- t.lat_sum_ns +. float_of_int latency_ns
  end

(* Solver-budget degradation accounting: [note_degraded] counts requests
   served on the frozen never-move path, [note_recovered] counts
   re-promotions back to the real solver after a quiet interval. *)
let note_degraded ?(count = 1) t = t.degraded <- t.degraded + count
let note_recovered t = t.recovered <- t.recovered + 1

let requests t = t.requests
let comm t = t.comm
let mig t = t.mig
let max_load t = t.max_load
let degraded t = t.degraded
let recovered t = t.recovered

let elapsed_s t = Unix.gettimeofday () -. t.t0

let rps t =
  if t.requests = 0 then 0.0
  else
    let dt = elapsed_s t in
    if dt <= 0.0 then 0.0 else float_of_int t.requests /. dt

(* All rendered surfaces (JSONL record, SIGUSR1 summary, Prometheus
   exposition) are produced from one frozen [snapshot] so the numbers on
   the three surfaces can never disagree about a moving counter. *)
type snapshot = {
  s_requests : int;
  s_comm : int;
  s_mig : int;
  s_max_load : int;
  s_degraded : int;
  s_recovered : int;
  s_lat_sum_ns : float;
  s_elapsed_s : float;
  s_buckets : int array;
}

let snapshot t =
  {
    s_requests = t.requests;
    s_comm = t.comm;
    s_mig = t.mig;
    s_max_load = t.max_load;
    s_degraded = t.degraded;
    s_recovered = t.recovered;
    s_lat_sum_ns = t.lat_sum_ns;
    s_elapsed_s = elapsed_s t;
    s_buckets = Array.copy t.buckets;
  }

let snapshot_requests s = s.s_requests

let snapshot_rps s =
  if s.s_requests = 0 || s.s_elapsed_s <= 0.0 then 0.0
  else float_of_int s.s_requests /. s.s_elapsed_s

let snapshot_quantile s q =
  if s.s_requests = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.s_requests)) in
      max 1 (min s.s_requests r)
    in
    let acc = ref 0 and found = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + s.s_buckets.(i);
         if !acc >= rank then begin
           found := (if i = 0 then 0 else 1 lsl i);
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end

let snapshot_mean_latency_ns s =
  if s.s_requests = 0 then 0.0 else s.s_lat_sum_ns /. float_of_int s.s_requests

let quantile t q = snapshot_quantile (snapshot t) q

let mean_latency_ns t =
  if t.requests = 0 then 0.0 else t.lat_sum_ns /. float_of_int t.requests

let json_of_snapshot s =
  Printf.sprintf
    "{\"type\":\"metrics\",\"requests\":%d,\"rps\":%.1f,\"p50_ns\":%d,\
     \"p90_ns\":%d,\"p99_ns\":%d,\"mean_ns\":%.0f,\"comm\":%d,\"mig\":%d,\
     \"max_load\":%d,\"degraded\":%d,\"recovered\":%d,\"elapsed_s\":%.3f}"
    s.s_requests (snapshot_rps s) (snapshot_quantile s 0.5)
    (snapshot_quantile s 0.9) (snapshot_quantile s 0.99)
    (snapshot_mean_latency_ns s) s.s_comm s.s_mig s.s_max_load s.s_degraded
    s.s_recovered s.s_elapsed_s

let summary_of_snapshot s =
  Printf.sprintf
    "served %d requests in %.2fs (%.0f req/s); ingest latency p50 %dns p90 \
     %dns p99 %dns mean %.0fns; cost comm=%d mig=%d; max load %d; degraded \
     %d (recovered %d)"
    s.s_requests s.s_elapsed_s (snapshot_rps s) (snapshot_quantile s 0.5)
    (snapshot_quantile s 0.9) (snapshot_quantile s 0.99)
    (snapshot_mean_latency_ns s) s.s_comm s.s_mig s.s_max_load s.s_degraded
    s.s_recovered

let to_json t = json_of_snapshot (snapshot t)
let summary t = summary_of_snapshot (snapshot t)

(* Prometheus text exposition (version 0.0.4).  Labels values may hold
   arbitrary tenant ids, so escape per the spec: backslash, double quote
   and newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let render_labels_with buf labels extra_k extra_v =
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_label_value v);
      Buffer.add_string buf "\",")
    labels;
  Buffer.add_string buf extra_k;
  Buffer.add_string buf "=\"";
  Buffer.add_string buf extra_v;
  Buffer.add_string buf "\"}"

let prometheus_exposition ?(namespace = "rbgp") series =
  let buf = Buffer.create 4096 in
  let counter name help value_of =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s_%s %s\n# TYPE %s_%s counter\n" namespace name
         help namespace name);
    List.iter
      (fun (labels, s) ->
        Buffer.add_string buf (Printf.sprintf "%s_%s" namespace name);
        render_labels buf labels;
        Buffer.add_string buf (Printf.sprintf " %d\n" (value_of s)))
      series
  in
  let gauge name help render_value =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s_%s %s\n# TYPE %s_%s gauge\n" namespace name
         help namespace name);
    List.iter
      (fun (labels, s) ->
        Buffer.add_string buf (Printf.sprintf "%s_%s" namespace name);
        render_labels buf labels;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (render_value s);
        Buffer.add_char buf '\n')
      series
  in
  counter "requests_total" "Requests served." (fun s -> s.s_requests);
  counter "comm_cost_total" "Cumulative communication cost." (fun s -> s.s_comm);
  counter "migration_cost_total" "Cumulative migration cost." (fun s ->
      s.s_mig);
  counter "degraded_requests_total"
    "Requests served on the degraded never-move path." (fun s -> s.s_degraded);
  counter "solver_repromotions_total"
    "Re-promotions from the degraded path back to the real solver." (fun s ->
      s.s_recovered);
  gauge "max_load" "Maximum cluster load observed." (fun s ->
      string_of_int s.s_max_load);
  gauge "uptime_seconds" "Seconds since metrics were created or reset."
    (fun s -> Printf.sprintf "%.3f" s.s_elapsed_s);
  (* Latency histogram: bucket [i] of the internal log histogram holds
     latencies in [2^i, 2^{i+1}) ns, so its Prometheus upper bound is
     2^{i+1} ns rendered in seconds.  Cumulative counts per exposition
     convention; the sum is the exact accumulated latency. *)
  Buffer.add_string buf
    (Printf.sprintf
       "# HELP %s_ingest_latency_seconds Ingest latency histogram.\n\
        # TYPE %s_ingest_latency_seconds histogram\n"
       namespace namespace);
  List.iter
    (fun (labels, s) ->
      let cum = ref 0 in
      for i = 0 to nbuckets - 1 do
        cum := !cum + s.s_buckets.(i);
        if s.s_buckets.(i) > 0 then begin
          let le_ns = 2.0 ** float_of_int (i + 1) in
          Buffer.add_string buf
            (Printf.sprintf "%s_ingest_latency_seconds_bucket" namespace);
          render_labels_with buf labels "le"
            (Printf.sprintf "%g" (le_ns *. 1e-9));
          Buffer.add_string buf (Printf.sprintf " %d\n" !cum)
        end
      done;
      Buffer.add_string buf
        (Printf.sprintf "%s_ingest_latency_seconds_bucket" namespace);
      render_labels_with buf labels "le" "+Inf";
      Buffer.add_string buf (Printf.sprintf " %d\n" s.s_requests);
      Buffer.add_string buf
        (Printf.sprintf "%s_ingest_latency_seconds_sum" namespace);
      render_labels buf labels;
      Buffer.add_string buf (Printf.sprintf " %.9g\n" (s.s_lat_sum_ns *. 1e-9));
      Buffer.add_string buf
        (Printf.sprintf "%s_ingest_latency_seconds_count" namespace);
      render_labels buf labels;
      Buffer.add_string buf (Printf.sprintf " %d\n" s.s_requests))
    series;
  Buffer.contents buf
