type state = Serving | Closed | Dead of string

type tenant = {
  tid : string;
  cfg : Proto.open_payload;
  mutable engine : Engine.t option;
  mutable st : state;
  mutable snap_pos : int;  (** resume position while the engine is gone *)
  mutable mem_ckpt : Checkpoint.t option;  (** newest snapshot, in memory *)
  mutable last_ckpt_pos : int;
  mutable last_ckpt_at : float option;
  mutable last_metrics : Metrics.snapshot option;
}

type t = {
  dir : string option;
  every : int;
  keep : int;
  accounting : Rbgp_ring.Simulator.accounting option;
  sanitize : bool option;
  slots : (string, tenant) Hashtbl.t;
}

let create ?checkpoint_dir ?(checkpoint_every = 0) ?(checkpoint_keep = 3)
    ?accounting ?sanitize () =
  if checkpoint_every < 0 then invalid_arg "Tenant.create: checkpoint_every";
  if checkpoint_keep < 1 then invalid_arg "Tenant.create: checkpoint_keep";
  {
    dir = checkpoint_dir;
    every = checkpoint_every;
    keep = checkpoint_keep;
    accounting;
    sanitize;
    slots = Hashtbl.create 16;
  }

let valid_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  &&
  let ok = ref true in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | _ -> ok := false)
    s;
  !ok

let id tn = tn.tid
let state tn = tn.st
let config tn = tn.cfg
let engine tn = tn.engine

let pos tn =
  match tn.engine with Some e -> Engine.pos e | None -> tn.snap_pos

let metrics_snapshot tn =
  match tn.engine with
  | Some e -> Some (Metrics.snapshot (Engine.metrics e))
  | None -> tn.last_metrics

(* Wall clock, observability only: the checkpoint-age gauge never feeds
   back into serving decisions, so determinism is untouched. *)
let now () = Unix.gettimeofday ()

let ckpt_age_s tn =
  match tn.last_ckpt_at with Some at -> Some (now () -. at) | None -> None

let path_for t tid =
  match t.dir with
  | Some dir -> Some (Filename.concat dir (tid ^ ".ckpt"))
  | None -> None

let ckpt_path t tn = path_for t tn.tid

let find t tid = Hashtbl.find_opt t.slots tid

let tenants t =
  Hashtbl.fold (fun _ tn acc -> tn :: acc) t.slots []
  |> List.sort (fun a b -> String.compare a.tid b.tid)

let config_eq (a : Proto.open_payload) (b : Proto.open_payload) =
  String.equal a.alg b.alg && a.n = b.n && a.ell = b.ell && a.seed = b.seed
  && Float.equal a.epsilon b.epsilon

let ckpt_matches (ck : Checkpoint.t) (o : Proto.open_payload) =
  String.equal ck.alg o.alg && ck.n = o.n && ck.ell = o.ell
  && ck.seed = o.seed
  && Float.equal ck.epsilon o.epsilon

let checkpoint_now t tn =
  match tn.engine with
  | None -> tn.snap_pos
  | Some e ->
      let ck = Engine.checkpoint e in
      (match path_for t tn.tid with
      | Some path -> Checkpoint.write_rolling ~path ~keep:t.keep ck
      | None -> ());
      tn.mem_ckpt <- Some ck;
      tn.last_ckpt_pos <- ck.Checkpoint.pos;
      tn.last_ckpt_at <- Some (now ());
      ck.Checkpoint.pos

(* Rolling cadence on request counts, same boundary rule as the CLI
   serve loop: a checkpoint lands whenever the batch crosses a multiple
   of [every]. *)
let maybe_roll t tn ~before ~after =
  if t.every > 0 && after / t.every > before / t.every then
    ignore (checkpoint_now t tn)

let serve t tn edges =
  match (tn.st, tn.engine) with
  | Serving, Some e ->
      let before = Engine.pos e in
      let ds = Engine.ingest_batch e edges in
      maybe_roll t tn ~before ~after:(Engine.pos e);
      ds
  | _ -> failwith (Printf.sprintf "tenant %s is not serving" tn.tid)

let serve_quiet t tn edges =
  match (tn.st, tn.engine) with
  | Serving, Some e ->
      let before = Engine.pos e in
      Engine.ingest_batch_quiet e edges;
      maybe_roll t tn ~before ~after:(Engine.pos e);
      ()
  | _ -> failwith (Printf.sprintf "tenant %s is not serving" tn.tid)

let closed_payload_of tn =
  match tn.engine with
  | Some e ->
      let r = Engine.result e in
      {
        Proto.closed_pos = Engine.pos e;
        closed_comm = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.comm;
        closed_mig = r.Rbgp_ring.Simulator.cost.Rbgp_ring.Cost.mig;
        closed_max_load = r.Rbgp_ring.Simulator.max_load;
        closed_violations = r.Rbgp_ring.Simulator.capacity_violations;
      }
  | None -> (
      match tn.mem_ckpt with
      | Some ck ->
          {
            Proto.closed_pos = ck.Checkpoint.pos;
            closed_comm = ck.Checkpoint.comm;
            closed_mig = ck.Checkpoint.mig;
            closed_max_load = ck.Checkpoint.max_load;
            closed_violations = ck.Checkpoint.violations;
          }
      | None ->
          {
            Proto.closed_pos = tn.snap_pos;
            closed_comm = 0;
            closed_mig = 0;
            closed_max_load = 0;
            closed_violations = 0;
          })

let close t tn =
  match tn.engine with
  | Some e ->
      ignore (checkpoint_now t tn);
      let payload = closed_payload_of tn in
      tn.last_metrics <- Some (Metrics.snapshot (Engine.metrics e));
      tn.snap_pos <- Engine.pos e;
      tn.engine <- None;
      tn.st <- Closed;
      payload
  | None ->
      tn.st <- Closed;
      closed_payload_of tn

let kill _t tn reason =
  (match tn.engine with
  | Some e -> tn.last_metrics <- Some (Metrics.snapshot (Engine.metrics e))
  | None -> ());
  tn.engine <- None;
  tn.snap_pos <- tn.last_ckpt_pos;
  tn.st <- Dead reason

let drain t =
  List.iter
    (fun tn -> match tn.st with Serving -> ignore (close t tn) | _ -> ())
    (tenants t)

let make_engine t (o : Proto.open_payload) =
  let inst = Rbgp_ring.Instance.blocks ~n:o.n ~ell:o.ell in
  Engine.create ?accounting:t.accounting ?sanitize:t.sanitize
    ~epsilon:o.epsilon ~alg:o.alg ~seed:o.seed inst

(* A durable generation to resume from, if any survives verification.
   [read_latest] already falls back past torn/corrupt generations;
   [Invalid_argument] here means every generation failed, which callers
   treat the same as nothing on disk (the in-memory snapshot, then a
   fresh start, are next in line). *)
let disk_ckpt t tid =
  match path_for t tid with
  | None -> None
  | Some path ->
      if not (Sys.file_exists path || Sys.file_exists (path ^ ".1")) then None
      else begin
        match Checkpoint.read_latest ~path () with
        | rec_ -> Some rec_.Checkpoint.ckpt
        | exception Invalid_argument _ -> None
      end

let install_engine tn e =
  tn.engine <- Some e;
  tn.st <- Serving;
  tn.snap_pos <- Engine.pos e

(* Resume a Closed/Dead slot (or adopt a previous process's checkpoint
   for a brand-new id): newest durable generation first, then the
   in-memory snapshot, then a fresh engine at position 0. *)
let revive t tn (o : Proto.open_payload) =
  let from_ckpt ck =
    if not (ckpt_matches ck o) then
      Error
        ( Proto.err_config_mismatch,
          Printf.sprintf "tenant %s: checkpoint was %s n=%d ell=%d seed=%d"
            tn.tid ck.Checkpoint.alg ck.Checkpoint.n ck.Checkpoint.ell
            ck.Checkpoint.seed )
    else begin
      match Engine.resume ?accounting:t.accounting ?sanitize:t.sanitize ck with
      | e ->
          install_engine tn e;
          tn.last_ckpt_pos <- ck.Checkpoint.pos;
          tn.mem_ckpt <- Some ck;
          Ok (tn, Engine.pos e)
      | exception Failure m -> Error (Proto.err_tenant_failed, m)
      | exception Invalid_argument m -> Error (Proto.err_tenant_failed, m)
    end
  in
  match disk_ckpt t tn.tid with
  | Some ck -> from_ckpt ck
  | None -> (
      match tn.mem_ckpt with
      | Some ck -> from_ckpt ck
      | None -> (
          match make_engine t o with
          | e ->
              install_engine tn e;
              Ok (tn, 0)
          | exception Invalid_argument m -> Error (Proto.err_proto, m)))

let open_tenant t (o : Proto.open_payload) =
  if not (valid_id o.tenant) then
    Error (Proto.err_proto, Printf.sprintf "bad tenant id %S" o.tenant)
  else begin
    match Hashtbl.find_opt t.slots o.tenant with
    | Some tn -> (
        if not (config_eq tn.cfg o) then
          Error
            ( Proto.err_config_mismatch,
              Printf.sprintf "tenant %s already configured as %s n=%d ell=%d"
                tn.tid tn.cfg.Proto.alg tn.cfg.Proto.n tn.cfg.Proto.ell )
        else
          match tn.st with
          | Serving -> Ok (tn, pos tn)
          | Closed | Dead _ -> revive t tn o)
    | None ->
        let tn =
          {
            tid = o.tenant;
            cfg = o;
            engine = None;
            st = Closed;
            snap_pos = 0;
            mem_ckpt = None;
            last_ckpt_pos = 0;
            last_ckpt_at = None;
            last_metrics = None;
          }
        in
        let r = revive t tn o in
        (match r with Ok _ -> Hashtbl.replace t.slots o.tenant tn | Error _ -> ());
        r
  end
