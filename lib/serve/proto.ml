exception Protocol_error of string

let magic = "RBGN"
let version = 1
let max_payload = 16 * 1024 * 1024

type op =
  | Hello
  | Open_stream
  | Req
  | Req_quiet
  | Ckpt
  | Close_stream
  | Shutdown
  | Opened
  | Decisions
  | Ack
  | Ckpt_ok
  | Closed
  | Error_frame
  | Draining

let op_to_int = function
  | Hello -> 1
  | Open_stream -> 2
  | Req -> 3
  | Req_quiet -> 4
  | Ckpt -> 5
  | Close_stream -> 6
  | Shutdown -> 7
  | Opened -> 8
  | Decisions -> 9
  | Ack -> 10
  | Ckpt_ok -> 11
  | Closed -> 12
  | Error_frame -> 13
  | Draining -> 14

let op_of_int = function
  | 1 -> Hello
  | 2 -> Open_stream
  | 3 -> Req
  | 4 -> Req_quiet
  | 5 -> Ckpt
  | 6 -> Close_stream
  | 7 -> Shutdown
  | 8 -> Opened
  | 9 -> Decisions
  | 10 -> Ack
  | 11 -> Ckpt_ok
  | 12 -> Closed
  | 13 -> Error_frame
  | 14 -> Draining
  | n -> raise (Protocol_error (Printf.sprintf "unknown opcode %d" n))

let op_name = function
  | Hello -> "hello"
  | Open_stream -> "open"
  | Req -> "req"
  | Req_quiet -> "req-quiet"
  | Ckpt -> "ckpt"
  | Close_stream -> "close"
  | Shutdown -> "shutdown"
  | Opened -> "opened"
  | Decisions -> "decisions"
  | Ack -> "ack"
  | Ckpt_ok -> "ckpt-ok"
  | Closed -> "closed"
  | Error_frame -> "error"
  | Draining -> "draining"

let err_proto = 1
let err_unknown_stream = 2
let err_tenant_failed = 3
let err_config_mismatch = 4
let err_draining = 5

type frame = { stream : int; op : op; payload : string }

let add_frame buf ~stream op payload =
  let len = String.length payload in
  if len > max_payload then
    raise (Protocol_error (Printf.sprintf "payload %d over limit" len));
  Rbgp_util.Binc.add_varint buf stream;
  Rbgp_util.Binc.add_varint buf (op_to_int op);
  Rbgp_util.Binc.add_varint buf len;
  Buffer.add_string buf payload

let frame_to_string ~stream op payload =
  let buf = Buffer.create (String.length payload + 12) in
  add_frame buf ~stream op payload;
  Buffer.contents buf

(* The dechunker keeps undelivered bytes in [buf.(start .. start+len)];
   [feed] appends (compacting or growing first) and [next] parses frames
   off the front.  A frame whose header or payload runs past the
   buffered bytes is a torn frame: [next] returns [None] and leaves the
   cursor untouched, exactly the parking discipline of the mmap/channel
   trace readers. *)
type dechunker = { mutable buf : bytes; mutable start : int; mutable len : int }

let dechunker () = { buf = Bytes.create 4096; start = 0; len = 0 }

let feed d src off len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Proto.feed";
  let cap = Bytes.length d.buf in
  if d.start + d.len + len > cap then begin
    if d.len + len <= cap then begin
      Bytes.blit d.buf d.start d.buf 0 d.len;
      d.start <- 0
    end
    else begin
      let cap' =
        let rec grow c = if c >= d.len + len then c else grow (2 * c) in
        grow (2 * cap)
      in
      let nb = Bytes.create cap' in
      Bytes.blit d.buf d.start nb 0 d.len;
      d.buf <- nb;
      d.start <- 0
    end
  end;
  Bytes.blit src off d.buf (d.start + d.len) len;
  d.len <- d.len + len

let feed_string d s =
  feed d (Bytes.unsafe_of_string s) 0 (String.length s)

let pending_bytes d = d.len

(* Incremental LEB128 parse at [pos] relative to the undelivered window:
   [`Got (value, bytes_consumed)] or [`Torn] when the varint runs past
   the buffered bytes.  Over 10 bytes can never complete into a 63-bit
   varint, so that raises rather than parks. *)
let parse_varint d pos =
  let rec go i shift acc =
    if i >= 10 then raise (Protocol_error "varint over 63 bits")
    else if pos + i >= d.len then `Torn
    else begin
      let b = Char.code (Bytes.get d.buf (d.start + pos + i)) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then `Got (acc, i + 1) else go (i + 1) (shift + 7) acc
    end
  in
  go 0 0 0

let next d =
  match parse_varint d 0 with
  | `Torn -> None
  | `Got (stream, c1) -> (
      match parse_varint d c1 with
      | `Torn -> None
      | `Got (opn, c2) -> (
          let op = op_of_int opn in
          match parse_varint d (c1 + c2) with
          | `Torn -> None
          | `Got (plen, c3) ->
              if plen < 0 || stream < 0 then
                raise (Protocol_error "negative header field");
              if plen > max_payload then
                raise
                  (Protocol_error (Printf.sprintf "payload %d over limit" plen));
              let hdr = c1 + c2 + c3 in
              if d.len < hdr + plen then None
              else begin
                let payload =
                  Bytes.sub_string d.buf (d.start + hdr) plen
                in
                d.start <- d.start + hdr + plen;
                d.len <- d.len - hdr - plen;
                if d.len = 0 then d.start <- 0;
                Some { stream; op; payload }
              end))

(* Payload codecs.  Decoders wrap Binc's [Invalid_argument] (truncated
   input) into [Protocol_error] so connection handlers distinguish a bad
   peer from a programming error, and reject trailing bytes the same way
   checkpoint decoding does. *)

let reader_of payload = Rbgp_util.Binc.reader payload

let finish r what =
  if not (Rbgp_util.Binc.at_end r) then
    raise (Protocol_error (Printf.sprintf "%s: trailing bytes" what))

let decode what f payload =
  match f (reader_of payload) with
  | v -> v
  | exception Invalid_argument m ->
      raise (Protocol_error (Printf.sprintf "%s: %s" what m))

let add_hello buf =
  Buffer.add_string buf magic;
  Rbgp_util.Binc.add_varint buf version

let read_hello payload =
  if
    String.length payload < 4
    || not (String.equal (String.sub payload 0 4) magic)
  then raise (Protocol_error "bad hello magic");
  match
    let r = Rbgp_util.Binc.reader ~pos:4 payload in
    let v = Rbgp_util.Binc.read_varint r in
    finish r "hello";
    v
  with
  | v -> v
  | exception Invalid_argument m ->
      raise (Protocol_error (Printf.sprintf "hello: %s" m))

type open_payload = {
  tenant : string;
  alg : string;
  n : int;
  ell : int;
  epsilon : float;
  seed : int;
}

let add_open buf (o : open_payload) =
  Rbgp_util.Binc.add_string buf o.tenant;
  Rbgp_util.Binc.add_string buf o.alg;
  Rbgp_util.Binc.add_varint buf o.n;
  Rbgp_util.Binc.add_varint buf o.ell;
  (* Hex float round-trips bit-exactly through the decimal-free path, so
     both sides agree on epsilon to the last bit. *)
  Rbgp_util.Binc.add_string buf (Printf.sprintf "%h" o.epsilon);
  Rbgp_util.Binc.add_zigzag buf o.seed

let read_open payload =
  decode "open"
    (fun r ->
      let tenant = Rbgp_util.Binc.read_string r in
      let alg = Rbgp_util.Binc.read_string r in
      let n = Rbgp_util.Binc.read_varint r in
      let ell = Rbgp_util.Binc.read_varint r in
      let eps_s = Rbgp_util.Binc.read_string r in
      let epsilon =
        match float_of_string_opt eps_s with
        | Some f -> f
        | None -> raise (Protocol_error "open: bad epsilon")
      in
      let seed = Rbgp_util.Binc.read_zigzag r in
      finish r "open";
      { tenant; alg; n; ell; epsilon; seed })
    payload

let add_req buf edges ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length edges then
    invalid_arg "Proto.add_req";
  for i = pos to pos + len - 1 do
    Rbgp_util.Binc.add_varint buf edges.(i)
  done

let read_req payload =
  decode "req"
    (fun r ->
      let cap = ref (Array.make 64 0) in
      let n = ref 0 in
      while not (Rbgp_util.Binc.at_end r) do
        if !n = Array.length !cap then begin
          let b = Array.make (2 * !n) 0 in
          Array.blit !cap 0 b 0 !n;
          cap := b
        end;
        !cap.(!n) <- Rbgp_util.Binc.read_varint r;
        incr n
      done;
      Array.sub !cap 0 !n)
    payload

let add_opened buf ~pos = Rbgp_util.Binc.add_varint buf pos

let read_opened payload =
  decode "opened"
    (fun r ->
      let pos = Rbgp_util.Binc.read_varint r in
      finish r "opened";
      pos)
    payload

let add_decisions buf ~start_pos (ds : Engine.decision array) =
  Rbgp_util.Binc.add_varint buf start_pos;
  Rbgp_util.Binc.add_varint buf (Array.length ds);
  Array.iter
    (fun (d : Engine.decision) ->
      Rbgp_util.Binc.add_varint buf d.edge;
      Rbgp_util.Binc.add_varint buf d.comm;
      Rbgp_util.Binc.add_varint buf d.moved;
      Rbgp_util.Binc.add_varint buf d.cum_comm;
      Rbgp_util.Binc.add_varint buf d.cum_mig;
      Rbgp_util.Binc.add_varint buf d.max_load;
      Rbgp_util.Binc.add_varint buf d.latency_ns)
    ds

let read_decisions payload =
  decode "decisions"
    (fun r ->
      let start_pos = Rbgp_util.Binc.read_varint r in
      let count = Rbgp_util.Binc.read_varint r in
      if count > max_payload then
        raise (Protocol_error "decisions: count over limit");
      let ds =
        Array.init count (fun i ->
            let edge = Rbgp_util.Binc.read_varint r in
            let comm = Rbgp_util.Binc.read_varint r in
            let moved = Rbgp_util.Binc.read_varint r in
            let cum_comm = Rbgp_util.Binc.read_varint r in
            let cum_mig = Rbgp_util.Binc.read_varint r in
            let max_load = Rbgp_util.Binc.read_varint r in
            let latency_ns = Rbgp_util.Binc.read_varint r in
            {
              Engine.step = start_pos + i;
              edge;
              comm;
              moved;
              cum_comm;
              cum_mig;
              max_load;
              latency_ns;
            })
      in
      finish r "decisions";
      (start_pos, ds))
    payload

type ack_payload = {
  count : int;
  pos : int;
  cum_comm : int;
  cum_mig : int;
  ack_max_load : int;
  violations : int;
}

let add_ack buf (a : ack_payload) =
  Rbgp_util.Binc.add_varint buf a.count;
  Rbgp_util.Binc.add_varint buf a.pos;
  Rbgp_util.Binc.add_varint buf a.cum_comm;
  Rbgp_util.Binc.add_varint buf a.cum_mig;
  Rbgp_util.Binc.add_varint buf a.ack_max_load;
  Rbgp_util.Binc.add_varint buf a.violations

let read_ack payload =
  decode "ack"
    (fun r ->
      let count = Rbgp_util.Binc.read_varint r in
      let pos = Rbgp_util.Binc.read_varint r in
      let cum_comm = Rbgp_util.Binc.read_varint r in
      let cum_mig = Rbgp_util.Binc.read_varint r in
      let ack_max_load = Rbgp_util.Binc.read_varint r in
      let violations = Rbgp_util.Binc.read_varint r in
      finish r "ack";
      { count; pos; cum_comm; cum_mig; ack_max_load; violations })
    payload

let add_ckpt_ok buf ~pos = Rbgp_util.Binc.add_varint buf pos

let read_ckpt_ok payload =
  decode "ckpt-ok"
    (fun r ->
      let pos = Rbgp_util.Binc.read_varint r in
      finish r "ckpt-ok";
      pos)
    payload

type closed_payload = {
  closed_pos : int;
  closed_comm : int;
  closed_mig : int;
  closed_max_load : int;
  closed_violations : int;
}

let add_closed buf (c : closed_payload) =
  Rbgp_util.Binc.add_varint buf c.closed_pos;
  Rbgp_util.Binc.add_varint buf c.closed_comm;
  Rbgp_util.Binc.add_varint buf c.closed_mig;
  Rbgp_util.Binc.add_varint buf c.closed_max_load;
  Rbgp_util.Binc.add_varint buf c.closed_violations

let read_closed payload =
  decode "closed"
    (fun r ->
      let closed_pos = Rbgp_util.Binc.read_varint r in
      let closed_comm = Rbgp_util.Binc.read_varint r in
      let closed_mig = Rbgp_util.Binc.read_varint r in
      let closed_max_load = Rbgp_util.Binc.read_varint r in
      let closed_violations = Rbgp_util.Binc.read_varint r in
      finish r "closed";
      { closed_pos; closed_comm; closed_mig; closed_max_load; closed_violations })
    payload

let add_error buf ~code msg =
  Rbgp_util.Binc.add_varint buf code;
  Rbgp_util.Binc.add_string buf msg

let read_error payload =
  decode "error"
    (fun r ->
      let code = Rbgp_util.Binc.read_varint r in
      let msg = Rbgp_util.Binc.read_string r in
      finish r "error";
      (code, msg))
    payload
