(* Deterministic, plan-driven fault injection for the serve stack.

   A fault plan is a comma-separated spec (CLI [--faults] or the
   [RBGP_FAULTS] environment variable), e.g.

     ckpt-tear@3,read-eintr:0.01,solver-stall@5000

   Supported items:

     crash@N             raise [Injected_crash] before serving request N
     ckpt-tear@N[:K]     tear the Nth checkpoint write (1-based): only the
                         first K bytes (default len/2) reach the final
                         path, then the process "dies" ([Injected_crash])
     ckpt-flip@N         flip one bit of the Nth checkpoint write's
                         serialized bytes before the (atomic) write
     read-flip@N         corrupt the Nth request delivered by [Source]
                         (sets a high bit, guaranteeing a decode error)
     read-eintr:P        each source read raises EINTR with probability P
     read-eagain:P       likewise EAGAIN
     short-read:P        alias of read-eintr (a short read surfaces as a
                         retryable transient at the frame layer)
     solver-stall@N[:NS] request N's solve is reported NS ns slower
                         (default 1s) to the solver-budget supervisor
     seed=K              seed for the probabilistic draws (default 0x5eed)

   Counted faults (@N) fire exactly once per process: after firing they
   disarm, so a supervised restart that replays past the same index does
   not re-fire them.  Probabilistic faults draw from a seeded [Rng], so
   a fixed plan over a fixed call sequence injects an identical fault
   schedule — the crash-matrix tests rely on this determinism.

   Every hook is a no-op behind a single [!state] match when no plan is
   configured; the quiet ingest path additionally batches its check to
   one call per block, which the bench gates at <2% overhead. *)

exception Injected_crash of string

type plan = {
  rng : Rbgp_util.Rng.t;
  spec : string;
  mutable crash_at : int; (* request index; -1 = none / already fired *)
  mutable ckpt_tear : int; (* 1-based checkpoint-write ordinal; -1 = none *)
  tear_keep : int; (* bytes kept by the tear; -1 = half of the record *)
  mutable ckpt_flip : int; (* 1-based checkpoint-write ordinal; -1 = none *)
  mutable read_flip : int; (* 0-based delivered-request ordinal; -1 = none *)
  read_eintr : float;
  read_eagain : float;
  mutable stall_at : int; (* request index; -1 = none / already fired *)
  stall_ns : int;
  mutable ckpt_writes : int; (* checkpoint writes seen so far *)
  mutable reads : int; (* requests delivered so far *)
}

let state : plan option ref = ref None

let fail spec msg =
  invalid_arg (Printf.sprintf "Fault.configure: %s in %S" msg spec)

(* [name@n] or [name@n:k] — returns (name, n, k option). *)
let parse_at spec item i =
  let name = String.sub item 0 i in
  let rest = String.sub item (i + 1) (String.length item - i - 1) in
  let num s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | _ -> fail spec (Printf.sprintf "bad count %S for %s" s name)
  in
  match String.index_opt rest ':' with
  | None -> (name, num rest, None)
  | Some j ->
    let a = String.sub rest 0 j in
    let b = String.sub rest (j + 1) (String.length rest - j - 1) in
    (name, num a, Some (num b))

let parse spec =
  let crash_at = ref (-1) in
  let ckpt_tear = ref (-1) in
  let tear_keep = ref (-1) in
  let ckpt_flip = ref (-1) in
  let read_flip = ref (-1) in
  let read_eintr = ref 0.0 in
  let read_eagain = ref 0.0 in
  let stall_at = ref (-1) in
  let stall_ns = ref 1_000_000_000 in
  let seed = ref 0x5eed in
  let prob name s =
    match float_of_string_opt s with
    | Some p when p >= 0.0 && p <= 1.0 -> p
    | _ -> fail spec (Printf.sprintf "bad probability %S for %s" s name)
  in
  let parse_item item =
    match String.index_opt item '@' with
    | Some i -> (
      match parse_at spec item i with
      | "crash", n, None -> crash_at := n
      | "ckpt-tear", n, keep ->
        if n = 0 then fail spec "ckpt-tear ordinal is 1-based";
        ckpt_tear := n;
        Option.iter (fun k -> tear_keep := k) keep
      | "ckpt-flip", n, None ->
        if n = 0 then fail spec "ckpt-flip ordinal is 1-based";
        ckpt_flip := n
      | "read-flip", n, None -> read_flip := n
      | "solver-stall", n, ns ->
        stall_at := n;
        Option.iter (fun v -> stall_ns := v) ns
      | name, _, _ -> fail spec (Printf.sprintf "unknown or malformed item %S" name))
    | None -> (
      match String.index_opt item ':' with
      | Some i -> (
        let name = String.sub item 0 i in
        let rest = String.sub item (i + 1) (String.length item - i - 1) in
        match name with
        | "read-eintr" | "short-read" ->
          read_eintr := !read_eintr +. prob name rest
        | "read-eagain" -> read_eagain := prob name rest
        | _ -> fail spec (Printf.sprintf "unknown item %S" name))
      | None -> (
        match String.index_opt item '=' with
        | Some i when String.sub item 0 i = "seed" ->
          let rest = String.sub item (i + 1) (String.length item - i - 1) in
          seed :=
            (match int_of_string_opt rest with
            | Some v -> v
            | None -> fail spec (Printf.sprintf "bad seed %S" rest))
        | _ -> fail spec (Printf.sprintf "unknown item %S" item)))
  in
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> not (String.equal s ""))
  |> List.iter parse_item;
  {
    rng = Rbgp_util.Rng.create !seed;
    spec;
    crash_at = !crash_at;
    ckpt_tear = !ckpt_tear;
    tear_keep = !tear_keep;
    ckpt_flip = !ckpt_flip;
    read_flip = !read_flip;
    read_eintr = !read_eintr;
    read_eagain = !read_eagain;
    stall_at = !stall_at;
    stall_ns = !stall_ns;
    ckpt_writes = 0;
    reads = 0;
  }

let configure spec =
  if String.equal (String.trim spec) "" then state := None
  else state := Some (parse spec)

let configure_from_env () =
  match Sys.getenv_opt "RBGP_FAULTS" with
  | Some spec -> configure spec
  | None -> ()

let disable () = state := None
let armed () = Option.is_some !state
let describe () = Option.map (fun p -> p.spec) !state

(* ---- hooks ---- *)

let crash_check ~step =
  match !state with
  | None -> ()
  | Some p ->
    if p.crash_at = step then begin
      p.crash_at <- -1;
      raise (Injected_crash (Printf.sprintf "crash@%d" step))
    end

(* Does any per-request counted fault land in [lo, hi)?  The quiet batch
   path checks this once per block and falls back to the per-request
   path for blocks that contain one, so the fault lands on the exact
   request index. *)
let request_fault_pending ~lo ~hi =
  match !state with
  | None -> false
  | Some p ->
    (p.crash_at >= lo && p.crash_at < hi)
    || (p.stall_at >= lo && p.stall_at < hi)

let solver_stall_ns ~step =
  match !state with
  | None -> 0
  | Some p ->
    if p.stall_at = step then begin
      p.stall_at <- -1;
      p.stall_ns
    end
    else 0

let checkpoint_write_plan ~len =
  match !state with
  | None -> `Full
  | Some p ->
    p.ckpt_writes <- p.ckpt_writes + 1;
    if p.ckpt_writes = p.ckpt_tear then begin
      p.ckpt_tear <- -1;
      let keep = if p.tear_keep >= 0 then min p.tear_keep len else len / 2 in
      `Tear keep
    end
    else if p.ckpt_writes = p.ckpt_flip then begin
      p.ckpt_flip <- -1;
      let bit = Rbgp_util.Rng.int p.rng (max 1 (len * 8)) in
      `Flip bit
    end
    else `Full

let before_read () =
  match !state with
  | None -> ()
  | Some p ->
    if p.read_eintr > 0.0 || p.read_eagain > 0.0 then begin
      let d = Rbgp_util.Rng.float p.rng in
      if d < p.read_eintr then
        raise (Unix.Unix_error (Unix.EINTR, "read", "injected"))
      else if d < p.read_eintr +. p.read_eagain then
        raise (Unix.Unix_error (Unix.EAGAIN, "read", "injected"))
    end

let mangle_batch dst ~got =
  match !state with
  | None -> false
  | Some p ->
    let lo = p.reads in
    p.reads <- p.reads + got;
    if p.read_flip >= lo && p.read_flip < lo + got then begin
      let i = p.read_flip - lo in
      p.read_flip <- -1;
      dst.(i) <- dst.(i) lxor (1 lsl 30);
      true
    end
    else false

let mangle_one e =
  match !state with
  | None -> e
  | Some p ->
    let i = p.reads in
    p.reads <- i + 1;
    if p.read_flip = i then begin
      p.read_flip <- -1;
      e lxor (1 lsl 30)
    end
    else e
