(** Deterministic fault injection for the serve stack.

    A process-global, seeded fault plan drives simulated crashes, torn
    or bit-flipped checkpoint writes, transient read errors and solver
    stalls at exact, reproducible points.  When no plan is configured
    every hook is a no-op behind one reference read, so production
    serving pays nothing (the bench gates the armed-but-quiet overhead
    at <2% of quiet-path throughput).

    Spec grammar (comma-separated; see the .ml header for details):
    [crash@N], [ckpt-tear@N[:K]], [ckpt-flip@N], [read-flip@N],
    [read-eintr:P], [read-eagain:P], [short-read:P],
    [solver-stall@N[:NS]], [seed=K].

    Counted ([@N]) faults fire exactly once per process and then
    disarm; probabilistic faults draw from an [Rng] seeded by the plan,
    so a fixed plan over a fixed call sequence yields an identical
    fault schedule. *)

exception Injected_crash of string
(** Raised by [crash_check] and by the checkpoint tear path to model a
    process kill.  Supervisors catch it (and only handlers that name it
    — lint rule r9 flags catch-alls around hook sites). *)

val configure : string -> unit
(** Parse a spec and arm the plan ([""] disarms).  Raises
    [Invalid_argument] on malformed specs. *)

val configure_from_env : unit -> unit
(** [configure] from [RBGP_FAULTS] if set; otherwise leave untouched. *)

val disable : unit -> unit
val armed : unit -> bool

val describe : unit -> string option
(** The active plan's spec, for logs. *)

(** {1 Hooks} — called by the serve stack; all no-ops when disarmed. *)

val crash_check : step:int -> unit
(** Raises [Injected_crash] if the plan kills at request [step]. *)

val request_fault_pending : lo:int -> hi:int -> bool
(** Does a counted per-request fault (crash or stall) land in
    [\[lo, hi)]?  Lets the quiet batch path check once per block and
    fall back to per-request serving for the block that contains one. *)

val solver_stall_ns : step:int -> int
(** Injected solver slowdown (ns) for request [step]; 0 otherwise.
    The stall is virtual: it is added to the latency the solver-budget
    supervisor sees, keeping degradation deterministic and tests fast. *)

val checkpoint_write_plan : len:int -> [ `Full | `Tear of int | `Flip of int ]
(** Called once per checkpoint write with the serialized length.
    [`Tear keep]: only the first [keep] bytes reach the final path and
    the writer must then raise [Injected_crash].  [`Flip bit]: flip
    that bit of the serialized record before an otherwise-normal
    write.  [`Full]: write normally. *)

val before_read : unit -> unit
(** May raise [Unix.Unix_error (EINTR | EAGAIN)] per the plan's
    probabilities.  [Source] calls it inside the same
    [Durable.retry_transient] thunk as the real read. *)

val mangle_batch : int array -> got:int -> bool
(** Corrupt the planned delivered-request ordinal if it falls in this
    batch of [got] requests; returns [true] if a value was mangled (the
    caller must then re-validate the batch). *)

val mangle_one : int -> int
(** Single-request variant of [mangle_batch]. *)
