(** The HTTP observability surface: a deliberately tiny HTTP/1.0
    responder for scrapes, built as pure functions over received bytes so
    the whole module unit-tests without a socket (the select loop in
    {!Net} owns all I/O).

    Endpoints:
    - [GET /metrics] — Prometheus text exposition
      ({!Metrics.prometheus_exposition}) of every tenant's counters and
      latency histogram (labels [tenant], [alg]), plus per-tenant
      checkpoint-age/position/liveness gauges.
    - [GET /healthz] — [200 ok] while serving, [503 draining] during
      drain.
    - [GET /tenants] — JSON array of tenant status records, each
      embedding the same {!Metrics.json_of_snapshot} record the JSONL
      stream carries — the exposition and the JSONL surface render one
      snapshot API and can never structurally disagree.

    Requests are bounded by {!max_request_bytes}; anything larger is
    answered [431] and the connection closed, so a hostile peer cannot
    grow the buffer without limit. *)

val max_request_bytes : int

val request_complete : string -> bool
(** Have we buffered a full request head (terminated by a blank line)?
    GET requests carry no body, so the head is the whole request. *)

val handle : router:Tenant.t -> draining:bool -> string -> string
(** [handle ~router ~draining request] parses the request head and
    returns the complete response bytes (status line, headers,
    [Connection: close], body).  Never raises: malformed requests get
    [400], non-GET [405], unknown paths [404]. *)

val response : status:int -> content_type:string -> string -> string
(** Render one HTTP/1.0 response (exposed for tests and for the 431
    overflow reply). *)
