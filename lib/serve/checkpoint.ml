module Binc = Rbgp_util.Binc
module Crc32 = Rbgp_util.Crc32
module Durable = Rbgp_util.Durable

type t = {
  alg : string;
  epsilon : float;
  seed : int;
  n : int;
  ell : int;
  k : int;
  initial : int array;
  pos : int;
  prefix : int array;
  comm : int;
  mig : int;
  max_load : int;
  violations : int;
  assignment : int array;
  alg_state : string option;
  degraded : int array;
  degraded_left : int;
}

let magic = "RBGC"
let version = 2

let fail ?(path = "<string>") fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Checkpoint: %s: %s" path msg))
    fmt

(* "%h" prints the exact bits as a hex float literal; float_of_string
   reads it back losslessly *)
let add_float buf f = Binc.add_string buf (Printf.sprintf "%h" f)

let read_float ?path r =
  let s = Binc.read_string r in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ?path "bad float literal %S" s

(* v1 layout: magic, varint version, Binc-framed fields through alg_state.
   v2 appends the degraded-span record (flattened (start, len) pairs plus
   the in-flight cooloff remainder) and a little-endian CRC-32 trailer
   over every preceding byte, so torn or bit-flipped records are detected
   before any field is trusted. *)
let to_string ?(version = version) t =
  if version <> 1 && version <> 2 then
    invalid_arg (Printf.sprintf "Checkpoint.to_string: unknown version %d" version);
  if version = 1 && (Array.length t.degraded > 0 || t.degraded_left > 0) then
    invalid_arg "Checkpoint.to_string: degraded spans need version >= 2";
  let buf = Buffer.create (64 + (8 * (t.pos + t.n))) in
  Buffer.add_string buf magic;
  Binc.add_varint buf version;
  Binc.add_string buf t.alg;
  add_float buf t.epsilon;
  Binc.add_zigzag buf t.seed;
  Binc.add_varint buf t.n;
  Binc.add_varint buf t.ell;
  Binc.add_varint buf t.k;
  Binc.add_int_array buf t.initial;
  Binc.add_varint buf t.pos;
  Binc.add_int_array buf t.prefix;
  Binc.add_varint buf t.comm;
  Binc.add_varint buf t.mig;
  Binc.add_varint buf t.max_load;
  Binc.add_varint buf t.violations;
  Binc.add_int_array buf t.assignment;
  (match t.alg_state with
  | None -> Binc.add_varint buf 0
  | Some s ->
      Binc.add_varint buf 1;
      Binc.add_string buf s);
  if version >= 2 then begin
    Binc.add_int_array buf t.degraded;
    Binc.add_varint buf t.degraded_left;
    let crc = Crc32.string (Buffer.contents buf) in
    Buffer.add_char buf (Char.chr (crc land 0xff));
    Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xff))
  end;
  Buffer.contents buf

let of_string ?path s =
  if String.length s < String.length magic
     || not (String.equal (String.sub s 0 (String.length magic)) magic)
  then fail ?path "bad magic (not a checkpoint file)";
  let r = Binc.reader ~pos:(String.length magic) s in
  (try
     let v = Binc.read_varint r in
     if v <> 1 && v <> 2 then fail ?path "unsupported checkpoint version %d" v;
     let body_end =
       if v >= 2 then begin
         (* verify the CRC trailer before trusting any field *)
         let len = String.length s in
         if len < Binc.reader_pos r + 4 then
           fail ?path "torn record (no room for CRC trailer, %d bytes)" len;
         let stored =
           Char.code s.[len - 4]
           lor (Char.code s.[len - 3] lsl 8)
           lor (Char.code s.[len - 2] lsl 16)
           lor (Char.code s.[len - 1] lsl 24)
         in
         let actual = Crc32.string ~len:(len - 4) s in
         if stored <> actual then
           fail ?path "CRC mismatch (stored %08x, computed %08x over %d bytes)"
             stored actual (len - 4);
         len - 4
       end
       else String.length s
     in
     let alg = Binc.read_string r in
     let epsilon = read_float ?path r in
     let seed = Binc.read_zigzag r in
     let n = Binc.read_varint r in
     let ell = Binc.read_varint r in
     let k = Binc.read_varint r in
     let initial = Binc.read_int_array r in
     let pos = Binc.read_varint r in
     let prefix = Binc.read_int_array r in
     let comm = Binc.read_varint r in
     let mig = Binc.read_varint r in
     let max_load = Binc.read_varint r in
     let violations = Binc.read_varint r in
     let assignment = Binc.read_int_array r in
     let alg_state =
       match Binc.read_varint r with
       | 0 -> None
       | 1 -> Some (Binc.read_string r)
       | tag -> fail ?path "bad alg_state tag %d" tag
     in
     (* explicit sequencing: tuple components evaluate right-to-left *)
     let degraded = if v >= 2 then Binc.read_int_array r else [||] in
     let degraded_left = if v >= 2 then Binc.read_varint r else 0 in
     if v >= 2 && Binc.reader_pos r <> body_end then
       fail ?path "record has %d trailing bytes before the CRC"
         (body_end - Binc.reader_pos r);
     if Array.length prefix <> pos then
       fail ?path "prefix length %d does not match pos %d"
         (Array.length prefix) pos;
     if Array.length initial <> n || Array.length assignment <> n then
       fail ?path "assignment arrays do not match n = %d" n;
     if Array.length degraded land 1 <> 0 then
       fail ?path "degraded span record has odd length %d"
         (Array.length degraded);
     {
       alg; epsilon; seed; n; ell; k; initial; pos; prefix;
       comm; mig; max_load; violations; assignment; alg_state;
       degraded; degraded_left;
     }
   with Invalid_argument msg when String.length msg >= 4
                                  && String.equal (String.sub msg 0 4) "Binc"
     -> fail ?path "torn record (%s)" msg)

(* All checkpoint bytes reach disk through [Durable.atomic_write] — except
   when the fault plan tears this write, in which case the truncated bytes
   are deliberately written straight to the final path (modelling a legacy
   non-atomic writer or a device that acknowledged an incomplete flush)
   and the process "dies": recovery must then fall back to an older
   generation, which is exactly what the crash matrix exercises. *)
let write ~path t =
  let data = to_string t in
  match Fault.checkpoint_write_plan ~len:(String.length data) with
  | `Full -> Durable.atomic_write ~path data
  | `Flip bit ->
      let b = Bytes.of_string data in
      let i = bit lsr 3 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit land 7))));
      Durable.atomic_write ~path (Bytes.unsafe_to_string b)
  | `Tear keep ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (String.sub data 0 (min keep (String.length data))));
      raise (Fault.Injected_crash (Printf.sprintf "ckpt-tear (%d bytes kept)" keep))

let read ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string ~path (really_input_string ic len))

let verify ~path =
  match read ~path with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg
  | exception Sys_error msg -> Error msg

(* --- rolling generations ---------------------------------------------- *)

let generation_path path g =
  if g = 0 then path else Printf.sprintf "%s.%d" path g

(* Rotate before writing: if the process dies between the rotation and the
   new write, [path] is missing but [path.1] holds the previous good
   generation, so [read_latest] still recovers. *)
let write_rolling ~path ~keep t =
  if keep < 1 then invalid_arg "Checkpoint.write_rolling: keep < 1";
  for g = keep - 2 downto 0 do
    let src = generation_path path g in
    if Sys.file_exists src then Sys.rename src (generation_path path (g + 1))
  done;
  write ~path t

type recovery = {
  ckpt : t;
  generation : int;
  skipped : (string * string) list;
}

let read_latest ?(generations = 8) ~path () =
  let rec scan g skipped =
    if g >= generations then
      match skipped with
      | [] ->
          fail ~path "no checkpoint generation found (looked at %d paths)"
            generations
      | _ ->
          fail ~path "no verifiable checkpoint generation: %s"
            (String.concat "; "
               (List.rev_map (fun (p, m) -> Printf.sprintf "%s: %s" p m) skipped))
    else
      let p = generation_path path g in
      if not (Sys.file_exists p) then
        (* a missing newest generation is normal right after rotation; a
           gap below an existing one just means fewer generations kept *)
        scan (g + 1) skipped
      else
        match read ~path:p with
        | ckpt -> { ckpt; generation = g; skipped = List.rev skipped }
        | exception Invalid_argument msg -> scan (g + 1) ((p, msg) :: skipped)
        | exception Sys_error msg -> scan (g + 1) ((p, msg) :: skipped)
  in
  scan 0 []

let to_json t =
  Printf.sprintf
    "{\"type\":\"checkpoint\",\"version\":%d,\"alg\":\"%s\",\"epsilon\":%g,\
     \"seed\":%d,\"n\":%d,\"ell\":%d,\"k\":%d,\"pos\":%d,\"comm\":%d,\
     \"mig\":%d,\"max_load\":%d,\"violations\":%d,\"explicit_state\":%b,\
     \"prefix_len\":%d,\"degraded_spans\":%d,\"degraded_left\":%d}"
    version t.alg t.epsilon t.seed t.n t.ell t.k t.pos t.comm t.mig
    t.max_load t.violations
    (Option.is_some t.alg_state)
    (Array.length t.prefix)
    (Array.length t.degraded / 2)
    t.degraded_left
