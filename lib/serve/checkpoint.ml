module Binc = Rbgp_util.Binc

type t = {
  alg : string;
  epsilon : float;
  seed : int;
  n : int;
  ell : int;
  k : int;
  initial : int array;
  pos : int;
  prefix : int array;
  comm : int;
  mig : int;
  max_load : int;
  violations : int;
  assignment : int array;
  alg_state : string option;
}

let magic = "RBGC"
let version = 1

let fail ?(path = "<string>") fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Checkpoint: %s: %s" path msg))
    fmt

(* "%h" prints the exact bits as a hex float literal; float_of_string
   reads it back losslessly *)
let add_float buf f = Binc.add_string buf (Printf.sprintf "%h" f)

let read_float ?path r =
  let s = Binc.read_string r in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ?path "bad float literal %S" s

let to_string t =
  let buf = Buffer.create (64 + (8 * (t.pos + t.n))) in
  Buffer.add_string buf magic;
  Binc.add_varint buf version;
  Binc.add_string buf t.alg;
  add_float buf t.epsilon;
  Binc.add_zigzag buf t.seed;
  Binc.add_varint buf t.n;
  Binc.add_varint buf t.ell;
  Binc.add_varint buf t.k;
  Binc.add_int_array buf t.initial;
  Binc.add_varint buf t.pos;
  Binc.add_int_array buf t.prefix;
  Binc.add_varint buf t.comm;
  Binc.add_varint buf t.mig;
  Binc.add_varint buf t.max_load;
  Binc.add_varint buf t.violations;
  Binc.add_int_array buf t.assignment;
  (match t.alg_state with
  | None -> Binc.add_varint buf 0
  | Some s ->
      Binc.add_varint buf 1;
      Binc.add_string buf s);
  Buffer.contents buf

let of_string ?path s =
  if String.length s < String.length magic
     || not (String.equal (String.sub s 0 (String.length magic)) magic)
  then fail ?path "bad magic (not a checkpoint file)";
  let r = Binc.reader ~pos:(String.length magic) s in
  (try
     let v = Binc.read_varint r in
     if v <> version then fail ?path "unsupported checkpoint version %d" v;
     let alg = Binc.read_string r in
     let epsilon = read_float ?path r in
     let seed = Binc.read_zigzag r in
     let n = Binc.read_varint r in
     let ell = Binc.read_varint r in
     let k = Binc.read_varint r in
     let initial = Binc.read_int_array r in
     let pos = Binc.read_varint r in
     let prefix = Binc.read_int_array r in
     let comm = Binc.read_varint r in
     let mig = Binc.read_varint r in
     let max_load = Binc.read_varint r in
     let violations = Binc.read_varint r in
     let assignment = Binc.read_int_array r in
     let alg_state =
       match Binc.read_varint r with
       | 0 -> None
       | 1 -> Some (Binc.read_string r)
       | tag -> fail ?path "bad alg_state tag %d" tag
     in
     if Array.length prefix <> pos then
       fail ?path "prefix length %d does not match pos %d"
         (Array.length prefix) pos;
     if Array.length initial <> n || Array.length assignment <> n then
       fail ?path "assignment arrays do not match n = %d" n;
     {
       alg; epsilon; seed; n; ell; k; initial; pos; prefix;
       comm; mig; max_load; violations; assignment; alg_state;
     }
   with Invalid_argument msg when String.length msg >= 4
                                  && String.equal (String.sub msg 0 4) "Binc"
     -> fail ?path "torn record (%s)" msg)

let write ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let read ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string ~path (really_input_string ic len))

let to_json t =
  Printf.sprintf
    "{\"type\":\"checkpoint\",\"version\":%d,\"alg\":\"%s\",\"epsilon\":%g,\
     \"seed\":%d,\"n\":%d,\"ell\":%d,\"k\":%d,\"pos\":%d,\"comm\":%d,\
     \"mig\":%d,\"max_load\":%d,\"violations\":%d,\"explicit_state\":%b,\
     \"prefix_len\":%d}"
    version t.alg t.epsilon t.seed t.n t.ell t.k t.pos t.comm t.mig
    t.max_load t.violations
    (Option.is_some t.alg_state)
    (Array.length t.prefix)
