(** Live serving metrics: a log-bucketed ingest-latency histogram plus
    cumulative request/cost counters.

    The histogram has one bucket per power of two of nanoseconds (bucket
    [i] holds latencies in [\[2^i, 2^{i+1})]), so recording is O(1),
    allocation-free and the whole structure is a few hundred bytes —
    cheap enough to update on every request of a hot serving loop.
    Quantiles are therefore bucket-resolution approximations: {!quantile}
    returns the lower bound of the bucket containing the requested rank
    (within a factor of 2 of the true value).

    [rbgp serve] embeds {!to_json} records in its JSONL output every N
    requests, dumps {!summary} to stderr on SIGUSR1 and at exit, and the
    bench harness reads p50/p99 from here for [BENCH_3.json]. *)

type t

val create : unit -> t
(** Starts the wall clock. *)

val reset : t -> unit
(** Zero all counters and restart the wall clock (used after a checkpoint
    replay so replayed requests don't pollute live throughput figures). *)

val observe : t -> latency_ns:int -> comm:int -> moved:int -> max_load:int -> unit
(** Record one served request: its ingest latency, the communication
    (0/1) and migrations charged for it, and the cumulative maximum load
    after it. *)

val observe_batch :
  t -> count:int -> latency_ns:int -> comm:int -> mig:int -> max_load:int -> unit
(** Record [count] requests served as one quiet batch (see
    {!Engine.ingest_batch_quiet}): [latency_ns] is the whole batch's
    wall-clock time and [comm]/[mig] its total charges.  Counters advance
    exactly as [count] {!observe} calls would; the latency histogram
    records the batch {e mean} for each request, so quantiles reflect
    batch-level, not per-request, variation.  No-op when [count = 0]. *)

val note_degraded : ?count:int -> t -> unit
(** Count [count] (default 1) requests served on the degraded never-move
    path because the per-request solver budget was exceeded. *)

val note_recovered : t -> unit
(** Count one re-promotion from the degraded path back to the real
    solver after a quiet interval. *)

val requests : t -> int
val comm : t -> int
val mig : t -> int
val max_load : t -> int
val degraded : t -> int
val recovered : t -> int

val elapsed_s : t -> float
val rps : t -> float
(** [requests / elapsed]; [0.] before the first request. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [\[0, 1\]]: approximate latency in
    nanoseconds at rank [q] (lower bound of the covering bucket); [0]
    when nothing was observed. *)

val mean_latency_ns : t -> float

type snapshot
(** A frozen, immutable copy of every counter and the full histogram,
    taken atomically with respect to the single-threaded serving loop.
    All rendered surfaces ({!json_of_snapshot}, {!summary_of_snapshot},
    {!prometheus_exposition}) are produced from snapshots, so the JSONL
    record, the SIGUSR1 dump and the HTTP exposition can never disagree
    about a moving counter. *)

val snapshot : t -> snapshot

val snapshot_requests : snapshot -> int
val snapshot_rps : snapshot -> float
val snapshot_quantile : snapshot -> float -> int
(** Same bucket-resolution semantics as {!quantile}. *)

val json_of_snapshot : snapshot -> string
(** Same one-line JSON object as {!to_json}, rendered from the frozen
    counters. *)

val summary_of_snapshot : snapshot -> string
(** Same human-readable paragraph as {!summary}. *)

val prometheus_exposition :
  ?namespace:string -> ((string * string) list * snapshot) list -> string
(** Prometheus text exposition (format 0.0.4) for a set of labeled
    snapshots — one series per (labels, snapshot) pair, e.g. one per
    tenant with [["tenant", id]].  Emits counters for requests and
    comm/mig/degraded/recovered, gauges for max load and uptime, and the
    ingest-latency histogram with power-of-two bucket bounds rendered in
    seconds (only non-empty buckets are listed, plus the mandatory
    [+Inf]).  [namespace] (default ["rbgp"]) prefixes every metric
    name.  Label values are escaped per the exposition spec. *)

val to_json : t -> string
(** One-line JSON object (type tag ["metrics"]): requests, rps, p50/p90/p99
    latency ns, mean latency, cumulative comm/mig, max load, elapsed
    seconds.  Equivalent to [json_of_snapshot (snapshot t)]. *)

val summary : t -> string
(** Human-readable one-paragraph rendering of the same numbers. *)
