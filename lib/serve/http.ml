let max_request_bytes = 8192

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let request_complete s =
  contains_sub s "\r\n\r\n" || contains_sub s "\n\n"

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 431 -> "Request Header Fields Too Large"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status (reason_of status) content_type (String.length body) body

let state_string tn =
  match Tenant.state tn with
  | Tenant.Serving -> "serving"
  | Tenant.Closed -> "closed"
  | Tenant.Dead _ -> "dead"

(* Tenant ids are validated to [A-Za-z0-9._-] at open time, so label
   values and JSON strings below need no escaping. *)
let metrics_body router =
  let tns = Tenant.tenants router in
  let series =
    List.filter_map
      (fun tn ->
        match Tenant.metrics_snapshot tn with
        | Some s ->
            Some
              ( [ ("tenant", Tenant.id tn); ("alg", (Tenant.config tn).Proto.alg) ],
                s )
        | None -> None)
      tns
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Metrics.prometheus_exposition series);
  Buffer.add_string buf
    "# HELP rbgp_tenant_up Tenant state: 1 serving, 0 closed or dead.\n\
     # TYPE rbgp_tenant_up gauge\n";
  List.iter
    (fun tn ->
      let up = match Tenant.state tn with Tenant.Serving -> 1 | _ -> 0 in
      Buffer.add_string buf
        (Printf.sprintf "rbgp_tenant_up{tenant=\"%s\"} %d\n" (Tenant.id tn) up))
    tns;
  Buffer.add_string buf
    "# HELP rbgp_tenant_position Requests served (including any resumed \
     checkpoint prefix).\n\
     # TYPE rbgp_tenant_position gauge\n";
  List.iter
    (fun tn ->
      Buffer.add_string buf
        (Printf.sprintf "rbgp_tenant_position{tenant=\"%s\"} %d\n"
           (Tenant.id tn) (Tenant.pos tn)))
    tns;
  Buffer.add_string buf
    "# HELP rbgp_checkpoint_age_seconds Seconds since the tenant's last \
     durable checkpoint.\n\
     # TYPE rbgp_checkpoint_age_seconds gauge\n";
  List.iter
    (fun tn ->
      match Tenant.ckpt_age_s tn with
      | Some age ->
          Buffer.add_string buf
            (Printf.sprintf "rbgp_checkpoint_age_seconds{tenant=\"%s\"} %.3f\n"
               (Tenant.id tn) age)
      | None -> ())
    tns;
  Buffer.contents buf

let tenant_json tn =
  let cfg = Tenant.config tn in
  let metrics =
    match Tenant.metrics_snapshot tn with
    | Some s -> Metrics.json_of_snapshot s
    | None -> "null"
  in
  let age =
    match Tenant.ckpt_age_s tn with
    | Some a -> Printf.sprintf "%.3f" a
    | None -> "null"
  in
  Printf.sprintf
    "{\"id\":\"%s\",\"alg\":\"%s\",\"n\":%d,\"ell\":%d,\"epsilon\":%g,\
     \"seed\":%d,\"state\":\"%s\",\"pos\":%d,\"ckpt_age_s\":%s,\
     \"metrics\":%s}"
    (Tenant.id tn) cfg.Proto.alg cfg.Proto.n cfg.Proto.ell cfg.Proto.epsilon
    cfg.Proto.seed (state_string tn) (Tenant.pos tn) age metrics

let tenants_body router =
  let tns = Tenant.tenants router in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"tenants\":[";
  List.iteri
    (fun i tn ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (tenant_json tn))
    tns;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* First line only: [METHOD SP target SP version].  We never need the
   headers, and GET requests have no body. *)
let parse_request_line s =
  let line_end =
    match String.index_opt s '\n' with
    | Some i -> if i > 0 && Char.equal s.[i - 1] '\r' then i - 1 else i
    | None -> String.length s
  in
  let line = String.sub s 0 line_end in
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] ->
      let path =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      Some (meth, path)
  | _ -> None

let handle ~router ~draining request =
  match parse_request_line request with
  | None -> response ~status:400 ~content_type:"text/plain" "bad request\n"
  | Some (meth, path) ->
      if not (String.equal meth "GET") then
        response ~status:405 ~content_type:"text/plain" "GET only\n"
      else if String.equal path "/metrics" then
        response ~status:200
          ~content_type:"text/plain; version=0.0.4"
          (metrics_body router)
      else if String.equal path "/healthz" then
        if draining then
          response ~status:503 ~content_type:"text/plain" "draining\n"
        else response ~status:200 ~content_type:"text/plain" "ok\n"
      else if String.equal path "/tenants" then
        response ~status:200 ~content_type:"application/json"
          (tenants_body router)
      else response ~status:404 ~content_type:"text/plain" "not found\n"
