(** The incremental serving engine: request in, decision out.

    Wraps a registered algorithm ({!Registry}) and the simulator's
    accounting stepper ({!Rbgp_ring.Simulator.stepper}) behind an
    [ingest : int -> decision] API that can be driven from an unbounded
    source — a pipe, a socket, a trace file — one request at a time, with
    live {!Metrics} and {!Checkpoint} snapshots at any point.

    {2 Determinism contract}

    An engine is a deterministic function of
    [(alg, epsilon, seed, instance)] and the request sequence: serving the
    same requests always yields the same decisions, costs and assignments
    (latencies excepted).  This is what makes checkpoint/resume exact and
    cheap to verify — see {!resume}.

    {2 Runtime sanitizer}

    With [~sanitize:true] (or the environment variable [RBGP_SANITIZE] set
    to [1]/[true]/[yes]/[on]), every {!ingest} additionally asserts the
    engine's per-step invariants after the algorithm has served the
    request: the assignment is a valid partition (every process on a server
    in range, cached loads consistent with the map), the maximum load
    respects the algorithm's claimed augmentation bound, communication
    charges are unit-sized, and cumulative costs and the running max load
    are monotone.  The first violated invariant raises [Failure] with the
    offending request index.  Off by default — the checks are [O(n)] per
    request.

    {2 Solver budget and degraded serving}

    {!set_solver_budget} arms a per-request solve-time budget: when a
    request's effective latency (measured, plus any {!Fault}-injected
    stall) exceeds it, the next [cooloff] requests are served on the
    frozen never-move path ({!Rbgp_ring.Simulator.step_frozen}) — the
    solver is bypassed, communication is still billed, nothing moves —
    and the solver is re-promoted after the cooloff.  Frozen stretches
    are counted in {!Metrics} ([degraded]/[recovered]) and recorded as
    spans in every {!checkpoint}, so {!resume} replays the identical
    call sequence and the determinism contract survives degradation.
    Degradation triggers are evaluated at request boundaries (batch
    boundaries on the batched paths — a prepared batch is never split).

    {2 Fault hooks}

    When a {!Fault} plan is armed, ingest checks for planned crashes
    ([Injected_crash] before the designated request) and consults the
    plan for injected solver stalls; the batched paths fall back to
    per-request serving (identical decisions by the batch contract) so
    counted faults land on exact request indices.  Disarmed, the hooks
    cost one reference read per request or block. *)

type decision = {
  step : int;  (** 0-based index of the request just served *)
  edge : int;
  comm : int;  (** communication charged for this request (0/1) *)
  moved : int;  (** migrations charged for this request *)
  cum_comm : int;
  cum_mig : int;
  max_load : int;  (** running maximum load *)
  latency_ns : int;  (** wall-clock ingest latency of this request *)
}

type t

val create :
  ?strict:bool ->
  ?accounting:Rbgp_ring.Simulator.accounting ->
  ?sanitize:bool ->
  ?epsilon:float ->
  alg:string ->
  seed:int ->
  Rbgp_ring.Instance.t ->
  t
(** Builds the named algorithm through {!Registry.find} (raising
    [Invalid_argument] for unknown names) and starts a fresh accounting
    stepper.  [epsilon] defaults to [0.5]; [sanitize] defaults to the
    [RBGP_SANITIZE] environment variable (see the sanitizer section
    above). *)

val ingest : t -> int -> decision
(** Serve one request: charge communication, run the algorithm, charge
    migrations, check capacity ([Failure] in strict mode on violation),
    record the request in the replay prefix and update metrics. *)

val ingest_batch : t -> int array -> decision array
(** Serve a batch of requests through {!Rbgp_ring.Simulator.prepare}: the
    algorithm may pre-solve the whole batch sharded across pool domains
    (see {!Rbgp_ring.Online.t.batch}), while accounting, sanitizer checks,
    the replay prefix and metrics are still advanced request by request in
    arrival order.  Every decision field except the wall-clock
    [latency_ns] is byte-identical to calling {!ingest} on each edge in
    turn, for any batch decomposition and any domain count; checkpoints
    taken between batches resume identically.  All edges are validated up
    front; on a strict-mode capacity failure mid-batch the engine must
    not be used further (later requests were already pre-solved inside
    the algorithm). *)

val ingest_batch_quiet : t -> int array -> unit
(** {!ingest_batch} without the per-request instrumentation: identical
    accounting, replay prefix, sanitizer behaviour and checkpoints (a
    checkpoint taken after a quiet batch is byte-identical to one taken
    after the same requests through {!ingest}), but no decision records
    are built and the clock is read twice per batch instead of twice per
    request — metrics advance through one aggregate record (see
    {!Metrics.observe_batch}).  This is the [--no-decisions] serving path
    and the engine half of the BENCH_5 million-req/s number.  Sanitizing
    engines transparently fall back to the checked per-request path. *)

val set_solver_budget : t -> budget_ns:int -> cooloff:int -> unit
(** Arm ([budget_ns > 0]) or disarm ([budget_ns = 0]) the per-request
    solver budget; [cooloff] is the length of each frozen stretch.
    Raises [Invalid_argument] on a negative budget or, when arming,
    [cooloff < 1]. *)

val degrading : t -> bool
(** Currently inside a frozen cooloff stretch? *)

val degraded_spans : t -> int array
(** Flattened [(start, len)] pairs of every frozen stretch so far, in
    position order — the same record a {!checkpoint} carries. *)

val pos : t -> int
(** Requests served so far (including any checkpointed prefix). *)

val alg_name : t -> string
val epsilon : t -> float
val seed : t -> int

val instance : t -> Rbgp_ring.Instance.t
(** The run's identity parameters, as passed to {!create} (or recovered
    by {!resume}) — the tenant router matches these against re-[OPEN]
    configurations so one stream id can never silently switch runs. *)

val result : t -> Rbgp_ring.Simulator.result
(** Cumulative totals, identical to what a batch {!Rbgp_ring.Simulator.run}
    over the same request sequence reports. *)

val assignment : t -> int array
val online : t -> Rbgp_ring.Online.t
val metrics : t -> Metrics.t

val checkpoint : t -> Checkpoint.t
(** Snapshot the run: instance parameters, seed, served prefix, cumulative
    costs, current assignment, the algorithm's explicit state when it
    implements the snapshot hook, and the degraded-span record. *)

val resume :
  ?strict:bool ->
  ?accounting:Rbgp_ring.Simulator.accounting ->
  ?sanitize:bool ->
  Checkpoint.t ->
  t
(** Reconstruct an engine mid-stream.  Uses the explicit-restore fast path
    (O(state)) when the checkpoint carries an algorithm state blob and the
    rebuilt algorithm implements [restore]; otherwise replays the stored
    prefix deterministically (O(prefix)).  Either way the reconstructed
    assignment and cumulative costs are verified against the checkpoint,
    and [Failure] is raised on any mismatch — a resumed engine is
    therefore byte-identical (costs, assignments, reports) to one that
    never stopped.  Replayed requests are excluded from metrics. *)

val decision_to_json : decision -> string
(** One-line JSON record (type tag ["decision"]) for the [rbgp serve]
    JSONL stream. *)

val result_to_json : t -> string
(** Final summary record (type tag ["result"]): algorithm, requests
    served, cumulative costs, max load, violations. *)
