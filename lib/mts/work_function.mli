(** The deterministic work-function algorithm (WFA) for MTS.

    WFA maintains the work function
    [w_t(s) = min over schedules ending in s of (movement + task costs)]
    and after each task moves to the state minimizing
    [w_t(s) + d(s_prev, s)] (ties broken toward staying, then toward the
    smaller state).  Borodin–Linial–Saks show the related strategy is
    [(2s - 1)]-competitive on any [s]-state metric, which is optimal for
    deterministic algorithms.

    On a line metric the update
    [w'(s) = min over s' of (w(s') + T(s') + |s - s'|)] is computed in O(s)
    by the two-sweep distance transform; on the uniform metric in O(s) via
    the global minimum.  This solver is the deterministic reference point of
    experiment E9 and the comparator the [Omega(k)] separation (E4) is
    measured against. *)

val solver : Mts.factory

val solver_introspect :
  Metric.t -> start:int -> Mts.t * (unit -> float array)
(** Like {!solver} but also returns an accessor for the current
    work-function vector (fresh copy).  Tests use it to check that the work
    function stays 1-Lipschitz on the line and lower-bounds the offline
    optimum. *)
