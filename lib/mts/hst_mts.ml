module Dist = Rbgp_util.Dist
module Smin = Rbgp_util.Smin

(* Recursively assign probability mass to the dyadic sub-intervals of
   [lo, hi]: at each split, the two halves receive mass proportional to
   exp(-smin_c(child)/c_node) where c_node is the parent's width — i.e. a
   multiplicative-weights rule whose learning rate is the inverse of the
   price of switching between the children. *)
let rec fill_mass x lo hi mass out =
  if lo = hi then out.(lo) <- out.(lo) +. mass
  else begin
    let mid = (lo + hi) / 2 in
    let width = float_of_int (hi - lo + 1) in
    let c_node = Float.max 1.0 width in
    let c_child = Float.max 1.0 (c_node /. 2.0) in
    let s_left = Smin.smin_sub ~c:c_child x ~lo ~hi:mid in
    let s_right = Smin.smin_sub ~c:c_child x ~lo:(mid + 1) ~hi in
    (* stable two-way softmax at temperature c_node *)
    let m = Float.min s_left s_right in
    let wl = exp ((m -. s_left) /. c_node) in
    let wr = exp ((m -. s_right) /. c_node) in
    let z = wl +. wr in
    fill_mass x lo mid (mass *. wl /. z) out;
    fill_mass x (mid + 1) hi (mass *. wr /. z) out
  end

let leaf_mass_into x out =
  Array.fill out 0 (Array.length out) 0.0;
  fill_mass x 0 (Array.length x - 1) 1.0 out

let leaf_dist_of x =
  let s = Array.length x in
  let out = Array.make s 0.0 in
  fill_mass x 0 (s - 1) 1.0 out;
  Dist.of_grad out

let solver : Mts.factory =
 fun metric ~start ~rng ->
  (match metric with
  | Metric.Line _ -> ()
  | Metric.Uniform _ ->
      (* the dyadic decomposition is only meaningful on the line *)
      invalid_arg "Hst_mts.solver: requires a line metric");
  let s = Metric.size metric in
  let x = Array.make s 0.0 in
  (* scratch mass buffer plus two rotating distribution buffers (see
     Smin_mw): the recursion still dominates, but the per-request
     allocations are gone *)
  let mass = Array.make s 0.0 in
  let current_dist = ref (Dist.uniform s) in
  let next_dist = ref (Dist.uniform s) in
  leaf_mass_into x mass;
  Dist.of_grad_into mass !current_dist;
  let next cost current =
    for i = 0 to s - 1 do
      x.(i) <- x.(i) +. cost.(i)
    done;
    leaf_mass_into x mass;
    let new_dist = !next_dist in
    Dist.of_grad_into mass new_dist;
    let state =
      Dist.resample_coupled rng ~current ~old_dist:!current_dist ~new_dist
    in
    next_dist := !current_dist;
    current_dist := new_dist;
    state
  in
  Mts.make ~name:"hst-mw" ~metric ~start ~next

let leaf_distribution metric x =
  if Array.length x <> Metric.size metric then
    invalid_arg "Hst_mts.leaf_distribution: size mismatch";
  leaf_dist_of x
