type t = Line of int | Uniform of int

let size = function Line s | Uniform s -> s

let check_size s =
  if s <= 0 then invalid_arg "Metric: state count must be positive"

let distance t i j =
  (match t with Line s | Uniform s -> check_size s);
  let s = size t in
  if i < 0 || i >= s || j < 0 || j >= s then
    invalid_arg "Metric.distance: state out of range";
  match t with
  | Line _ -> abs (i - j)
  | Uniform _ -> if i = j then 0 else 1

let diameter = function
  | Line s ->
      check_size s;
      s - 1
  | Uniform s ->
      check_size s;
      if s > 1 then 1 else 0

let check_state t i =
  if i < 0 || i >= size t then invalid_arg "Metric: state out of range"

let pp fmt = function
  | Line s -> Format.fprintf fmt "line(%d)" s
  | Uniform s -> Format.fprintf fmt "uniform(%d)" s
