(** Randomized smooth-minimum multiplicative-weights MTS solver.

    This is the paper's own Appendix-A machinery, lifted from the hitting
    game to a general MTS solver: maintain the cumulative cost vector [x]
    (sum of all task vectors seen), keep the state distributed as
    [p = grad smin_c x] with scale [c = diameter of the metric], and on each
    update resample through the maximal-stay L1 coupling
    ({!Rbgp_util.Dist.resample_coupled}).

    Why this is faithful: Lemma A.3 (iv) bounds the L1 change of the
    distribution per unit of incurred cost by [2/c], so the expected
    movement (at most diameter x L1/2 per step on the line) is within a
    constant of the expected hitting cost — the same argument as
    Lemma 4.3 b).  On indicator cost vectors (the only shape the ring
    reduction emits) the expected hitting cost telescopes into
    [smin_c(x_final) <= min(x) + c ln s] (Lemma A.3 (i)/(iii)), giving an
    O(log s)-competitive-against-static behaviour; against dynamic optima it
    is the randomized workhorse of experiments E2/E3/E9. *)

val solver : Mts.factory

val solver_with_scale : c:float -> Mts.factory
(** Override the scale parameter (default: [max 1 (diameter metric)]).
    Smaller [c] reacts faster but moves more; E9's ablation sweeps this. *)

val distribution : Metric.t -> float array -> Rbgp_util.Dist.t
(** The distribution [grad smin_c x] this solver maintains for cumulative
    cost vector [x] (with the default scale); exposed for tests. *)
