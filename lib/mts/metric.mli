(** The metric spaces used by the metrical-task-system solvers.

    The Section-3 reduction produces MTS instances on a *line* metric over
    the edges of an interval.  The *uniform* metric is included for the
    marking baseline and for tests (it is the metric of classic paging-style
    MTS algorithms, and running it on line instances quantifies how much the
    geometry matters — experiment E9). *)

type t =
  | Line of int  (** [Line s]: states [0..s-1], [d(i,j) = |i-j|] *)
  | Uniform of int  (** [Uniform s]: [d(i,j) = 1] for [i <> j] *)

val size : t -> int
val distance : t -> int -> int -> int
val diameter : t -> int
val check_state : t -> int -> unit
val pp : Format.formatter -> t -> unit
