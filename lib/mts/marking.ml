let threshold = 1.0

let solver : Mts.factory =
 fun metric ~start ~rng ->
  let s = Metric.size metric in
  let phase_cost = Array.make s 0.0 in
  let next cost current =
    for i = 0 to s - 1 do
      phase_cost.(i) <- phase_cost.(i) +. cost.(i)
    done;
    if phase_cost.(current) < threshold then current
    else begin
      let unmarked = ref [] in
      for i = s - 1 downto 0 do
        if phase_cost.(i) < threshold then unmarked := i :: !unmarked
      done;
      match !unmarked with
      | [] ->
          (* all marked: the phase ends; reset costs, keep only the new
             arrivals of this step, and restart from a random state *)
          for i = 0 to s - 1 do
            phase_cost.(i) <- 0.0
          done;
          Rbgp_util.Rng.int rng s
      | candidates ->
          let arr = Array.of_list candidates in
          arr.(Rbgp_util.Rng.int rng (Array.length arr))
    end
  in
  Mts.make ~name:"marking" ~metric ~start ~next
