(** Metrical task systems: the online problem the Section-3 reduction
    targets, and the common interface of its solvers.

    An MTS instance over a metric [(S, d)] starts in state [s0]; each step a
    cost vector [T] arrives, the solver moves to a state [s'] and pays
    [d(s, s') + T(s')].  The paper plugs an arbitrary [alpha(k)]-competitive
    MTS algorithm into each interval; here solvers are first-class values so
    the composed algorithm can be instantiated with any of
    {!Work_function}, {!Smin_mw}, {!Hst_mts} or {!Marking}
    (experiment E9 ablates this choice). *)

type t
(** A running solver instance with internal cost accounting. *)

type factory = Metric.t -> start:int -> rng:Rbgp_util.Rng.t -> t
(** Solvers are created per MTS instance.  Deterministic solvers ignore the
    rng. *)

val make :
  name:string ->
  metric:Metric.t ->
  start:int ->
  next:(float array -> int -> int) ->
  t
(** [make ~name ~metric ~start ~next] wraps a transition function
    [next cost_vector current_state -> new_state] with state tracking and
    cost accounting.  Used by the solver modules; exposed for tests that
    need scripted solvers. *)

val name : t -> string
val metric : t -> Metric.t
val state : t -> int

val serve : t -> float array -> int
(** Feed one cost vector (length = number of states, entries >= 0); returns
    the new state.  Accumulates [hit] ([T(s')]) and [move] ([d(s, s')])
    costs. *)

val hit_cost : t -> float
val move_cost : t -> float
val total_cost : t -> float

val steps : t -> int
(** Number of cost vectors served so far. *)

val indicator : int -> n:int -> float array
(** [indicator e ~n]: the unit cost vector charging 1 at state [e] — the
    only vector shape the ring reduction generates. *)
