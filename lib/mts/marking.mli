(** Randomized marking algorithm for MTS on the uniform metric.

    The classic phase-based strategy (Borodin–Linial–Saks's randomized
    variant): within a phase, accumulate each state's cost; when the current
    state's phase cost reaches the threshold (1.0), jump to a uniformly
    random state whose phase cost is still below the threshold ("unmarked");
    when every state is marked, end the phase and reset.  O(log s)-
    competitive on the uniform metric for 0/1 cost vectors.

    Included for two reasons: it is a correct classical randomized MTS
    algorithm (tested against the offline optimum), and running it inside
    the Section-3 reduction (E9) shows what happens when a solver ignores
    the line geometry — it jumps across the whole interval and pays large
    migration bursts, which is precisely why the paper needs line-aware
    machinery. *)

val solver : Mts.factory
