type schedule = { states : int array; cost : float }

(* In-place distance transforms over the first [len] entries of [a]:
   a.(i) <- min over j of (a.(j) + d(i, j)).

   On the line the transform is the classic two-sweep lower envelope; the
   per-row argmin is monotone in [i], which is exactly what lets one
   forward and one backward relaxation replace the O(len^2) minimum.  On
   the uniform metric the transform clamps everything to (global min) + 1.
   Both run in O(len) with zero allocation — earlier versions staged the
   result through a scratch buffer and blitted it back, which doubled the
   memory traffic of the hottest comparator loop (the per-request cost of
   the segmented static OPT and the per-interval MTS OPT). *)

let transform_line_inplace (a : float array) len =
  for i = 1 to len - 1 do
    if a.(i - 1) +. 1.0 < a.(i) then a.(i) <- a.(i - 1) +. 1.0
  done;
  for i = len - 2 downto 0 do
    if a.(i + 1) +. 1.0 < a.(i) then a.(i) <- a.(i + 1) +. 1.0
  done

let transform_uniform_inplace (a : float array) len =
  let mn = ref a.(0) in
  for i = 1 to len - 1 do
    if a.(i) < !mn then mn := a.(i)
  done;
  let cap = !mn +. 1.0 in
  for i = 0 to len - 1 do
    if cap < a.(i) then a.(i) <- cap
  done

let transform_inplace metric (a : float array) len =
  match (metric : Metric.t) with
  | Metric.Line _ -> transform_line_inplace a len
  | Metric.Uniform _ -> transform_uniform_inplace a len

let min_prefix (a : float array) len =
  let mn = ref a.(0) in
  for i = 1 to len - 1 do
    if a.(i) < !mn then mn := a.(i)
  done;
  !mn

let check_tasks metric tasks =
  let s = Metric.size metric in
  Array.iter
    (fun t ->
      if Array.length t <> s then
        invalid_arg "Offline: task vector size mismatch";
      Array.iter
        (fun c ->
          if c < 0.0 || Float.is_nan c then
            invalid_arg "Offline: negative task cost")
        t)
    tasks

(* Forward DP; opt.(x) after step t = min cost serving tasks 0..t ending at
   x (having already been charged for task t at x). *)
let run_dp metric ~start tasks =
  Metric.check_state metric start;
  check_tasks metric tasks;
  let s = Metric.size metric in
  let opt = Array.init s (fun i -> float_of_int (Metric.distance metric start i)) in
  let history = Array.map (fun _ -> Array.make s 0.0) tasks in
  Array.iteri
    (fun t task ->
      transform_inplace metric opt s;
      for x = 0 to s - 1 do
        opt.(x) <- opt.(x) +. task.(x)
      done;
      Array.blit opt 0 history.(t) 0 s)
    tasks;
  (opt, history)

let opt_cost metric ~start tasks =
  Metric.check_state metric start;
  check_tasks metric tasks;
  if Array.length tasks = 0 then 0.0
  else begin
    (* cost-only pass: no history materialized *)
    let s = Metric.size metric in
    let opt =
      Array.init s (fun i -> float_of_int (Metric.distance metric start i))
    in
    Array.iter
      (fun task ->
        transform_inplace metric opt s;
        for x = 0 to s - 1 do
          opt.(x) <- opt.(x) +. task.(x)
        done)
      tasks;
    min_prefix opt s
  end

let opt_schedule metric ~start tasks =
  let steps = Array.length tasks in
  if steps = 0 then { states = [||]; cost = 0.0 }
  else begin
    let opt, history = run_dp metric ~start tasks in
    let s = Metric.size metric in
    let cost = min_prefix opt s in
    (* Backward reconstruction: choose end state achieving the optimum, then
       for each step pick a predecessor consistent with the DP values. *)
    let states = Array.make steps 0 in
    let best_end = ref 0 in
    for x = 1 to s - 1 do
      if opt.(x) < opt.(!best_end) then best_end := x
    done;
    states.(steps - 1) <- !best_end;
    for t = steps - 2 downto 0 do
      let succ = states.(t + 1) in
      (* history.(t).(x) + d(x, succ) + task_(t+1)(succ) = history.(t+1).(succ) *)
      let target = history.(t + 1).(succ) -. tasks.(t + 1).(succ) in
      let found = ref (-1) in
      for x = 0 to s - 1 do
        if
          !found < 0
          && Float.abs
               (history.(t).(x)
               +. float_of_int (Metric.distance metric x succ)
               -. target)
             <= 1e-9
        then found := x
      done;
      if !found < 0 then
        (* numerical safety net: pick the minimizer explicitly *)
        begin
          let best = ref 0 in
          for x = 1 to s - 1 do
            let v y =
              history.(t).(y) +. float_of_int (Metric.distance metric y succ)
            in
            if v x < v !best then best := x
          done;
          found := !best
        end;
      states.(t) <- !found
    done;
    { states; cost }
  end

(* --- indicator-task specializations --------------------------------- *)

(* Reusable DP buffer, grown on demand, in the spirit of
   [Dist.of_grad_into]: callers that evaluate many per-interval optima
   (the windowed lower bound, the interval comparator of Lemma 3.3) pass
   one scratch and the DP stops allocating per call.  Only the first
   [Metric.size] entries are touched. *)
type scratch = { mutable buf : float array }

let scratch () = { buf = [||] }

let scratch_buf sc len =
  if Array.length sc.buf < len then sc.buf <- Array.make len 0.0;
  sc.buf

let opt_cost_indicators metric ~start es =
  Metric.check_state metric start;
  let s = Metric.size metric in
  Array.iter (fun e -> Metric.check_state metric e) es;
  if Array.length es = 0 then 0.0
  else begin
    let opt =
      Array.init s (fun i -> float_of_int (Metric.distance metric start i))
    in
    Array.iter
      (fun e ->
        transform_inplace metric opt s;
        opt.(e) <- opt.(e) +. 1.0)
      es;
    min_prefix opt s
  end

let opt_cost_indicators_free ?scratch metric es =
  let s = Metric.size metric in
  Array.iter (fun e -> Metric.check_state metric e) es;
  if Array.length es = 0 then 0.0
  else begin
    let opt =
      match scratch with
      | Some sc ->
          let buf = scratch_buf sc s in
          Array.fill buf 0 s 0.0;
          buf
      | None -> Array.make s 0.0
    in
    Array.iter
      (fun e ->
        transform_inplace metric opt s;
        opt.(e) <- opt.(e) +. 1.0)
      es;
    min_prefix opt s
  end

let static_opt_indicators metric ~start es =
  Metric.check_state metric start;
  let s = Metric.size metric in
  let hits = Array.make s 0 in
  Array.iter
    (fun e ->
      Metric.check_state metric e;
      hits.(e) <- hits.(e) + 1)
    es;
  let best = ref infinity in
  for p = 0 to s - 1 do
    let v = float_of_int (Metric.distance metric start p + hits.(p)) in
    if v < !best then best := v
  done;
  !best
