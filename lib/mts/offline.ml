type schedule = { states : int array; cost : float }

let transform_into metric (src : float array) (dst : float array) =
  let s = Array.length src in
  match (metric : Metric.t) with
  | Metric.Line _ ->
      Array.blit src 0 dst 0 s;
      for i = 1 to s - 1 do
        if dst.(i - 1) +. 1.0 < dst.(i) then dst.(i) <- dst.(i - 1) +. 1.0
      done;
      for i = s - 2 downto 0 do
        if dst.(i + 1) +. 1.0 < dst.(i) then dst.(i) <- dst.(i + 1) +. 1.0
      done
  | Metric.Uniform _ ->
      let m = Array.fold_left Float.min src.(0) src in
      for i = 0 to s - 1 do
        dst.(i) <- Float.min src.(i) (m +. 1.0)
      done

let check_tasks metric tasks =
  let s = Metric.size metric in
  Array.iter
    (fun t ->
      if Array.length t <> s then
        invalid_arg "Offline: task vector size mismatch";
      Array.iter
        (fun c ->
          if c < 0.0 || Float.is_nan c then
            invalid_arg "Offline: negative task cost")
        t)
    tasks

(* Forward DP; opt.(x) after step t = min cost serving tasks 0..t ending at
   x (having already been charged for task t at x). *)
let run_dp metric ~start tasks =
  Metric.check_state metric start;
  check_tasks metric tasks;
  let s = Metric.size metric in
  let opt = Array.init s (fun i -> float_of_int (Metric.distance metric start i)) in
  let buf = Array.make s 0.0 in
  let history = Array.map (fun _ -> Array.make s 0.0) tasks in
  Array.iteri
    (fun t task ->
      transform_into metric opt buf;
      for x = 0 to s - 1 do
        opt.(x) <- buf.(x) +. task.(x)
      done;
      Array.blit opt 0 history.(t) 0 s)
    tasks;
  (opt, history)

let opt_cost metric ~start tasks =
  if Array.length tasks = 0 then 0.0
  else
    let opt, _ = run_dp metric ~start tasks in
    Array.fold_left Float.min opt.(0) opt

let opt_schedule metric ~start tasks =
  let steps = Array.length tasks in
  if steps = 0 then { states = [||]; cost = 0.0 }
  else begin
    let opt, history = run_dp metric ~start tasks in
    let cost = Array.fold_left Float.min opt.(0) opt in
    (* Backward reconstruction: choose end state achieving the optimum, then
       for each step pick a predecessor consistent with the DP values. *)
    let s = Metric.size metric in
    let states = Array.make steps 0 in
    let best_end = ref 0 in
    for x = 1 to s - 1 do
      if opt.(x) < opt.(!best_end) then best_end := x
    done;
    states.(steps - 1) <- !best_end;
    for t = steps - 2 downto 0 do
      let succ = states.(t + 1) in
      (* history.(t).(x) + d(x, succ) + task_(t+1)(succ) = history.(t+1).(succ) *)
      let target = history.(t + 1).(succ) -. tasks.(t + 1).(succ) in
      let found = ref (-1) in
      for x = 0 to s - 1 do
        if
          !found < 0
          && Float.abs
               (history.(t).(x)
               +. float_of_int (Metric.distance metric x succ)
               -. target)
             <= 1e-9
        then found := x
      done;
      if !found < 0 then
        (* numerical safety net: pick the minimizer explicitly *)
        begin
          let best = ref 0 in
          for x = 1 to s - 1 do
            let v y =
              history.(t).(y) +. float_of_int (Metric.distance metric y succ)
            in
            if v x < v !best then best := x
          done;
          found := !best
        end;
      states.(t) <- !found
    done;
    { states; cost }
  end

let opt_cost_indicators metric ~start es =
  Metric.check_state metric start;
  let s = Metric.size metric in
  Array.iter (fun e -> Metric.check_state metric e) es;
  if Array.length es = 0 then 0.0
  else begin
    let opt =
      Array.init s (fun i -> float_of_int (Metric.distance metric start i))
    in
    let buf = Array.make s 0.0 in
    Array.iter
      (fun e ->
        transform_into metric opt buf;
        Array.blit buf 0 opt 0 s;
        opt.(e) <- opt.(e) +. 1.0)
      es;
    Array.fold_left Float.min opt.(0) opt
  end

let opt_cost_indicators_free metric es =
  let s = Metric.size metric in
  Array.iter (fun e -> Metric.check_state metric e) es;
  if Array.length es = 0 then 0.0
  else begin
    let opt = Array.make s 0.0 in
    let buf = Array.make s 0.0 in
    Array.iter
      (fun e ->
        transform_into metric opt buf;
        Array.blit buf 0 opt 0 s;
        opt.(e) <- opt.(e) +. 1.0)
      es;
    Array.fold_left Float.min opt.(0) opt
  end

let static_opt_indicators metric ~start es =
  Metric.check_state metric start;
  let s = Metric.size metric in
  let hits = Array.make s 0 in
  Array.iter
    (fun e ->
      Metric.check_state metric e;
      hits.(e) <- hits.(e) + 1)
    es;
  let best = ref infinity in
  for p = 0 to s - 1 do
    let v = float_of_int (Metric.distance metric start p + hits.(p)) in
    if v < !best then best := v
  done;
  !best
