(* w'(s) = min_{s'} (u(s') + d(s',s)) with u = w + T: the distance transform
   of u under the metric.  O(s) on the line by forward/backward sweeps. *)
let distance_transform metric u =
  let s = Array.length u in
  match (metric : Metric.t) with
  | Metric.Line _ ->
      let w = Array.copy u in
      for i = 1 to s - 1 do
        if w.(i - 1) +. 1.0 < w.(i) then w.(i) <- w.(i - 1) +. 1.0
      done;
      for i = s - 2 downto 0 do
        if w.(i + 1) +. 1.0 < w.(i) then w.(i) <- w.(i + 1) +. 1.0
      done;
      w
  | Metric.Uniform _ ->
      let m = Array.fold_left Float.min u.(0) u in
      Array.map (fun v -> Float.min v (m +. 1.0)) u

let solver_introspect metric ~start =
  let s = Metric.size metric in
  (* w_0(x) = d(start, x): the cost of moving to x before any task. *)
  let w =
    ref (Array.init s (fun i -> float_of_int (Metric.distance metric start i)))
  in
  let next cost current =
    let u = Array.mapi (fun i wi -> wi +. cost.(i)) !w in
    let w' = distance_transform metric u in
    w := w';
    (* argmin of w'(x) + d(current, x); break ties toward the state with
       the SMALLER work function value (then nearer, then smaller index).
       Tie-breaking toward staying would let an adversary pin the
       algorithm on a hammered state forever: after saturation,
       w'(current) = w'(neighbour) + 1, the scores tie, and staying keeps
       paying 1 per request — preferring low w escapes instead. *)
    let best = ref current in
    let score x = w'.(x) +. float_of_int (Metric.distance metric current x) in
    for x = 0 to s - 1 do
      let sx = score x and sb = score !best in
      let better =
        sx < sb -. 1e-12
        || Float.abs (sx -. sb) <= 1e-12
           && (w'.(x) < w'.(!best) -. 1e-12
              || Float.abs (w'.(x) -. w'.(!best)) <= 1e-12
                 && Metric.distance metric current x
                    < Metric.distance metric current !best)
      in
      if better then best := x
    done;
    !best
  in
  let t = Mts.make ~name:"wfa" ~metric ~start ~next in
  (t, fun () -> Array.copy !w)

let solver : Mts.factory =
 fun metric ~start ~rng:_ -> fst (solver_introspect metric ~start)
