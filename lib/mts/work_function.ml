(* w'(s) = min_{s'} (u(s') + d(s',s)) with u = w + T: the distance transform
   of u under the metric.  O(s) on the line by forward/backward sweeps. *)
let distance_transform_inplace metric w =
  let s = Array.length w in
  match (metric : Metric.t) with
  | Metric.Line _ ->
      for i = 1 to s - 1 do
        if w.(i - 1) +. 1.0 < w.(i) then w.(i) <- w.(i - 1) +. 1.0
      done;
      for i = s - 2 downto 0 do
        if w.(i + 1) +. 1.0 < w.(i) then w.(i) <- w.(i + 1) +. 1.0
      done
  | Metric.Uniform _ ->
      let m = Array.fold_left Float.min w.(0) w in
      for i = 0 to s - 1 do
        if m +. 1.0 < w.(i) then w.(i) <- m +. 1.0
      done

let solver_introspect metric ~start =
  let s = Metric.size metric in
  (* hoist the per-call distance function: Metric.distance re-validates its
     arguments on every call, which dominates the argmin loop *)
  let dist =
    match metric with
    | Metric.Line _ -> fun a b -> abs (a - b)
    | Metric.Uniform _ -> fun a b -> if a = b then 0 else 1
  in
  (* w_0(x) = d(start, x): the cost of moving to x before any task.  Two
     buffers are rotated between calls so the hot path never allocates. *)
  let w = ref (Array.init s (fun i -> float_of_int (Metric.distance metric start i))) in
  let scratch = ref (Array.make s 0.0) in
  let next cost current =
    let wv = !w and w' = !scratch in
    for i = 0 to s - 1 do
      w'.(i) <- wv.(i) +. cost.(i)
    done;
    distance_transform_inplace metric w';
    scratch := wv;
    w := w';
    (* argmin of w'(x) + d(current, x); break ties toward the state with
       the SMALLER work function value (then nearer, then smaller index).
       Tie-breaking toward staying would let an adversary pin the
       algorithm on a hammered state forever: after saturation,
       w'(current) = w'(neighbour) + 1, the scores tie, and staying keeps
       paying 1 per request — preferring low w escapes instead.  The best
       score is carried in an accumulator rather than recomputed from
       [!best] on every iteration. *)
    let best = ref current in
    let best_score = ref (w'.(current) +. float_of_int (dist current current)) in
    for x = 0 to s - 1 do
      let sx = w'.(x) +. float_of_int (dist current x) in
      let sb = !best_score in
      let better =
        sx < sb -. 1e-12
        || Float.abs (sx -. sb) <= 1e-12
           && (w'.(x) < w'.(!best) -. 1e-12
              || Float.abs (w'.(x) -. w'.(!best)) <= 1e-12
                 && dist current x < dist current !best)
      in
      if better then begin
        best := x;
        best_score := sx
      end
    done;
    !best
  in
  let t = Mts.make ~name:"wfa" ~metric ~start ~next in
  (t, fun () -> Array.copy !w)

let solver : Mts.factory =
 fun metric ~start ~rng:_ -> fst (solver_introspect metric ~start)
