(** Exact offline optimum for metrical task systems.

    [opt_t(s)] — the cheapest cost of serving the first [t] tasks and ending
    in state [s] — satisfies
    [opt_t(s) = min over s' of (opt_(t-1)(s') + d(s', s)) + T_t(s)].
    The inner minimum is a distance transform, computed {e in place}: O(s)
    per step on the line (two sweeps — the per-row argmin is monotone, so
    one forward and one backward relaxation replace the quadratic minimum)
    and on the uniform metric (global min + clamp).  Total runtime O(T s)
    with no per-request allocation; cost-only queries skip the history
    matrix entirely, and the indicator specializations accept a reusable
    {!scratch} so grids of per-interval optima allocate nothing per call.
    Schedule reconstruction via backpointer-free re-derivation.

    This is the comparator of Lemma 3.3 ([OPT_MTS(I)]), the certifier for
    the per-interval lower bounds on dynamic OPT (Lemma 4.15 analogue used
    at scale), and the ground truth every online MTS solver is tested
    against. *)

type schedule = { states : int array; cost : float }
(** [states.(t)] is the state in which task [t] is served. *)

val opt_cost : Metric.t -> start:int -> float array array -> float
(** Minimum total cost to serve the given task sequence from [start]
    (movement may happen before each task; the task is paid at the state
    occupied when it is served). *)

val opt_schedule : Metric.t -> start:int -> float array array -> schedule
(** An optimal schedule realizing {!opt_cost}. *)

val opt_cost_indicators : Metric.t -> start:int -> int array -> float
(** Specialization to indicator tasks (the ring reduction's shape):
    [opt_cost_indicators m ~start es] equals
    [opt_cost m ~start (map (indicator ~n) es)] but builds no vectors. *)

type scratch
(** A reusable DP buffer (grown on demand, like {!Rbgp_util.Dist.of_grad_into}'s
    destination): pass the same scratch to many indicator-DP calls and the
    solver stops allocating per call.  Not safe to share across domains —
    give each {!Rbgp_util.Pool} task its own. *)

val scratch : unit -> scratch

val opt_cost_indicators_free : ?scratch:scratch -> Metric.t -> int array -> float
(** Like {!opt_cost_indicators} but with a free choice of start state (no
    initial movement charge) — the comparator shape used for per-interval
    optima ([OPT_MTS(I)], Lemma 3.3) and for the windowed dynamic lower
    bound, where the offline schedule already owns a position when the
    window's accounting begins.  [?scratch] reuses the given buffer for the
    DP layer instead of allocating one. *)

val static_opt_indicators : Metric.t -> start:int -> int array -> float
(** Cheapest *static* strategy: pick one state [p] up front, pay
    [d(start, p)] plus the number of requests hitting [p].  The comparator
    of the hitting game (Section 4.1). *)
