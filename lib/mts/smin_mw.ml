module Dist = Rbgp_util.Dist
module Smin = Rbgp_util.Smin

let default_scale metric = Float.max 1.0 (float_of_int (Metric.diameter metric))

let make_solver ~c metric ~start ~rng =
  let s = Metric.size metric in
  let x = Array.make s 0.0 in
  (* scratch gradient plus two rotating distribution buffers: the serve
     loop allocates nothing.  of_grad_into performs the same validation
     and renormalization as of_grad, so outputs are bit-identical. *)
  let grad = Array.make s 0.0 in
  let current_dist = ref (Dist.uniform s) in
  let next_dist = ref (Dist.uniform s) in
  Smin.grad_c_into ~c x grad;
  Dist.of_grad_into grad !current_dist;
  let next cost current =
    for i = 0 to s - 1 do
      x.(i) <- x.(i) +. cost.(i)
    done;
    Smin.grad_c_into ~c x grad;
    let new_dist = !next_dist in
    Dist.of_grad_into grad new_dist;
    let state =
      Dist.resample_coupled rng ~current ~old_dist:!current_dist
        ~new_dist
    in
    next_dist := !current_dist;
    current_dist := new_dist;
    state
  in
  Mts.make ~name:(Printf.sprintf "smin-mw(c=%g)" c) ~metric ~start ~next

let solver_with_scale ~c : Mts.factory =
 fun metric ~start ~rng ->
  if not (c >= 1.0) then invalid_arg "Smin_mw: scale must be >= 1";
  make_solver ~c metric ~start ~rng

let solver : Mts.factory =
 fun metric ~start ~rng -> make_solver ~c:(default_scale metric) metric ~start ~rng

let distribution metric x =
  if Array.length x <> Metric.size metric then
    invalid_arg "Smin_mw.distribution: size mismatch";
  Dist.of_grad (Smin.grad_c ~c:(default_scale metric) x)
