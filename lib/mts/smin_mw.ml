module Dist = Rbgp_util.Dist
module Smin = Rbgp_util.Smin

let default_scale metric = Float.max 1.0 (float_of_int (Metric.diameter metric))

let make_solver ~c metric ~start ~rng =
  let s = Metric.size metric in
  let x = Array.make s 0.0 in
  let current_dist = ref (Dist.of_grad (Smin.grad_c ~c x)) in
  let next cost current =
    for i = 0 to s - 1 do
      x.(i) <- x.(i) +. cost.(i)
    done;
    let new_dist = Dist.of_grad (Smin.grad_c ~c x) in
    let state =
      Dist.resample_coupled rng ~current ~old_dist:!current_dist
        ~new_dist
    in
    current_dist := new_dist;
    state
  in
  Mts.make ~name:(Printf.sprintf "smin-mw(c=%g)" c) ~metric ~start ~next

let solver_with_scale ~c : Mts.factory =
 fun metric ~start ~rng ->
  if not (c >= 1.0) then invalid_arg "Smin_mw: scale must be >= 1";
  make_solver ~c metric ~start ~rng

let solver : Mts.factory =
 fun metric ~start ~rng -> make_solver ~c:(default_scale metric) metric ~start ~rng

let distribution metric x =
  if Array.length x <> Metric.size metric then
    invalid_arg "Smin_mw.distribution: size mismatch";
  Dist.of_grad (Smin.grad_c ~c:(default_scale metric) x)
