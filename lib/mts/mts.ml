type t = {
  name : string;
  metric : Metric.t;
  mutable state : int;
  mutable hit : float;
  mutable move : float;
  mutable steps : int;
  next : float array -> int -> int;
}

type factory = Metric.t -> start:int -> rng:Rbgp_util.Rng.t -> t

let make ~name ~metric ~start ~next =
  Metric.check_state metric start;
  { name; metric; state = start; hit = 0.0; move = 0.0; steps = 0; next }

let name t = t.name
let metric t = t.metric
let state t = t.state

(* top-level so [serve] (r11-patrolled via the solver path) passes a
   static function to [Array.iter], not a per-call closure *)
let check_cost_entry c =
  if c < 0.0 || Float.is_nan c then
    invalid_arg "Mts.serve: cost entries must be non-negative"

let serve t cost_vector =
  if Array.length cost_vector <> Metric.size t.metric then
    invalid_arg "Mts.serve: cost vector size mismatch";
  Array.iter check_cost_entry cost_vector;
  let s' = t.next cost_vector t.state in
  Metric.check_state t.metric s';
  t.move <- t.move +. float_of_int (Metric.distance t.metric t.state s');
  t.hit <- t.hit +. cost_vector.(s');
  t.state <- s';
  t.steps <- t.steps + 1;
  s'

let hit_cost t = t.hit
let move_cost t = t.move
let total_cost t = t.hit +. t.move
let steps t = t.steps

let indicator e ~n =
  if e < 0 || e >= n then invalid_arg "Mts.indicator: index out of range";
  let v = Array.make n 0.0 in
  v.(e) <- 1.0;
  v
