(** Randomized MTS solver on a dyadic hierarchical decomposition of the line.

    The polylog-competitive randomized MTS algorithms the paper cites
    (Bartal–Blum–Burch–Tomkins; Fiat–Mendel; Bubeck–Cohen–Lee–Lee) all work
    by embedding the metric into a hierarchically separated tree (HST) and
    running a multiplicative-weights / mirror-descent scheme at every
    internal node.  This module implements that architecture directly for
    the line:

    - the states [0..s-1] are the leaves of a balanced binary tree of
      dyadic intervals (an HST whose node diameters halve per level, and
      which distorts line distances by at most O(log s) in expectation over
      nothing — deterministically by a factor <= 2 per level crossed);
    - every internal node [v] maintains multiplicative weights over its two
      children: the attractiveness of a child is the scaled smooth minimum
      ({!Rbgp_util.Smin.smin_sub}) of the cumulative cost vector restricted
      to the child's leaves, with scale proportional to the child's
      diameter — coarse nodes react slowly (moving across them is
      expensive), fine nodes react quickly;
    - the leaf distribution is the product of the per-node child
      distributions, and the state follows it through the maximal-stay L1
      coupling, as in {!Smin_mw}.

    This is the "structured" randomized solver of ablation E9; it matches
    {!Smin_mw} asymptotically on the traces we generate while moving less
    mass across large distances on multi-modal cost profiles. *)

val solver : Mts.factory

val leaf_distribution : Metric.t -> float array -> Rbgp_util.Dist.t
(** The product distribution over leaves for a cumulative cost vector;
    exposed for tests (it must be a probability distribution and must
    concentrate on the minimizers as costs grow). *)
