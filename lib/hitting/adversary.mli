(** Request generators for the hitting game.

    [chase] is the lower-bound adversary of Lemma 4.1: it always requests
    the player's current edge, so a deterministic player pays 1 every step
    (or pays movement), while after [T >= k^2] steps some edge received at
    most [T/k] requests and the static optimum is at most [T/k + k] — a
    ratio of [Omega(k)].  Against a *randomized* player the chase adversary
    only sees the realized position (adaptive-online adversary); the
    interval-growing algorithm keeps its conditional hitting probability
    around [1/|I|] and escapes with polylog cost.

    The oblivious generators build fixed sequences used by E5: a point
    hammer (all requests on one edge far from the start), a uniform sprayer,
    and a two-phase bait-and-switch. *)

val chase : int -> int -> int
(** [chase step position = position]: for {!Game.run_adaptive}. *)

val hammer : k:int -> edge:int -> steps:int -> int array
(** All requests on a fixed edge. *)

val uniform : k:int -> steps:int -> Rbgp_util.Rng.t -> int array

val bait_and_switch : k:int -> steps:int -> int array
(** First half hammers the starting edge's neighbourhood, second half jumps
    to the far end — punishes algorithms that commit too early. *)
