let chase _step position = position

let hammer ~k ~edge ~steps =
  if edge < 0 || edge >= k then invalid_arg "Adversary.hammer: edge out of range";
  Array.make steps edge

let uniform ~k ~steps rng = Array.init steps (fun _ -> Rbgp_util.Rng.int rng k)

let bait_and_switch ~k ~steps =
  let start = Game.start_edge ~k in
  let far = if start < k / 2 then k - 1 else 0 in
  Array.init steps (fun t -> if t < steps / 2 then start else far)
