type player = {
  name : string;
  position : unit -> int;
  serve : int -> unit;
  hit_cost : unit -> float;
  move_cost : unit -> float;
}

let total_cost p = p.hit_cost () +. p.move_cost ()

let start_edge ~k =
  if k <= 0 then invalid_arg "Game.start_edge: k must be positive";
  ((k + 1) / 2) - 1 |> Stdlib.max 0

let of_mts mts =
  let module M = Rbgp_mts.Mts in
  let k = Rbgp_mts.Metric.size (M.metric mts) in
  {
    name = M.name mts;
    position = (fun () -> M.state mts);
    serve = (fun e -> ignore (M.serve mts (M.indicator e ~n:k)));
    hit_cost = (fun () -> M.hit_cost mts);
    move_cost = (fun () -> M.move_cost mts);
  }

let greedy_dodge ~k ?start () =
  if k <= 0 then invalid_arg "Game.greedy_dodge: k must be positive";
  let pos = ref (match start with Some s -> s | None -> start_edge ~k) in
  let dir = ref 1 in
  let move = ref 0.0 and hit = ref 0.0 in
  let serve e =
    if e < 0 || e >= k then invalid_arg "Game.greedy_dodge: edge out of range";
    if e = !pos then
      if k = 1 then hit := !hit +. 1.0
      else begin
        (* dodge one step, sweeping; bounce at the ends.  Chased by the
           Lemma 4.1 adversary this spreads the requests uniformly, which
           is the worst case for the player and the best for static OPT. *)
        if !pos + !dir < 0 || !pos + !dir > k - 1 then dir := - !dir;
        pos := !pos + !dir;
        move := !move +. 1.0
      end
  in
  {
    name = "greedy-dodge";
    position = (fun () -> !pos);
    serve;
    hit_cost = (fun () -> !hit);
    move_cost = (fun () -> !move);
  }

let run p requests = Array.iter p.serve requests

let run_adaptive p ~steps ~next =
  Array.init steps (fun t ->
      let e = next t (p.position ()) in
      p.serve e;
      e)
