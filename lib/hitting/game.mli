(** The hitting game on the line (Section 4.1).

    A line of [k+1] nodes has [k] edges [0 .. k-1]; a player occupies one
    edge, starting from the central edge [ceil(k/2) - 1] (the paper's
    [e_s, s = ceil(k/2)] in 1-based indexing).  Each step an edge is
    requested: if it is the player's position the player pays 1 (hitting
    cost); moving costs the travelled distance.  The comparator is the best
    *static* strategy (move once at the start, never again).

    This module defines the player interface shared by
    {!Interval_growing} and by MTS solvers adapted to the game, plus
    drivers for oblivious and adaptive request sequences.  The adaptive
    driver sees the player's realized position — exactly the adversary of
    Lemma 4.1, which forces any deterministic player to pay
    [Omega(k) * OPT]. *)

type player = {
  name : string;
  position : unit -> int;
  serve : int -> unit;  (** request an edge in [\[0, k)] *)
  hit_cost : unit -> float;
  move_cost : unit -> float;
}

val total_cost : player -> float

val start_edge : k:int -> int
(** The central starting edge [ceil(k/2) - 1] (0-based). *)

val of_mts : Rbgp_mts.Mts.t -> player
(** Adapt an MTS solver on [Line k] to the game: each request becomes an
    indicator cost vector.  Movement/hit accounting is the solver's own.
    Note the MTS convention charges the hit at the {e new} state while the
    game charges it at the {e old} position; for competitive-ratio purposes
    the two differ by at most the movement cost (tests quantify this). *)

val greedy_dodge : k:int -> ?start:int -> unit -> player
(** The archetypal deterministic player the Lemma 4.1 adversary defeats:
    when its edge is requested it dodges one position toward the side whose
    edges have received fewer requests so far.  It pays ~1 per adversarial
    step while the static optimum pays ~T/k + k, realizing the Theta(k)
    separation. *)

val run : player -> int array -> unit
(** Feed an oblivious request sequence. *)

val run_adaptive : player -> steps:int -> next:(int -> int -> int) -> int array
(** [run_adaptive p ~steps ~next]: at each step [t], request
    [next t (p.position ())]; returns the generated sequence (so it can be
    re-priced offline). *)
