module Dist = Rbgp_util.Dist
module Smin = Rbgp_util.Smin
module Rng = Rbgp_util.Rng

type t = {
  k : int;  (* number of edges; vertices are 0..k *)
  delta_bar : float;
  rng : Rng.t;
  x : float array;  (* request counts per edge *)
  mutable vl : int;  (* interval left vertex *)
  mutable vr : int;  (* interval right vertex *)
  mutable position : int;  (* current edge *)
  mutable dist : Dist.t;  (* distribution over edges vl..vr-1 *)
  mutable phases : int;
  mutable hit : float;
  mutable move : float;
}

let edges_of_interval vl vr = vr - vl (* edges vl..vr-1 *)

let scale vl vr = Float.max 1.0 (float_of_int (edges_of_interval vl vr))

let dist_of t vl vr =
  let m = edges_of_interval vl vr in
  let buf = Array.make m 0.0 in
  Smin.grad_sub_into ~c:(scale vl vr) t.x ~lo:vl ~hi:(vr - 1) buf;
  Dist.of_grad buf

let grow_rule ~k ~vl ~vr =
  let w = vr - vl + 1 in
  let desired = Stdlib.min (2 * w) (k + 1) in
  let extra = desired - w in
  let left = extra / 2 and right = extra - (extra / 2) in
  let vl' = vl - left and vr' = vr + right in
  (* shift back inside [0, k] without shrinking *)
  let shift =
    if vl' < 0 then -vl' else if vr' > k then k - vr' else 0
  in
  (vl' + shift, vr' + shift)

let create ~k ?(delta_bar = 14.0 /. 15.0) ?start rng =
  if k <= 0 then invalid_arg "Interval_growing.create: k must be positive";
  if not (delta_bar > 0.5 && delta_bar < 1.0) then
    invalid_arg "Interval_growing.create: delta_bar out of (1/2, 1)";
  let start = match start with Some s -> s | None -> Game.start_edge ~k in
  if start < 0 || start >= k then
    invalid_arg "Interval_growing.create: start edge out of range";
  let t =
    {
      k;
      delta_bar;
      rng;
      x = Array.make k 0.0;
      vl = start;
      vr = start + 1;
      position = start;
      dist = Dist.point 0 ~n:1;
      phases = 0;
      hit = 0.0;
      move = 0.0;
    }
  in
  t.dist <- dist_of t t.vl t.vr;
  t

let min_in_interval t =
  let m = ref t.x.(t.vl) in
  for e = t.vl + 1 to t.vr - 1 do
    if t.x.(e) < !m then m := t.x.(e)
  done;
  !m

let move_to t new_pos =
  t.move <- t.move +. float_of_int (abs (new_pos - t.position));
  t.position <- new_pos

let maybe_grow t =
  let continue = ref true in
  while !continue do
    let width = t.vr - t.vl + 1 in
    if width >= t.k + 1 then continue := false
    else if min_in_interval t >= (1.0 -. t.delta_bar) *. float_of_int width
    then begin
      let vl', vr' = grow_rule ~k:t.k ~vl:t.vl ~vr:t.vr in
      t.vl <- vl';
      t.vr <- vr';
      t.phases <- t.phases + 1;
      t.dist <- dist_of t t.vl t.vr;
      let new_pos = t.vl + Dist.sample t.rng t.dist in
      move_to t new_pos
    end
    else continue := false
  done

let serve t e =
  if e < 0 || e >= t.k then invalid_arg "Interval_growing.serve: edge out of range";
  if e = t.position then t.hit <- t.hit +. 1.0;
  t.x.(e) <- t.x.(e) +. 1.0;
  if e >= t.vl && e < t.vr then begin
    let new_dist = dist_of t t.vl t.vr in
    let rel =
      Dist.resample_coupled t.rng ~current:(t.position - t.vl)
        ~old_dist:t.dist ~new_dist
    in
    t.dist <- new_dist;
    move_to t (t.vl + rel)
  end;
  maybe_grow t

let position t = t.position
let interval t = (t.vl, t.vr)
let phases t = t.phases
let request_count t e = int_of_float t.x.(e)
let hit_cost t = t.hit
let move_cost t = t.move

let player t =
  {
    Game.name = "interval-growing";
    position = (fun () -> position t);
    serve = (fun e -> serve t e);
    hit_cost = (fun () -> hit_cost t);
    move_cost = (fun () -> move_cost t);
  }
