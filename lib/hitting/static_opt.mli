(** Offline comparators for the hitting game.

    The game's yardstick (Section 4.1) is the optimal *static* strategy:
    pick one edge [p] at the start, pay the travel [|start - p|], then pay
    one per request to [p].  The dynamic offline optimum (used by tests to
    sanity-check that static OPT >= dynamic OPT and by E4's tables) is the
    exact MTS optimum on the line with indicator tasks. *)

val static : k:int -> ?start:int -> int array -> float
(** Exact static optimum for a request sequence over edges [0..k-1]. *)

val static_position : k:int -> ?start:int -> int array -> int
(** An edge achieving {!static}. *)

val dynamic : k:int -> ?start:int -> int array -> float
(** Exact dynamic (fully offline) optimum. *)
