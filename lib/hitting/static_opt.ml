let counts ~k requests =
  let hits = Array.make k 0 in
  Array.iter
    (fun e ->
      if e < 0 || e >= k then invalid_arg "Static_opt: edge out of range";
      hits.(e) <- hits.(e) + 1)
    requests;
  hits

let resolve_start ~k start =
  match start with Some s -> s | None -> Game.start_edge ~k

let static ~k ?start requests =
  let start = resolve_start ~k start in
  let hits = counts ~k requests in
  let best = ref infinity in
  for p = 0 to k - 1 do
    let v = float_of_int (abs (start - p) + hits.(p)) in
    if v < !best then best := v
  done;
  !best

let static_position ~k ?start requests =
  let start = resolve_start ~k start in
  let hits = counts ~k requests in
  let best = ref 0 in
  for p = 1 to k - 1 do
    let v q = abs (start - q) + hits.(q) in
    if v p < v !best then best := p
  done;
  !best

let dynamic ~k ?start requests =
  let start = resolve_start ~k start in
  Rbgp_mts.Offline.opt_cost_indicators (Rbgp_mts.Metric.Line k) ~start requests
