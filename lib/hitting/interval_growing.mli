(** The interval growing algorithm for the hitting game (Section 4.1).

    The algorithm confines its position to a growing interval around the
    starting edge.  Within the current interval [I] it keeps its position
    distributed as [grad smin'(x_I)] — the scaled smooth-minimum gradient of
    the request-count vector restricted to [I], with scale equal to the
    number of edges of [I] — refreshing through the maximal-stay coupling so
    expected movement tracks the distribution's L1 drift (Lemma 4.3 b).
    When every edge of [I] has been requested at least
    [(1 - delta_bar) * |I|] times (where [|I|] counts vertices), the interval
    doubles around its center (a new phase); it never exceeds the full line
    of [k+1] vertices.  At a phase change the position is resampled inside
    the new interval.

    Guarantees being validated empirically (E4/E5): expected total cost at
    most [O(1/(1 - delta_bar) * log k) * OPT_static] (Corollary 4.4), and
    per-interval bounds [E hit <= 2 min(I) + O(ln|I|) |I|],
    [E move <= 4 min(I) + O(ln|I|) |I|] (Lemma 4.3).

    The standalone game has no colors; the deactivation rules
    (monochromatic / dominated) live in the slicing procedure, which reuses
    this module's growth schedule through {!grow_rule}. *)

type t

val create : k:int -> ?delta_bar:float -> ?start:int -> Rbgp_util.Rng.t -> t
(** A game on [k] edges.  [delta_bar] defaults to [14/15] (the paper's
    choice for small epsilon); it must lie in [(1/2, 1)].  [start] defaults
    to {!Game.start_edge}. *)

val player : t -> Game.player
val position : t -> int
val interval : t -> int * int
(** Current interval as an inclusive *vertex* range [(vl, vr)]; its edges
    are [vl .. vr-1]. *)

val phases : t -> int
(** Number of growth steps performed so far. *)

val request_count : t -> int -> int
val hit_cost : t -> float
val move_cost : t -> float
val serve : t -> int -> unit

val grow_rule : k:int -> vl:int -> vr:int -> int * int
(** The growth schedule: double the vertex interval [(vl, vr)] around its
    center, clamp into [\[0, k\]], cap the length at [k+1].  Exposed so the
    slicing procedure and the tests use the exact same rule. *)
