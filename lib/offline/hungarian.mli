(** Exact minimum-cost bipartite assignment (Hungarian algorithm).

    Used by the static ring optimum to name segments with servers so that
    the number of migrated processes is minimized: cost of assigning segment
    [i] to server [j] is [|segment i| - overlap(i, j)], and a perfect
    matching minimizing the total is exactly the cheapest naming.

    Implementation: the O(n^3) shortest-augmenting-path formulation with
    dual potentials (Jonker–Volgenant style).  Costs are floats; rows and
    columns must form a square matrix (pad rectangular problems with zero
    rows/columns, as {!Static_opt} does). *)

val solve : float array array -> int array * float
(** [solve cost] for a square matrix returns [(assignment, total)] where
    [assignment.(row) = column].  Raises [Invalid_argument] on a non-square
    or empty matrix. *)

val solve_brute : float array array -> int array * float
(** Exhaustive permutation search, O(n!).  For cross-checking in tests
    (n <= 8). *)
